//===- bench/BenchCommon.cpp - Shared evaluation harness ---------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"


#include <algorithm>

using namespace spt;
using namespace spt::bench;

namespace {

/// Computes the baseline loop landscape (per-loop cycles, body weights,
/// loop forest) of an untransformed module.
void analyzeBaseline(WorkloadEval &E) {
  for (size_t FI = 0; FI != E.BaseModule->numFunctions(); ++FI) {
    const Function *F = E.BaseModule->function(static_cast<uint32_t>(FI));
    if (F->isExternal() || F->numBlocks() == 0)
      continue;
    CfgInfo Cfg = CfgInfo::compute(*F);
    LoopNest Nest = LoopNest::compute(*F, Cfg);
    CfgProbabilities Probs = CfgProbabilities::staticHeuristic(*F, Cfg, Nest);
    FreqInfo Freq = FreqInfo::compute(*F, Cfg, Nest, Probs);

    for (uint32_t LI = 0; LI != Nest.numLoops(); ++LI) {
      const Loop *L = Nest.loop(LI);
      const auto Key = std::make_pair(F->name(), L->Header);

      WorkloadEval::BaseLoopShape Shape;
      Shape.Depth = L->Depth;
      for (BlockId B : L->Blocks) {
        const double IterFreq = Freq.freqPerIteration(*L, B);
        for (const Instr &I : F->block(B)->Instrs)
          Shape.BodyWeight += opClassWeight(opcodeClass(I.Op)) * IterFreq;
      }
      for (const Loop *Child : L->Children)
        Shape.Children.emplace_back(F->name(), Child->Header);
      E.BaseShapes[Key] = std::move(Shape);
      if (L->Depth == 1)
        E.TopLevelLoops.emplace_back(F->name(), L->Header);

      auto It = E.Seq.PerLoop.find({F, L->Id});
      if (It != E.Seq.PerLoop.end())
        E.BaseLoops[Key] = It->second;
    }
  }
}

} // namespace

WorkloadEval
spt::bench::evaluateWorkload(const Workload &W,
                             const std::vector<CompilationMode> &Modes,
                             const EvalOptions &Opts) {
  WorkloadEval E;
  E.Name = W.Name;
  E.BaseModule = std::shared_ptr<Module>(compileWorkload(W).release());
  // The SPT pipeline runs generic cleanups; give the baseline the same
  // treatment so comparisons isolate speculation.
  cleanupModule(*E.BaseModule);
  E.Seq = runSequential(*E.BaseModule, "main", {}, Opts.Machine);
  analyzeBaseline(E);

  for (CompilationMode Mode : Modes) {
    ModeEval ME;
    ME.Mode = Mode;
    ME.M = std::shared_ptr<Module>(compileWorkload(W).release());
    SptCompilerOptions COpts = Opts.Compiler;
    COpts.Mode = Mode;
    ME.Report = compileSpt(*ME.M, COpts);
    ME.Spt = runSpt(*ME.M, "main", {}, ME.Report.SptLoops, Opts.Machine);
    if (ME.Spt.Result.I != E.Seq.Result.I) {
      errs() << "FATAL: checksum mismatch for " << W.Name << " in "
             << compilationModeName(Mode) << " mode\n";
      spt_fatal("SPT compilation changed a workload's result");
    }
    E.Modes.emplace(Mode, std::move(ME));
  }
  return E;
}

std::vector<WorkloadEval>
spt::bench::evaluateAll(const std::vector<CompilationMode> &Modes,
                        const EvalOptions &Opts) {
  std::vector<WorkloadEval> Out;
  for (const Workload &W : allWorkloads()) {
    if (Opts.Verbose)
      outs() << "  evaluating " << W.Name << "...\n";
    Out.push_back(evaluateWorkload(W, Modes, Opts));
  }
  return Out;
}

double spt::bench::selectedLoopCoverage(const WorkloadEval &E,
                                        CompilationMode Mode) {
  auto It = E.Modes.find(Mode);
  if (It == E.Modes.end() || E.Seq.Subticks == 0)
    return 0.0;
  uint64_t Covered = 0;
  for (const LoopRecord &Rec : It->second.Report.Loops) {
    if (!Rec.Selected)
      continue;
    auto Found = E.BaseLoops.find({Rec.FuncName, Rec.Header});
    if (Found != E.BaseLoops.end())
      Covered += Found->second.Subticks;
  }
  const double Cov =
      static_cast<double>(Covered) / static_cast<double>(E.Seq.Subticks);
  return std::min(Cov, 1.0);
}

double spt::bench::maxLoopCoverage(const WorkloadEval &E,
                                   double MaxBodyWeight) {
  if (E.Seq.Subticks == 0)
    return 0.0;
  uint64_t Covered = 0;
  // Walk each loop forest outermost-first; count the outermost loop whose
  // body fits the limit, else recurse into its children.
  std::vector<std::pair<std::string, BlockId>> Work = E.TopLevelLoops;
  while (!Work.empty()) {
    auto Key = Work.back();
    Work.pop_back();
    auto ShapeIt = E.BaseShapes.find(Key);
    if (ShapeIt == E.BaseShapes.end())
      continue;
    if (ShapeIt->second.BodyWeight <= MaxBodyWeight) {
      auto LoopIt = E.BaseLoops.find(Key);
      if (LoopIt != E.BaseLoops.end())
        Covered += LoopIt->second.Subticks;
      continue;
    }
    for (const auto &Child : ShapeIt->second.Children)
      Work.push_back(Child);
  }
  const double Cov =
      static_cast<double>(Covered) / static_cast<double>(E.Seq.Subticks);
  return std::min(Cov, 1.0);
}
