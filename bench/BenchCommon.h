//===- bench/BenchCommon.h - Shared evaluation harness ----------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared machinery behind the per-table/per-figure benchmark
/// binaries: compile each workload with the requested SPT compilation
/// modes, simulate the sequential baseline and the SPT executions, verify
/// checksums match, and hand the results to the figure-specific printers.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_BENCH_BENCHCOMMON_H
#define SPT_BENCH_BENCHCOMMON_H

#include "spt.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spt {
namespace bench {

/// One mode's compilation + simulation of one workload.
struct ModeEval {
  CompilationMode Mode = CompilationMode::Best;
  CompilationReport Report;
  SptSimResult Spt;
  /// The transformed module (kept alive: Report.SptLoops points into it).
  std::shared_ptr<Module> M;

  double speedupOver(const SeqSimResult &Seq) const {
    return Spt.Subticks == 0 ? 1.0 : Seq.cycles() / Spt.cycles();
  }
};

/// One workload's full evaluation.
struct WorkloadEval {
  std::string Name;
  std::shared_ptr<Module> BaseModule;
  SeqSimResult Seq; ///< Untransformed single-core baseline.
  /// Baseline per-loop stats keyed by (function name, header block).
  std::map<std::pair<std::string, BlockId>, LoopSeqStats> BaseLoops;
  /// Baseline loop body weights and depths for coverage accounting.
  struct BaseLoopShape {
    double BodyWeight = 0.0;
    uint32_t Depth = 1;
    std::vector<std::pair<std::string, BlockId>> Children;
  };
  std::map<std::pair<std::string, BlockId>, BaseLoopShape> BaseShapes;
  std::vector<std::pair<std::string, BlockId>> TopLevelLoops;

  std::map<CompilationMode, ModeEval> Modes;
};

/// Options shared by the harnesses.
struct EvalOptions {
  MachineConfig Machine;
  SptCompilerOptions Compiler;
  bool Verbose = false;
};

/// Evaluates one workload under \p Modes. Aborts if any mode's checksum
/// diverges from the baseline (the harness must never report numbers from
/// an incorrect binary).
WorkloadEval evaluateWorkload(const Workload &W,
                              const std::vector<CompilationMode> &Modes,
                              const EvalOptions &Opts = EvalOptions());

/// Convenience: evaluates every workload.
std::vector<WorkloadEval>
evaluateAll(const std::vector<CompilationMode> &Modes,
            const EvalOptions &Opts = EvalOptions());

/// Fraction of baseline cycles spent in the loops selected by \p Mode.
double selectedLoopCoverage(const WorkloadEval &E, CompilationMode Mode);

/// Fraction of baseline cycles inside *any* loop whose body fits the
/// hardware size limit (the paper's "maximum coverage" reference line),
/// counted over maximal non-overlapping eligible loops.
double maxLoopCoverage(const WorkloadEval &E, double MaxBodyWeight);

} // namespace bench
} // namespace spt

#endif // SPT_BENCH_BENCHCOMMON_H
