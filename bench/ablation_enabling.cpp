//===- bench/ablation_enabling.cpp - Enabling-technique decomposition ---------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Decomposes the BEST compilation's gain over BASIC into its two enabling
// techniques (paper Section 7): dependence profiling and software value
// prediction. The paper's Figure 14 discussion singles out SVP as "an
// important SPT-enabler because it both helps to reduce misspeculation
// cost and enables more code reordering"; this harness shows which
// benchmarks each technique carries.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

using namespace spt;
using namespace spt::bench;

int main() {
  outs() << "==============================================================\n";
  outs() << " Ablation: enabling techniques within the BEST compilation\n";
  outs() << "==============================================================\n";

  struct Config {
    const char *Name;
    bool DepProfiles;
    bool Svp;
  };
  const Config Configs[] = {
      {"neither (=basic-like)", false, false},
      {"dep profiling only", true, false},
      {"SVP only", false, true},
      {"both (=best)", true, true},
  };

  Table T({"program", "neither", "dep prof", "SVP", "both"});
  double Sum[4] = {0, 0, 0, 0};
  int N = 0;
  for (const Workload &W : allWorkloads()) {
    T.beginRow();
    T.cell(W.Name);
    // The baseline is shared across configurations.
    WorkloadEval Base = evaluateWorkload(W, {});
    for (size_t CI = 0; CI != 4; ++CI) {
      EvalOptions Opts;
      Opts.Compiler.Mode = CompilationMode::Best;
      Opts.Compiler.Enabling.EnableDepProfiles = Configs[CI].DepProfiles;
      Opts.Compiler.Enabling.EnableSvp = Configs[CI].Svp;
      WorkloadEval E = evaluateWorkload(W, {CompilationMode::Best}, Opts);
      const double Gain =
          E.Modes.at(CompilationMode::Best).speedupOver(E.Seq) - 1.0;
      T.percentCell(Gain, 1);
      Sum[CI] += Gain;
    }
    ++N;
  }
  T.beginRow();
  T.cell(std::string("average"));
  for (size_t CI = 0; CI != 4; ++CI)
    T.percentCell(Sum[CI] / N, 1);
  T.print(outs());

  outs() << "\nShape check: dependence profiling carries the memory-bound\n"
            "stories (vortex-like); SVP carries the predictable-recurrence\n"
            "stories (vpr-like); together they recover the full BEST gain.\n";
  return 0;
}
