//===- bench/ablation_pruning.cpp - Search pruning ablation -------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation for the branch-and-bound pruning heuristics of Section 5.2.1:
// runs the optimal-partition search over every loop of every workload
// with each heuristic combination and reports search-tree nodes visited,
// prunes taken, and that the optimum never changes (the heuristics are
// exact, not approximations).
//
//===----------------------------------------------------------------------===//

#include "spt.h"

#include <cmath>

using namespace spt;

int main() {
  outs() << "==============================================================\n";
  outs() << " Ablation: partition-search pruning heuristics (Section 5.2)\n";
  outs() << "==============================================================\n";

  struct Config {
    const char *Name;
    bool Size;
    bool LowerBound;
  };
  const Config Configs[] = {
      {"none", false, false},
      {"size only", true, false},
      {"lower-bound only", false, true},
      {"both (paper)", true, true},
  };

  Table T({"configuration", "loops", "nodes visited", "size prunes",
           "lb prunes", "optima changed"});
  // Baseline costs from the full search, for the exactness check.
  std::vector<double> BaselineCosts;

  for (const Config &C : Configs) {
    uint64_t Loops = 0, Nodes = 0, SizePrunes = 0, LbPrunes = 0;
    uint64_t Changed = 0;
    size_t CostIdx = 0;
    for (const Workload &W : allWorkloads()) {
      auto M = compileWorkload(W);
      CallEffects Effects = CallEffects::compute(*M);
      for (size_t FI = 0; FI != M->numFunctions(); ++FI) {
        const Function *F = M->function(static_cast<uint32_t>(FI));
        if (F->isExternal() || F->numBlocks() == 0)
          continue;
        CfgInfo Cfg = CfgInfo::compute(*F);
        LoopNest Nest = LoopNest::compute(*F, Cfg);
        CfgProbabilities Probs =
            CfgProbabilities::staticHeuristic(*F, Cfg, Nest);
        FreqInfo Freq = FreqInfo::compute(*F, Cfg, Nest, Probs);
        for (uint32_t LI = 0; LI != Nest.numLoops(); ++LI) {
          LoopDepGraph G = LoopDepGraph::build(*M, *F, Cfg, Nest,
                                               *Nest.loop(LI), Freq,
                                               Effects);
          MisspecCostModel Model(G);
          PartitionOptions Opts;
          Opts.EnableSizePrune = C.Size;
          Opts.EnableLowerBoundPrune = C.LowerBound;
          PartitionResult R = PartitionSearch(G, Model, Opts).run();
          if (!R.Searched)
            continue;
          ++Loops;
          Nodes += R.NodesVisited;
          SizePrunes += R.SizePrunes;
          LbPrunes += R.LowerBoundPrunes;
          // Note: disabling the size prune admits larger pre-fork
          // regions, so only the lower-bound toggle must preserve optima
          // exactly; compare against the "size only" run.
          if (C.Size && !C.LowerBound)
            BaselineCosts.push_back(R.Cost);
          if (C.Size && C.LowerBound) {
            if (CostIdx < BaselineCosts.size() &&
                std::fabs(BaselineCosts[CostIdx] - R.Cost) > 1e-9)
              ++Changed;
            ++CostIdx;
          }
        }
      }
    }
    T.beginRow();
    T.cell(std::string(C.Name));
    T.cell(Loops);
    T.cell(Nodes);
    T.cell(SizePrunes);
    T.cell(LbPrunes);
    T.cell(C.Size && C.LowerBound ? std::to_string(Changed)
                                  : std::string("-"));
  }
  T.print(outs());

  outs() << "\nShape check: the lower-bound prune cuts search nodes without\n"
            "changing any optimum (its monotonicity argument is exact).\n";
  return 0;
}
