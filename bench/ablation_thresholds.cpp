//===- bench/ablation_thresholds.cpp - Selection threshold sweep --------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Sensitivity of the Section 6.1 selection thresholds: sweeps the
// misspeculation-cost fraction and the pre-fork size fraction and reports
// how many loops are selected and the resulting program speedups on a
// three-benchmark subset (fast, memory-light representatives). DESIGN.md
// calls these two thresholds the load-bearing design choices.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

using namespace spt;
using namespace spt::bench;

int main() {
  outs() << "==============================================================\n";
  outs() << " Ablation: selection-threshold sensitivity (Section 6.1)\n";
  outs() << "==============================================================\n";

  const char *Subset[] = {"gzip", "twolf", "gap"};

  outs() << "\n-- misspeculation-cost fraction sweep "
            "(pre-fork fixed at 0.34) --\n";
  {
    Table T({"cost fraction", "selected loops", "avg speedup"});
    for (double CostFraction : {0.005, 0.02, 0.08, 0.3, 1.0}) {
      uint64_t Selected = 0;
      double GainSum = 0.0;
      for (const char *Name : Subset) {
        EvalOptions Opts;
        Opts.Compiler.Selection.CostFraction = CostFraction;
        WorkloadEval E = evaluateWorkload(workloadByName(Name),
                                          {CompilationMode::Best}, Opts);
        const ModeEval &ME = E.Modes.at(CompilationMode::Best);
        Selected += ME.Report.numSelected();
        GainSum += ME.speedupOver(E.Seq) - 1.0;
      }
      T.beginRow();
      T.cell(CostFraction, 3);
      T.cell(Selected);
      T.percentCell(GainSum / 3.0, 1);
    }
    T.print(outs());
  }

  outs() << "\n-- pre-fork size fraction sweep (cost fixed at 0.08) --\n";
  {
    Table T({"pre-fork fraction", "selected loops", "avg speedup"});
    for (double PreFork : {0.05, 0.15, 0.34, 0.6, 0.9}) {
      uint64_t Selected = 0;
      double GainSum = 0.0;
      for (const char *Name : Subset) {
        EvalOptions Opts;
        Opts.Compiler.Selection.PreForkSizeFraction = PreFork;
        WorkloadEval E = evaluateWorkload(workloadByName(Name),
                                          {CompilationMode::Best}, Opts);
        const ModeEval &ME = E.Modes.at(CompilationMode::Best);
        Selected += ME.Report.numSelected();
        GainSum += ME.speedupOver(E.Seq) - 1.0;
      }
      T.beginRow();
      T.cell(PreFork, 2);
      T.cell(Selected);
      T.percentCell(GainSum / 3.0, 1);
    }
    T.print(outs());
  }

  outs() << "\nShape check: an over-strict cost threshold starves selection;\n"
            "an over-lax one admits loops whose misspeculation erases the\n"
            "gain. A tiny pre-fork budget blocks the code motion that\n"
            "removes violations; a huge one serializes the loop.\n";
  return 0;
}
