//===- bench/chaos_recovery.cpp - Recovery cost under injected faults --------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Companion harness to tests/chaos_test.cpp on the real workloads: compile
// each benchmark in BEST mode, then run the speculative simulation under
// increasing fault-injection pressure. Architectural results must stay
// bit-identical to the sequential baseline at every rate (the harness
// aborts otherwise); the table shows what the faults cost — forced
// squashes, extra re-execution, and the slowdown relative to the
// fault-free speculative run — i.e. how gracefully the recovery machinery
// degrades when misspeculation stops being rare.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

using namespace spt;

int main() {
  outs() << "==============================================================\n";
  outs() << " Chaos recovery: BEST-mode workloads under fault injection\n";
  outs() << "==============================================================\n";

  const double Rates[] = {0.0, 0.1, 0.5};
  Table T({"program", "rate", "faults", "forced squash", "misspec",
           "reexec", "spt cycles", "slowdown"});

  for (const Workload &W : allWorkloads()) {
    auto Base = compileWorkload(W);
    const SeqSimResult Seq = runSequential(*Base, "main");

    auto M = compileWorkload(W);
    SptCompilerOptions Opts;
    Opts.Mode = CompilationMode::Best;
    CompilationReport Report = compileSpt(*M, Opts);

    double FaultFreeCycles = 0.0;
    for (double Rate : Rates) {
      FaultInjectorOptions FO;
      FO.Seed = 0xc4a05ull ^ static_cast<uint64_t>(Rate * 1000.0);
      FO.ForcedSquashRate = Rate;
      FO.LoadFlipRate = Rate * 0.5;
      FO.RegFlipRate = Rate * 0.25;
      FO.TimingJitterRate = Rate;
      FaultInjector FI(FO);

      SptSimResult Sim = runSpt(*M, "main", {}, Report.SptLoops,
                                MachineConfig(), 500000000ull,
                                0x5eed5eed5eedull, &FI);
      if (Sim.Result.I != Seq.Result.I || Sim.Output != Seq.Output ||
          Sim.MemoryHash != Seq.MemoryHash)
        spt_fatal("fault injection changed architectural results");

      uint64_t Forks = 0, Joins = 0, Violated = 0, Squashed = 0;
      uint64_t SpecI = 0, ReexecI = 0;
      for (const auto &[Id, S] : Sim.PerLoop) {
        (void)Id;
        Forks += S.Forks;
        Joins += S.Joins;
        Violated += S.ViolatedThreads;
        Squashed += S.Squashed;
        SpecI += S.SpecInstrs;
        ReexecI += S.ReexecInstrs;
      }
      if (Rate == 0.0)
        FaultFreeCycles = Sim.cycles();

      T.beginRow();
      T.cell(W.Name);
      T.cell(Rate, 2);
      T.cell(FI.stats().total());
      T.cell(FI.stats().ForcedSquashes);
      T.percentCell(Joins == 0 ? 0.0
                               : static_cast<double>(Violated) /
                                     static_cast<double>(Joins));
      T.percentCell(SpecI == 0 ? 0.0
                               : static_cast<double>(ReexecI) /
                                     static_cast<double>(SpecI));
      T.cell(static_cast<uint64_t>(Sim.cycles()));
      T.cell(FaultFreeCycles == 0.0 ? 1.0 : Sim.cycles() / FaultFreeCycles,
             3);
    }
  }

  T.print(outs());
  outs() << "\nAll architectural results bit-identical to the sequential "
            "baseline.\n";
  return 0;
}
