//===- bench/fig14_kway.cpp - K-way core-count sweep --------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Sweeps the machine's core count (1, 2, 4, 8) over every workload under
// the BEST compilation and reports the speedup of the SPT execution over
// the sequential baseline at each width. Two gates make the sweep
// trustworthy rather than merely plausible:
//
//  - reports_identical: at Cores=2 the generalized N-core engine must be
//    byte-identical to the retained two-core reference engine — subticks,
//    instruction counts, architectural state, every per-loop counter.
//  - every width preserves the workload's checksum (evaluateWorkload
//    aborts on divergence), so no speedup is reported from a wrong run.
//
// The paper's machine is the 2-core SPT pair; the sweep shows how the
// cost-driven partitions scale when the chain of speculative cores grows,
// with at least one parallel workload expected to improve from 2 to 4.
// Results merge into the compile-bench JSON as the "kway" block.
//
// Flags: --quick (first 3 workloads only), --out=PATH.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace spt;
using namespace spt::bench;

namespace {

const uint32_t kCores[] = {1, 2, 4, 8};

std::string fmt2(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

/// Full-result equality, the same contract the kway-diff fuzz oracle
/// enforces (CoreStats excluded: the reference engine reports none).
bool sameSpt(const SptSimResult &A, const SptSimResult &B) {
  if (A.Subticks != B.Subticks || A.Instrs != B.Instrs ||
      A.Result.I != B.Result.I || A.Output != B.Output ||
      A.MemoryHash != B.MemoryHash || A.PerLoop.size() != B.PerLoop.size())
    return false;
  auto IA = A.PerLoop.begin();
  auto IB = B.PerLoop.begin();
  for (; IA != A.PerLoop.end(); ++IA, ++IB)
    if (IA->first != IB->first ||
        std::memcmp(&IA->second, &IB->second, sizeof(SptLoopRunStats)) != 0)
      return false;
  return true;
}

struct SweepRow {
  std::string Name;
  double Speedup[4] = {0, 0, 0, 0};
  uint64_t Subticks[4] = {0, 0, 0, 0};
  bool ReportsIdentical = false; ///< Generalized vs reference at Cores=2.
  bool Monotone24 = false;       ///< speedup(4) >= speedup(2).
};

SweepRow sweepWorkload(const Workload &W) {
  SweepRow Row;
  Row.Name = W.Name;
  for (size_t CI = 0; CI != 4; ++CI) {
    EvalOptions EO;
    EO.Machine.Cores = kCores[CI];
    EO.Compiler = EO.Compiler.withCores(kCores[CI]);
    WorkloadEval E =
        evaluateWorkload(W, {CompilationMode::Best}, EO);
    const ModeEval &ME = E.Modes.at(CompilationMode::Best);
    Row.Subticks[CI] = ME.Spt.Subticks;
    Row.Speedup[CI] = ME.speedupOver(E.Seq);
    if (kCores[CI] == 2) {
      // Differential: replay the identical run through the retained
      // two-core reference engine and demand byte-identity.
      const SptSimResult Ref =
          runSpt(*ME.M, "main", {}, ME.Report.SptLoops, EO.Machine,
                 500000000ull, 0x5eed5eed5eedull, nullptr, nullptr,
                 SimOptions::twoCoreReference());
      Row.ReportsIdentical = sameSpt(ME.Spt, Ref);
    }
  }
  Row.Monotone24 = Row.Speedup[2] >= Row.Speedup[1] - 1e-9;
  return Row;
}

/// Merges the ", \"kway\": {...}\n" block into the JSON object at
/// \p Path (same replace-or-append contract as perf_sim's merge).
void mergeIntoJson(const std::string &Path, const std::string &Block) {
  std::string Existing;
  {
    std::ifstream In(Path);
    std::stringstream SS;
    SS << In.rdbuf();
    Existing = SS.str();
  }
  const std::string Marker = ",\n  \"kway\":";
  std::string Out;
  const size_t Close = Existing.rfind('}');
  if (Close == std::string::npos) {
    Out = "{";
    Out.append(Block, 1, Block.size() - 1);
    Out += "}\n";
  } else {
    const size_t Prev = Existing.find(Marker);
    std::string Prefix =
        Existing.substr(0, Prev != std::string::npos ? Prev : Close);
    while (!Prefix.empty() &&
           (Prefix.back() == '\n' || Prefix.back() == ' '))
      Prefix.pop_back();
    Out = Prefix + Block + "}\n";
  }
  std::ofstream O(Path);
  O << Out;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_compile.json";
  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--quick") {
      Quick = true;
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(6);
    } else {
      errs() << "unknown flag: " << Arg << " (expected --quick --out=PATH)\n";
      return 2;
    }
  }

  outs() << "==============================================================\n";
  outs() << " fig14_kway: speedup over base vs machine width (BEST mode)\n";
  outs() << " gate: Cores=2 generalized == two-core reference, bytewise\n";
  outs() << "==============================================================\n";

  std::vector<Workload> Suite = allWorkloads();
  if (Quick && Suite.size() > 3)
    Suite.resize(3);

  std::vector<SweepRow> Rows;
  for (const Workload &W : Suite) {
    outs() << "  sweeping " << W.Name << "...\n";
    Rows.push_back(sweepWorkload(W));
  }

  Table T({"program", "1 core", "2 cores", "4 cores", "8 cores",
           "2-core identical", "monotone 2->4"});
  bool AllIdentical = true;
  bool AnyMonotone = false;
  double Sum[4] = {0, 0, 0, 0};
  for (const SweepRow &R : Rows) {
    AllIdentical = AllIdentical && R.ReportsIdentical;
    AnyMonotone = AnyMonotone || (R.Monotone24 && R.Speedup[1] > 1.0);
    T.beginRow();
    T.cell(R.Name);
    for (size_t CI = 0; CI != 4; ++CI) {
      Sum[CI] += R.Speedup[CI] - 1.0;
      T.percentCell(R.Speedup[CI] - 1.0, 1);
    }
    T.cell(R.ReportsIdentical ? "yes" : "NO");
    T.cell(R.Monotone24 ? "yes" : "no");
  }
  T.beginRow();
  T.cell(std::string("average"));
  for (size_t CI = 0; CI != 4; ++CI)
    T.percentCell(Sum[CI] / static_cast<double>(Rows.size()), 1);
  T.cell(std::string(""));
  T.cell(std::string(""));
  T.print(outs());

  outs() << "\nShape check: one core cannot speculate (the compiler turns\n"
            "speculation off below a pair); two cores reproduce the paper's\n"
            "machine bit-for-bit; wider chains help exactly the workloads\n"
            "whose partitions carry little misspeculation cost.\n";

  std::string Block = ",\n  \"kway\": {\n    \"rows\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const SweepRow &R = Rows[I];
    Block += "      {\"name\": \"" + R.Name + "\", \"cores\": [";
    for (size_t CI = 0; CI != 4; ++CI) {
      Block += "{\"cores\": " + std::to_string(kCores[CI]);
      Block += ", \"subticks\": " + std::to_string(R.Subticks[CI]);
      Block += ", \"speedup\": " + fmt2(R.Speedup[CI]) + "}";
      if (CI != 3)
        Block += ", ";
    }
    Block += "]";
    Block += std::string(", \"reports_identical\": ") +
             (R.ReportsIdentical ? "true" : "false");
    Block += std::string(", \"monotone_2_to_4\": ") +
             (R.Monotone24 ? "true" : "false") + "}";
    Block += I + 1 != Rows.size() ? ",\n" : "\n";
  }
  Block += "    ],\n";
  Block += std::string("    \"reports_identical\": ") +
           (AllIdentical ? "true" : "false");
  Block += std::string(", \"any_speedup_monotone_2_to_4\": ") +
           (AnyMonotone ? "true" : "false");
  Block += "\n  }\n";

  mergeIntoJson(OutPath, Block);
  outs() << "merged \"kway\" block into " << OutPath << "\n";

  if (!AllIdentical)
    errs() << "FAILED: generalized engine diverged from the two-core "
              "reference\n";
  if (!AnyMonotone)
    errs() << "FAILED: no workload improved monotonically from 2 to 4 "
              "cores\n";
  return AllIdentical && AnyMonotone ? 0 : 1;
}
