//===- bench/fig14_speedup.cpp - Paper Figure 14 ------------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 14: program speedup of the SPT code over the base
// reference, per benchmark, for the three compilations the paper
// evaluates: BASIC (edge profiling + type-based aliasing + reordering),
// BEST (+ dependence profiling + software value prediction) and
// ANTICIPATED (+ while-loop unrolling + global export). The paper reports
// averages of about 1%, 8% and 15.6% respectively; the shape to check is
// basic << best < anticipated, with mcf-like dependence-bound programs
// stuck near zero in every mode.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

using namespace spt;
using namespace spt::bench;

int main() {
  outs() << "==============================================================\n";
  outs() << " Figure 14: SPT speedup over base, per compilation\n";
  outs() << " (paper averages: basic ~1%, best ~8%, anticipated ~15.6%)\n";
  outs() << "==============================================================\n";

  const std::vector<CompilationMode> Modes = {CompilationMode::Basic,
                                              CompilationMode::Best,
                                              CompilationMode::Anticipated};
  EvalOptions Opts;
  Opts.Verbose = true;
  std::vector<WorkloadEval> Evals = evaluateAll(Modes, Opts);

  Table T({"program", "basic", "best", "anticipated", "#loops best"});
  double Sum[3] = {0, 0, 0};
  for (const WorkloadEval &E : Evals) {
    T.beginRow();
    T.cell(E.Name);
    for (size_t MI = 0; MI != Modes.size(); ++MI) {
      const ModeEval &ME = E.Modes.at(Modes[MI]);
      const double Gain = ME.speedupOver(E.Seq) - 1.0;
      Sum[MI] += Gain;
      T.percentCell(Gain, 1);
    }
    T.cell(static_cast<uint64_t>(
        E.Modes.at(CompilationMode::Best).Report.numSelected()));
  }
  T.beginRow();
  T.cell(std::string("average"));
  for (size_t MI = 0; MI != 3; ++MI)
    T.percentCell(Sum[MI] / static_cast<double>(Evals.size()), 1);
  T.cell(std::string(""));
  T.print(outs());

  outs() << "\nShape check: basic gains little (type-based aliasing alone\n"
            "cannot expose speculative parallelism); best adds dependence\n"
            "profiles and SVP; anticipated adds while-loop unrolling and\n"
            "global export and roughly doubles best, as in the paper.\n";
  return 0;
}
