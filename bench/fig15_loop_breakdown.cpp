//===- bench/fig15_loop_breakdown.cpp - Paper Figure 15 -----------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 15: the breakdown of loop candidates by whether they
// could be SPT-transformed, and the reasons they could not, under the
// current-best compilation. The paper finds "valid partition" for a
// minority, ~35% lost to iteration-count/size limits (34% of all loops too
// small — while loops ORC could not unroll), only a few lost to too many
// violation candidates.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

#include <map>

using namespace spt;
using namespace spt::bench;

int main() {
  outs() << "==============================================================\n";
  outs() << " Figure 15: loop breakdown by transformability (best mode)\n";
  outs() << "==============================================================\n";

  const std::vector<RejectReason> Reasons = {
      RejectReason::Selected,      RejectReason::BodyTooSmall,
      RejectReason::LowTripCount,  RejectReason::BodyTooLarge,
      RejectReason::HighCost,      RejectReason::NoGain,
      RejectReason::TooManyVcs,    RejectReason::Nested,
      RejectReason::NeverExecuted, RejectReason::TransformFailed,
      RejectReason::StageError,
  };

  std::vector<std::string> Header = {"program", "loops"};
  for (RejectReason R : Reasons)
    Header.push_back(rejectReasonName(R));
  Table T(Header);

  std::map<RejectReason, uint64_t> Total;
  uint64_t TotalLoops = 0;
  for (const Workload &W : allWorkloads()) {
    WorkloadEval E = evaluateWorkload(W, {CompilationMode::Best});
    const CompilationReport &Report =
        E.Modes.at(CompilationMode::Best).Report;
    std::map<RejectReason, uint64_t> Counts;
    for (const LoopRecord &Rec : Report.Loops)
      ++Counts[Rec.Reason];
    T.beginRow();
    T.cell(W.Name);
    T.cell(static_cast<uint64_t>(Report.Loops.size()));
    for (RejectReason R : Reasons) {
      T.cell(Counts[R]);
      Total[R] += Counts[R];
    }
    TotalLoops += Report.Loops.size();
  }
  T.beginRow();
  T.cell(std::string("total"));
  T.cell(TotalLoops);
  for (RejectReason R : Reasons)
    T.cell(Total[R]);
  T.print(outs());

  outs() << "\nShares of all " << TotalLoops << " loop candidates:\n";
  Table S({"category", "share"});
  for (RejectReason R : Reasons) {
    S.beginRow();
    S.cell(rejectReasonName(R));
    S.percentCell(static_cast<double>(Total[R]) /
                      static_cast<double>(TotalLoops),
                  1);
  }
  S.print(outs());

  outs() << "\nShape check: size/iteration-count reasons dominate the\n"
            "rejections (the paper's 'too small' loops are while loops the\n"
            "DO-loop unroller cannot grow); few loops have too many\n"
            "violation candidates.\n";
  return 0;
}
