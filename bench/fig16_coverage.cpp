//===- bench/fig16_coverage.cpp - Paper Figure 16 -----------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 16: the runtime coverage of the selected SPT loops
// (fraction of total base execution cycles spent inside them) against the
// maximum coverage of all loops under the same hardware size limit, plus
// the number of SPT loops generated per benchmark. The paper reports ~30%
// SPT coverage vs a 68% ceiling (realizing ~40% of the opportunity) with
// ~30 loops per benchmark; our programs are far smaller, so the loop
// counts are smaller, but the coverage-vs-ceiling relation is the shape
// to check.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

using namespace spt;
using namespace spt::bench;

int main() {
  outs() << "==============================================================\n";
  outs() << " Figure 16: SPT loop runtime coverage (best mode)\n";
  outs() << "==============================================================\n";

  EvalOptions Opts;
  Table T({"program", "SPT loops", "SPT coverage", "max coverage",
           "realized"});
  double SumCov = 0.0, SumMax = 0.0;
  int N = 0;
  for (const Workload &W : allWorkloads()) {
    WorkloadEval E = evaluateWorkload(W, {CompilationMode::Best}, Opts);
    const double Cov = selectedLoopCoverage(E, CompilationMode::Best);
    const double Max =
        maxLoopCoverage(E, Opts.Compiler.Selection.MaxBodyWeight);
    T.beginRow();
    T.cell(E.Name);
    T.cell(static_cast<uint64_t>(
        E.Modes.at(CompilationMode::Best).Report.numSelected()));
    T.percentCell(Cov, 1);
    T.percentCell(Max, 1);
    T.percentCell(Max > 0 ? Cov / Max : 0.0, 1);
    SumCov += Cov;
    SumMax += Max;
    ++N;
  }
  T.beginRow();
  T.cell(std::string("average"));
  T.cell(std::string(""));
  T.percentCell(SumCov / N, 1);
  T.percentCell(SumMax / N, 1);
  T.percentCell(SumMax > 0 ? SumCov / SumMax : 0.0, 1);
  T.print(outs());

  outs() << "\nShape check: the compiler realizes a meaningful fraction of\n"
            "the loop-coverage ceiling (the paper: 30% of 68%), selecting\n"
            "a few hot loops per benchmark rather than everything.\n";
  return 0;
}
