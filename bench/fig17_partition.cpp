//===- bench/fig17_partition.cpp - Paper Figure 17 ----------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 17: the general characteristics of the selected SPT
// loops' partitions under the current-best compilation — average loop
// body size per iteration and the share of it placed in the pre-fork
// (sequential) region, plus the carried-register/temp-insertion counts
// the transformation needed. The paper reports ~400 instructions per
// iteration with a small pre-fork share bounded by the size threshold.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

using namespace spt;
using namespace spt::bench;

int main() {
  outs() << "==============================================================\n";
  outs() << " Figure 17: selected SPT loop partition characteristics\n";
  outs() << "==============================================================\n";

  Table T({"program", "loops", "avg body wt", "avg pre-fork wt",
           "pre-fork share", "avg moved", "avg carried"});
  RunningStat AllBody, AllShare;
  for (const Workload &W : allWorkloads()) {
    WorkloadEval E = evaluateWorkload(W, {CompilationMode::Best});
    const CompilationReport &Report =
        E.Modes.at(CompilationMode::Best).Report;
    RunningStat Body, PreFork, Share, Moved, Carried;
    for (const LoopRecord &Rec : Report.Loops) {
      if (!Rec.Selected)
        continue;
      Body.add(Rec.Partition.BodyWeight);
      PreFork.add(Rec.Partition.PreForkWeight);
      Share.add(Rec.Partition.BodyWeight > 0
                    ? Rec.Partition.PreForkWeight / Rec.Partition.BodyWeight
                    : 0.0);
      Moved.add(Rec.NumMovedStmts);
      Carried.add(Rec.NumCarriedRegs);
      AllBody.add(Rec.Partition.BodyWeight);
      AllShare.add(Rec.Partition.BodyWeight > 0
                       ? Rec.Partition.PreForkWeight /
                             Rec.Partition.BodyWeight
                       : 0.0);
    }
    T.beginRow();
    T.cell(W.Name);
    T.cell(Body.count());
    T.cell(Body.mean(), 1);
    T.cell(PreFork.mean(), 1);
    T.percentCell(Share.mean(), 1);
    T.cell(Moved.mean(), 1);
    T.cell(Carried.mean(), 1);
  }
  T.beginRow();
  T.cell(std::string("all"));
  T.cell(AllBody.count());
  T.cell(AllBody.mean(), 1);
  T.cell(std::string(""));
  T.percentCell(AllShare.mean(), 1);
  T.cell(std::string(""));
  T.cell(std::string(""));
  T.print(outs());

  outs() << "\nShape check: the pre-fork region is a small fraction of the\n"
            "body (bounded by the size threshold), so most of each\n"
            "iteration runs speculatively in parallel.\n";
  return 0;
}
