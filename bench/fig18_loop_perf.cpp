//===- bench/fig18_loop_perf.cpp - Paper Figure 18 ----------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 18: the actual runtime behaviour of the selected SPT
// loops under the current-best compilation — misspeculation ratio (the
// fraction of speculative threads that violated) and the speedup of each
// SPT loop over its original sequential execution. The paper reports a 3%
// average misspeculation ratio and ~26% average loop speedup.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

using namespace spt;
using namespace spt::bench;

int main() {
  outs() << "==============================================================\n";
  outs() << " Figure 18: SPT loop misspeculation and speedup (best mode)\n";
  outs() << " (paper averages: ~3% misspeculation, ~26% loop speedup)\n";
  outs() << "==============================================================\n";

  Table T({"program", "loop", "joins", "misspec", "reexec", "seq cycles",
           "spt cycles", "loop speedup"});
  RunningStat Misspec, Reexec, Speedup;
  for (const Workload &W : allWorkloads()) {
    WorkloadEval E = evaluateWorkload(W, {CompilationMode::Best});
    const ModeEval &ME = E.Modes.at(CompilationMode::Best);
    for (const LoopRecord &Rec : ME.Report.Loops) {
      if (!Rec.Selected)
        continue;
      auto StatIt = ME.Spt.PerLoop.find(Rec.SptLoopId);
      if (StatIt == ME.Spt.PerLoop.end())
        continue;
      const SptLoopRunStats &S = StatIt->second;
      auto BaseIt = E.BaseLoops.find({Rec.FuncName, Rec.Header});
      const double SeqCycles =
          BaseIt != E.BaseLoops.end() ? BaseIt->second.cycles() : 0.0;
      const double LoopSpeedup =
          S.cycles() > 0 && SeqCycles > 0 ? SeqCycles / S.cycles() : 1.0;

      T.beginRow();
      T.cell(W.Name);
      T.cell(Rec.FuncName + "#" + std::to_string(Rec.Header));
      T.cell(S.Joins);
      T.percentCell(S.misspecRatio(), 1);
      T.percentCell(S.reexecRatio(), 1);
      T.cell(static_cast<uint64_t>(SeqCycles));
      T.cell(static_cast<uint64_t>(S.cycles()));
      T.cell(LoopSpeedup, 2);
      if (S.Joins > 0) {
        Misspec.add(S.misspecRatio());
        Reexec.add(S.reexecRatio());
        Speedup.add(LoopSpeedup);
      }
    }
  }
  T.print(outs());

  outs() << "\nAverages over " << Misspec.count() << " SPT loops:\n";
  outs() << "  threads with a violation: " << formatPercent(Misspec.mean(), 1)
         << "\n";
  outs() << "  computation re-executed:  " << formatPercent(Reexec.mean(), 1)
         << "   (the paper-comparable 'misspeculation ratio', ~3%)\n";
  outs() << "  loop speedup:             "
         << formatDouble(Speedup.mean(), 2) << "x  (paper: ~1.26x)\n";
  outs() << "\nShape check: selected loops re-execute only a small fraction\n"
            "of their speculative computation (the cost model filtered the\n"
            "rest) and gain solidly over their sequential versions. Our\n"
            "thread-level violation ratio runs higher than the paper's 3%\n"
            "because unrolled thread bodies span several source iterations;\n"
            "the re-executed-computation ratio is the comparable metric.\n";
  return 0;
}
