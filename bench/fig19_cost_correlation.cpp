//===- bench/fig19_cost_correlation.cpp - Paper Figure 19 ---------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 19: for each selected SPT loop, the
// compiler-estimated misspeculation cost (normalized to the loop body, so
// it is comparable to a ratio) against the actual re-execution ratio
// measured by the simulator. The paper finds the two well correlated with
// conservative estimates (points clustered near the estimate axis), and a
// few loops near the measured axis whose costs were *underestimated*
// because callees touched globals the analysis missed. We print the
// scatter and the Pearson correlation twice: once with call effects
// modeled in the cost estimate (our default) and once with the paper's
// blind spot reproduced (ModelCallEffectsInCost=false).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

using namespace spt;
using namespace spt::bench;

namespace {

/// Runs the scatter for one configuration; returns (correlation, n).
std::pair<double, uint64_t> scatter(bool ModelCallEffects, bool Print) {
  Correlation Corr;
  Table T({"program", "loop", "est. cost ratio", "actual reexec ratio"});
  for (const Workload &W : allWorkloads()) {
    EvalOptions Opts;
    Opts.Compiler.Enabling.ModelCallEffectsInCost = ModelCallEffects;
    WorkloadEval E = evaluateWorkload(W, {CompilationMode::Best}, Opts);
    const ModeEval &ME = E.Modes.at(CompilationMode::Best);
    for (const LoopRecord &Rec : ME.Report.Loops) {
      if (!Rec.Selected)
        continue;
      auto StatIt = ME.Spt.PerLoop.find(Rec.SptLoopId);
      if (StatIt == ME.Spt.PerLoop.end() || StatIt->second.Joins == 0)
        continue;
      const double EstRatio =
          Rec.Partition.BodyWeight > 0
              ? Rec.Partition.Cost / Rec.Partition.BodyWeight
              : 0.0;
      const double Actual = StatIt->second.reexecRatio();
      Corr.add(EstRatio, Actual);
      T.beginRow();
      T.cell(W.Name);
      T.cell(Rec.FuncName + "#" + std::to_string(Rec.Header));
      T.cell(EstRatio, 4);
      T.cell(Actual, 4);
    }
  }
  if (Print)
    T.print(outs());
  return {Corr.pearson(), Corr.count()};
}

} // namespace

int main() {
  outs() << "==============================================================\n";
  outs() << " Figure 19: estimated misspeculation cost vs measured\n";
  outs() << " re-execution ratio (best mode)\n";
  outs() << "==============================================================\n";

  outs() << "\n-- call effects modeled in the cost estimate (default) --\n";
  auto [CorrOn, NOn] = scatter(/*ModelCallEffects=*/true, /*Print=*/true);
  outs() << "Pearson r = " << formatDouble(CorrOn, 3) << " over "
         << NOn << " loops\n";

  outs() << "\n-- the paper's blind spot: callee effects ignored --\n";
  auto [CorrOff, NOff] = scatter(/*ModelCallEffects=*/false, /*Print=*/true);
  outs() << "Pearson r = " << formatDouble(CorrOff, 3) << " over "
         << NOff << " loops\n";

  outs() << "\nShape check: estimates and measurements correlate; with the\n"
            "blind spot enabled, loops whose callees touch globals appear\n"
            "near the measured axis (cost underestimated), as the paper\n"
            "observed and called an area for improvement.\n";
  return 0;
}
