//===- bench/micro_costmodel.cpp - google-benchmark microbenchmarks -----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Microbenchmarks (google-benchmark) of the compilation framework's inner
// loops: dependence-graph construction, misspeculation-cost evaluation,
// the branch-and-bound partition search and the interpreter. These bound
// the compile-time cost of the cost-driven approach (the paper worried
// about "exceedingly long compilation time" and capped violation
// candidates at 30 for this reason).
//
//===----------------------------------------------------------------------===//

#include "spt.h"

#include <benchmark/benchmark.h>

using namespace spt;

namespace {

/// A mid-sized loop with several violation candidates.
const char *KernelSrc =
    "int a[512]; int b[512]; int hist[64];\n"
    "int f(int n) {\n"
    "  int i; int s; int t; int u;\n"
    "  for (i = 0; i < n; i = i + 1) {\n"
    "    int v; int h;\n"
    "    v = a[i % 512] * 3 + (b[i % 512] >> 2);\n"
    "    t = t + v;\n"
    "    u = u ^ (v * 31);\n"
    "    h = v % 64;\n"
    "    if (h < 0) h = 0 - h;\n"
    "    hist[h] = hist[h] + 1;\n"
    "    b[i % 512] = v - t % 97;\n"
    "    s = s + t + u;\n"
    "  }\n"
    "  return s;\n"
    "}\n";

struct KernelFixture {
  std::unique_ptr<Module> M;
  const Function *F;
  CfgInfo Cfg;
  LoopNest Nest;
  CfgProbabilities Probs;
  FreqInfo Freq;
  CallEffects Effects;

  KernelFixture()
      : M(compileOrDie(KernelSrc)), F(M->findFunction("f")),
        Cfg(CfgInfo::compute(*F)), Nest(LoopNest::compute(*F, Cfg)),
        Probs(CfgProbabilities::staticHeuristic(*F, Cfg, Nest)),
        Freq(FreqInfo::compute(*F, Cfg, Nest, Probs)),
        Effects(CallEffects::compute(*M)) {}
};

KernelFixture &fixture() {
  static KernelFixture K;
  return K;
}

void BM_DepGraphBuild(benchmark::State &State) {
  KernelFixture &K = fixture();
  for (auto _ : State) {
    LoopDepGraph G = LoopDepGraph::build(*K.M, *K.F, K.Cfg, K.Nest,
                                         *K.Nest.loop(0), K.Freq, K.Effects);
    benchmark::DoNotOptimize(G.edges().size());
  }
}
BENCHMARK(BM_DepGraphBuild);

void BM_CostModelConstruct(benchmark::State &State) {
  KernelFixture &K = fixture();
  LoopDepGraph G = LoopDepGraph::build(*K.M, *K.F, K.Cfg, K.Nest,
                                       *K.Nest.loop(0), K.Freq, K.Effects);
  for (auto _ : State) {
    MisspecCostModel Model(G);
    benchmark::DoNotOptimize(Model.hasCycles());
  }
}
BENCHMARK(BM_CostModelConstruct);

void BM_CostEvaluation(benchmark::State &State) {
  KernelFixture &K = fixture();
  LoopDepGraph G = LoopDepGraph::build(*K.M, *K.F, K.Cfg, K.Nest,
                                       *K.Nest.loop(0), K.Freq, K.Effects);
  MisspecCostModel Model(G);
  PartitionSet Empty(G.size(), 0);
  for (auto _ : State)
    benchmark::DoNotOptimize(Model.cost(Empty));
}
BENCHMARK(BM_CostEvaluation);

void BM_PartitionSearch(benchmark::State &State) {
  KernelFixture &K = fixture();
  LoopDepGraph G = LoopDepGraph::build(*K.M, *K.F, K.Cfg, K.Nest,
                                       *K.Nest.loop(0), K.Freq, K.Effects);
  MisspecCostModel Model(G);
  for (auto _ : State) {
    PartitionResult R = PartitionSearch(G, Model).run();
    benchmark::DoNotOptimize(R.Cost);
  }
}
BENCHMARK(BM_PartitionSearch);

void BM_PartitionSearchNoPruning(benchmark::State &State) {
  KernelFixture &K = fixture();
  LoopDepGraph G = LoopDepGraph::build(*K.M, *K.F, K.Cfg, K.Nest,
                                       *K.Nest.loop(0), K.Freq, K.Effects);
  MisspecCostModel Model(G);
  PartitionOptions Opts;
  Opts.EnableSizePrune = false;
  Opts.EnableLowerBoundPrune = false;
  for (auto _ : State) {
    PartitionResult R = PartitionSearch(G, Model, Opts).run();
    benchmark::DoNotOptimize(R.Cost);
  }
}
BENCHMARK(BM_PartitionSearchNoPruning);

void BM_InterpreterSteps(benchmark::State &State) {
  KernelFixture &K = fixture();
  for (auto _ : State) {
    Interpreter In(*K.M);
    In.startCall(K.F, {Value::ofInt(256)});
    benchmark::DoNotOptimize(In.run());
  }
}
BENCHMARK(BM_InterpreterSteps);

} // namespace

BENCHMARK_MAIN();
