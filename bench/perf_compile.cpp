//===- bench/perf_compile.cpp - Compile-time performance benchmark ----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Times the planning pipeline itself, in two phases:
//
// Phase 1 — pass 1 (dependence graphs, cost models, branch-and-bound
// partition searches over every loop candidate) across the ten workloads,
// under three configurations:
//
//   baseline  retained pre-optimization evaluation paths, sequential
//             (ReferencePartitionEvaluation; the pre-PR behaviour),
//   seq       incremental scratch evaluation, sequential,
//   par       incremental scratch evaluation, parallel pass 1,
//   obs       seq with span tracing and counter recording enabled; its
//             wall time against seq is the observability overhead, and
//             its aggregate stats dump lands in the JSON output.
//
// All four must produce byte-identical deterministic reports (the
// incremental cost path is bit-exact against the reference, the parallel
// merge is deterministic, and observability never feeds back into
// planning); the binary fails loudly if they do not.
//
// Phase 2 — a partition-search stress sweep. The workload sources are
// compact teaching kernels whose loops carry only a handful of violation
// candidates, so at production thresholds the phase-1 searches are tiny
// and pass 1 is dominated by fixed analysis costs. To measure the search
// itself at production scale, each workload loop's dependence graph is
// replicated into a large synthetic body: Filler pinned (immovable)
// copies modelling the bulk of a hot loop that cannot legally move,
// followed by K movable copies carrying the violation candidates.
// Intra-iteration back-edges are dropped (the paper's acyclic regime;
// every original workload graph is cyclic, which would collapse the
// incremental path to full re-propagation and the search to a handful of
// nodes). Reference and incremental searches run over identical graphs
// with identical options and must agree bitwise on cost, chosen
// partition, visit counts and prune counts.
//
// The headline number is the total (phase 1 + phase 2) wall-time speedup
// of the optimized sequential configuration over the pre-PR baseline.
// Results go to stdout and to a JSON file (default BENCH_compile.json)
// for the bench trajectory.
//
// Flags: --quick (3 workloads, small stress graphs, 1 repeat), --jobs=N
// (parallel config's thread count; 0 = hardware concurrency), --repeat=N
// (keep the fastest of N timings), --out=PATH.
//
//===----------------------------------------------------------------------===//

#include "spt.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace spt;

namespace {

using Clock = std::chrono::steady_clock;

struct ConfigRun {
  double PassOneSeconds = 0.0; ///< Fastest repeat.
  std::string Rendered;        ///< Deterministic report serialization.
  uint64_t Nodes = 0;          ///< Sum of search-tree nodes over loops.
  uint64_t CostEvals = 0;      ///< Sum of cost-model evaluations.
};

/// Compiles \p W Repeat times through the spt::Compiler facade. \p Obs,
/// when non-null, turns on span tracing and counter recording into that
/// shared context (the "obs" configuration); null compiles with
/// observability off, the facade's default.
ConfigRun runConfig(const Workload &W, bool Reference, uint32_t Jobs,
                    int Repeat, ObsContext *Obs = nullptr) {
  ConfigRun Out;
  for (int R = 0; R != Repeat; ++R) {
    auto M = compileWorkload(W);
    SptCompilerOptions Opts;
    Opts.ReferencePartitionEvaluation = Reference;
    Opts.Jobs = Jobs;
    if (Obs)
      Opts = Opts.withTracing(Obs);
    Compiler C(Opts);
    CompilationReport Report = C.compile(*M);
    if (R == 0) {
      Out.PassOneSeconds = Report.PassOneSeconds;
      Out.Rendered = renderReportDeterministic(Report);
      for (const LoopRecord &L : Report.Loops) {
        Out.Nodes += L.Partition.NodesVisited;
        Out.CostEvals += L.Partition.CostEvals;
      }
    } else {
      Out.PassOneSeconds =
          std::min(Out.PassOneSeconds, Report.PassOneSeconds);
    }
  }
  return Out;
}

/// Builds the phase-2 stress graph: Filler pinned copies of the loop body
/// (statements marked immovable — the production-body bulk the searcher
/// must cost but may never move) followed by K movable copies, each copy
/// keeping the original cross-iteration edges and the forward intra
/// edges only (acyclic regime). Copies are disjoint, so the search tree
/// over the movable copies is the K-fold product of the original loop's.
LoopDepGraph replicateForStress(const LoopDepGraph &G, unsigned Filler,
                                unsigned K) {
  const uint32_t N = static_cast<uint32_t>(G.size());
  std::vector<LoopStmt> Stmts;
  std::vector<DepEdge> Edges;
  for (unsigned C = 0; C != Filler + K; ++C) {
    for (uint32_t SI = 0; SI != N; ++SI) {
      LoopStmt S = G.stmt(SI);
      S.Id = NoStmt; // Synthetic statements have no source identity.
      S.I = nullptr;
      if (C < Filler)
        S.Movable = false;
      Stmts.push_back(S);
    }
    for (const DepEdge &E : G.edges()) {
      if (!E.Cross && E.Src >= E.Dst)
        continue; // Forward intra edges only: the paper's acyclic regime.
      DepEdge D = E;
      D.Src += C * N;
      D.Dst += C * N;
      Edges.push_back(D);
    }
  }
  return LoopDepGraph::forSynthetic(std::move(Stmts), std::move(Edges));
}

/// Accumulated phase-2 results for one evaluation strategy.
struct StressRun {
  double Seconds = 0.0;
  uint64_t Nodes = 0;
  uint64_t CostEvals = 0;
};

/// True when both strategies produced bitwise-identical results.
bool sameResult(const PartitionResult &A, const PartitionResult &B) {
  return std::memcmp(&A.Cost, &B.Cost, sizeof(double)) == 0 &&
         A.ChosenVcs == B.ChosenVcs && A.InPreFork == B.InPreFork &&
         A.NodesVisited == B.NodesVisited && A.CostEvals == B.CostEvals &&
         A.SizePrunes == B.SizePrunes &&
         A.LowerBoundPrunes == B.LowerBoundPrunes;
}

/// Runs the phase-2 sweep over every loop of every workload in Suite,
/// timing reference and incremental searches over identical stress
/// graphs. Model construction is included in the timed region — the
/// reference constructor's O(E*V) topological rescans are part of the
/// pre-PR cost.
void runStress(const std::vector<Workload> &Suite, unsigned Filler,
               unsigned K, StressRun &Ref, StressRun &Inc,
               bool &Identical) {
  for (const Workload &W : Suite) {
    auto M = compileWorkload(W);
    CallEffects Effects = CallEffects::compute(*M);
    for (size_t FI = 0; FI != M->numFunctions(); ++FI) {
      const Function *F = M->function(static_cast<uint32_t>(FI));
      if (F->isExternal() || F->numBlocks() == 0)
        continue;
      CfgInfo Cfg = CfgInfo::compute(*F);
      LoopNest Nest = LoopNest::compute(*F, Cfg);
      CfgProbabilities Probs =
          CfgProbabilities::staticHeuristic(*F, Cfg, Nest);
      FreqInfo Freq = FreqInfo::compute(*F, Cfg, Nest, Probs);
      for (uint32_t LI = 0; LI != Nest.numLoops(); ++LI) {
        LoopDepGraph G0 = LoopDepGraph::build(*M, *F, Cfg, Nest,
                                              *Nest.loop(LI), Freq, Effects);
        if (G0.violationCandidates().empty())
          continue;
        LoopDepGraph G = replicateForStress(G0, Filler, K);
        PartitionResult Results[2];
        for (int Mode = 0; Mode != 2; ++Mode) {
          PartitionOptions PO;
          PO.ReferenceEvaluation = Mode == 0;
          PO.MaxViolationCandidates = 100000;
          const auto T0 = Clock::now();
          MisspecCostModel Model(G, PO.ReferenceEvaluation);
          PartitionSearch S(G, Model, PO);
          Results[Mode] = S.run();
          const double Dt =
              std::chrono::duration<double>(Clock::now() - T0).count();
          StressRun &Acc = Mode == 0 ? Ref : Inc;
          Acc.Seconds += Dt;
          Acc.Nodes += Results[Mode].NodesVisited;
          Acc.CostEvals += Results[Mode].CostEvals;
        }
        if (!sameResult(Results[0], Results[1]))
          Identical = false;
      }
    }
  }
}

std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

std::string fmt2(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  uint32_t Jobs = 0; // Hardware concurrency.
  int Repeat = 3;
  std::string OutPath = "BENCH_compile.json";
  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--quick") {
      Quick = true;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      Jobs = static_cast<uint32_t>(std::atoi(Arg.c_str() + 7));
    } else if (Arg.rfind("--repeat=", 0) == 0) {
      Repeat = std::max(1, std::atoi(Arg.c_str() + 9));
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(6);
    } else {
      errs() << "unknown flag: " << Arg
             << " (expected --quick --jobs=N --repeat=N --out=PATH)\n";
      return 2;
    }
  }
  if (Quick)
    Repeat = 1;
  const uint32_t EffectiveJobs =
      Jobs == 0 ? ThreadPool::defaultConcurrency() : Jobs;
  const unsigned StressFiller = Quick ? 2 : 8;
  const unsigned StressK = Quick ? 4 : 8;

  outs() << "==============================================================\n";
  outs() << " perf_compile: pass-1 + partition-search wall time\n";
  outs() << " baseline = reference evaluation (pre-optimization paths)\n";
  outs() << " par jobs = " << EffectiveJobs << ", repeat = " << Repeat
         << ", stress = " << StressFiller << " pinned + " << StressK
         << " movable copies\n";
  outs() << "==============================================================\n";

  std::vector<Workload> Suite = allWorkloads();
  if (Quick)
    Suite.resize(3);

  Table T({"workload", "nodes", "cost evals", "baseline (s)", "seq (s)",
           "par (s)", "obs (s)", "speedup seq", "speedup par",
           "identical"});

  double BaseTotal = 0.0, SeqTotal = 0.0, ParTotal = 0.0, ObsTotal = 0.0;
  uint64_t NodesTotal = 0, EvalsTotal = 0;
  bool AllIdentical = true;
  ObsContext ObsCtx; // Shared sink for every obs-configuration compile.
  std::string Json;
  Json += "{\n  \"workloads\": [\n";

  for (size_t WI = 0; WI != Suite.size(); ++WI) {
    const Workload &W = Suite[WI];
    const ConfigRun Base = runConfig(W, /*Reference=*/true, 1, Repeat);
    const ConfigRun Seq = runConfig(W, /*Reference=*/false, 1, Repeat);
    const ConfigRun Par = runConfig(W, /*Reference=*/false, Jobs, Repeat);
    const ConfigRun Obs =
        runConfig(W, /*Reference=*/false, 1, Repeat, &ObsCtx);

    const bool Identical = Base.Rendered == Seq.Rendered &&
                           Seq.Rendered == Par.Rendered &&
                           Seq.Rendered == Obs.Rendered;
    AllIdentical = AllIdentical && Identical;
    BaseTotal += Base.PassOneSeconds;
    SeqTotal += Seq.PassOneSeconds;
    ParTotal += Par.PassOneSeconds;
    ObsTotal += Obs.PassOneSeconds;
    NodesTotal += Seq.Nodes;
    EvalsTotal += Seq.CostEvals;

    const double SpeedSeq = Base.PassOneSeconds / Seq.PassOneSeconds;
    const double SpeedPar = Base.PassOneSeconds / Par.PassOneSeconds;
    T.beginRow();
    T.cell(W.Name);
    T.cell(Seq.Nodes);
    T.cell(Seq.CostEvals);
    T.cell(fmt(Base.PassOneSeconds));
    T.cell(fmt(Seq.PassOneSeconds));
    T.cell(fmt(Par.PassOneSeconds));
    T.cell(fmt(Obs.PassOneSeconds));
    T.cell(fmt2(SpeedSeq));
    T.cell(fmt2(SpeedPar));
    T.cell(Identical ? "yes" : "NO");

    Json += "    {\"name\": \"" + W.Name + "\"";
    Json += ", \"nodes\": " + std::to_string(Seq.Nodes);
    Json += ", \"cost_evals\": " + std::to_string(Seq.CostEvals);
    Json += ", \"baseline_seconds\": " + fmt(Base.PassOneSeconds);
    Json += ", \"seq_seconds\": " + fmt(Seq.PassOneSeconds);
    Json += ", \"par_seconds\": " + fmt(Par.PassOneSeconds);
    Json += ", \"obs_seconds\": " + fmt(Obs.PassOneSeconds);
    Json += ", \"speedup_seq\": " + fmt2(SpeedSeq);
    Json += ", \"speedup_par\": " + fmt2(SpeedPar);
    Json += std::string(", \"reports_identical\": ") +
            (Identical ? "true" : "false") + "}";
    Json += WI + 1 != Suite.size() ? ",\n" : "\n";
  }

  T.print(outs());

  const double SpeedSeq = BaseTotal / SeqTotal;
  const double SpeedPar = BaseTotal / ParTotal;
  const double ObsOverhead = SeqTotal == 0.0 ? 0.0 : ObsTotal / SeqTotal;
  outs() << "\npass 1: baseline " << fmt(BaseTotal) << " s, seq "
         << fmt(SeqTotal) << " s (" << fmt2(SpeedSeq) << "x), par "
         << fmt(ParTotal) << " s (" << fmt2(SpeedPar) << "x), obs "
         << fmt(ObsTotal) << " s (" << fmt2(ObsOverhead)
         << "x of seq with tracing on)\n";
  outs() << "deterministic reports "
         << (AllIdentical ? "byte-identical across all configurations\n"
                          : "DIVERGED — bit-exactness violated\n");

  outs() << "\nstress sweep (" << StressFiller << " pinned + " << StressK
         << " movable copies per loop, acyclic regime) ...\n";
  StressRun StressRef, StressInc;
  bool StressIdentical = true;
  runStress(Suite, StressFiller, StressK, StressRef, StressInc,
            StressIdentical);
  AllIdentical = AllIdentical && StressIdentical;
  const double StressSpeed = StressRef.Seconds / StressInc.Seconds;
  outs() << "stress: baseline " << fmt(StressRef.Seconds) << " s, seq "
         << fmt(StressInc.Seconds) << " s (" << fmt2(StressSpeed)
         << "x), " << StressInc.Nodes << " nodes, " << StressInc.CostEvals
         << " cost evals, results "
         << (StressIdentical ? "bit-identical\n" : "DIVERGED\n");
  outs() << "stress throughput: "
         << fmt2(StressInc.Nodes / StressInc.Seconds) << " nodes/s, "
         << fmt2(StressInc.CostEvals / StressInc.Seconds)
         << " cost evals/s (baseline "
         << fmt2(StressRef.Nodes / StressRef.Seconds) << " nodes/s, "
         << fmt2(StressRef.CostEvals / StressRef.Seconds)
         << " cost evals/s)\n";

  const double TotalBase = BaseTotal + StressRef.Seconds;
  const double TotalSeq = SeqTotal + StressInc.Seconds;
  const double TotalPar = ParTotal + StressInc.Seconds;
  const double TotalSpeedSeq = TotalBase / TotalSeq;
  const double TotalSpeedPar = TotalBase / TotalPar;
  outs() << "\ntotal (pass 1 + stress): baseline " << fmt(TotalBase)
         << " s, seq " << fmt(TotalSeq) << " s (" << fmt2(TotalSpeedSeq)
         << "x), par " << fmt(TotalPar) << " s (" << fmt2(TotalSpeedPar)
         << "x)\n";

  Json += "  ],\n";
  Json += "  \"stress\": {";
  Json += "\"pinned_copies\": " + std::to_string(StressFiller);
  Json += ", \"movable_copies\": " + std::to_string(StressK);
  Json += ", \"baseline_seconds\": " + fmt(StressRef.Seconds);
  Json += ", \"seq_seconds\": " + fmt(StressInc.Seconds);
  Json += ", \"speedup_seq\": " + fmt2(StressSpeed);
  Json += ", \"nodes\": " + std::to_string(StressInc.Nodes);
  Json += ", \"cost_evals\": " + std::to_string(StressInc.CostEvals);
  Json += ", \"nodes_per_second_seq\": " +
          fmt2(StressInc.Nodes / StressInc.Seconds);
  Json += ", \"cost_evals_per_second_seq\": " +
          fmt2(StressInc.CostEvals / StressInc.Seconds);
  Json += std::string(", \"results_identical\": ") +
          (StressIdentical ? "true" : "false");
  Json += "},\n";
  Json += "  \"total\": {";
  Json += "\"baseline_seconds\": " + fmt(TotalBase);
  Json += ", \"seq_seconds\": " + fmt(TotalSeq);
  Json += ", \"par_seconds\": " + fmt(TotalPar);
  Json += ", \"speedup_seq\": " + fmt2(TotalSpeedSeq);
  Json += ", \"speedup_par\": " + fmt2(TotalSpeedPar);
  Json += ", \"pass1_baseline_seconds\": " + fmt(BaseTotal);
  Json += ", \"pass1_seq_seconds\": " + fmt(SeqTotal);
  Json += ", \"pass1_par_seconds\": " + fmt(ParTotal);
  Json += ", \"pass1_speedup_seq\": " + fmt2(SpeedSeq);
  Json += ", \"pass1_speedup_par\": " + fmt2(SpeedPar);
  Json += ", \"nodes\": " + std::to_string(NodesTotal + StressInc.Nodes);
  Json += ", \"cost_evals\": " +
          std::to_string(EvalsTotal + StressInc.CostEvals);
  Json += ", \"par_jobs\": " + std::to_string(EffectiveJobs);
  Json += ", \"hardware_concurrency\": " +
          std::to_string(ThreadPool::defaultConcurrency());
  Json += std::string(", \"reports_identical\": ") +
          (AllIdentical ? "true" : "false");
  Json += "},\n";
  // The obs configuration's aggregate stats block: counters, histogram
  // buckets and span counts over every traced compile of the run
  // (deterministic — no wall-clock inside).
  Json += "  \"observability\": {";
  Json += "\"pass1_obs_seconds\": " + fmt(ObsTotal);
  Json += ", \"pass1_overhead_vs_seq\": " + fmt2(ObsOverhead);
  std::string StatsJson = renderStatsJson(ObsCtx.snapshot());
  while (!StatsJson.empty() && StatsJson.back() == '\n')
    StatsJson.pop_back();
  Json += ", \"stats\": " + StatsJson;
  Json += "}\n}\n";

  std::ofstream Out(OutPath);
  Out << Json;
  Out.close();
  outs() << "wrote " << OutPath << "\n";

  return AllIdentical ? 0 : 1;
}
