//===- bench/perf_interp.cpp - Interpreter throughput benchmark --------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Times the interpreter's two engines against each other:
//
//   ref      the tree-walking switch engine (InterpDispatch::Reference),
//            one StepResult built and returned per instruction,
//   decoded  the pre-decoded flat stream with threaded dispatch and
//            superinstruction fusion (InterpDispatch::Decoded), run
//            record-free through run().
//
// Nodes are retired IR instructions. Every kernel is also executed once
// through both engines with full record streams and compared — chained
// hashStepResult over every record, plus output, return value and
// memoryHash — and the aggregate decoded throughput must be at least 2x
// the reference engine's, or the binary fails loudly: a perf regression
// in the hot loop is a build failure, not a trend-line footnote.
//
// The "interpreter" block is merged into the perf_compile JSON (default
// BENCH_compile.json) for the bench trajectory.
//
// Flags: --quick (smaller trip counts, 1 repeat), --repeat=N (keep the
// fastest of N timings), --out=PATH (JSON file to merge into).
//
//===----------------------------------------------------------------------===//

#include "spt.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace spt;

namespace {

using Clock = std::chrono::steady_clock;

std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

std::string fmt2(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Kernels. A spread of dispatch behaviours: tight fused arithmetic (the
// superinstruction best case), array traffic, call-heavy control flow
// (frame push/pop dominates), branchy code defeating fusion, and fp math
// through the builtin path.
//===----------------------------------------------------------------------===//

struct Kernel {
  const char *Name;
  const char *Source;
  int64_t N;      ///< Argument at full scale.
  int64_t QuickN; ///< Argument under --quick.
};

const Kernel kKernels[] = {
    {"int_sum",
     "int f(int n) {\n"
     "  int i; int s;\n"
     "  for (i = 0; i < n; i = i + 1) s = s + i * 3 + (i % 7);\n"
     "  return s;\n"
     "}\n",
     6000000, 200000},
    {"array_sweep",
     "int a[4096]; int b[4096];\n"
     "int f(int n) {\n"
     "  int i; int s;\n"
     "  for (i = 0; i < n; i = i + 1) {\n"
     "    int k;\n"
     "    k = i % 4096;\n"
     "    b[k] = a[k] * 3 + i;\n"
     "    s = s + b[k] % 17;\n"
     "  }\n"
     "  return s;\n"
     "}\n",
     3000000, 120000},
    {"call_heavy",
     "int leaf(int x) { return x * 2 + 1; }\n"
     "int twice(int x) { return leaf(x) + leaf(x + 1); }\n"
     "int f(int n) {\n"
     "  int i; int s;\n"
     "  for (i = 0; i < n; i = i + 1) s = s + twice(i % 97);\n"
     "  return s;\n"
     "}\n",
     1200000, 60000},
    {"branchy",
     "int f(int n) {\n"
     "  int i; int s;\n"
     "  for (i = 0; i < n; i = i + 1) {\n"
     "    if (i % 3 == 0) s = s + i;\n"
     "    else { if (i % 5 == 0) s = s - i; else s = s + 2; }\n"
     "  }\n"
     "  return s;\n"
     "}\n",
     3000000, 120000},
    {"fp_chain",
     "fp a[4096];\n"
     "int f(int n) {\n"
     "  int i; fp s;\n"
     "  for (i = 0; i < n; i = i + 1) {\n"
     "    int k; fp v;\n"
     "    k = i % 4096;\n"
     "    v = a[k] * 3.0 + 1.0;\n"
     "    a[k] = v / 7.0 + sqrt(v);\n"
     "    s = s + v;\n"
     "  }\n"
     "  return ftoi(s);\n"
     "}\n",
     1500000, 80000},
};

struct RowResult {
  std::string Name;
  uint64_t Nodes = 0;
  double SecRef = 0.0, SecDec = 0.0;
  uint32_t FusedOps = 0;         ///< Fused pairs in f's decoded image.
  bool ReportsIdentical = false; ///< Full record/arch-state differential.
};

template <typename FnT> double timeBest(int Repeat, FnT Fn) {
  double Best = 0.0;
  for (int R = 0; R != Repeat; ++R) {
    const auto T0 = Clock::now();
    Fn();
    const double S = std::chrono::duration<double>(Clock::now() - T0).count();
    if (R == 0 || S < Best)
      Best = S;
  }
  return Best;
}

/// One engine's observable run: chained record hash + architectural tail.
struct Observed {
  uint64_t StreamHash = 0xcbf29ce484222325ull;
  uint64_t Records = 0;
  bool Done = false;
  int64_t Ret = 0;
  std::string Output;
  uint64_t MemHash = 0;
};

Observed observeRun(const Module &M, const Function *F,
                    const std::vector<Value> &Args, InterpDispatch D) {
  Observed O;
  InterpOptions IO;
  IO.Dispatch = D;
  Interpreter In(M, IO);
  In.startCall(F, Args);
  if (D == InterpDispatch::Reference) {
    while (!In.done()) {
      O.StreamHash = hashStepResult(O.StreamHash, In.step());
      ++O.Records;
    }
  } else {
    auto Sink = makeStepSink([&](const StepResult &R) {
      O.StreamHash = hashStepResult(O.StreamHash, R);
      ++O.Records;
      return true;
    });
    In.runBatch(Sink);
  }
  O.Done = In.done();
  O.Ret = In.returnValue().I;
  O.Output = In.output();
  O.MemHash = In.memoryHash();
  return O;
}

RowResult runKernel(const Kernel &K, bool Quick, int Repeat) {
  RowResult Row;
  Row.Name = K.Name;
  auto M = compileOrDie(K.Source);
  const Function *F = M->findFunction("f");
  const std::vector<Value> Args = {Value::ofInt(Quick ? K.QuickN : K.N)};

  Row.FusedOps = M->decodeCache().imageFor(F)->NumFused;

  // Record-free timing: run() builds no StepResults in decoded mode; the
  // reference engine always materializes one per step, which is exactly
  // the per-step cost the decode pass exists to delete.
  uint64_t NodesRef = 0, NodesDec = 0;
  Row.SecRef = timeBest(Repeat, [&] {
    InterpOptions IO;
    IO.Dispatch = InterpDispatch::Reference;
    Interpreter In(*M, IO);
    In.startCall(F, Args);
    NodesRef = In.run();
  });
  Row.SecDec = timeBest(Repeat, [&] {
    InterpOptions IO;
    IO.Dispatch = InterpDispatch::Decoded;
    Interpreter In(*M, IO);
    In.startCall(F, Args);
    NodesDec = In.run();
  });
  Row.Nodes = NodesDec;

  // Full observational differential, once, with record streams on.
  const Observed Ref = observeRun(*M, F, Args, InterpDispatch::Reference);
  const Observed Dec = observeRun(*M, F, Args, InterpDispatch::Decoded);
  Row.ReportsIdentical =
      NodesRef == NodesDec && Ref.StreamHash == Dec.StreamHash &&
      Ref.Records == Dec.Records && Ref.Done && Dec.Done &&
      Ref.Ret == Dec.Ret && Ref.Output == Dec.Output &&
      Ref.MemHash == Dec.MemHash;
  return Row;
}

/// Merges \p Block (", \"interpreter\": {...}\n") into the JSON object at
/// \p Path, replacing any previous "interpreter" block (same scheme as
/// perf_sim's "simulator" merge).
void mergeIntoJson(const std::string &Path, const std::string &Block) {
  std::string Existing;
  {
    std::ifstream In(Path);
    std::stringstream SS;
    SS << In.rdbuf();
    Existing = SS.str();
  }
  const std::string Marker = ",\n  \"interpreter\":";
  std::string Out;
  const size_t Close = Existing.rfind('}');
  if (Close == std::string::npos) {
    Out = "{" + Block.substr(1) + "}\n";
  } else {
    const size_t Prev = Existing.find(Marker);
    std::string Prefix =
        Existing.substr(0, Prev != std::string::npos ? Prev : Close);
    while (!Prefix.empty() &&
           (Prefix.back() == '\n' || Prefix.back() == ' '))
      Prefix.pop_back();
    Out = Prefix + Block + "}\n";
  }
  std::ofstream O(Path);
  O << Out;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  int Repeat = 3;
  std::string OutPath = "BENCH_compile.json";
  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--quick") {
      Quick = true;
    } else if (Arg.rfind("--repeat=", 0) == 0) {
      Repeat = std::max(1, std::atoi(Arg.c_str() + 9));
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(6);
    } else {
      errs() << "unknown flag: " << Arg
             << " (expected --quick --repeat=N --out=PATH)\n";
      return 2;
    }
  }
  if (Quick)
    Repeat = 1;

  outs() << "==============================================================\n";
  outs() << " perf_interp: interpreter throughput (nodes = retired instrs)\n";
  outs() << " ref = tree-walking switch engine; decoded = pre-decoded\n";
  outs() << " stream, threaded dispatch + fusion; repeat = " << Repeat
         << "\n";
  outs() << "==============================================================\n";

  std::vector<RowResult> Rows;
  for (const Kernel &K : kKernels)
    Rows.push_back(runKernel(K, Quick, Repeat));

  Table T({"kernel", "nodes", "fused", "ref (s)", "decoded (s)",
           "Mnodes/s ref", "Mnodes/s decoded", "speedup", "identical"});
  uint64_t NodesTotal = 0;
  double RefTotal = 0.0, DecTotal = 0.0;
  bool AllIdentical = true;
  for (const RowResult &R : Rows) {
    NodesTotal += R.Nodes;
    RefTotal += R.SecRef;
    DecTotal += R.SecDec;
    AllIdentical = AllIdentical && R.ReportsIdentical;
    T.beginRow();
    T.cell(R.Name);
    T.cell(R.Nodes);
    T.cell(static_cast<uint64_t>(R.FusedOps));
    T.cell(fmt(R.SecRef));
    T.cell(fmt(R.SecDec));
    T.cell(fmt2(R.Nodes / R.SecRef / 1e6));
    T.cell(fmt2(R.Nodes / R.SecDec / 1e6));
    T.cell(fmt2(R.SecRef / R.SecDec));
    T.cell(R.ReportsIdentical ? "yes" : "NO");
  }
  T.print(outs());

  const double Speedup = RefTotal / DecTotal;
  outs() << "\nstress row (aggregate): " << NodesTotal << " nodes, decoded "
         << fmt2(NodesTotal / DecTotal / 1e6) << " Mnodes/s (ref "
         << fmt2(NodesTotal / RefTotal / 1e6) << "), speedup "
         << fmt2(Speedup) << "x, record streams "
         << (AllIdentical ? "byte-identical" : "DIVERGED") << "\n";

  // The gate: byte-identity is non-negotiable, and the decode pass must
  // still pay its rent — at least 2x the reference engine in aggregate.
  const bool FastEnough = Speedup >= 2.0;
  if (!FastEnough)
    errs() << "FAIL: decoded engine only " << fmt2(Speedup)
           << "x the reference engine (gate: >= 2x)\n";

  std::string Block = ",\n  \"interpreter\": {\n    \"rows\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowResult &R = Rows[I];
    Block += "      {\"name\": \"" + R.Name + "\"";
    Block += ", \"nodes\": " + std::to_string(R.Nodes);
    Block += ", \"fused_pairs\": " + std::to_string(R.FusedOps);
    Block += ", \"ref_seconds\": " + fmt(R.SecRef);
    Block += ", \"decoded_seconds\": " + fmt(R.SecDec);
    Block += ", \"nodes_per_second_ref\": " + fmt2(R.Nodes / R.SecRef);
    Block +=
        ", \"nodes_per_second_decoded\": " + fmt2(R.Nodes / R.SecDec);
    Block += ", \"speedup\": " + fmt2(R.SecRef / R.SecDec);
    Block += std::string(", \"reports_identical\": ") +
             (R.ReportsIdentical ? "true" : "false") + "}";
    Block += I + 1 != Rows.size() ? ",\n" : "\n";
  }
  Block += "    ],\n";
  Block += "    \"stress\": {";
  Block += "\"nodes\": " + std::to_string(NodesTotal);
  Block += ", \"ref_seconds\": " + fmt(RefTotal);
  Block += ", \"decoded_seconds\": " + fmt(DecTotal);
  Block += ", \"nodes_per_second_ref\": " + fmt2(NodesTotal / RefTotal);
  Block +=
      ", \"nodes_per_second_decoded\": " + fmt2(NodesTotal / DecTotal);
  Block += ", \"speedup\": " + fmt2(Speedup);
  Block += std::string(", \"reports_identical\": ") +
           (AllIdentical ? "true" : "false");
  Block += std::string(", \"meets_2x_gate\": ") +
           (FastEnough ? "true" : "false");
  Block += "}\n  }\n";

  mergeIntoJson(OutPath, Block);
  outs() << "merged \"interpreter\" block into " << OutPath << "\n";

  return AllIdentical && FastEnough ? 0 : 1;
}
