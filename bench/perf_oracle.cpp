//===- bench/perf_oracle.cpp - Dependence-oracle quality benchmark ----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what measured dependence profiles buy, per workload, across
// three compiles of the same module (docs/profiling.md):
//
//   static    the "static" oracle — no edge counts, no dependence
//             profile, heuristic branch probabilities; the
//             no-measurement-at-all baseline,
//   in-run    the default ensemble with in-run profiling (the
//             production configuration when no artifact is supplied),
//   ensemble  the default ensemble fed a measured artifact for the
//             workload's input distribution,
//
// plus the wall time and interpreter steps to produce each artifact (the
// offline cost a user pays once per input distribution). All three
// binaries are simulated against the sequential baseline.
//
// Gates (the binary exits nonzero unless all hold):
//   * at least one workload's chosen partitioning changes between the
//     static-only and measured compiles — the measurements must actually
//     steer the partitioner;
//   * the measured artifact's simulated speedup matches or beats the
//     no-artifact production compile on EVERY workload — serializing
//     measurements through an artifact must never cost performance over
//     measuring in-run (with the unroll routing guard the two are
//     plan-identical, so this gate enforces that losslessness);
//   * every simulation's architectural results match the sequential run.
//
// The "oracle" block is merged into the perf_compile JSON (default
// BENCH_compile.json) for the bench trajectory.
//
// Flags: --quick (1 repeat), --repeat=N (keep the fastest of N compile
// timings), --out=PATH (JSON file to merge into).
//
//===----------------------------------------------------------------------===//

#include "spt.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

using namespace spt;

namespace {

using Clock = std::chrono::steady_clock;

std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

std::string fmt2(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

double timeBest(int Repeat, const std::function<void()> &Fn) {
  double Best = 1e100;
  for (int I = 0; I != Repeat; ++I) {
    const auto T0 = Clock::now();
    Fn();
    const double Sec = std::chrono::duration<double>(Clock::now() - T0).count();
    Best = Sec < Best ? Sec : Best;
  }
  return Best;
}

/// The partitioning decisions of one report: per loop, whether it was
/// selected and which statements the partition chose to speculate.
/// Two reports with equal signatures chose the same plan.
std::string partitionSignature(const CompilationReport &R) {
  std::string Sig;
  std::istringstream In(renderReportDeterministic(R));
  std::string L;
  while (std::getline(In, L)) {
    if (L.find("selected=") != std::string::npos) {
      // "loop f:3 depth=... selected=1 sptId=..." — keep the loop
      // identity and the verdict.
      Sig += L.substr(0, L.find(" depth="));
      const size_t Sel = L.find("selected=");
      // Built up with += rather than "+ L.substr(...) +": GCC 12's -O3
      // -Werror=restrict trips a false positive (PR105651) on the
      // temporary-string operator+ chain, as in lang/AstPrinter.cpp.
      Sig += ' ';
      Sig += L.substr(Sel, L.find(' ', Sel) - Sel);
      Sig += '\n';
    } else if (L.find("chosen=") != std::string::npos) {
      const size_t At = L.find("chosen=");
      Sig += L.substr(At);
      Sig += '\n';
    }
  }
  return Sig;
}

struct RowResult {
  std::string Name;
  uint64_t ProfileSteps = 0;
  size_t Loops = 0, Pairs = 0;
  double SecProfile = 0.0, SecStatic = 0.0, SecInrun = 0.0, SecEnsemble = 0.0;
  double SpeedupStatic = 1.0, SpeedupInrun = 1.0, SpeedupEnsemble = 1.0;
  bool PartitionChangedVsStatic = false;
  bool RegressesVsInrun = false;
  bool ChecksumsMatch = true;
};

RowResult runWorkload(const Workload &W, int Repeat) {
  RowResult Row;
  Row.Name = W.Name;

  // Offline profiling cost: one artifact per (workload, distribution).
  auto Base = compileWorkload(W);
  DepProfilerOptions PO;
  PO.Workload = W.Name;
  const auto P0 = Clock::now();
  StatusOr<DepProfileArtifact> ArtifactOr = profileDependenceArtifact(*Base, PO);
  Row.SecProfile =
      std::chrono::duration<double>(Clock::now() - P0).count();
  Row.SecProfile = std::min(
      Row.SecProfile, timeBest(Repeat - 1, [&] {
        ArtifactOr = profileDependenceArtifact(*Base, PO);
      }));
  if (!ArtifactOr.isOk()) {
    errs() << W.Name << ": profiling failed: " << ArtifactOr.message()
           << "\n";
    std::exit(1);
  }
  auto Artifact = std::make_shared<DepProfileArtifact>(ArtifactOr.value());
  Row.ProfileSteps = Artifact->Steps;
  Row.Loops = Artifact->Loops.size();
  for (const DepArtifactLoop &L : Artifact->Loops)
    Row.Pairs += L.Pairs.size();

  // Static-only: heuristic branch probabilities, frequency-ratio
  // dependence probabilities, nothing measured anywhere.
  std::shared_ptr<Module> StaticM;
  CompilationReport StaticR;
  Row.SecStatic = timeBest(Repeat, [&] {
    StaticM = compileWorkload(W);
    StaticR = compileSpt(*StaticM, SptCompilerOptions::best()
                                       .withDependenceOracle("static"));
  });

  // The production default: ensemble with in-run profiling, no artifact.
  std::shared_ptr<Module> InrunM;
  CompilationReport InrunR;
  Row.SecInrun = timeBest(Repeat, [&] {
    InrunM = compileWorkload(W);
    InrunR = compileSpt(*InrunM, SptCompilerOptions::best());
  });

  // The default ensemble with the measured artifact installed.
  std::shared_ptr<Module> EnsembleM;
  CompilationReport EnsembleR;
  Row.SecEnsemble = timeBest(Repeat, [&] {
    EnsembleM = compileWorkload(W);
    EnsembleR = compileSpt(
        *EnsembleM,
        SptCompilerOptions::best().withProfileArtifact(Artifact, W.Name));
  });

  Row.PartitionChangedVsStatic =
      partitionSignature(StaticR) != partitionSignature(EnsembleR);

  // Simulate all three against the sequential baseline; an incorrect
  // binary disqualifies the whole row.
  SeqSimResult Seq = runSequential(*compileWorkload(W), "main", {});
  SptSimResult Static = runSpt(*StaticM, "main", {}, StaticR.SptLoops);
  SptSimResult Inrun = runSpt(*InrunM, "main", {}, InrunR.SptLoops);
  SptSimResult Ensemble = runSpt(*EnsembleM, "main", {}, EnsembleR.SptLoops);
  Row.ChecksumsMatch = Seq.Result.I == Static.Result.I &&
                       Seq.Result.I == Inrun.Result.I &&
                       Seq.Result.I == Ensemble.Result.I &&
                       Seq.MemoryHash == Static.MemoryHash &&
                       Seq.MemoryHash == Inrun.MemoryHash &&
                       Seq.MemoryHash == Ensemble.MemoryHash;
  Row.SpeedupStatic =
      Static.Subticks == 0 ? 1.0 : Seq.cycles() / Static.cycles();
  Row.SpeedupInrun =
      Inrun.Subticks == 0 ? 1.0 : Seq.cycles() / Inrun.cycles();
  Row.SpeedupEnsemble =
      Ensemble.Subticks == 0 ? 1.0 : Seq.cycles() / Ensemble.cycles();
  // A hair of float tolerance: the artifact must never cost simulated
  // performance relative to measuring in-run.
  Row.RegressesVsInrun =
      Row.SpeedupEnsemble < Row.SpeedupInrun * (1.0 - 1e-9);
  return Row;
}

/// Merges \p Block (", \"oracle\": {...}\n") into the JSON object at
/// \p Path, replacing any block a previous run inserted; writes a fresh
/// object when the file is missing.
void mergeIntoJson(const std::string &Path, const std::string &Block) {
  std::string Existing;
  {
    std::ifstream In(Path);
    std::stringstream SS;
    SS << In.rdbuf();
    Existing = SS.str();
  }
  const std::string Marker = ",\n  \"oracle\":";
  std::string Out;
  const size_t Close = Existing.rfind('}');
  if (Close == std::string::npos) {
    Out = "{" + Block.substr(1) + "}\n";
  } else {
    const size_t Prev = Existing.find(Marker);
    std::string Prefix =
        Existing.substr(0, Prev != std::string::npos ? Prev : Close);
    while (!Prefix.empty() &&
           (Prefix.back() == '\n' || Prefix.back() == ' '))
      Prefix.pop_back();
    Out = Prefix + Block + "}\n";
  }
  std::ofstream O(Path);
  O << Out;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  int Repeat = 3;
  std::string OutPath = "BENCH_compile.json";
  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--quick") {
      Quick = true;
    } else if (Arg.rfind("--repeat=", 0) == 0) {
      Repeat = std::max(1, std::atoi(Arg.c_str() + 9));
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(6);
    } else {
      errs() << "unknown flag: " << Arg
             << " (expected --quick --repeat=N --out=PATH)\n";
      return 2;
    }
  }
  if (Quick)
    Repeat = 1;

  outs() << "==============================================================\n";
  outs() << " perf_oracle: measured dependence profiles vs static-only\n";
  outs() << " static = heuristics only; in-run = default (profiled during\n";
  outs() << " the compile); ensemble = measured artifact installed.\n";
  outs() << " Speedups simulated vs sequential; repeat = " << Repeat << "\n";
  outs() << "==============================================================\n";

  std::vector<RowResult> Rows;
  for (const Workload &W : allWorkloads())
    Rows.push_back(runWorkload(W, Repeat));

  Table T({"workload", "profile (s)", "steps", "pairs", "static spdup",
           "in-run spdup", "ensemble spdup", "partition vs static",
           "vs in-run", "correct"});
  size_t Changed = 0;
  bool AllCorrect = true, NoRegression = true;
  double ProfileTotal = 0.0;
  for (const RowResult &R : Rows) {
    Changed += R.PartitionChangedVsStatic ? 1 : 0;
    AllCorrect = AllCorrect && R.ChecksumsMatch;
    NoRegression = NoRegression && !R.RegressesVsInrun;
    ProfileTotal += R.SecProfile;
    T.beginRow();
    T.cell(R.Name);
    T.cell(fmt(R.SecProfile));
    T.cell(R.ProfileSteps);
    T.cell(R.Pairs);
    T.cell(fmt2(R.SpeedupStatic));
    T.cell(fmt2(R.SpeedupInrun));
    T.cell(fmt2(R.SpeedupEnsemble));
    T.cell(R.PartitionChangedVsStatic ? "changed" : "same");
    T.cell(R.RegressesVsInrun ? "REGRESS" : "ok");
    T.cell(R.ChecksumsMatch ? "yes" : "NO");
  }
  T.print(outs());

  outs() << "\n" << Changed << "/" << Rows.size()
         << " workloads changed partitioning vs static-only, "
         << "profile overhead " << fmt(ProfileTotal) << " s total, "
         << (NoRegression ? "no regressions vs the in-run default"
                          : "ARTIFACT REGRESSED VS IN-RUN")
         << ", checksums "
         << (AllCorrect ? "all match\n" : "DIVERGED\n");

  std::string Block = ",\n  \"oracle\": {\n    \"rows\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowResult &R = Rows[I];
    Block += "      {\"name\": \"" + R.Name + "\"";
    Block += ", \"profile_seconds\": " + fmt(R.SecProfile);
    Block += ", \"profile_steps\": " + std::to_string(R.ProfileSteps);
    Block += ", \"profile_loops\": " + std::to_string(R.Loops);
    Block += ", \"profile_pairs\": " + std::to_string(R.Pairs);
    Block += ", \"compile_static_seconds\": " + fmt(R.SecStatic);
    Block += ", \"compile_inrun_seconds\": " + fmt(R.SecInrun);
    Block += ", \"compile_ensemble_seconds\": " + fmt(R.SecEnsemble);
    Block += ", \"speedup_static\": " + fmt2(R.SpeedupStatic);
    Block += ", \"speedup_inrun\": " + fmt2(R.SpeedupInrun);
    Block += ", \"speedup_ensemble\": " + fmt2(R.SpeedupEnsemble);
    Block += std::string(", \"partition_changed_vs_static\": ") +
             (R.PartitionChangedVsStatic ? "true" : "false");
    Block += std::string(", \"regresses_vs_inrun\": ") +
             (R.RegressesVsInrun ? "true" : "false");
    Block += std::string(", \"checksums_match\": ") +
             (R.ChecksumsMatch ? "true" : "false") + "}";
    Block += I + 1 != Rows.size() ? ",\n" : "\n";
  }
  Block += "    ],\n";
  Block += "    \"summary\": {";
  Block += "\"workloads\": " + std::to_string(Rows.size());
  Block += ", \"partitions_changed_vs_static\": " + std::to_string(Changed);
  Block += ", \"profile_seconds_total\": " + fmt(ProfileTotal);
  Block += std::string(", \"no_regression_vs_inrun\": ") +
           (NoRegression ? "true" : "false");
  Block += std::string(", \"checksums_match\": ") +
           (AllCorrect ? "true" : "false");
  Block += "}\n  }\n";

  mergeIntoJson(OutPath, Block);
  outs() << "merged \"oracle\" block into " << OutPath << "\n";

  return Changed > 0 && NoRegression && AllCorrect ? 0 : 1;
}
