//===- bench/perf_serve.cpp - Batch compilation service throughput ---------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures BatchCompileServer throughput: compiles/sec over a generated
// program batch at Jobs = 1/4/8 workers, cold cache vs warm cache.
//
// Per worker-count configuration the SAME server instance runs the batch
// twice: a cold pass (every program misses the compile cache and is
// compiled) and a warm pass (every program should be served from cache,
// checksum-verified). The server's parallelism is across compilations —
// each worker compiles whole programs at Jobs=1 — so this is the bench
// where worker scaling actually pays, unlike the per-program pass-1
// fan-out measured by perf_compile.
//
// Correctness gates (the bench fails loudly, speedups are reported not
// asserted):
//   - every configuration's reports, cold and warm, must be
//     byte-identical to the single-threaded cold reference,
//   - the warm pass must be served from cache (hits == programs).
//
// The scaling expectation (Jobs=8 >= 2x Jobs=1 cold) is only meaningful
// on a multi-core host; the JSON records hardware_concurrency so
// scripts/bench.sh can gate that assertion honestly instead of failing
// on single-core CI containers.
//
// Flags: --quick (100 programs), --programs=N (default 1000),
// --out=PATH (default BENCH_serve.json).
//
//===----------------------------------------------------------------------===//

#include "spt.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace spt;

namespace {

using Clock = std::chrono::steady_clock;

std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

std::string fmt2(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

/// One timed pass through an already-constructed server.
struct PassResult {
  double Seconds = 0.0;
  ServeBatchReport Report;
};

PassResult runPass(BatchCompileServer &Server,
                   const std::vector<ServeRequest> &Batch) {
  PassResult Out;
  const auto T0 = Clock::now();
  Server.start();
  for (const ServeRequest &R : Batch)
    Server.submitOrWait(R);
  Out.Report = Server.drain();
  Out.Seconds = std::chrono::duration<double>(Clock::now() - T0).count();
  return Out;
}

/// Byte-compares reports (and error messages) against the reference,
/// matched by request Id. Returns the mismatch count.
unsigned compareReports(const ServeBatchReport &Ref,
                        const ServeBatchReport &Got) {
  std::map<uint64_t, const ServeOutcome *> ById;
  for (const ServeOutcome &O : Ref.Outcomes)
    ById[O.Id] = &O;
  unsigned Bad = 0;
  for (const ServeOutcome &O : Got.Outcomes) {
    auto It = ById.find(O.Id);
    if (It == ById.end() || O.Report != It->second->Report ||
        O.Error.message() != It->second->Error.message())
      ++Bad;
  }
  if (Got.Outcomes.size() != Ref.Outcomes.size())
    ++Bad;
  return Bad;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Programs = 1000;
  std::string OutPath = "BENCH_serve.json";
  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--quick") {
      Programs = 100;
    } else if (Arg.rfind("--programs=", 0) == 0) {
      Programs = std::strtoull(Arg.c_str() + 11, nullptr, 10);
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(6);
    } else {
      errs() << "unknown flag: " << Arg
             << " (expected --quick --programs=N --out=PATH)\n";
      return 2;
    }
  }

  const unsigned Cores = std::thread::hardware_concurrency();
  outs() << "==============================================================\n";
  outs() << " perf_serve: batch compilation service throughput\n";
  outs() << " " << Programs << " generated programs, "
         << "hardware concurrency " << Cores << "\n";
  outs() << "==============================================================\n";

  GeneratorOptions GO;
  GO.MinLoops = 2;
  GO.MaxLoops = 3;
  GO.MaxStmtsPerBody = 5;
  GO.MaxTrip = 100;
  std::vector<ServeRequest> Batch;
  Batch.reserve(Programs);
  for (uint64_t I = 0; I != Programs; ++I) {
    ServeRequest R;
    R.Id = I + 1;
    R.Name = "gen/" + std::to_string(I);
    R.Source = generateProgram(1 + I, GO);
    Batch.push_back(std::move(R));
  }

  struct ConfigResult {
    unsigned Jobs;
    PassResult Cold, Warm;
    unsigned ColdBad = 0, WarmBad = 0;
  };
  const unsigned JobCounts[] = {1, 4, 8};
  std::vector<ConfigResult> Results;
  // Reserve up front: Reference points into the vector and must survive
  // the later push_backs.
  Results.reserve(std::size(JobCounts));
  const ServeBatchReport *Reference = nullptr;

  for (unsigned Jobs : JobCounts) {
    ServeOptions SO;
    SO.Workers = Jobs;
    SO.MaxQueue = 256; // Finite: submitOrWait exercises backpressure.
    SO.CacheCapacity = Programs + 64; // Room for the whole batch.
    SO.Compiler.ProfileMaxSteps = 2000000;
    BatchCompileServer Server(SO);

    ConfigResult R;
    R.Jobs = Jobs;
    R.Cold = runPass(Server, Batch); // Cache starts empty: every miss.
    R.Warm = runPass(Server, Batch); // Same server: cache is populated.
    Results.push_back(std::move(R));
    ConfigResult &C = Results.back();
    if (!Reference)
      Reference = &Results.front().Cold.Report; // Jobs=1 cold = gold.
    C.ColdBad = compareReports(*Reference, C.Cold.Report);
    C.WarmBad = compareReports(*Reference, C.Warm.Report);

    outs() << "jobs=" << Jobs << ": cold " << fmt(C.Cold.Seconds) << " s ("
           << fmt2(Programs / C.Cold.Seconds) << "/s), warm "
           << fmt(C.Warm.Seconds) << " s ("
           << fmt2(Programs / C.Warm.Seconds) << "/s), warm cache hits "
           << C.Warm.Report.Cache.Hits << ", identical "
           << (C.ColdBad + C.WarmBad == 0 ? "yes" : "NO") << "\n";
  }

  const ConfigResult &J1 = Results[0];
  const ConfigResult &J8 = Results.back();
  const double ColdSpeedup8 = J8.Cold.Seconds == 0.0
                                  ? 0.0
                                  : J1.Cold.Seconds / J8.Cold.Seconds;
  const double WarmSpeedup1 = J1.Warm.Seconds == 0.0
                                  ? 0.0
                                  : J1.Cold.Seconds / J1.Warm.Seconds;
  bool AllIdentical = true;
  bool WarmServedFromCache = true;
  for (const ConfigResult &C : Results) {
    AllIdentical = AllIdentical && C.ColdBad == 0 && C.WarmBad == 0;
    // The warm pass recompiles nothing when the cache worked: its delta
    // of hits over the cold pass must cover the whole batch.
    WarmServedFromCache =
        WarmServedFromCache &&
        C.Warm.Report.Cache.Hits >= C.Cold.Report.Cache.Hits + Programs;
  }

  outs() << "\ncold speedup jobs=8 vs jobs=1: " << fmt2(ColdSpeedup8)
         << "x (hardware concurrency " << Cores << ")\n";
  outs() << "warm-cache speedup at jobs=1: " << fmt2(WarmSpeedup1) << "x\n";
  outs() << "reports " << (AllIdentical ? "byte-identical" : "DIVERGED")
         << " across all configurations, warm passes "
         << (WarmServedFromCache ? "fully cache-served\n"
                                 : "NOT fully cache-served\n");

  std::string Json;
  Json += "{\n";
  Json += "  \"programs\": " + std::to_string(Programs) + ",\n";
  Json += "  \"hardware_concurrency\": " + std::to_string(Cores) + ",\n";
  Json += "  \"configs\": [\n";
  for (size_t CI = 0; CI != Results.size(); ++CI) {
    const ConfigResult &C = Results[CI];
    Json += "    {\"jobs\": " + std::to_string(C.Jobs);
    Json += ", \"cold_seconds\": " + fmt(C.Cold.Seconds);
    Json += ", \"cold_compiles_per_second\": " +
            fmt2(Programs / C.Cold.Seconds);
    Json += ", \"warm_seconds\": " + fmt(C.Warm.Seconds);
    Json += ", \"warm_compiles_per_second\": " +
            fmt2(Programs / C.Warm.Seconds);
    Json += ", \"warm_cache_hits\": " +
            std::to_string(C.Warm.Report.Cache.Hits);
    Json += std::string(", \"reports_identical\": ") +
            (C.ColdBad + C.WarmBad == 0 ? "true" : "false") + "}";
    Json += CI + 1 != Results.size() ? ",\n" : "\n";
  }
  Json += "  ],\n";
  Json += "  \"summary\": {";
  Json += "\"cold_speedup_jobs8_vs_jobs1\": " + fmt2(ColdSpeedup8);
  Json += ", \"warm_speedup_jobs1\": " + fmt2(WarmSpeedup1);
  Json += std::string(", \"reports_identical\": ") +
          (AllIdentical ? "true" : "false");
  Json += std::string(", \"warm_served_from_cache\": ") +
          (WarmServedFromCache ? "true" : "false");
  Json += "}\n}\n";

  std::ofstream Out(OutPath);
  Out << Json;
  Out.close();
  outs() << "wrote " << OutPath << "\n";

  return AllIdentical && WarmServedFromCache ? 0 : 1;
}
