//===- bench/perf_sim.cpp - Simulator throughput benchmark -------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Times the simulators themselves (SeqSim and SptSim) under the three
// fast-path configurations of sim/SimOptions.h:
//
//   ref    exact fidelity, block-timing memo off — the reference
//          scoreboard arithmetic instruction by instruction,
//   exact  exact fidelity with the memo on (the default): bit-identical
//          reports, elided scoreboard arithmetic on stable blocks,
//   ff     coarse fast-forward fidelity: architectural state and
//          speculation outcomes preserved, timing approximate.
//
// Nodes are simulated instructions (Result.Instrs); the headline is the
// stress row — the aggregate over every kernel — whose exact-fidelity
// nodes/s must come with reports_identical (the exact+memo report
// byte-equal to ref in every field, including MemoryHash) or the binary
// fails loudly. The "simulator" block is merged into the perf_compile
// JSON (default BENCH_compile.json) for the bench trajectory.
//
// Flags: --quick (smaller trip counts, 1 repeat), --repeat=N (keep the
// fastest of N timings), --out=PATH (JSON file to merge into).
//
//===----------------------------------------------------------------------===//

#include "spt.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace spt;

namespace {

using Clock = std::chrono::steady_clock;

std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

std::string fmt2(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Kernels. A deliberate spread of memo behaviours: stable profiles that
// hit, cache-strided bodies that keep invalidating, and a long carried fp
// chain that must back off — the throughput numbers cover the fast path,
// the slow path and the detection overhead between them.
//===----------------------------------------------------------------------===//

struct Kernel {
  const char *Name;
  const char *Source;
  int64_t N;      ///< Argument at full scale.
  int64_t QuickN; ///< Argument under --quick.
};

const Kernel kSeqKernels[] = {
    {"int_sum",
     "int f(int n) {\n"
     "  int i; int s;\n"
     "  for (i = 0; i < n; i = i + 1) s = s + i * 3 + (i % 7);\n"
     "  return s;\n"
     "}\n",
     3000000, 120000},
    {"array_sweep",
     "int a[4096]; int b[4096];\n"
     "int f(int n) {\n"
     "  int i; int s;\n"
     "  for (i = 0; i < n; i = i + 1) {\n"
     "    int k;\n"
     "    k = i % 4096;\n"
     "    b[k] = a[k] * 3 + i;\n"
     "    s = s + b[k] % 17;\n"
     "  }\n"
     "  return s;\n"
     "}\n",
     1500000, 80000},
    {"cache_stride",
     "int a[262144];\n"
     "int f(int n) {\n"
     "  int i; int s;\n"
     "  for (i = 0; i < n; i = i + 1)\n"
     "    s = s + a[(i * 1031) % 262144] + a[(i * 17) % 262144];\n"
     "  return s;\n"
     "}\n",
     800000, 60000},
    {"carried_fp_chain",
     "fp a[4096]; fp b[4096];\n"
     "int f(int n) {\n"
     "  int i; fp s;\n"
     "  for (i = 0; i < n; i = i + 1) {\n"
     "    int k; fp v;\n"
     "    k = i % 4096;\n"
     "    v = a[k] * 3.0 + 1.0;\n"
     "    v = v / 7.0 + sqrt(v);\n"
     "    b[k] = v;\n"
     "    s = s + v;\n"
     "  }\n"
     "  return ftoi(s);\n"
     "}\n",
     700000, 50000},
};

/// Speculation-heavy kernel for the SptSim rows (compiled through the
/// driver so the fork/kill placement is the production pipeline's).
const Kernel kSptKernels[] = {
    {"spt_independent",
     "fp a[4096]; fp b[4096]; fp c[4096];\n"
     "int main() {\n"
     "  int i; fp s;\n"
     "  for (i = 0; i < 250000; i = i + 1) {\n"
     "    int k; fp v; fp w;\n"
     "    k = i % 4096;\n"
     "    v = a[k] * 3.0 + 1.0;\n"
     "    v = v / 7.0 + sqrt(v);\n"
     "    w = a[(k + 7) % 4096] * 1.5 - 2.0;\n"
     "    w = sqrt(w * w + 3.0);\n"
     "    b[k] = v + w;\n"
     "    c[k] = v * 0.25 + w * 0.75;\n"
     "    s = s + 1.0;\n"
     "  }\n"
     "  return ftoi(s);\n"
     "}\n",
     0, 0},
    {"spt_mixed",
     "int a[8192];\n"
     "int main() {\n"
     "  int i;\n"
     "  a[0] = 1;\n"
     "  for (i = 1; i < 400000; i = i + 1) {\n"
     "    int k;\n"
     "    k = i % 8192;\n"
     "    if (i % 5 == 0) a[k] = a[(k + 8191) % 8192] * 3 + i;\n"
     "    else a[k] = i * 7 % 1023;\n"
     "  }\n"
     "  return a[8191];\n"
     "}\n",
     0, 0},
};

const char *kQuickSptReplacement[] = {"250000", "400000"};
const char *kQuickSptValue[] = {"20000", "30000"};

struct RowResult {
  std::string Name;
  uint64_t Nodes = 0;
  double SecRef = 0.0, SecExact = 0.0, SecFast = 0.0;
  double HitRate = 0.0;
  bool ReportsIdentical = false; ///< exact+memo vs ref, every field.
  bool MemHashIdentical = false; ///< across all three configurations.
};

bool sameSeq(const SeqSimResult &A, const SeqSimResult &B) {
  if (A.Subticks != B.Subticks || A.Instrs != B.Instrs ||
      A.Result.I != B.Result.I || A.Output != B.Output ||
      A.MemoryHash != B.MemoryHash || A.BranchLookups != B.BranchLookups ||
      A.BranchMispredicts != B.BranchMispredicts ||
      A.PerLoop.size() != B.PerLoop.size())
    return false;
  auto IA = A.PerLoop.begin();
  auto IB = B.PerLoop.begin();
  for (; IA != A.PerLoop.end(); ++IA, ++IB)
    if (IA->first != IB->first ||
        std::memcmp(&IA->second, &IB->second, sizeof(LoopSeqStats)) != 0)
      return false;
  return true;
}

bool sameSpt(const SptSimResult &A, const SptSimResult &B) {
  if (A.Subticks != B.Subticks || A.Instrs != B.Instrs ||
      A.Result.I != B.Result.I || A.Output != B.Output ||
      A.MemoryHash != B.MemoryHash || A.PerLoop.size() != B.PerLoop.size())
    return false;
  auto IA = A.PerLoop.begin();
  auto IB = B.PerLoop.begin();
  for (; IA != A.PerLoop.end(); ++IA, ++IB)
    if (IA->first != IB->first ||
        std::memcmp(&IA->second, &IB->second, sizeof(SptLoopRunStats)) != 0)
      return false;
  return true;
}

template <typename FnT> double timeBest(int Repeat, FnT Fn) {
  double Best = 0.0;
  for (int R = 0; R != Repeat; ++R) {
    const auto T0 = Clock::now();
    Fn();
    const double S = std::chrono::duration<double>(Clock::now() - T0).count();
    if (R == 0 || S < Best)
      Best = S;
  }
  return Best;
}

RowResult runSeqKernel(const Kernel &K, bool Quick, int Repeat) {
  RowResult Row;
  Row.Name = K.Name;
  auto M = compileOrDie(K.Source);
  const std::vector<Value> Args = {Value::ofInt(Quick ? K.QuickN : K.N)};

  SeqSimResult Ref, Exact, Fast;
  Row.SecRef = timeBest(Repeat, [&] {
    Ref = runSequential(*M, "f", Args, MachineConfig(), 500000000ull,
                        0x5eed5eed5eedull, SimOptions::exactNoMemo());
  });
  Row.SecExact = timeBest(Repeat, [&] {
    Exact = runSequential(*M, "f", Args);
  });
  Row.SecFast = timeBest(Repeat, [&] {
    Fast = runSequential(*M, "f", Args, MachineConfig(), 500000000ull,
                         0x5eed5eed5eedull, SimOptions::fastForward());
  });

  Row.Nodes = Exact.Instrs;
  Row.HitRate = Exact.Perf.hitRate();
  Row.ReportsIdentical = sameSeq(Ref, Exact);
  Row.MemHashIdentical = Ref.MemoryHash == Exact.MemoryHash &&
                         Ref.MemoryHash == Fast.MemoryHash;
  return Row;
}

RowResult runSptKernel(const Kernel &K, bool Quick, int Repeat,
                       unsigned Index) {
  RowResult Row;
  Row.Name = K.Name;
  std::string Source = K.Source;
  if (Quick) {
    const std::string From = kQuickSptReplacement[Index];
    const size_t At = Source.find(From);
    if (At != std::string::npos)
      Source.replace(At, From.size(), kQuickSptValue[Index]);
  }

  auto M = compileOrDie(Source);
  const CompilationReport Rep = compileSpt(*M, SptCompilerOptions::best());
  auto run = [&](const SimOptions &Sim) {
    return runSpt(*M, "main", {}, Rep.SptLoops, MachineConfig(),
                  500000000ull, 0x5eed5eed5eedull, nullptr, nullptr, Sim);
  };

  SptSimResult Ref, Exact, Fast;
  Row.SecRef = timeBest(Repeat, [&] { Ref = run(SimOptions::exactNoMemo()); });
  Row.SecExact = timeBest(Repeat, [&] { Exact = run(SimOptions::exact()); });
  Row.SecFast = timeBest(Repeat, [&] { Fast = run(SimOptions::fastForward()); });

  Row.Nodes = Exact.Instrs;
  Row.HitRate = Exact.Perf.hitRate();
  Row.ReportsIdentical = sameSpt(Ref, Exact);
  Row.MemHashIdentical = Ref.MemoryHash == Exact.MemoryHash &&
                         Ref.MemoryHash == Fast.MemoryHash &&
                         Fast.Result.I == Ref.Result.I &&
                         Fast.Instrs == Ref.Instrs;
  return Row;
}

/// Merges \p Block (", \"simulator\": {...}\n") into the JSON object at
/// \p Path, replacing any block a previous run inserted; writes a fresh
/// object when the file is missing.
void mergeIntoJson(const std::string &Path, const std::string &Block) {
  std::string Existing;
  {
    std::ifstream In(Path);
    std::stringstream SS;
    SS << In.rdbuf();
    Existing = SS.str();
  }
  const std::string Marker = ",\n  \"simulator\":";
  std::string Out;
  const size_t Close = Existing.rfind('}');
  if (Close == std::string::npos) {
    Out = "{" + Block.substr(1) + "}\n";
  } else {
    const size_t Prev = Existing.find(Marker);
    std::string Prefix =
        Existing.substr(0, Prev != std::string::npos ? Prev : Close);
    while (!Prefix.empty() &&
           (Prefix.back() == '\n' || Prefix.back() == ' '))
      Prefix.pop_back();
    Out = Prefix + Block + "}\n";
  }
  std::ofstream O(Path);
  O << Out;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  int Repeat = 3;
  std::string OutPath = "BENCH_compile.json";
  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--quick") {
      Quick = true;
    } else if (Arg.rfind("--repeat=", 0) == 0) {
      Repeat = std::max(1, std::atoi(Arg.c_str() + 9));
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(6);
    } else {
      errs() << "unknown flag: " << Arg
             << " (expected --quick --repeat=N --out=PATH)\n";
      return 2;
    }
  }
  if (Quick)
    Repeat = 1;

  outs() << "==============================================================\n";
  outs() << " perf_sim: simulator throughput (nodes = simulated instrs)\n";
  outs() << " ref = exact, memo off; exact = exact + block-timing memo\n";
  outs() << " ff = coarse fast-forward fidelity; repeat = " << Repeat
         << "\n";
  outs() << "==============================================================\n";

  std::vector<RowResult> Rows;
  for (const Kernel &K : kSeqKernels)
    Rows.push_back(runSeqKernel(K, Quick, Repeat));
  for (unsigned I = 0; I != 2; ++I)
    Rows.push_back(runSptKernel(kSptKernels[I], Quick, Repeat, I));

  Table T({"kernel", "nodes", "ref (s)", "exact (s)", "ff (s)",
           "Mnodes/s exact", "Mnodes/s ff", "memo hit", "speedup",
           "identical"});
  uint64_t NodesTotal = 0;
  double RefTotal = 0.0, ExactTotal = 0.0, FastTotal = 0.0;
  double HitWeighted = 0.0;
  bool AllIdentical = true, AllMemHash = true;
  for (const RowResult &R : Rows) {
    NodesTotal += R.Nodes;
    RefTotal += R.SecRef;
    ExactTotal += R.SecExact;
    FastTotal += R.SecFast;
    HitWeighted += R.HitRate * static_cast<double>(R.Nodes);
    AllIdentical = AllIdentical && R.ReportsIdentical;
    AllMemHash = AllMemHash && R.MemHashIdentical;
    T.beginRow();
    T.cell(R.Name);
    T.cell(R.Nodes);
    T.cell(fmt(R.SecRef));
    T.cell(fmt(R.SecExact));
    T.cell(fmt(R.SecFast));
    T.cell(fmt2(R.Nodes / R.SecExact / 1e6));
    T.cell(fmt2(R.Nodes / R.SecFast / 1e6));
    T.cell(fmt2(R.HitRate));
    T.cell(fmt2(R.SecRef / R.SecExact));
    T.cell(R.ReportsIdentical && R.MemHashIdentical ? "yes" : "NO");
  }
  T.print(outs());

  const double HitRate =
      NodesTotal == 0 ? 0.0 : HitWeighted / static_cast<double>(NodesTotal);
  outs() << "\nstress row (aggregate): " << NodesTotal << " nodes, exact "
         << fmt2(NodesTotal / ExactTotal / 1e6) << " Mnodes/s (ref "
         << fmt2(NodesTotal / RefTotal / 1e6) << ", ff "
         << fmt2(NodesTotal / FastTotal / 1e6) << "), memo hit rate "
         << fmt2(HitRate) << ", reports "
         << (AllIdentical ? "byte-identical" : "DIVERGED")
         << ", memory hashes "
         << (AllMemHash ? "byte-identical\n" : "DIVERGED\n");

  std::string Block = ",\n  \"simulator\": {\n    \"rows\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowResult &R = Rows[I];
    Block += "      {\"name\": \"" + R.Name + "\"";
    Block += ", \"nodes\": " + std::to_string(R.Nodes);
    Block += ", \"ref_seconds\": " + fmt(R.SecRef);
    Block += ", \"exact_seconds\": " + fmt(R.SecExact);
    Block += ", \"fast_forward_seconds\": " + fmt(R.SecFast);
    Block += ", \"nodes_per_second_exact\": " + fmt2(R.Nodes / R.SecExact);
    Block += ", \"nodes_per_second_ref\": " + fmt2(R.Nodes / R.SecRef);
    Block +=
        ", \"nodes_per_second_fast_forward\": " + fmt2(R.Nodes / R.SecFast);
    Block += ", \"memo_hit_rate\": " + fmt2(R.HitRate);
    Block += std::string(", \"reports_identical\": ") +
             (R.ReportsIdentical ? "true" : "false");
    Block += std::string(", \"memory_hash_identical\": ") +
             (R.MemHashIdentical ? "true" : "false") + "}";
    Block += I + 1 != Rows.size() ? ",\n" : "\n";
  }
  Block += "    ],\n";
  Block += "    \"stress\": {";
  Block += "\"nodes\": " + std::to_string(NodesTotal);
  Block += ", \"ref_seconds\": " + fmt(RefTotal);
  Block += ", \"exact_seconds\": " + fmt(ExactTotal);
  Block += ", \"fast_forward_seconds\": " + fmt(FastTotal);
  Block += ", \"nodes_per_second_exact\": " + fmt2(NodesTotal / ExactTotal);
  Block += ", \"nodes_per_second_ref\": " + fmt2(NodesTotal / RefTotal);
  Block += ", \"nodes_per_second_fast_forward\": " +
           fmt2(NodesTotal / FastTotal);
  Block += ", \"speedup_memo\": " + fmt2(RefTotal / ExactTotal);
  Block += ", \"memo_hit_rate\": " + fmt2(HitRate);
  Block += std::string(", \"reports_identical\": ") +
           (AllIdentical ? "true" : "false");
  Block += std::string(", \"memory_hash_identical\": ") +
           (AllMemHash ? "true" : "false");
  Block += "}\n  }\n";

  mergeIntoJson(OutPath, Block);
  outs() << "merged \"simulator\" block into " << OutPath << "\n";

  return AllIdentical && AllMemHash ? 0 : 1;
}
