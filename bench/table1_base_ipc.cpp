//===- bench/table1_base_ipc.cpp - Paper Table 1 ------------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: IPC (excluding nops; our IR has none) of the
// non-SPT base reference code on a single core, per benchmark. The paper's
// measured values are printed alongside for shape comparison — absolute
// numbers differ (its substrate was the authors' Itanium2 testbed; ours is
// the simulator in sim/), but the ranking pressure points (mcf and vortex
// memory-bound at the bottom, gzip/bzip2 at the top) should reproduce.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "spt.h"

#include <map>
#include <string>

using namespace spt;
using namespace spt::bench;

namespace {

const std::map<std::string, double> PaperIpc = {
    {"bzip2", 1.69}, {"crafty", 1.49}, {"gap", 1.30},    {"gcc", 1.33},
    {"gzip", 1.77},  {"mcf", 0.44},    {"parser", 1.30}, {"twolf", 1.05},
    {"vortex", 0.56}, {"vpr", 1.22},
};

} // namespace

int main() {
  outs() << "==============================================================\n";
  outs() << " Table 1: IPC of the non-SPT base reference (single core)\n";
  outs() << "==============================================================\n";

  Table T({"program", "instrs", "cycles", "IPC (ours)", "IPC (paper)"});
  double SumOurs = 0.0, SumPaper = 0.0;
  for (const Workload &W : allWorkloads()) {
    WorkloadEval E = evaluateWorkload(W, {});
    T.beginRow();
    T.cell(W.Name);
    T.cell(static_cast<uint64_t>(E.Seq.Instrs));
    T.cell(static_cast<uint64_t>(E.Seq.cycles()));
    T.cell(E.Seq.ipc(), 2);
    T.cell(PaperIpc.at(W.Name), 2);
    SumOurs += E.Seq.ipc();
    SumPaper += PaperIpc.at(W.Name);
  }
  T.beginRow();
  T.cell(std::string("average"));
  T.cell(std::string(""));
  T.cell(std::string(""));
  T.cell(SumOurs / 10.0, 2);
  T.cell(SumPaper / 10.0, 2);
  T.print(outs());

  outs() << "\nShape check: mcf and vortex are memory-bound outliers at the\n"
            "bottom; gzip/bzip2-class integer codes sit at the top.\n";
  return 0;
}
