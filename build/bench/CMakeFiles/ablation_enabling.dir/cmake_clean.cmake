file(REMOVE_RECURSE
  "CMakeFiles/ablation_enabling.dir/ablation_enabling.cpp.o"
  "CMakeFiles/ablation_enabling.dir/ablation_enabling.cpp.o.d"
  "ablation_enabling"
  "ablation_enabling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_enabling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
