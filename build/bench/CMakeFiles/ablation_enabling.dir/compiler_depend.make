# Empty compiler generated dependencies file for ablation_enabling.
# This may be replaced when dependencies are built.
