file(REMOVE_RECURSE
  "CMakeFiles/fig14_speedup.dir/fig14_speedup.cpp.o"
  "CMakeFiles/fig14_speedup.dir/fig14_speedup.cpp.o.d"
  "fig14_speedup"
  "fig14_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
