file(REMOVE_RECURSE
  "CMakeFiles/fig15_loop_breakdown.dir/fig15_loop_breakdown.cpp.o"
  "CMakeFiles/fig15_loop_breakdown.dir/fig15_loop_breakdown.cpp.o.d"
  "fig15_loop_breakdown"
  "fig15_loop_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_loop_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
