# Empty compiler generated dependencies file for fig15_loop_breakdown.
# This may be replaced when dependencies are built.
