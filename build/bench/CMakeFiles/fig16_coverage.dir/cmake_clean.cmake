file(REMOVE_RECURSE
  "CMakeFiles/fig16_coverage.dir/fig16_coverage.cpp.o"
  "CMakeFiles/fig16_coverage.dir/fig16_coverage.cpp.o.d"
  "fig16_coverage"
  "fig16_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
