# Empty compiler generated dependencies file for fig16_coverage.
# This may be replaced when dependencies are built.
