file(REMOVE_RECURSE
  "CMakeFiles/fig17_partition.dir/fig17_partition.cpp.o"
  "CMakeFiles/fig17_partition.dir/fig17_partition.cpp.o.d"
  "fig17_partition"
  "fig17_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
