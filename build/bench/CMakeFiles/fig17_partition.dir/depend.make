# Empty dependencies file for fig17_partition.
# This may be replaced when dependencies are built.
