file(REMOVE_RECURSE
  "CMakeFiles/fig18_loop_perf.dir/fig18_loop_perf.cpp.o"
  "CMakeFiles/fig18_loop_perf.dir/fig18_loop_perf.cpp.o.d"
  "fig18_loop_perf"
  "fig18_loop_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_loop_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
