# Empty compiler generated dependencies file for fig18_loop_perf.
# This may be replaced when dependencies are built.
