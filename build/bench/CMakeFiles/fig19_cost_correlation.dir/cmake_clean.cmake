file(REMOVE_RECURSE
  "CMakeFiles/fig19_cost_correlation.dir/fig19_cost_correlation.cpp.o"
  "CMakeFiles/fig19_cost_correlation.dir/fig19_cost_correlation.cpp.o.d"
  "fig19_cost_correlation"
  "fig19_cost_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_cost_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
