# Empty dependencies file for fig19_cost_correlation.
# This may be replaced when dependencies are built.
