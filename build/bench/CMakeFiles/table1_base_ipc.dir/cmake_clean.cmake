file(REMOVE_RECURSE
  "CMakeFiles/table1_base_ipc.dir/table1_base_ipc.cpp.o"
  "CMakeFiles/table1_base_ipc.dir/table1_base_ipc.cpp.o.d"
  "table1_base_ipc"
  "table1_base_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_base_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
