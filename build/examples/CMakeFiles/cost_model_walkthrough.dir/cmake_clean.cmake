file(REMOVE_RECURSE
  "CMakeFiles/cost_model_walkthrough.dir/cost_model_walkthrough.cpp.o"
  "CMakeFiles/cost_model_walkthrough.dir/cost_model_walkthrough.cpp.o.d"
  "cost_model_walkthrough"
  "cost_model_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
