# Empty dependencies file for cost_model_walkthrough.
# This may be replaced when dependencies are built.
