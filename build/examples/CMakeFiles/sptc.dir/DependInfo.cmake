
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sptc.cpp" "examples/CMakeFiles/sptc.dir/sptc.cpp.o" "gcc" "examples/CMakeFiles/sptc.dir/sptc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/spt_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/spt_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/spt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/spt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/svp/CMakeFiles/spt_svp.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/spt_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/spt_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/spt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/spt_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/spt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
