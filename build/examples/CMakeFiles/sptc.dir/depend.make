# Empty dependencies file for sptc.
# This may be replaced when dependencies are built.
