file(REMOVE_RECURSE
  "CMakeFiles/value_prediction.dir/value_prediction.cpp.o"
  "CMakeFiles/value_prediction.dir/value_prediction.cpp.o.d"
  "value_prediction"
  "value_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
