# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cost_model_walkthrough "/root/repo/build/examples/cost_model_walkthrough")
set_tests_properties(example_cost_model_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_value_prediction "/root/repo/build/examples/value_prediction")
set_tests_properties(example_value_prediction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_benchmark_explorer "/root/repo/build/examples/benchmark_explorer" "twolf" "best")
set_tests_properties(example_benchmark_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sptc_histogram "/root/repo/build/examples/sptc" "/root/repo/examples/kernels/histogram.sptc" "--mode" "best" "--report" "--simulate")
set_tests_properties(example_sptc_histogram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sptc_stencil_dot "/root/repo/build/examples/sptc" "/root/repo/examples/kernels/stencil.sptc" "--dot")
set_tests_properties(example_sptc_stencil_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
