
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CallEffects.cpp" "src/analysis/CMakeFiles/spt_analysis.dir/CallEffects.cpp.o" "gcc" "src/analysis/CMakeFiles/spt_analysis.dir/CallEffects.cpp.o.d"
  "/root/repo/src/analysis/Cfg.cpp" "src/analysis/CMakeFiles/spt_analysis.dir/Cfg.cpp.o" "gcc" "src/analysis/CMakeFiles/spt_analysis.dir/Cfg.cpp.o.d"
  "/root/repo/src/analysis/DepGraph.cpp" "src/analysis/CMakeFiles/spt_analysis.dir/DepGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/spt_analysis.dir/DepGraph.cpp.o.d"
  "/root/repo/src/analysis/DepGraphDot.cpp" "src/analysis/CMakeFiles/spt_analysis.dir/DepGraphDot.cpp.o" "gcc" "src/analysis/CMakeFiles/spt_analysis.dir/DepGraphDot.cpp.o.d"
  "/root/repo/src/analysis/Freq.cpp" "src/analysis/CMakeFiles/spt_analysis.dir/Freq.cpp.o" "gcc" "src/analysis/CMakeFiles/spt_analysis.dir/Freq.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/analysis/CMakeFiles/spt_analysis.dir/LoopInfo.cpp.o" "gcc" "src/analysis/CMakeFiles/spt_analysis.dir/LoopInfo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/spt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
