file(REMOVE_RECURSE
  "CMakeFiles/spt_analysis.dir/CallEffects.cpp.o"
  "CMakeFiles/spt_analysis.dir/CallEffects.cpp.o.d"
  "CMakeFiles/spt_analysis.dir/Cfg.cpp.o"
  "CMakeFiles/spt_analysis.dir/Cfg.cpp.o.d"
  "CMakeFiles/spt_analysis.dir/DepGraph.cpp.o"
  "CMakeFiles/spt_analysis.dir/DepGraph.cpp.o.d"
  "CMakeFiles/spt_analysis.dir/DepGraphDot.cpp.o"
  "CMakeFiles/spt_analysis.dir/DepGraphDot.cpp.o.d"
  "CMakeFiles/spt_analysis.dir/Freq.cpp.o"
  "CMakeFiles/spt_analysis.dir/Freq.cpp.o.d"
  "CMakeFiles/spt_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/spt_analysis.dir/LoopInfo.cpp.o.d"
  "libspt_analysis.a"
  "libspt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
