file(REMOVE_RECURSE
  "libspt_analysis.a"
)
