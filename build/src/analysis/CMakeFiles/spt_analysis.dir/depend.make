# Empty dependencies file for spt_analysis.
# This may be replaced when dependencies are built.
