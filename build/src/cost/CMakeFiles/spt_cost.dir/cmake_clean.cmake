file(REMOVE_RECURSE
  "CMakeFiles/spt_cost.dir/CostModel.cpp.o"
  "CMakeFiles/spt_cost.dir/CostModel.cpp.o.d"
  "libspt_cost.a"
  "libspt_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
