file(REMOVE_RECURSE
  "libspt_cost.a"
)
