# Empty dependencies file for spt_cost.
# This may be replaced when dependencies are built.
