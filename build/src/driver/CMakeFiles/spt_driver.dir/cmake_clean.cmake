file(REMOVE_RECURSE
  "CMakeFiles/spt_driver.dir/SptCompiler.cpp.o"
  "CMakeFiles/spt_driver.dir/SptCompiler.cpp.o.d"
  "libspt_driver.a"
  "libspt_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
