file(REMOVE_RECURSE
  "libspt_driver.a"
)
