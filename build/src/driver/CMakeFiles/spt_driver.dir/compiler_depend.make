# Empty compiler generated dependencies file for spt_driver.
# This may be replaced when dependencies are built.
