# Empty compiler generated dependencies file for spt_interp.
# This may be replaced when dependencies are built.
