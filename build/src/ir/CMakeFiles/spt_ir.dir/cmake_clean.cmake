file(REMOVE_RECURSE
  "CMakeFiles/spt_ir.dir/IR.cpp.o"
  "CMakeFiles/spt_ir.dir/IR.cpp.o.d"
  "CMakeFiles/spt_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/spt_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/spt_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/spt_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/spt_ir.dir/Opcode.cpp.o"
  "CMakeFiles/spt_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/spt_ir.dir/Verifier.cpp.o"
  "CMakeFiles/spt_ir.dir/Verifier.cpp.o.d"
  "libspt_ir.a"
  "libspt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
