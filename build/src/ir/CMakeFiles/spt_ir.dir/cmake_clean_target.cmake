file(REMOVE_RECURSE
  "libspt_ir.a"
)
