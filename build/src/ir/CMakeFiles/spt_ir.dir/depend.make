# Empty dependencies file for spt_ir.
# This may be replaced when dependencies are built.
