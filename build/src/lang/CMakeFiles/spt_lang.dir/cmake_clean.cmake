file(REMOVE_RECURSE
  "CMakeFiles/spt_lang.dir/Ast.cpp.o"
  "CMakeFiles/spt_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/spt_lang.dir/Frontend.cpp.o"
  "CMakeFiles/spt_lang.dir/Frontend.cpp.o.d"
  "CMakeFiles/spt_lang.dir/Lexer.cpp.o"
  "CMakeFiles/spt_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/spt_lang.dir/Lower.cpp.o"
  "CMakeFiles/spt_lang.dir/Lower.cpp.o.d"
  "CMakeFiles/spt_lang.dir/Parser.cpp.o"
  "CMakeFiles/spt_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/spt_lang.dir/ProgramGenerator.cpp.o"
  "CMakeFiles/spt_lang.dir/ProgramGenerator.cpp.o.d"
  "libspt_lang.a"
  "libspt_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
