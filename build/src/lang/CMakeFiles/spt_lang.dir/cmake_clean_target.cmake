file(REMOVE_RECURSE
  "libspt_lang.a"
)
