# Empty dependencies file for spt_lang.
# This may be replaced when dependencies are built.
