file(REMOVE_RECURSE
  "CMakeFiles/spt_partition.dir/Partition.cpp.o"
  "CMakeFiles/spt_partition.dir/Partition.cpp.o.d"
  "libspt_partition.a"
  "libspt_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
