file(REMOVE_RECURSE
  "libspt_partition.a"
)
