# Empty compiler generated dependencies file for spt_partition.
# This may be replaced when dependencies are built.
