
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/Profiler.cpp" "src/profile/CMakeFiles/spt_profile.dir/Profiler.cpp.o" "gcc" "src/profile/CMakeFiles/spt_profile.dir/Profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/spt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/spt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/spt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
