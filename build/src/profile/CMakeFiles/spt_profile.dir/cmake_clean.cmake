file(REMOVE_RECURSE
  "CMakeFiles/spt_profile.dir/Profiler.cpp.o"
  "CMakeFiles/spt_profile.dir/Profiler.cpp.o.d"
  "libspt_profile.a"
  "libspt_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
