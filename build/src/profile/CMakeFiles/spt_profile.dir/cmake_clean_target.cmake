file(REMOVE_RECURSE
  "libspt_profile.a"
)
