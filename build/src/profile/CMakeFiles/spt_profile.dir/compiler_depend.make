# Empty compiler generated dependencies file for spt_profile.
# This may be replaced when dependencies are built.
