
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Cache.cpp" "src/sim/CMakeFiles/spt_sim.dir/Cache.cpp.o" "gcc" "src/sim/CMakeFiles/spt_sim.dir/Cache.cpp.o.d"
  "/root/repo/src/sim/CoreTiming.cpp" "src/sim/CMakeFiles/spt_sim.dir/CoreTiming.cpp.o" "gcc" "src/sim/CMakeFiles/spt_sim.dir/CoreTiming.cpp.o.d"
  "/root/repo/src/sim/SeqSim.cpp" "src/sim/CMakeFiles/spt_sim.dir/SeqSim.cpp.o" "gcc" "src/sim/CMakeFiles/spt_sim.dir/SeqSim.cpp.o.d"
  "/root/repo/src/sim/SptSim.cpp" "src/sim/CMakeFiles/spt_sim.dir/SptSim.cpp.o" "gcc" "src/sim/CMakeFiles/spt_sim.dir/SptSim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/spt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/spt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/spt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
