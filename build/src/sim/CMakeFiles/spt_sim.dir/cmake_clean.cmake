file(REMOVE_RECURSE
  "CMakeFiles/spt_sim.dir/Cache.cpp.o"
  "CMakeFiles/spt_sim.dir/Cache.cpp.o.d"
  "CMakeFiles/spt_sim.dir/CoreTiming.cpp.o"
  "CMakeFiles/spt_sim.dir/CoreTiming.cpp.o.d"
  "CMakeFiles/spt_sim.dir/SeqSim.cpp.o"
  "CMakeFiles/spt_sim.dir/SeqSim.cpp.o.d"
  "CMakeFiles/spt_sim.dir/SptSim.cpp.o"
  "CMakeFiles/spt_sim.dir/SptSim.cpp.o.d"
  "libspt_sim.a"
  "libspt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
