file(REMOVE_RECURSE
  "libspt_sim.a"
)
