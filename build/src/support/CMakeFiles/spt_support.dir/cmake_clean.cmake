file(REMOVE_RECURSE
  "CMakeFiles/spt_support.dir/Debug.cpp.o"
  "CMakeFiles/spt_support.dir/Debug.cpp.o.d"
  "CMakeFiles/spt_support.dir/OStream.cpp.o"
  "CMakeFiles/spt_support.dir/OStream.cpp.o.d"
  "CMakeFiles/spt_support.dir/Random.cpp.o"
  "CMakeFiles/spt_support.dir/Random.cpp.o.d"
  "CMakeFiles/spt_support.dir/Statistics.cpp.o"
  "CMakeFiles/spt_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/spt_support.dir/Table.cpp.o"
  "CMakeFiles/spt_support.dir/Table.cpp.o.d"
  "libspt_support.a"
  "libspt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
