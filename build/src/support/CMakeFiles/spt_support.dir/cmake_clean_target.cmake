file(REMOVE_RECURSE
  "libspt_support.a"
)
