# Empty compiler generated dependencies file for spt_support.
# This may be replaced when dependencies are built.
