file(REMOVE_RECURSE
  "CMakeFiles/spt_svp.dir/Svp.cpp.o"
  "CMakeFiles/spt_svp.dir/Svp.cpp.o.d"
  "libspt_svp.a"
  "libspt_svp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_svp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
