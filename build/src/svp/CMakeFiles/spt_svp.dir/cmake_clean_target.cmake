file(REMOVE_RECURSE
  "libspt_svp.a"
)
