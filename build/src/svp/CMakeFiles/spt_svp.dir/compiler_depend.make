# Empty compiler generated dependencies file for spt_svp.
# This may be replaced when dependencies are built.
