
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/Cleanup.cpp" "src/transform/CMakeFiles/spt_transform.dir/Cleanup.cpp.o" "gcc" "src/transform/CMakeFiles/spt_transform.dir/Cleanup.cpp.o.d"
  "/root/repo/src/transform/SptTransform.cpp" "src/transform/CMakeFiles/spt_transform.dir/SptTransform.cpp.o" "gcc" "src/transform/CMakeFiles/spt_transform.dir/SptTransform.cpp.o.d"
  "/root/repo/src/transform/Unroll.cpp" "src/transform/CMakeFiles/spt_transform.dir/Unroll.cpp.o" "gcc" "src/transform/CMakeFiles/spt_transform.dir/Unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/spt_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/spt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/spt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
