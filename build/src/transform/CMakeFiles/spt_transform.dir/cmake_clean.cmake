file(REMOVE_RECURSE
  "CMakeFiles/spt_transform.dir/Cleanup.cpp.o"
  "CMakeFiles/spt_transform.dir/Cleanup.cpp.o.d"
  "CMakeFiles/spt_transform.dir/SptTransform.cpp.o"
  "CMakeFiles/spt_transform.dir/SptTransform.cpp.o.d"
  "CMakeFiles/spt_transform.dir/Unroll.cpp.o"
  "CMakeFiles/spt_transform.dir/Unroll.cpp.o.d"
  "libspt_transform.a"
  "libspt_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
