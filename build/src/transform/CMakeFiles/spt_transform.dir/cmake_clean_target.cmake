file(REMOVE_RECURSE
  "libspt_transform.a"
)
