# Empty dependencies file for spt_transform.
# This may be replaced when dependencies are built.
