
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/WBzip2.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/WBzip2.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/WBzip2.cpp.o.d"
  "/root/repo/src/workloads/WCrafty.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/WCrafty.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/WCrafty.cpp.o.d"
  "/root/repo/src/workloads/WGap.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/WGap.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/WGap.cpp.o.d"
  "/root/repo/src/workloads/WGcc.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/WGcc.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/WGcc.cpp.o.d"
  "/root/repo/src/workloads/WGzip.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/WGzip.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/WGzip.cpp.o.d"
  "/root/repo/src/workloads/WMcf.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/WMcf.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/WMcf.cpp.o.d"
  "/root/repo/src/workloads/WParser.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/WParser.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/WParser.cpp.o.d"
  "/root/repo/src/workloads/WTwolf.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/WTwolf.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/WTwolf.cpp.o.d"
  "/root/repo/src/workloads/WVortex.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/WVortex.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/WVortex.cpp.o.d"
  "/root/repo/src/workloads/WVpr.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/WVpr.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/WVpr.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/workloads/CMakeFiles/spt_workloads.dir/Workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/spt_workloads.dir/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/spt_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/spt_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
