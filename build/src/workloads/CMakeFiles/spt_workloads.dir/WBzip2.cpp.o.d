src/workloads/CMakeFiles/spt_workloads.dir/WBzip2.cpp.o: \
 /root/repo/src/workloads/WBzip2.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/WorkloadSources.h
