src/workloads/CMakeFiles/spt_workloads.dir/WCrafty.cpp.o: \
 /root/repo/src/workloads/WCrafty.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/WorkloadSources.h
