src/workloads/CMakeFiles/spt_workloads.dir/WGap.cpp.o: \
 /root/repo/src/workloads/WGap.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/WorkloadSources.h
