src/workloads/CMakeFiles/spt_workloads.dir/WGcc.cpp.o: \
 /root/repo/src/workloads/WGcc.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/WorkloadSources.h
