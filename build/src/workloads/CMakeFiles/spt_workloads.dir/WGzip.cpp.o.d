src/workloads/CMakeFiles/spt_workloads.dir/WGzip.cpp.o: \
 /root/repo/src/workloads/WGzip.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/WorkloadSources.h
