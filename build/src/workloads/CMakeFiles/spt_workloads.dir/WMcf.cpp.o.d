src/workloads/CMakeFiles/spt_workloads.dir/WMcf.cpp.o: \
 /root/repo/src/workloads/WMcf.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/WorkloadSources.h
