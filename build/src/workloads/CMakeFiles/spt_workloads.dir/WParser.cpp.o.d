src/workloads/CMakeFiles/spt_workloads.dir/WParser.cpp.o: \
 /root/repo/src/workloads/WParser.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/WorkloadSources.h
