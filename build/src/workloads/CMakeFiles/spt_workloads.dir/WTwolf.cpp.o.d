src/workloads/CMakeFiles/spt_workloads.dir/WTwolf.cpp.o: \
 /root/repo/src/workloads/WTwolf.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/WorkloadSources.h
