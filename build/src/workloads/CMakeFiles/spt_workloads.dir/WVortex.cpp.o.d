src/workloads/CMakeFiles/spt_workloads.dir/WVortex.cpp.o: \
 /root/repo/src/workloads/WVortex.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/WorkloadSources.h
