src/workloads/CMakeFiles/spt_workloads.dir/WVpr.cpp.o: \
 /root/repo/src/workloads/WVpr.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/WorkloadSources.h
