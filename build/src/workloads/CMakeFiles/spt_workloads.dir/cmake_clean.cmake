file(REMOVE_RECURSE
  "CMakeFiles/spt_workloads.dir/WBzip2.cpp.o"
  "CMakeFiles/spt_workloads.dir/WBzip2.cpp.o.d"
  "CMakeFiles/spt_workloads.dir/WCrafty.cpp.o"
  "CMakeFiles/spt_workloads.dir/WCrafty.cpp.o.d"
  "CMakeFiles/spt_workloads.dir/WGap.cpp.o"
  "CMakeFiles/spt_workloads.dir/WGap.cpp.o.d"
  "CMakeFiles/spt_workloads.dir/WGcc.cpp.o"
  "CMakeFiles/spt_workloads.dir/WGcc.cpp.o.d"
  "CMakeFiles/spt_workloads.dir/WGzip.cpp.o"
  "CMakeFiles/spt_workloads.dir/WGzip.cpp.o.d"
  "CMakeFiles/spt_workloads.dir/WMcf.cpp.o"
  "CMakeFiles/spt_workloads.dir/WMcf.cpp.o.d"
  "CMakeFiles/spt_workloads.dir/WParser.cpp.o"
  "CMakeFiles/spt_workloads.dir/WParser.cpp.o.d"
  "CMakeFiles/spt_workloads.dir/WTwolf.cpp.o"
  "CMakeFiles/spt_workloads.dir/WTwolf.cpp.o.d"
  "CMakeFiles/spt_workloads.dir/WVortex.cpp.o"
  "CMakeFiles/spt_workloads.dir/WVortex.cpp.o.d"
  "CMakeFiles/spt_workloads.dir/WVpr.cpp.o"
  "CMakeFiles/spt_workloads.dir/WVpr.cpp.o.d"
  "CMakeFiles/spt_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/spt_workloads.dir/Workloads.cpp.o.d"
  "libspt_workloads.a"
  "libspt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
