file(REMOVE_RECURSE
  "libspt_workloads.a"
)
