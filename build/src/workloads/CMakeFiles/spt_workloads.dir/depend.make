# Empty dependencies file for spt_workloads.
# This may be replaced when dependencies are built.
