file(REMOVE_RECURSE
  "CMakeFiles/depgraph_modes_test.dir/depgraph_modes_test.cpp.o"
  "CMakeFiles/depgraph_modes_test.dir/depgraph_modes_test.cpp.o.d"
  "depgraph_modes_test"
  "depgraph_modes_test.pdb"
  "depgraph_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depgraph_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
