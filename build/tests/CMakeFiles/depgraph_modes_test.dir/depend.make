# Empty dependencies file for depgraph_modes_test.
# This may be replaced when dependencies are built.
