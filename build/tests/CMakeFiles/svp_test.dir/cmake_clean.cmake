file(REMOVE_RECURSE
  "CMakeFiles/svp_test.dir/svp_test.cpp.o"
  "CMakeFiles/svp_test.dir/svp_test.cpp.o.d"
  "svp_test"
  "svp_test.pdb"
  "svp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
