# Empty dependencies file for svp_test.
# This may be replaced when dependencies are built.
