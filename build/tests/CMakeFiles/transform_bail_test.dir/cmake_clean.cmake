file(REMOVE_RECURSE
  "CMakeFiles/transform_bail_test.dir/transform_bail_test.cpp.o"
  "CMakeFiles/transform_bail_test.dir/transform_bail_test.cpp.o.d"
  "transform_bail_test"
  "transform_bail_test.pdb"
  "transform_bail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_bail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
