# Empty dependencies file for transform_bail_test.
# This may be replaced when dependencies are built.
