# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/svp_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/depgraph_modes_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/transform_bail_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
