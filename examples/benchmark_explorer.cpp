//===- examples/benchmark_explorer.cpp - Inspect one workload's compilation ---===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Usage: benchmark_explorer [workload] [basic|best|anticipated]
//
// Compiles one of the ten SPEC2000Int-like workloads with the chosen SPT
// compilation mode and prints the full per-loop report: every candidate
// loop, its body weight, trip count, optimal partition cost and the
// selection verdict — then simulates both versions and reports the
// speedup. This is the "what did the compiler think" lens on the
// framework; the quickstart example shows the mechanics on a small kernel.
//
//===----------------------------------------------------------------------===//

#include "driver/SptCompiler.h"
#include "sim/SeqSim.h"
#include "sim/SptSim.h"
#include "support/OStream.h"
#include "support/Table.h"
#include "transform/Cleanup.h"
#include "workloads/Workloads.h"

#include <cstring>

using namespace spt;

int main(int argc, char **argv) {
  const std::string Name = argc > 1 ? argv[1] : "gzip";
  CompilationMode Mode = CompilationMode::Best;
  if (argc > 2) {
    if (std::strcmp(argv[2], "basic") == 0)
      Mode = CompilationMode::Basic;
    else if (std::strcmp(argv[2], "anticipated") == 0)
      Mode = CompilationMode::Anticipated;
  }

  const Workload &W = workloadByName(Name);
  outs() << "workload: " << W.Name << " (" << W.Description << ")\n";
  outs() << "mode:     " << compilationModeName(Mode) << "\n\n";

  auto Base = compileWorkload(W);
  cleanupModule(*Base);
  auto Spt = compileWorkload(W);
  SptCompilerOptions Opts;
  Opts.Mode = Mode;
  CompilationReport Report = compileSpt(*Spt, Opts);

  Table T({"function", "header", "depth", "unroll", "svp", "body wt",
           "trips", "cost", "pre-fork", "gain est", "verdict"});
  for (const LoopRecord &Rec : Report.Loops) {
    T.beginRow();
    T.cell(Rec.FuncName);
    T.cell(static_cast<uint64_t>(Rec.Header));
    T.cell(static_cast<uint64_t>(Rec.Depth));
    T.cell(static_cast<uint64_t>(Rec.UnrollFactor));
    T.cell(std::string(Rec.SvpApplied ? "yes" : ""));
    T.cell(Rec.BodyWeight, 1);
    T.cell(Rec.TripCount, 1);
    T.cell(Rec.Partition.Searched ? formatDouble(Rec.Partition.Cost, 2)
                                  : std::string("-"));
    T.cell(Rec.Partition.Searched
               ? formatDouble(Rec.Partition.PreForkWeight, 1)
               : std::string("-"));
    T.cell(Rec.GainEstimate > 0 ? formatDouble(Rec.GainEstimate, 2)
                                : std::string("-"));
    T.cell(std::string(rejectReasonName(Rec.Reason)));
  }
  T.print(outs());

  outs() << "\nselected " << static_cast<uint64_t>(Report.numSelected())
         << " loop(s); simulating...\n";
  SeqSimResult Seq = runSequential(*Base, "main");
  SptSimResult Par = runSpt(*Spt, "main", {}, Report.SptLoops);
  if (Par.Result.I != Seq.Result.I) {
    outs() << "CHECKSUM MISMATCH!\n";
    return 1;
  }
  outs() << "sequential: " << static_cast<uint64_t>(Seq.cycles())
         << " cycles (IPC " << formatDouble(Seq.ipc(), 2) << ")\n";
  outs() << "spt:        " << static_cast<uint64_t>(Par.cycles())
         << " cycles\n";
  outs() << "speedup:    "
         << formatDouble(Seq.cycles() / Par.cycles(), 3) << "x\n";

  for (const auto &[Id, Stats] : Par.PerLoop) {
    outs() << "  loop " << Id << ": forks " << Stats.Forks << ", joins "
           << Stats.Joins << ", misspec "
           << formatPercent(Stats.misspecRatio(), 1) << ", reexec "
           << formatPercent(Stats.reexecRatio(), 1) << "\n";
  }
  return 0;
}
