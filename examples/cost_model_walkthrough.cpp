//===- examples/cost_model_walkthrough.cpp - The paper's worked example -------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reconstructs the paper's Figures 5-9 step by step: the six-statement
// dependence graph, the cost graph, the re-execution probability
// propagation for the partition {D} (reproducing the published 0.58), the
// VC-dep graph, the branch-and-bound search space, and the size-threshold
// pruning of Figure 9.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"
#include "cost/CostModel.h"
#include "partition/Partition.h"
#include "support/OStream.h"
#include "support/Table.h"

using namespace spt;

namespace {

enum PaperStmt : uint32_t { A = 0, B, C, D, E, F };
const char *Names = "ABCDEF";

LoopDepGraph paperGraph() {
  std::vector<LoopStmt> Stmts(6);
  for (auto &S : Stmts) {
    S.IterFreq = 1.0; // "no branch statement in the loop body"
    S.Weight = 1.0;   // "assuming all nodes have cost of one"
  }
  std::vector<DepEdge> Edges = {
      {D, A, DepKind::FlowReg, true, 0.2},  // cross, Figure 5 dashed
      {E, B, DepKind::FlowReg, true, 0.1},  // cross
      {F, C, DepKind::FlowMem, true, 0.2},  // cross
      {B, C, DepKind::FlowReg, false, 0.5}, // intra, Figure 5 solid
      {C, E, DepKind::FlowReg, false, 1.0}, // intra
      {D, E, DepKind::FlowReg, false, 1.0}, // intra (gives Figure 7's D->E)
  };
  return LoopDepGraph::forSynthetic(std::move(Stmts), std::move(Edges));
}

PartitionSet only(std::initializer_list<uint32_t> Picked) {
  PartitionSet P(6, 0);
  for (uint32_t I : Picked)
    P[I] = 1;
  return P;
}

std::string setName(const PartitionSet &P) {
  std::string S = "{";
  for (uint32_t I = 0; I != 6; ++I)
    if (P[I])
      S += Names[I];
  return S + "}";
}

} // namespace

int main() {
  outs() << "The paper's worked example (Figures 5-9)\n";
  outs() << "========================================\n\n";

  LoopDepGraph G = paperGraph();
  outs() << "Figure 5: dependence graph with " << G.edges().size()
         << " edges; violation candidates (sources of cross-iteration\n"
            "true dependences): ";
  for (uint32_t Vc : G.violationCandidates())
    outs() << Names[Vc] << ' ';
  outs() << "\n\n";

  MisspecCostModel Model(G);

  outs() << "Figure 6 / Section 4.2.5: partition with only D pre-fork\n";
  PartitionSet PD = only({D});
  std::vector<double> V = Model.reexecProbabilities(PD);
  Table T({"node", "v(c) (ours)", "v(c) (paper)"});
  const double Paper[6] = {0.0, 0.1, 0.24, 0.0, 0.24, 0.0};
  for (uint32_t I = 0; I != 6; ++I) {
    T.beginRow();
    T.cell(std::string(1, Names[I]));
    T.cell(V[I], 4);
    T.cell(Paper[I], 4);
  }
  T.print(outs());
  outs() << "misspeculation cost = " << formatDouble(Model.cost(PD), 4)
         << "   (paper: 0.58)\n\n";

  outs() << "All partitions of the Figure 8 search space:\n";
  Table T2({"pre-fork region", "cost", "pre-fork weight"});
  const PartitionSet Sets[] = {only({}),     only({D}),    only({F}),
                               only({D, F}), only({D, E}), only({D, E, F})};
  for (const PartitionSet &P : Sets) {
    // Weight: VC move closures (E pulls in B, C and D).
    PartitionSearch Search(G, Model);
    double W = 0.0;
    for (uint32_t I = 0; I != 6; ++I)
      if (P[I])
        W += 1.0;
    (void)Search;
    T2.beginRow();
    T2.cell(setName(P));
    T2.cell(Model.cost(P), 4);
    T2.cell(W, 1);
  }
  T2.print(outs());

  outs() << "\nBranch-and-bound search (Figure 8), no size limit:\n";
  {
    PartitionOptions Opts;
    Opts.PreForkSizeFraction = 1.0;
    PartitionSearch Search(G, Model, Opts);
    PartitionResult R = Search.run();
    outs() << "  visited " << R.NodesVisited
           << " search nodes (paper's Figure 8 shows 6)\n";
    outs() << "  optimum: cost " << formatDouble(R.Cost, 4)
           << " with candidates ";
    for (uint32_t Vc : R.ChosenVcs)
      outs() << Names[Vc] << ' ';
    outs() << "\n";
  }

  outs() << "\nWith the Figure 9 size threshold (pre-fork limited):\n";
  {
    PartitionOptions Opts;
    Opts.PreForkSizeFraction = 0.5; // Threshold 3 of body weight 6.
    PartitionSearch Search(G, Model, Opts);
    PartitionResult R = Search.run();
    outs() << "  size prunes: " << R.SizePrunes
           << " (the {D,E,...} subtree is cut)\n";
    outs() << "  optimum under the limit: cost " << formatDouble(R.Cost, 4)
           << " with candidates ";
    for (uint32_t Vc : R.ChosenVcs)
      outs() << Names[Vc] << ' ';
    outs() << "\n";
  }
  return 0;
}
