//===- examples/quickstart.cpp - Five-minute tour of the framework -----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The smallest end-to-end use of the public API:
//
//   1. compile an SPTc kernel to IR,
//   2. run the two-pass cost-driven SPT compilation,
//   3. print the transformed loop (pre-fork region, SPT_FORK, post-fork
//      region — the paper's Figure 2 shape), and
//   4. simulate sequential vs speculative execution and report speedup.
//
//===----------------------------------------------------------------------===//

#include "driver/SptCompiler.h"
#include "ir/IR.h"
#include "ir/IRPrinter.h"
#include "lang/Frontend.h"
#include "sim/SeqSim.h"
#include "sim/SptSim.h"
#include "support/OStream.h"
#include "support/Table.h"
#include "transform/Cleanup.h"

using namespace spt;

namespace {

// A kernel in SPTc, the framework's miniature C. The loop accumulates a
// cost across iterations (cross-iteration dependences on i and acc), but
// the heavy per-element work is independent — exactly what speculative
// parallel threading exploits.
const char *Source = R"SPTC(
fp samples[2048]; fp weights[2048]; fp out[2048];

int main() {
  int i; int r; fp acc;
  for (i = 0; i < 2048; i = i + 1) {
    samples[i] = itof((i * 37) % 113) / 7.0;
    weights[i] = itof((i * 11) % 53) / 9.0;
  }
  acc = 0.0;
  for (r = 0; r < 8; r = r + 1) {
    for (i = 0; i < 2048; i = i + 1) {
      fp v;
      v = samples[i] * weights[i] + 1.0;
      v = v / 3.0 + sqrt(v * 2.0);
      v = v + sqrt(v + samples[i]) * 0.5;
      out[i] = v;
      acc = acc + v;
    }
  }
  return ftoi(acc);
}
)SPTC";

} // namespace

int main() {
  outs() << "== 1. compile SPTc to IR ==\n";
  auto Base = compileOrDie(Source);
  cleanupModule(*Base);
  auto Spt = compileOrDie(Source);
  outs() << "module has " << Base->numFunctions() << " functions, "
         << Base->numArrays() << " arrays\n\n";

  outs() << "== 2. cost-driven SPT compilation (best mode) ==\n";
  SptCompilerOptions Opts;
  Opts.Mode = CompilationMode::Best;
  CompilationReport Report = compileSpt(*Spt, Opts);
  for (const LoopRecord &Rec : Report.Loops) {
    outs() << "  loop " << Rec.FuncName << "#" << Rec.Header
           << ": body weight " << formatDouble(Rec.BodyWeight, 1)
           << ", optimal cost "
           << (Rec.Partition.Searched
                   ? formatDouble(Rec.Partition.Cost, 2)
                   : std::string("n/a"))
           << " -> " << rejectReasonName(Rec.Reason) << "\n";
  }
  outs() << "\n";

  outs() << "== 3. the transformed hot loop ==\n";
  const Function *F = Spt->findFunction("main");
  bool Printing = false;
  StringOStream Text;
  printFunction(Text, *Spt, *F);
  // Show only the SPT-relevant blocks to keep the tour short.
  std::string Line;
  for (char C : Text.str()) {
    if (C != '\n') {
      Line += C;
      continue;
    }
    const bool IsLabel = !Line.empty() && Line[0] != ' ';
    if (IsLabel)
      Printing = Line.find("spt.") != std::string::npos;
    if (Printing)
      outs() << Line << "\n";
    Line.clear();
  }
  outs() << "\n";

  outs() << "== 4. simulate ==\n";
  SeqSimResult Seq = runSequential(*Base, "main");
  SptSimResult Par = runSpt(*Spt, "main", {}, Report.SptLoops);
  outs() << "checksums: base " << Seq.Result.I << ", spt " << Par.Result.I
         << (Seq.Result.I == Par.Result.I ? " (match)\n" : " (MISMATCH)\n");
  outs() << "sequential: " << static_cast<uint64_t>(Seq.cycles())
         << " cycles (IPC " << formatDouble(Seq.ipc(), 2) << ")\n";
  outs() << "speculative: " << static_cast<uint64_t>(Par.cycles())
         << " cycles\n";
  outs() << "speedup: " << formatDouble(Seq.cycles() / Par.cycles(), 3)
         << "x\n";
  for (const auto &[Id, Stats] : Par.PerLoop)
    outs() << "  SPT loop " << Id << ": " << Stats.Forks << " forks, "
           << formatPercent(Stats.misspecRatio(), 1) << " misspeculation, "
           << formatPercent(Stats.reexecRatio(), 2) << " re-executed\n";
  return Seq.Result.I == Par.Result.I ? 0 : 1;
}
