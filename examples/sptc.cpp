//===- examples/sptc.cpp - File-based SPT compiler driver ---------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the framework: compile an SPTc source file,
// run the cost-driven SPT compilation, and inspect/simulate the result.
//
//   sptc FILE [options]
//     --mode basic|best|anticipated   compilation mode (default best)
//     --entry NAME                    entry function (default main)
//     --report                        print the per-loop selection report
//     --emit-ir                       print the transformed IR
//     --dot                           print hot-loop dependence graphs as
//                                     Graphviz DOT (pipe into `dot -Tsvg`)
//     --simulate                      run sequential + SPT simulations
//     --no-transform                  stop after analysis (pass 1 only
//                                     effects: report uses a scratch copy)
//
// See docs/sptc-language.md for the input language.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallEffects.h"
#include "analysis/Cfg.h"
#include "analysis/DepGraph.h"
#include "analysis/DepGraphDot.h"
#include "analysis/Freq.h"
#include "analysis/LoopInfo.h"
#include "driver/SptCompiler.h"
#include "ir/IR.h"
#include "ir/IRPrinter.h"
#include "lang/Frontend.h"
#include "sim/SeqSim.h"
#include "sim/SptSim.h"
#include "support/OStream.h"
#include "support/Table.h"
#include "transform/Cleanup.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace spt;

namespace {

bool readFile(const char *Path, std::string &Out) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

int usage() {
  errs() << "usage: sptc FILE [--mode basic|best|anticipated] "
            "[--entry NAME]\n            [--report] [--emit-ir] [--dot] "
            "[--simulate]\n";
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  const char *Path = nullptr;
  std::string Entry = "main";
  CompilationMode Mode = CompilationMode::Best;
  bool Report = false, EmitIr = false, Dot = false, Simulate = false;

  for (int A = 1; A < argc; ++A) {
    const char *Arg = argv[A];
    if (std::strcmp(Arg, "--mode") == 0 && A + 1 < argc) {
      const char *Val = argv[++A];
      if (std::strcmp(Val, "basic") == 0)
        Mode = CompilationMode::Basic;
      else if (std::strcmp(Val, "best") == 0)
        Mode = CompilationMode::Best;
      else if (std::strcmp(Val, "anticipated") == 0)
        Mode = CompilationMode::Anticipated;
      else
        return usage();
    } else if (std::strcmp(Arg, "--entry") == 0 && A + 1 < argc) {
      Entry = argv[++A];
    } else if (std::strcmp(Arg, "--report") == 0) {
      Report = true;
    } else if (std::strcmp(Arg, "--emit-ir") == 0) {
      EmitIr = true;
    } else if (std::strcmp(Arg, "--dot") == 0) {
      Dot = true;
    } else if (std::strcmp(Arg, "--simulate") == 0) {
      Simulate = true;
    } else if (Arg[0] == '-') {
      return usage();
    } else if (!Path) {
      Path = Arg;
    } else {
      return usage();
    }
  }
  if (!Path)
    return usage();
  if (!Report && !EmitIr && !Dot && !Simulate)
    Report = Simulate = true; // A useful default.

  std::string Source;
  if (!readFile(Path, Source)) {
    errs() << "sptc: cannot read '" << Path << "'\n";
    return 1;
  }

  CompileResult Front = compileSource(Source);
  if (!Front.ok()) {
    for (const std::string &E : Front.Errors)
      errs() << Path << ":" << E << "\n";
    return 1;
  }
  if (!Front.M->findFunction(Entry)) {
    errs() << "sptc: no function '" << Entry << "'\n";
    return 1;
  }

  auto Base = compileOrDie(Source);
  cleanupModule(*Base);

  SptCompilerOptions Opts;
  Opts.Mode = Mode;
  Opts.ProfileEntry = Entry;
  CompilationReport R = compileSpt(*Front.M, Opts);

  if (Report) {
    outs() << "== selection report (" << compilationModeName(Mode)
           << " mode) ==\n";
    Table T({"function", "loop", "body wt", "trips", "cost", "pre-fork",
             "verdict"});
    for (const LoopRecord &Rec : R.Loops) {
      T.beginRow();
      T.cell(Rec.FuncName);
      T.cell(static_cast<uint64_t>(Rec.Header));
      T.cell(Rec.BodyWeight, 1);
      T.cell(Rec.TripCount, 1);
      T.cell(Rec.Partition.Searched
                 ? formatDouble(Rec.Partition.Cost, 2)
                 : std::string("-"));
      T.cell(Rec.Partition.Searched
                 ? formatDouble(Rec.Partition.PreForkWeight, 1)
                 : std::string("-"));
      T.cell(std::string(rejectReasonName(Rec.Reason)));
    }
    T.print(outs());
    outs() << "\n";
  }

  if (Dot) {
    // Dependence graphs of the selected loops (from the baseline module,
    // which still has the original loop shapes).
    CallEffects Effects = CallEffects::compute(*Base);
    for (size_t FI = 0; FI != Base->numFunctions(); ++FI) {
      const Function *F = Base->function(static_cast<uint32_t>(FI));
      if (F->isExternal() || F->numBlocks() == 0)
        continue;
      CfgInfo Cfg = CfgInfo::compute(*F);
      LoopNest Nest = LoopNest::compute(*F, Cfg);
      CfgProbabilities Probs =
          CfgProbabilities::staticHeuristic(*F, Cfg, Nest);
      FreqInfo Freq = FreqInfo::compute(*F, Cfg, Nest, Probs);
      for (uint32_t LI = 0; LI != Nest.numLoops(); ++LI) {
        LoopDepGraph G = LoopDepGraph::build(*Base, *F, Cfg, Nest,
                                             *Nest.loop(LI), Freq, Effects);
        DotOptions DOpts;
        DOpts.Name = F->name() + "_loop" + std::to_string(LI);
        writeDepGraphDot(outs(), *Base, G, DOpts);
      }
    }
  }

  if (EmitIr)
    printModule(outs(), *Front.M);

  if (Simulate) {
    outs() << "== simulation ==\n";
    SeqSimResult Seq = runSequential(*Base, Entry);
    SptSimResult Par = runSpt(*Front.M, Entry, {}, R.SptLoops);
    if (Par.Result.I != Seq.Result.I) {
      errs() << "sptc: CHECKSUM MISMATCH (compiler bug)\n";
      return 1;
    }
    outs() << "result:      " << Seq.Result.I << " (checksums match)\n";
    outs() << "sequential:  " << static_cast<uint64_t>(Seq.cycles())
           << " cycles, IPC " << formatDouble(Seq.ipc(), 2) << "\n";
    outs() << "speculative: " << static_cast<uint64_t>(Par.cycles())
           << " cycles\n";
    outs() << "speedup:     "
           << formatDouble(Seq.cycles() / Par.cycles(), 3) << "x\n";
    for (const auto &[Id, Stats] : Par.PerLoop)
      outs() << "  SPT loop " << Id << ": " << Stats.Forks << " forks, "
             << Stats.Joins << " joins, "
             << formatPercent(Stats.misspecRatio(), 1) << " misspec, "
             << formatPercent(Stats.reexecRatio(), 2) << " re-executed\n";
  }
  return 0;
}
