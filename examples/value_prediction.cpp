//===- examples/value_prediction.cpp - Figure 13 SVP demo ---------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates software value prediction (paper Section 7.2, Figure 13).
// The loop's carried value x advances by a fixed stride, but through a
// computation far too heavy to move into the pre-fork region — without
// SVP the loop is rejected for cost; with SVP (prediction in the pre-fork
// region, check-and-recovery in the post-fork region) the critical
// dependence becomes a rarely-violated one and the loop speculates.
//
//===----------------------------------------------------------------------===//

#include "driver/SptCompiler.h"
#include "ir/IR.h"
#include "lang/Frontend.h"
#include "sim/SeqSim.h"
#include "sim/SptSim.h"
#include "support/OStream.h"
#include "support/Table.h"
#include "transform/Cleanup.h"

using namespace spt;

namespace {

// x = bar(x) in the paper's Figure 13: here bar is a heavyweight pure
// computation with a perfectly strided result.
const char *Source = R"SPTC(
int out[8192];

int main() {
  int x; int s; int i; int r;
  s = 0;
  for (r = 0; r < 6; r = r + 1) {
    x = 1;
    for (i = 0; i < 2048; i = i + 1) {
      fp t;
      t = sqrt(itof(x)) + sqrt(itof(x + i));
      t = t + sqrt(itof(x * 3 + 7));
      x = x + 2 + ftoi(t) * 0;   // "bar(x)": net stride exactly 2.
      out[i & 8191] = x + ftoi(t);
      s = (s + x) & 1073741823;
    }
  }
  return s;
}
)SPTC";

double evaluate(CompilationMode Mode, bool &SvpUsed, bool &Selected) {
  auto Base = compileOrDie(Source);
  cleanupModule(*Base);
  auto Spt = compileOrDie(Source);
  SptCompilerOptions Opts;
  Opts.Mode = Mode;
  CompilationReport Report = compileSpt(*Spt, Opts);
  SvpUsed = false;
  Selected = false;
  for (const LoopRecord &Rec : Report.Loops) {
    SvpUsed |= Rec.SvpApplied;
    if (Rec.Depth == 2)
      Selected |= Rec.Selected;
  }
  SeqSimResult Seq = runSequential(*Base, "main");
  SptSimResult Par = runSpt(*Spt, "main", {}, Report.SptLoops);
  if (Par.Result.I != Seq.Result.I) {
    outs() << "CHECKSUM MISMATCH\n";
    return 0.0;
  }
  return Seq.cycles() / Par.cycles();
}

} // namespace

int main() {
  outs() << "Software value prediction (paper Figure 13)\n";
  outs() << "===========================================\n\n";
  outs() << "The hot loop carries x through three sqrt() calls; its move\n"
            "closure exceeds the pre-fork size threshold, so plain code\n"
            "reordering cannot remove the violation.\n\n";

  bool SvpBasic = false, SelBasic = false;
  const double Basic = evaluate(CompilationMode::Basic, SvpBasic, SelBasic);
  outs() << "basic:  speedup " << formatDouble(Basic, 3) << "x, SVP "
         << (SvpBasic ? "applied" : "not applied") << ", hot loop "
         << (SelBasic ? "selected" : "rejected") << "\n";

  bool SvpBest = false, SelBest = false;
  const double Best = evaluate(CompilationMode::Best, SvpBest, SelBest);
  outs() << "best:   speedup " << formatDouble(Best, 3) << "x, SVP "
         << (SvpBest ? "applied" : "not applied") << ", hot loop "
         << (SelBest ? "selected" : "rejected") << "\n\n";

  if (SvpBest && SelBest && Best > Basic) {
    outs() << "SVP turned the critical dependence into a predictable one\n"
              "(prediction moved to the pre-fork region; the recovery path\n"
              "never fires at stride 2), enabling the speculation.\n";
    return 0;
  }
  outs() << "unexpected outcome; inspect with benchmark_explorer\n";
  return 1;
}
