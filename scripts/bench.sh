#!/usr/bin/env bash
# Compile-time performance benchmarks: builds the Release preset and runs
#   - bench/perf_compile over the full workload suite, writing the
#     measured pass-1 + partition-search timings to BENCH_compile.json
#     (see docs/performance.md for what the numbers mean), and
#   - bench/perf_serve over a generated 1000-program batch, writing the
#     batch-service throughput (Jobs=1/4/8, cold vs warm cache) to
#     BENCH_serve.json (see docs/serving.md).
#
#   ./scripts/bench.sh                 # full run, both BENCH_*.json
#   ./scripts/bench.sh --quick         # small stress graphs, 1 repeat,
#                                      # 100-program serve batch
#   ./scripts/bench.sh --out=foo.json  # alternate perf_compile output
#   ./scripts/bench.sh --sim           # also run bench/perf_sim and merge
#                                      # its "simulator" block (nodes/s per
#                                      # fidelity, memo hit rate) into the
#                                      # perf_compile JSON
#   ./scripts/bench.sh --kway          # also run bench/fig14_kway and merge
#                                      # its "kway" block (speedup at 1/2/4/8
#                                      # cores, two-core byte-identity gate)
#                                      # into the perf_compile JSON
#   ./scripts/bench.sh --oracle        # also run bench/perf_oracle and merge
#                                      # its "oracle" block (profile cost,
#                                      # static vs in-run vs measured-artifact
#                                      # partition quality) into the
#                                      # perf_compile JSON
#
# Extra flags are passed through to perf_compile (--jobs=N, --repeat=N).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [release] configure"
cmake --preset release
echo "== [release] build perf_compile perf_serve perf_sim fig14_kway perf_oracle"
cmake --build --preset release -j "$JOBS" --target perf_compile perf_serve \
  perf_sim fig14_kway perf_oracle

OUT_PATH="$PWD/BENCH_compile.json"
OUT_SET=0
QUICK=0
SIM=0
KWAY=0
ORACLE=0
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --out=*) OUT_SET=1; OUT_PATH="${arg#--out=}"; ARGS+=("$arg") ;;
    --quick) QUICK=1; ARGS+=("$arg") ;;
    --sim) SIM=1 ;;
    --kway) KWAY=1 ;;
    --oracle) ORACLE=1 ;;
    *) ARGS+=("$arg") ;;
  esac
done

if [ "$OUT_SET" -eq 0 ]; then
  ARGS+=("--out=$OUT_PATH")
fi

echo "== perf_compile ${ARGS[*]}"
./build-release/bench/perf_compile "${ARGS[@]}"

# The JSON carries an "observability" block: the obs configuration's
# pass-1 overhead against seq, plus the aggregate counter/span stats of
# the traced compiles (docs/observability.md explains how to read it).
if grep -q '"observability"' "$OUT_PATH"; then
  echo "== observability stats block recorded in $OUT_PATH"
else
  echo "== ERROR: $OUT_PATH is missing the observability stats block" >&2
  exit 1
fi

# Simulator throughput (opt-in with --sim): bench/perf_sim times SeqSim
# and SptSim under the three sim/SimOptions.h configurations (exact
# reference, exact + block-timing memo, coarse fast-forward) and merges a
# "simulator" block — nodes/s per fidelity, memo hit rate — into the
# perf_compile JSON. perf_sim exits nonzero itself when the exact+memo
# report is not byte-identical to the unmemoized reference (including the
# MemoryHash) on any kernel, so only the block's presence needs checking
# here (docs/simulation.md explains the fidelities and the memo).
if [ "$SIM" -eq 1 ]; then
  SIM_ARGS=()
  if [ "$QUICK" -eq 1 ]; then
    SIM_ARGS+=("--quick")
  fi
  echo "== perf_sim ${SIM_ARGS[*]:-} --out=$OUT_PATH"
  ./build-release/bench/perf_sim "${SIM_ARGS[@]:+${SIM_ARGS[@]}}" \
    "--out=$OUT_PATH"
  grep -q '"simulator"' "$OUT_PATH" || {
    echo "== ERROR: $OUT_PATH is missing the simulator block" >&2
    exit 1
  }
  echo "== simulator block recorded in $OUT_PATH"
fi

# K-way core sweep (opt-in with --kway): bench/fig14_kway compiles and
# simulates every workload at 1, 2, 4 and 8 cores and merges a "kway"
# block into the perf_compile JSON. The binary exits nonzero itself when
# the generalized engine is not byte-identical to the two-core reference
# at Cores=2 or no workload scales monotonically from 2 to 4 cores, and
# the block's own reports_identical flag is double-checked here.
if [ "$KWAY" -eq 1 ]; then
  KWAY_ARGS=()
  if [ "$QUICK" -eq 1 ]; then
    KWAY_ARGS+=("--quick")
  fi
  echo "== fig14_kway ${KWAY_ARGS[*]:-} --out=$OUT_PATH"
  ./build-release/bench/fig14_kway "${KWAY_ARGS[@]:+${KWAY_ARGS[@]}}" \
    "--out=$OUT_PATH"
  grep -q '"kway"' "$OUT_PATH" || {
    echo "== ERROR: $OUT_PATH is missing the kway block" >&2
    exit 1
  }
  grep -q '"reports_identical": true, "any_speedup_monotone_2_to_4": true' \
    "$OUT_PATH" || {
    echo "== ERROR: $OUT_PATH kway block failed its gates" >&2
    exit 1
  }
  echo "== kway block recorded in $OUT_PATH"
fi

# Measured dependence-oracle quality (opt-in with --oracle): for every
# workload bench/perf_oracle profiles a dependence artifact, compiles
# three ways (static-only oracle, in-run default, measured artifact) and
# simulates each against the sequential baseline, merging an "oracle"
# block into the perf_compile JSON. The binary exits nonzero itself when
# the measurements change no chosen partition vs static-only, the
# artifact regresses any workload vs the in-run default, or any
# simulation's architectural results diverge; the summary gates are
# double-checked here (docs/profiling.md explains the three configs).
if [ "$ORACLE" -eq 1 ]; then
  ORACLE_ARGS=()
  if [ "$QUICK" -eq 1 ]; then
    ORACLE_ARGS+=("--quick")
  fi
  echo "== perf_oracle ${ORACLE_ARGS[*]:-} --out=$OUT_PATH"
  ./build-release/bench/perf_oracle "${ORACLE_ARGS[@]:+${ORACLE_ARGS[@]}}" \
    "--out=$OUT_PATH"
  grep -q '"oracle"' "$OUT_PATH" || {
    echo "== ERROR: $OUT_PATH is missing the oracle block" >&2
    exit 1
  }
  grep -q '"no_regression_vs_inrun": true, "checksums_match": true' \
    "$OUT_PATH" || {
    echo "== ERROR: $OUT_PATH oracle block failed its gates" >&2
    exit 1
  }
  echo "== oracle block recorded in $OUT_PATH"
fi

# Batch-service throughput. perf_serve exits nonzero itself when any
# configuration's reports diverge from the single-threaded cold reference
# or the warm pass is not fully cache-served, so only the scaling claims
# need checking here.
SERVE_OUT="$PWD/BENCH_serve.json"
SERVE_ARGS=()
if [ "$QUICK" -eq 1 ]; then
  SERVE_ARGS+=("--quick")
  SERVE_OUT="$PWD/build-release/BENCH_serve_quick.json"
fi
echo "== perf_serve ${SERVE_ARGS[*]:-} --out=$SERVE_OUT"
./build-release/bench/perf_serve "${SERVE_ARGS[@]:+${SERVE_ARGS[@]}}" \
  "--out=$SERVE_OUT"

grep -q '"reports_identical": true' "$SERVE_OUT" || {
  echo "== ERROR: $SERVE_OUT reports are not byte-identical" >&2
  exit 1
}
grep -q '"warm_served_from_cache": true' "$SERVE_OUT" || {
  echo "== ERROR: $SERVE_OUT warm pass was not served from cache" >&2
  exit 1
}

# Worker scaling is a physical claim about the host: on a multi-core
# machine Jobs=8 cold throughput must be at least 2x Jobs=1, but on a
# single-core container that target is unattainable and asserting it
# would only reward dishonest measurement — so gate it on core count and
# record the observed ratio either way (it is in the JSON summary).
SPEEDUP="$(sed -n 's/.*"cold_speedup_jobs8_vs_jobs1": \([0-9.]*\).*/\1/p' \
  "$SERVE_OUT")"
CORES="$(nproc 2>/dev/null || echo 1)"
if [ "$CORES" -ge 2 ]; then
  awk -v s="$SPEEDUP" 'BEGIN { exit (s >= 2.0) ? 0 : 1 }' || {
    echo "== ERROR: cold Jobs=8 speedup $SPEEDUP < 2x on a $CORES-core host" >&2
    exit 1
  }
  echo "== serve scaling: cold Jobs=8 speedup ${SPEEDUP}x (>= 2x, $CORES cores)"
else
  echo "== serve scaling: cold Jobs=8 speedup ${SPEEDUP}x on a single-core" \
       "host (>= 2x assertion skipped; see hardware_concurrency in the JSON)"
fi
