#!/usr/bin/env bash
# Compile-time performance benchmark: builds the Release preset and runs
# bench/perf_compile over the full workload suite, writing the measured
# pass-1 + partition-search timings to BENCH_compile.json at the repo
# root (see docs/performance.md for what the numbers mean).
#
#   ./scripts/bench.sh                 # full run, BENCH_compile.json
#   ./scripts/bench.sh --quick         # small stress graphs, 1 repeat
#   ./scripts/bench.sh --out=foo.json  # alternate output path
#
# Extra flags are passed through to perf_compile (--jobs=N, --repeat=N).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [release] configure"
cmake --preset release
echo "== [release] build perf_compile"
cmake --build --preset release -j "$JOBS" --target perf_compile

OUT_PATH="$PWD/BENCH_compile.json"
OUT_SET=0
for arg in "$@"; do
  case "$arg" in
    --out=*) OUT_SET=1; OUT_PATH="${arg#--out=}" ;;
  esac
done

ARGS=("$@")
if [ "$OUT_SET" -eq 0 ]; then
  ARGS+=("--out=$OUT_PATH")
fi

echo "== perf_compile ${ARGS[*]}"
./build-release/bench/perf_compile "${ARGS[@]}"

# The JSON carries an "observability" block: the obs configuration's
# pass-1 overhead against seq, plus the aggregate counter/span stats of
# the traced compiles (docs/observability.md explains how to read it).
if grep -q '"observability"' "$OUT_PATH"; then
  echo "== observability stats block recorded in $OUT_PATH"
else
  echo "== ERROR: $OUT_PATH is missing the observability stats block" >&2
  exit 1
fi
