#!/usr/bin/env bash
# One-command local gate: configure, build and test the requested presets.
#
#   ./scripts/check.sh              # default + asan-ubsan
#   ./scripts/check.sh default      # a single preset
#   ./scripts/check.sh asan-ubsan
#
# Each preset builds into its own directory (build/, build-asan/), so the
# sanitizer run never dirties the ordinary build tree. Per preset the
# gate is: the tier1-labelled test suite (ctest -L tier1, which includes
# the fuzzing self-check), then a 200-program differential fuzzing smoke
# through the full oracle set (see docs/testing.md).

set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default asan-ubsan)
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

builddir_for() {
  case "$1" in
    default) echo build ;;
    release) echo build-release ;;
    asan-ubsan) echo build-asan ;;
    *) echo "build-$1" ;;
  esac
}

for preset in "${PRESETS[@]}"; do
  builddir="$(builddir_for "$preset")"
  echo "== [$preset] configure"
  cmake --preset "$preset"
  echo "== [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "== [$preset] test (tier1)"
  ctest --preset "$preset" -L tier1
  echo "== [$preset] sptfuzz smoke (200 programs)"
  "./$builddir/tools/sptfuzz" --smoke --programs 200 --seed 1 \
    --corpus tests/corpus --out "$builddir/fuzz-repros"
  # Batch-service smoke: the deterministic selfcheck plus a small chaos
  # batch over the seed corpus with --verify (non-faulted reports must be
  # byte-identical to a fault-free single-worker reference).
  echo "== [$preset] sptserve selfcheck + chaos smoke"
  "./$builddir/tools/sptserve" --selfcheck --seed 1
  # Dependence-profile artifact smoke: determinism, round-trip with
  # corruption rejection, drift separation of shifted input
  # distributions, and the compile-cache/module-handshake integration
  # (see docs/profiling.md).
  echo "== [$preset] sptprof selfcheck (dependence-profile artifacts)"
  "./$builddir/tools/sptprof" --selfcheck
  "./$builddir/tools/sptserve" --batch --corpus tests/corpus \
    --programs 50 --jobs 4 --chaos 0.3 --seed 1 --verify
  # Simulator fast-path smoke: perf_sim --quick exits nonzero when the
  # exact+memo simulation report diverges from the unmemoized reference
  # in any field (including the final MemoryHash), or a fast-forward run
  # changes architectural state — cheap enough to run under sanitizers.
  echo "== [$preset] perf_sim --quick (simulator fast-path smoke)"
  "./$builddir/bench/perf_sim" --quick \
    --out="$builddir/BENCH_sim_quick.json"
  # Interpreter decode differential smoke: the lockstep record-stream
  # walk between the decoded (threaded, fused) engine and the reference
  # switch engine, plus perf_interp --quick, which exits nonzero when
  # either the record streams diverge or the decoded engine drops under
  # the 2x aggregate throughput gate. Under sanitizers this doubles as a
  # memory-safety pass over the computed-goto dispatch loop.
  echo "== [$preset] interp decode differential smoke"
  "./$builddir/tests/interp_decode_test"
  "./$builddir/bench/perf_interp" --quick \
    --out="$builddir/BENCH_interp_quick.json"
  # K-way differential smoke: the generalized N-core engine against the
  # retained two-core reference (byte-identity at Cores=2, architectural
  # equality and in-order commit accounting at 4 and 8 cores), then a
  # quick cores=1,2,4,8 sweep whose exit code gates both the byte-identity
  # and the 2->4 scaling claim (see docs/simulation.md).
  echo "== [$preset] k-way differential smoke"
  "./$builddir/tests/kway_sim_test"
  "./$builddir/bench/fig14_kway" --quick \
    --out="$builddir/BENCH_kway_quick.json"
done

# Smoke-run the compile-time benchmark (small stress graphs, one repeat)
# from the default build: it fails when the three pass-1 configurations
# or the stress searches stop being bit-identical, which the full test
# suite cannot see at benchmark scale. Full measurements come from
# scripts/bench.sh.
if [[ " ${PRESETS[*]} " == *" default "* ]]; then
  echo "== [default] perf_compile --quick"
  ./build/bench/perf_compile --quick --out=build/BENCH_compile_quick.json

  # Trace-enabled smoke: compile the workload suite (gzip et al.) with
  # observability on, then validate both artifacts — the Chrome trace
  # must parse and nest, the stats dump must be well-formed JSON and
  # carry the branch-and-bound prune and incremental-cost-scratch
  # counters (see docs/observability.md for the catalogue).
  echo "== [default] spttrace + tracecheck (observability smoke)"
  ./build/tools/spttrace --json --trace=build/spt_trace.json \
    --stats=build/spt_stats.json
  ./build/tools/tracecheck build/spt_trace.json
  ./build/tools/tracecheck --stats build/spt_stats.json
  grep -q '"partition\.prune\.' build/spt_stats.json
  grep -q '"cost\.scratch\.' build/spt_stats.json
fi

echo "== all presets passed: ${PRESETS[*]}"
