#!/usr/bin/env bash
# One-command local gate: configure, build and test the requested presets.
#
#   ./scripts/check.sh              # default + asan-ubsan
#   ./scripts/check.sh default      # a single preset
#   ./scripts/check.sh asan-ubsan
#
# Each preset builds into its own directory (build/, build-asan/), so the
# sanitizer run never dirties the ordinary build tree. Per preset the
# gate is: the tier1-labelled test suite (ctest -L tier1, which includes
# the fuzzing self-check), then a 200-program differential fuzzing smoke
# through the full oracle set (see docs/testing.md).

set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default asan-ubsan)
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

builddir_for() {
  case "$1" in
    default) echo build ;;
    release) echo build-release ;;
    asan-ubsan) echo build-asan ;;
    *) echo "build-$1" ;;
  esac
}

for preset in "${PRESETS[@]}"; do
  builddir="$(builddir_for "$preset")"
  echo "== [$preset] configure"
  cmake --preset "$preset"
  echo "== [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "== [$preset] test (tier1)"
  ctest --preset "$preset" -L tier1
  echo "== [$preset] sptfuzz smoke (200 programs)"
  "./$builddir/tools/sptfuzz" --smoke --programs 200 --seed 1 \
    --corpus tests/corpus --out "$builddir/fuzz-repros"
done

# Smoke-run the compile-time benchmark (small stress graphs, one repeat)
# from the default build: it fails when the three pass-1 configurations
# or the stress searches stop being bit-identical, which the full test
# suite cannot see at benchmark scale. Full measurements come from
# scripts/bench.sh.
if [[ " ${PRESETS[*]} " == *" default "* ]]; then
  echo "== [default] perf_compile --quick"
  ./build/bench/perf_compile --quick --out=build/BENCH_compile_quick.json
fi

echo "== all presets passed: ${PRESETS[*]}"
