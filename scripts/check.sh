#!/usr/bin/env bash
# One-command local gate: configure, build and test the requested presets.
#
#   ./scripts/check.sh              # default + asan-ubsan
#   ./scripts/check.sh default      # a single preset
#   ./scripts/check.sh asan-ubsan
#
# Each preset builds into its own directory (build/, build-asan/), so the
# sanitizer run never dirties the ordinary build tree.

set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default asan-ubsan)
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

for preset in "${PRESETS[@]}"; do
  echo "== [$preset] configure"
  cmake --preset "$preset"
  echo "== [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "== [$preset] test"
  ctest --preset "$preset"
done

# Smoke-run the compile-time benchmark (small stress graphs, one repeat)
# from the default build: it fails when the three pass-1 configurations
# or the stress searches stop being bit-identical, which the full test
# suite cannot see at benchmark scale. Full measurements come from
# scripts/bench.sh.
if [[ " ${PRESETS[*]} " == *" default "* ]]; then
  echo "== [default] perf_compile --quick"
  ./build/bench/perf_compile --quick --out=build/BENCH_compile_quick.json
fi

echo "== all presets passed: ${PRESETS[*]}"
