//===- analysis/CallEffects.cpp - Side-effect summaries for calls ----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallEffects.h"

#include <cassert>

using namespace spt;

CallEffects CallEffects::compute(const Module &M) {
  CallEffects CE;
  CE.NumClasses = static_cast<uint32_t>(M.numArrays()) + 2;
  CE.PerFunc.assign(M.numFunctions(), Effects());

  // Seed external builtins.
  for (uint32_t FI = 0; FI != M.numFunctions(); ++FI) {
    const Function *F = M.function(FI);
    if (!F->isExternal())
      continue;
    Effects &E = CE.PerFunc[FI];
    const std::string &Name = F->name();
    if (Name == "rnd") {
      E.Reads.insert(CE.rngClass());
      E.Writes.insert(CE.rngClass());
    } else if (Name == "print_int" || Name == "print_fp") {
      E.Writes.insert(CE.ioClass());
    }
    // sqrt/log/exp: pure, empty effects.
  }

  // Fixpoint over defined functions.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t FI = 0; FI != M.numFunctions(); ++FI) {
      const Function *F = M.function(FI);
      if (F->isExternal())
        continue;
      Effects &E = CE.PerFunc[FI];
      const size_t Before = E.Reads.size() + E.Writes.size();
      for (const auto &BB : *F) {
        for (const Instr &I : BB->Instrs) {
          switch (I.Op) {
          case Opcode::Load:
            E.Reads.insert(I.arrayId());
            break;
          case Opcode::Store:
            E.Writes.insert(I.arrayId());
            break;
          case Opcode::Call: {
            const Effects &Callee = CE.PerFunc[I.calleeIndex()];
            E.Reads.insert(Callee.Reads.begin(), Callee.Reads.end());
            E.Writes.insert(Callee.Writes.begin(), Callee.Writes.end());
            break;
          }
          default:
            break;
          }
        }
      }
      if (E.Reads.size() + E.Writes.size() != Before)
        Changed = true;
    }
  }
  return CE;
}
