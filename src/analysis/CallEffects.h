//===- analysis/CallEffects.h - Side-effect summaries for calls ------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-module side-effect summaries: which alias classes each function
/// may read and write, transitively through calls. Alias classes are the
/// module's arrays plus two synthetic classes:
///
///  - the RNG class, read+written by rnd() (its hidden generator state
///    imposes ordering between rnd() calls), and
///  - the IO class, written by print_int/print_fp.
///
/// This is the stand-in for ORC's type-based memory disambiguation on the
/// call side: a Call statement in a loop body participates in the
/// dependence graph through these summaries, so loops with side-effecting
/// calls grow the conservative dependences the paper describes.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_ANALYSIS_CALLEFFECTS_H
#define SPT_ANALYSIS_CALLEFFECTS_H

#include "ir/IR.h"

#include <set>
#include <vector>

namespace spt {

/// Per-function read/write alias-class summaries for one module.
class CallEffects {
public:
  /// Computes summaries for every function (fixpoint over the call graph;
  /// recursion converges because effect sets only grow).
  static CallEffects compute(const Module &M);

  /// Alias classes are [0, numArrays) for arrays, then RNG, then IO.
  uint32_t numAliasClasses() const { return NumClasses; }
  uint32_t rngClass() const { return NumClasses - 2; }
  uint32_t ioClass() const { return NumClasses - 1; }

  struct Effects {
    std::set<uint32_t> Reads;
    std::set<uint32_t> Writes;

    bool pure() const { return Writes.empty(); }
  };

  const Effects &effectsOf(uint32_t FuncIndex) const {
    return PerFunc[FuncIndex];
  }
  const Effects &effectsOf(const Module &M, const Function &F) const {
    return PerFunc[M.indexOf(&F)];
  }

private:
  uint32_t NumClasses = 0;
  std::vector<Effects> PerFunc;
};

} // namespace spt

#endif // SPT_ANALYSIS_CALLEFFECTS_H
