//===- analysis/Cfg.cpp - CFG orders, dominators, control deps -------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Dominators and postdominators use the Cooper-Harvey-Kennedy iterative
// algorithm over (reverse) RPO. Control dependence follows Ferrante et al.:
// for each CFG edge A->S, every block on the postdominator-tree path from S
// up to (exclusive) ipostdom(A) is control dependent on that edge.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include "support/Debug.h"

#include <algorithm>
#include <cassert>

using namespace spt;

namespace {

/// DFS postorder helper producing reverse postorder.
void computeRpo(const Function &F, std::vector<BlockId> &Rpo,
                std::vector<uint32_t> &RpoIndex) {
  const size_t N = F.numBlocks();
  std::vector<uint8_t> State(N, 0); // 0 unvisited, 1 on stack, 2 done.
  std::vector<std::pair<BlockId, size_t>> Stack;
  std::vector<BlockId> Postorder;
  Postorder.reserve(N);

  Stack.emplace_back(F.entry(), 0);
  State[F.entry()] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    const BasicBlock *BB = F.block(B);
    if (NextSucc < BB->Succs.size()) {
      const BlockId S = BB->Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[B] = 2;
    Postorder.push_back(B);
    Stack.pop_back();
  }

  Rpo.assign(Postorder.rbegin(), Postorder.rend());
  RpoIndex.assign(N, ~0u);
  for (uint32_t I = 0; I != Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;
}

/// Cooper-Harvey-Kennedy "intersect" walking two dominator-tree paths to
/// their common ancestor. \p Order maps node -> traversal index (lower =
/// closer to root); \p IDom is the current tree.
uint32_t intersect(uint32_t A, uint32_t B, const std::vector<uint32_t> &IDom,
                   const std::vector<uint32_t> &Order) {
  while (A != B) {
    while (Order[A] > Order[B])
      A = IDom[A];
    while (Order[B] > Order[A])
      B = IDom[B];
  }
  return A;
}

} // namespace

CfgInfo CfgInfo::compute(const Function &F) {
  CfgInfo Info;
  Info.F = &F;
  const size_t N = F.numBlocks();

  Info.Preds.assign(N, {});
  for (const auto &BB : F)
    for (BlockId S : BB->Succs)
      Info.Preds[S].push_back(BB->id());

  computeRpo(F, Info.Rpo, Info.RpoIndex);

  //===--------------------------------------------------------------------===
  // Dominators.
  //===--------------------------------------------------------------------===
  Info.IDom.assign(N, NoBlock);
  {
    std::vector<uint32_t> IDom(N, ~0u);
    const BlockId Entry = F.entry();
    IDom[Entry] = Entry;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId B : Info.Rpo) {
        if (B == Entry)
          continue;
        uint32_t New = ~0u;
        for (BlockId P : Info.Preds[B]) {
          if (!Info.reachable(P) || IDom[P] == ~0u)
            continue;
          New = New == ~0u ? P : intersect(New, P, IDom, Info.RpoIndex);
        }
        if (New != ~0u && IDom[B] != New) {
          IDom[B] = New;
          Changed = true;
        }
      }
    }
    for (size_t B = 0; B != N; ++B) {
      if (B == Entry || IDom[B] == ~0u)
        continue;
      Info.IDom[B] = IDom[B];
    }
  }

  //===--------------------------------------------------------------------===
  // Postdominators with a virtual exit (index N).
  //===--------------------------------------------------------------------===
  const uint32_t VExit = static_cast<uint32_t>(N);
  std::vector<std::vector<uint32_t>> RevSuccs(N + 1); // Edges of reverse CFG.
  std::vector<std::vector<uint32_t>> RevPreds(N + 1);
  for (const auto &BB : F) {
    if (BB->Succs.empty() && Info.reachable(BB->id())) {
      RevSuccs[VExit].push_back(BB->id()); // VExit "precedes" exits reversed.
      RevPreds[BB->id()].push_back(VExit);
    }
    for (BlockId S : BB->Succs) {
      RevSuccs[S].push_back(BB->id());
      RevPreds[BB->id()].push_back(S);
    }
  }

  // RPO of the reverse CFG starting from the virtual exit.
  std::vector<uint32_t> RevRpo;
  std::vector<uint32_t> RevRpoIndex(N + 1, ~0u);
  {
    std::vector<uint8_t> State(N + 1, 0);
    std::vector<std::pair<uint32_t, size_t>> Stack;
    std::vector<uint32_t> Postorder;
    Stack.emplace_back(VExit, 0);
    State[VExit] = 1;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      if (NextSucc < RevSuccs[B].size()) {
        const uint32_t S = RevSuccs[B][NextSucc++];
        if (State[S] == 0) {
          State[S] = 1;
          Stack.emplace_back(S, 0);
        }
        continue;
      }
      State[B] = 2;
      Postorder.push_back(B);
      Stack.pop_back();
    }
    RevRpo.assign(Postorder.rbegin(), Postorder.rend());
    for (uint32_t I = 0; I != RevRpo.size(); ++I)
      RevRpoIndex[RevRpo[I]] = I;
  }

  std::vector<uint32_t> PDom(N + 1, ~0u);
  PDom[VExit] = VExit;
  {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t B : RevRpo) {
        if (B == VExit)
          continue;
        uint32_t New = ~0u;
        for (uint32_t P : RevPreds[B]) {
          if (RevRpoIndex[P] == ~0u || PDom[P] == ~0u)
            continue;
          New = New == ~0u ? P : intersect(New, P, PDom, RevRpoIndex);
        }
        if (New != ~0u && PDom[B] != New) {
          PDom[B] = New;
          Changed = true;
        }
      }
    }
  }
  Info.IPDom.assign(N, NoBlock);
  for (size_t B = 0; B != N; ++B)
    if (PDom[B] != ~0u && PDom[B] != VExit)
      Info.IPDom[B] = PDom[B];

  //===--------------------------------------------------------------------===
  // Control dependence.
  //===--------------------------------------------------------------------===
  Info.CtrlDeps.assign(N, {});
  for (const auto &BB : F) {
    const BlockId A = BB->id();
    if (!Info.reachable(A) || BB->Succs.size() < 2)
      continue;
    const uint32_t Stop = PDom[A]; // May be VExit or ~0u.
    for (uint32_t SuccIdx = 0; SuccIdx != BB->Succs.size(); ++SuccIdx) {
      uint32_t Walk = BB->Succs[SuccIdx];
      // Walk the postdominator tree from the successor up to ipostdom(A).
      while (Walk != Stop && Walk != ~0u && Walk != VExit) {
        Info.CtrlDeps[Walk].push_back(ControlDep{A, SuccIdx});
        if (PDom[Walk] == ~0u)
          break;
        Walk = PDom[Walk];
      }
    }
  }
  // Deduplicate (a block may be reached from both arms through cycles).
  for (auto &Deps : Info.CtrlDeps) {
    std::sort(Deps.begin(), Deps.end(),
              [](const ControlDep &L, const ControlDep &R) {
                return L.Branch != R.Branch ? L.Branch < R.Branch
                                            : L.SuccIndex < R.SuccIndex;
              });
    Deps.erase(std::unique(Deps.begin(), Deps.end(),
                           [](const ControlDep &L, const ControlDep &R) {
                             return L.Branch == R.Branch &&
                                    L.SuccIndex == R.SuccIndex;
                           }),
               Deps.end());
  }

  return Info;
}

bool CfgInfo::dominates(BlockId A, BlockId B) const {
  if (!reachable(A) || !reachable(B))
    return false;
  BlockId Walk = B;
  for (;;) {
    if (Walk == A)
      return true;
    const BlockId Next = IDom[Walk];
    if (Next == NoBlock || Next == Walk)
      return false;
    Walk = Next;
  }
}

bool CfgInfo::postdominates(BlockId A, BlockId B) const {
  BlockId Walk = B;
  for (;;) {
    if (Walk == A)
      return true;
    const BlockId Next = IPDom[Walk];
    if (Next == NoBlock || Next == Walk)
      return false;
    Walk = Next;
  }
}
