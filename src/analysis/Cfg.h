//===- analysis/Cfg.h - CFG orders, dominators, control deps ---------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function control-flow facts: predecessor lists, reverse postorder,
/// dominators, postdominators (with a virtual exit) and control-dependence
/// sets. These feed loop detection, the annotated CFG the paper's cost
/// model is built on, and the legality analysis of the SPT transformation.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_ANALYSIS_CFG_H
#define SPT_ANALYSIS_CFG_H

#include "ir/IR.h"

#include <vector>

namespace spt {

/// Computed control-flow facts for one function. Invalidated by any CFG
/// edit; recompute after transformations.
class CfgInfo {
public:
  /// Computes all facts for \p F.
  static CfgInfo compute(const Function &F);

  const Function &function() const { return *F; }

  const std::vector<BlockId> &preds(BlockId B) const { return Preds[B]; }

  /// Blocks in reverse postorder (entry first). Unreachable blocks are
  /// excluded; reachable(B) tells whether a block appears.
  const std::vector<BlockId> &rpo() const { return Rpo; }
  bool reachable(BlockId B) const { return RpoIndex[B] != ~0u; }
  uint32_t rpoIndex(BlockId B) const { return RpoIndex[B]; }

  /// Immediate dominator; entry and unreachable blocks yield NoBlock.
  BlockId idom(BlockId B) const { return IDom[B]; }
  /// Returns true when \p A dominates \p B (reflexive).
  bool dominates(BlockId A, BlockId B) const;

  /// Immediate postdominator w.r.t. a virtual exit collecting all Ret
  /// blocks; NoBlock when the virtual exit itself is the ipostdom or the
  /// block cannot reach an exit.
  BlockId ipostdom(BlockId B) const { return IPDom[B]; }
  /// Returns true when \p A postdominates \p B (reflexive).
  bool postdominates(BlockId A, BlockId B) const;

  /// Control dependence: the set of (branch block, successor index) pairs
  /// that control execution of \p B. A block with an empty set executes
  /// whenever the function (or enclosing region) does.
  struct ControlDep {
    BlockId Branch;
    uint32_t SuccIndex;
  };
  const std::vector<ControlDep> &controlDeps(BlockId B) const {
    return CtrlDeps[B];
  }

private:
  const Function *F = nullptr;
  std::vector<std::vector<BlockId>> Preds;
  std::vector<BlockId> Rpo;
  std::vector<uint32_t> RpoIndex;
  std::vector<BlockId> IDom;
  std::vector<BlockId> IPDom;
  std::vector<std::vector<ControlDep>> CtrlDeps;
};

} // namespace spt

#endif // SPT_ANALYSIS_CFG_H
