//===- analysis/DepGraph.cpp - Annotated loop dependence graph -------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Register dependences come from two reaching-definitions passes over the
// loop body with this loop's back edges cut: the first (intra) starts the
// header with an empty set; the second (cross) starts it with the defs that
// reach the latches, propagated through one iteration with kills but
// without new gens — which captures exactly the distance-1 cross-iteration
// def->use pairs that adjacent-iteration speculation can violate.
//
// Memory dependences pair writers and readers of an alias class (array, or
// the synthetic RNG/IO classes via call summaries). Probabilities come from
// the dependence profile when present, else from frequency ratios with
// type-based aliasing.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"

#include "analysis/oracle/DepOracle.h"

#include "support/Debug.h"

#include <algorithm>
#include <cassert>
#include <tuple>

using namespace spt;

double spt::opClassWeight(OpClass C) {
  switch (C) {
  case OpClass::IntAlu:
    return 1.0;
  case OpClass::IntMul:
    return 2.0;
  case OpClass::IntDiv:
    return 12.0;
  case OpClass::FpAlu:
    return 2.0;
  case OpClass::FpMul:
    return 2.0;
  case OpClass::FpDiv:
    return 15.0;
  case OpClass::MemLoad:
    return 2.0;
  case OpClass::MemStore:
    return 1.0;
  case OpClass::Branch:
    return 1.0;
  case OpClass::Call:
    return 10.0;
  case OpClass::Marker:
    return 0.0;
  }
  spt_unreachable("unknown op class");
}

namespace {

/// Fixed-width bitset helpers over std::vector<uint64_t>.
using BitVec = std::vector<uint64_t>;

BitVec makeBits(size_t N) { return BitVec((N + 63) / 64, 0); }

void setBit(BitVec &V, size_t I) { V[I / 64] |= uint64_t(1) << (I % 64); }
void clearBit(BitVec &V, size_t I) {
  V[I / 64] &= ~(uint64_t(1) << (I % 64));
}
bool testBit(const BitVec &V, size_t I) {
  return (V[I / 64] >> (I % 64)) & 1;
}
/// Dst |= Src; returns true when Dst changed.
bool orInto(BitVec &Dst, const BitVec &Src) {
  bool Changed = false;
  for (size_t W = 0; W != Dst.size(); ++W) {
    const uint64_t New = Dst[W] | Src[W];
    if (New != Dst[W]) {
      Dst[W] = New;
      Changed = true;
    }
  }
  return Changed;
}

} // namespace

void LoopDepGraph::addEdge(uint32_t Src, uint32_t Dst, DepKind Kind,
                           bool Cross, double Prob) {
  assert(Src < Stmts.size() && Dst < Stmts.size() && "edge out of range");
  Edges.push_back(DepEdge{Src, Dst, Kind, Cross, Prob});
}

bool LoopDepGraph::canPrecedeIntra(uint32_t A, uint32_t B) const {
  const LoopStmt &SA = Stmts[A];
  const LoopStmt &SB = Stmts[B];
  if (SA.Block == SB.Block)
    return SA.Index < SB.Index;
  const uint32_t LA = BlockToLocal.at(SA.Block);
  const uint32_t LB = BlockToLocal.at(SB.Block);
  return BlockReach[LA * LoopBlocks.size() + LB] != 0;
}

LoopDepGraph LoopDepGraph::forSynthetic(std::vector<LoopStmt> SynthStmts,
                                        std::vector<DepEdge> SynthEdges) {
  LoopDepGraph G;
  G.Stmts = std::move(SynthStmts);
  for (uint32_t SI = 0; SI != G.Stmts.size(); ++SI) {
    if (G.Stmts[SI].Id == NoStmt)
      G.Stmts[SI].Id = SI;
    G.IdToIndex[G.Stmts[SI].Id] = SI;
    G.StaticWeight += G.Stmts[SI].Weight;
    G.DynamicWeight += G.Stmts[SI].Weight * G.Stmts[SI].IterFreq;
  }
  G.Edges = std::move(SynthEdges);
  for (const DepEdge &E : G.Edges) {
    assert(E.Src < G.Stmts.size() && E.Dst < G.Stmts.size() &&
           "synthetic edge range");
    (void)E;
  }
  G.reindexEdges();
  return G;
}

void LoopDepGraph::reindexEdges() {
  Out.assign(Stmts.size(), {});
  In.assign(Stmts.size(), {});
  for (uint32_t EI = 0; EI != Edges.size(); ++EI) {
    Out[Edges[EI].Src].push_back(EI);
    In[Edges[EI].Dst].push_back(EI);
  }
  ViolationCandidates.clear();
  std::vector<uint8_t> IsVC(Stmts.size(), 0);
  for (const DepEdge &E : Edges)
    if (E.Cross && isFlowDep(E.Kind) && E.Prob > 1e-9)
      IsVC[E.Src] = 1;
  for (uint32_t SI = 0; SI != Stmts.size(); ++SI)
    if (IsVC[SI])
      ViolationCandidates.push_back(SI);
}

void LoopDepGraph::addConservativeEdge(uint32_t Src, uint32_t Dst,
                                       DepKind Kind, bool Cross,
                                       double Prob) {
  addEdge(Src, Dst, Kind, Cross, Prob);
  reindexEdges();
}

LoopDepGraph LoopDepGraph::build(const Module &M, const Function &F,
                                 const CfgInfo &Cfg, const LoopNest &Nest,
                                 const Loop &L, const FreqInfo &Freq,
                                 const CallEffects &Effects,
                                 const DepGraphOptions &Opts) {
  LoopDepGraph G;
  G.F = &F;
  G.L = &L;

  //===--------------------------------------------------------------------===
  // Statements, in RPO block order.
  //===--------------------------------------------------------------------===
  G.LoopBlocks = L.Blocks;
  std::sort(G.LoopBlocks.begin(), G.LoopBlocks.end(),
            [&](BlockId A, BlockId B) {
              return Cfg.rpoIndex(A) < Cfg.rpoIndex(B);
            });
  for (uint32_t Local = 0; Local != G.LoopBlocks.size(); ++Local)
    G.BlockToLocal[G.LoopBlocks[Local]] = Local;

  for (BlockId B : G.LoopBlocks) {
    const BasicBlock *BB = F.block(B);
    const double BlockIterFreq = Freq.freqPerIteration(L, B);
    for (uint32_t Idx = 0; Idx != BB->Instrs.size(); ++Idx) {
      const Instr &I = BB->Instrs[Idx];
      LoopStmt S;
      S.Id = I.Id;
      S.Block = B;
      S.Index = Idx;
      S.I = &I;
      S.IterFreq = BlockIterFreq;
      S.Weight = opClassWeight(opcodeClass(I.Op));
      if (I.Op == Opcode::Call && Opts.CallWeights) {
        auto WIt = Opts.CallWeights->find(M.function(I.calleeIndex()));
        if (WIt != Opts.CallWeights->end())
          S.Weight = WIt->second;
      }
      switch (I.Op) {
      case Opcode::Call:
        S.Movable = Effects.effectsOf(I.calleeIndex()).pure() ||
                    Opts.AllowImpureCallMotion;
        break;
      case Opcode::SptFork:
      case Opcode::SptKill:
        S.Movable = false;
        break;
      default:
        S.Movable = true;
        break;
      }
      G.IdToIndex[S.Id] = static_cast<uint32_t>(G.Stmts.size());
      G.Stmts.push_back(S);
      G.StaticWeight += S.Weight;
      G.DynamicWeight += S.Weight * S.IterFreq;
    }
  }
  const uint32_t NumStmts = static_cast<uint32_t>(G.Stmts.size());

  //===--------------------------------------------------------------------===
  // Body-DAG block reachability (this loop's back edges cut).
  //===--------------------------------------------------------------------===
  const size_t NB = G.LoopBlocks.size();
  G.BlockReach.assign(NB * NB, 0);
  for (uint32_t From = 0; From != NB; ++From) {
    // DFS over loop blocks, skipping this loop's back edges.
    std::vector<uint32_t> Work = {From};
    std::vector<uint8_t> Seen(NB, 0);
    Seen[From] = 1;
    while (!Work.empty()) {
      const uint32_t Cur = Work.back();
      Work.pop_back();
      const BasicBlock *BB = F.block(G.LoopBlocks[Cur]);
      for (BlockId T : BB->Succs) {
        if (!L.contains(T) || L.isBackEdge(G.LoopBlocks[Cur], T))
          continue;
        const uint32_t LT = G.BlockToLocal.at(T);
        if (!Seen[LT]) {
          Seen[LT] = 1;
          G.BlockReach[From * NB + LT] = 1;
          Work.push_back(LT);
        } else if (!G.BlockReach[From * NB + LT] && LT != From) {
          G.BlockReach[From * NB + LT] = 1;
        }
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Register reaching definitions (intra + carried).
  //===--------------------------------------------------------------------===
  // Def table: statements with a destination register.
  std::vector<uint32_t> DefStmt; // def id -> stmt index
  std::vector<int32_t> StmtDef(NumStmts, -1);
  std::map<Reg, std::vector<uint32_t>> DefsOfReg; // reg -> def ids
  for (uint32_t SI = 0; SI != NumStmts; ++SI) {
    const Instr *I = G.Stmts[SI].I;
    if (I->Dst == NoReg)
      continue;
    const uint32_t DefId = static_cast<uint32_t>(DefStmt.size());
    DefStmt.push_back(SI);
    StmtDef[SI] = static_cast<int32_t>(DefId);
    DefsOfReg[I->Dst].push_back(DefId);
  }
  const size_t NumDefs = DefStmt.size();

  // GEN/KILL per loop block (local index).
  std::vector<BitVec> Gen(NB, makeBits(NumDefs));
  std::vector<BitVec> KillAll(NB, makeBits(NumDefs));
  for (uint32_t Local = 0; Local != NB; ++Local) {
    const BasicBlock *BB = F.block(G.LoopBlocks[Local]);
    for (const Instr &I : BB->Instrs) {
      if (I.Dst == NoReg)
        continue;
      const uint32_t SI = G.IdToIndex.at(I.Id);
      for (uint32_t D : DefsOfReg[I.Dst]) {
        clearBit(Gen[Local], D); // Earlier gens of this reg are killed.
        setBit(KillAll[Local], D);
      }
      setBit(Gen[Local], static_cast<size_t>(StmtDef[SI]));
    }
  }

  // In-loop predecessor lists (local indices), this loop's back edges cut.
  std::vector<std::vector<uint32_t>> LocalPreds(NB);
  for (uint32_t Local = 0; Local != NB; ++Local) {
    const BlockId B = G.LoopBlocks[Local];
    for (BlockId P : Cfg.preds(B)) {
      if (!L.contains(P) || L.isBackEdge(P, B))
        continue;
      LocalPreds[Local].push_back(G.BlockToLocal.at(P));
    }
  }

  // Solves a forward reaching-defs dataflow; \p WithGen distinguishes the
  // intra pass (gens added) from the carried pass (kills only).
  auto solve = [&](const BitVec &HeaderIn, bool WithGen,
                   std::vector<BitVec> &InSets) {
    std::vector<BitVec> OutSets(NB, makeBits(NumDefs));
    InSets.assign(NB, makeBits(NumDefs));
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t Local = 0; Local != NB; ++Local) {
        BitVec NewIn = makeBits(NumDefs);
        if (G.LoopBlocks[Local] == L.Header)
          NewIn = HeaderIn;
        for (uint32_t P : LocalPreds[Local])
          orInto(NewIn, OutSets[P]);
        InSets[Local] = NewIn;
        // OUT = (IN - KILL) | GEN   (carried pass: OUT = IN - KILL).
        BitVec NewOut = NewIn;
        for (size_t W = 0; W != NewOut.size(); ++W) {
          NewOut[W] &= ~KillAll[Local][W];
          if (WithGen)
            NewOut[W] |= Gen[Local][W];
        }
        if (NewOut != OutSets[Local]) {
          OutSets[Local] = std::move(NewOut);
          Changed = true;
        }
      }
    }
    return OutSets;
  };

  BitVec Empty = makeBits(NumDefs);
  std::vector<BitVec> IntraIn;
  std::vector<BitVec> IntraOut = solve(Empty, /*WithGen=*/true, IntraIn);

  // Defs carried across the back edge: union of latch OUT sets.
  BitVec CarryIn = makeBits(NumDefs);
  for (BlockId Latch : L.Latches)
    orInto(CarryIn, IntraOut[G.BlockToLocal.at(Latch)]);

  std::vector<BitVec> CarriedIn;
  solve(CarryIn, /*WithGen=*/false, CarriedIn);

  // Every probability annotation on an edge is sourced from the oracle
  // (the default ensemble reproduces the historical flowProb/memProb
  // formulas byte for byte). A query no member answers models "no
  // dependence worth pricing".
  const DepOracle &Orc = Opts.Oracle ? *Opts.Oracle : defaultDepOracle();
  auto oracleProb = [&](uint32_t SrcSI, uint32_t DstSI, DepChannel Channel,
                        bool Cross) -> double {
    DepQuery Q;
    Q.F = &F;
    Q.L = &L;
    Q.Channel = Channel;
    Q.Src = G.Stmts[SrcSI].Id;
    Q.Dst = G.Stmts[DstSI].Id;
    Q.Cross = Cross;
    Q.SrcIterFreq = G.Stmts[SrcSI].IterFreq;
    Q.DstIterFreq = G.Stmts[DstSI].IterFreq;
    Q.Profile = Opts.DepProfile;
    if (std::optional<DepEstimate> E = Orc.dependence(Q))
      return E->Prob;
    return 0.0;
  };

  // Walk blocks to resolve uses against both reaching sets.
  auto flowProb = [&](uint32_t DefSI, uint32_t UseSI, bool Cross) {
    return oracleProb(DefSI, UseSI, DepChannel::Register, Cross);
  };

  for (uint32_t Local = 0; Local != NB; ++Local) {
    BitVec Intra = IntraIn[Local];
    BitVec Carried = CarriedIn[Local];
    const BasicBlock *BB = F.block(G.LoopBlocks[Local]);
    for (const Instr &I : BB->Instrs) {
      const uint32_t UseSI = G.IdToIndex.at(I.Id);
      for (Reg R : I.Srcs) {
        auto It = DefsOfReg.find(R);
        if (It == DefsOfReg.end())
          continue; // Defined only outside the loop: no loop dependence.
        for (uint32_t D : It->second) {
          const uint32_t DefSI = DefStmt[D];
          if (testBit(Intra, D) && DefSI != UseSI)
            G.addEdge(DefSI, UseSI, DepKind::FlowReg, /*Cross=*/false,
                      flowProb(DefSI, UseSI, /*Cross=*/false));
          if (testBit(Carried, D))
            G.addEdge(DefSI, UseSI, DepKind::FlowReg, /*Cross=*/true,
                      flowProb(DefSI, UseSI, /*Cross=*/true));
        }
      }
      if (I.Dst != NoReg) {
        const uint32_t SI = G.IdToIndex.at(I.Id);
        for (uint32_t D : DefsOfReg[I.Dst]) {
          clearBit(Intra, D);
          clearBit(Carried, D);
        }
        setBit(Intra, static_cast<size_t>(StmtDef[SI]));
      }
    }
  }

  // Register anti and output dependences (intra-iteration ordering
  // constraints for code-motion legality).
  for (auto &[R, Ds] : DefsOfReg) {
    // Uses of R.
    std::vector<uint32_t> Uses;
    for (uint32_t SI = 0; SI != NumStmts; ++SI)
      for (Reg Src : G.Stmts[SI].I->Srcs)
        if (Src == R) {
          Uses.push_back(SI);
          break;
        }
    for (uint32_t D : Ds) {
      const uint32_t DefSI = DefStmt[D];
      for (uint32_t UseSI : Uses)
        if (UseSI != DefSI && G.canPrecedeIntra(UseSI, DefSI))
          G.addEdge(UseSI, DefSI, DepKind::AntiReg, /*Cross=*/false, 1.0);
      for (uint32_t D2 : Ds) {
        const uint32_t Def2SI = DefStmt[D2];
        if (DefSI != Def2SI && G.canPrecedeIntra(DefSI, Def2SI))
          G.addEdge(DefSI, Def2SI, DepKind::OutReg, /*Cross=*/false, 1.0);
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Memory dependences per alias class.
  //===--------------------------------------------------------------------===
  // Coarse (C-strength type-based) aliasing merges same-element-type
  // arrays into one class; synthetic classes (RNG/IO) stay distinct.
  const uint32_t NumArrays = static_cast<uint32_t>(M.numArrays());
  uint32_t IntRep = ~0u, FpRep = ~0u;
  for (uint32_t A = 0; A != NumArrays; ++A) {
    if (M.array(A).ElemTy == Type::Int && IntRep == ~0u)
      IntRep = A;
    if (M.array(A).ElemTy == Type::Fp && FpRep == ~0u)
      FpRep = A;
  }
  auto aliasClassOf = [&](uint32_t C) -> uint32_t {
    if (!Opts.CoarseAliasClasses || C >= NumArrays)
      return C;
    return M.array(C).ElemTy == Type::Int ? IntRep : FpRep;
  };

  std::vector<std::vector<uint32_t>> ClassWriters(Effects.numAliasClasses());
  std::vector<std::vector<uint32_t>> ClassReaders(Effects.numAliasClasses());
  std::vector<uint8_t> StmtIsCall(NumStmts, 0);
  for (uint32_t SI = 0; SI != NumStmts; ++SI) {
    const Instr *I = G.Stmts[SI].I;
    switch (I->Op) {
    case Opcode::Load:
      ClassReaders[aliasClassOf(I->arrayId())].push_back(SI);
      break;
    case Opcode::Store:
      ClassWriters[aliasClassOf(I->arrayId())].push_back(SI);
      break;
    case Opcode::Call: {
      StmtIsCall[SI] = 1;
      const CallEffects::Effects &E = Effects.effectsOf(I->calleeIndex());
      for (uint32_t C : E.Reads)
        ClassReaders[aliasClassOf(C)].push_back(SI);
      for (uint32_t C : E.Writes)
        ClassWriters[aliasClassOf(C)].push_back(SI);
      break;
    }
    default:
      break;
    }
  }

  auto memProb = [&](uint32_t WSI, uint32_t RSI, bool Cross) -> double {
    // Calls excluded from cost estimation when configured (the paper's
    // "globals modified by callees unknown to the caller" blind spot).
    // This is a structural exclusion, not a probability estimate, so it
    // stays in front of the oracle.
    if (!Opts.ModelCallEffectsInCost && (StmtIsCall[WSI] || StmtIsCall[RSI]))
      return 0.0;
    return oracleProb(WSI, RSI, DepChannel::Memory, Cross);
  };

  for (uint32_t C = 0; C != Effects.numAliasClasses(); ++C) {
    for (uint32_t W : ClassWriters[C]) {
      for (uint32_t R : ClassReaders[C]) {
        if (W != R && G.canPrecedeIntra(W, R))
          G.addEdge(W, R, DepKind::FlowMem, /*Cross=*/false,
                    memProb(W, R, /*Cross=*/false));
        const double PCross = memProb(W, R, /*Cross=*/true);
        if (PCross > 1e-9)
          G.addEdge(W, R, DepKind::FlowMem, /*Cross=*/true, PCross);
      }
      for (uint32_t W2 : ClassWriters[C])
        if (W != W2 && G.canPrecedeIntra(W, W2))
          G.addEdge(W, W2, DepKind::OutMem, /*Cross=*/false, 1.0);
    }
    for (uint32_t R : ClassReaders[C])
      for (uint32_t W : ClassWriters[C])
        if (R != W && G.canPrecedeIntra(R, W))
          G.addEdge(R, W, DepKind::AntiMem, /*Cross=*/false, 1.0);
  }

  //===--------------------------------------------------------------------===
  // Control dependences.
  //===--------------------------------------------------------------------===
  for (uint32_t SI = 0; SI != NumStmts; ++SI) {
    const LoopStmt &S = G.Stmts[SI];
    for (const CfgInfo::ControlDep &CD : Cfg.controlDeps(S.Block)) {
      if (!L.contains(CD.Branch))
        continue;
      const BasicBlock *BranchBB = F.block(CD.Branch);
      const Instr &Term = BranchBB->Instrs.back();
      const uint32_t BranchSI = G.IdToIndex.at(Term.Id);
      if (BranchSI == SI)
        continue;
      G.addEdge(BranchSI, SI, DepKind::Control, /*Cross=*/false,
                oracleProb(BranchSI, SI, DepChannel::Control,
                           /*Cross=*/false));
    }
  }

  //===--------------------------------------------------------------------===
  // Deduplicate edges (keep the max probability per (src,dst,kind,cross)).
  //===--------------------------------------------------------------------===
  {
    std::map<std::tuple<uint32_t, uint32_t, uint8_t, bool>, double> Best;
    for (const DepEdge &E : G.Edges) {
      auto Key = std::make_tuple(E.Src, E.Dst, static_cast<uint8_t>(E.Kind),
                                 E.Cross);
      auto [It, Inserted] = Best.emplace(Key, E.Prob);
      if (!Inserted && E.Prob > It->second)
        It->second = E.Prob;
    }
    G.Edges.clear();
    for (const auto &[Key, Prob] : Best)
      G.Edges.push_back(DepEdge{std::get<0>(Key), std::get<1>(Key),
                                static_cast<DepKind>(std::get<2>(Key)),
                                std::get<3>(Key), Prob});
  }

  G.reindexEdges();

  (void)M;
  (void)Nest;
  return G;
}
