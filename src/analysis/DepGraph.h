//===- analysis/DepGraph.h - Annotated loop dependence graph ---------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probability-annotated dependence graph of one loop body — the core
/// data structure of the paper's Section 4.1. Nodes are the loop body's
/// statements (our statements are single IR instructions, matching ORC's
/// operation-level Codereps); edges carry:
///
///  - a kind: register/memory flow (true), anti, output, or control
///    dependence,
///  - an iteration class: intra-iteration or cross-iteration (distance 1 —
///    only adjacent-iteration flow can be violated by a speculative thread
///    running the next iteration), and
///  - a probability p: "for every N writes at W, pN reads access the same
///    location at R" — measured by the dependence profiler when available,
///    otherwise estimated from execution frequencies with type-based
///    aliasing (same array => may alias).
///
/// The cost model consumes flow+control edges; the partition legality
/// closure consumes all intra-iteration edges (a legal partition keeps all
/// forward intra-iteration dependences forward, Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef SPT_ANALYSIS_DEPGRAPH_H
#define SPT_ANALYSIS_DEPGRAPH_H

#include "analysis/CallEffects.h"
#include "analysis/Cfg.h"
#include "analysis/Freq.h"
#include "analysis/LoopInfo.h"
#include "analysis/ProfileData.h"
#include "ir/IR.h"

#include <algorithm>
#include <map>
#include <vector>

namespace spt {

/// Dependence edge kinds.
enum class DepKind : uint8_t {
  FlowReg, ///< Register def -> use (true dependence).
  AntiReg, ///< Register use -> redefinition.
  OutReg,  ///< Register def -> redefinition.
  FlowMem, ///< Memory write -> read within an alias class.
  AntiMem, ///< Memory read -> later write (intra only).
  OutMem,  ///< Memory write -> later write (intra only).
  Control, ///< Branch -> control-dependent statement.
};

/// Returns true for the true-dependence kinds the cost model propagates.
inline bool isFlowDep(DepKind K) {
  return K == DepKind::FlowReg || K == DepKind::FlowMem;
}

/// One statement of the loop body.
struct LoopStmt {
  StmtId Id = NoStmt;
  BlockId Block = NoBlock;
  uint32_t Index = 0; ///< Instruction index within its block.
  const Instr *I = nullptr;
  double IterFreq = 0.0; ///< Expected executions per loop iteration.
  double Weight = 0.0;   ///< Cost units of one execution (op class weight).
  bool Movable = true;   ///< May be placed in the pre-fork region.
};

/// One dependence edge between loop statements (indices into stmts()).
struct DepEdge {
  uint32_t Src = 0;
  uint32_t Dst = 0;
  DepKind Kind = DepKind::FlowReg;
  bool Cross = false; ///< Cross-iteration (distance 1) vs intra-iteration.
  double Prob = 1.0;
};

class DepOracle;

/// Inputs that vary by compilation mode (Section 8's basic/best).
struct DepGraphOptions {
  /// Dependence profile for this loop; null => static type-based aliasing.
  const LoopDepProfileData *DepProfile = nullptr;
  /// Probability source for edge annotation. Every flow/control
  /// probability estimate routes through this oracle (DepProfile is
  /// handed to it as the in-run profile); null uses the process-wide
  /// default ensemble, which reproduces the historical hard-wired
  /// behavior byte for byte. See analysis/oracle/DepOracle.h.
  const DepOracle *Oracle = nullptr;
  /// When false, memory effects of calls are ignored while *estimating*
  /// probabilities (legality stays conservative). Mirrors the paper's
  /// observed cost-underestimation for loops with calls (Figure 19).
  bool ModelCallEffectsInCost = true;
  /// Allow side-effecting calls into the pre-fork region. Sound here
  /// because call effects are fully modeled as alias-class dependence
  /// edges (which the move closure preserves); it stands in for the
  /// paper's anticipated "export of global variables beyond their visible
  /// scopes" enabling technique, which gave ORC the same power.
  bool AllowImpureCallMotion = false;
  /// Expected per-invocation weight of each callee, used as the Weight of
  /// Call statements (cost-graph nodes measure "amount of computation";
  /// re-executing a call re-executes its callee). Null leaves the flat
  /// per-call weight.
  const std::map<const Function *, double> *CallWeights = nullptr;
  /// Type-based aliasing at C strength: arrays with the same element type
  /// share one alias class (as int* accesses do under ORC's type-based
  /// disambiguation). The BASIC compilation uses this; the finer
  /// per-array classes model what dependence profiling recovers.
  bool CoarseAliasClasses = false;
};

/// Cost-unit weight of an operation class (elementary-operation counts in
/// the paper's terms).
double opClassWeight(OpClass C);

/// The annotated dependence graph of one loop.
class LoopDepGraph {
public:
  static LoopDepGraph build(const Module &M, const Function &F,
                            const CfgInfo &Cfg, const LoopNest &Nest,
                            const Loop &L, const FreqInfo &Freq,
                            const CallEffects &Effects,
                            const DepGraphOptions &Opts = DepGraphOptions());

  /// Builds a graph from explicit statements and edges, without any IR
  /// behind it. Used by unit tests and the cost-model walkthrough example
  /// that reproduces the paper's Figures 5-9. Statements may leave I null;
  /// canPrecedeIntra() is unavailable on synthetic graphs.
  static LoopDepGraph forSynthetic(std::vector<LoopStmt> SynthStmts,
                                   std::vector<DepEdge> SynthEdges);

  const Function &function() const { return *F; }
  const Loop &loop() const { return *L; }

  const std::vector<LoopStmt> &stmts() const { return Stmts; }
  const LoopStmt &stmt(uint32_t Idx) const { return Stmts[Idx]; }
  size_t size() const { return Stmts.size(); }

  /// Index of a statement id, or ~0u when not part of the loop body.
  uint32_t indexOf(StmtId Id) const {
    auto It = IdToIndex.find(Id);
    return It == IdToIndex.end() ? ~0u : It->second;
  }

  const std::vector<DepEdge> &edges() const { return Edges; }
  /// Outgoing/incoming edge indices per statement index.
  const std::vector<uint32_t> &outEdges(uint32_t Stmt) const {
    return Out[Stmt];
  }
  const std::vector<uint32_t> &inEdges(uint32_t Stmt) const {
    return In[Stmt];
  }

  /// Statement indices that are sources of cross-iteration flow edges
  /// (the paper's violation candidates), sorted ascending.
  const std::vector<uint32_t> &violationCandidates() const {
    return ViolationCandidates;
  }

  /// Sum of Weight over all statements (static body size).
  double staticBodyWeight() const { return StaticWeight; }
  /// Sum of Weight * IterFreq (expected work per iteration).
  double dynamicBodyWeight() const { return DynamicWeight; }

  /// True when statement \p A can execute before \p B within one iteration
  /// (same-block order or body-DAG reachability ignoring this loop's back
  /// edges).
  bool canPrecedeIntra(uint32_t A, uint32_t B) const;

  /// Appends a client-supplied dependence edge after construction and
  /// reindexes. Extra edges only ever constrain consumers further, so
  /// clients with coarser dependence information than build() derives
  /// (merged profiles, degraded modes, the robustness tests) may add
  /// conservative edges without re-running the builder.
  void addConservativeEdge(uint32_t Src, uint32_t Dst, DepKind Kind,
                           bool Cross, double Prob = 1.0);

  /// Removes every edge matching \p Pred and reindexes. Edge removal can
  /// make a graph unsound for code motion; downstream validation (the
  /// transform's realizability checks) must reject such graphs rather
  /// than miscompile, which is what the robustness tests exercise.
  template <typename PredT> void removeEdgesIf(PredT Pred) {
    Edges.erase(std::remove_if(Edges.begin(), Edges.end(), Pred),
                Edges.end());
    reindexEdges();
  }

private:
  const Function *F = nullptr;
  const Loop *L = nullptr;
  std::vector<LoopStmt> Stmts;
  std::map<StmtId, uint32_t> IdToIndex;
  std::vector<DepEdge> Edges;
  std::vector<std::vector<uint32_t>> Out;
  std::vector<std::vector<uint32_t>> In;
  std::vector<uint32_t> ViolationCandidates;
  double StaticWeight = 0.0;
  double DynamicWeight = 0.0;

  // Body-DAG block reachability (loop-local block index squared).
  std::vector<BlockId> LoopBlocks;          // Loop blocks in RPO.
  std::map<BlockId, uint32_t> BlockToLocal; // BlockId -> local index.
  std::vector<uint8_t> BlockReach;          // [from][to] flattened.

  void addEdge(uint32_t Src, uint32_t Dst, DepKind Kind, bool Cross,
               double Prob);
  /// Rebuilds Out/In adjacency and the violation-candidate list from
  /// Edges (after construction, addConservativeEdge or removeEdgesIf).
  void reindexEdges();
};

} // namespace spt

#endif // SPT_ANALYSIS_DEPGRAPH_H
