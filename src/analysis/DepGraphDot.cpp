//===- analysis/DepGraphDot.cpp - Graphviz export of dependence graphs -----===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraphDot.h"

#include "ir/IRPrinter.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <set>

using namespace spt;

namespace {

const char *edgeColor(DepKind Kind) {
  switch (Kind) {
  case DepKind::FlowReg:
    return "black";
  case DepKind::FlowMem:
    return "blue";
  case DepKind::AntiReg:
  case DepKind::AntiMem:
    return "gray";
  case DepKind::OutReg:
  case DepKind::OutMem:
    return "gray60";
  case DepKind::Control:
    return "darkgreen";
  }
  return "black";
}

/// Escapes a label for DOT.
std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

void spt::writeDepGraphDot(OStream &OS, const Module &M,
                           const LoopDepGraph &G, const DotOptions &Opts) {
  std::set<uint32_t> Vcs(G.violationCandidates().begin(),
                         G.violationCandidates().end());

  OS << "digraph " << Opts.Name << " {\n";
  OS << "  rankdir=TB;\n  node [fontsize=10, shape=ellipse];\n";

  for (uint32_t SI = 0; SI != G.size(); ++SI) {
    const LoopStmt &S = G.stmt(SI);
    std::string Label;
    if (S.I) {
      Label = instrToString(M, G.function(), *S.I);
      // Trim the trailing "; id N" comment for readability.
      const size_t Semi = Label.rfind("  ; id ");
      if (Semi != std::string::npos)
        Label.resize(Semi); // (not substr-self-assign: GCC 12 -O3 trips
                            // -Werror=restrict on the overlapping copy)
    } else {
      Label = "s"; // (split append: GCC 12 -O3 trips -Werror=restrict
      Label += std::to_string(SI); // on operator+(const char*, &&))
    }
    Label += "\\nfreq " + formatDouble(S.IterFreq, 2);

    OS << "  n" << SI << " [label=\"" << escape(Label) << "\"";
    if (Vcs.count(SI))
      OS << ", peripheries=2";
    const bool PreFork =
        SI < Opts.InPreFork.size() && Opts.InPreFork[SI] != 0;
    if (PreFork)
      OS << ", style=filled, fillcolor=lightgoldenrod";
    else if (!S.Movable)
      OS << ", style=filled, fillcolor=mistyrose";
    OS << "];\n";
  }

  for (const DepEdge &E : G.edges()) {
    const bool Ordering = E.Kind == DepKind::AntiReg ||
                          E.Kind == DepKind::AntiMem ||
                          E.Kind == DepKind::OutReg ||
                          E.Kind == DepKind::OutMem;
    if (Ordering && !Opts.ShowOrderingEdges)
      continue;
    if (E.Kind == DepKind::Control && !Opts.ShowControlEdges)
      continue;
    if (E.Prob <= 1e-9 && isFlowDep(E.Kind) && E.Cross)
      continue;
    OS << "  n" << E.Src << " -> n" << E.Dst << " [color="
       << edgeColor(E.Kind);
    if (E.Cross)
      OS << ", style=dashed";
    if (isFlowDep(E.Kind) && E.Prob < 0.999)
      OS << ", label=\"" << formatDouble(E.Prob, 2) << "\"";
    OS << "];\n";
  }
  OS << "}\n";
}

std::string spt::depGraphToDot(const Module &M, const LoopDepGraph &G,
                               const DotOptions &Opts) {
  StringOStream OS;
  writeDepGraphDot(OS, M, G, Opts);
  return OS.str();
}
