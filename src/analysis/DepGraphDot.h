//===- analysis/DepGraphDot.h - Graphviz export of dependence graphs -------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a loop's annotated dependence graph — and optionally a chosen
/// partition — as Graphviz DOT, in the visual language of the paper's
/// Figures 5-7: solid edges for intra-iteration dependences, dashed for
/// cross-iteration ones, probabilities as edge labels, violation
/// candidates double-circled, and pre-fork statements filled.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_ANALYSIS_DEPGRAPHDOT_H
#define SPT_ANALYSIS_DEPGRAPHDOT_H

#include "analysis/DepGraph.h"

#include <string>
#include <vector>

namespace spt {

class OStream;

/// DOT rendering options.
struct DotOptions {
  /// Pre-fork membership by statement index (may be empty: no partition).
  std::vector<uint8_t> InPreFork;
  /// Include anti/output edges (off: the paper's figures show true
  /// dependences only).
  bool ShowOrderingEdges = false;
  /// Include control-dependence edges.
  bool ShowControlEdges = false;
  /// Graph name.
  std::string Name = "depgraph";
};

/// Writes the DOT text for \p G to \p OS.
void writeDepGraphDot(OStream &OS, const Module &M, const LoopDepGraph &G,
                      const DotOptions &Opts = DotOptions());

/// Convenience: returns the DOT text as a string.
std::string depGraphToDot(const Module &M, const LoopDepGraph &G,
                          const DotOptions &Opts = DotOptions());

} // namespace spt

#endif // SPT_ANALYSIS_DEPGRAPHDOT_H
