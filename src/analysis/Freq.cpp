//===- analysis/Freq.cpp - Branch probabilities and block frequencies ------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Freq.h"

#include <algorithm>
#include <cassert>

using namespace spt;

namespace {

/// Upper bound for a loop's cyclic probability; keeps trip-count estimates
/// finite (1 / (1 - 0.98) = 50 iterations) for statically unknown loops.
constexpr double MaxCyclicProb = 0.98;

} // namespace

void FunctionEdgeCounts::resizeFor(const Function &F) {
  Block.assign(F.numBlocks(), 0);
  Edge.resize(F.numBlocks());
  for (const auto &BB : F)
    Edge[BB->id()].assign(BB->Succs.size(), 0);
}

CfgProbabilities CfgProbabilities::staticHeuristic(const Function &F,
                                                   const CfgInfo &Cfg,
                                                   const LoopNest &Nest) {
  (void)Cfg;
  CfgProbabilities P;
  P.Prob.resize(F.numBlocks());
  for (const auto &BB : F) {
    const BlockId B = BB->id();
    const size_t NS = BB->Succs.size();
    P.Prob[B].assign(NS, NS == 0 ? 0.0 : 1.0 / static_cast<double>(NS));
    if (NS < 2)
      continue;

    const Loop *L = Nest.innermostFor(B);
    double Weights[2] = {1.0, 1.0};
    for (size_t S = 0; S != NS; ++S) {
      const BlockId T = BB->Succs[S];
      // Back edge of any containing loop: strongly likely.
      bool IsBack = false, IsExit = false;
      for (const Loop *Walk = L; Walk; Walk = Walk->Parent) {
        if (Walk->isBackEdge(B, T))
          IsBack = true;
        if (Walk->contains(B) && !Walk->contains(T))
          IsExit = true;
      }
      if (IsBack)
        Weights[S] = 9.0;
      else if (IsExit)
        Weights[S] = 1.0 / 9.0;
    }
    const double Sum = Weights[0] + Weights[1];
    P.Prob[B][0] = Weights[0] / Sum;
    P.Prob[B][1] = Weights[1] / Sum;
  }
  return P;
}

CfgProbabilities
CfgProbabilities::fromEdgeCounts(const Function &F,
                                 const FunctionEdgeCounts &Counts) {
  CfgProbabilities P;
  P.Prob.resize(F.numBlocks());
  for (const auto &BB : F) {
    const BlockId B = BB->id();
    const size_t NS = BB->Succs.size();
    P.Prob[B].assign(NS, NS == 0 ? 0.0 : 1.0 / static_cast<double>(NS));
    if (NS == 0)
      continue;
    uint64_t Total = 0;
    for (size_t S = 0; S != NS; ++S)
      Total += Counts.Edge[B][S];
    if (Total == 0)
      continue; // Never executed: uniform fallback.
    for (size_t S = 0; S != NS; ++S)
      P.Prob[B][S] =
          static_cast<double>(Counts.Edge[B][S]) / static_cast<double>(Total);
  }
  return P;
}

FreqInfo FreqInfo::compute(const Function &F, const CfgInfo &Cfg,
                           const LoopNest &Nest, const CfgProbabilities &P) {
  FreqInfo Info;
  Info.F = &F;
  Info.Cfg = &Cfg;
  const size_t N = F.numBlocks();
  Info.Freq.assign(N, 0.0);

  // Cyclic probability per loop, computed innermost-first.
  std::vector<double> CyclicProb(Nest.numLoops(), 0.0);

  // Propagates frequencies through \p Region (all blocks when empty)
  // starting from \p Head with inflow 1. Back edges into Head are skipped;
  // inner-loop headers get scaled by their cyclic probability. Returns the
  // flow arriving back at Head along its back edges.
  auto propagate = [&](BlockId Head, const Loop *Region,
                       std::vector<double> &Out) -> double {
    Out.assign(N, 0.0);
    Out[Head] = 1.0;
    const Loop *HeadLoop = nullptr;
    for (uint32_t LI = 0; LI != Nest.numLoops(); ++LI)
      if (Nest.loop(LI)->Header == Head)
        HeadLoop = Nest.loop(LI);

    for (BlockId B : Cfg.rpo()) {
      if (Region && !Region->contains(B))
        continue;
      if (B != Head) {
        double Inflow = 0.0;
        for (BlockId Pred : Cfg.preds(B)) {
          if (!Cfg.reachable(Pred) || (Region && !Region->contains(Pred)))
            continue;
          // Skip back edges into B (handled via cyclic scaling below).
          const Loop *BLoop = Nest.innermostFor(B);
          bool IsBack = false;
          for (const Loop *Walk = BLoop; Walk; Walk = Walk->Parent)
            if (Walk->Header == B && Walk->isBackEdge(Pred, B)) {
              IsBack = true;
              break;
            }
          if (IsBack)
            continue;
          const BasicBlock *PB = F.block(Pred);
          for (uint32_t S = 0; S != PB->Succs.size(); ++S)
            if (PB->Succs[S] == B)
              Inflow += Out[Pred] * P.succProb(Pred, S);
        }
        // Scale inner-loop headers by their expected trip count.
        const Loop *BL = Nest.innermostFor(B);
        if (BL && BL->Header == B && (!Region || BL->Header != Head)) {
          const double CP = std::min(CyclicProb[BL->Id], MaxCyclicProb);
          Inflow /= (1.0 - CP);
        }
        Out[B] = Inflow;
      }
    }

    // Flow reaching Head along its back edges.
    double BackFlow = 0.0;
    if (HeadLoop) {
      for (BlockId Latch : HeadLoop->Latches) {
        const BasicBlock *LB = F.block(Latch);
        for (uint32_t S = 0; S != LB->Succs.size(); ++S)
          if (LB->Succs[S] == Head)
            BackFlow += Out[Latch] * P.succProb(Latch, S);
      }
    }
    return BackFlow;
  };

  std::vector<double> Scratch;
  for (const Loop *L : Nest.innermostFirst())
    CyclicProb[L->Id] = std::min(propagate(L->Header, L, Scratch),
                                 MaxCyclicProb);

  // Whole-function propagation from the entry.
  propagate(F.entry(), nullptr, Info.Freq);
  // The entry itself may be a loop header; propagate() pinned it to 1.
  for (uint32_t LI = 0; LI != Nest.numLoops(); ++LI)
    if (Nest.loop(LI)->Header == F.entry())
      Info.Freq[F.entry()] /=
          (1.0 - std::min(CyclicProb[LI], MaxCyclicProb));

  // Edge flows.
  Info.EdgeFlow.resize(N);
  for (const auto &BB : F) {
    const BlockId B = BB->id();
    Info.EdgeFlow[B].assign(BB->Succs.size(), 0.0);
    for (uint32_t S = 0; S != BB->Succs.size(); ++S)
      Info.EdgeFlow[B][S] = Info.Freq[B] * P.succProb(B, S);
  }
  return Info;
}

FreqInfo FreqInfo::fromBlockCounts(const Function &F,
                                   const FunctionEdgeCounts &Counts) {
  FreqInfo Info;
  Info.F = &F;
  Info.Cfg = nullptr;
  Info.Freq.assign(F.numBlocks(), 0.0);
  for (size_t B = 0; B != F.numBlocks(); ++B)
    Info.Freq[B] = static_cast<double>(Counts.Block[B]);
  Info.EdgeFlow.resize(F.numBlocks());
  for (const auto &BB : F) {
    const BlockId B = BB->id();
    Info.EdgeFlow[B].assign(BB->Succs.size(), 0.0);
    for (uint32_t S = 0; S != BB->Succs.size(); ++S)
      Info.EdgeFlow[B][S] = static_cast<double>(Counts.Edge[B][S]);
  }
  return Info;
}

double FreqInfo::freqPerIteration(const Loop &L, BlockId B) const {
  if (!L.contains(B))
    return 0.0;
  const double HeaderFreq = Freq[L.Header];
  if (HeaderFreq <= 0.0)
    return 0.0;
  return Freq[B] / HeaderFreq;
}

double FreqInfo::avgTripCount(const Loop &L) const {
  const double HeaderFreq = Freq[L.Header];
  if (HeaderFreq <= 0.0)
    return 0.0;
  // Entries = inflow into the header from outside the loop.
  double Entries = 0.0;
  for (size_t B = 0; B != Freq.size(); ++B) {
    if (L.contains(static_cast<BlockId>(B)))
      continue;
    const BasicBlock *BB = F->block(static_cast<BlockId>(B));
    for (uint32_t S = 0; S != BB->Succs.size(); ++S)
      if (BB->Succs[S] == L.Header)
        Entries += EdgeFlow[B][S];
  }
  if (Entries <= 0.0)
    return 0.0;
  return HeaderFreq / Entries;
}
