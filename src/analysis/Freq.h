//===- analysis/Freq.h - Branch probabilities and block frequencies --------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "annotated control-flow graph" of the paper's cost model: branch
/// probabilities per CFG edge and derived execution frequencies per block.
/// Probabilities come either from edge profiling (profile/EdgeProfiler.h)
/// or from a static heuristic (back edges likely, loop exits unlikely).
/// Frequencies are computed with Wu-Larus style propagation over the loop
/// nest; from a profile they are simply the measured block counts.
///
/// The two quantities the SPT framework consumes:
///  - freqPerIteration(L, B): expected executions of block B per iteration
///    of loop L (the "reaching probability" used to weight cost-graph
///    nodes and violation probabilities), and
///  - avgTripCount(L): expected iterations per loop entry (selection
///    criterion 4 in Section 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef SPT_ANALYSIS_FREQ_H
#define SPT_ANALYSIS_FREQ_H

#include "analysis/Cfg.h"
#include "analysis/LoopInfo.h"
#include "ir/IR.h"

#include <vector>

namespace spt {

/// Raw edge-profile counts for one function (filled by the edge profiler).
struct FunctionEdgeCounts {
  /// Executions of each block.
  std::vector<uint64_t> Block;
  /// Taken counts per (block, successor index).
  std::vector<std::vector<uint64_t>> Edge;

  void resizeFor(const Function &F);
};

/// Per-successor branch probabilities for every block of a function.
class CfgProbabilities {
public:
  /// Static heuristic: back edges 0.9, loop-exit edges 0.1, other
  /// conditional successors uniform.
  static CfgProbabilities staticHeuristic(const Function &F,
                                          const CfgInfo &Cfg,
                                          const LoopNest &Nest);

  /// From measured edge counts; blocks never executed fall back to the
  /// static heuristic of uniform successors.
  static CfgProbabilities fromEdgeCounts(const Function &F,
                                         const FunctionEdgeCounts &Counts);

  /// Probability of taking Succs[SuccIdx] when leaving \p B.
  double succProb(BlockId B, uint32_t SuccIdx) const {
    return Prob[B][SuccIdx];
  }

private:
  std::vector<std::vector<double>> Prob;
};

/// Execution frequencies per block (arbitrary scale; entry == 1 for the
/// analytical mode, absolute counts for the profiled mode).
class FreqInfo {
public:
  /// Analytical frequencies via loop-nest propagation. Cyclic
  /// probabilities are capped so irreducible flows stay finite.
  static FreqInfo compute(const Function &F, const CfgInfo &Cfg,
                          const LoopNest &Nest, const CfgProbabilities &P);

  /// Frequencies equal to measured block counts.
  static FreqInfo fromBlockCounts(const Function &F,
                                  const FunctionEdgeCounts &Counts);

  double blockFreq(BlockId B) const { return Freq[B]; }

  /// Expected executions of \p B per iteration of \p L. Zero when B is
  /// outside L; at most the inner-loop trip count when B nests deeper.
  double freqPerIteration(const Loop &L, BlockId B) const;

  /// Expected iterations per entry of \p L (header executions divided by
  /// entries from outside). Returns 0 for never-executed loops.
  double avgTripCount(const Loop &L) const;

private:
  const Function *F = nullptr;
  const CfgInfo *Cfg = nullptr;
  std::vector<double> Freq;
  /// Flow along each (block, succIdx) edge; same scale as Freq.
  std::vector<std::vector<double>> EdgeFlow;
};

} // namespace spt

#endif // SPT_ANALYSIS_FREQ_H
