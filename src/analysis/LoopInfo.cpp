//===- analysis/LoopInfo.cpp - Natural loop detection -----------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace spt;

LoopNest LoopNest::compute(const Function &F, const CfgInfo &Cfg) {
  LoopNest Nest;
  const size_t N = F.numBlocks();
  Nest.InnerMap.assign(N, nullptr);

  // Collect back edges grouped by header.
  std::map<BlockId, std::vector<BlockId>> HeaderToLatches;
  for (const auto &BB : F) {
    if (!Cfg.reachable(BB->id()))
      continue;
    for (BlockId S : BB->Succs)
      if (Cfg.dominates(S, BB->id()))
        HeaderToLatches[S].push_back(BB->id());
  }

  // Build each loop's block set by backward reachability from the latches
  // (not crossing the header).
  for (auto &[Header, Latches] : HeaderToLatches) {
    auto L = std::make_unique<Loop>();
    L->Id = static_cast<uint32_t>(Nest.Loops.size());
    L->Header = Header;
    L->Latches = Latches;
    L->InLoop.assign(N, 0);
    L->InLoop[Header] = 1;
    L->Blocks.push_back(Header);

    std::vector<BlockId> Work = Latches;
    while (!Work.empty()) {
      const BlockId B = Work.back();
      Work.pop_back();
      if (L->InLoop[B])
        continue;
      L->InLoop[B] = 1;
      L->Blocks.push_back(B);
      for (BlockId P : Cfg.preds(B))
        if (Cfg.reachable(P) && !L->InLoop[P])
          Work.push_back(P);
    }
    std::sort(L->Blocks.begin() + 1, L->Blocks.end());

    // Exit edges.
    for (BlockId B : L->Blocks) {
      const BasicBlock *BB = F.block(B);
      for (uint32_t SI = 0; SI != BB->Succs.size(); ++SI)
        if (!L->InLoop[BB->Succs[SI]])
          L->Exits.push_back(Loop::ExitEdge{B, SI, BB->Succs[SI]});
    }
    Nest.Loops.push_back(std::move(L));
  }

  // Nesting: loop A is inside loop B when B contains A's header and A != B.
  // With natural loops (merged by header) containment is a partial order;
  // the parent is the smallest strictly-containing loop.
  for (auto &A : Nest.Loops) {
    Loop *Best = nullptr;
    for (auto &B : Nest.Loops) {
      if (A.get() == B.get() || !B->contains(A->Header))
        continue;
      if (B->Header == A->Header)
        continue; // Identical headers cannot happen (merged).
      if (!Best || Best->Blocks.size() > B->Blocks.size())
        Best = B.get();
    }
    A->Parent = Best;
    if (Best)
      Best->Children.push_back(A.get());
    else
      Nest.TopLevel.push_back(A.get());
  }

  // Depths.
  for (auto &L : Nest.Loops) {
    uint32_t D = 1;
    for (Loop *P = L->Parent; P; P = P->Parent)
      ++D;
    L->Depth = D;
  }

  // Innermost map: the containing loop with the greatest depth.
  for (auto &L : Nest.Loops)
    for (BlockId B : L->Blocks) {
      Loop *&Slot = Nest.InnerMap[B];
      if (!Slot || Slot->Depth < L->Depth)
        Slot = L.get();
    }

  return Nest;
}

std::vector<const Loop *> LoopNest::innermostFirst() const {
  std::vector<const Loop *> Order;
  Order.reserve(Loops.size());
  for (const auto &L : Loops)
    Order.push_back(L.get());
  std::sort(Order.begin(), Order.end(), [](const Loop *A, const Loop *B) {
    if (A->Depth != B->Depth)
      return A->Depth > B->Depth;
    return A->Id < B->Id;
  });
  return Order;
}
