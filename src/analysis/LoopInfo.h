//===- analysis/LoopInfo.h - Natural loop detection ------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops found from back edges (latch -> header where the header
/// dominates the latch), organized into a loop-nest forest. Every nesting
/// level of every loop is a speculative-parallelization candidate in the
/// paper's first compilation pass.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_ANALYSIS_LOOPINFO_H
#define SPT_ANALYSIS_LOOPINFO_H

#include "analysis/Cfg.h"
#include "ir/IR.h"

#include <memory>
#include <vector>

namespace spt {

/// One natural loop. Back edges sharing a header are merged into a single
/// loop (as in LLVM's LoopInfo).
struct Loop {
  uint32_t Id = 0; // Index within the function's LoopNest.
  BlockId Header = NoBlock;
  std::vector<BlockId> Latches;   // Sources of back edges.
  std::vector<BlockId> Blocks;    // All member blocks, header first.
  std::vector<uint8_t> InLoop;    // Indexed by BlockId.
  Loop *Parent = nullptr;
  std::vector<Loop *> Children;
  uint32_t Depth = 1; // 1 for top-level loops.

  /// Exit edges: (InsideBlock, SuccIndex) whose target is outside the loop.
  struct ExitEdge {
    BlockId From = NoBlock;
    uint32_t SuccIndex = 0;
    BlockId To = NoBlock;
  };
  std::vector<ExitEdge> Exits;

  bool contains(BlockId B) const {
    return B < InLoop.size() && InLoop[B] != 0;
  }

  /// True when the edge \p From -> Succs[SuccIdx] is one of this loop's
  /// back edges.
  bool isBackEdge(BlockId From, BlockId To) const {
    if (To != Header)
      return false;
    for (BlockId L : Latches)
      if (L == From)
        return true;
    return false;
  }
};

/// The loop forest of one function.
class LoopNest {
public:
  static LoopNest compute(const Function &F, const CfgInfo &Cfg);

  size_t numLoops() const { return Loops.size(); }
  Loop *loop(uint32_t Id) { return Loops[Id].get(); }
  const Loop *loop(uint32_t Id) const { return Loops[Id].get(); }

  const std::vector<Loop *> &topLevel() const { return TopLevel; }

  /// The innermost loop containing \p B, or null.
  const Loop *innermostFor(BlockId B) const {
    return B < InnerMap.size() ? InnerMap[B] : nullptr;
  }

  /// All loops, innermost-first (children before parents).
  std::vector<const Loop *> innermostFirst() const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<Loop *> TopLevel;
  std::vector<Loop *> InnerMap; // Innermost loop per block.
};

} // namespace spt

#endif // SPT_ANALYSIS_LOOPINFO_H
