//===- analysis/ProfileData.h - Raw profile data structures ----------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain data produced by the offline profilers (profile/) and consumed by
/// the analyses. Lives in analysis/ so the dependence-graph builder does
/// not depend on the profiling implementation — mirroring the paper, where
/// "there was no change to the underlying cost computation module" when
/// profile feedback was added (Section 7.3).
///
//===----------------------------------------------------------------------===//

#ifndef SPT_ANALYSIS_PROFILEDATA_H
#define SPT_ANALYSIS_PROFILEDATA_H

#include "analysis/Freq.h" // FunctionEdgeCounts
#include "ir/IR.h"

#include <cstdint>
#include <map>
#include <utility>

namespace spt {

/// Edge-profile counts for every function of a module.
struct EdgeProfileData {
  std::map<const Function *, FunctionEdgeCounts> PerFunc;

  const FunctionEdgeCounts *countsFor(const Function *F) const {
    auto It = PerFunc.find(F);
    return It == PerFunc.end() ? nullptr : &It->second;
  }
};

/// Observed counts for one (writer statement, reader statement) pair
/// within one loop.
struct MemDepCounts {
  uint64_t Intra = 0; ///< Read the value written in the same iteration.
  uint64_t Cross = 0; ///< Read the value written in the previous iteration.
  uint64_t Far = 0;   ///< Read a value written two or more iterations ago.
};

/// Dependence profile of one loop. Statement ids refer to the loop's
/// enclosing function; accesses performed inside callees are attributed to
/// the Call statement in the loop body.
struct LoopDepProfileData {
  /// (writer stmt, reader stmt) -> counts.
  std::map<std::pair<StmtId, StmtId>, MemDepCounts> Pairs;
  /// Executions of each memory-touching statement while the loop was the
  /// attribution context.
  std::map<StmtId, uint64_t> StmtExec;
  uint64_t Activations = 0; ///< Times the loop was entered.
  /// Total header visits, including the final visit that exits the loop
  /// (so a counted for-loop with trip count T contributes T+1 per
  /// activation).
  uint64_t Iterations = 0;
};

/// Dependence profiles for every loop of a module, keyed by
/// (function, loop id within its LoopNest).
struct DepProfileData {
  std::map<std::pair<const Function *, uint32_t>, LoopDepProfileData> PerLoop;

  const LoopDepProfileData *profileFor(const Function *F,
                                       uint32_t LoopId) const {
    auto It = PerLoop.find({F, LoopId});
    return It == PerLoop.end() ? nullptr : &It->second;
  }
};

/// Value-pattern statistics for one statement's destination register,
/// sampled once per loop iteration (used by software value prediction).
struct StrideStats {
  uint64_t Samples = 0;   ///< Consecutive-sample pairs observed.
  uint64_t SameValue = 0; ///< Pairs with identical values (last-value hit).
  /// Pairs whose delta equals BestStride (the most frequent delta).
  uint64_t BestStrideHits = 0;
  int64_t BestStride = 0;
};

/// Value profiles keyed by (function, statement id).
struct ValueProfileData {
  std::map<std::pair<const Function *, StmtId>, StrideStats> PerStmt;

  const StrideStats *statsFor(const Function *F, StmtId Id) const {
    auto It = PerStmt.find({F, Id});
    return It == PerStmt.end() ? nullptr : &It->second;
  }
};

} // namespace spt

#endif // SPT_ANALYSIS_PROFILEDATA_H
