//===- analysis/oracle/DepOracle.cpp - Pluggable dependence oracles -------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/oracle/DepOracle.h"

#include <algorithm>

using namespace spt;

namespace {

double clamp01(double X) { return X < 0.0 ? 0.0 : (X > 1.0 ? 1.0 : X); }

} // namespace

//===----------------------------------------------------------------------===//
// StaticDepOracle
//===----------------------------------------------------------------------===//

std::optional<DepEstimate>
StaticDepOracle::dependence(const DepQuery &Q) const {
  // The historical flowProb: if the source runs FD times per iteration
  // and the sink FU times, one source execution feeds a sink execution
  // with probability min(1, FU/FD). A dead source can't feed anything.
  DepEstimate E;
  E.Confidence = StaticOracleConfidence;
  E.Source = name();
  if (Q.SrcIterFreq <= 1e-12)
    E.Prob = 0.0;
  else
    E.Prob = clamp01(Q.DstIterFreq / Q.SrcIterFreq);
  return E;
}

std::optional<BranchProbEstimate>
StaticDepOracle::branchProbabilities(const BranchProbQuery &Q) const {
  BranchProbEstimate E;
  E.Probs = CfgProbabilities::staticHeuristic(*Q.F, *Q.Cfg, *Q.Nest);
  E.Measured = false;
  E.Confidence = StaticOracleConfidence;
  E.Source = name();
  return E;
}

//===----------------------------------------------------------------------===//
// ProfiledDepOracle
//===----------------------------------------------------------------------===//

std::optional<DepEstimate>
ProfiledDepOracle::dependence(const DepQuery &Q) const {
  if (Q.Channel != DepChannel::Memory || !Q.Profile)
    return std::nullopt;
  const LoopDepProfileData &P = *Q.Profile;
  DepEstimate E;
  E.Confidence = std::min(
      1.0, static_cast<double>(P.Iterations) / ProfiledSaturationIters);
  E.Source = name();
  // A profiled zero is an *answer*, not an abstention: the writer never
  // ran, or the pair never conflicted in the observed run. This is what
  // lets a profile erase conservative may-alias edges.
  auto ExecIt = P.StmtExec.find(Q.Src);
  const uint64_t WExec = ExecIt == P.StmtExec.end() ? 0 : ExecIt->second;
  if (WExec == 0) {
    E.Prob = 0.0;
    return E;
  }
  auto PairIt = P.Pairs.find({Q.Src, Q.Dst});
  if (PairIt == P.Pairs.end()) {
    E.Prob = 0.0;
    return E;
  }
  const uint64_t Hits = Q.Cross ? PairIt->second.Cross : PairIt->second.Intra;
  E.Prob = clamp01(static_cast<double>(Hits) / static_cast<double>(WExec));
  return E;
}

std::optional<BranchProbEstimate>
ProfiledDepOracle::branchProbabilities(const BranchProbQuery &Q) const {
  // Counts from a function whose shape changed since profiling, or from
  // a run that never reached the function, carry no signal — decline and
  // let the static member answer (the historical fallback).
  if (!Q.Counts || Q.Counts->Block.size() != Q.F->numBlocks())
    return std::nullopt;
  bool Executed = false;
  for (uint64_t C : Q.Counts->Block)
    Executed |= C != 0;
  if (!Executed)
    return std::nullopt;
  BranchProbEstimate E;
  E.Probs = CfgProbabilities::fromEdgeCounts(*Q.F, *Q.Counts);
  E.Measured = true;
  E.Confidence = 1.0;
  E.Source = name();
  return E;
}

//===----------------------------------------------------------------------===//
// SpeculationFallbackOracle
//===----------------------------------------------------------------------===//

std::optional<DepEstimate>
SpeculationFallbackOracle::dependence(const DepQuery &Q) const {
  DepEstimate E;
  E.Prob = Q.Cross ? FallbackCrossProb : 1.0;
  E.Confidence = FallbackOracleConfidence;
  E.Source = name();
  return E;
}

std::optional<BranchProbEstimate>
SpeculationFallbackOracle::branchProbabilities(const BranchProbQuery &) const {
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// DepOracleEnsemble
//===----------------------------------------------------------------------===//

DepOracleEnsemble::DepOracleEnsemble(
    std::string Name, std::vector<std::shared_ptr<const DepOracle>> Members,
    double ConfidenceFloor)
    : EnsembleName(std::move(Name)), Members(std::move(Members)),
      Floor(ConfidenceFloor) {}

std::optional<DepEstimate>
DepOracleEnsemble::dependence(const DepQuery &Q) const {
  std::optional<DepEstimate> Last;
  for (const auto &M : Members) {
    if (std::optional<DepEstimate> E = M->dependence(Q)) {
      if (E->Confidence >= Floor)
        return E;
      Last = E; // Below the floor: remember, keep looking.
    }
  }
  return Last;
}

std::optional<BranchProbEstimate>
DepOracleEnsemble::branchProbabilities(const BranchProbQuery &Q) const {
  std::optional<BranchProbEstimate> Last;
  for (const auto &M : Members) {
    if (std::optional<BranchProbEstimate> E = M->branchProbabilities(Q)) {
      if (E->Confidence >= Floor)
        return E;
      Last = std::move(E);
    }
  }
  return Last;
}

//===----------------------------------------------------------------------===//
// DepOracleRegistry
//===----------------------------------------------------------------------===//

DepOracleRegistry::DepOracleRegistry() {
  auto Static = std::make_shared<StaticDepOracle>();
  auto Profiled = std::make_shared<ProfiledDepOracle>();
  auto Fallback = std::make_shared<SpeculationFallbackOracle>();

  Factories["ensemble"] = [Static, Profiled,
                           Fallback](const DepOracleConfig &C) {
    std::vector<std::shared_ptr<const DepOracle>> Ms;
    if (C.Measured)
      Ms.push_back(C.Measured);
    Ms.push_back(Profiled);
    Ms.push_back(Static);
    Ms.push_back(Fallback);
    return std::make_shared<DepOracleEnsemble>("ensemble", std::move(Ms),
                                               C.ConfidenceFloor);
  };
  Factories["static"] = [Static](const DepOracleConfig &C) {
    return std::make_shared<DepOracleEnsemble>(
        "static", std::vector<std::shared_ptr<const DepOracle>>{Static},
        C.ConfidenceFloor);
  };
  Factories["profile"] = [Static, Profiled](const DepOracleConfig &C) {
    return std::make_shared<DepOracleEnsemble>(
        "profile",
        std::vector<std::shared_ptr<const DepOracle>>{Profiled, Static},
        C.ConfidenceFloor);
  };
  Factories["fallback"] = [Fallback](const DepOracleConfig &C) {
    return std::make_shared<DepOracleEnsemble>(
        "fallback", std::vector<std::shared_ptr<const DepOracle>>{Fallback},
        C.ConfidenceFloor);
  };
  Factories["measured"] = [Static](const DepOracleConfig &C) {
    std::vector<std::shared_ptr<const DepOracle>> Ms;
    if (C.Measured)
      Ms.push_back(C.Measured);
    Ms.push_back(Static);
    return std::make_shared<DepOracleEnsemble>("measured", std::move(Ms),
                                               C.ConfidenceFloor);
  };
}

DepOracleRegistry &DepOracleRegistry::instance() {
  static DepOracleRegistry R;
  return R;
}

bool DepOracleRegistry::add(const std::string &Name, Factory F) {
  std::lock_guard<std::mutex> Lock(Mu);
  return Factories.emplace(Name, std::move(F)).second;
}

std::shared_ptr<const DepOracle>
DepOracleRegistry::create(const std::string &Name,
                          const DepOracleConfig &Config) const {
  Factory F;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Factories.find(Name);
    if (It == Factories.end())
      return nullptr;
    F = It->second;
  }
  return F(Config);
}

std::vector<std::string> DepOracleRegistry::names() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Out;
  for (const auto &KV : Factories)
    Out.push_back(KV.first);
  return Out;
}

const DepOracle &spt::defaultDepOracle() {
  static std::shared_ptr<const DepOracle> O =
      DepOracleRegistry::instance().create("ensemble", DepOracleConfig{});
  return *O;
}
