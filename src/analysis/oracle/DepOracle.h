//===- analysis/oracle/DepOracle.h - Pluggable dependence oracles ---------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SCAF-style dependence oracles: every probability the cost model and
/// partition search consume — memory-dependence probabilities on
/// violation-candidate edges, register-flow and control-dependence
/// probabilities, and the branch probabilities behind block frequencies —
/// is sourced from a `DepOracle` instead of hard-wired formulas scattered
/// through DepGraph/SptCompiler.
///
/// An oracle member answers a query with an estimate carrying a
/// *probability* and a *confidence*; the `DepOracleEnsemble` runs its
/// members in a fixed priority order and picks, deterministically, the
/// first answer whose confidence clears the configured floor (falling
/// back to the last answer when none does). The stock ensemble is
///
///   measured artifact > in-run profile > static heuristic > speculation
///
/// which with the default floor of 0.0 reproduces the historical
/// behavior byte for byte: the in-run dependence profile when stage B
/// collected one, the static frequency heuristic otherwise, and the
/// speculation fallback never (something earlier always answers).
/// Raising the floor above the static confidence (0.25) makes the
/// ensemble *refuse* modeled guesses and speculate blindly instead —
/// the SCAF trade of analysis effort against misspeculation cost.
///
/// Members are pure functions of the query (no hidden state), so a given
/// ensemble is deterministic and safe to share across threads. The
/// measured member is built from a serialized profile artifact by
/// profile/DepProfiler.h; analysis/ itself has no profile/ dependency.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_ANALYSIS_ORACLE_DEPORACLE_H
#define SPT_ANALYSIS_ORACLE_DEPORACLE_H

#include "analysis/Cfg.h"
#include "analysis/Freq.h"
#include "analysis/LoopInfo.h"
#include "analysis/ProfileData.h"
#include "ir/IR.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace spt {

/// Which kind of dependence edge a query is about. Profile-backed members
/// only speak for memory (that is what the dependence profiler records);
/// the static member answers every channel with the frequency-ratio
/// heuristic the cost model has always used.
enum class DepChannel : uint8_t {
  Memory,   ///< store→load through memory (the speculative may-deps).
  Register, ///< register flow from a def to a use.
  Control,  ///< branch → control-dependent statement.
};

/// One dependence-probability question: "how often does Dst observe a
/// value Src produced, per execution of Src?" for the given channel and
/// iteration-crossing direction.
struct DepQuery {
  const Function *F = nullptr;
  const Loop *L = nullptr;
  DepChannel Channel = DepChannel::Memory;
  /// Source (writer / def / branch) and sink (reader / use / dependent).
  StmtId Src = 0;
  StmtId Dst = 0;
  /// True for a loop-carried (cross-iteration) dependence.
  bool Cross = false;
  /// Expected executions per loop iteration of each endpoint (FreqInfo).
  double SrcIterFreq = 0.0;
  double DstIterFreq = 0.0;
  /// In-run dependence profile for this loop when stage B collected one;
  /// null otherwise. Only the in-run profiled member reads it.
  const LoopDepProfileData *Profile = nullptr;
};

/// One member's answer: a probability in [0,1] plus how much the member
/// trusts it. Source names the member for diagnostics/observability.
struct DepEstimate {
  double Prob = 0.0;
  double Confidence = 0.0;
  const char *Source = "";
};

/// Branch-probability question for a whole function. Counts is the edge
/// profile when one exists for this function — including counts whose
/// shape no longer matches the function (members must validate).
struct BranchProbQuery {
  const Function *F = nullptr;
  const CfgInfo *Cfg = nullptr;
  const LoopNest *Nest = nullptr;
  const FunctionEdgeCounts *Counts = nullptr;
};

/// A full per-edge probability table for one function. Measured is true
/// when the answer consumed Q.Counts — callers then derive frequencies
/// with FreqInfo::fromBlockCounts instead of analytic propagation,
/// preserving the historical profiled-mode behavior exactly.
struct BranchProbEstimate {
  CfgProbabilities Probs;
  bool Measured = false;
  double Confidence = 0.0;
  const char *Source = "";
};

/// Abstract probability source. Members return std::nullopt for queries
/// they have nothing to say about (wrong channel, no data); the ensemble
/// then moves on to the next member. Implementations must be pure
/// functions of the query: no mutation, no hidden state, thread-safe.
class DepOracle {
public:
  virtual ~DepOracle() = default;

  virtual const char *name() const = 0;

  /// Probability that the dependence in \p Q occurs.
  virtual std::optional<DepEstimate> dependence(const DepQuery &Q) const = 0;

  /// Per-edge branch probabilities for Q.F, or nullopt when this member
  /// has no basis for an answer.
  virtual std::optional<BranchProbEstimate>
  branchProbabilities(const BranchProbQuery &Q) const = 0;
};

/// Static member confidences / fallback constants, exposed so tests and
/// callers picking a ConfidenceFloor can position themselves relative to
/// the stock members without magic numbers.
inline constexpr double StaticOracleConfidence = 0.25;
inline constexpr double FallbackOracleConfidence = 0.1;
/// Speculation fallback: assume loop-carried deps basically never fire
/// (speculate everything) and same-iteration deps always hold.
inline constexpr double FallbackCrossProb = 0.05;
/// Profile-backed confidence saturates at this many observed iterations.
inline constexpr double ProfiledSaturationIters = 8.0;

/// The frequency-ratio heuristic DepGraph has always used: the sink runs
/// DstIterFreq times per iteration, the source SrcIterFreq times, so the
/// chance one source execution reaches the sink is min(1, Dst/Src).
/// Answers every channel; branch probabilities come from
/// CfgProbabilities::staticHeuristic.
class StaticDepOracle final : public DepOracle {
public:
  const char *name() const override { return "static"; }
  std::optional<DepEstimate> dependence(const DepQuery &Q) const override;
  std::optional<BranchProbEstimate>
  branchProbabilities(const BranchProbQuery &Q) const override;
};

/// The in-run profile member: speaks only when the compilation's own
/// stage-B dependence profile (DepQuery::Profile) is present, and only
/// for the memory channel; reproduces the historical profiled formula
/// including its confident zero answers (writer never observed, or pair
/// never conflicted ⇒ probability 0). Branch probabilities come from
/// CfgProbabilities::fromEdgeCounts when the counts still match the
/// function's shape and show at least one executed block.
class ProfiledDepOracle final : public DepOracle {
public:
  const char *name() const override { return "profile"; }
  std::optional<DepEstimate> dependence(const DepQuery &Q) const override;
  std::optional<BranchProbEstimate>
  branchProbabilities(const BranchProbQuery &Q) const override;
};

/// The speculation member: always answers memory queries with "just
/// speculate" (cross-iteration deps almost never fire, intra-iteration
/// deps always hold) at low confidence. Last resort when the floor
/// disqualifies modeled guesses. Never answers branch probabilities.
class SpeculationFallbackOracle final : public DepOracle {
public:
  const char *name() const override { return "fallback"; }
  std::optional<DepEstimate> dependence(const DepQuery &Q) const override;
  std::optional<BranchProbEstimate>
  branchProbabilities(const BranchProbQuery &Q) const override;
};

/// Priority-ordered combiner. For each query: the first member whose
/// answer's confidence clears the floor wins; if every answer falls
/// short, the last answer wins (better a low-confidence estimate than
/// none); if no member answers, neither does the ensemble.
class DepOracleEnsemble final : public DepOracle {
public:
  DepOracleEnsemble(std::string Name,
                    std::vector<std::shared_ptr<const DepOracle>> Members,
                    double ConfidenceFloor);

  const char *name() const override { return EnsembleName.c_str(); }
  std::optional<DepEstimate> dependence(const DepQuery &Q) const override;
  std::optional<BranchProbEstimate>
  branchProbabilities(const BranchProbQuery &Q) const override;

  const std::vector<std::shared_ptr<const DepOracle>> &members() const {
    return Members;
  }
  double confidenceFloor() const { return Floor; }

private:
  std::string EnsembleName;
  std::vector<std::shared_ptr<const DepOracle>> Members;
  double Floor;
};

/// Everything a registry factory may want: the combiner floor and the
/// measured-artifact member (built by profile/DepProfiler.h from a
/// deserialized artifact; null when no artifact was supplied).
struct DepOracleConfig {
  double ConfidenceFloor = 0.0;
  std::shared_ptr<const DepOracle> Measured;
};

/// Name → oracle factory. Built-ins: "ensemble" (measured > profile >
/// static > fallback), "static", "profile" (profile > static),
/// "fallback", "measured" (measured > static). create() returns null for
/// unknown names — callers degrade to the default ensemble and diagnose.
class DepOracleRegistry {
public:
  using Factory =
      std::function<std::shared_ptr<const DepOracle>(const DepOracleConfig &)>;

  static DepOracleRegistry &instance();

  /// Register a factory; returns false (and changes nothing) when the
  /// name is already taken.
  bool add(const std::string &Name, Factory F);

  std::shared_ptr<const DepOracle> create(const std::string &Name,
                                          const DepOracleConfig &Config) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

private:
  DepOracleRegistry();

  mutable std::mutex Mu;
  std::map<std::string, Factory> Factories;
};

/// The process-wide default: the stock ensemble with no measured member
/// and a 0.0 floor — byte-identical to the pre-oracle hard-wired
/// behavior. Used whenever a caller does not supply an oracle.
const DepOracle &defaultDepOracle();

} // namespace spt

#endif // SPT_ANALYSIS_ORACLE_DEPORACLE_H
