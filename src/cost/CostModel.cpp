//===- cost/CostModel.cpp - Misspeculation cost model ------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace spt;

namespace {

double clamp01(double X) { return X < 0.0 ? 0.0 : (X > 1.0 ? 1.0 : X); }

} // namespace

MisspecCostModel::MisspecCostModel(const LoopDepGraph &G) : G(&G) {
  const uint32_t N = static_cast<uint32_t>(G.size());

  // Seeds: every cross-iteration flow edge, grouped by violation candidate.
  for (const DepEdge &E : G.edges())
    if (E.Cross && isFlowDep(E.Kind) && E.Prob > 1e-9)
      Seeds.push_back(CrossSeed{E.Src, E.Dst, E.Prob});

  // Reachability: BFS from seed targets over intra flow+control edges.
  Reach.assign(N, 0);
  std::vector<uint32_t> Work;
  for (const CrossSeed &S : Seeds)
    if (!Reach[S.Dst]) {
      Reach[S.Dst] = 1;
      Work.push_back(S.Dst);
    }
  while (!Work.empty()) {
    const uint32_t Cur = Work.back();
    Work.pop_back();
    for (uint32_t EI : G.outEdges(Cur)) {
      const DepEdge &E = G.edges()[EI];
      if (E.Cross || !(isFlowDep(E.Kind) || E.Kind == DepKind::Control))
        continue;
      if (E.Prob <= 1e-9 || Reach[E.Dst])
        continue;
      Reach[E.Dst] = 1;
      Work.push_back(E.Dst);
    }
  }

  // Propagation edges among reachable nodes.
  for (const DepEdge &E : G.edges()) {
    if (E.Cross || !(isFlowDep(E.Kind) || E.Kind == DepKind::Control))
      continue;
    if (E.Prob <= 1e-9 || !Reach[E.Src] || !Reach[E.Dst])
      continue;
    Prop.push_back(PropEdge{E.Src, E.Dst, E.Prob});
  }
  InOf.assign(N, {});
  for (uint32_t PI = 0; PI != Prop.size(); ++PI)
    InOf[Prop[PI].Dst].push_back(PI);

  // Kahn topological order over the reachable propagation subgraph.
  std::vector<uint32_t> InDegree(N, 0);
  for (const PropEdge &E : Prop)
    ++InDegree[E.Dst];
  std::vector<uint32_t> Queue;
  for (uint32_t SI = 0; SI != N; ++SI)
    if (Reach[SI] && InDegree[SI] == 0)
      Queue.push_back(SI);
  std::vector<uint8_t> Emitted(N, 0);
  while (!Queue.empty()) {
    // Pop the smallest for determinism.
    auto MinIt = std::min_element(Queue.begin(), Queue.end());
    const uint32_t Cur = *MinIt;
    Queue.erase(MinIt);
    Order.push_back(Cur);
    Emitted[Cur] = 1;
    for (const PropEdge &E : Prop)
      if (E.Src == Cur && --InDegree[E.Dst] == 0)
        Queue.push_back(E.Dst);
  }
  for (uint32_t SI = 0; SI != N; ++SI)
    if (Reach[SI] && !Emitted[SI]) {
      Order.push_back(SI); // Member of a cycle.
      Cyclic = true;
    }
}

double MisspecCostModel::violationProbability(uint32_t StmtIdx) const {
  return clamp01(G->stmt(StmtIdx).IterFreq);
}

void MisspecCostModel::propagate(std::vector<double> &V,
                                 const PartitionSet &InPreFork) const {
  assert(InPreFork.size() == G->size() && "partition size mismatch");
  const uint32_t N = static_cast<uint32_t>(G->size());
  V.assign(N, 0.0);

  // Base contributions from the pseudo nodes: v(VC') is 0 when the
  // candidate sits in the pre-fork region, else its violation probability.
  std::vector<double> Base(N, 0.0);
  for (const CrossSeed &S : Seeds) {
    if (InPreFork[S.Vc])
      continue;
    const double VPseudo = violationProbability(S.Vc);
    const double Contribution = S.Prob * VPseudo;
    Base[S.Dst] = 1.0 - (1.0 - Base[S.Dst]) * (1.0 - Contribution);
  }

  // Sweep in quasi-topological order; repeat to fixpoint when cyclic.
  const int MaxSweeps = Cyclic ? 100 : 1;
  for (int Sweep = 0; Sweep != MaxSweeps; ++Sweep) {
    double MaxDelta = 0.0;
    for (uint32_t C : Order) {
      double KeepProb = 1.0 - Base[C];
      for (uint32_t PI : InOf[C]) {
        const PropEdge &E = Prop[PI];
        KeepProb *= (1.0 - E.Prob * V[E.Src]);
      }
      const double NewV = clamp01(1.0 - KeepProb);
      MaxDelta = std::max(MaxDelta, std::fabs(NewV - V[C]));
      V[C] = NewV;
    }
    if (MaxDelta < 1e-10)
      break;
  }
}

double MisspecCostModel::cost(const PartitionSet &InPreFork) const {
  std::vector<double> V;
  propagate(V, InPreFork);
  double Total = 0.0;
  for (uint32_t SI = 0; SI != G->size(); ++SI) {
    if (!Reach[SI])
      continue;
    const LoopStmt &S = G->stmt(SI);
    Total += V[SI] * S.Weight * S.IterFreq;
  }
  return Total;
}

std::vector<double>
MisspecCostModel::reexecProbabilities(const PartitionSet &InPreFork) const {
  std::vector<double> V;
  propagate(V, InPreFork);
  return V;
}

double MisspecCostModel::emptyPartitionCost() const {
  PartitionSet Empty(G->size(), 0);
  return cost(Empty);
}
