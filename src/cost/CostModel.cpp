//===- cost/CostModel.cpp - Misspeculation cost model ------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <queue>

using namespace spt;

namespace {

double clamp01(double X) { return X < 0.0 ? 0.0 : (X > 1.0 ? 1.0 : X); }

/// CSR over (key -> value) pairs emitted in insertion order: Off[k]..Off[k+1]
/// indexes Out with the values of key k, preserving relative order.
void buildCsr(uint32_t NumKeys, const std::vector<std::pair<uint32_t, uint32_t>> &Pairs,
              std::vector<uint32_t> &Out, std::vector<uint32_t> &Off) {
  Off.assign(NumKeys + 1, 0);
  for (const auto &P : Pairs)
    ++Off[P.first + 1];
  for (uint32_t K = 0; K != NumKeys; ++K)
    Off[K + 1] += Off[K];
  Out.resize(Pairs.size());
  std::vector<uint32_t> Cursor(Off.begin(), Off.end() - 1);
  for (const auto &P : Pairs)
    Out[Cursor[P.first]++] = P.second;
}

} // namespace

MisspecCostModel::MisspecCostModel(const LoopDepGraph &G,
                                   bool ReferenceConstruction)
    : G(&G) {
  const uint32_t N = static_cast<uint32_t>(G.size());

  // Seeds: every cross-iteration flow edge, grouped by violation candidate.
  for (const DepEdge &E : G.edges())
    if (E.Cross && isFlowDep(E.Kind) && E.Prob > 1e-9)
      Seeds.push_back(CrossSeed{E.Src, E.Dst, E.Prob});

  // Reachability: BFS from seed targets over intra flow+control edges.
  Reach.assign(N, 0);
  std::vector<uint32_t> Work;
  for (const CrossSeed &S : Seeds)
    if (!Reach[S.Dst]) {
      Reach[S.Dst] = 1;
      Work.push_back(S.Dst);
    }
  while (!Work.empty()) {
    const uint32_t Cur = Work.back();
    Work.pop_back();
    for (uint32_t EI : G.outEdges(Cur)) {
      const DepEdge &E = G.edges()[EI];
      if (E.Cross || !(isFlowDep(E.Kind) || E.Kind == DepKind::Control))
        continue;
      if (E.Prob <= 1e-9 || Reach[E.Dst])
        continue;
      Reach[E.Dst] = 1;
      Work.push_back(E.Dst);
    }
  }

  // Propagation edges among reachable nodes.
  for (const DepEdge &E : G.edges()) {
    if (E.Cross || !(isFlowDep(E.Kind) || E.Kind == DepKind::Control))
      continue;
    if (E.Prob <= 1e-9 || !Reach[E.Src] || !Reach[E.Dst])
      continue;
    Prop.push_back(PropEdge{E.Src, E.Dst, E.Prob});
  }
  InOf.assign(N, {});
  for (uint32_t PI = 0; PI != Prop.size(); ++PI)
    InOf[Prop[PI].Dst].push_back(PI);

  // Out-edge CSR over the propagation edges, preserving edge order so the
  // min-heap Kahn below pushes ready successors in the exact order the
  // reference edge rescan did.
  {
    std::vector<std::pair<uint32_t, uint32_t>> Pairs;
    Pairs.reserve(Prop.size());
    for (uint32_t PI = 0; PI != Prop.size(); ++PI)
      Pairs.emplace_back(Prop[PI].Src, PI);
    buildCsr(N, Pairs, PropOut, PropOutOff);
  }

  // Kahn topological order over the reachable propagation subgraph,
  // popping the smallest ready statement for determinism.
  std::vector<uint32_t> InDegree(N, 0);
  for (const PropEdge &E : Prop)
    ++InDegree[E.Dst];
  std::vector<uint8_t> Emitted(N, 0);
  if (ReferenceConstruction) {
    // Retained pre-optimization path: O(V) min_element pops and a full
    // edge rescan per emitted node (perf_compile's baseline).
    std::vector<uint32_t> Queue;
    for (uint32_t SI = 0; SI != N; ++SI)
      if (Reach[SI] && InDegree[SI] == 0)
        Queue.push_back(SI);
    while (!Queue.empty()) {
      auto MinIt = std::min_element(Queue.begin(), Queue.end());
      const uint32_t Cur = *MinIt;
      Queue.erase(MinIt);
      Order.push_back(Cur);
      Emitted[Cur] = 1;
      for (const PropEdge &E : Prop)
        if (E.Src == Cur && --InDegree[E.Dst] == 0)
          Queue.push_back(E.Dst);
    }
  } else {
    std::priority_queue<uint32_t, std::vector<uint32_t>,
                        std::greater<uint32_t>>
        Heap;
    for (uint32_t SI = 0; SI != N; ++SI)
      if (Reach[SI] && InDegree[SI] == 0)
        Heap.push(SI);
    while (!Heap.empty()) {
      const uint32_t Cur = Heap.top();
      Heap.pop();
      Order.push_back(Cur);
      Emitted[Cur] = 1;
      for (uint32_t K = PropOutOff[Cur]; K != PropOutOff[Cur + 1]; ++K) {
        const PropEdge &E = Prop[PropOut[K]];
        if (--InDegree[E.Dst] == 0)
          Heap.push(E.Dst);
      }
    }
  }
  for (uint32_t SI = 0; SI != N; ++SI)
    if (Reach[SI] && !Emitted[SI]) {
      Order.push_back(SI); // Member of a cycle.
      Cyclic = true;
    }

  buildDerivedStructures(ReferenceConstruction);
}

void MisspecCostModel::buildDerivedStructures(bool /*ReferenceConstruction*/) {
  const uint32_t N = static_cast<uint32_t>(G->size());

  SeedContribution.resize(Seeds.size());
  for (uint32_t SI = 0; SI != Seeds.size(); ++SI)
    SeedContribution[SI] =
        Seeds[SI].Prob * violationProbability(Seeds[SI].Vc);

  {
    std::vector<std::pair<uint32_t, uint32_t>> ByDst, ByVc;
    ByDst.reserve(Seeds.size());
    ByVc.reserve(Seeds.size());
    for (uint32_t SI = 0; SI != Seeds.size(); ++SI) {
      ByDst.emplace_back(Seeds[SI].Dst, SI);
      ByVc.emplace_back(Seeds[SI].Vc, SI);
    }
    buildCsr(N, ByDst, SeedsOfDst, SeedsOfDstOff);
    buildCsr(N, ByVc, SeedsOfVc, SeedsOfVcOff);
  }

  for (uint32_t SI = 0; SI != N; ++SI)
    if (Reach[SI])
      ReachList.push_back(SI);

  OrderPos.assign(N, ~0u);
  for (uint32_t Pos = 0; Pos != Order.size(); ++Pos)
    OrderPos[Order[Pos]] = Pos;

  ReachPos.assign(N, ~0u);
  for (uint32_t Pos = 0; Pos != ReachList.size(); ++Pos)
    ReachPos[ReachList[Pos]] = Pos;

  InEdgeOff.assign(N + 1, 0);
  InEdges.clear();
  InEdges.reserve(Prop.size());
  for (uint32_t C = 0; C != N; ++C) {
    InEdgeOff[C] = static_cast<uint32_t>(InEdges.size());
    for (uint32_t PI : InOf[C])
      InEdges.push_back(InEdge{Prop[PI].Src, Prop[PI].Prob});
  }
  InEdgeOff[N] = static_cast<uint32_t>(InEdges.size());

  ReachW.resize(ReachList.size());
  ReachF.resize(ReachList.size());
  for (uint32_t Pos = 0; Pos != ReachList.size(); ++Pos) {
    const LoopStmt &S = G->stmt(ReachList[Pos]);
    ReachW[Pos] = S.Weight;
    ReachF[Pos] = S.IterFreq;
  }

  AllSeedDsts.reserve(Seeds.size());
  {
    std::vector<uint8_t> SeenDst(N, 0);
    for (const CrossSeed &S : Seeds)
      if (!SeenDst[S.Dst]) {
        SeenDst[S.Dst] = 1;
        AllSeedDsts.push_back(S.Dst);
      }
    std::sort(AllSeedDsts.begin(), AllSeedDsts.end());
  }
}

double MisspecCostModel::violationProbability(uint32_t StmtIdx) const {
  return clamp01(G->stmt(StmtIdx).IterFreq);
}

//===----------------------------------------------------------------------===//
// Reference path (retained naive implementation)
//===----------------------------------------------------------------------===//

void MisspecCostModel::propagate(std::vector<double> &V,
                                 const PartitionSet &InPreFork) const {
  assert(InPreFork.size() == G->size() && "partition size mismatch");
  const uint32_t N = static_cast<uint32_t>(G->size());
  V.assign(N, 0.0);

  // Base contributions from the pseudo nodes: v(VC') is 0 when the
  // candidate sits in the pre-fork region, else its violation probability.
  std::vector<double> Base(N, 0.0);
  for (const CrossSeed &S : Seeds) {
    if (InPreFork[S.Vc])
      continue;
    const double VPseudo = violationProbability(S.Vc);
    const double Contribution = S.Prob * VPseudo;
    Base[S.Dst] = 1.0 - (1.0 - Base[S.Dst]) * (1.0 - Contribution);
  }

  // Sweep in quasi-topological order; repeat to fixpoint when cyclic.
  const int MaxSweeps = Cyclic ? 100 : 1;
  for (int Sweep = 0; Sweep != MaxSweeps; ++Sweep) {
    double MaxDelta = 0.0;
    for (uint32_t C : Order) {
      double KeepProb = 1.0 - Base[C];
      for (uint32_t PI : InOf[C]) {
        const PropEdge &E = Prop[PI];
        KeepProb *= (1.0 - E.Prob * V[E.Src]);
      }
      const double NewV = clamp01(1.0 - KeepProb);
      MaxDelta = std::max(MaxDelta, std::fabs(NewV - V[C]));
      V[C] = NewV;
    }
    if (MaxDelta < 1e-10)
      break;
  }
}

double MisspecCostModel::cost(const PartitionSet &InPreFork) const {
  std::vector<double> V;
  propagate(V, InPreFork);
  double Total = 0.0;
  for (uint32_t SI = 0; SI != G->size(); ++SI) {
    if (!Reach[SI])
      continue;
    const LoopStmt &S = G->stmt(SI);
    Total += V[SI] * S.Weight * S.IterFreq;
  }
  return Total;
}

std::vector<double>
MisspecCostModel::reexecProbabilities(const PartitionSet &InPreFork) const {
  std::vector<double> V;
  propagate(V, InPreFork);
  return V;
}

double MisspecCostModel::emptyPartitionCost() const {
  PartitionSet Empty(G->size(), 0);
  return cost(Empty);
}

//===----------------------------------------------------------------------===//
// Scratch path (allocation-free, incremental)
//===----------------------------------------------------------------------===//

double MisspecCostModel::recomputeBase(uint32_t Dst, const uint8_t *InPre,
                                       const uint8_t *ExtraGroup) const {
  // Folds Dst's seed contributions in global seed order — the same order
  // (and therefore the same rounding) as propagate()'s single pass over
  // all seeds, because contributions to distinct targets commute freely.
  double B = 0.0;
  for (uint32_t K = SeedsOfDstOff[Dst]; K != SeedsOfDstOff[Dst + 1]; ++K) {
    const uint32_t SI = SeedsOfDst[K];
    const CrossSeed &S = Seeds[SI];
    if (InPre[S.Vc] || (ExtraGroup && ExtraGroup[S.Vc]))
      continue;
    B = 1.0 - (1.0 - B) * (1.0 - SeedContribution[SI]);
  }
  return B;
}

void MisspecCostModel::propagateFull(std::vector<double> &V,
                                     std::vector<double> &Base,
                                     const uint8_t *InPre,
                                     const uint8_t *ExtraGroup) const {
  std::fill(V.begin(), V.end(), 0.0);
  std::fill(Base.begin(), Base.end(), 0.0);
  for (uint32_t SI = 0; SI != Seeds.size(); ++SI) {
    const CrossSeed &S = Seeds[SI];
    if (InPre[S.Vc] || (ExtraGroup && ExtraGroup[S.Vc]))
      continue;
    Base[S.Dst] = 1.0 - (1.0 - Base[S.Dst]) * (1.0 - SeedContribution[SI]);
  }
  const int MaxSweeps = Cyclic ? 100 : 1;
  for (int Sweep = 0; Sweep != MaxSweeps; ++Sweep) {
    double MaxDelta = 0.0;
    for (uint32_t C : Order) {
      double KeepProb = 1.0 - Base[C];
      for (uint32_t K = InEdgeOff[C]; K != InEdgeOff[C + 1]; ++K)
        KeepProb *= (1.0 - InEdges[K].Prob * V[InEdges[K].Src]);
      const double NewV = clamp01(1.0 - KeepProb);
      MaxDelta = std::max(MaxDelta, std::fabs(NewV - V[C]));
      V[C] = NewV;
    }
    if (MaxDelta < 1e-10)
      break;
  }
}

double MisspecCostModel::sumCost(const double *V) const {
  double Total = 0.0;
  for (uint32_t SI : ReachList) {
    const LoopStmt &S = G->stmt(SI);
    Total += V[SI] * S.Weight * S.IterFreq;
  }
  return Total;
}

double MisspecCostModel::refillCostPrefix(Scratch &S, uint32_t FromPos) const {
  const uint32_t NumReach = static_cast<uint32_t>(ReachList.size());
  const double *V = S.V.data();
  double *Prefix = S.CostPrefix.data();
  double Total = Prefix[FromPos];
  for (uint32_t K = FromPos; K != NumReach; ++K) {
    Total += V[ReachList[K]] * ReachW[K] * ReachF[K];
    Prefix[K + 1] = Total;
  }
  return Total;
}

void MisspecCostModel::initScratch(Scratch &S,
                                   const PartitionSet &InPreFork) const {
  assert(InPreFork.size() == G->size() && "partition size mismatch");
  const size_t N = G->size();
  if (!S.InPre.empty())
    ++S.Stat.Reuses;
  ++S.Stat.Inits;
  S.V.assign(N, 0.0);
  S.Base.assign(N, 0.0);
  S.TmpV.assign(N, 0.0);
  S.TmpBase.assign(N, 0.0);
  S.InPre.assign(InPreFork.begin(), InPreFork.end());
  S.InCone.assign(N, 0);
  S.InBase.assign(N, 0);
  S.InGroup.assign(N, 0);
  S.VTrail.clear();
  S.BaseTrail.clear();
  S.PreTrail.clear();
  S.PrefixTrail.clear();
  S.Frames.clear();
  propagateFull(S.V, S.Base, S.InPre.data(), nullptr);
  S.CostPrefix.assign(ReachList.size() + 1, 0.0);
  S.PrefixValidTo = static_cast<uint32_t>(ReachList.size());
  S.Cost = refillCostPrefix(S, 0);
}

MisspecCostModel::TogglePlan
MisspecCostModel::planToggle(std::vector<uint32_t> Vcs) const {
  TogglePlan Plan;
  Plan.Vcs = std::move(Vcs);
  if (Cyclic)
    return Plan; // Toggles fall back to full re-propagation anyway.

  const uint32_t N = static_cast<uint32_t>(G->size());
  std::vector<uint8_t> Mark(N, 0);
  std::vector<uint32_t> Work;
  for (uint32_t Vc : Plan.Vcs)
    for (uint32_t K = SeedsOfVcOff[Vc]; K != SeedsOfVcOff[Vc + 1]; ++K) {
      const uint32_t Dst = Seeds[SeedsOfVc[K]].Dst;
      if (!Mark[Dst]) {
        Mark[Dst] = 1;
        Plan.BaseDsts.push_back(Dst);
        Work.push_back(Dst);
      }
    }
  std::sort(Plan.BaseDsts.begin(), Plan.BaseDsts.end());

  // Forward closure over the propagation edges: every statement whose
  // re-execution probability can change when these seeds change.
  Plan.Cone = Plan.BaseDsts;
  while (!Work.empty()) {
    const uint32_t Cur = Work.back();
    Work.pop_back();
    for (uint32_t K = PropOutOff[Cur]; K != PropOutOff[Cur + 1]; ++K) {
      const uint32_t Dst = Prop[PropOut[K]].Dst;
      if (!Mark[Dst]) {
        Mark[Dst] = 1;
        Plan.Cone.push_back(Dst);
        Work.push_back(Dst);
      }
    }
  }
  std::sort(Plan.Cone.begin(), Plan.Cone.end(),
            [this](uint32_t A, uint32_t B) {
              return OrderPos[A] < OrderPos[B];
            });
  Plan.FirstReachPos = static_cast<uint32_t>(ReachList.size());
  for (uint32_t C : Plan.Cone)
    Plan.FirstReachPos = std::min(Plan.FirstReachPos, ReachPos[C]);
  return Plan;
}

double MisspecCostModel::costWithToggled(Scratch &S,
                                         const TogglePlan &Plan) const {
  assert(S.InPre.size() == G->size() && "scratch not initialized");

  if (Cyclic) {
    // Fixpoint iteration from a warm start can converge to different
    // rounding than the reference's cold start, so cyclic graphs always
    // re-propagate fully (still allocation-free via the Tmp buffers).
    ++S.Stat.FullEvals;
    for (uint32_t Vc : Plan.Vcs)
      S.InGroup[Vc] = 1;
    propagateFull(S.TmpV, S.TmpBase, S.InPre.data(), S.InGroup.data());
    for (uint32_t Vc : Plan.Vcs)
      S.InGroup[Vc] = 0;
    return sumCost(S.TmpV.data());
  }

  ++S.Stat.ConeEvals;
  for (uint32_t Vc : Plan.Vcs) {
    assert(!S.InPre[Vc] && "toggled candidate already committed");
    S.InGroup[Vc] = 1;
  }
  for (uint32_t Dst : Plan.BaseDsts) {
    S.TmpBase[Dst] = recomputeBase(Dst, S.InPre.data(), S.InGroup.data());
    S.InBase[Dst] = 1;
  }
  for (uint32_t C : Plan.Cone) {
    double KeepProb = 1.0 - (S.InBase[C] ? S.TmpBase[C] : S.Base[C]);
    for (uint32_t K = InEdgeOff[C]; K != InEdgeOff[C + 1]; ++K) {
      const InEdge &E = InEdges[K];
      const double VSrc = S.InCone[E.Src] ? S.TmpV[E.Src] : S.V[E.Src];
      KeepProb *= (1.0 - E.Prob * VSrc);
    }
    S.TmpV[C] = clamp01(1.0 - KeepProb);
    S.InCone[C] = 1;
  }

  double Total = 0.0;
  for (uint32_t SI : ReachList) {
    const LoopStmt &St = G->stmt(SI);
    const double V = S.InCone[SI] ? S.TmpV[SI] : S.V[SI];
    Total += V * St.Weight * St.IterFreq;
  }

  for (uint32_t Vc : Plan.Vcs)
    S.InGroup[Vc] = 0;
  for (uint32_t Dst : Plan.BaseDsts)
    S.InBase[Dst] = 0;
  for (uint32_t C : Plan.Cone)
    S.InCone[C] = 0;
  return Total;
}

double
MisspecCostModel::costWithToggled(Scratch &S, const PartitionSet &BasePartition,
                                  const std::vector<uint32_t> &VcGroup) const {
  if (S.InPre.size() != G->size() ||
      !std::equal(S.InPre.begin(), S.InPre.end(), BasePartition.begin(),
                  [](uint8_t A, uint8_t B) { return (A != 0) == (B != 0); }))
    initScratch(S, BasePartition);
  return costWithToggled(S, planToggle(VcGroup));
}

double MisspecCostModel::refreshCost(Scratch &S) const {
  const uint32_t NumReach = static_cast<uint32_t>(ReachList.size());
  if (S.PrefixValidTo != NumReach) {
    const uint32_t From = S.PrefixValidTo;
    assert(!S.Frames.empty() && "stale prefix without a commit frame");
    assert(S.Frames.back().PrefixPos == NumReach &&
           "at most one refresh per commit frame");
    S.Frames.back().PrefixPos = From;
    const uint32_t Count = NumReach - From;
    const size_t PBase = S.PrefixTrail.size();
    S.PrefixTrail.resize(PBase + Count);
    std::memcpy(S.PrefixTrail.data() + PBase, S.CostPrefix.data() + From + 1,
                Count * sizeof(double));
    S.Cost = refillCostPrefix(S, From);
    S.PrefixValidTo = NumReach;
  }
  return S.CostPrefix[NumReach];
}

void MisspecCostModel::applyCommittedDelta(Scratch &S, const TogglePlan &Plan,
                                           bool Refresh) const {
  if (Cyclic) {
    ++S.Stat.FullCommits;
    // Record the full solution (cycles are rare), then re-propagate.
    for (uint32_t C : Order)
      S.VTrail.push_back(Scratch::Saved{C, S.V[C]});
    for (uint32_t Dst : AllSeedDsts)
      S.BaseTrail.push_back(Scratch::Saved{Dst, S.Base[Dst]});
    propagateFull(S.V, S.Base, S.InPre.data(), nullptr);
    S.PrefixValidTo = 0;
  } else {
    ++S.Stat.ConeCommits;
    const size_t BBase = S.BaseTrail.size();
    S.BaseTrail.resize(BBase + Plan.BaseDsts.size());
    Scratch::Saved *BT = S.BaseTrail.data() + BBase;
    for (uint32_t Dst : Plan.BaseDsts) {
      *BT++ = Scratch::Saved{Dst, S.Base[Dst]};
      S.Base[Dst] = recomputeBase(Dst, S.InPre.data(), nullptr);
    }
    const size_t VBase = S.VTrail.size();
    S.VTrail.resize(VBase + Plan.Cone.size());
    Scratch::Saved *VT = S.VTrail.data() + VBase;
    double *V = S.V.data();
    for (uint32_t C : Plan.Cone) {
      *VT++ = Scratch::Saved{C, V[C]};
      double KeepProb = 1.0 - S.Base[C];
      for (uint32_t K = InEdgeOff[C]; K != InEdgeOff[C + 1]; ++K)
        KeepProb *= (1.0 - InEdges[K].Prob * V[InEdges[K].Src]);
      V[C] = clamp01(1.0 - KeepProb);
    }
    // Terms below the cone's first reachable position are unchanged, so
    // their stored partials still match a cold sum; only the watermark
    // above it drops.
    S.PrefixValidTo = std::min(S.PrefixValidTo, Plan.FirstReachPos);
  }
  if (Refresh)
    refreshCost(S);
}

namespace {
/// Pushes the undo frame every commit entry point starts with.
void pushFrame(MisspecCostModel::Scratch &S) {
  S.Frames.push_back(MisspecCostModel::Scratch::Frame{
      static_cast<uint32_t>(S.VTrail.size()),
      static_cast<uint32_t>(S.BaseTrail.size()),
      static_cast<uint32_t>(S.PreTrail.size()),
      static_cast<uint32_t>(S.CostPrefix.size() - 1), S.PrefixValidTo,
      S.Cost});
  S.Stat.MaxDepth = std::max<uint64_t>(S.Stat.MaxDepth, S.Frames.size());
}
} // namespace

void MisspecCostModel::commitToggle(Scratch &S, const TogglePlan &Plan) const {
  assert(S.InPre.size() == G->size() && "scratch not initialized");
  pushFrame(S);
  for (uint32_t Vc : Plan.Vcs) {
    assert(!S.InPre[Vc] && "toggled candidate already committed");
    S.PreTrail.push_back(Scratch::SavedPre{Vc, S.InPre[Vc]});
    S.InPre[Vc] = 1;
  }
  applyCommittedDelta(S, Plan, /*Refresh=*/true);
}

void MisspecCostModel::commitUntoggle(Scratch &S,
                                      const TogglePlan &Plan) const {
  assert(S.InPre.size() == G->size() && "scratch not initialized");
  pushFrame(S);
  for (uint32_t Vc : Plan.Vcs) {
    assert(S.InPre[Vc] && "untoggled candidate not committed");
    S.PreTrail.push_back(Scratch::SavedPre{Vc, S.InPre[Vc]});
    S.InPre[Vc] = 0;
  }
  applyCommittedDelta(S, Plan, /*Refresh=*/true);
}

void MisspecCostModel::commitUntoggleDeferred(Scratch &S,
                                              const TogglePlan &Plan) const {
  assert(S.InPre.size() == G->size() && "scratch not initialized");
  pushFrame(S);
  for (uint32_t Vc : Plan.Vcs) {
    assert(S.InPre[Vc] && "untoggled candidate not committed");
    S.PreTrail.push_back(Scratch::SavedPre{Vc, S.InPre[Vc]});
    S.InPre[Vc] = 0;
  }
  applyCommittedDelta(S, Plan, /*Refresh=*/false);
}

void MisspecCostModel::undoToggle(Scratch &S) const {
  assert(!S.Frames.empty() && "undoToggle without a matching commit");
  ++S.Stat.Undos;
  const Scratch::Frame F = S.Frames.back();
  S.Frames.pop_back();
  for (size_t K = S.VTrail.size(); K != F.VSize; --K)
    S.V[S.VTrail[K - 1].Idx] = S.VTrail[K - 1].Old;
  S.VTrail.resize(F.VSize);
  for (size_t K = S.BaseTrail.size(); K != F.BaseSize; --K)
    S.Base[S.BaseTrail[K - 1].Idx] = S.BaseTrail[K - 1].Old;
  S.BaseTrail.resize(F.BaseSize);
  for (size_t K = S.PreTrail.size(); K != F.PreSize; --K)
    S.InPre[S.PreTrail[K - 1].Idx] = S.PreTrail[K - 1].Old;
  S.PreTrail.resize(F.PreSize);
  const uint32_t PrefixCount =
      static_cast<uint32_t>(ReachList.size()) - F.PrefixPos;
  const size_t PrefixBase = S.PrefixTrail.size() - PrefixCount;
  std::memcpy(S.CostPrefix.data() + F.PrefixPos + 1,
              S.PrefixTrail.data() + PrefixBase,
              PrefixCount * sizeof(double));
  S.PrefixTrail.resize(PrefixBase);
  S.PrefixValidTo = F.SavedValidTo;
  S.Cost = F.OldCost;
}
