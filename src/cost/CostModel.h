//===- cost/CostModel.h - Misspeculation cost model -------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The misspeculation cost model of the paper's Section 4 — the central
/// service component of the cost-driven framework. Given a loop's annotated
/// dependence graph and an SPT loop partition (the set of statements placed
/// in the pre-fork region), it computes the expected amount of computation
/// within a speculatively executed iteration that must be re-executed.
///
/// Construction (4.2.2): the cost graph starts from one pseudo node per
/// violation candidate, whose out-edges are the candidate's cross-iteration
/// true-dependence edges; every operation reachable from those targets via
/// intra-iteration dependence edges joins the graph. Each edge carries the
/// conditional probability that re-execution of its source misspeculates
/// its destination.
///
/// Evaluation (4.2.3): pseudo nodes get re-execution probability 0 when
/// their candidate sits in the pre-fork region, else the candidate's
/// violation probability. Probabilities then propagate in topological order
/// with x = 1 - (1 - x) * (1 - r * v(p)) under the independence
/// approximation the paper states. Cycles (possible through inner loops)
/// are resolved by sweeping to a fixpoint, which the monotone update
/// reaches quickly.
///
/// Cost (4.2.4): sum over operation nodes of v(c) * Cost(c), where Cost(c)
/// is the operation's weight times its per-iteration execution frequency;
/// pseudo nodes are excluded, exactly as in the paper.
///
/// Two evaluation paths exist:
///
///  - The *reference* path (cost(), reexecProbabilities()): allocates fresh
///    buffers and recomputes everything per call. It is the retained naive
///    implementation the differential tests and perf_compile's pre-PR
///    baseline measure against, and stays the convenient API for one-shot
///    callers.
///  - The *scratch* path (initScratch()/costWithToggled()/commitToggle()/
///    undoToggle()): allocation-free on the hot path. A Scratch caches the
///    committed partition's full propagation solution; toggling a group of
///    violation candidates into the pre-fork region re-propagates only the
///    cone of statements reachable from the toggled candidates' seed
///    targets. Both paths perform floating-point operations in the same
///    order on the same operands, so their results are bit-identical —
///    a property tests/cost_incremental_test.cpp enforces.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_COST_COSTMODEL_H
#define SPT_COST_COSTMODEL_H

#include "analysis/DepGraph.h"

#include <cstdint>
#include <vector>

namespace spt {

/// A partition: InPreFork[stmt index] != 0 when the statement is placed in
/// the pre-fork region.
using PartitionSet = std::vector<uint8_t>;

/// The reusable (per-loop) cost-graph; evaluate per candidate partition.
class MisspecCostModel {
public:
  /// \p ReferenceConstruction selects the pre-optimization construction
  /// path (O(E*V) Kahn edge rescans, O(V^2) deterministic queue) retained
  /// for the perf_compile baseline. Both constructions produce identical
  /// graphs and identical topological orders.
  explicit MisspecCostModel(const LoopDepGraph &G,
                            bool ReferenceConstruction = false);

  const LoopDepGraph &depGraph() const { return *G; }

  /// Misspeculation cost of \p InPreFork (size must equal G->size()).
  /// Reference path: allocates and recomputes from scratch per call.
  double cost(const PartitionSet &InPreFork) const;

  /// Per-statement re-execution probabilities for \p InPreFork. Entries
  /// for statements outside the cost graph are 0.
  std::vector<double> reexecProbabilities(const PartitionSet &InPreFork) const;

  /// Violation probability of a violation candidate (how often the main
  /// thread modifies its result per iteration, paper step 1).
  double violationProbability(uint32_t StmtIdx) const;

  /// Statements that belong to the cost graph (reachable from some
  /// violation candidate's cross edges).
  const std::vector<uint8_t> &reachable() const { return Reach; }

  /// Quasi-topological processing order over the cost graph (for the
  /// min-heap Kahn regression tests).
  const std::vector<uint32_t> &topoOrder() const { return Order; }

  /// Cost of the trivial partition (empty pre-fork region).
  double emptyPartitionCost() const;

  /// True when the evaluation needed fixpoint sweeps (cyclic cost graph).
  bool hasCycles() const { return Cyclic; }

  //===--------------------------------------------------------------------===//
  // Allocation-free scratch evaluation
  //===--------------------------------------------------------------------===//

  /// Reusable evaluation state. One Scratch belongs to one caller (the
  /// model itself stays const and shareable across threads); every buffer
  /// is sized by initScratch() and never allocates afterwards.
  struct Scratch {
    // Committed state: the full propagation solution for InPre.
    std::vector<double> V;      ///< Committed re-execution probabilities.
    std::vector<double> Base;   ///< Committed pseudo-node contributions.
    std::vector<uint8_t> InPre; ///< Committed partition (stmt-indexed).
    double Cost = 0.0;          ///< Cost of the committed partition.
    /// CostPrefix[K]: the cost sum after folding the first K ReachList
    /// terms — exactly the running partials a cold left-to-right
    /// sumCost() produces, so a commit whose cone starts at ReachList
    /// position P can resume the sum from CostPrefix[P] and stay
    /// bit-identical while re-adding only the tail.
    std::vector<double> CostPrefix;
    /// Entries [0, PrefixValidTo] of CostPrefix match a cold sum of the
    /// current V. Deferred commits only lower this watermark instead of
    /// re-summing; refreshCost() settles the tail once before a read.
    /// Cost == CostPrefix.back() whenever the watermark is full.
    uint32_t PrefixValidTo = 0;

    // Query buffers: costWithToggled() writes tentative values here.
    std::vector<double> TmpV, TmpBase;
    std::vector<uint8_t> InCone;  ///< Stmt had its V recomputed this query.
    std::vector<uint8_t> InBase;  ///< Stmt had its Base recomputed.
    std::vector<uint8_t> InGroup; ///< Stmt is a toggled candidate.

    // Undo trail: one frame per commit entry point.
    struct Saved {
      uint32_t Idx;
      double Old;
      Saved() {} // Deliberately uninitialized: trail slots bulk-appended
                 // with resize() are always overwritten immediately, and
                 // default-init (unlike value-init) skips the zero fill.
      Saved(uint32_t Idx, double Old) : Idx(Idx), Old(Old) {}
    };
    struct SavedPre {
      uint32_t Idx;
      uint8_t Old;
    };
    std::vector<Saved> VTrail, BaseTrail;
    std::vector<SavedPre> PreTrail;
    /// Overwritten CostPrefix tail entries, contiguous per frame.
    std::vector<double> PrefixTrail;
    struct Frame {
      uint32_t VSize, BaseSize, PreSize;
      /// First ReachList position whose prefix entry a refresh rewrote
      /// while this frame was on top (ReachList.size() when none did);
      /// the frame's PrefixTrail span restores [PrefixPos+1, NumReach].
      uint32_t PrefixPos;
      /// PrefixValidTo before this commit, restored on undo.
      uint32_t SavedValidTo;
      double OldCost;
    };
    std::vector<Frame> Frames;

    size_t depth() const { return Frames.size(); }

    /// Evaluation counters, maintained unconditionally: the Scratch is
    /// caller-owned and single-threaded, so plain increments cost nothing
    /// measurable next to the propagation work they count. PartitionSearch
    /// flushes them into the observability registry once per search (see
    /// docs/observability.md for the counter catalogue).
    struct EvalStats {
      uint64_t Inits = 0;       ///< initScratch full propagations.
      uint64_t Reuses = 0;      ///< initScratch calls reusing a warm scratch.
      uint64_t ConeEvals = 0;   ///< costWithToggled via the cone path.
      uint64_t FullEvals = 0;   ///< costWithToggled via cyclic full fixpoint.
      uint64_t ConeCommits = 0; ///< Committed deltas via the cone path.
      uint64_t FullCommits = 0; ///< Committed deltas via full re-propagation.
      uint64_t Undos = 0;       ///< undoToggle calls.
      uint64_t MaxDepth = 0;    ///< High-water undo-trail frame depth.
    } Stat;
  };

  /// The precomputed footprint of toggling one violation-candidate group:
  /// the seed targets whose Base changes and the cone of statements whose
  /// re-execution probability can change, in propagation order. Plans
  /// depend only on the group, never on the partition, so searches build
  /// them once and reuse them at every tree node.
  struct TogglePlan {
    std::vector<uint32_t> Vcs;      ///< Toggled candidate stmt indices.
    std::vector<uint32_t> BaseDsts; ///< Seed targets to recompute (sorted).
    std::vector<uint32_t> Cone;     ///< Affected stmts in topo order.
    /// Smallest ReachList position of a cone member: the first term of
    /// the cost sum the toggle can change. Commits resume the running
    /// prefix sum here instead of re-summing the whole cost graph.
    uint32_t FirstReachPos = 0;
  };

  /// Seeds \p S with the full propagation solution of \p InPreFork and
  /// clears the undo trail. The only scratch entry point that allocates.
  void initScratch(Scratch &S, const PartitionSet &InPreFork) const;

  /// Builds the toggle footprint for \p Vcs (unused on cyclic graphs,
  /// where every toggle falls back to a full re-propagation).
  TogglePlan planToggle(std::vector<uint32_t> Vcs) const;

  /// Cost of the committed partition with the plan's candidates
  /// additionally placed in the pre-fork region. Does not change the
  /// committed state. The candidates must not already be committed.
  double costWithToggled(Scratch &S, const TogglePlan &Plan) const;

  /// Convenience overload: verifies \p BasePartition matches the committed
  /// scratch state (re-seeding the scratch when it does not) and evaluates
  /// \p VcGroup through an on-the-fly plan.
  double costWithToggled(Scratch &S, const PartitionSet &BasePartition,
                         const std::vector<uint32_t> &VcGroup) const;

  /// Commits the plan's candidates into the scratch's partition, updating
  /// V/Base/Cost incrementally and pushing an undo frame.
  void commitToggle(Scratch &S, const TogglePlan &Plan) const;

  /// The inverse commit: removes the plan's (currently committed)
  /// candidates from the scratch's partition, with the same incremental
  /// cone update and undo frame. A toggle's footprint is symmetric —
  /// exactly the statements in the plan's cone can differ between the two
  /// partitions — so removal re-propagates the same cone and stays
  /// bit-identical to a fresh evaluation. The partition search uses this
  /// to slide a second scratch across the movable suffix, turning every
  /// lower-bound probe into a cached read (see PartitionSearch).
  void commitUntoggle(Scratch &S, const TogglePlan &Plan) const;

  /// commitUntoggle() with the cost re-sum deferred: the committed
  /// V/Base update happens now while CostPrefix keeps its stale tail and
  /// only the validity watermark drops. Use when several commits land
  /// between cost reads — refreshCost() then settles the sum once, from
  /// the lowest invalidated position, instead of once per commit. Until
  /// that refresh, S.Cost is meaningless.
  void commitUntoggleDeferred(Scratch &S, const TogglePlan &Plan) const;

  /// Settles CostPrefix/Cost after deferred commits with one tail re-sum
  /// from the first stale position — the identical fold a cold sum
  /// performs — and returns the committed partition's cost.
  double refreshCost(Scratch &S) const;

  /// Reverts the most recent commit (toggle, untoggle, or deferred),
  /// including any cost refresh that happened on top of it.
  void undoToggle(Scratch &S) const;

private:
  struct CrossSeed {
    uint32_t Vc;   ///< Violation-candidate statement index.
    uint32_t Dst;  ///< Target statement index.
    double Prob;   ///< Cross-dependence probability.
  };
  struct PropEdge {
    uint32_t Src;
    uint32_t Dst;
    double Prob;
  };
  /// One incoming propagation edge, packed for the scratch path's cone
  /// loops: per-destination contiguous, in the exact per-destination
  /// order of InOf so the product folds identically.
  struct InEdge {
    uint32_t Src;
    double Prob;
  };

  void propagate(std::vector<double> &V, const PartitionSet &InPreFork) const;
  /// Allocation-free full propagation into caller-sized buffers; a
  /// statement counts as pre-fork when InPre[s] or (ExtraGroup &&
  /// ExtraGroup[s]). Performs the identical operation sequence as
  /// propagate().
  void propagateFull(std::vector<double> &V, std::vector<double> &Base,
                     const uint8_t *InPre, const uint8_t *ExtraGroup) const;
  /// Base[Dst] recomputed from Dst's seeds under the same membership rule.
  double recomputeBase(uint32_t Dst, const uint8_t *InPre,
                       const uint8_t *ExtraGroup) const;
  /// Σ v(c) * Cost(c) over the cost graph, reading V per statement.
  double sumCost(const double *V) const;
  /// Resumes the committed cost sum from ReachList position \p FromPos,
  /// reusing the stored partial below it and rewriting CostPrefix for
  /// the tail — the identical operation sequence a cold sumCost()
  /// performs from that point, hence bit-identical totals.
  double refillCostPrefix(Scratch &S, uint32_t FromPos) const;
  /// Shared tail of the commit entry points: after InPre has been
  /// flipped (and trailed), re-propagates the plan's cone in place with
  /// trails, lowers the prefix watermark, and — unless deferred —
  /// refreshes S.Cost.
  void applyCommittedDelta(Scratch &S, const TogglePlan &Plan,
                           bool Refresh) const;
  void buildDerivedStructures(bool ReferenceConstruction);

  const LoopDepGraph *G;
  std::vector<CrossSeed> Seeds;
  std::vector<PropEdge> Prop;               ///< Intra flow+control edges.
  std::vector<std::vector<uint32_t>> InOf;  ///< Prop-edge indices per Dst.
  std::vector<uint8_t> Reach;
  std::vector<uint32_t> Order; ///< Quasi-topological processing order.
  bool Cyclic = false;

  // Derived structures for the scratch path (built once per model).
  std::vector<double> SeedContribution; ///< Prob * violationProbability.
  std::vector<uint32_t> SeedsOfDst, SeedsOfDstOff; ///< CSR, seed order.
  std::vector<uint32_t> SeedsOfVc, SeedsOfVcOff;   ///< CSR, seed order.
  std::vector<uint32_t> PropOut, PropOutOff;       ///< CSR, edge order.
  std::vector<uint32_t> ReachList; ///< Reachable stmts, ascending.
  std::vector<uint32_t> OrderPos;  ///< Position in Order (~0u if absent).
  std::vector<uint32_t> ReachPos;  ///< Position in ReachList (~0u).
  std::vector<InEdge> InEdges;     ///< Flat CSR mirror of InOf.
  std::vector<uint32_t> InEdgeOff; ///< Per-Dst offsets into InEdges.
  /// Weight and IterFreq of each ReachList statement, flat in ReachList
  /// order, so the hot prefix re-sum streams instead of gathering from
  /// the statement table. The sum still folds (V * W) * F left to right.
  std::vector<double> ReachW, ReachF;
  std::vector<uint32_t> AllSeedDsts; ///< Deduped seed targets, sorted.
};

} // namespace spt

#endif // SPT_COST_COSTMODEL_H
