//===- cost/CostModel.h - Misspeculation cost model -------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The misspeculation cost model of the paper's Section 4 — the central
/// service component of the cost-driven framework. Given a loop's annotated
/// dependence graph and an SPT loop partition (the set of statements placed
/// in the pre-fork region), it computes the expected amount of computation
/// within a speculatively executed iteration that must be re-executed.
///
/// Construction (4.2.2): the cost graph starts from one pseudo node per
/// violation candidate, whose out-edges are the candidate's cross-iteration
/// true-dependence edges; every operation reachable from those targets via
/// intra-iteration dependence edges joins the graph. Each edge carries the
/// conditional probability that re-execution of its source misspeculates
/// its destination.
///
/// Evaluation (4.2.3): pseudo nodes get re-execution probability 0 when
/// their candidate sits in the pre-fork region, else the candidate's
/// violation probability. Probabilities then propagate in topological order
/// with x = 1 - (1 - x) * (1 - r * v(p)) under the independence
/// approximation the paper states. Cycles (possible through inner loops)
/// are resolved by sweeping to a fixpoint, which the monotone update
/// reaches quickly.
///
/// Cost (4.2.4): sum over operation nodes of v(c) * Cost(c), where Cost(c)
/// is the operation's weight times its per-iteration execution frequency;
/// pseudo nodes are excluded, exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_COST_COSTMODEL_H
#define SPT_COST_COSTMODEL_H

#include "analysis/DepGraph.h"

#include <cstdint>
#include <vector>

namespace spt {

/// A partition: InPreFork[stmt index] != 0 when the statement is placed in
/// the pre-fork region.
using PartitionSet = std::vector<uint8_t>;

/// The reusable (per-loop) cost-graph; evaluate per candidate partition.
class MisspecCostModel {
public:
  explicit MisspecCostModel(const LoopDepGraph &G);

  const LoopDepGraph &depGraph() const { return *G; }

  /// Misspeculation cost of \p InPreFork (size must equal G->size()).
  double cost(const PartitionSet &InPreFork) const;

  /// Per-statement re-execution probabilities for \p InPreFork. Entries
  /// for statements outside the cost graph are 0.
  std::vector<double> reexecProbabilities(const PartitionSet &InPreFork) const;

  /// Violation probability of a violation candidate (how often the main
  /// thread modifies its result per iteration, paper step 1).
  double violationProbability(uint32_t StmtIdx) const;

  /// Statements that belong to the cost graph (reachable from some
  /// violation candidate's cross edges).
  const std::vector<uint8_t> &reachable() const { return Reach; }

  /// Cost of the trivial partition (empty pre-fork region).
  double emptyPartitionCost() const;

  /// True when the evaluation needed fixpoint sweeps (cyclic cost graph).
  bool hasCycles() const { return Cyclic; }

private:
  struct CrossSeed {
    uint32_t Vc;   ///< Violation-candidate statement index.
    uint32_t Dst;  ///< Target statement index.
    double Prob;   ///< Cross-dependence probability.
  };
  struct PropEdge {
    uint32_t Src;
    uint32_t Dst;
    double Prob;
  };

  void propagate(std::vector<double> &V, const PartitionSet &InPreFork) const;

  const LoopDepGraph *G;
  std::vector<CrossSeed> Seeds;
  std::vector<PropEdge> Prop;               ///< Intra flow+control edges.
  std::vector<std::vector<uint32_t>> InOf;  ///< Prop-edge indices per Dst.
  std::vector<uint8_t> Reach;
  std::vector<uint32_t> Order; ///< Quasi-topological processing order.
  bool Cyclic = false;
};

} // namespace spt

#endif // SPT_COST_COSTMODEL_H
