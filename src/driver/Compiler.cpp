//===- driver/Compiler.cpp - The public compilation facade ---------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

using namespace spt;

Compiler::Compiler(const SptCompilerOptions &Opts) : Opts(Opts) {}
Compiler::~Compiler() = default;

ObsContext *Compiler::obsIfEnabled() {
  if (!Opts.Observability.Enabled)
    return nullptr;
  if (Opts.Observability.Context)
    return Opts.Observability.Context;
  if (!OwnedObs)
    OwnedObs = std::make_unique<ObsContext>();
  return OwnedObs.get();
}

CompilationReport Compiler::compile(Module &M) {
  SptCompilerOptions Run = Opts;
  Run.Observability.Context = obsIfEnabled();
  return compileSpt(M, Run);
}

StatsSnapshot Compiler::stats() const {
  ObsContext *Obs = Opts.Observability.Context
                        ? Opts.Observability.Context
                        : OwnedObs.get();
  return Obs ? Obs->snapshot() : StatsSnapshot();
}

std::string Compiler::trace() const {
  ObsContext *Obs = Opts.Observability.Context
                        ? Opts.Observability.Context
                        : OwnedObs.get();
  return Obs ? exportChromeTrace(Obs->Trace)
             : std::string("{\"traceEvents\": []}\n");
}
