//===- driver/Compiler.h - The public compilation facade -----------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `spt::Compiler` is the supported entry point for embedders (benches,
/// tools, tests): options in, CompilationReport out, with an owned
/// observability context that persists across compilations so a batch run
/// (e.g. the ten workloads) accumulates one trace and one stats dump.
///
/// The free function compileSpt() remains available for one-shot use; the
/// facade adds exactly two things on top of it: options storage and
/// observability-context lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_DRIVER_COMPILER_H
#define SPT_DRIVER_COMPILER_H

#include "driver/SptCompiler.h"

#include <memory>
#include <string>

namespace spt {

/// Facade over the two-pass pipeline. Not thread-safe: one Compiler per
/// thread (compilations themselves may be internally parallel via
/// SptCompilerOptions::Jobs).
class Compiler {
public:
  Compiler() : Compiler(SptCompilerOptions()) {}
  explicit Compiler(const SptCompilerOptions &Opts);
  ~Compiler();

  /// Runs the full two-pass compilation on \p M (mutating it). When
  /// observability is enabled and the options name no external context,
  /// recording goes to this facade's own context, which outlives the call
  /// — compile several modules and trace()/stats() cover all of them.
  CompilationReport compile(Module &M);

  const SptCompilerOptions &options() const { return Opts; }
  SptCompilerOptions &options() { return Opts; }

  /// The facade's observability context (created lazily on first use).
  /// Null only when observability is disabled and never forced via obs().
  ObsContext *obsIfEnabled();

  /// Snapshot of everything recorded so far (empty when disabled).
  StatsSnapshot stats() const;
  /// Chrome trace_event JSON of every span recorded so far ("{}"-empty
  /// trace when disabled). Load in chrome://tracing or Perfetto.
  std::string trace() const;

private:
  SptCompilerOptions Opts;
  std::unique_ptr<ObsContext> OwnedObs;
};

} // namespace spt

#endif // SPT_DRIVER_COMPILER_H
