//===- driver/SptCompiler.cpp - Two-pass cost-driven SPT compilation ---------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/SptCompiler.h"

#include "analysis/CallEffects.h"
#include "analysis/Cfg.h"
#include "analysis/DepGraph.h"
#include "analysis/Freq.h"
#include "analysis/LoopInfo.h"
#include "analysis/oracle/DepOracle.h"
#include "cost/CostModel.h"
#include "ir/Verifier.h"
#include "profile/DepProfiler.h"
#include "profile/Profiler.h"
#include "support/Debug.h"
#include "transform/Cleanup.h"
#include "transform/SptTransform.h"
#include "transform/Unroll.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>

using namespace spt;

const char *spt::compilationModeName(CompilationMode Mode) {
  switch (Mode) {
  case CompilationMode::Basic:
    return "basic";
  case CompilationMode::Best:
    return "best";
  case CompilationMode::Anticipated:
    return "anticipated";
  }
  spt_unreachable("unknown compilation mode");
}

const char *spt::rejectReasonName(RejectReason Reason) {
  switch (Reason) {
  case RejectReason::Selected:
    return "valid partition";
  case RejectReason::NeverExecuted:
    return "never executed";
  case RejectReason::TooManyVcs:
    return "too many violation candidates";
  case RejectReason::BodyTooLarge:
    return "body too large";
  case RejectReason::BodyTooSmall:
    return "body too small";
  case RejectReason::LowTripCount:
    return "low iteration count";
  case RejectReason::HighCost:
    return "high misspeculation cost";
  case RejectReason::NoGain:
    return "no estimated gain";
  case RejectReason::Nested:
    return "nested in a selected loop";
  case RejectReason::TransformFailed:
    return "transformation not realizable";
  case RejectReason::StageError:
    return "internal stage error";
  }
  spt_unreachable("unknown reject reason");
}

namespace {

/// Fresh structural + frequency analyses of one function, using measured
/// edge counts when available.
struct FuncAnalysis {
  CfgInfo Cfg;
  LoopNest Nest;
  CfgProbabilities Probs;
  FreqInfo Freq;
  const FunctionEdgeCounts *Counts = nullptr;

  FuncAnalysis(const Function &F, const EdgeProfileData *Prof,
               const DepOracle &Oracle)
      : Cfg(CfgInfo::compute(F)), Nest(LoopNest::compute(F, Cfg)) {
    if (Prof)
      Counts = Prof->countsFor(&F);
    // Branch probabilities come from the oracle; its profiled member
    // validates Counts (shape match, at least one executed block) and
    // the static member answers otherwise. Counts stays raw either way —
    // downstream guards (SVP sampling, trip-count reporting) apply their
    // own shape checks.
    BranchProbQuery Q;
    Q.F = &F;
    Q.Cfg = &Cfg;
    Q.Nest = &Nest;
    Q.Counts = Counts;
    if (std::optional<BranchProbEstimate> E = Oracle.branchProbabilities(Q)) {
      Probs = std::move(E->Probs);
      Freq = E->Measured ? FreqInfo::fromBlockCounts(F, *Counts)
                         : FreqInfo::compute(F, Cfg, Nest, Probs);
    } else {
      // No member answered (e.g. the pure-fallback oracle): keep the
      // static heuristic so frequencies stay well-defined.
      Probs = CfgProbabilities::staticHeuristic(F, Cfg, Nest);
      Freq = FreqInfo::compute(F, Cfg, Nest, Probs);
    }
  }

  const Loop *loopByHeader(BlockId Header) const {
    for (uint32_t I = 0; I != Nest.numLoops(); ++I)
      if (Nest.loop(I)->Header == Header)
        return Nest.loop(I);
    return nullptr;
  }
};

/// Expected dynamic weight of one invocation of every function,
/// transitively through calls (fixpoint over the call graph; recursion is
/// bounded by clamping). This is what a Call statement really costs when
/// sizing a loop body for the hardware's speculative-buffer limit — a flat
/// per-call weight would make a loop that calls the whole program look
/// tiny.
std::map<const Function *, double>
computeFunctionWeights(const Module &M, const DepOracle &Oracle) {
  std::map<const Function *, double> Weights;
  constexpr double Clamp = 1e7;
  for (int Round = 0; Round != 6; ++Round) {
    for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
      const Function *F = M.function(static_cast<uint32_t>(FI));
      if (F->isExternal() || F->numBlocks() == 0) {
        Weights[F] = opClassWeight(OpClass::Call);
        continue;
      }
      CfgInfo Cfg = CfgInfo::compute(*F);
      LoopNest Nest = LoopNest::compute(*F, Cfg);
      BranchProbQuery Q;
      Q.F = F;
      Q.Cfg = &Cfg;
      Q.Nest = &Nest;
      std::optional<BranchProbEstimate> E = Oracle.branchProbabilities(Q);
      CfgProbabilities Probs =
          E ? std::move(E->Probs)
            : CfgProbabilities::staticHeuristic(*F, Cfg, Nest);
      FreqInfo Freq = FreqInfo::compute(*F, Cfg, Nest, Probs);
      double W = 0.0;
      for (const auto &BB : *F) {
        const double BF = Freq.blockFreq(BB->id());
        for (const Instr &I : BB->Instrs) {
          if (I.Op == Opcode::Call) {
            auto It = Weights.find(M.function(I.calleeIndex()));
            W += BF * (It != Weights.end()
                           ? It->second
                           : opClassWeight(OpClass::Call));
          } else {
            W += BF * opClassWeight(opcodeClass(I.Op));
          }
        }
      }
      Weights[F] = std::min(W, Clamp);
    }
  }
  return Weights;
}

/// Weight of one statement for critical-path purposes; calls count half
/// their callee's expected invocation weight (callees pipeline
/// internally).
double weightOfStmtImpl(const Module &M, const LoopStmt &S,
                        const std::map<const Function *, double> &FW) {
  if (S.I->Op == Opcode::Call) {
    auto It = FW.find(M.function(S.I->calleeIndex()));
    if (It != FW.end())
      return It->second * 0.5;
  }
  return S.Weight;
}

/// Dynamic weight of one loop iteration; Call statements cost their
/// callee's expected invocation weight when \p FuncWeights is provided.
double loopDynamicWeight(const Module &M, const Function &F, const Loop &L,
                         const FreqInfo &Freq,
                         const std::map<const Function *, double>
                             *FuncWeights = nullptr) {
  double W = 0.0;
  for (BlockId B : L.Blocks) {
    const double IterFreq = Freq.freqPerIteration(L, B);
    for (const Instr &I : F.block(B)->Instrs) {
      double OpW = opClassWeight(opcodeClass(I.Op));
      if (I.Op == Opcode::Call && FuncWeights) {
        auto It = FuncWeights->find(M.function(I.calleeIndex()));
        if (It != FuncWeights->end())
          OpW = It->second;
      }
      W += OpW * IterFreq;
    }
  }
  return W;
}

/// One compilation run's mutable state.
class Compilation {
public:
  Compilation(Module &M, const SptCompilerOptions &Opts)
      : M(M), Opts(Opts) {
    if (Opts.Observability.Enabled) {
      if (Opts.Observability.Context)
        Obs = Opts.Observability.Context;
      else {
        OwnedObs = std::make_unique<ObsContext>();
        Obs = OwnedObs.get();
      }
    }
    buildOracle();
  }

  CompilationReport run();

private:
  bool wantDepProfiles() const {
    return Opts.Mode != CompilationMode::Basic && Opts.Enabling.EnableDepProfiles &&
           !DegradedToBasic;
  }
  bool wantSvp() const {
    return Opts.Mode != CompilationMode::Basic && Opts.Enabling.EnableSvp &&
           !DegradedToBasic;
  }
  bool unrollWhileLoops() const {
    return Opts.Mode == CompilationMode::Anticipated;
  }

  /// Fall back to Basic-mode semantics (type-based aliasing, no dependence
  /// profiles, no SVP) with a diagnostic. Idempotent; used when profile
  /// data is missing, incomplete or fails validation.
  void degradeToBasic(const std::string &Why) {
    Report.Degraded = true;
    Report.EffectiveMode = CompilationMode::Basic;
    Report.Diags.warn(DiagStage::Profile,
                      Why + "; degrading to Basic-mode semantics "
                            "(type-based aliasing, dependence profiles and "
                            "SVP disabled)");
    DegradedToBasic = true;
  }

  void validateExternalProfile();

  /// Builds the dependence-oracle ensemble the whole compilation queries.
  /// Unknown registry names and artifacts measured on a different module
  /// degrade gracefully: diagnostic + the default configuration.
  void buildOracle() {
    DepOracleConfig Config;
    Config.ConfidenceFloor = Opts.Analysis.ConfidenceFloor;
    if (Opts.Analysis.Profile) {
      if (Opts.Analysis.Profile->ModuleHash != moduleReprintHash(M)) {
        const std::string From = Opts.Analysis.ProfilePath.empty()
                                     ? std::string("artifact")
                                     : "artifact '" + Opts.Analysis.ProfilePath +
                                           "'";
        Report.Diags.warn(DiagStage::Profile,
                          "measured dependence " + From +
                              " was built from a different module; ignoring "
                              "its measurements");
      } else {
        Config.Measured = makeMeasuredDepOracle(Opts.Analysis.Profile);
      }
    }
    Oracle = DepOracleRegistry::instance().create(
        Opts.Analysis.DependenceOracle, Config);
    if (!Oracle) {
      Report.Diags.warn(DiagStage::Driver,
                        "unknown dependence oracle '" +
                            Opts.Analysis.DependenceOracle +
                            "'; using the default ensemble");
      Oracle = DepOracleRegistry::instance().create("ensemble", Config);
    }
    // Twin ensemble without the measured member, routed to loops whose
    // bodies unrolling reshapes after the artifact was measured: their
    // pre-unroll per-iteration frequencies no longer describe the
    // compiled shape, so the in-run profile (collected post-unroll) or
    // static analysis must answer instead. Mirrors the FuncAnalysis
    // size guard that screens stale external edge counts.
    if (Config.Measured) {
      DepOracleConfig Bare = Config;
      Bare.Measured = nullptr;
      OracleNoMeasured = DepOracleRegistry::instance().create(
          Opts.Analysis.DependenceOracle, Bare);
      if (!OracleNoMeasured)
        OracleNoMeasured = DepOracleRegistry::instance().create("ensemble", Bare);
    } else {
      OracleNoMeasured = Oracle;
    }
  }

  DepGraphOptions depGraphOptions(const Function &F, const Loop &L) const {
    DepGraphOptions DG;
    DG.Oracle = Unrolled.count({F.name(), L.Header}) ? OracleNoMeasured.get()
                                                     : Oracle.get();
    if (wantDepProfiles() && Profile)
      DG.DepProfile = Profile->Deps.profileFor(&F, L.Id);
    DG.ModelCallEffectsInCost = Opts.Enabling.ModelCallEffectsInCost;
    DG.AllowImpureCallMotion =
        Opts.Mode == CompilationMode::Anticipated && !DegradedToBasic;
    DG.CoarseAliasClasses =
        Opts.Mode == CompilationMode::Basic || DegradedToBasic;
    DG.CallWeights = &FuncWeights;
    return DG;
  }

  PartitionOptions partitionOptions() const {
    PartitionOptions P;
    P.PreForkSizeFraction = Opts.Selection.PreForkSizeFraction;
    P.MaxViolationCandidates = Opts.Selection.MaxViolationCandidates;
    P.MaxSearchSeconds = Opts.MaxPartitionSeconds;
    P.ReferenceEvaluation = Opts.ReferencePartitionEvaluation;
    P.Cancel = Opts.Cancel;
    P.Obs = Obs;
    return P;
  }

  std::vector<Function *> definedFunctions() {
    std::vector<Function *> Out;
    for (size_t I = 0; I != M.numFunctions(); ++I) {
      Function *F = M.function(static_cast<uint32_t>(I));
      if (!F->isExternal() && F->numBlocks() > 0)
        Out.push_back(F);
    }
    return Out;
  }

  void stageUnroll();
  void stageProfile();
  void stageSvp();
  void passOne();
  /// Pass-1 analysis of one loop candidate. Const because candidates may
  /// evaluate concurrently: shared state is read-only here, and all
  /// outputs land in the caller-owned \p Rec / \p Diags / \p Blocks.
  void evaluateLoopCandidate(const Function &F, const FuncAnalysis &A,
                             const Loop &L, const CallEffects &Effects,
                             LoopRecord &Rec, DiagnosticLog &Diags,
                             std::set<BlockId> &Blocks) const;
  void passTwo();

  Module &M;
  const SptCompilerOptions &Opts;
  /// Null when observability is disabled; counters and spans all check.
  ObsContext *Obs = nullptr;
  std::unique_ptr<ObsContext> OwnedObs;
  CompilationReport Report;
  /// The probability source every stage queries (never null after the
  /// constructor). Shared so the registry can hand out one ensemble to
  /// many concurrent compilations.
  std::shared_ptr<const DepOracle> Oracle;
  /// Oracle minus the measured artifact member; consulted for loops
  /// unrolling reshaped (see buildOracle). Aliases Oracle when no
  /// artifact is installed.
  std::shared_ptr<const DepOracle> OracleNoMeasured;
  std::unique_ptr<ProfileBundle> Profile;
  /// Set once profile data proved unusable; flips the mode-dependent
  /// switches above to Basic semantics for the rest of the run.
  bool DegradedToBasic = false;
  /// (function name, header) -> unroll factor applied in stage A, plus
  /// whether the loop was counted before unrolling (unrolling duplicates
  /// the induction update, so the unrolled form no longer looks counted).
  struct UnrollInfo {
    uint32_t Factor = 1;
    bool WasCounted = false;
  };
  std::map<std::pair<std::string, BlockId>, UnrollInfo> Unrolled;
  /// Expected per-invocation weight of every function (recomputed after
  /// unrolling changes loop shapes).
  std::map<const Function *, double> FuncWeights;
  std::map<std::pair<std::string, BlockId>, bool> SvpByLoop;
  /// Pass-1 loop block sets for overlap detection in pass 2.
  std::map<std::pair<std::string, BlockId>, std::set<BlockId>> LoopBlocks;
};

void Compilation::stageUnroll() {
  for (Function *F : definedFunctions()) {
    // Gather candidate headers innermost-first from a snapshot.
    std::vector<BlockId> Headers;
    {
      FuncAnalysis A(*F, nullptr, *Oracle);
      for (const Loop *L : A.Nest.innermostFirst())
        Headers.push_back(L->Header);
    }
    for (BlockId Header : Headers) {
      try {
        FuncAnalysis A(*F, nullptr, *Oracle);
        const Loop *L = A.loopByHeader(Header);
        if (!L)
          continue;
        const double W = loopDynamicWeight(M, *F, *L, A.Freq, &FuncWeights);
        if (W >= Opts.Selection.MinBodyWeight || W <= 0.0)
          continue;
        const bool Counted = isCountedLoop(*F, *L);
        if (!Counted && !unrollWhileLoops())
          continue; // ORC's LNO only unrolls DO loops (Section 7.1).
        const double Needed = Opts.Selection.MinBodyWeight / W;
        const uint32_t Factor = static_cast<uint32_t>(std::min<double>(
            Opts.Selection.MaxUnrollFactor, std::max(2.0, std::ceil(Needed))));
        UnrollResult R = unrollLoop(*F, *L, Factor);
        if (R.Ok)
          Unrolled[{F->name(), Header}] = UnrollInfo{Factor, Counted};
      } catch (const std::exception &E) {
        Report.Diags.warn(DiagStage::Unroll,
                          std::string("unroll candidate skipped: ") +
                              E.what(),
                          F->name(), Header);
      }
    }
  }
}

/// Validates Opts.ExternalProfile against the (pre-unroll) module. Any
/// incompleteness or structural mismatch — stale function pointers,
/// truncated per-function count vectors, no edge data at all — is treated
/// as corruption and degrades the whole run to Basic semantics; the
/// type-based pipeline then never consults the untrusted dependence or
/// value profiles, and FuncAnalysis's per-function size guard screens the
/// edge counts that do remain.
void Compilation::validateExternalProfile() {
  const ProfileBundle &B = *Opts.ExternalProfile;
  if (!B.Completed) {
    degradeToBasic("external profile marked incomplete (" +
                   (B.Error.empty() ? std::string("no detail") : B.Error) +
                   ")");
    return;
  }
  if (B.Edges.PerFunc.empty()) {
    degradeToBasic("external profile contains no edge counts");
    return;
  }
  std::set<const Function *> Known;
  for (size_t I = 0; I != M.numFunctions(); ++I)
    Known.insert(M.function(static_cast<uint32_t>(I)));
  for (const auto &[F, Counts] : B.Edges.PerFunc) {
    if (!Known.count(F)) {
      degradeToBasic(
          "external profile references a function outside this module");
      return;
    }
    if (Counts.Block.size() != F->numBlocks() ||
        Counts.Edge.size() != F->numBlocks()) {
      degradeToBasic("external profile edge counts for '" + F->name() +
                     "' do not match the function (truncated or stale)");
      return;
    }
  }
  for (const auto &[Key, Dep] : B.Deps.PerLoop) {
    (void)Dep;
    if (!Known.count(Key.first)) {
      degradeToBasic("external dependence profile references a function "
                     "outside this module");
      return;
    }
  }
  for (const auto &[Key, Stats] : B.Values.PerStmt) {
    (void)Stats;
    if (!Known.count(Key.first)) {
      degradeToBasic("external value profile references a function "
                     "outside this module");
      return;
    }
  }
}

void Compilation::stageProfile() {
  if (Opts.ExternalProfile) {
    // Validation already ran (pre-unroll). Keep the edge counts — the
    // per-function size guard in FuncAnalysis falls back to static
    // heuristics for any function unrolling reshaped — but drop profiles
    // a degraded run must not trust.
    Profile = std::make_unique<ProfileBundle>(*Opts.ExternalProfile);
    if (DegradedToBasic) {
      Profile->Deps.PerLoop.clear();
      Profile->Values.PerStmt.clear();
    }
    return;
  }

  ProfilerOptions POpts;
  POpts.CollectEdges = true;
  POpts.CollectDeps = wantDepProfiles();
  POpts.CollectValues = wantSvp();
  POpts.AttributeCalleeAccesses = Opts.Enabling.AttributeCalleeAccesses;
  POpts.MaxSteps = Opts.ProfileMaxSteps;
  POpts.RngSeed = Opts.RngSeed;
  POpts.Cancel = Opts.Cancel;

  if (wantSvp()) {
    // Watch every register-defining violation candidate (found with the
    // static dependence graph) for value patterns.
    CallEffects Effects = CallEffects::compute(M);
    for (Function *F : definedFunctions()) {
      try {
        FuncAnalysis A(*F, nullptr, *Oracle);
        for (uint32_t LI = 0; LI != A.Nest.numLoops(); ++LI) {
          const Loop *L = A.Nest.loop(LI);
          LoopDepGraph G = LoopDepGraph::build(M, *F, A.Cfg, A.Nest, *L,
                                               A.Freq, Effects,
                                               depGraphOptions(*F, *L));
          for (uint32_t Vc : G.violationCandidates()) {
            const LoopStmt &S = G.stmt(Vc);
            if (S.I->Dst != NoReg && S.I->Ty == Type::Int)
              POpts.ValueWatch.insert({F, S.Id});
          }
        }
      } catch (const std::exception &E) {
        Report.Diags.warn(DiagStage::Profile,
                          std::string("value-watch collection failed: ") +
                              E.what(),
                          F->name());
      }
    }
  }

  Profile = std::make_unique<ProfileBundle>(
      profileRun(M, Opts.ProfileEntry, Opts.ProfileArgs, POpts));
  if (!Profile->Completed) {
    degradeToBasic("profiling run failed (" + Profile->Error + ")");
    // The partial edge counts are still honest measurements; dependence
    // and value profiles cut off mid-run are not safe to optimize on.
    Profile->Deps.PerLoop.clear();
    Profile->Values.PerStmt.clear();
  }
}

void Compilation::stageSvp() {
  if (!wantSvp())
    return;
  CallEffects Effects = CallEffects::compute(M);
  bool AnyApplied = false;

  for (Function *F : definedFunctions()) {
    // Bounded rewrite loop: each application changes the CFG, so
    // re-analyze between applications.
    for (unsigned Round = 0; Round != 8; ++Round) {
      bool Applied = false;
      try {
      FuncAnalysis A(*F, &Profile->Edges, *Oracle);
      for (uint32_t LI = 0; LI != A.Nest.numLoops() && !Applied; ++LI) {
        const Loop *L = A.Nest.loop(LI);
        if (SvpByLoop.count({F->name(), L->Header}))
          continue; // One prediction per loop keeps this tractable.
        // SVP targets loops that would otherwise be *rejected for cost*:
        // hot, reasonably sized, trip count fine, but with a critical
        // dependence (paper Section 7.2). Applying it elsewhere only adds
        // prediction overhead to code that never speculates.
        if (!A.Counts || L->Header >= A.Counts->Block.size() ||
            A.Counts->Block[L->Header] < 16)
          continue;
        const double BodyW =
            loopDynamicWeight(M, *F, *L, A.Freq, &FuncWeights);
        if (BodyW < Opts.Selection.MinBodyWeight || BodyW > Opts.Selection.MaxBodyWeight)
          continue;
        if (A.Freq.avgTripCount(*L) < Opts.Selection.MinTripCount)
          continue;
        LoopDepGraph G = LoopDepGraph::build(M, *F, A.Cfg, A.Nest, *L,
                                             A.Freq, Effects,
                                             depGraphOptions(*F, *L));
        MisspecCostModel Model(G, Opts.ReferencePartitionEvaluation);
        PartitionSearch Search(G, Model, partitionOptions());
        PartitionResult Current = Search.run();
        if (!Current.Searched ||
            Current.Cost <= Opts.Selection.CostFraction * BodyW)
          continue; // Plain reordering already handles this loop.
        SvpOptions SOpts = Opts.Enabling.Svp;
        SOpts.PreForkSizeFraction = Opts.Selection.PreForkSizeFraction;
        auto Cands = findSvpCandidates(G, Search, Profile->Values, SOpts);
        if (Cands.empty())
          continue;
        SvpResult R = applySvp(*F, *L, Cands.front());
        if (R.Ok) {
          SvpByLoop[{F->name(), L->Header}] = true;
          Applied = true;
          AnyApplied = true;
        }
      }
      } catch (const std::exception &E) {
        Report.Diags.error(DiagStage::Svp,
                           std::string("SVP analysis failed: ") + E.what(),
                           F->name());
        break; // Give up on this function; others still get SVP.
      }
      if (!Applied)
        break;
    }
  }

  if (AnyApplied) {
    if (std::string Err = verifyModule(M); !Err.empty())
      spt_fatal("SVP broke the module");
    // Re-profile: the recovery branches' frequencies (the misprediction
    // rates) and the shifted dependence structure must be measured.
    ProfilerOptions POpts;
    POpts.CollectEdges = true;
    POpts.CollectDeps = wantDepProfiles();
    POpts.CollectValues = false;
    POpts.AttributeCalleeAccesses = Opts.Enabling.AttributeCalleeAccesses;
    POpts.MaxSteps = Opts.ProfileMaxSteps;
    POpts.RngSeed = Opts.RngSeed;
    POpts.Cancel = Opts.Cancel;
    ValueProfileData SavedValues = std::move(Profile->Values);
    Profile = std::make_unique<ProfileBundle>(
        profileRun(M, Opts.ProfileEntry, Opts.ProfileArgs, POpts));
    Profile->Values = std::move(SavedValues);
    if (!Profile->Completed) {
      // SVP already rewrote the module (semantics-preserving), so keep
      // going, but the truncated re-profile can't back further profile-
      // guided decisions.
      degradeToBasic("re-profiling after SVP failed (" + Profile->Error +
                     ")");
      Profile->Deps.PerLoop.clear();
      Profile->Values.PerStmt.clear();
    }
  }
}

void Compilation::evaluateLoopCandidate(const Function &F,
                                        const FuncAnalysis &A, const Loop &L,
                                        const CallEffects &Effects,
                                        LoopRecord &Rec, DiagnosticLog &Diags,
                                        std::set<BlockId> &Blocks) const {
  Rec.FuncName = F.name();
  Rec.Header = L.Header;
  Rec.Depth = L.Depth;
  // Cancellation point: once the request token fires, remaining
  // candidates record a cheap skip instead of running dependence/cost
  // analysis. The whole report is then marked Cancelled, so these
  // placeholder records are never compared or cached.
  if (isCancelled(Opts.Cancel)) {
    Rec.Reason = RejectReason::StageError;
    Rec.FailureDetail = "skipped: compilation cancelled";
    Diags.warn(DiagStage::Partition, Rec.FailureDetail, F.name(), L.Header);
    return;
  }
  Rec.Counted = isCountedLoop(F, L);
  auto UnrollIt = Unrolled.find({F.name(), L.Header});
  if (UnrollIt != Unrolled.end()) {
    Rec.UnrollFactor = UnrollIt->second.Factor;
    Rec.Counted = Rec.Counted || UnrollIt->second.WasCounted;
  }
  Rec.SvpApplied = SvpByLoop.count({F.name(), L.Header}) != 0;
  Rec.BodyWeight = loopDynamicWeight(M, F, L, A.Freq, &FuncWeights);
  Rec.TripCount = A.Freq.avgTripCount(L);
  if (A.Counts && L.Header < A.Counts->Block.size())
    Rec.ProfiledIterations = A.Counts->Block[L.Header];
  Rec.Work = static_cast<double>(Rec.ProfiledIterations) * Rec.BodyWeight;
  Blocks = std::set<BlockId>(L.Blocks.begin(), L.Blocks.end());

  // Selection criteria (Section 6.1), cheapest first.
  if (Rec.ProfiledIterations == 0) {
    Rec.Reason = RejectReason::NeverExecuted;
    return;
  }
  if (Rec.BodyWeight > Opts.Selection.MaxBodyWeight) {
    Rec.Reason = RejectReason::BodyTooLarge;
    return;
  }
  if (Rec.BodyWeight < Opts.Selection.MinBodyWeight) {
    Rec.Reason = RejectReason::BodyTooSmall;
    return;
  }
  if (Rec.TripCount < Opts.Selection.MinTripCount) {
    Rec.Reason = RejectReason::LowTripCount;
    return;
  }

  try {
    LoopDepGraph G = LoopDepGraph::build(M, F, A.Cfg, A.Nest, L, A.Freq,
                                         Effects, depGraphOptions(F, L));
    MisspecCostModel Model(G, Opts.ReferencePartitionEvaluation);
    PartitionSearch Search(G, Model, partitionOptions());
    Rec.Partition = Search.run();
    if (Rec.Partition.BudgetExhausted) {
      // Not a rejection by itself: the best incumbent found within the
      // budget still competes below. Record that the search was cut
      // short so the truncation is never silent.
      Rec.FailureDetail =
          "partition search budget exhausted; kept best incumbent";
      Diags.warn(DiagStage::Partition, Rec.FailureDetail, F.name(),
                 L.Header);
    }
    if (!Rec.Partition.Searched) {
      Rec.Reason = RejectReason::TooManyVcs;
      return;
    }
    if (Opts.Machine.Cores > 2)
      Rec.Kway = Search.runKway(Rec.Partition, Opts.Machine.Cores - 1);
    if (Rec.Partition.Cost > Opts.Selection.CostFraction * Rec.BodyWeight) {
      Rec.Reason = RejectReason::HighCost;
      return;
    }

    // Analytic steady-state estimate. The speculative thread executes
    // one whole iteration serially, so its leg is bounded below by the
    // iteration's dependence critical path; the sequential core instead
    // overlaps consecutive iterations up to its issue bandwidth. A pair
    // of iterations costs 2 * seqIter sequentially versus
    // pre-fork + spec-leg + overheads + expected re-execution under SPT.
    double CriticalPath = 0.0;
    {
      std::vector<double> Longest(G.size(), 0.0);
      // Statements are in RPO order; intra edges are forward except
      // through inner back edges, which a longest-path estimate may
      // safely ignore.
      for (uint32_t SI = 0; SI != G.size(); ++SI) {
        double Here =
            Longest[SI] + weightOfStmtImpl(M, G.stmt(SI), FuncWeights);
        CriticalPath = std::max(CriticalPath, Here);
        for (uint32_t EI : G.outEdges(SI)) {
          const DepEdge &DE = G.edges()[EI];
          if (!DE.Cross && isFlowDep(DE.Kind) && DE.Dst > SI)
            Longest[DE.Dst] = std::max(Longest[DE.Dst], Here);
        }
      }
    }
    const double SeqIter =
        std::max(Rec.BodyWeight * 0.55, CriticalPath * 0.8);
    const double SpecLeg = std::max(Rec.BodyWeight * 0.5, CriticalPath);
    if (Opts.Machine.Cores == 2) {
      const double ParPair = Rec.Partition.PreForkWeight + SpecLeg +
                             Opts.Machine.ForkOverheadWeight +
                             Opts.Machine.CommitOverheadWeight +
                             Opts.Machine.JoinSerializationWeight +
                             Rec.Partition.Cost;
      Rec.GainEstimate = (2.0 * SeqIter) / ParPair;
    } else {
      // Chained machine: each of the C-1 speculative threads pays its
      // fork, commit, serial prefix and expected re-execution; the group
      // of C iterations otherwise overlaps down to one speculative leg.
      // At C=1 the group degenerates to no overlap at all, so the
      // estimate falls below the gain floor and the loop is rejected —
      // speculation is off on a one-core machine.
      const double C = static_cast<double>(Opts.Machine.Cores);
      const double ParGroup =
          (C - 1.0) * (Rec.Partition.PreForkWeight +
                       Opts.Machine.ForkOverheadWeight +
                       Opts.Machine.CommitOverheadWeight +
                       Rec.Partition.Cost) +
          Opts.Machine.JoinSerializationWeight + SpecLeg;
      Rec.GainEstimate = (C * SeqIter) / ParGroup;
    }
    if (Rec.GainEstimate <= Opts.Selection.MinGainEstimate) {
      Rec.Reason = RejectReason::NoGain;
      return;
    }

    Rec.Reason = RejectReason::Selected;
  } catch (const std::exception &E) {
    Rec.Reason = RejectReason::StageError;
    Rec.FailureDetail =
        std::string("pass-1 dependence/partition analysis failed: ") +
        E.what();
    Diags.error(DiagStage::Partition, Rec.FailureDetail, F.name(), L.Header);
  }
}

void Compilation::passOne() {
  const auto PassStart = std::chrono::steady_clock::now();
  CallEffects Effects = CallEffects::compute(M);

  // Gather the independent loop candidates in deterministic order
  // (function order, then loop index), sharing one analysis per function.
  struct Candidate {
    const Function *F = nullptr;
    std::shared_ptr<FuncAnalysis> A;
    const Loop *L = nullptr;
  };
  std::vector<Candidate> Cands;
  for (Function *F : definedFunctions()) {
    auto A = std::make_shared<FuncAnalysis>(*F, &Profile->Edges, *Oracle);
    for (uint32_t LI = 0; LI != A->Nest.numLoops(); ++LI)
      Cands.push_back(Candidate{F, A, A->Nest.loop(LI)});
  }

  // Evaluate candidates — concurrently when Jobs allows it. Every shared
  // input (module, profile, weights, options) is only read; every output
  // lands in the candidate's own slot and merges below in candidate
  // order, so the report is byte-identical at any job count.
  struct CandResult {
    LoopRecord Rec;
    DiagnosticLog Diags;
    std::set<BlockId> Blocks;
  };
  std::vector<CandResult> Results(Cands.size());
  const unsigned Jobs =
      Opts.Jobs == 0 ? ThreadPool::defaultConcurrency() : Opts.Jobs;
  obsAdd(Obs, "driver.pass1.candidates", Cands.size());
  parallelForIndexed(Jobs, Cands.size(), [&](size_t I) {
    ObsSpan S(Obs, Obs ? "pass1.loop " + Cands[I].F->name() + ":" +
                             std::to_string(Cands[I].L->Header)
                       : std::string());
    evaluateLoopCandidate(*Cands[I].F, *Cands[I].A, *Cands[I].L, Effects,
                          Results[I].Rec, Results[I].Diags,
                          Results[I].Blocks);
  });

  for (CandResult &R : Results) {
    LoopBlocks[{R.Rec.FuncName, R.Rec.Header}] = std::move(R.Blocks);
    for (const Diagnostic &D : R.Diags.all())
      Report.Diags.add(D);
    Report.Loops.push_back(std::move(R.Rec));
  }
  Report.PassOneSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    PassStart)
          .count();
}

void Compilation::passTwo() {
  // Rank tentative selections by expected absolute benefit.
  std::vector<size_t> Order;
  for (size_t I = 0; I != Report.Loops.size(); ++I)
    if (Report.Loops[I].Reason == RejectReason::Selected)
      Order.push_back(I);
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    const LoopRecord &RA = Report.Loops[A];
    const LoopRecord &RB = Report.Loops[B];
    const double BA = RA.Work * (RA.GainEstimate - 1.0);
    const double BB = RB.Work * (RB.GainEstimate - 1.0);
    if (BA != BB)
      return BA > BB;
    return A < B;
  });

  // Resolve overlaps within a function: a loop nested in (or containing)
  // an already-picked loop loses.
  std::map<std::string, std::vector<BlockId>> PickedHeaders;
  std::vector<size_t> Picked;
  for (size_t I : Order) {
    LoopRecord &Rec = Report.Loops[I];
    const auto &Blocks = LoopBlocks[{Rec.FuncName, Rec.Header}];
    bool Overlaps = false;
    for (BlockId Other : PickedHeaders[Rec.FuncName]) {
      const auto &OtherBlocks = LoopBlocks[{Rec.FuncName, Other}];
      if (Blocks.count(Other) || OtherBlocks.count(Rec.Header))
        Overlaps = true;
    }
    if (Overlaps) {
      Rec.Reason = RejectReason::Nested;
      continue;
    }
    PickedHeaders[Rec.FuncName].push_back(Rec.Header);
    Picked.push_back(I);
  }
  obsAdd(Obs, "driver.pass2.tentative", Order.size());
  obsAdd(Obs, "driver.pass2.overlap_rejected", Order.size() - Picked.size());

  // Final partition + transformation, assigning SPT loop ids.
  CallEffects Effects = CallEffects::compute(M);
  int64_t NextLoopId = 1;
  for (size_t I : Picked) {
    LoopRecord &Rec = Report.Loops[I];
    // Each transform is atomic per loop, so stopping between loops
    // leaves the module verifiable; cleanup/verify below still run.
    if (isCancelled(Opts.Cancel)) {
      Rec.Reason = RejectReason::StageError;
      Rec.FailureDetail = "skipped: compilation cancelled";
      Report.Diags.warn(DiagStage::Transform, Rec.FailureDetail,
                        Rec.FuncName, Rec.Header);
      continue;
    }
    Function *F = M.findFunction(Rec.FuncName);
    try {
    FuncAnalysis A(*F, &Profile->Edges, *Oracle);
    const Loop *L = A.loopByHeader(Rec.Header);
    if (!L) {
      Rec.Reason = RejectReason::TransformFailed;
      Rec.FailureDetail = "loop disappeared before transformation";
      Report.Diags.error(DiagStage::Transform, Rec.FailureDetail,
                         Rec.FuncName, Rec.Header);
      continue;
    }
    LoopDepGraph G = LoopDepGraph::build(M, *F, A.Cfg, A.Nest, *L, A.Freq,
                                         Effects, depGraphOptions(*F, *L));
    MisspecCostModel Model(G, Opts.ReferencePartitionEvaluation);
    PartitionResult P = PartitionSearch(G, Model, partitionOptions()).run();
    if (P.BudgetExhausted) {
      Rec.FailureDetail =
          "partition search budget exhausted; kept best incumbent";
      Report.Diags.warn(DiagStage::Partition, Rec.FailureDetail,
                        Rec.FuncName, Rec.Header);
    }
    if (!P.Searched) {
      Rec.Reason = RejectReason::TransformFailed;
      Rec.FailureDetail = "final partition search found no valid partition";
      Report.Diags.error(DiagStage::Transform, Rec.FailureDetail,
                         Rec.FuncName, Rec.Header);
      continue;
    }
    SptTransformResult T = applySptTransform(M, *F, A.Cfg, *L, G,
                                             P.InPreFork, NextLoopId);
    if (!T.Ok) {
      Rec.Reason = RejectReason::TransformFailed;
      Rec.FailureDetail = T.Error;
      Report.Diags.error(DiagStage::Transform, T.Error, Rec.FuncName,
                         Rec.Header);
      continue;
    }
    Rec.Partition = std::move(P);
    Rec.Selected = true;
    Rec.SptLoopId = NextLoopId;
    Rec.NumCarriedRegs = T.NumCarriedRegs;
    Rec.NumMovedStmts = T.NumMovedStmts;
    Report.SptLoops[NextLoopId] = SptLoopDesc{F, T.PreForkEntry};
    obsAdd(Obs, "driver.pass2.transformed", 1);
    ++NextLoopId;
    } catch (const std::exception &E) {
      // applySptTransform only mutates the function once its dominance
      // and routing preconditions hold, so an exception here leaves the
      // loop untransformed; skip it and keep the module usable.
      Rec.Reason = RejectReason::StageError;
      Rec.FailureDetail =
          std::string("pass-2 transformation failed: ") + E.what();
      Report.Diags.error(DiagStage::Transform, Rec.FailureDetail,
                         Rec.FuncName, Rec.Header);
    }
  }

  for (Function *F : definedFunctions())
    cleanupFunction(*F);
  // Cleanup may thread jumps through a restore block that carried no
  // copies; follow such chains so the recorded iteration boundary matches
  // where the back edges now land.
  for (auto &[Id, Desc] : Report.SptLoops) {
    (void)Id;
    BlockId Cur = Desc.PreForkEntry;
    for (int Hops = 0; Hops != 16; ++Hops) {
      const BasicBlock *BB = Desc.F->block(Cur);
      if (BB->Instrs.size() == 1 && BB->Instrs[0].Op == Opcode::Jmp)
        Cur = BB->Succs[0];
      else
        break;
    }
    Desc.PreForkEntry = Cur;
  }
  if (std::string Err = verifyModule(M); !Err.empty())
    spt_fatal("SPT compilation broke the module");
}

CompilationReport Compilation::run() {
  {
  ObsSpan CompileSpan(Obs, "compile");
  Report.Mode = Opts.Mode;
  Report.EffectiveMode = Opts.Mode;
  Report.Cores = Opts.Machine.Cores;
  // Validate external profile data against the pristine module: stage A
  // reshapes functions, and counts collected before compilation can only
  // be checked against the shapes they were collected on.
  if (Opts.ExternalProfile)
    validateExternalProfile();
  FuncWeights = computeFunctionWeights(M, *Oracle);
  // Stage boundaries double as cancellation points. Once the token
  // fires, every remaining stage is skipped — in particular passOne and
  // passTwo require stage B's Profile, so a cancellation before or
  // during profiling must short-circuit them.
  auto Cancelled = [this] { return isCancelled(Opts.Cancel); };
  if (!Cancelled()) {
    ObsSpan S(Obs, "stageA.unroll");
    stageUnroll();
    FuncWeights = computeFunctionWeights(M, *Oracle); // Unrolling grew some bodies.
  }
  if (!Cancelled()) {
    ObsSpan S(Obs, "stageB.profile");
    stageProfile();
  }
  if (!Cancelled() && Profile) {
    ObsSpan S(Obs, "stageC.svp");
    stageSvp();
  }
  if (!Cancelled() && Profile) {
    ObsSpan S(Obs, "pass1");
    passOne();
  }
  if (!Cancelled() && Profile) {
    ObsSpan S(Obs, "pass2");
    passTwo();
  }
  Report.Cancelled = Cancelled();
  obsAdd(Obs, "driver.compilations", 1);
  obsAdd(Obs, "driver.degraded", Report.Degraded ? 1 : 0);
  obsAdd(Obs, "driver.cancelled", Report.Cancelled ? 1 : 0);
  } // Close the "compile" span so the snapshot below includes it.
  if (Obs)
    Report.Stats = Obs->snapshot();
  return Report;
}

} // namespace

CompilationReport spt::compileSpt(Module &M, const SptCompilerOptions &Opts) {
  Compilation C(M, Opts);
  return C.run();
}

namespace {

void appendDouble(std::string &Out, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

} // namespace

std::string spt::renderReportDeterministic(const CompilationReport &Report) {
  std::string Out;
  Out += "mode=";
  Out += compilationModeName(Report.Mode);
  Out += " effective=";
  Out += compilationModeName(Report.EffectiveMode);
  Out += " degraded=";
  Out += Report.Degraded ? '1' : '0';
  // Historical (paper-machine) reports never mentioned the core count;
  // emitting it only off the default keeps two-core renders byte-stable.
  if (Report.Cores != 2)
    Out += " cores=" + std::to_string(Report.Cores);
  Out += '\n';

  for (const LoopRecord &R : Report.Loops) {
    Out += "loop ";
    Out += R.FuncName;
    Out += ':';
    Out += std::to_string(R.Header);
    Out += " depth=" + std::to_string(R.Depth);
    Out += " counted=";
    Out += R.Counted ? '1' : '0';
    Out += " unroll=" + std::to_string(R.UnrollFactor);
    Out += " svp=";
    Out += R.SvpApplied ? '1' : '0';
    Out += " bodyWeight=";
    appendDouble(Out, R.BodyWeight);
    Out += " tripCount=";
    appendDouble(Out, R.TripCount);
    Out += " iters=" + std::to_string(R.ProfiledIterations);
    Out += " work=";
    appendDouble(Out, R.Work);
    Out += " gain=";
    appendDouble(Out, R.GainEstimate);
    Out += " reason=\"";
    Out += rejectReasonName(R.Reason);
    Out += "\" detail=\"" + R.FailureDetail + "\"";
    Out += " selected=";
    Out += R.Selected ? '1' : '0';
    Out += " sptId=" + std::to_string(R.SptLoopId);
    Out += " carried=" + std::to_string(R.NumCarriedRegs);
    Out += " moved=" + std::to_string(R.NumMovedStmts);
    Out += '\n';

    const PartitionResult &P = R.Partition;
    Out += "  partition searched=";
    Out += P.Searched ? '1' : '0';
    Out += " exhausted=";
    Out += P.BudgetExhausted ? '1' : '0';
    Out += " cost=";
    appendDouble(Out, P.Cost);
    Out += " preForkWeight=";
    appendDouble(Out, P.PreForkWeight);
    Out += " bodyWeight=";
    appendDouble(Out, P.BodyWeight);
    Out += " nodes=" + std::to_string(P.NodesVisited);
    Out += " sizePrunes=" + std::to_string(P.SizePrunes);
    Out += " lbPrunes=" + std::to_string(P.LowerBoundPrunes);
    Out += " costEvals=" + std::to_string(P.CostEvals);
    Out += " vcs=" + std::to_string(P.NumViolationCandidates);
    Out += " chosen=[";
    for (size_t I = 0; I != P.ChosenVcs.size(); ++I) {
      if (I)
        Out += ',';
      Out += std::to_string(P.ChosenVcs[I]);
    }
    Out += "] preFork=[";
    bool First = true;
    for (size_t I = 0; I != P.InPreFork.size(); ++I)
      if (P.InPreFork[I]) {
        if (!First)
          Out += ',';
        Out += std::to_string(I);
        First = false;
      }
    Out += "]\n";

    if (Report.Cores != 2) {
      const KwayPartitionResult &K = R.Kway;
      Out += "  kway searched=";
      Out += K.Searched ? '1' : '0';
      Out += " levels=" + std::to_string(K.Levels);
      Out += " chainCost=";
      appendDouble(Out, K.ChainCost);
      Out += " nodes=" + std::to_string(K.NodesVisited);
      Out += " costEvals=" + std::to_string(K.CostEvals);
      Out += '\n';
      for (size_t CI = 0; CI != K.Cuts.size(); ++CI) {
        const KwayCutRecord &Cut = K.Cuts[CI];
        Out += "    cut " + std::to_string(CI + 1);
        Out += " cost=";
        appendDouble(Out, Cut.Cost);
        Out += " preForkWeight=";
        appendDouble(Out, Cut.PreForkWeight);
        Out += " objective=";
        appendDouble(Out, Cut.Objective);
        Out += " chosen=[";
        for (size_t I = 0; I != Cut.ChosenVcs.size(); ++I) {
          if (I)
            Out += ',';
          Out += std::to_string(Cut.ChosenVcs[I]);
        }
        Out += "]\n";
      }
    }
  }

  Out += "sptLoops=[";
  bool First = true;
  for (const auto &[Id, Desc] : Report.SptLoops) {
    if (!First)
      Out += ' ';
    Out += std::to_string(Id) + ":" + Desc.F->name() + ":" +
           std::to_string(Desc.PreForkEntry);
    First = false;
  }
  Out += "]\n";
  Out += "diagnostics:\n";
  Out += Report.Diags.renderAll();
  return Out;
}
