//===- driver/SptCompiler.h - Two-pass cost-driven SPT compilation ----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The overall compilation framework of the paper's Figure 4: the
/// cost-model/partition core wrapped in a two-pass process with enabling
/// techniques.
///
/// Stage A  Loop preprocessing: unroll loops whose bodies are too small to
///          amortize thread overheads (counted loops in BASIC/BEST —
///          ORC's LNO could only unroll DO loops — plus while loops in
///          ANTICIPATED).
/// Stage B  Offline profiling: one instrumented run collecting edge
///          profiles (all modes), dependence profiles and value profiles
///          (BEST/ANTICIPATED).
/// Stage C  Software value prediction: rewrite critical, predictable
///          violation candidates (BEST/ANTICIPATED), then re-profile so
///          the recovery paths' rarity is measured.
/// Pass 1   For every loop at every nesting level: build the annotated
///          dependence graph, search the optimal partition, record the
///          outcome and the selection verdict (cost, pre-fork size, body
///          size, iteration count — Section 6.1).
/// Pass 2   Global selection among the candidates (non-overlapping,
///          benefit-ranked), re-partition and apply the SPT
///          transformation, assigning SPT loop ids.
///
/// The resulting CompilationReport carries everything the benchmark
/// harnesses need: per-loop verdicts (Figure 15), selected-loop partitions
/// and sizes (Figure 17), estimated misspeculation costs (Figure 19), and
/// the loop-id map that drives the SPT simulator.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_DRIVER_SPTCOMPILER_H
#define SPT_DRIVER_SPTCOMPILER_H

#include "analysis/ProfileData.h"
#include "interp/Interp.h"
#include "obs/Obs.h"
#include "partition/Partition.h"
#include "sim/SptSim.h"
#include "support/CancelToken.h"
#include "support/Status.h"
#include "svp/Svp.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spt {

struct ProfileBundle;
struct DepProfileArtifact;

/// The paper's three evaluated compilations (Section 8).
enum class CompilationMode {
  Basic,       ///< Edge profiling + type-based aliasing + reordering.
  Best,        ///< + dependence profiling + software value prediction.
  Anticipated, ///< + while-loop unrolling + global export (call motion).
};

const char *compilationModeName(CompilationMode Mode);

/// Why a loop candidate was not SPT-transformed (Figure 15 categories).
enum class RejectReason {
  Selected,       ///< Not rejected: a valid partition was chosen.
  NeverExecuted,  ///< No profile coverage to judge it by.
  TooManyVcs,     ///< Skipped by the partition searcher (Section 5.2.1).
  BodyTooLarge,   ///< Exceeds the machine's speculative-size limit.
  BodyTooSmall,   ///< Too small even after permitted unrolling.
  LowTripCount,   ///< Expected iterations below the threshold.
  HighCost,       ///< No partition below the cost threshold.
  NoGain,         ///< Analytic speedup estimate not positive.
  Nested,          ///< Overlaps a selected loop in the same function.
  TransformFailed, ///< The partition could not be realized.
  StageError       ///< A pipeline stage failed on this loop; it was
                   ///< skipped instead of aborting the compilation.
};

const char *rejectReasonName(RejectReason Reason);

/// Compiler thresholds and mode knobs, grouped by concern:
///
///   Selection      Section 6.1 selection criteria (thresholds a loop must
///                  clear to be SPT-transformed).
///   Machine        Modeled hardware overheads in the analytic gain
///                  estimate.
///   Enabling       Stage B/C enabling techniques and their ablation
///                  switches.
///   Observability  The span/counter layer (off by default).
///
/// The pre-regroup flat field names (`Opts.CostFraction`, …) are gone:
/// write `Opts.Selection.CostFraction` etc. (The deprecated reference
/// aliases and the copy machinery they forced were removed once the last
/// in-tree users migrated — see docs/observability.md, "Options
/// migration".)
struct SptCompilerOptions {
  CompilationMode Mode = CompilationMode::Best;

  /// Entry point and arguments of the profiling run.
  std::string ProfileEntry = "main";
  std::vector<Value> ProfileArgs;

  /// Section 6.1 selection criteria.
  struct SelectionOptions {
    double CostFraction = 0.08;        ///< Cost < fraction * body weight.
    double PreForkSizeFraction = 0.34; ///< Pre-fork < fraction * body.
    double MinBodyWeight = 200.0;      ///< Dynamic weight per iteration.
    double MaxBodyWeight = 1500.0;     ///< Hardware speculative-size limit.
    double MinTripCount = 2.0;
    uint32_t MaxViolationCandidates = 30;
    uint32_t MaxUnrollFactor = 16;
    /// Minimum analytically estimated speedup to select a loop.
    double MinGainEstimate = 1.15;
  } Selection;

  /// Machine overheads used in the analytic gain estimate.
  struct MachineOptions {
    double ForkOverheadWeight = 6.0;
    double CommitOverheadWeight = 5.0;
    /// Pipeline-restart cost the speculative core pays per thread (its
    /// scheduling window starts cold at each fork).
    double JoinSerializationWeight = 20.0;
    /// Total cores of the target machine (main + speculative), mirroring
    /// MachineConfig::Cores. 2 (the default) is the paper's machine and
    /// keeps the historical gain estimate and report rendering
    /// byte-identical; >2 switches the gain estimate to the chained
    /// group form and runs the k-way partition search per selected loop.
    uint32_t Cores = 2;
  } Machine;

  /// Stage B/C enabling techniques and their ablation switches.
  struct EnablingOptions {
    SvpOptions Svp;
    /// Ablation switches within BEST/ANTICIPATED: individually disable
    /// the enabling techniques the mode would otherwise use.
    bool EnableSvp = true;
    bool EnableDepProfiles = true;
    /// Figure 19 ablation: model call effects in cost estimation.
    bool ModelCallEffectsInCost = true;
    /// Attribute callee memory accesses to call sites while profiling.
    bool AttributeCalleeAccesses = true;
  } Enabling;

  /// Probability sourcing for the cost model: which dependence-oracle
  /// ensemble to build, the measured profile artifact to feed its
  /// measured member, and the combiner thresholds. See
  /// analysis/oracle/DepOracle.h and docs/profiling.md.
  struct AnalysisOptions {
    /// Registry name of the oracle to build ("ensemble", "static",
    /// "profile", "fallback", "measured", or a caller-registered name).
    /// Unknown names degrade to the default ensemble with a diagnostic.
    std::string DependenceOracle = "ensemble";
    /// Measured dependence-profile artifact for the ensemble's measured
    /// member; null compiles without one (the historical behavior).
    /// Ignored with a diagnostic when the artifact's ModuleHash does not
    /// match the module being compiled. Shared, not copied: callers keep
    /// the artifact alive via the shared_ptr.
    std::shared_ptr<const DepProfileArtifact> Profile;
    /// Provenance of Profile (file path or label) for diagnostics only.
    std::string ProfilePath;
    /// Minimum member confidence the ensemble combiner accepts before
    /// falling through to lower-priority members. 0.0 (default)
    /// reproduces the pre-oracle behavior byte for byte.
    double ConfidenceFloor = 0.0;
    /// depProfileDrift level above which serving infrastructure should
    /// consider Profile stale and recompile with a fresh one. The
    /// compiler itself does not act on it; sptserve's drift scenario and
    /// custom schedulers read it from the options.
    double DriftThreshold = 0.25;
  } Analysis;

  /// The span/counter observability layer (docs/observability.md).
  struct ObservabilityOptions {
    /// Master switch. When false (default) the pipeline pays one null
    /// pointer test per instrumentation site and records nothing.
    bool Enabled = false;
    /// Record into this caller-owned context (so one context can span
    /// several compilations, as the spt::Compiler facade does). When
    /// null and Enabled, compileSpt creates a context for the duration
    /// of the run; its snapshot still lands in CompilationReport::Stats.
    ObsContext *Context = nullptr;
  } Observability;

  uint64_t RngSeed = 0x5eed5eed5eedull;
  uint64_t ProfileMaxSteps = 500000000ull;

  /// Pre-collected profile to use instead of running stage B's
  /// instrumented run. Validated against the module before use; missing,
  /// incomplete or corrupt data degrades the compilation to Basic-mode
  /// semantics (type-based aliasing, no dependence profiles, no SVP) with
  /// a diagnostic instead of crashing.
  const ProfileBundle *ExternalProfile = nullptr;

  /// Wall-clock budget for each partition search, alongside the node
  /// budget (0 disables the deadline). Exhaustion keeps the best
  /// incumbent and surfaces PartitionResult::BudgetExhausted.
  double MaxPartitionSeconds = 0.0;

  /// Cooperative cancellation for the whole compilation (null = never
  /// cancels). The batch server arms one token per request with the
  /// request deadline; the pipeline polls it at stage boundaries, per
  /// loop candidate, inside the profiler's interpretation loop, and on
  /// the partition search's budget stride. Unlike MaxPartitionSeconds —
  /// a per-search budget that restarts for every loop — the token
  /// carries one absolute deadline, so a request deadline cannot be
  /// overshot by a full loop search. When it fires, compileSpt stops
  /// early and returns a report with Cancelled = true; such reports are
  /// partial and must not be cached or compared.
  const CancelToken *Cancel = nullptr;

  /// Pass-1 worker threads: independent loop candidates (each with its own
  /// dependence graph, cost model and partition search) evaluate
  /// concurrently, and their records, diagnostics and block sets merge in
  /// loop order afterwards — so the report is byte-identical at any
  /// setting (see renderReportDeterministic). 1 = sequential (default);
  /// 0 = hardware concurrency.
  uint32_t Jobs = 1;
  /// Use the retained pre-optimization cost/partition evaluation paths
  /// (allocating per-node cost calls, O(E*V) cost-graph construction).
  /// Results are bit-identical to the default incremental paths; this is
  /// the measured baseline of bench/perf_compile.
  bool ReferencePartitionEvaluation = false;

  // --- Builder: mode factories plus chainable with*() setters. ---
  //   auto Opts = SptCompilerOptions::best().withJobs(8).withTracing();
  static SptCompilerOptions basic() {
    SptCompilerOptions O;
    O.Mode = CompilationMode::Basic;
    return O;
  }
  static SptCompilerOptions best() {
    SptCompilerOptions O;
    O.Mode = CompilationMode::Best;
    return O;
  }
  static SptCompilerOptions anticipated() {
    SptCompilerOptions O;
    O.Mode = CompilationMode::Anticipated;
    return O;
  }
  SptCompilerOptions withMode(CompilationMode M) const {
    SptCompilerOptions O = *this;
    O.Mode = M;
    return O;
  }
  SptCompilerOptions withJobs(uint32_t J) const {
    SptCompilerOptions O = *this;
    O.Jobs = J;
    return O;
  }
  SptCompilerOptions withSeed(uint64_t Seed) const {
    SptCompilerOptions O = *this;
    O.RngSeed = Seed;
    return O;
  }
  SptCompilerOptions withProfile(const ProfileBundle *P) const {
    SptCompilerOptions O = *this;
    O.ExternalProfile = P;
    return O;
  }
  SptCompilerOptions withPartitionDeadline(double Seconds) const {
    SptCompilerOptions O = *this;
    O.MaxPartitionSeconds = Seconds;
    return O;
  }
  SptCompilerOptions withCancel(const CancelToken *Token) const {
    SptCompilerOptions O = *this;
    O.Cancel = Token;
    return O;
  }
  SptCompilerOptions withCores(uint32_t Cores) const {
    SptCompilerOptions O = *this;
    O.Machine.Cores = Cores;
    return O;
  }
  /// Enables observability; recording goes to \p Ctx when given, else to
  /// a per-compilation context.
  SptCompilerOptions withTracing(ObsContext *Ctx = nullptr) const {
    SptCompilerOptions O = *this;
    O.Observability.Enabled = true;
    O.Observability.Context = Ctx;
    return O;
  }
  /// Select the dependence-oracle ensemble by registry name, optionally
  /// raising the combiner's confidence floor.
  SptCompilerOptions withDependenceOracle(std::string Name,
                                          double ConfidenceFloor = 0.0) const {
    SptCompilerOptions O = *this;
    O.Analysis.DependenceOracle = std::move(Name);
    O.Analysis.ConfidenceFloor = ConfidenceFloor;
    return O;
  }
  /// Attach a measured dependence-profile artifact (the ensemble's
  /// measured member). Path is provenance for diagnostics.
  SptCompilerOptions
  withProfileArtifact(std::shared_ptr<const DepProfileArtifact> A,
                      std::string Path = std::string()) const {
    SptCompilerOptions O = *this;
    O.Analysis.Profile = std::move(A);
    O.Analysis.ProfilePath = std::move(Path);
    return O;
  }
};

/// One loop candidate's pass-1/pass-2 record.
struct LoopRecord {
  std::string FuncName;
  BlockId Header = NoBlock; ///< Stable identity across stages.
  uint32_t Depth = 1;
  bool Counted = false;
  uint32_t UnrollFactor = 1;
  bool SvpApplied = false;

  double BodyWeight = 0.0; ///< Dynamic weight per iteration.
  double TripCount = 0.0;
  uint64_t ProfiledIterations = 0;
  /// Total profiled work (iterations * body weight), the coverage proxy
  /// used for ranking and Figure 16.
  double Work = 0.0;

  PartitionResult Partition;
  /// K-way partition chain (Cores > 2 only; default-empty otherwise so
  /// two-core reports stay byte-identical).
  KwayPartitionResult Kway;
  double GainEstimate = 0.0; ///< Analytic speedup estimate (>= 0).
  RejectReason Reason = RejectReason::Selected;
  /// Human-readable detail for TransformFailed/StageError rejections and
  /// for budget-exhausted partition searches (stable strings tests key on).
  std::string FailureDetail;
  bool Selected = false;
  int64_t SptLoopId = -1;
  uint32_t NumCarriedRegs = 0;
  uint32_t NumMovedStmts = 0;
};

/// Everything the compilation produced.
struct CompilationReport {
  CompilationMode Mode = CompilationMode::Best;
  /// The machine's core count the compilation targeted
  /// (SptCompilerOptions::Machine.Cores). renderReportDeterministic emits
  /// it — and the per-loop k-way chain records — only when it differs
  /// from the historical 2, so two-core reports are byte-stable.
  uint32_t Cores = 2;
  /// The semantics actually compiled with: equals Mode unless profile
  /// validation failed and the run degraded to Basic.
  CompilationMode EffectiveMode = CompilationMode::Best;
  /// True when missing/corrupt profile data forced the Basic fallback.
  bool Degraded = false;
  /// True when SptCompilerOptions::Cancel fired during the run. The
  /// report is partial (whatever completed before the token tripped) and
  /// is excluded from renderReportDeterministic comparisons — callers
  /// like the batch server discard it and retry, degrade, or skip.
  bool Cancelled = false;
  /// Structured per-stage diagnostics (degradations, skipped loops,
  /// exhausted budgets); never empty when Degraded or any loop carries
  /// RejectReason::StageError.
  DiagnosticLog Diags;
  std::vector<LoopRecord> Loops;
  /// Loop-id map for runSpt().
  std::map<int64_t, SptLoopDesc> SptLoops;
  /// Wall time of pass 1 (candidate gathering + dependence/cost/partition
  /// analysis), for bench/perf_compile. Timing only — excluded from
  /// renderReportDeterministic.
  double PassOneSeconds = 0.0;
  /// Counter/histogram/span-count snapshot of the observability layer;
  /// empty unless Observability.Enabled. Deterministic for a given seed
  /// and module at any Jobs setting, but deliberately excluded from
  /// renderReportDeterministic so enabling tracing cannot perturb report
  /// comparisons. Render with renderStatsText/renderStatsJson.
  StatsSnapshot Stats;

  size_t numSelected() const {
    size_t N = 0;
    for (const LoopRecord &R : Loops)
      if (R.Selected)
        ++N;
    return N;
  }
};

/// Runs the full two-pass compilation on \p M (mutating it) and returns
/// the report. The module must verify; it verifies again afterwards.
CompilationReport compileSpt(Module &M, const SptCompilerOptions &Opts);

/// Serializes every deterministic field of \p Report — modes, degradation,
/// per-loop records (costs and weights at full %.17g precision, partitions,
/// search statistics, failure details), diagnostics, and the SPT loop-id
/// map. Wall-clock fields (PassOneSeconds) are excluded. Byte-equal output
/// across SptCompilerOptions::Jobs settings is the determinism contract the
/// parallel pass-1 tests and bench/perf_compile enforce.
std::string renderReportDeterministic(const CompilationReport &Report);

} // namespace spt

#endif // SPT_DRIVER_SPTCOMPILER_H
