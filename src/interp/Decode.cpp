//===- interp/Decode.cpp - Decode pass + threaded-dispatch engine -----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
// Three things live here:
//
//  1. The decode pass: Function -> DecodedFunction (flattening, operand
//     pre-extraction, branch-target resolution, superinstruction fusion)
//     and the fingerprint-validated module-level cache behind
//     Module::decodeCache().
//
//  2. The decoded execution engine: one dispatch loop, templated over the
//     step sink so Interpreter::run() (no records at all) and
//     Interpreter::runBatch() (records streamed to a StepSink) share every
//     opcode body. Dispatch is computed-goto under SPT_INTERP_THREADED and
//     a plain switch otherwise; the bodies are written once behind macros.
//
//  3. The byte-identity discipline. Every record a fused or plain decoded
//     op emits is constructed with exactly the fields the reference
//     engine's step() would have produced, at the exact sequential point
//     (a fused pair emits its first record before the second instruction
//     executes), and the final <=1 step of a bounded run is delegated to
//     step() itself so a budget can never split a superinstruction.
//
//===----------------------------------------------------------------------===//

#include "interp/Decode.h"

#include "interp/Interp.h"
#include "support/Debug.h"
#include "support/WrapMath.h"

#include <cmath>
#include <cstring>

using namespace spt;

namespace spt {

/// The decoded execution engine (friend of Interpreter). Also the decode
/// pass's door into Interpreter's private BuiltinKind resolution.
struct DecodeEngine {
  template <class Sink>
  static uint64_t run(Interpreter &In, Sink &S, uint64_t MaxSteps);

  static uint32_t builtinKindRaw(const Function &F) {
    return static_cast<uint32_t>(Interpreter::builtinKindOf(F));
  }
};

} // namespace spt

//===----------------------------------------------------------------------===//
// Fingerprint + array layout.
//===----------------------------------------------------------------------===//

uint64_t spt::functionFingerprint(const Function &F) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto mix = [&H](uint64_t Bits) {
    for (int Byte = 0; Byte != 8; ++Byte) {
      H ^= (Bits >> (Byte * 8)) & 0xffu;
      H *= 0x100000001b3ull;
    }
  };
  mix(F.numRegs());
  mix(F.numParams());
  mix(F.numBlocks());
  mix(F.isExternal());
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    const BasicBlock *BB = F.block(B);
    // Storage identity, not just content: decoded ops hold Instr pointers,
    // and a pass that rebuilds a block's instruction vector with identical
    // contents (e.g. a no-op cleanup) still moves the storage they point
    // into. Same address + same content == the pointers are still good.
    mix(reinterpret_cast<uintptr_t>(BB->Instrs.data()));
    mix(BB->Instrs.size());
    for (const Instr &I : BB->Instrs) {
      mix(uint64_t(static_cast<uint8_t>(I.Op)) |
          (uint64_t(static_cast<uint8_t>(I.Ty)) << 8));
      mix(I.Dst);
      mix(I.Srcs.size());
      for (Reg R : I.Srcs)
        mix(R);
      mix(static_cast<uint64_t>(I.IntImm));
      uint64_t FpBits;
      std::memcpy(&FpBits, &I.FpImm, sizeof(FpBits));
      mix(FpBits);
      mix(I.Id);
    }
    mix(BB->Succs.size());
    for (BlockId S : BB->Succs)
      mix(S);
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Decode pass.
//===----------------------------------------------------------------------===//

namespace {

/// Destination register with the NoReg -> scratch-slot mapping applied
/// (frames allocate numRegs()+1 arena slots; see Interpreter::pushFrame).
uint32_t mapDst(const Function &F, Reg Dst) {
  return Dst == NoReg ? F.numRegs() : Dst;
}

DOp plainDOpFor(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return DOp::Add;
  case Opcode::Sub:
    return DOp::Sub;
  case Opcode::Mul:
    return DOp::Mul;
  case Opcode::Div:
    return DOp::Div;
  case Opcode::Rem:
    return DOp::Rem;
  case Opcode::Neg:
    return DOp::Neg;
  case Opcode::And:
    return DOp::And;
  case Opcode::Or:
    return DOp::Or;
  case Opcode::Xor:
    return DOp::Xor;
  case Opcode::Shl:
    return DOp::Shl;
  case Opcode::Shr:
    return DOp::Shr;
  case Opcode::Not:
    return DOp::Not;
  case Opcode::Min:
    return DOp::Min;
  case Opcode::Max:
    return DOp::Max;
  case Opcode::Abs:
    return DOp::Abs;
  case Opcode::FAdd:
    return DOp::FAdd;
  case Opcode::FSub:
    return DOp::FSub;
  case Opcode::FMul:
    return DOp::FMul;
  case Opcode::FDiv:
    return DOp::FDiv;
  case Opcode::FNeg:
    return DOp::FNeg;
  case Opcode::FAbs:
    return DOp::FAbs;
  case Opcode::FMin:
    return DOp::FMin;
  case Opcode::FMax:
    return DOp::FMax;
  case Opcode::IntToFp:
    return DOp::IntToFp;
  case Opcode::FpToInt:
    return DOp::FpToInt;
  case Opcode::CmpEq:
    return DOp::CmpEq;
  case Opcode::CmpNe:
    return DOp::CmpNe;
  case Opcode::CmpLt:
    return DOp::CmpLt;
  case Opcode::CmpLe:
    return DOp::CmpLe;
  case Opcode::CmpGt:
    return DOp::CmpGt;
  case Opcode::CmpGe:
    return DOp::CmpGe;
  case Opcode::FCmpEq:
    return DOp::FCmpEq;
  case Opcode::FCmpNe:
    return DOp::FCmpNe;
  case Opcode::FCmpLt:
    return DOp::FCmpLt;
  case Opcode::FCmpLe:
    return DOp::FCmpLe;
  case Opcode::FCmpGt:
    return DOp::FCmpGt;
  case Opcode::FCmpGe:
    return DOp::FCmpGe;
  case Opcode::Copy:
    return DOp::Copy;
  case Opcode::ConstInt:
    return DOp::ConstInt;
  case Opcode::ConstFp:
    return DOp::ConstFp;
  case Opcode::Select:
    return DOp::Select;
  case Opcode::Load:
    return DOp::Load;
  case Opcode::Store:
    return DOp::Store;
  case Opcode::Call:
    return DOp::Call;
  case Opcode::Br:
    return DOp::Br;
  case Opcode::Jmp:
    return DOp::Jmp;
  case Opcode::Ret:
    return DOp::Ret;
  case Opcode::SptFork:
    return DOp::SptFork;
  case Opcode::SptKill:
    return DOp::SptKill;
  }
  spt_fatal("unknown opcode in decode");
}

void decodePlain(const Module &M, const Function &F, const BasicBlock &BB,
                 BlockId B, uint32_t Idx, const std::vector<uint64_t> &Bases,
                 DecodedFunction &DF, DecOp &O) {
  const Instr &I = BB.Instrs[Idx];
  O.Op = plainDOpFor(I.Op);
  O.I0 = &I;
  O.I1 = nullptr;
  O.Block = B;
  O.Index = Idx;
  switch (O.Op) {
  // Binary register ops: A = dst, B/C = sources.
  case DOp::Add:
  case DOp::Sub:
  case DOp::Mul:
  case DOp::Div:
  case DOp::Rem:
  case DOp::And:
  case DOp::Or:
  case DOp::Xor:
  case DOp::Shl:
  case DOp::Shr:
  case DOp::Min:
  case DOp::Max:
  case DOp::FAdd:
  case DOp::FSub:
  case DOp::FMul:
  case DOp::FDiv:
  case DOp::FMin:
  case DOp::FMax:
  case DOp::CmpEq:
  case DOp::CmpNe:
  case DOp::CmpLt:
  case DOp::CmpLe:
  case DOp::CmpGt:
  case DOp::CmpGe:
  case DOp::FCmpEq:
  case DOp::FCmpNe:
  case DOp::FCmpLt:
  case DOp::FCmpLe:
  case DOp::FCmpGt:
  case DOp::FCmpGe:
    O.A = mapDst(F, I.Dst);
    O.B = I.Srcs[0];
    O.C = I.Srcs[1];
    break;
  // Unary register ops: A = dst, B = source.
  case DOp::Neg:
  case DOp::Not:
  case DOp::Abs:
  case DOp::FNeg:
  case DOp::FAbs:
  case DOp::IntToFp:
  case DOp::FpToInt:
  case DOp::Copy:
    O.A = mapDst(F, I.Dst);
    O.B = I.Srcs[0];
    break;
  case DOp::ConstInt:
    O.A = mapDst(F, I.Dst);
    O.Imm = I.IntImm;
    break;
  case DOp::ConstFp:
    O.A = mapDst(F, I.Dst);
    O.FImm = I.FpImm;
    break;
  case DOp::Select:
    O.A = mapDst(F, I.Dst);
    O.B = I.Srcs[0];
    O.C = I.Srcs[1];
    O.T0 = I.Srcs[2];
    break;
  case DOp::Load:
    O.A = mapDst(F, I.Dst);
    O.B = I.Srcs[0];
    O.C = I.arrayId();
    O.UImm = Bases[I.arrayId()];
    break;
  case DOp::Store:
    O.A = I.arrayId();
    O.B = I.Srcs[0];
    O.C = I.Srcs[1];
    O.UImm = Bases[I.arrayId()];
    break;
  case DOp::Call: {
    const Function *Callee = M.function(I.calleeIndex());
    O.B = static_cast<uint32_t>(DF.SrcPool.size());
    O.T0 = static_cast<uint32_t>(I.Srcs.size());
    for (Reg R : I.Srcs)
      DF.SrcPool.push_back(R);
    O.P = Callee;
    if (Callee->isExternal()) {
      O.Op = DOp::CallExt;
      O.A = mapDst(F, I.Dst);
      O.C = DecodeEngine::builtinKindRaw(*Callee);
    } else {
      O.A = I.Dst; // Raw: the callee's RetDst, NoReg means "discard".
      O.C = I.calleeIndex();
    }
    break;
  }
  case DOp::Br:
    O.B = I.Srcs[0];
    O.T0 = DF.BlockStart[BB.Succs[0]];
    O.T1 = DF.BlockStart[BB.Succs[1]];
    O.UImm = uint64_t(BB.Succs[0]) | (uint64_t(BB.Succs[1]) << 32);
    break;
  case DOp::Jmp:
    O.T0 = DF.BlockStart[BB.Succs[0]];
    O.UImm = BB.Succs[0];
    break;
  case DOp::Ret:
    O.NSrcs = static_cast<uint8_t>(I.Srcs.size());
    O.B = I.Srcs.empty() ? 0 : I.Srcs[0];
    break;
  case DOp::SptFork:
  case DOp::SptKill:
    break;
  default:
    spt_fatal("decodePlain: unexpected op");
  }
}

/// Greedy left-to-right superinstruction rewrite of one block. The second
/// instruction of a fused pair keeps its plain slot (normal flow skips it
/// with PC += 2; mid-stream entry at its position still works).
void fuseBlock(const Function &F, const BasicBlock &BB, uint32_t Start,
               DecodedFunction &DF) {
  const size_t N = BB.Instrs.size();
  size_t Idx = 0;
  while (Idx + 1 < N) {
    const Instr &I = BB.Instrs[Idx];
    const Instr &J = BB.Instrs[Idx + 1];
    DecOp &O = DF.Code[Start + Idx];
    const DecOp &O2 = DF.Code[Start + Idx + 1];
    DOp Fused = DOp::kCount;

    if (J.Op == Opcode::Br && I.Dst != NoReg && J.Srcs[0] == I.Dst) {
      // Integer compare feeding the block's conditional branch.
      switch (I.Op) {
      case Opcode::CmpEq:
        Fused = DOp::CmpEqBr;
        break;
      case Opcode::CmpNe:
        Fused = DOp::CmpNeBr;
        break;
      case Opcode::CmpLt:
        Fused = DOp::CmpLtBr;
        break;
      case Opcode::CmpLe:
        Fused = DOp::CmpLeBr;
        break;
      case Opcode::CmpGt:
        Fused = DOp::CmpGtBr;
        break;
      case Opcode::CmpGe:
        Fused = DOp::CmpGeBr;
        break;
      default:
        break;
      }
      if (Fused != DOp::kCount) {
        O.Op = Fused;
        O.A = I.Dst;
        O.B = I.Srcs[0];
        O.C = I.Srcs[1];
        O.T0 = O2.T0;
        O.T1 = O2.T1;
        O.UImm = O2.UImm;
      }
    } else if (I.Op == Opcode::ConstInt && J.Op == Opcode::Add &&
               I.Dst != NoReg &&
               (J.Srcs[0] == I.Dst || J.Srcs[1] == I.Dst)) {
      // Add-immediate: the constant is still written (int add commutes, so
      // the surviving operand order is irrelevant).
      Fused = DOp::ConstAdd;
      O.Op = Fused;
      O.A = mapDst(F, J.Dst);
      O.B = J.Srcs[0] == I.Dst ? J.Srcs[1] : J.Srcs[0];
      O.C = I.Dst;
      O.Imm = I.IntImm;
    } else if (I.Op == Opcode::Mul && J.Op == Opcode::Add && I.Dst != NoReg &&
               (J.Srcs[0] == I.Dst || J.Srcs[1] == I.Dst)) {
      Fused = DOp::MulAdd;
      O.Op = Fused;
      O.A = mapDst(F, J.Dst);
      O.B = I.Srcs[0];
      O.C = I.Srcs[1];
      O.T0 = I.Dst;
      O.T1 = J.Srcs[0] == I.Dst ? J.Srcs[1] : J.Srcs[0];
    } else if (I.Op == Opcode::Add && J.Op == Opcode::Load && I.Dst != NoReg &&
               J.Srcs[0] == I.Dst) {
      // Index arithmetic feeding the access address.
      Fused = DOp::AddLoad;
      O.Op = Fused;
      O.A = mapDst(F, J.Dst);
      O.B = I.Srcs[0];
      O.C = I.Srcs[1];
      O.T0 = I.Dst;
      O.T1 = J.arrayId();
      O.UImm = O2.UImm;
    } else if (I.Op == Opcode::Add && J.Op == Opcode::Store &&
               I.Dst != NoReg && J.Srcs[0] == I.Dst) {
      Fused = DOp::AddStore;
      O.Op = Fused;
      O.A = J.Srcs[1]; // Value register, read after the add retires.
      O.B = I.Srcs[0];
      O.C = I.Srcs[1];
      O.T0 = I.Dst;
      O.T1 = J.arrayId();
      O.UImm = O2.UImm;
    }

    if (Fused != DOp::kCount) {
      O.I1 = &J;
      ++DF.NumFused;
      Idx += 2;
    } else {
      ++Idx;
    }
  }
}

std::shared_ptr<const DecodedFunction>
buildImage(const Module &M, const Function &F, uint64_t Fingerprint,
           const std::vector<uint64_t> &Bases) {
  auto DF = std::make_shared<DecodedFunction>();
  DF->F = &F;
  DF->Fingerprint = Fingerprint;
  DF->BlockStart.resize(F.numBlocks());
  uint32_t Total = 0;
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    DF->BlockStart[B] = Total;
    Total += static_cast<uint32_t>(F.block(B)->Instrs.size());
  }
  DF->Code.resize(Total);
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    const BasicBlock *BB = F.block(B);
    for (uint32_t Idx = 0; Idx != BB->Instrs.size(); ++Idx)
      decodePlain(M, F, *BB, B, Idx, Bases, *DF,
                  DF->Code[DF->BlockStart[B] + Idx]);
  }
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    fuseBlock(F, *F.block(B), DF->BlockStart[B], *DF);
  return DF;
}

} // namespace

//===----------------------------------------------------------------------===//
// Module-level cache.
//===----------------------------------------------------------------------===//

DecodedModule::DecodedModule(const Module &M)
    : M(M), ArrayBase(arrayBaseLayout(M)) {
  Images.resize(M.numFunctions());
}

std::shared_ptr<const DecodedFunction>
DecodedModule::imageFor(const Function *F) {
  const uint32_t Idx = M.indexOf(F);
  const uint64_t Fingerprint = functionFingerprint(*F);
  std::lock_guard<std::mutex> Lock(Mu);
  if (Images.size() < M.numFunctions())
    Images.resize(M.numFunctions());
  if (ArrayBase.size() != M.numArrays())
    ArrayBase = arrayBaseLayout(M); // Arrays are append-only.
  std::shared_ptr<const DecodedFunction> &Slot = Images[Idx];
  if (!Slot || Slot->Fingerprint != Fingerprint)
    Slot = buildImage(M, *F, Fingerprint, ArrayBase);
  return Slot;
}

DecodedModule &Module::decodeCache() const {
  std::call_once(DecodeCacheOnce, [this] {
    DecodeCache = std::make_shared<DecodedModule>(*this);
  });
  return *DecodeCache;
}

const DecodedFunction *Interpreter::imageByIndex(uint32_t Idx) {
  if (FnImages.size() <= Idx)
    FnImages.resize(std::max<size_t>(M.numFunctions(), Idx + 1));
  std::shared_ptr<const DecodedFunction> &Slot = FnImages[Idx];
  if (!Slot)
    Slot = M.decodeCache().imageFor(M.function(Idx));
  return Slot.get();
}

const DecodedFunction *Interpreter::imageOf(const Function *F) {
  return imageByIndex(M.indexOf(F));
}

//===----------------------------------------------------------------------===//
// The decoded execution engine.
//===----------------------------------------------------------------------===//

namespace {

/// run(): no records at all — the pure-throughput path.
struct NullSink {
  static constexpr bool NeedsRecords = false;
  bool onStep(const StepResult &) { return true; }
};

/// runBatch(): records delivered through the virtual StepSink.
struct VirtualSink {
  StepSink &S;
  static constexpr bool NeedsRecords = true;
  bool onStep(const StepResult &R) { return S.onStep(R); }
};

} // namespace

#if SPT_INTERP_THREADED
#define SPT_LIKELY(X) __builtin_expect(!!(X), 1)
#endif

template <class Sink>
uint64_t DecodeEngine::run(Interpreter &In, Sink &S, uint64_t MaxSteps) {
  constexpr bool Rec = Sink::NeedsRecords;
  if (In.Stack.empty() || MaxSteps == 0)
    return 0;

  uint64_t Steps = 0;
  // The fast loop only starts an op with >= 2 steps of budget so a fused
  // pair can never overshoot MaxSteps; the final step goes through the
  // reference engine in the tail below.
  const uint64_t FastBudget = MaxSteps - 1;
  bool Go = true;

  // Decoded images for every live frame (frames may have been pushed by
  // the reference engine before this call).
  std::vector<const DecodedFunction *> Imgs;
  Imgs.reserve(In.Stack.size() + 16);
  for (const Frame &Fr : In.Stack)
    Imgs.push_back(In.imageOf(Fr.F));

  const Function *CurF = In.Stack.back().F;
  const DecodedFunction *Img = Imgs.back();
  const DecOp *Code = Img->Code.data();
  uint32_t PC = Img->offsetOf(In.Stack.back().Block, In.Stack.back().Index);
  Value *R = In.RegArena.data() + In.Stack.back().RegBase;

  auto refreshTop = [&]() {
    const Frame &Fr = In.Stack.back();
    CurF = Fr.F;
    Img = Imgs.back();
    Code = Img->Code.data();
    R = In.RegArena.data() + Fr.RegBase;
  };

  // Record emitters. Each builds exactly the StepResult the reference
  // engine would have returned and runs the sink synchronously, at the
  // sequential point step() would have returned it.
  auto emitVal = [&](const Instr *I, BlockId Blk, uint32_t Idx, Value V) {
    StepResult Rc;
    Rc.F = CurF;
    Rc.I = I;
    Rc.Block = Blk;
    Rc.Index = Idx;
    Rc.Result = V;
    if (!S.onStep(Rc))
      Go = false;
  };
  auto emitMem = [&](const Instr *I, BlockId Blk, uint32_t Idx, bool IsLoad,
                     uint64_t Addr, bool OOB, Value V) {
    StepResult Rc;
    Rc.F = CurF;
    Rc.I = I;
    Rc.Block = Blk;
    Rc.Index = Idx;
    Rc.IsLoad = IsLoad;
    Rc.IsStore = !IsLoad;
    Rc.Addr = Addr;
    Rc.OutOfBounds = OOB;
    Rc.Result = V;
    if (!S.onStep(Rc))
      Go = false;
  };
  auto emitBranch = [&](const Instr *I, BlockId Blk, uint32_t Idx, bool Taken,
                        BlockId Next) {
    StepResult Rc;
    Rc.F = CurF;
    Rc.I = I;
    Rc.Block = Blk;
    Rc.Index = Idx;
    Rc.IsBranch = true;
    Rc.BranchTaken = Taken;
    Rc.NextBlock = Next;
    if (!S.onStep(Rc))
      Go = false;
  };
  auto emitCallEnter = [&](const Instr *I, BlockId Blk, uint32_t Idx) {
    StepResult Rc;
    Rc.F = CurF;
    Rc.I = I;
    Rc.Block = Blk;
    Rc.Index = Idx;
    Rc.IsCallEnter = true;
    if (!S.onStep(Rc))
      Go = false;
  };
  auto emitRet = [&](const Instr *I, BlockId Blk, uint32_t Idx, Value V) {
    StepResult Rc;
    Rc.F = CurF;
    Rc.I = I;
    Rc.Block = Blk;
    Rc.Index = Idx;
    Rc.IsReturn = true;
    Rc.Result = V;
    if (!S.onStep(Rc))
      Go = false;
  };
  auto emitMarker = [&](const Instr *I, BlockId Blk, uint32_t Idx, bool Fork) {
    StepResult Rc;
    Rc.F = CurF;
    Rc.I = I;
    Rc.Block = Blk;
    Rc.Index = Idx;
    Rc.IsFork = Fork;
    Rc.IsKill = !Fork;
    if (!S.onStep(Rc))
      Go = false;
  };
  // The record-free instantiation discards every emit call site.
  (void)emitVal;
  (void)emitMem;
  (void)emitBranch;
  (void)emitCallEnter;
  (void)emitRet;
  (void)emitMarker;

#if SPT_INTERP_THREADED
  // Label table indexed by the raw DOp value — order must match the enum.
  const void *const Tbl[] = {
      &&L_Add,     &&L_Sub,     &&L_Mul,     &&L_Div,     &&L_Rem,
      &&L_Neg,     &&L_And,     &&L_Or,      &&L_Xor,     &&L_Shl,
      &&L_Shr,     &&L_Not,     &&L_Min,     &&L_Max,     &&L_Abs,
      &&L_FAdd,    &&L_FSub,    &&L_FMul,    &&L_FDiv,    &&L_FNeg,
      &&L_FAbs,    &&L_FMin,    &&L_FMax,    &&L_IntToFp, &&L_FpToInt,
      &&L_CmpEq,   &&L_CmpNe,   &&L_CmpLt,   &&L_CmpLe,   &&L_CmpGt,
      &&L_CmpGe,   &&L_FCmpEq,  &&L_FCmpNe,  &&L_FCmpLt,  &&L_FCmpLe,
      &&L_FCmpGt,  &&L_FCmpGe,  &&L_Copy,    &&L_ConstInt, &&L_ConstFp,
      &&L_Select,  &&L_Load,    &&L_Store,   &&L_Call,    &&L_CallExt,
      &&L_Br,      &&L_Jmp,     &&L_Ret,     &&L_SptFork, &&L_SptKill,
      &&L_CmpEqBr, &&L_CmpNeBr, &&L_CmpLtBr, &&L_CmpLeBr, &&L_CmpGtBr,
      &&L_CmpGeBr, &&L_ConstAdd, &&L_MulAdd, &&L_AddLoad, &&L_AddStore,
  };
  static_assert(sizeof(Tbl) / sizeof(Tbl[0]) ==
                    static_cast<size_t>(DOp::kCount),
                "label table out of sync with DOp");

#define SPT_CASE(Name) L_##Name:
#define SPT_NEXT()                                                             \
  do {                                                                         \
    if (SPT_LIKELY(Go && Steps < FastBudget))                                  \
      goto *Tbl[static_cast<unsigned>(Code[PC].Op)];                           \
    goto ExitLoop;                                                             \
  } while (0)

  if (!(Go && Steps < FastBudget))
    goto ExitLoop;
  goto *Tbl[static_cast<unsigned>(Code[PC].Op)];
#else
#define SPT_CASE(Name) case DOp::Name:
#define SPT_NEXT() break

  while (Go && Steps < FastBudget) {
    switch (Code[PC].Op) {
#endif

// One IR instruction writing a value: A = dst, operands per Expr.
#define SPT_VALOP(Name, Expr)                                                  \
  SPT_CASE(Name) {                                                             \
    const DecOp &O = Code[PC];                                                 \
    ++In.InstrsExecuted;                                                       \
    ++Steps;                                                                   \
    const Value V = (Expr);                                                    \
    R[O.A] = V;                                                                \
    if constexpr (Rec)                                                         \
      emitVal(O.I0, O.Block, O.Index, V);                                      \
    ++PC;                                                                      \
  }                                                                            \
  SPT_NEXT()

  SPT_VALOP(Add, Value::ofInt(wrapAdd(R[O.B].I, R[O.C].I)));
  SPT_VALOP(Sub, Value::ofInt(wrapSub(R[O.B].I, R[O.C].I)));
  SPT_VALOP(Mul, Value::ofInt(wrapMul(R[O.B].I, R[O.C].I)));
  SPT_VALOP(Div, Value::ofInt(wrapDiv(R[O.B].I, R[O.C].I)));
  SPT_VALOP(Rem, Value::ofInt(wrapRem(R[O.B].I, R[O.C].I)));
  SPT_VALOP(Neg, Value::ofInt(wrapNeg(R[O.B].I)));
  SPT_VALOP(And, Value::ofInt(R[O.B].I & R[O.C].I));
  SPT_VALOP(Or, Value::ofInt(R[O.B].I | R[O.C].I));
  SPT_VALOP(Xor, Value::ofInt(R[O.B].I ^ R[O.C].I));
  SPT_VALOP(Shl, Value::ofInt(wrapShl(R[O.B].I, R[O.C].I)));
  SPT_VALOP(Shr, Value::ofInt(R[O.B].I >> (R[O.C].I & 63)));
  SPT_VALOP(Not, Value::ofInt(~R[O.B].I));
  SPT_VALOP(Min, Value::ofInt(R[O.B].I < R[O.C].I ? R[O.B].I : R[O.C].I));
  SPT_VALOP(Max, Value::ofInt(R[O.B].I > R[O.C].I ? R[O.B].I : R[O.C].I));
  SPT_VALOP(Abs, Value::ofInt(wrapAbs(R[O.B].I)));

  SPT_VALOP(FAdd, Value::ofFp(R[O.B].F + R[O.C].F));
  SPT_VALOP(FSub, Value::ofFp(R[O.B].F - R[O.C].F));
  SPT_VALOP(FMul, Value::ofFp(R[O.B].F * R[O.C].F));
  SPT_VALOP(FDiv,
            Value::ofFp(R[O.C].F == 0.0 ? 0.0 : R[O.B].F / R[O.C].F));
  SPT_VALOP(FNeg, Value::ofFp(-R[O.B].F));
  SPT_VALOP(FAbs, Value::ofFp(std::fabs(R[O.B].F)));
  SPT_VALOP(FMin, Value::ofFp(R[O.B].F < R[O.C].F ? R[O.B].F : R[O.C].F));
  SPT_VALOP(FMax, Value::ofFp(R[O.B].F > R[O.C].F ? R[O.B].F : R[O.C].F));

  SPT_VALOP(IntToFp, Value::ofFp(static_cast<double>(R[O.B].I)));
  SPT_VALOP(FpToInt, Value::ofInt(static_cast<int64_t>(R[O.B].F)));

  SPT_VALOP(CmpEq, Value::ofInt(R[O.B].I == R[O.C].I));
  SPT_VALOP(CmpNe, Value::ofInt(R[O.B].I != R[O.C].I));
  SPT_VALOP(CmpLt, Value::ofInt(R[O.B].I < R[O.C].I));
  SPT_VALOP(CmpLe, Value::ofInt(R[O.B].I <= R[O.C].I));
  SPT_VALOP(CmpGt, Value::ofInt(R[O.B].I > R[O.C].I));
  SPT_VALOP(CmpGe, Value::ofInt(R[O.B].I >= R[O.C].I));
  SPT_VALOP(FCmpEq, Value::ofInt(R[O.B].F == R[O.C].F));
  SPT_VALOP(FCmpNe, Value::ofInt(R[O.B].F != R[O.C].F));
  SPT_VALOP(FCmpLt, Value::ofInt(R[O.B].F < R[O.C].F));
  SPT_VALOP(FCmpLe, Value::ofInt(R[O.B].F <= R[O.C].F));
  SPT_VALOP(FCmpGt, Value::ofInt(R[O.B].F > R[O.C].F));
  SPT_VALOP(FCmpGe, Value::ofInt(R[O.B].F >= R[O.C].F));

  SPT_VALOP(Copy, R[O.B]);
  SPT_VALOP(ConstInt, Value::ofInt(O.Imm));
  SPT_VALOP(ConstFp, Value::ofFp(O.FImm));
  SPT_VALOP(Select, R[O.B].I != 0 ? R[O.C] : R[O.T0]);

  SPT_CASE(Load) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    const int64_t Idx = R[O.B].I;
    const std::vector<Value> &Arr = (*In.Mem)[O.C];
    uint64_t Addr;
    bool OOB;
    Value V;
    if (static_cast<uint64_t>(Idx) >= Arr.size()) {
      OOB = true;
      Addr = O.UImm; // Clamped address for the cache model.
      V = Value();
    } else {
      OOB = false;
      Addr = O.UImm + static_cast<uint64_t>(Idx) * 8;
      V = Arr[static_cast<size_t>(Idx)];
    }
    if (In.Hooks_)
      V = In.Hooks_->onLoad(Addr, V);
    R[O.A] = V;
    if constexpr (Rec)
      emitMem(O.I0, O.Block, O.Index, /*IsLoad=*/true, Addr, OOB, V);
    ++PC;
  }
  SPT_NEXT();

  SPT_CASE(Store) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    const int64_t Idx = R[O.B].I;
    const Value V = R[O.C];
    std::vector<Value> &Arr = (*In.Mem)[O.A];
    uint64_t Addr;
    bool OOB;
    if (static_cast<uint64_t>(Idx) >= Arr.size()) {
      OOB = true;
      Addr = O.UImm;
      if (In.Hooks_)
        In.Hooks_->onStore(Addr, V); // Buffered even when out of bounds.
    } else {
      OOB = false;
      Addr = O.UImm + static_cast<uint64_t>(Idx) * 8;
      const bool Consumed = In.Hooks_ && In.Hooks_->onStore(Addr, V);
      if (!Consumed)
        Arr[static_cast<size_t>(Idx)] = V;
    }
    if constexpr (Rec)
      emitMem(O.I0, O.Block, O.Index, /*IsLoad=*/false, Addr, OOB, V);
    ++PC;
  }
  SPT_NEXT();

  SPT_CASE(CallExt) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    const Reg *ArgRegs = Img->SrcPool.data() + O.B;
    In.ArgScratch.clear();
    for (uint32_t K = 0; K != O.T0; ++K)
      In.ArgScratch.push_back(R[ArgRegs[K]]);
    const Value V = In.evalBuiltinKind(
        static_cast<Interpreter::BuiltinKind>(O.C), In.ArgScratch.data());
    R[O.A] = V;
    if constexpr (Rec)
      emitVal(O.I0, O.Block, O.Index, V);
    ++PC;
  }
  SPT_NEXT();

  SPT_CASE(Call) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    const Function *Callee = static_cast<const Function *>(O.P);
    const Reg *ArgRegs = Img->SrcPool.data() + O.B;
    In.ArgScratch.clear();
    for (uint32_t K = 0; K != O.T0; ++K)
      In.ArgScratch.push_back(R[ArgRegs[K]]);
    // Suspend the caller at its resume position, then enter the callee.
    Frame &Cur = In.Stack.back();
    Cur.Block = O.Block;
    Cur.Index = O.Index + 1;
    In.pushFrame(Callee, static_cast<Reg>(O.A), In.ArgScratch.data(),
                 In.ArgScratch.size());
    Imgs.push_back(In.imageByIndex(O.C));
    if constexpr (Rec)
      emitCallEnter(O.I0, O.Block, O.Index); // CurF is still the caller.
    refreshTop();
    PC = Img->offsetOf(Callee->entry(), 0);
  }
  SPT_NEXT();

  SPT_CASE(Ret) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    Value V;
    if (O.NSrcs)
      V = R[O.B];
    Frame &Cur = In.Stack.back();
    const Reg Dst = Cur.RetDst;
    In.ArenaTop = Cur.RegBase;
    const Instr *RetI = O.I0;
    const BlockId RetBlk = O.Block;
    const uint32_t RetIdx = O.Index;
    In.Stack.pop_back();
    Imgs.pop_back();
    if (In.Stack.empty()) {
      In.RetValue = V;
      if constexpr (Rec)
        emitRet(RetI, RetBlk, RetIdx, V);
      goto ExitDone; // Nothing left to sync.
    }
    const Frame &Caller = In.Stack.back();
    if (Dst != NoReg)
      In.RegArena[Caller.RegBase + Dst] = V;
    if constexpr (Rec)
      emitRet(RetI, RetBlk, RetIdx, V); // CurF is still the returning fn.
    refreshTop();
    PC = Img->offsetOf(Caller.Block, Caller.Index);
  }
  SPT_NEXT();

  SPT_CASE(Br) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    const bool Taken = R[O.B].I != 0;
    PC = Taken ? O.T0 : O.T1;
    if constexpr (Rec)
      emitBranch(O.I0, O.Block, O.Index, Taken,
                 static_cast<BlockId>(Taken ? (O.UImm & 0xffffffffu)
                                            : (O.UImm >> 32)));
  }
  SPT_NEXT();

  SPT_CASE(Jmp) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    PC = O.T0;
    if constexpr (Rec)
      emitBranch(O.I0, O.Block, O.Index, /*Taken=*/true,
                 static_cast<BlockId>(O.UImm));
  }
  SPT_NEXT();

  SPT_CASE(SptFork) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    if constexpr (Rec)
      emitMarker(O.I0, O.Block, O.Index, /*Fork=*/true);
    ++PC;
  }
  SPT_NEXT();

  SPT_CASE(SptKill) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    if constexpr (Rec)
      emitMarker(O.I0, O.Block, O.Index, /*Fork=*/false);
    ++PC;
  }
  SPT_NEXT();

// Fused integer compare + conditional branch. The branch condition is the
// compare's destination by construction, so the freshly computed value is
// the condition.
#define SPT_CMPBR(Name, CmpExpr)                                               \
  SPT_CASE(Name) {                                                             \
    const DecOp &O = Code[PC];                                                 \
    ++In.InstrsExecuted;                                                       \
    ++Steps;                                                                   \
    const Value CV = Value::ofInt(CmpExpr);                                    \
    R[O.A] = CV;                                                               \
    if constexpr (Rec) {                                                       \
      emitVal(O.I0, O.Block, O.Index, CV);                                     \
      if (!Go) {                                                               \
        ++PC; /* sink stopped mid-pair: resume at the plain branch slot */     \
        goto ExitLoop;                                                         \
      }                                                                        \
    }                                                                          \
    ++In.InstrsExecuted;                                                       \
    ++Steps;                                                                   \
    const bool Taken = CV.I != 0;                                              \
    PC = Taken ? O.T0 : O.T1;                                                  \
    if constexpr (Rec)                                                         \
      emitBranch(O.I1, O.Block, O.Index + 1, Taken,                            \
                 static_cast<BlockId>(Taken ? (O.UImm & 0xffffffffu)           \
                                            : (O.UImm >> 32)));                \
  }                                                                            \
  SPT_NEXT()

  SPT_CMPBR(CmpEqBr, R[O.B].I == R[O.C].I);
  SPT_CMPBR(CmpNeBr, R[O.B].I != R[O.C].I);
  SPT_CMPBR(CmpLtBr, R[O.B].I < R[O.C].I);
  SPT_CMPBR(CmpLeBr, R[O.B].I <= R[O.C].I);
  SPT_CMPBR(CmpGtBr, R[O.B].I > R[O.C].I);
  SPT_CMPBR(CmpGeBr, R[O.B].I >= R[O.C].I);

  SPT_CASE(ConstAdd) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    const Value CV = Value::ofInt(O.Imm);
    R[O.C] = CV;
    if constexpr (Rec) {
      emitVal(O.I0, O.Block, O.Index, CV);
      if (!Go) {
        ++PC; // Sink stopped mid-pair: resume at the plain second half.
        goto ExitLoop;
      }
    }
    ++In.InstrsExecuted;
    ++Steps;
    const Value V = Value::ofInt(wrapAdd(R[O.B].I, R[O.C].I));
    R[O.A] = V;
    if constexpr (Rec)
      emitVal(O.I1, O.Block, O.Index + 1, V);
    PC += 2;
  }
  SPT_NEXT();

  SPT_CASE(MulAdd) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    const Value MV = Value::ofInt(wrapMul(R[O.B].I, R[O.C].I));
    R[O.T0] = MV;
    if constexpr (Rec) {
      emitVal(O.I0, O.Block, O.Index, MV);
      if (!Go) {
        ++PC; // Sink stopped mid-pair: resume at the plain second half.
        goto ExitLoop;
      }
    }
    ++In.InstrsExecuted;
    ++Steps;
    const Value V = Value::ofInt(wrapAdd(R[O.T0].I, R[O.T1].I));
    R[O.A] = V;
    if constexpr (Rec)
      emitVal(O.I1, O.Block, O.Index + 1, V);
    PC += 2;
  }
  SPT_NEXT();

  SPT_CASE(AddLoad) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    const Value AV = Value::ofInt(wrapAdd(R[O.B].I, R[O.C].I));
    R[O.T0] = AV;
    if constexpr (Rec) {
      emitVal(O.I0, O.Block, O.Index, AV);
      if (!Go) {
        ++PC; // Sink stopped mid-pair: resume at the plain second half.
        goto ExitLoop;
      }
    }
    ++In.InstrsExecuted;
    ++Steps;
    const int64_t Idx = R[O.T0].I;
    const std::vector<Value> &Arr = (*In.Mem)[O.T1];
    uint64_t Addr;
    bool OOB;
    Value V;
    if (static_cast<uint64_t>(Idx) >= Arr.size()) {
      OOB = true;
      Addr = O.UImm;
      V = Value();
    } else {
      OOB = false;
      Addr = O.UImm + static_cast<uint64_t>(Idx) * 8;
      V = Arr[static_cast<size_t>(Idx)];
    }
    if (In.Hooks_)
      V = In.Hooks_->onLoad(Addr, V);
    R[O.A] = V;
    if constexpr (Rec)
      emitMem(O.I1, O.Block, O.Index + 1, /*IsLoad=*/true, Addr, OOB, V);
    PC += 2;
  }
  SPT_NEXT();

  SPT_CASE(AddStore) {
    const DecOp &O = Code[PC];
    ++In.InstrsExecuted;
    ++Steps;
    const Value AV = Value::ofInt(wrapAdd(R[O.B].I, R[O.C].I));
    R[O.T0] = AV;
    if constexpr (Rec) {
      emitVal(O.I0, O.Block, O.Index, AV);
      if (!Go) {
        ++PC; // Sink stopped mid-pair: resume at the plain second half.
        goto ExitLoop;
      }
    }
    ++In.InstrsExecuted;
    ++Steps;
    const int64_t Idx = R[O.T0].I;
    const Value V = R[O.A]; // Read after the add: sequential semantics.
    std::vector<Value> &Arr = (*In.Mem)[O.T1];
    uint64_t Addr;
    bool OOB;
    if (static_cast<uint64_t>(Idx) >= Arr.size()) {
      OOB = true;
      Addr = O.UImm;
      if (In.Hooks_)
        In.Hooks_->onStore(Addr, V);
    } else {
      OOB = false;
      Addr = O.UImm + static_cast<uint64_t>(Idx) * 8;
      const bool Consumed = In.Hooks_ && In.Hooks_->onStore(Addr, V);
      if (!Consumed)
        Arr[static_cast<size_t>(Idx)] = V;
    }
    if constexpr (Rec)
      emitMem(O.I1, O.Block, O.Index + 1, /*IsLoad=*/false, Addr, OOB, V);
    PC += 2;
  }
  SPT_NEXT();

#if !SPT_INTERP_THREADED
    case DOp::kCount:
      spt_fatal("corrupt decoded stream");
    }
  }
#endif

#undef SPT_CASE
#undef SPT_NEXT
#undef SPT_VALOP
#undef SPT_CMPBR

ExitLoop:
  // Control leaves the dispatch loop with PC at the next op to execute;
  // re-establish the Block/Index view every out-of-loop consumer relies on.
  if (!In.Stack.empty()) {
    Frame &Fr = In.Stack.back();
    const DecOp &O = Code[PC];
    Fr.Block = O.Block;
    Fr.Index = O.Index;
  }
ExitDone:
  // At most one step of budget can remain (the fast loop keeps a 2-step
  // margin so superinstructions never overshoot); retire it through the
  // reference engine, which is single-step by construction.
  while (Go && !In.Stack.empty() && Steps < MaxSteps) {
    const StepResult Rc = In.step();
    ++Steps;
    if constexpr (Rec) {
      if (!S.onStep(Rc))
        Go = false;
    }
  }
  return Steps;
}

//===----------------------------------------------------------------------===//
// Engine entry points.
//===----------------------------------------------------------------------===//

uint64_t Interpreter::run(uint64_t MaxSteps) {
  if (Opts.Dispatch == InterpDispatch::Decoded) {
    NullSink S;
    return DecodeEngine::run(*this, S, MaxSteps);
  }
  uint64_t Steps = 0;
  while (!done() && Steps < MaxSteps) {
    step();
    ++Steps;
  }
  return Steps;
}

uint64_t Interpreter::runBatch(StepSink &Sink, uint64_t MaxSteps) {
  if (Opts.Dispatch == InterpDispatch::Decoded) {
    VirtualSink S{Sink};
    return DecodeEngine::run(*this, S, MaxSteps);
  }
  uint64_t Steps = 0;
  while (!done() && Steps < MaxSteps) {
    const StepResult R = step();
    ++Steps;
    if (!Sink.onStep(R))
      break;
  }
  return Steps;
}
