//===- interp/Decode.h - Pre-decoded flat code stream ----------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decode pass behind the interpreter's fast engine. A DecodedFunction
/// flattens a Function's blocks into one contiguous array of fixed-size
/// DecOps: operands pre-extracted from ir::Instr's vectors, branch targets
/// pre-resolved to code offsets, array base addresses pre-computed, and
/// external callees pre-bound to their builtin. Code offsets are position-
/// isomorphic with the IR — the op for (Block B, Index I) sits at
/// BlockStart[B] + I — so any IR position (a mid-function startAt, a
/// call-resume point) maps to the stream with one add, and every record the
/// engine emits can name its IR block/index without bookkeeping.
///
/// Superinstruction fusion: the decode pass rewrites the hot adjacent pairs
/// the frontend emits constantly — compare feeding the block's conditional
/// branch, constant feeding an add, mul feeding an add, and add feeding a
/// load/store index — into single fused DecOps. A fused op executes its two
/// IR instructions strictly sequentially and emits both StepResult records
/// at the exact points the reference engine would, so fusion is invisible
/// to every observer. The second instruction's slot keeps its plain
/// decoding (normal flow skips it; mid-stream entry at that position still
/// works), and fusion never crosses a Call/Ret/fork boundary.
///
/// Caching: decoded images live on the Module (Module::decodeCache()), so
/// the Profiler, both simulators and every per-fork ghost context share one
/// decode. The pipeline mutates functions in place between stages
/// (applySptTransform), so each image carries a structural fingerprint that
/// DecodedModule::imageFor re-validates; a stale image is rebuilt on first
/// use. The cache is mutex-guarded for the parallel pass-1 profilers, and
/// interpreters memoize the resolved shared_ptr per function so the lock
/// and fingerprint walk happen once per (interpreter, function).
///
/// Dispatch portability: SPT_INTERP_THREADED selects GCC/Clang
/// labels-as-values (computed goto) in the engine's dispatch loop; other
/// compilers (MSVC) and -DSPT_INTERP_FORCE_SWITCH builds fall back to a
/// plain switch in a loop with identical semantics.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_INTERP_DECODE_H
#define SPT_INTERP_DECODE_H

#include "ir/IR.h"

#include <memory>
#include <mutex>
#include <vector>

#if !defined(SPT_INTERP_FORCE_SWITCH) && (defined(__GNUC__) || defined(__clang__))
#define SPT_INTERP_THREADED 1
#else
#define SPT_INTERP_THREADED 0
#endif

namespace spt {

/// Decoded opcodes: the IR opcodes one-to-one, the pre-bound external call,
/// and the superinstructions. Kept dense and stable — the threaded engine
/// indexes its label table with the raw value.
enum class DOp : uint8_t {
  // Plain ops (operand regs in A/B/C, see Decode.cpp::decodePlain).
  Add, Sub, Mul, Div, Rem, Neg, And, Or, Xor, Shl, Shr, Not, Min, Max, Abs,
  FAdd, FSub, FMul, FDiv, FNeg, FAbs, FMin, FMax,
  IntToFp, FpToInt,
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe,
  Copy, ConstInt, ConstFp, Select,
  Load, Store,
  Call,    ///< Non-external call, callee pre-resolved.
  CallExt, ///< External call, builtin kind pre-resolved.
  Br, Jmp, Ret, SptFork, SptKill,
  // Superinstructions (two IR instructions, two records).
  CmpEqBr, CmpNeBr, CmpLtBr, CmpLeBr, CmpGtBr, CmpGeBr,
  ConstAdd, ///< ConstInt t, imm ; Add d, {t, s} (int add is commutative).
  MulAdd,   ///< Mul t, a, b ; Add d, {t, c}.
  AddLoad,  ///< Add t, a, b ; Load d, Arr[t].
  AddStore, ///< Add t, a, b ; Store Arr[t], v.
  kCount,
};

/// One fixed-size decoded operation. Field meaning depends on DOp; the
/// invariant layout is: A/B/C hold register numbers or small ids, T0/T1
/// hold pre-resolved code offsets (branches) or auxiliary regs/ids, the
/// immediate union holds the constant / pre-computed array base, P the
/// pre-resolved callee, and I0/I1 the originating IR instruction(s) for
/// record emission (I1 only for fused ops).
struct DecOp {
  DOp Op = DOp::kCount;
  uint8_t NSrcs = 0;  ///< Ret: source count (0 or 1).
  uint16_t Pad = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  uint32_t T0 = 0;
  uint32_t T1 = 0;
  union {
    int64_t Imm;
    uint64_t UImm;
    double FImm;
  };
  const void *P = nullptr;
  const Instr *I0 = nullptr;
  const Instr *I1 = nullptr;
  BlockId Block = NoBlock; ///< IR block of I0.
  uint32_t Index = 0;      ///< IR index of I0 within Block.

  DecOp() : Imm(0) {}
};

/// The decoded image of one Function at one structural fingerprint.
struct DecodedFunction {
  const Function *F = nullptr;
  uint64_t Fingerprint = 0;
  std::vector<DecOp> Code;
  /// BlockId -> code offset of the block's first op. Code offsets are
  /// position-isomorphic: op for (B, I) lives at BlockStart[B] + I.
  std::vector<uint32_t> BlockStart;
  /// Argument registers of Call ops (DecOp::B is the pool offset).
  std::vector<Reg> SrcPool;
  uint32_t NumFused = 0; ///< Fused pairs in this image (for stats/tests).

  uint32_t offsetOf(BlockId B, uint32_t Index) const {
    return BlockStart[B] + Index;
  }
};

/// Structural-identity hash of \p F: opcodes, operands, immediates,
/// successors, register counts, plus the storage address of each block's
/// instruction array (decoded images hold Instr pointers, so an in-place
/// rebuild with identical contents must still invalidate). Any in-place
/// mutation of the function changes it.
uint64_t functionFingerprint(const Function &F);

/// The deterministic flat-address layout of a module's arrays — the same
/// bases the Interpreter constructor assigns, shared so decode can bake
/// them into Load/Store ops.
std::vector<uint64_t> arrayBaseLayout(const Module &M);

/// Module-level cache of decoded images, one per Function, fingerprint-
/// validated on every (locked) lookup. Thread-safe: parallel pass-1 runs
/// several profilers over one module concurrently.
class DecodedModule {
public:
  explicit DecodedModule(const Module &M);

  /// The decoded image for \p F, rebuilt when its fingerprint no longer
  /// matches the live function. The returned image is immutable and stays
  /// valid as long as the shared_ptr is held, even across a rebuild.
  std::shared_ptr<const DecodedFunction> imageFor(const Function *F);

private:
  const Module &M;
  std::vector<uint64_t> ArrayBase;
  std::mutex Mu;
  /// Keyed by module function index (functions are owned by the module
  /// and never move).
  std::vector<std::shared_ptr<const DecodedFunction>> Images;
};

} // namespace spt

#endif // SPT_INTERP_DECODE_H
