//===- interp/Interp.cpp - Steppable IR interpreter -------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "support/Debug.h"
#include "support/WrapMath.h"

#include <cmath>
#include <cstdio>

using namespace spt;

Interpreter::MemHooks::~MemHooks() = default;

Interpreter::Interpreter(const Module &M, InterpOptions Opts)
    : M(M), Mem(&OwnMemory), Rng(Opts.RngSeed), Opts(Opts) {
  OwnMemory.resize(M.numArrays());
  ArrayBase.resize(M.numArrays());
  uint64_t Base = 0x1000;
  for (size_t I = 0; I != M.numArrays(); ++I) {
    const ArrayDecl &A = M.array(static_cast<uint32_t>(I));
    OwnMemory[I].assign(A.Size, Value());
    ArrayBase[I] = Base;
    Base += A.Size * 8;
    // Pad between arrays so streaming through one never prefetches
    // another's line in the cache model.
    Base = (Base + 255) & ~uint64_t(255);
  }
}

Interpreter::Interpreter(const Module &M, Interpreter &Other)
    : M(M), Mem(Other.Mem), ArrayBase(Other.ArrayBase),
      Rng(Other.Rng), Opts(Other.Opts) {
  assert(&M == &Other.M && "memory sharing requires the same module");
}

void Interpreter::reset() {
  for (size_t I = 0; I != Mem->size(); ++I) {
    const ArrayDecl &A = M.array(static_cast<uint32_t>(I));
    (*Mem)[I].assign(A.Size, Value());
  }
  Stack.clear();
  RetValue = Value();
  InstrsExecuted = 0;
  Output.clear();
  Rng.reseed(Opts.RngSeed);
}

void Interpreter::startAt(const Function *F, BlockId Block, uint32_t Index,
                          std::vector<Value> Regs) {
  assert(Stack.empty() && "previous call still active");
  assert(Regs.size() == F->numRegs() && "register file size mismatch");
  Frame Fr;
  Fr.F = F;
  Fr.Block = Block;
  Fr.Index = Index;
  Fr.Regs = std::move(Regs);
  Stack.push_back(std::move(Fr));
}

void Interpreter::startCall(const Function *F, const std::vector<Value> &Args) {
  assert(Stack.empty() && "previous call still active");
  assert(!F->isExternal() && "cannot start an external function");
  assert(Args.size() == F->numParams() && "wrong argument count");
  Frame Fr;
  Fr.F = F;
  Fr.Block = F->entry();
  Fr.Index = 0;
  Fr.Regs.assign(F->numRegs(), Value());
  for (size_t I = 0; I != Args.size(); ++I)
    Fr.Regs[I] = Args[I];
  Stack.push_back(std::move(Fr));
}

Value Interpreter::evalBuiltin(const Function &Callee,
                               const std::vector<Value> &Args) {
  const std::string &Name = Callee.name();
  if (Name == "sqrt")
    return Value::ofFp(Args[0].F <= 0.0 ? 0.0 : std::sqrt(Args[0].F));
  if (Name == "log")
    return Value::ofFp(Args[0].F <= 0.0 ? 0.0 : std::log(Args[0].F));
  if (Name == "exp")
    return Value::ofFp(std::exp(Args[0].F));
  if (Name == "rnd") {
    const int64_t Bound = Args[0].I;
    return Value::ofInt(Bound <= 0 ? 0 : Rng.nextBelow(Bound));
  }
  if (Name == "print_int") {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld\n",
                  static_cast<long long>(Args[0].I));
    Output += Buf;
    return Value();
  }
  if (Name == "print_fp") {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f\n", Args[0].F);
    Output += Buf;
    return Value();
  }
  spt_fatal("unknown external function called");
}

StepResult Interpreter::step() {
  assert(!Stack.empty() && "step() on a finished machine");
  Frame &Fr = Stack.back();
  const BasicBlock *BB = Fr.F->block(Fr.Block);
  assert(Fr.Index < BB->Instrs.size() && "frame position out of range");
  const Instr &I = BB->Instrs[Fr.Index];

  StepResult R;
  R.F = Fr.F;
  R.I = &I;
  R.Block = Fr.Block;
  R.Index = Fr.Index;
  ++InstrsExecuted;

  auto RegV = [&](size_t SrcIdx) -> Value & { return Fr.Regs[I.Srcs[SrcIdx]]; };
  auto setDst = [&](Value V) {
    if (I.Dst != NoReg)
      Fr.Regs[I.Dst] = V;
    R.Result = V;
  };
  auto advance = [&]() { ++Fr.Index; };

  switch (I.Op) {
  case Opcode::Add:
    setDst(Value::ofInt(wrapAdd(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Sub:
    setDst(Value::ofInt(wrapSub(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Mul:
    setDst(Value::ofInt(wrapMul(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Div:
    setDst(Value::ofInt(wrapDiv(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Rem:
    setDst(Value::ofInt(wrapRem(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Neg:
    setDst(Value::ofInt(wrapNeg(RegV(0).I)));
    advance();
    break;
  case Opcode::And:
    setDst(Value::ofInt(RegV(0).I & RegV(1).I));
    advance();
    break;
  case Opcode::Or:
    setDst(Value::ofInt(RegV(0).I | RegV(1).I));
    advance();
    break;
  case Opcode::Xor:
    setDst(Value::ofInt(RegV(0).I ^ RegV(1).I));
    advance();
    break;
  case Opcode::Shl:
    setDst(Value::ofInt(wrapShl(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Shr:
    setDst(Value::ofInt(RegV(0).I >> (RegV(1).I & 63)));
    advance();
    break;
  case Opcode::Not:
    setDst(Value::ofInt(~RegV(0).I));
    advance();
    break;
  case Opcode::Min:
    setDst(Value::ofInt(RegV(0).I < RegV(1).I ? RegV(0).I : RegV(1).I));
    advance();
    break;
  case Opcode::Max:
    setDst(Value::ofInt(RegV(0).I > RegV(1).I ? RegV(0).I : RegV(1).I));
    advance();
    break;
  case Opcode::Abs:
    setDst(Value::ofInt(wrapAbs(RegV(0).I)));
    advance();
    break;

  case Opcode::FAdd:
    setDst(Value::ofFp(RegV(0).F + RegV(1).F));
    advance();
    break;
  case Opcode::FSub:
    setDst(Value::ofFp(RegV(0).F - RegV(1).F));
    advance();
    break;
  case Opcode::FMul:
    setDst(Value::ofFp(RegV(0).F * RegV(1).F));
    advance();
    break;
  case Opcode::FDiv: {
    const double D = RegV(1).F;
    setDst(Value::ofFp(D == 0.0 ? 0.0 : RegV(0).F / D));
    advance();
    break;
  }
  case Opcode::FNeg:
    setDst(Value::ofFp(-RegV(0).F));
    advance();
    break;
  case Opcode::FAbs:
    setDst(Value::ofFp(std::fabs(RegV(0).F)));
    advance();
    break;
  case Opcode::FMin:
    setDst(Value::ofFp(RegV(0).F < RegV(1).F ? RegV(0).F : RegV(1).F));
    advance();
    break;
  case Opcode::FMax:
    setDst(Value::ofFp(RegV(0).F > RegV(1).F ? RegV(0).F : RegV(1).F));
    advance();
    break;

  case Opcode::IntToFp:
    setDst(Value::ofFp(static_cast<double>(RegV(0).I)));
    advance();
    break;
  case Opcode::FpToInt:
    setDst(Value::ofInt(static_cast<int64_t>(RegV(0).F)));
    advance();
    break;

  case Opcode::CmpEq:
    setDst(Value::ofInt(RegV(0).I == RegV(1).I));
    advance();
    break;
  case Opcode::CmpNe:
    setDst(Value::ofInt(RegV(0).I != RegV(1).I));
    advance();
    break;
  case Opcode::CmpLt:
    setDst(Value::ofInt(RegV(0).I < RegV(1).I));
    advance();
    break;
  case Opcode::CmpLe:
    setDst(Value::ofInt(RegV(0).I <= RegV(1).I));
    advance();
    break;
  case Opcode::CmpGt:
    setDst(Value::ofInt(RegV(0).I > RegV(1).I));
    advance();
    break;
  case Opcode::CmpGe:
    setDst(Value::ofInt(RegV(0).I >= RegV(1).I));
    advance();
    break;
  case Opcode::FCmpEq:
    setDst(Value::ofInt(RegV(0).F == RegV(1).F));
    advance();
    break;
  case Opcode::FCmpNe:
    setDst(Value::ofInt(RegV(0).F != RegV(1).F));
    advance();
    break;
  case Opcode::FCmpLt:
    setDst(Value::ofInt(RegV(0).F < RegV(1).F));
    advance();
    break;
  case Opcode::FCmpLe:
    setDst(Value::ofInt(RegV(0).F <= RegV(1).F));
    advance();
    break;
  case Opcode::FCmpGt:
    setDst(Value::ofInt(RegV(0).F > RegV(1).F));
    advance();
    break;
  case Opcode::FCmpGe:
    setDst(Value::ofInt(RegV(0).F >= RegV(1).F));
    advance();
    break;

  case Opcode::Copy:
    setDst(RegV(0));
    advance();
    break;
  case Opcode::ConstInt:
    setDst(Value::ofInt(I.IntImm));
    advance();
    break;
  case Opcode::ConstFp:
    setDst(Value::ofFp(I.FpImm));
    advance();
    break;
  case Opcode::Select:
    setDst(RegV(0).I != 0 ? RegV(1) : RegV(2));
    advance();
    break;

  case Opcode::Load: {
    const uint32_t Id = I.arrayId();
    const int64_t Index = RegV(0).I;
    R.IsLoad = true;
    Value Loaded;
    if (Index < 0 ||
        static_cast<uint64_t>(Index) >= (*Mem)[Id].size()) {
      R.OutOfBounds = true;
      R.Addr = ArrayBase[Id]; // Clamped address for the cache model.
      Loaded = Value();
    } else {
      R.Addr = addressOf(Id, static_cast<uint64_t>(Index));
      Loaded = (*Mem)[Id][static_cast<size_t>(Index)];
    }
    if (Hooks_)
      Loaded = Hooks_->onLoad(R.Addr, Loaded);
    setDst(Loaded);
    advance();
    break;
  }
  case Opcode::Store: {
    const uint32_t Id = I.arrayId();
    const int64_t Index = RegV(0).I;
    const Value V = RegV(1);
    R.IsStore = true;
    R.Result = V;
    if (Index < 0 ||
        static_cast<uint64_t>(Index) >= (*Mem)[Id].size()) {
      R.OutOfBounds = true;
      R.Addr = ArrayBase[Id];
      if (Hooks_)
        Hooks_->onStore(R.Addr, V); // Buffered even when out of bounds.
    } else {
      R.Addr = addressOf(Id, static_cast<uint64_t>(Index));
      const bool Consumed = Hooks_ && Hooks_->onStore(R.Addr, V);
      if (!Consumed)
        (*Mem)[Id][static_cast<size_t>(Index)] = V;
    }
    advance();
    break;
  }

  case Opcode::Call: {
    const Function *Callee = M.function(I.calleeIndex());
    std::vector<Value> Args;
    Args.reserve(I.Srcs.size());
    for (size_t A = 0; A != I.Srcs.size(); ++A)
      Args.push_back(Fr.Regs[I.Srcs[A]]);
    if (Callee->isExternal()) {
      const Value V = evalBuiltin(*Callee, Args);
      setDst(V);
      advance();
      break;
    }
    R.IsCallEnter = true;
    advance(); // Return will resume after the call.
    Frame New;
    New.F = Callee;
    New.Block = Callee->entry();
    New.Index = 0;
    New.RetDst = I.Dst;
    New.Regs.assign(Callee->numRegs(), Value());
    for (size_t A = 0; A != Args.size(); ++A)
      New.Regs[A] = Args[A];
    Stack.push_back(std::move(New));
    break;
  }

  case Opcode::Br: {
    const bool Taken = RegV(0).I != 0;
    R.IsBranch = true;
    R.BranchTaken = Taken;
    const BlockId Target = BB->Succs[Taken ? 0 : 1];
    R.NextBlock = Target;
    Fr.Block = Target;
    Fr.Index = 0;
    break;
  }
  case Opcode::Jmp: {
    R.IsBranch = true;
    R.BranchTaken = true;
    const BlockId Target = BB->Succs[0];
    R.NextBlock = Target;
    Fr.Block = Target;
    Fr.Index = 0;
    break;
  }
  case Opcode::Ret: {
    R.IsReturn = true;
    Value V;
    if (!I.Srcs.empty())
      V = RegV(0);
    const Reg Dst = Fr.RetDst;
    Stack.pop_back();
    if (Stack.empty())
      RetValue = V;
    else if (Dst != NoReg)
      Stack.back().Regs[Dst] = V;
    R.Result = V;
    break;
  }

  case Opcode::SptFork:
    R.IsFork = true;
    advance();
    break;
  case Opcode::SptKill:
    R.IsKill = true;
    advance();
    break;
  }

  // Fall off the end of a block is impossible: blocks end in terminators.
  return R;
}

uint64_t Interpreter::run(uint64_t MaxSteps) {
  uint64_t Steps = 0;
  while (!done() && Steps < MaxSteps) {
    step();
    ++Steps;
  }
  return Steps;
}

RunOutcome spt::runFunction(const Module &M, const std::string &FnName,
                            const std::vector<Value> &Args,
                            uint64_t MaxSteps) {
  const Function *F = M.findFunction(FnName);
  if (!F)
    spt_fatal("runFunction: no such function");
  Interpreter In(M);
  In.startCall(F, Args);
  const uint64_t Steps = In.run(MaxSteps);
  if (!In.done())
    spt_fatal("runFunction: step budget exhausted (infinite loop?)");
  RunOutcome O;
  O.Result = In.returnValue();
  O.Output = In.output();
  O.Instrs = Steps;
  return O;
}

Value Interpreter::peekAddr(uint64_t Addr) const {
  for (size_t Id = 0; Id != ArrayBase.size(); ++Id) {
    const uint64_t Base = ArrayBase[Id];
    const uint64_t Size = (*Mem)[Id].size() * 8;
    if (Addr >= Base && Addr < Base + Size)
      return (*Mem)[Id][(Addr - Base) / 8];
  }
  return Value();
}

uint64_t Interpreter::memoryHash() const {
  uint64_t H = 0xcbf29ce484222325ull; // FNV-1a offset basis.
  auto mix = [&H](uint64_t Bits) {
    for (int Byte = 0; Byte != 8; ++Byte) {
      H ^= (Bits >> (Byte * 8)) & 0xffu;
      H *= 0x100000001b3ull;
    }
  };
  for (const std::vector<Value> &Arr : *Mem) {
    mix(Arr.size());
    for (const Value &V : Arr)
      mix(static_cast<uint64_t>(V.I));
  }
  return H;
}
