//===- interp/Interp.cpp - Steppable IR interpreter -------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
// This file implements the machine state and the *reference* engine — the
// tree-walking switch over ir::Instr behind step(). The decoded engine
// (run()/runBatch() under InterpDispatch::Decoded) lives in Decode.cpp;
// both operate on the same state and must stay byte-identical in every
// observable (tests/interp_decode_test.cpp).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/Decode.h"
#include "support/Debug.h"
#include "support/WrapMath.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace spt;

Interpreter::MemHooks::~MemHooks() = default;
StepSink::~StepSink() = default;

std::vector<uint64_t> spt::arrayBaseLayout(const Module &M) {
  std::vector<uint64_t> Bases(M.numArrays());
  uint64_t Base = 0x1000;
  for (size_t I = 0; I != M.numArrays(); ++I) {
    const ArrayDecl &A = M.array(static_cast<uint32_t>(I));
    Bases[I] = Base;
    Base += A.Size * 8;
    // Pad between arrays so streaming through one never prefetches
    // another's line in the cache model.
    Base = (Base + 255) & ~uint64_t(255);
  }
  return Bases;
}

Interpreter::Interpreter(const Module &M, InterpOptions Opts)
    : M(M), Mem(&OwnMemory), ArrayBase(arrayBaseLayout(M)), Rng(Opts.RngSeed),
      Opts(Opts) {
  OwnMemory.resize(M.numArrays());
  for (size_t I = 0; I != M.numArrays(); ++I)
    OwnMemory[I].assign(M.array(static_cast<uint32_t>(I)).Size, Value());
  // Pre-size the register arena so the first frames of a run never
  // reallocate: one activation of every function covers the common
  // shallow call trees.
  size_t Slots = 0;
  for (size_t I = 0; I != M.numFunctions(); ++I)
    Slots += M.function(static_cast<uint32_t>(I))->numRegs() + 1;
  RegArena.reserve(Slots + 64);
}

Interpreter::Interpreter(const Module &M, Interpreter &Other)
    : M(M), Mem(Other.Mem), ArrayBase(Other.ArrayBase), Rng(Other.Rng),
      Opts(Other.Opts), FnImages(Other.FnImages) {
  assert(&M == &Other.M && "memory sharing requires the same module");
  RegArena.reserve(Other.RegArena.capacity());
}

void Interpreter::reset() {
  for (size_t I = 0; I != Mem->size(); ++I) {
    const ArrayDecl &A = M.array(static_cast<uint32_t>(I));
    (*Mem)[I].assign(A.Size, Value());
  }
  Stack.clear();
  ArenaTop = 0;
  RetValue = Value();
  InstrsExecuted = 0;
  Output.clear();
  if (Output.capacity() < 256)
    Output.reserve(256);
  Rng.reseed(Opts.RngSeed);
}

void Interpreter::pushFrame(const Function *Callee, Reg RetDst,
                            const Value *Args, size_t NArgs) {
  Frame Fr;
  Fr.F = Callee;
  Fr.Block = Callee->entry();
  Fr.Index = 0;
  Fr.RetDst = RetDst;
  Fr.RegBase = ArenaTop;
  // One extra slot past numRegs: the decoded engine redirects writes whose
  // IR destination is NoReg (legal for value-producing dead code) there
  // instead of branching on every op.
  const size_t N = Callee->numRegs() + 1;
  assert(NArgs <= Callee->numRegs() && "more arguments than registers");
  if (RegArena.size() < ArenaTop + N)
    RegArena.resize(ArenaTop + N);
  std::fill(RegArena.begin() + Fr.RegBase, RegArena.begin() + Fr.RegBase + N,
            Value());
  std::copy(Args, Args + NArgs, RegArena.begin() + Fr.RegBase);
  ArenaTop += N;
  Stack.push_back(Fr);
}

void Interpreter::startAt(const Function *F, BlockId Block, uint32_t Index,
                          const std::vector<Value> &Regs) {
  assert(Stack.empty() && "previous call still active");
  assert(Regs.size() == F->numRegs() && "register file size mismatch");
  pushFrame(F, NoReg, Regs.data(), Regs.size());
  Stack.back().Block = Block;
  Stack.back().Index = Index;
}

void Interpreter::startCall(const Function *F, const std::vector<Value> &Args) {
  assert(Stack.empty() && "previous call still active");
  assert(!F->isExternal() && "cannot start an external function");
  assert(Args.size() == F->numParams() && "wrong argument count");
  pushFrame(F, NoReg, Args.data(), Args.size());
}

Interpreter::BuiltinKind Interpreter::builtinKindOf(const Function &Callee) {
  const std::string &Name = Callee.name();
  if (Name == "sqrt")
    return BuiltinKind::Sqrt;
  if (Name == "log")
    return BuiltinKind::Log;
  if (Name == "exp")
    return BuiltinKind::Exp;
  if (Name == "rnd")
    return BuiltinKind::Rnd;
  if (Name == "print_int")
    return BuiltinKind::PrintInt;
  if (Name == "print_fp")
    return BuiltinKind::PrintFp;
  return BuiltinKind::Unknown;
}

void Interpreter::appendOutput(const char *Buf, size_t Len) {
  // Geometric growth: snprintf chunks are tiny, and print-heavy programs
  // (the paper's trace workloads) would otherwise reallocate per line.
  if (Output.size() + Len > Output.capacity())
    Output.reserve(std::max(Output.capacity() * 2, Output.size() + Len));
  Output.append(Buf, Len);
}

Value Interpreter::evalBuiltinKind(BuiltinKind K, const Value *Args) {
  switch (K) {
  case BuiltinKind::Sqrt:
    return Value::ofFp(Args[0].F <= 0.0 ? 0.0 : std::sqrt(Args[0].F));
  case BuiltinKind::Log:
    return Value::ofFp(Args[0].F <= 0.0 ? 0.0 : std::log(Args[0].F));
  case BuiltinKind::Exp:
    return Value::ofFp(std::exp(Args[0].F));
  case BuiltinKind::Rnd: {
    const int64_t Bound = Args[0].I;
    return Value::ofInt(Bound <= 0 ? 0 : Rng.nextBelow(Bound));
  }
  case BuiltinKind::PrintInt: {
    char Buf[32];
    const int N = std::snprintf(Buf, sizeof(Buf), "%lld\n",
                                static_cast<long long>(Args[0].I));
    appendOutput(Buf, static_cast<size_t>(N));
    return Value();
  }
  case BuiltinKind::PrintFp: {
    char Buf[64];
    const int N = std::snprintf(Buf, sizeof(Buf), "%.6f\n", Args[0].F);
    appendOutput(Buf, static_cast<size_t>(N));
    return Value();
  }
  case BuiltinKind::Unknown:
    break;
  }
  spt_fatal("unknown external function called");
}

StepResult Interpreter::step() {
  assert(!Stack.empty() && "step() on a finished machine");
  Frame &Fr = Stack.back();
  const BasicBlock *BB = Fr.F->block(Fr.Block);
  assert(Fr.Index < BB->Instrs.size() && "frame position out of range");
  const Instr &I = BB->Instrs[Fr.Index];
  Value *Regs = RegArena.data() + Fr.RegBase;

  StepResult R;
  R.F = Fr.F;
  R.I = &I;
  R.Block = Fr.Block;
  R.Index = Fr.Index;
  ++InstrsExecuted;

  auto RegV = [&](size_t SrcIdx) -> Value & { return Regs[I.Srcs[SrcIdx]]; };
  auto setDst = [&](Value V) {
    if (I.Dst != NoReg)
      Regs[I.Dst] = V;
    R.Result = V;
  };
  auto advance = [&]() { ++Fr.Index; };

  switch (I.Op) {
  case Opcode::Add:
    setDst(Value::ofInt(wrapAdd(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Sub:
    setDst(Value::ofInt(wrapSub(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Mul:
    setDst(Value::ofInt(wrapMul(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Div:
    setDst(Value::ofInt(wrapDiv(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Rem:
    setDst(Value::ofInt(wrapRem(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Neg:
    setDst(Value::ofInt(wrapNeg(RegV(0).I)));
    advance();
    break;
  case Opcode::And:
    setDst(Value::ofInt(RegV(0).I & RegV(1).I));
    advance();
    break;
  case Opcode::Or:
    setDst(Value::ofInt(RegV(0).I | RegV(1).I));
    advance();
    break;
  case Opcode::Xor:
    setDst(Value::ofInt(RegV(0).I ^ RegV(1).I));
    advance();
    break;
  case Opcode::Shl:
    setDst(Value::ofInt(wrapShl(RegV(0).I, RegV(1).I)));
    advance();
    break;
  case Opcode::Shr:
    setDst(Value::ofInt(RegV(0).I >> (RegV(1).I & 63)));
    advance();
    break;
  case Opcode::Not:
    setDst(Value::ofInt(~RegV(0).I));
    advance();
    break;
  case Opcode::Min:
    setDst(Value::ofInt(RegV(0).I < RegV(1).I ? RegV(0).I : RegV(1).I));
    advance();
    break;
  case Opcode::Max:
    setDst(Value::ofInt(RegV(0).I > RegV(1).I ? RegV(0).I : RegV(1).I));
    advance();
    break;
  case Opcode::Abs:
    setDst(Value::ofInt(wrapAbs(RegV(0).I)));
    advance();
    break;

  case Opcode::FAdd:
    setDst(Value::ofFp(RegV(0).F + RegV(1).F));
    advance();
    break;
  case Opcode::FSub:
    setDst(Value::ofFp(RegV(0).F - RegV(1).F));
    advance();
    break;
  case Opcode::FMul:
    setDst(Value::ofFp(RegV(0).F * RegV(1).F));
    advance();
    break;
  case Opcode::FDiv: {
    const double D = RegV(1).F;
    setDst(Value::ofFp(D == 0.0 ? 0.0 : RegV(0).F / D));
    advance();
    break;
  }
  case Opcode::FNeg:
    setDst(Value::ofFp(-RegV(0).F));
    advance();
    break;
  case Opcode::FAbs:
    setDst(Value::ofFp(std::fabs(RegV(0).F)));
    advance();
    break;
  case Opcode::FMin:
    setDst(Value::ofFp(RegV(0).F < RegV(1).F ? RegV(0).F : RegV(1).F));
    advance();
    break;
  case Opcode::FMax:
    setDst(Value::ofFp(RegV(0).F > RegV(1).F ? RegV(0).F : RegV(1).F));
    advance();
    break;

  case Opcode::IntToFp:
    setDst(Value::ofFp(static_cast<double>(RegV(0).I)));
    advance();
    break;
  case Opcode::FpToInt:
    setDst(Value::ofInt(static_cast<int64_t>(RegV(0).F)));
    advance();
    break;

  case Opcode::CmpEq:
    setDst(Value::ofInt(RegV(0).I == RegV(1).I));
    advance();
    break;
  case Opcode::CmpNe:
    setDst(Value::ofInt(RegV(0).I != RegV(1).I));
    advance();
    break;
  case Opcode::CmpLt:
    setDst(Value::ofInt(RegV(0).I < RegV(1).I));
    advance();
    break;
  case Opcode::CmpLe:
    setDst(Value::ofInt(RegV(0).I <= RegV(1).I));
    advance();
    break;
  case Opcode::CmpGt:
    setDst(Value::ofInt(RegV(0).I > RegV(1).I));
    advance();
    break;
  case Opcode::CmpGe:
    setDst(Value::ofInt(RegV(0).I >= RegV(1).I));
    advance();
    break;
  case Opcode::FCmpEq:
    setDst(Value::ofInt(RegV(0).F == RegV(1).F));
    advance();
    break;
  case Opcode::FCmpNe:
    setDst(Value::ofInt(RegV(0).F != RegV(1).F));
    advance();
    break;
  case Opcode::FCmpLt:
    setDst(Value::ofInt(RegV(0).F < RegV(1).F));
    advance();
    break;
  case Opcode::FCmpLe:
    setDst(Value::ofInt(RegV(0).F <= RegV(1).F));
    advance();
    break;
  case Opcode::FCmpGt:
    setDst(Value::ofInt(RegV(0).F > RegV(1).F));
    advance();
    break;
  case Opcode::FCmpGe:
    setDst(Value::ofInt(RegV(0).F >= RegV(1).F));
    advance();
    break;

  case Opcode::Copy:
    setDst(RegV(0));
    advance();
    break;
  case Opcode::ConstInt:
    setDst(Value::ofInt(I.IntImm));
    advance();
    break;
  case Opcode::ConstFp:
    setDst(Value::ofFp(I.FpImm));
    advance();
    break;
  case Opcode::Select:
    setDst(RegV(0).I != 0 ? RegV(1) : RegV(2));
    advance();
    break;

  case Opcode::Load: {
    const uint32_t Id = I.arrayId();
    const int64_t Index = RegV(0).I;
    R.IsLoad = true;
    Value Loaded;
    if (Index < 0 ||
        static_cast<uint64_t>(Index) >= (*Mem)[Id].size()) {
      R.OutOfBounds = true;
      R.Addr = ArrayBase[Id]; // Clamped address for the cache model.
      Loaded = Value();
    } else {
      R.Addr = addressOf(Id, static_cast<uint64_t>(Index));
      Loaded = (*Mem)[Id][static_cast<size_t>(Index)];
    }
    if (Hooks_)
      Loaded = Hooks_->onLoad(R.Addr, Loaded);
    setDst(Loaded);
    advance();
    break;
  }
  case Opcode::Store: {
    const uint32_t Id = I.arrayId();
    const int64_t Index = RegV(0).I;
    const Value V = RegV(1);
    R.IsStore = true;
    R.Result = V;
    if (Index < 0 ||
        static_cast<uint64_t>(Index) >= (*Mem)[Id].size()) {
      R.OutOfBounds = true;
      R.Addr = ArrayBase[Id];
      if (Hooks_)
        Hooks_->onStore(R.Addr, V); // Buffered even when out of bounds.
    } else {
      R.Addr = addressOf(Id, static_cast<uint64_t>(Index));
      const bool Consumed = Hooks_ && Hooks_->onStore(R.Addr, V);
      if (!Consumed)
        (*Mem)[Id][static_cast<size_t>(Index)] = V;
    }
    advance();
    break;
  }

  case Opcode::Call: {
    const Function *Callee = M.function(I.calleeIndex());
    ArgScratch.clear();
    for (size_t A = 0; A != I.Srcs.size(); ++A)
      ArgScratch.push_back(Regs[I.Srcs[A]]);
    if (Callee->isExternal()) {
      const Value V = evalBuiltinKind(builtinKindOf(*Callee),
                                      ArgScratch.data());
      setDst(V);
      advance();
      break;
    }
    R.IsCallEnter = true;
    advance(); // Return will resume after the call.
    pushFrame(Callee, I.Dst, ArgScratch.data(), ArgScratch.size());
    break;
  }

  case Opcode::Br: {
    const bool Taken = RegV(0).I != 0;
    R.IsBranch = true;
    R.BranchTaken = Taken;
    const BlockId Target = BB->Succs[Taken ? 0 : 1];
    R.NextBlock = Target;
    Fr.Block = Target;
    Fr.Index = 0;
    break;
  }
  case Opcode::Jmp: {
    R.IsBranch = true;
    R.BranchTaken = true;
    const BlockId Target = BB->Succs[0];
    R.NextBlock = Target;
    Fr.Block = Target;
    Fr.Index = 0;
    break;
  }
  case Opcode::Ret: {
    R.IsReturn = true;
    Value V;
    if (!I.Srcs.empty())
      V = RegV(0);
    const Reg Dst = Fr.RetDst;
    ArenaTop = Fr.RegBase;
    Stack.pop_back();
    if (Stack.empty())
      RetValue = V;
    else if (Dst != NoReg)
      RegArena[Stack.back().RegBase + Dst] = V;
    R.Result = V;
    break;
  }

  case Opcode::SptFork:
    R.IsFork = true;
    advance();
    break;
  case Opcode::SptKill:
    R.IsKill = true;
    advance();
    break;
  }

  // Fall off the end of a block is impossible: blocks end in terminators.
  return R;
}

uint64_t spt::hashStepResult(uint64_t H, const StepResult &R) {
  auto mix = [&H](uint64_t Bits) {
    for (int Byte = 0; Byte != 8; ++Byte) {
      H ^= (Bits >> (Byte * 8)) & 0xffu;
      H *= 0x100000001b3ull;
    }
  };
  mix(reinterpret_cast<uintptr_t>(R.F));
  mix(reinterpret_cast<uintptr_t>(R.I));
  mix((uint64_t(R.Block) << 32) | R.Index);
  mix(uint64_t(R.IsLoad) | (uint64_t(R.IsStore) << 1) |
      (uint64_t(R.OutOfBounds) << 2) | (uint64_t(R.IsBranch) << 3) |
      (uint64_t(R.BranchTaken) << 4) | (uint64_t(R.IsCallEnter) << 5) |
      (uint64_t(R.IsReturn) << 6) | (uint64_t(R.IsFork) << 7) |
      (uint64_t(R.IsKill) << 8));
  mix(R.Addr);
  mix(R.NextBlock);
  mix(static_cast<uint64_t>(R.Result.I));
  return H;
}

RunOutcome spt::runFunction(const Module &M, const std::string &FnName,
                            const std::vector<Value> &Args,
                            uint64_t MaxSteps) {
  const Function *F = M.findFunction(FnName);
  if (!F)
    spt_fatal("runFunction: no such function");
  Interpreter In(M);
  In.startCall(F, Args);
  const uint64_t Steps = In.run(MaxSteps);
  if (!In.done())
    spt_fatal("runFunction: step budget exhausted (infinite loop?)");
  RunOutcome O;
  O.Result = In.returnValue();
  O.Output = In.output();
  O.Instrs = Steps;
  return O;
}

Value Interpreter::peekAddr(uint64_t Addr) const {
  for (size_t Id = 0; Id != ArrayBase.size(); ++Id) {
    const uint64_t Base = ArrayBase[Id];
    const uint64_t Size = (*Mem)[Id].size() * 8;
    if (Addr >= Base && Addr < Base + Size)
      return (*Mem)[Id][(Addr - Base) / 8];
  }
  return Value();
}

uint64_t Interpreter::memoryHash() const {
  uint64_t H = 0xcbf29ce484222325ull; // FNV-1a offset basis.
  auto mix = [&H](uint64_t Bits) {
    for (int Byte = 0; Byte != 8; ++Byte) {
      H ^= (Bits >> (Byte * 8)) & 0xffu;
      H *= 0x100000001b3ull;
    }
  };
  for (const std::vector<Value> &Arr : *Mem) {
    mix(Arr.size());
    for (const Value &V : Arr)
      mix(static_cast<uint64_t>(V.I));
  }
  return H;
}
