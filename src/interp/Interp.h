//===- interp/Interp.h - Steppable IR interpreter --------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A precise, steppable interpreter for the SPT IR. One Interpreter instance
/// is one hardware context: a call stack, a register file per frame, and a
/// view of the module's array memory. Profilers (edge, dependence, value)
/// and the SPT simulator drive it through two engines that are observably
/// byte-identical:
///
///   Reference engine — step(): a tree-walking switch over ir::Instr that
///   executes exactly one instruction and returns a full StepResult. It is
///   the semantic baseline every other engine is differenced against
///   (tests/interp_decode_test.cpp, the interp-decode-diff fuzzing oracle).
///
///   Decoded engine — run()/runBatch(): executes a pre-decoded flat code
///   stream (interp/Decode.h) with threaded dispatch and superinstruction
///   fusion. runBatch() streams the same StepResult records into a StepSink
///   callback instead of materializing and returning one per call; run()
///   skips record construction entirely. Drivers that used to call step()
///   150M+ times per simulation (Profiler, SeqSim, SptSim) go through
///   runBatch. InterpOptions::Dispatch selects the engine; both see the
///   same machine state, so they can even be interleaved.
///
/// Design notes:
///  - Arrays live in a flat byte-address space (8 bytes per element) so the
///    cache model and the dependence profiler share one address notion.
///  - Out-of-bounds accesses do not abort: loads yield 0, stores are
///    dropped, and the step result is flagged. The SPT simulator's ghost
///    (speculative) runs can legitimately compute wild addresses from stale
///    inputs; real TLS hardware would buffer and squash such accesses.
///  - Division by zero yields 0 for the same reason.
///  - rnd() is deterministic (support/Random.h) and part of the machine
///    state, so a context snapshot (used by speculative runs) clones it.
///  - Register files live in one flat arena (RegArena) indexed by each
///    frame's RegBase, so a call pushes a frame without allocating.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_INTERP_INTERP_H
#define SPT_INTERP_INTERP_H

#include "ir/IR.h"
#include "support/Random.h"

#include <memory>
#include <string>
#include <vector>

namespace spt {

struct DecodedFunction;
struct DecodeEngine;

/// A dynamically typed 8-byte value. The static type is always known from
/// the consuming instruction, so no tag is stored.
struct Value {
  union {
    int64_t I;
    double F;
  };

  Value() : I(0) {}
  static Value ofInt(int64_t V) {
    Value X;
    X.I = V;
    return X;
  }
  static Value ofFp(double V) {
    Value X;
    X.F = V;
    return X;
  }
};

/// What one step() executed. Pointers remain valid while the module lives.
struct StepResult {
  const Function *F = nullptr;
  const Instr *I = nullptr;
  BlockId Block = NoBlock;
  uint32_t Index = 0; // Instruction index within the block.

  bool IsLoad = false;
  bool IsStore = false;
  uint64_t Addr = 0;        // Flat byte address of a Load/Store.
  bool OutOfBounds = false; // Access outside the array; load got 0.

  bool IsBranch = false;
  bool BranchTaken = false; // For Br: whether Succs[0] was chosen.
  BlockId NextBlock = NoBlock; // Control-flow successor entered, if any.

  bool IsCallEnter = false; // Entered a non-external callee frame.
  bool IsReturn = false;    // Popped a frame (or finished the start call).
  bool IsFork = false;      // Executed SptFork.
  bool IsKill = false;      // Executed SptKill.

  /// The value written to I->Dst (when the instruction defines one) or the
  /// value stored by a Store.
  Value Result;
};

/// Folds every observable field of \p R into an FNV-1a accumulator. Used by
/// the decode differential test and the interp-decode-diff oracle to compare
/// whole StepResult streams without memcmp'ing padding bytes.
uint64_t hashStepResult(uint64_t H, const StepResult &R);

/// One activation record. Register values live in the interpreter's flat
/// arena at [RegBase, RegBase + F->numRegs()); use Interpreter::frameRegs.
struct Frame {
  const Function *F = nullptr;
  BlockId Block = 0;
  uint32_t Index = 0;
  Reg RetDst = NoReg;  // Caller register awaiting our return value.
  size_t RegBase = 0;  // First register slot in the interpreter's arena.
};

/// Which execution engine drives run()/runBatch().
enum class InterpDispatch : uint8_t {
  Decoded,   ///< Pre-decoded stream, threaded dispatch, superinstructions.
  Reference, ///< The tree-walking switch engine (differential baseline).
};

/// Interpreter options.
struct InterpOptions {
  uint64_t RngSeed = 0x5eed5eed5eedull;
  InterpDispatch Dispatch = InterpDispatch::Decoded;
};

/// Synchronous consumer of StepResult records for Interpreter::runBatch.
/// onStep is invoked after each IR instruction retires, at the exact point
/// step() would have returned, so a sink may inspect interpreter state
/// (stackDepth, topFrame, memory) and sees what a step() driver saw.
/// Returning false stops the run after the current record.
class StepSink {
public:
  virtual ~StepSink();
  virtual bool onStep(const StepResult &R) = 0;
};

/// Adapts a callable to a StepSink, for drivers whose per-step handling is
/// a local lambda over driver state.
template <class Fn> class LambdaSink final : public StepSink {
public:
  explicit LambdaSink(Fn F) : F(std::move(F)) {}
  bool onStep(const StepResult &R) override { return F(R); }

private:
  Fn F;
};

template <class Fn> LambdaSink<Fn> makeStepSink(Fn F) {
  return LambdaSink<Fn>(std::move(F));
}

/// The steppable machine. Memory (arrays) is owned by the interpreter;
/// speculative contexts share it read-mostly via the SPT simulator's
/// buffering (see sim/SptSim.h).
class Interpreter {
public:
  explicit Interpreter(const Module &M, InterpOptions Opts = InterpOptions());

  /// Creates an interpreter that *shares* \p Other's array memory (used
  /// for speculative ghost contexts, which redirect their writes through
  /// MemHooks while reading the shared image). The ghost's RNG state is
  /// cloned from \p Other at construction, and the decoded images \p Other
  /// already resolved are shared so per-fork ghosts never re-decode.
  Interpreter(const Module &M, Interpreter &Other);

  const Module &module() const { return M; }

  /// Re-zeroes all array memory and clears the call stack and output.
  void reset();

  /// Direct access to an array's storage (for input generators and tests).
  std::vector<Value> &arrayData(uint32_t Id) {
    assert(Id < Mem->size() && "array id out of range");
    return (*Mem)[Id];
  }
  const std::vector<Value> &arrayData(uint32_t Id) const {
    assert(Id < Mem->size() && "array id out of range");
    return (*Mem)[Id];
  }

  /// Flat byte address of element \p Index of array \p Id.
  uint64_t addressOf(uint32_t Id, uint64_t Index) const {
    return ArrayBase[Id] + Index * 8;
  }

  /// Reads the current value at a flat byte address (used by the SPT
  /// simulator's undo log). Returns zero for addresses outside any array.
  Value peekAddr(uint64_t Addr) const;

  /// FNV-1a hash over the entire array memory image — the architectural
  /// state a differential oracle compares bit-for-bit across simulators.
  uint64_t memoryHash() const;

  /// Begins executing \p F with \p Args. Any previous call stack must have
  /// finished (done() == true).
  void startCall(const Function *F, const std::vector<Value> &Args);

  /// Begins executing mid-function: one frame for \p F positioned at
  /// (\p Block, \p Index) with the given register file. Used to launch
  /// speculative ghost contexts at a loop's iteration entry.
  void startAt(const Function *F, BlockId Block, uint32_t Index,
               const std::vector<Value> &Regs);

  /// True when the call stack is empty (the start call returned).
  bool done() const { return Stack.empty(); }

  /// Executes exactly one instruction through the reference engine. Must
  /// not be called when done(). Kept as the compatibility shim and the
  /// differential baseline; state is shared with the decoded engine, so
  /// step() and runBatch() may be interleaved freely.
  StepResult step();

  /// Runs until done() or \p MaxSteps executed; returns steps executed.
  /// Under InterpDispatch::Decoded no StepResult records are built at all —
  /// this is the fastest way through a program.
  uint64_t run(uint64_t MaxSteps = ~0ull);

  /// Runs like run() but delivers every StepResult to \p Sink, exactly the
  /// records a step() loop would have produced, in the same order. Returns
  /// the number of instructions executed. Stops when the sink returns
  /// false, done(), or \p MaxSteps.
  uint64_t runBatch(StepSink &Sink, uint64_t MaxSteps = ~0ull);

  /// The value returned by the finished start call.
  Value returnValue() const { return RetValue; }

  /// Total instructions executed since construction/reset. Incremented
  /// *before* each instruction executes, so during execution (e.g. inside
  /// a MemHooks callback) instrCount()-1 is the index of the current
  /// instruction in the dynamic trace.
  uint64_t instrCount() const { return InstrsExecuted; }

  /// Text emitted by print_int/print_fp since reset.
  const std::string &output() const { return Output; }

  /// The current innermost frame (for inspection by drivers).
  const Frame &topFrame() const {
    assert(!Stack.empty() && "no active frame");
    return Stack.back();
  }

  size_t stackDepth() const { return Stack.size(); }

  /// Frame at \p Depth (0 = outermost start call).
  const Frame &frame(size_t Depth) const {
    assert(Depth < Stack.size() && "frame depth out of range");
    return Stack[Depth];
  }

  /// Register file of \p Fr (contiguous, F->numRegs() entries).
  const Value *frameRegs(const Frame &Fr) const {
    return RegArena.data() + Fr.RegBase;
  }

  /// Copies the top frame's registers into \p Out, reusing its capacity
  /// (the SPT simulator snapshots registers at every fork).
  void copyTopRegs(std::vector<Value> &Out) const {
    const Frame &Fr = topFrame();
    const Value *R = RegArena.data() + Fr.RegBase;
    Out.assign(R, R + Fr.F->numRegs());
  }

  /// The machine's deterministic RNG (rnd() builtin state).
  Random &rng() { return Rng; }

  /// Memory-read/write hooks used by the SPT simulator to redirect
  /// speculative accesses into a buffer. When set, they fully replace the
  /// default array access. Plain profiling leaves them unset.
  struct MemHooks {
    virtual ~MemHooks();
    /// Returns the loaded value for \p Addr; \p Fallback is the value in
    /// main memory.
    virtual Value onLoad(uint64_t Addr, Value Fallback) = 0;
    /// Returns true when the store was consumed (buffered); false writes
    /// through to main memory.
    virtual bool onStore(uint64_t Addr, Value V) = 0;
  };
  void setMemHooks(MemHooks *Hooks) { Hooks_ = Hooks; }

private:
  friend struct DecodeEngine;

  /// The builtins the frontend knows. Decode resolves external callees to
  /// a kind once; the reference engine resolves by name per call.
  enum class BuiltinKind : uint8_t {
    Sqrt,
    Log,
    Exp,
    Rnd,
    PrintInt,
    PrintFp,
    Unknown, ///< Faults when executed (not at decode time).
  };
  static BuiltinKind builtinKindOf(const Function &Callee);
  Value evalBuiltinKind(BuiltinKind K, const Value *Args);
  void appendOutput(const char *Buf, size_t Len);

  /// Pushes a frame for \p Callee, zeroing its arena slice and copying
  /// \p NArgs argument values from \p Args. Invalidates RegArena pointers.
  void pushFrame(const Function *Callee, Reg RetDst, const Value *Args,
                 size_t NArgs);

  /// Resolved decoded image for module function index \p Idx, memoized per
  /// interpreter (defined in interp/Decode.cpp).
  const DecodedFunction *imageByIndex(uint32_t Idx);
  const DecodedFunction *imageOf(const Function *F);

  const Module &M;
  std::vector<std::vector<Value>> OwnMemory;
  /// Points at OwnMemory, or at another interpreter's memory image.
  std::vector<std::vector<Value>> *Mem;
  std::vector<uint64_t> ArrayBase;
  std::vector<Frame> Stack;
  /// Flat register-file arena; frame Fr owns [RegBase, RegBase+numRegs).
  std::vector<Value> RegArena;
  size_t ArenaTop = 0;
  Value RetValue;
  uint64_t InstrsExecuted = 0;
  std::string Output;
  Random Rng;
  InterpOptions Opts;
  MemHooks *Hooks_ = nullptr;
  /// Reused argument buffer for Call instructions (reference engine).
  std::vector<Value> ArgScratch;
  /// Per-interpreter memo of fingerprint-validated decoded images, indexed
  /// by module function index. shared_ptr keeps an image alive across the
  /// module-level cache rebuilding it for a mutated sibling function.
  std::vector<std::shared_ptr<const DecodedFunction>> FnImages;
};

/// Convenience: interprets \p FnName(\p Args) in a fresh interpreter and
/// returns (return value, printed output).
struct RunOutcome {
  Value Result;
  std::string Output;
  uint64_t Instrs = 0;
};
RunOutcome runFunction(const Module &M, const std::string &FnName,
                       const std::vector<Value> &Args = {},
                       uint64_t MaxSteps = 500000000ull);

} // namespace spt

#endif // SPT_INTERP_INTERP_H
