//===- interp/Interp.h - Steppable IR interpreter --------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A precise, steppable interpreter for the SPT IR. One Interpreter instance
/// is one hardware context: a call stack, a register file per frame, and a
/// view of the module's array memory. Profilers (edge, dependence, value)
/// and the SPT simulator drive it one instruction at a time through step(),
/// which reports everything they need: the executed instruction, memory
/// addresses touched and taken branch directions.
///
/// Design notes:
///  - Arrays live in a flat byte-address space (8 bytes per element) so the
///    cache model and the dependence profiler share one address notion.
///  - Out-of-bounds accesses do not abort: loads yield 0, stores are
///    dropped, and the step result is flagged. The SPT simulator's ghost
///    (speculative) runs can legitimately compute wild addresses from stale
///    inputs; real TLS hardware would buffer and squash such accesses.
///  - Division by zero yields 0 for the same reason.
///  - rnd() is deterministic (support/Random.h) and part of the machine
///    state, so a context snapshot (used by speculative runs) clones it.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_INTERP_INTERP_H
#define SPT_INTERP_INTERP_H

#include "ir/IR.h"
#include "support/Random.h"

#include <memory>
#include <string>
#include <vector>

namespace spt {

/// A dynamically typed 8-byte value. The static type is always known from
/// the consuming instruction, so no tag is stored.
struct Value {
  union {
    int64_t I;
    double F;
  };

  Value() : I(0) {}
  static Value ofInt(int64_t V) {
    Value X;
    X.I = V;
    return X;
  }
  static Value ofFp(double V) {
    Value X;
    X.F = V;
    return X;
  }
};

/// What one step() executed. Pointers remain valid while the module lives.
struct StepResult {
  const Function *F = nullptr;
  const Instr *I = nullptr;
  BlockId Block = NoBlock;
  uint32_t Index = 0; // Instruction index within the block.

  bool IsLoad = false;
  bool IsStore = false;
  uint64_t Addr = 0;        // Flat byte address of a Load/Store.
  bool OutOfBounds = false; // Access outside the array; load got 0.

  bool IsBranch = false;
  bool BranchTaken = false; // For Br: whether Succs[0] was chosen.
  BlockId NextBlock = NoBlock; // Control-flow successor entered, if any.

  bool IsCallEnter = false; // Entered a non-external callee frame.
  bool IsReturn = false;    // Popped a frame (or finished the start call).
  bool IsFork = false;      // Executed SptFork.
  bool IsKill = false;      // Executed SptKill.

  /// The value written to I->Dst (when the instruction defines one) or the
  /// value stored by a Store.
  Value Result;
};

/// One activation record.
struct Frame {
  const Function *F = nullptr;
  BlockId Block = 0;
  uint32_t Index = 0;
  Reg RetDst = NoReg; // Caller register awaiting our return value.
  std::vector<Value> Regs;
};

/// Interpreter options.
struct InterpOptions {
  uint64_t RngSeed = 0x5eed5eed5eedull;
};

/// The steppable machine. Memory (arrays) is owned by the interpreter;
/// speculative contexts share it read-mostly via the SPT simulator's
/// buffering (see sim/SptSim.h).
class Interpreter {
public:
  explicit Interpreter(const Module &M, InterpOptions Opts = InterpOptions());

  /// Creates an interpreter that *shares* \p Other's array memory (used
  /// for speculative ghost contexts, which redirect their writes through
  /// MemHooks while reading the shared image). The ghost's RNG state is
  /// cloned from \p Other at construction.
  Interpreter(const Module &M, Interpreter &Other);

  const Module &module() const { return M; }

  /// Re-zeroes all array memory and clears the call stack and output.
  void reset();

  /// Direct access to an array's storage (for input generators and tests).
  std::vector<Value> &arrayData(uint32_t Id) {
    assert(Id < Mem->size() && "array id out of range");
    return (*Mem)[Id];
  }
  const std::vector<Value> &arrayData(uint32_t Id) const {
    assert(Id < Mem->size() && "array id out of range");
    return (*Mem)[Id];
  }

  /// Flat byte address of element \p Index of array \p Id.
  uint64_t addressOf(uint32_t Id, uint64_t Index) const {
    return ArrayBase[Id] + Index * 8;
  }

  /// Reads the current value at a flat byte address (used by the SPT
  /// simulator's undo log). Returns zero for addresses outside any array.
  Value peekAddr(uint64_t Addr) const;

  /// FNV-1a hash over the entire array memory image — the architectural
  /// state a differential oracle compares bit-for-bit across simulators.
  uint64_t memoryHash() const;

  /// Begins executing \p F with \p Args. Any previous call stack must have
  /// finished (done() == true).
  void startCall(const Function *F, const std::vector<Value> &Args);

  /// Begins executing mid-function: one frame for \p F positioned at
  /// (\p Block, \p Index) with the given register file. Used to launch
  /// speculative ghost contexts at a loop's iteration entry.
  void startAt(const Function *F, BlockId Block, uint32_t Index,
               std::vector<Value> Regs);

  /// True when the call stack is empty (the start call returned).
  bool done() const { return Stack.empty(); }

  /// Executes exactly one instruction. Must not be called when done().
  StepResult step();

  /// Runs until done() or \p MaxSteps executed; returns steps executed.
  uint64_t run(uint64_t MaxSteps = ~0ull);

  /// The value returned by the finished start call.
  Value returnValue() const { return RetValue; }

  /// Total instructions executed since construction/reset.
  uint64_t instrCount() const { return InstrsExecuted; }

  /// Text emitted by print_int/print_fp since reset.
  const std::string &output() const { return Output; }

  /// The current innermost frame (for inspection by drivers).
  const Frame &topFrame() const {
    assert(!Stack.empty() && "no active frame");
    return Stack.back();
  }
  Frame &topFrame() {
    assert(!Stack.empty() && "no active frame");
    return Stack.back();
  }

  size_t stackDepth() const { return Stack.size(); }

  /// Frame at \p Depth (0 = outermost start call).
  const Frame &frame(size_t Depth) const {
    assert(Depth < Stack.size() && "frame depth out of range");
    return Stack[Depth];
  }

  /// The machine's deterministic RNG (rnd() builtin state).
  Random &rng() { return Rng; }

  /// Memory-read/write hooks used by the SPT simulator to redirect
  /// speculative accesses into a buffer. When set, they fully replace the
  /// default array access. Plain profiling leaves them unset.
  struct MemHooks {
    virtual ~MemHooks();
    /// Returns the loaded value for \p Addr; \p Fallback is the value in
    /// main memory.
    virtual Value onLoad(uint64_t Addr, Value Fallback) = 0;
    /// Returns true when the store was consumed (buffered); false writes
    /// through to main memory.
    virtual bool onStore(uint64_t Addr, Value V) = 0;
  };
  void setMemHooks(MemHooks *Hooks) { Hooks_ = Hooks; }

private:
  Value evalBuiltin(const Function &Callee, const std::vector<Value> &Args);

  const Module &M;
  std::vector<std::vector<Value>> OwnMemory;
  /// Points at OwnMemory, or at another interpreter's memory image.
  std::vector<std::vector<Value>> *Mem;
  std::vector<uint64_t> ArrayBase;
  std::vector<Frame> Stack;
  Value RetValue;
  uint64_t InstrsExecuted = 0;
  std::string Output;
  Random Rng;
  InterpOptions Opts;
  MemHooks *Hooks_ = nullptr;
};

/// Convenience: interprets \p FnName(\p Args) in a fresh interpreter and
/// returns (return value, printed output).
struct RunOutcome {
  Value Result;
  std::string Output;
  uint64_t Instrs = 0;
};
RunOutcome runFunction(const Module &M, const std::string &FnName,
                       const std::vector<Value> &Args = {},
                       uint64_t MaxSteps = 500000000ull);

} // namespace spt

#endif // SPT_INTERP_INTERP_H
