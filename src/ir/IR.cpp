//===- ir/IR.cpp - Instructions, blocks, functions, modules --------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/Debug.h"

using namespace spt;

const char *spt::typeName(Type Ty) {
  switch (Ty) {
  case Type::Int:
    return "int";
  case Type::Fp:
    return "fp";
  case Type::Void:
    return "void";
  }
  spt_unreachable("unknown type");
}

BasicBlock *Function::addBlock(std::string Label) {
  assert(!External && "external functions have no blocks");
  auto Id = static_cast<BlockId>(Blocks.size());
  Blocks.push_back(std::make_unique<BasicBlock>(Id, std::move(Label)));
  return Blocks.back().get();
}

size_t Function::countInstrs() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    for (const Instr &I : BB->Instrs)
      if (!isTerminator(I.Op))
        ++N;
  return N;
}

Function *Module::addFunction(std::string Name, Type RetTy,
                              unsigned NumParams, bool External) {
  assert(!findFunction(Name) && "duplicate function name");
  Funcs.push_back(
      std::make_unique<Function>(std::move(Name), RetTy, NumParams, External));
  return Funcs.back().get();
}

uint32_t Module::addArray(std::string Name, Type ElemTy, uint64_t Size) {
  for (const ArrayDecl &A : Arrays)
    assert(A.Name != Name && "duplicate array name");
  Arrays.push_back(ArrayDecl{std::move(Name), ElemTy, Size});
  return static_cast<uint32_t>(Arrays.size() - 1);
}

Function *Module::findFunction(const std::string &Name) {
  for (auto &F : Funcs)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

const Function *Module::findFunction(const std::string &Name) const {
  for (const auto &F : Funcs)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

uint32_t Module::indexOf(const Function *F) const {
  for (size_t I = 0; I != Funcs.size(); ++I)
    if (Funcs[I].get() == F)
      return static_cast<uint32_t>(I);
  spt_unreachable("function does not belong to this module");
}

uint32_t Module::arrayIdOf(const std::string &Name) const {
  for (size_t I = 0; I != Arrays.size(); ++I)
    if (Arrays[I].Name == Name)
      return static_cast<uint32_t>(I);
  spt_unreachable("unknown array name");
}
