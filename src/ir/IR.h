//===- ir/IR.h - Instructions, blocks, functions, modules ----------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPT intermediate representation: a register-based control-flow-graph
/// IR. It stands in for ORC's WHIRL/SSA form in the paper. Key properties
/// the SPT framework relies on:
///
///  - Every instruction carries a *stable statement id* unique within its
///    function. Dependence graphs, partitions and profiles refer to
///    statements by id, so they survive code motion.
///  - Registers are function-local virtual registers. Scalar dataflow is
///    recovered by reaching-definitions analysis (analysis/ReachingDefs.h),
///    which distinguishes intra-iteration from cross-iteration reaching
///    definitions exactly as the paper's dependence graph requires.
///  - Memory is a set of module-level arrays; Load/Store name the array by
///    id, which doubles as the type-based alias class of the access.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_IR_IR_H
#define SPT_IR_IR_H

#include "ir/Opcode.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spt {

class DecodedModule;

/// A virtual register index, local to a Function.
using Reg = uint32_t;

/// Sentinel for "no register" (e.g. a void call result).
inline constexpr Reg NoReg = ~0u;

/// A basic block index, local to a Function.
using BlockId = uint32_t;

/// Sentinel for "no block".
inline constexpr BlockId NoBlock = ~0u;

/// A stable per-function statement id. Ids survive code motion and are the
/// names by which dependence graphs and partitions refer to statements.
using StmtId = uint32_t;

/// Sentinel for "no statement".
inline constexpr StmtId NoStmt = ~0u;

/// Value types of the IR. Int is 64-bit signed; Fp is IEEE double.
enum class Type : uint8_t { Int, Fp, Void };

/// Returns a printable name for \p Ty.
const char *typeName(Type Ty);

/// A single IR instruction. One definition at most (Dst); operands are
/// registers in Srcs. IntImm is overloaded per opcode: the constant for
/// ConstInt, the array id for Load/Store, the callee function index for
/// Call, and the loop id for SptFork/SptKill.
struct Instr {
  Opcode Op = Opcode::ConstInt;
  Type Ty = Type::Int;
  Reg Dst = NoReg;
  std::vector<Reg> Srcs;
  int64_t IntImm = 0;
  double FpImm = 0.0;
  StmtId Id = NoStmt;

  /// Returns the array id of a Load/Store.
  uint32_t arrayId() const {
    assert((Op == Opcode::Load || Op == Opcode::Store) && "not a memory op");
    return static_cast<uint32_t>(IntImm);
  }

  /// Returns the callee function index of a Call.
  uint32_t calleeIndex() const {
    assert(Op == Opcode::Call && "not a call");
    return static_cast<uint32_t>(IntImm);
  }
};

/// A basic block: straight-line instructions ending in a terminator, plus
/// successor edges (block ids). Predecessors are derivable; analyses that
/// need them compute them via CfgInfo.
class BasicBlock {
public:
  BasicBlock(BlockId Id, std::string Label)
      : Id(Id), Label(std::move(Label)) {}

  BlockId id() const { return Id; }
  const std::string &label() const { return Label; }
  void setLabel(std::string L) { Label = std::move(L); }

  std::vector<Instr> Instrs;
  std::vector<BlockId> Succs;

  /// Returns the terminator, which must exist in a verified function.
  const Instr &terminator() const {
    assert(!Instrs.empty() && isTerminator(Instrs.back().Op) &&
           "block has no terminator");
    return Instrs.back();
  }

  /// Returns true if the block ends in a terminator.
  bool hasTerminator() const {
    return !Instrs.empty() && isTerminator(Instrs.back().Op);
  }

private:
  BlockId Id;
  std::string Label;
};

/// A function: a CFG of basic blocks over a private register file.
/// Parameters occupy registers [0, NumParams). External functions (runtime
/// builtins such as fabs or rnd) have no blocks.
class Function {
public:
  Function(std::string Name, Type RetTy, unsigned NumParams, bool External)
      : Name(std::move(Name)), RetTy(RetTy), NumParams(NumParams),
        External(External), NumRegs(NumParams) {}

  const std::string &name() const { return Name; }
  Type returnType() const { return RetTy; }
  unsigned numParams() const { return NumParams; }
  bool isExternal() const { return External; }

  /// Declared parameter types; size equals numParams() once populated.
  std::vector<Type> ParamTypes;

  /// Allocates a fresh virtual register.
  Reg newReg() { return NumRegs++; }
  unsigned numRegs() const { return NumRegs; }

  /// Allocates a fresh stable statement id.
  StmtId newStmtId() { return NextStmtId++; }
  StmtId maxStmtId() const { return NextStmtId; }

  /// Creates a new basic block with the given debug label.
  BasicBlock *addBlock(std::string Label);

  BasicBlock *block(BlockId Id) {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id].get();
  }
  const BasicBlock *block(BlockId Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id].get();
  }

  size_t numBlocks() const { return Blocks.size(); }

  /// The entry block is always block 0 in a non-external function.
  BlockId entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return 0;
  }

  /// Iteration over blocks in id order.
  auto begin() { return Blocks.begin(); }
  auto end() { return Blocks.end(); }
  auto begin() const { return Blocks.begin(); }
  auto end() const { return Blocks.end(); }

  /// Returns the total number of non-terminator instructions, a static
  /// proxy for "loop body size" style measures at function granularity.
  size_t countInstrs() const;

private:
  std::string Name;
  Type RetTy;
  unsigned NumParams;
  bool External;
  unsigned NumRegs;
  StmtId NextStmtId = 0;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

/// A module-level array. Arrays are the only memory; the array id is also
/// the access's type-based alias class (distinct arrays never alias).
struct ArrayDecl {
  std::string Name;
  Type ElemTy = Type::Int;
  uint64_t Size = 0; // Number of elements.
};

/// A whole program: functions (including external builtins) and arrays.
class Module {
public:
  /// Creates a function and returns it; the module owns it.
  Function *addFunction(std::string Name, Type RetTy, unsigned NumParams,
                        bool External = false);

  /// Declares an array and returns its id.
  uint32_t addArray(std::string Name, Type ElemTy, uint64_t Size);

  Function *function(uint32_t Index) {
    assert(Index < Funcs.size() && "function index out of range");
    return Funcs[Index].get();
  }
  const Function *function(uint32_t Index) const {
    assert(Index < Funcs.size() && "function index out of range");
    return Funcs[Index].get();
  }

  /// Returns the function with \p Name, or null.
  Function *findFunction(const std::string &Name);
  const Function *findFunction(const std::string &Name) const;

  /// Returns the index of \p F, which must belong to this module.
  uint32_t indexOf(const Function *F) const;

  size_t numFunctions() const { return Funcs.size(); }

  const ArrayDecl &array(uint32_t Id) const {
    assert(Id < Arrays.size() && "array id out of range");
    return Arrays[Id];
  }
  size_t numArrays() const { return Arrays.size(); }

  /// Returns the array id for \p Name; asserts it exists.
  uint32_t arrayIdOf(const std::string &Name) const;

  /// The module's cache of pre-decoded interpreter images (lazily built;
  /// defined in interp/Decode.cpp). The cache is shared by every
  /// Interpreter over this module — profilers, simulators and per-fork
  /// ghost contexts — and revalidates per-function fingerprints, so
  /// in-place transforms of a function are safe.
  DecodedModule &decodeCache() const;

private:
  std::vector<std::unique_ptr<Function>> Funcs;
  std::vector<ArrayDecl> Arrays;
  /// shared_ptr so IR-only translation units never need the complete
  /// DecodedModule type.
  mutable std::shared_ptr<DecodedModule> DecodeCache;
  mutable std::once_flag DecodeCacheOnce;
};

} // namespace spt

#endif // SPT_IR_IR_H
