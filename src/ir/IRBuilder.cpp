//===- ir/IRBuilder.cpp - Convenience construction of IR -----------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include <cassert>

using namespace spt;

Reg IRBuilder::emit(Opcode Op, Type Ty, std::vector<Reg> Srcs, int64_t IntImm,
                    double FpImm, bool WantValue) {
  assert(Block && "no insertion block set");
  assert(!Block->hasTerminator() && "appending after a terminator");
  Instr I;
  I.Op = Op;
  I.Ty = Ty;
  I.Srcs = std::move(Srcs);
  I.IntImm = IntImm;
  I.FpImm = FpImm;
  I.Id = F->newStmtId();
  if (WantValue && producesValue(Op))
    I.Dst = F->newReg();
  Block->Instrs.push_back(std::move(I));
  return Block->Instrs.back().Dst;
}

void IRBuilder::copyTo(Reg Dst, Type Ty, Reg Src) {
  assert(Block && "no insertion block set");
  assert(!Block->hasTerminator() && "appending after a terminator");
  Instr I;
  I.Op = Opcode::Copy;
  I.Ty = Ty;
  I.Dst = Dst;
  I.Srcs = {Src};
  I.Id = F->newStmtId();
  Block->Instrs.push_back(std::move(I));
}

void IRBuilder::br(Reg Cond, BasicBlock *Then, BasicBlock *Else) {
  emit(Opcode::Br, Type::Void, {Cond}, 0, 0.0, /*WantValue=*/false);
  Block->Succs = {Then->id(), Else->id()};
}

void IRBuilder::jmp(BasicBlock *Target) {
  emit(Opcode::Jmp, Type::Void, {}, 0, 0.0, /*WantValue=*/false);
  Block->Succs = {Target->id()};
}

void IRBuilder::ret() {
  emit(Opcode::Ret, Type::Void, {}, 0, 0.0, /*WantValue=*/false);
  Block->Succs.clear();
}

void IRBuilder::ret(Reg Value) {
  emit(Opcode::Ret, Type::Void, {Value}, 0, 0.0, /*WantValue=*/false);
  Block->Succs.clear();
}
