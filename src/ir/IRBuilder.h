//===- ir/IRBuilder.h - Convenience construction of IR -------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A builder that appends instructions to a current insertion block,
/// allocating result registers and stable statement ids. Used by the SPTc
/// frontend lowering, by the SPT/SVP transformations, and by tests that
/// hand-construct loops.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_IR_IRBUILDER_H
#define SPT_IR_IRBUILDER_H

#include "ir/IR.h"

namespace spt {

/// Appends instructions to a designated basic block of one function.
class IRBuilder {
public:
  explicit IRBuilder(Function *F) : F(F) {}

  Function *function() { return F; }

  /// Sets the block that subsequent emissions append to.
  void setInsertBlock(BasicBlock *BB) { Block = BB; }
  BasicBlock *insertBlock() { return Block; }

  /// Creates a block (does not change the insertion point).
  BasicBlock *makeBlock(std::string Label) {
    return F->addBlock(std::move(Label));
  }

  /// Emits a generic instruction; allocates Dst when the opcode produces a
  /// value and \p WantValue is true. Returns the result register or NoReg.
  Reg emit(Opcode Op, Type Ty, std::vector<Reg> Srcs, int64_t IntImm = 0,
           double FpImm = 0.0, bool WantValue = true);

  // Constants and moves.
  Reg constInt(int64_t V) { return emit(Opcode::ConstInt, Type::Int, {}, V); }
  Reg constFp(double V) {
    return emit(Opcode::ConstFp, Type::Fp, {}, 0, V);
  }
  Reg copy(Type Ty, Reg Src) { return emit(Opcode::Copy, Ty, {Src}); }

  /// Emits a Copy whose destination is the existing register \p Dst.
  void copyTo(Reg Dst, Type Ty, Reg Src);

  // Integer arithmetic.
  Reg add(Reg A, Reg B) { return emit(Opcode::Add, Type::Int, {A, B}); }
  Reg sub(Reg A, Reg B) { return emit(Opcode::Sub, Type::Int, {A, B}); }
  Reg mul(Reg A, Reg B) { return emit(Opcode::Mul, Type::Int, {A, B}); }
  Reg div(Reg A, Reg B) { return emit(Opcode::Div, Type::Int, {A, B}); }
  Reg rem(Reg A, Reg B) { return emit(Opcode::Rem, Type::Int, {A, B}); }

  // Floating point arithmetic.
  Reg fadd(Reg A, Reg B) { return emit(Opcode::FAdd, Type::Fp, {A, B}); }
  Reg fsub(Reg A, Reg B) { return emit(Opcode::FSub, Type::Fp, {A, B}); }
  Reg fmul(Reg A, Reg B) { return emit(Opcode::FMul, Type::Fp, {A, B}); }
  Reg fdiv(Reg A, Reg B) { return emit(Opcode::FDiv, Type::Fp, {A, B}); }
  Reg fabs(Reg A) { return emit(Opcode::FAbs, Type::Fp, {A}); }

  // Comparisons.
  Reg cmpLt(Reg A, Reg B) { return emit(Opcode::CmpLt, Type::Int, {A, B}); }
  Reg cmpLe(Reg A, Reg B) { return emit(Opcode::CmpLe, Type::Int, {A, B}); }
  Reg cmpEq(Reg A, Reg B) { return emit(Opcode::CmpEq, Type::Int, {A, B}); }
  Reg cmpNe(Reg A, Reg B) { return emit(Opcode::CmpNe, Type::Int, {A, B}); }

  // Memory.
  Reg load(Type Ty, uint32_t ArrayId, Reg Index) {
    return emit(Opcode::Load, Ty, {Index}, ArrayId);
  }
  void store(uint32_t ArrayId, Reg Index, Reg Value) {
    emit(Opcode::Store, Type::Void, {Index, Value}, ArrayId, 0.0,
         /*WantValue=*/false);
  }

  // Calls.
  Reg call(Type RetTy, uint32_t CalleeIndex, std::vector<Reg> Args) {
    return emit(Opcode::Call, RetTy, std::move(Args), CalleeIndex, 0.0,
                RetTy != Type::Void);
  }

  // Control flow. Successor lists are set on the insertion block.
  void br(Reg Cond, BasicBlock *Then, BasicBlock *Else);
  void jmp(BasicBlock *Target);
  void ret();
  void ret(Reg Value);

  // SPT markers.
  void sptFork(int64_t LoopId) {
    emit(Opcode::SptFork, Type::Void, {}, LoopId, 0.0, /*WantValue=*/false);
  }
  void sptKill(int64_t LoopId) {
    emit(Opcode::SptKill, Type::Void, {}, LoopId, 0.0, /*WantValue=*/false);
  }

private:
  Function *F;
  BasicBlock *Block = nullptr;
};

} // namespace spt

#endif // SPT_IR_IRBUILDER_H
