//===- ir/IRPrinter.cpp - Textual dump of the IR -------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/IR.h"
#include "support/OStream.h"

using namespace spt;

static void printReg(OStream &OS, Reg R) {
  if (R == NoReg)
    OS << "r<none>";
  else
    OS << 'r' << R;
}

void spt::printInstr(OStream &OS, const Module &M, const Function &F,
                     const Instr &I) {
  if (I.Dst != NoReg) {
    printReg(OS, I.Dst);
    OS << " = ";
  }
  OS << opcodeName(I.Op);

  switch (I.Op) {
  case Opcode::ConstInt:
    OS << ' ' << I.IntImm;
    break;
  case Opcode::ConstFp:
    OS << ' ';
    OS.writeDouble(I.FpImm, 17);
    break;
  case Opcode::Load:
    OS << ' ' << M.array(I.arrayId()).Name << '[';
    printReg(OS, I.Srcs[0]);
    OS << ']';
    break;
  case Opcode::Store:
    OS << ' ' << M.array(I.arrayId()).Name << '[';
    printReg(OS, I.Srcs[0]);
    OS << "], ";
    printReg(OS, I.Srcs[1]);
    break;
  case Opcode::Call: {
    OS << ' ' << M.function(I.calleeIndex())->name() << '(';
    for (size_t A = 0; A != I.Srcs.size(); ++A) {
      if (A != 0)
        OS << ", ";
      printReg(OS, I.Srcs[A]);
    }
    OS << ')';
    break;
  }
  case Opcode::SptFork:
  case Opcode::SptKill:
    OS << " loop" << I.IntImm;
    break;
  default:
    for (size_t A = 0; A != I.Srcs.size(); ++A) {
      OS << (A == 0 ? " " : ", ");
      printReg(OS, I.Srcs[A]);
    }
    break;
  }
  OS << "  ; id " << static_cast<uint64_t>(I.Id);
  (void)F;
}

void spt::printFunction(OStream &OS, const Module &M, const Function &F) {
  OS << typeName(F.returnType()) << ' ' << F.name() << '(';
  for (unsigned P = 0; P != F.numParams(); ++P) {
    if (P != 0)
      OS << ", ";
    OS << 'r' << P;
  }
  OS << ')';
  if (F.isExternal()) {
    OS << " external\n";
    return;
  }
  OS << " {\n";
  for (const auto &BB : F) {
    OS << BB->label() << ":  ; bb" << static_cast<uint64_t>(BB->id());
    if (!BB->Succs.empty()) {
      OS << " -> ";
      for (size_t S = 0; S != BB->Succs.size(); ++S) {
        if (S != 0)
          OS << ", ";
        OS << "bb" << static_cast<uint64_t>(BB->Succs[S]);
      }
    }
    OS << '\n';
    for (const Instr &I : BB->Instrs) {
      OS << "  ";
      printInstr(OS, M, F, I);
      OS << '\n';
    }
  }
  OS << "}\n";
}

void spt::printModule(OStream &OS, const Module &M) {
  for (size_t A = 0; A != M.numArrays(); ++A) {
    const ArrayDecl &D = M.array(static_cast<uint32_t>(A));
    OS << typeName(D.ElemTy) << ' ' << D.Name << '['
       << static_cast<uint64_t>(D.Size) << "]\n";
  }
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    OS << '\n';
    printFunction(OS, M, *M.function(static_cast<uint32_t>(I)));
  }
}

std::string spt::functionToString(const Module &M, const Function &F) {
  StringOStream OS;
  printFunction(OS, M, F);
  return OS.str();
}

std::string spt::instrToString(const Module &M, const Function &F,
                               const Instr &I) {
  StringOStream OS;
  printInstr(OS, M, F, I);
  return OS.str();
}
