//===- ir/IRPrinter.h - Textual dump of the IR ---------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable dumps of modules, functions and instructions. Used by
/// tests (golden-text comparisons of transformations) and for debugging.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_IR_IRPRINTER_H
#define SPT_IR_IRPRINTER_H

#include <string>

namespace spt {

class Module;
class Function;
struct Instr;
class OStream;

/// Prints one instruction, e.g. "r5 = add r3, r4  ; id 12".
void printInstr(OStream &OS, const Module &M, const Function &F,
                const Instr &I);

/// Prints a function with block labels and successor edges.
void printFunction(OStream &OS, const Module &M, const Function &F);

/// Prints the whole module: arrays, then functions.
void printModule(OStream &OS, const Module &M);

/// Convenience: returns printFunction output as a string.
std::string functionToString(const Module &M, const Function &F);

/// Convenience: returns printInstr output as a string.
std::string instrToString(const Module &M, const Function &F, const Instr &I);

} // namespace spt

#endif // SPT_IR_IRPRINTER_H
