//===- ir/Opcode.cpp - Instruction opcodes and classification -------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include "support/Debug.h"

using namespace spt;

const char *spt::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Neg:
    return "neg";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Not:
    return "not";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  case Opcode::Abs:
    return "abs";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FNeg:
    return "fneg";
  case Opcode::FAbs:
    return "fabs";
  case Opcode::FMin:
    return "fmin";
  case Opcode::FMax:
    return "fmax";
  case Opcode::IntToFp:
    return "itof";
  case Opcode::FpToInt:
    return "ftoi";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpGt:
    return "cmpgt";
  case Opcode::CmpGe:
    return "cmpge";
  case Opcode::FCmpEq:
    return "fcmpeq";
  case Opcode::FCmpNe:
    return "fcmpne";
  case Opcode::FCmpLt:
    return "fcmplt";
  case Opcode::FCmpLe:
    return "fcmple";
  case Opcode::FCmpGt:
    return "fcmpgt";
  case Opcode::FCmpGe:
    return "fcmpge";
  case Opcode::Copy:
    return "copy";
  case Opcode::ConstInt:
    return "iconst";
  case Opcode::ConstFp:
    return "fconst";
  case Opcode::Select:
    return "select";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::Br:
    return "br";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Ret:
    return "ret";
  case Opcode::SptFork:
    return "spt_fork";
  case Opcode::SptKill:
    return "spt_kill";
  }
  spt_unreachable("unknown opcode");
}

OpClass spt::opcodeClass(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Neg:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Not:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::Abs:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::Copy:
  case Opcode::ConstInt:
  case Opcode::ConstFp:
  case Opcode::Select:
  case Opcode::IntToFp:
  case Opcode::FpToInt:
    return OpClass::IntAlu;
  case Opcode::Mul:
    return OpClass::IntMul;
  case Opcode::Div:
  case Opcode::Rem:
    return OpClass::IntDiv;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FNeg:
  case Opcode::FAbs:
  case Opcode::FMin:
  case Opcode::FMax:
  case Opcode::FCmpEq:
  case Opcode::FCmpNe:
  case Opcode::FCmpLt:
  case Opcode::FCmpLe:
  case Opcode::FCmpGt:
  case Opcode::FCmpGe:
    return OpClass::FpAlu;
  case Opcode::FMul:
    return OpClass::FpMul;
  case Opcode::FDiv:
    return OpClass::FpDiv;
  case Opcode::Load:
    return OpClass::MemLoad;
  case Opcode::Store:
    return OpClass::MemStore;
  case Opcode::Call:
    return OpClass::Call;
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    return OpClass::Branch;
  case Opcode::SptFork:
  case Opcode::SptKill:
    return OpClass::Marker;
  }
  spt_unreachable("unknown opcode");
}

bool spt::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::Jmp || Op == Opcode::Ret;
}

bool spt::touchesMemory(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store || Op == Opcode::Call;
}

bool spt::hasSideEffects(Opcode Op) {
  return Op == Opcode::Store || Op == Opcode::Call || isTerminator(Op) ||
         Op == Opcode::SptFork || Op == Opcode::SptKill;
}

int spt::expectedNumSrcs(Opcode Op) {
  switch (Op) {
  case Opcode::ConstInt:
  case Opcode::ConstFp:
  case Opcode::Jmp:
  case Opcode::SptFork:
  case Opcode::SptKill:
    return 0;
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::Abs:
  case Opcode::FNeg:
  case Opcode::FAbs:
  case Opcode::IntToFp:
  case Opcode::FpToInt:
  case Opcode::Copy:
  case Opcode::Load:
  case Opcode::Br:
    return 1;
  case Opcode::Select:
    return 3;
  case Opcode::Call:
  case Opcode::Ret:
    return -1;
  default:
    return 2;
  }
}

bool spt::producesValue(Opcode Op) {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
  case Opcode::SptFork:
  case Opcode::SptKill:
    return false;
  case Opcode::Call:
    return true; // May produce a value; Dst may still be NoReg for void.
  default:
    return true;
  }
}

bool spt::isComparison(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::FCmpEq:
  case Opcode::FCmpNe:
  case Opcode::FCmpLt:
  case Opcode::FCmpLe:
  case Opcode::FCmpGt:
  case Opcode::FCmpGe:
    return true;
  default:
    return false;
  }
}
