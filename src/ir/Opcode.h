//===- ir/Opcode.h - Instruction opcodes and classification ---------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opcode set of the SPT IR, together with classification predicates
/// used by analyses (terminators, memory operations, side effects) and by
/// the cost model / simulator (operation weight classes). The IR plays the
/// role of ORC's WHIRL/SSA representation in the paper: the cost-graph nodes
/// are operations (paper: Codereps), statements are single instructions.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_IR_OPCODE_H
#define SPT_IR_OPCODE_H

#include <cstdint>

namespace spt {

/// Every operation the SPT IR can express.
enum class Opcode : uint8_t {
  // Integer arithmetic (64-bit two's complement).
  Add,
  Sub,
  Mul,
  Div, // Traps-free: divide by zero yields 0 (checked by the interpreter).
  Rem, // Remainder; by-zero yields 0.
  Neg,
  And,
  Or,
  Xor,
  Shl,
  Shr, // Arithmetic shift right.
  Not,
  Min,
  Max,
  Abs,

  // Floating point (IEEE double).
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,
  FAbs,
  FMin,
  FMax,

  // Conversions.
  IntToFp,
  FpToInt,

  // Comparisons; result is an integer 0/1.
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  FCmpEq,
  FCmpNe,
  FCmpLt,
  FCmpLe,
  FCmpGt,
  FCmpGe,

  // Data movement.
  Copy,     // Dst = Src0.
  ConstInt, // Dst = IntImm.
  ConstFp,  // Dst = FpImm.
  Select,   // Dst = Src0 ? Src1 : Src2.

  // Memory. Arrays are module-level; IntImm holds the array id.
  Load,  // Dst = Array[Src0].
  Store, // Array[Src0] = Src1.

  // Calls. IntImm holds the callee function index; Srcs are arguments.
  Call,

  // Control flow. Branch targets live in the block successor list.
  Br,  // Conditional: Src0 != 0 -> Succs[0], else Succs[1].
  Jmp, // Unconditional: -> Succs[0].
  Ret, // Optional Src0 is the return value.

  // Speculative-parallel-threading markers inserted by the SPT
  // transformation (paper Figure 2). IntImm holds the loop id.
  SptFork,
  SptKill,
};

/// Coarse operation classes used for latency/weight lookup.
enum class OpClass : uint8_t {
  IntAlu,
  IntMul,
  IntDiv,
  FpAlu,
  FpMul,
  FpDiv,
  MemLoad,
  MemStore,
  Branch,
  Call,
  Marker, // SptFork/SptKill; cost charged separately by the simulator.
};

/// Returns a stable human-readable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Returns the weight/latency class of \p Op.
OpClass opcodeClass(Opcode Op);

/// Returns true for Br/Jmp/Ret, the only ops allowed to end a block.
bool isTerminator(Opcode Op);

/// Returns true if the op reads or writes memory (Load/Store/Call).
bool touchesMemory(Opcode Op);

/// Returns true if the op has effects beyond writing its Dst register:
/// stores, calls, control flow and SPT markers.
bool hasSideEffects(Opcode Op);

/// Returns the number of register operands \p Op expects, or -1 when the
/// count is variable (Call) or optional (Ret).
int expectedNumSrcs(Opcode Op);

/// Returns true if the op produces a result register.
bool producesValue(Opcode Op);

/// Returns true if the opcode is a comparison producing 0/1.
bool isComparison(Opcode Op);

} // namespace spt

#endif // SPT_IR_OPCODE_H
