//===- ir/Verifier.cpp - IR structural invariants ------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IR.h"

#include <set>
#include <string>

using namespace spt;

namespace {

/// Accumulates the first verification failure.
class VerifyContext {
public:
  VerifyContext(const Module &M, const Function &F) : M(M), F(F) {}

  bool failed() const { return !Message.empty(); }
  const std::string &message() const { return Message; }

  /// Records a failure (keeps only the first).
  void fail(const std::string &What) {
    if (Message.empty())
      Message = "function '" + F.name() + "': " + What;
  }

  void checkInstr(const BasicBlock &BB, size_t Idx, const Instr &I);

private:
  const Module &M;
  const Function &F;
  std::string Message;
};

} // namespace

void VerifyContext::checkInstr(const BasicBlock &BB, size_t Idx,
                               const Instr &I) {
  const std::string Where = "block '" + BB.label() + "' instr #" +
                            std::to_string(Idx) + " (" + opcodeName(I.Op) +
                            ")";

  if (isTerminator(I.Op) && Idx + 1 != BB.Instrs.size())
    return fail(Where + ": terminator is not last in block");

  const int Expected = expectedNumSrcs(I.Op);
  if (Expected >= 0 && I.Srcs.size() != static_cast<size_t>(Expected))
    return fail(Where + ": expected " + std::to_string(Expected) +
                " operands, got " + std::to_string(I.Srcs.size()));
  if (I.Op == Opcode::Ret && I.Srcs.size() > 1)
    return fail(Where + ": ret takes at most one operand");

  for (Reg R : I.Srcs)
    if (R >= F.numRegs())
      return fail(Where + ": source register out of range");

  if (I.Dst != NoReg) {
    if (!producesValue(I.Op))
      return fail(Where + ": opcode cannot define a register");
    if (I.Dst >= F.numRegs())
      return fail(Where + ": destination register out of range");
  }

  if (I.Op == Opcode::Load || I.Op == Opcode::Store) {
    if (I.IntImm < 0 || static_cast<size_t>(I.IntImm) >= M.numArrays())
      return fail(Where + ": array id out of range");
  }

  if (I.Op == Opcode::Call) {
    if (I.IntImm < 0 || static_cast<size_t>(I.IntImm) >= M.numFunctions())
      return fail(Where + ": callee index out of range");
    const Function *Callee = M.function(I.calleeIndex());
    if (I.Srcs.size() != Callee->numParams())
      return fail(Where + ": call to '" + Callee->name() + "' expects " +
                  std::to_string(Callee->numParams()) + " args, got " +
                  std::to_string(I.Srcs.size()));
    if (Callee->returnType() == Type::Void && I.Dst != NoReg)
      return fail(Where + ": void call must not define a register");
  }
}

std::string spt::verifyFunction(const Module &M, const Function &F) {
  VerifyContext Ctx(M, F);
  if (F.isExternal())
    return std::string();

  if (F.numBlocks() == 0) {
    Ctx.fail("function has no blocks");
    return Ctx.message();
  }

  std::set<StmtId> SeenIds;
  for (const auto &BB : F) {
    if (BB->Instrs.empty()) {
      Ctx.fail("block '" + BB->label() + "' is empty");
      break;
    }
    if (!BB->hasTerminator()) {
      Ctx.fail("block '" + BB->label() + "' lacks a terminator");
      break;
    }

    // Successor arity must match the terminator.
    const Opcode Term = BB->Instrs.back().Op;
    const size_t WantSuccs =
        Term == Opcode::Br ? 2 : (Term == Opcode::Jmp ? 1 : 0);
    if (BB->Succs.size() != WantSuccs) {
      Ctx.fail("block '" + BB->label() + "' successor count mismatch");
      break;
    }
    for (BlockId S : BB->Succs)
      if (S >= F.numBlocks()) {
        Ctx.fail("block '" + BB->label() + "' has out-of-range successor");
        break;
      }

    for (size_t Idx = 0; Idx != BB->Instrs.size(); ++Idx) {
      const Instr &I = BB->Instrs[Idx];
      if (I.Id == NoStmt) {
        Ctx.fail("instruction without statement id");
        break;
      }
      if (!SeenIds.insert(I.Id).second) {
        Ctx.fail("duplicate statement id " + std::to_string(I.Id));
        break;
      }
      Ctx.checkInstr(*BB, Idx, I);
      if (Ctx.failed())
        break;
    }
    if (Ctx.failed())
      break;
  }
  return Ctx.message();
}

std::string spt::verifyModule(const Module &M) {
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    std::string Err = verifyFunction(M, *M.function(static_cast<uint32_t>(I)));
    if (!Err.empty())
      return Err;
  }
  return std::string();
}
