//===- ir/Verifier.h - IR structural invariants --------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the structural invariants every pass must preserve: terminators,
/// successor arities, operand counts, register/array/callee validity and
/// statement-id uniqueness. Run after the frontend and after every
/// transformation in tests.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_IR_VERIFIER_H
#define SPT_IR_VERIFIER_H

#include <string>

namespace spt {

class Module;
class Function;

/// Verifies \p F against \p M. Returns an empty string on success, or a
/// description of the first violation found.
std::string verifyFunction(const Module &M, const Function &F);

/// Verifies every function of \p M. Returns an empty string on success.
std::string verifyModule(const Module &M);

} // namespace spt

#endif // SPT_IR_VERIFIER_H
