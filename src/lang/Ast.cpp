//===- lang/Ast.cpp - SPTc abstract syntax trees --------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

using namespace spt;

ExprPtr spt::makeIntLit(int64_t V, SrcLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::IntLit, Loc);
  E->IntValue = V;
  return E;
}

ExprPtr spt::makeFpLit(double V, SrcLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::FpLit, Loc);
  E->FpValue = V;
  return E;
}

ExprPtr spt::makeVar(std::string Name, SrcLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Var, Loc);
  E->Name = std::move(Name);
  return E;
}

ExprPtr spt::makeIndex(std::string Name, ExprPtr Subscript, SrcLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Index, Loc);
  E->Name = std::move(Name);
  E->Lhs = std::move(Subscript);
  return E;
}

ExprPtr spt::makeUnary(UnOp Op, ExprPtr Operand, SrcLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Unary, Loc);
  E->UOp = Op;
  E->Lhs = std::move(Operand);
  return E;
}

ExprPtr spt::makeBinary(BinOp Op, ExprPtr Lhs, ExprPtr Rhs, SrcLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Binary, Loc);
  E->BOp = Op;
  E->Lhs = std::move(Lhs);
  E->Rhs = std::move(Rhs);
  return E;
}

ExprPtr spt::makeCond(ExprPtr C, ExprPtr T, ExprPtr F, SrcLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Cond, Loc);
  E->Lhs = std::move(C);
  E->Rhs = std::move(T);
  E->Aux = std::move(F);
  return E;
}

ExprPtr spt::makeCall(std::string Name, std::vector<ExprPtr> Args,
                      SrcLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Call, Loc);
  E->Name = std::move(Name);
  E->Args = std::move(Args);
  return E;
}
