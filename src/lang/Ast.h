//===- lang/Ast.h - SPTc abstract syntax trees ----------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPTc AST produced by the parser and consumed by lowering. Nodes use
/// a Kind tag for dispatch (the library does not use RTTI) and own their
/// children through unique_ptr.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_LANG_AST_H
#define SPT_LANG_AST_H

#include "ir/IR.h" // for spt::Type

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spt {

/// Source position for diagnostics.
struct SrcLoc {
  unsigned Line = 0;
  unsigned Col = 0;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary operators after desugaring (compound assignments and ++/-- are
/// desugared by the parser into plain assignments over these).
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LAnd, // Short-circuit logical and.
  LOr,  // Short-circuit logical or.
};

/// Unary operators.
enum class UnOp : uint8_t {
  Neg,    // -x
  LogNot, // !x
  BitNot, // ~x
};

/// Expression node kinds.
enum class ExprKind : uint8_t {
  IntLit,
  FpLit,
  Var,
  Index, // array[expr]
  Unary,
  Binary,
  Cond, // c ? a : b
  Call,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One expression node; fields are populated per Kind.
struct Expr {
  ExprKind Kind;
  SrcLoc Loc;

  // IntLit / FpLit.
  int64_t IntValue = 0;
  double FpValue = 0.0;

  // Var / Index / Call: the referenced name.
  std::string Name;

  // Unary / Binary / Cond / Index / Call children.
  UnOp UOp = UnOp::Neg;
  BinOp BOp = BinOp::Add;
  ExprPtr Lhs; // Unary operand; Binary lhs; Cond condition; Index subscript.
  ExprPtr Rhs; // Binary rhs; Cond then-value.
  ExprPtr Aux; // Cond else-value.
  std::vector<ExprPtr> Args; // Call arguments.

  explicit Expr(ExprKind K, SrcLoc L) : Kind(K), Loc(L) {}
};

/// Creates an integer literal node.
ExprPtr makeIntLit(int64_t V, SrcLoc Loc);
/// Creates a floating literal node.
ExprPtr makeFpLit(double V, SrcLoc Loc);
/// Creates a variable reference.
ExprPtr makeVar(std::string Name, SrcLoc Loc);
/// Creates an array subscript.
ExprPtr makeIndex(std::string Name, ExprPtr Subscript, SrcLoc Loc);
/// Creates a unary expression.
ExprPtr makeUnary(UnOp Op, ExprPtr Operand, SrcLoc Loc);
/// Creates a binary expression.
ExprPtr makeBinary(BinOp Op, ExprPtr Lhs, ExprPtr Rhs, SrcLoc Loc);
/// Creates a conditional (ternary) expression.
ExprPtr makeCond(ExprPtr C, ExprPtr T, ExprPtr F, SrcLoc Loc);
/// Creates a call expression.
ExprPtr makeCall(std::string Name, std::vector<ExprPtr> Args, SrcLoc Loc);

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Statement node kinds.
enum class StmtKind : uint8_t {
  Block,
  Decl,   // Local variable declaration with optional init.
  Assign, // Scalar or array-element assignment.
  ExprEval, // Expression evaluated for side effects (calls).
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One statement node; fields are populated per Kind.
struct Stmt {
  StmtKind Kind;
  SrcLoc Loc;

  // Block.
  std::vector<StmtPtr> Body;

  // Decl.
  Type DeclTy = Type::Int;
  std::string Name;

  // Assign: Target is a Var or Index expr; Value the right-hand side.
  ExprPtr Target;
  ExprPtr Value; // Also: Decl init, ExprEval expr, Return value, loop cond.

  // If / While / DoWhile / For.
  StmtPtr Then; // Loop body; if-then.
  StmtPtr Else; // If-else.
  StmtPtr Init; // For init.
  StmtPtr Step; // For step.

  explicit Stmt(StmtKind K, SrcLoc L) : Kind(K), Loc(L) {}
};

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

/// A function parameter.
struct ParamAst {
  Type Ty = Type::Int;
  std::string Name;
};

/// A parsed function definition.
struct FuncAst {
  Type RetTy = Type::Void;
  std::string Name;
  std::vector<ParamAst> Params;
  StmtPtr Body; // Always a Block.
  SrcLoc Loc;
};

/// A parsed global array declaration.
struct ArrayAst {
  Type ElemTy = Type::Int;
  std::string Name;
  uint64_t Size = 0;
  SrcLoc Loc;
};

/// A whole parsed translation unit.
struct ProgramAst {
  std::vector<ArrayAst> Arrays;
  std::vector<std::unique_ptr<FuncAst>> Funcs;
};

} // namespace spt

#endif // SPT_LANG_AST_H
