//===- lang/AstPrinter.cpp - SPTc source from an AST -----------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace spt;

namespace {

const char *binOpToken(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Rem:
    return "%";
  case BinOp::And:
    return "&";
  case BinOp::Or:
    return "|";
  case BinOp::Xor:
    return "^";
  case BinOp::Shl:
    return "<<";
  case BinOp::Shr:
    return ">>";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::LAnd:
    return "&&";
  case BinOp::LOr:
    return "||";
  }
  return "+";
}

const char *typeToken(Type Ty) {
  switch (Ty) {
  case Type::Int:
    return "int";
  case Type::Fp:
    return "fp";
  case Type::Void:
    return "void";
  }
  return "int";
}

std::string indentOf(unsigned Indent) {
  return std::string(2 * static_cast<size_t>(Indent), ' ');
}

/// Floating literal with round-trip precision; guarantees the spelling
/// lexes as an FpLiteral (a '.' or exponent is always present).
std::string fpLitSpelling(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  if (!std::strpbrk(Buf, ".eE"))
    std::strcat(Buf, ".0");
  return Buf;
}

void printStmt(const Stmt &S, unsigned Indent, std::string &Out);

/// A for-header clause: a Decl prints with its ';' (mirroring the
/// parser, which consumes it inside parseDecl), a simple statement
/// prints bare.
std::string forInitSource(const Stmt &S) {
  if (S.Kind == StmtKind::Decl) {
    std::string Out;
    printStmt(S, 0, Out);
    if (!Out.empty() && Out.back() == '\n')
      Out.pop_back();
    return Out;
  }
  assert(S.Kind == StmtKind::Assign || S.Kind == StmtKind::ExprEval);
  if (S.Kind == StmtKind::Assign)
    return exprToSource(*S.Target) + " = " + exprToSource(*S.Value) + ";";
  return exprToSource(*S.Value) + ";";
}

std::string forStepSource(const Stmt &S) {
  if (S.Kind == StmtKind::Assign)
    return exprToSource(*S.Target) + " = " + exprToSource(*S.Value);
  assert(S.Kind == StmtKind::ExprEval);
  return exprToSource(*S.Value);
}

/// Bodies of if/else and loops always print as braced blocks: canonical,
/// and immune to dangling-else reassociation.
void printBody(const Stmt *Body, unsigned Indent, std::string &Out) {
  Out += " {\n";
  if (Body) {
    if (Body->Kind == StmtKind::Block) {
      for (const StmtPtr &Child : Body->Body)
        if (Child)
          printStmt(*Child, Indent + 1, Out);
    } else {
      printStmt(*Body, Indent + 1, Out);
    }
  }
  Out += indentOf(Indent);
  Out += "}";
}

void printStmt(const Stmt &S, unsigned Indent, std::string &Out) {
  const std::string Ind = indentOf(Indent);
  switch (S.Kind) {
  case StmtKind::Block:
    Out += Ind + "{\n";
    for (const StmtPtr &Child : S.Body)
      if (Child)
        printStmt(*Child, Indent + 1, Out);
    Out += Ind + "}\n";
    return;
  case StmtKind::Decl:
    Out += Ind + typeToken(S.DeclTy) + std::string(" ") + S.Name;
    if (S.Value)
      Out += " = " + exprToSource(*S.Value);
    Out += ";\n";
    return;
  case StmtKind::Assign:
    Out += Ind + exprToSource(*S.Target) + " = " + exprToSource(*S.Value) +
           ";\n";
    return;
  case StmtKind::ExprEval:
    Out += Ind + exprToSource(*S.Value) + ";\n";
    return;
  case StmtKind::If:
    Out += Ind + "if (" + exprToSource(*S.Value) + ")";
    printBody(S.Then.get(), Indent, Out);
    if (S.Else) {
      Out += " else";
      printBody(S.Else.get(), Indent, Out);
    }
    Out += "\n";
    return;
  case StmtKind::While:
    Out += Ind + "while (" + exprToSource(*S.Value) + ")";
    printBody(S.Then.get(), Indent, Out);
    Out += "\n";
    return;
  case StmtKind::DoWhile:
    Out += Ind + "do";
    printBody(S.Then.get(), Indent, Out);
    Out += " while (" + exprToSource(*S.Value) + ");\n";
    return;
  case StmtKind::For:
    Out += Ind + "for (";
    Out += S.Init ? forInitSource(*S.Init) : ";";
    Out += " ";
    if (S.Value)
      Out += exprToSource(*S.Value);
    Out += "; ";
    if (S.Step)
      Out += forStepSource(*S.Step);
    Out += ")";
    printBody(S.Then.get(), Indent, Out);
    Out += "\n";
    return;
  case StmtKind::Return:
    Out += Ind + "return";
    if (S.Value) {
      Out += " ";
      Out += exprToSource(*S.Value);
    }
    Out += ";\n";
    return;
  case StmtKind::Break:
    Out += Ind + "break;\n";
    return;
  case StmtKind::Continue:
    Out += Ind + "continue;\n";
    return;
  }
}

} // namespace

std::string spt::exprToSource(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit: {
    if (E.IntValue >= 0)
      return std::to_string(E.IntValue);
    // The parser only produces non-negative literals; mutations can go
    // negative. INT64_MIN has no printable negation, so clamp it.
    const int64_t V =
        E.IntValue == INT64_MIN ? INT64_MIN + 1 : E.IntValue;
    // Built by append: `const char * + std::string&&` trips GCC 12's
    // bogus -Wrestrict at -O3 (GCC PR105651).
    std::string Out = "(0 - ";
    Out += std::to_string(-V);
    Out += ")";
    return Out;
  }
  case ExprKind::FpLit:
    if (E.FpValue < 0.0) {
      std::string Out = "(0.0 - ";
      Out += fpLitSpelling(-E.FpValue);
      Out += ")";
      return Out;
    }
    return fpLitSpelling(E.FpValue);
  case ExprKind::Var:
    return E.Name;
  case ExprKind::Index:
    return E.Name + "[" + exprToSource(*E.Lhs) + "]";
  case ExprKind::Unary: {
    const char *Tok = E.UOp == UnOp::Neg     ? "- "
                      : E.UOp == UnOp::LogNot ? "!"
                                              : "~";
    // Built by append: `const char * + std::string&&` trips GCC 12's
    // bogus -Wrestrict at -O3 (GCC PR105651).
    std::string Out = "(";
    Out += Tok;
    Out += exprToSource(*E.Lhs);
    Out += ")";
    return Out;
  }
  case ExprKind::Binary: {
    std::string Out = "(";
    Out += exprToSource(*E.Lhs);
    Out += " ";
    Out += binOpToken(E.BOp);
    Out += " ";
    Out += exprToSource(*E.Rhs);
    Out += ")";
    return Out;
  }
  case ExprKind::Cond: {
    std::string Out = "(";
    Out += exprToSource(*E.Lhs);
    Out += " ? ";
    Out += exprToSource(*E.Rhs);
    Out += " : ";
    Out += exprToSource(*E.Aux);
    Out += ")";
    return Out;
  }
  case ExprKind::Call: {
    std::string Out = E.Name + "(";
    for (size_t I = 0; I != E.Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += exprToSource(*E.Args[I]);
    }
    return Out + ")";
  }
  }
  return "0";
}

std::string spt::stmtToSource(const Stmt &S, unsigned Indent) {
  std::string Out;
  printStmt(S, Indent, Out);
  return Out;
}

std::string spt::programToSource(const ProgramAst &Program) {
  std::string Out;
  for (const ArrayAst &A : Program.Arrays)
    Out += std::string(typeToken(A.ElemTy)) + " " + A.Name + "[" +
           std::to_string(A.Size) + "];\n";
  if (!Program.Arrays.empty())
    Out += "\n";
  for (const std::unique_ptr<FuncAst> &F : Program.Funcs) {
    Out += std::string(typeToken(F->RetTy)) + " " + F->Name + "(";
    for (size_t I = 0; I != F->Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += std::string(typeToken(F->Params[I].Ty)) + " " +
             F->Params[I].Name;
    }
    Out += ")";
    printBody(F->Body.get(), 0, Out);
    Out += "\n\n";
  }
  return Out;
}

ExprPtr spt::cloneExpr(const Expr &E) {
  auto C = std::make_unique<Expr>(E.Kind, E.Loc);
  C->IntValue = E.IntValue;
  C->FpValue = E.FpValue;
  C->Name = E.Name;
  C->UOp = E.UOp;
  C->BOp = E.BOp;
  if (E.Lhs)
    C->Lhs = cloneExpr(*E.Lhs);
  if (E.Rhs)
    C->Rhs = cloneExpr(*E.Rhs);
  if (E.Aux)
    C->Aux = cloneExpr(*E.Aux);
  for (const ExprPtr &A : E.Args)
    C->Args.push_back(cloneExpr(*A));
  return C;
}

StmtPtr spt::cloneStmt(const Stmt &S) {
  auto C = std::make_unique<Stmt>(S.Kind, S.Loc);
  C->DeclTy = S.DeclTy;
  C->Name = S.Name;
  if (S.Target)
    C->Target = cloneExpr(*S.Target);
  if (S.Value)
    C->Value = cloneExpr(*S.Value);
  if (S.Then)
    C->Then = cloneStmt(*S.Then);
  if (S.Else)
    C->Else = cloneStmt(*S.Else);
  if (S.Init)
    C->Init = cloneStmt(*S.Init);
  if (S.Step)
    C->Step = cloneStmt(*S.Step);
  for (const StmtPtr &Child : S.Body)
    C->Body.push_back(Child ? cloneStmt(*Child) : nullptr);
  return C;
}

std::unique_ptr<FuncAst> spt::cloneFunc(const FuncAst &F) {
  auto C = std::make_unique<FuncAst>();
  C->RetTy = F.RetTy;
  C->Name = F.Name;
  C->Params = F.Params;
  C->Loc = F.Loc;
  if (F.Body)
    C->Body = cloneStmt(*F.Body);
  return C;
}

ProgramAst spt::cloneProgram(const ProgramAst &Program) {
  ProgramAst C;
  C.Arrays = Program.Arrays;
  for (const std::unique_ptr<FuncAst> &F : Program.Funcs)
    C.Funcs.push_back(cloneFunc(*F));
  return C;
}

unsigned spt::countStatements(const Stmt &S) {
  unsigned N = S.Kind == StmtKind::Block ? 0 : 1;
  for (const StmtPtr &Child : S.Body)
    if (Child)
      N += countStatements(*Child);
  if (S.Then)
    N += countStatements(*S.Then);
  if (S.Else)
    N += countStatements(*S.Else);
  // For-header Init/Step clauses are part of the loop statement, not
  // extra statements.
  return N;
}

unsigned spt::countStatements(const ProgramAst &Program) {
  unsigned N = 0;
  for (const std::unique_ptr<FuncAst> &F : Program.Funcs)
    if (F->Body)
      N += countStatements(*F->Body);
  return N;
}
