//===- lang/AstPrinter.h - SPTc source from an AST -------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a ProgramAst back to parseable SPTc source. The fuzzing
/// subsystem rewrites programs at the AST level (mutation operators,
/// delta-debugging reduction) and needs every rewritten tree to round-trip
/// through the real frontend, so the printer is deliberately canonical and
/// conservative: binary and conditional expressions are fully
/// parenthesized (no precedence reconstruction to get subtly wrong),
/// floating literals print with enough digits to round-trip exactly, and
/// negative integer literals — which the parser never produces but
/// mutations can — are emitted as unary negations.
///
/// Invariant tests enforce parse(print(parse(S))) == parse(print(...)):
/// printing is a fixpoint after one trip.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_LANG_ASTPRINTER_H
#define SPT_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace spt {

/// Renders \p E as a parseable expression.
std::string exprToSource(const Expr &E);

/// Renders \p S as parseable statement text at \p Indent levels (two
/// spaces each). Block statements include their braces.
std::string stmtToSource(const Stmt &S, unsigned Indent = 0);

/// Renders the whole program: arrays, then functions, in order.
std::string programToSource(const ProgramAst &Program);

/// Deep copies. Mutation and reduction build candidate programs by
/// cloning and editing; the parser's trees own children via unique_ptr,
/// so structural copies live here next to the printer.
ExprPtr cloneExpr(const Expr &E);
StmtPtr cloneStmt(const Stmt &S);
std::unique_ptr<FuncAst> cloneFunc(const FuncAst &F);
ProgramAst cloneProgram(const ProgramAst &Program);

/// Number of executable statements in the tree/program: every node except
/// the Block containers and for-header Init/Step clauses. This is the
/// statement count reducer reports and tests bound ("reproducer has <= N
/// statements").
unsigned countStatements(const Stmt &S);
unsigned countStatements(const ProgramAst &Program);

} // namespace spt

#endif // SPT_LANG_ASTPRINTER_H
