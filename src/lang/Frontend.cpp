//===- lang/Frontend.cpp - One-call SPTc compilation ------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Frontend.h"

#include "ir/IR.h"
#include "ir/Verifier.h"
#include "lang/Lower.h"
#include "lang/Parser.h"
#include "support/Debug.h"
#include "support/OStream.h"

using namespace spt;

CompileResult spt::compileSource(const std::string &Source) {
  CompileResult Result;

  Parser P(Source);
  ProgramAst Ast = P.parseProgram();
  if (!P.errors().empty()) {
    Result.Errors = P.errors();
    return Result;
  }

  LowerResult Lowered = lowerProgram(Ast);
  Result.M = std::move(Lowered.M);
  Result.Errors = std::move(Lowered.Errors);
  if (!Result.Errors.empty())
    return Result;

  if (std::string Err = verifyModule(*Result.M); !Err.empty())
    Result.Errors.push_back("verifier: " + Err);
  return Result;
}

std::unique_ptr<Module> spt::compileOrDie(const std::string &Source) {
  CompileResult Result = compileSource(Source);
  if (!Result.ok()) {
    for (const std::string &E : Result.Errors)
      errs() << "sptc error: " << E << '\n';
    spt_fatal("SPTc compilation failed");
  }
  return std::move(Result.M);
}
