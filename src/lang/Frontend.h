//===- lang/Frontend.h - One-call SPTc compilation -------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The convenience entry point used throughout tests, examples and the
/// workload registry: parse + lower + verify SPTc source in one call.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_LANG_FRONTEND_H
#define SPT_LANG_FRONTEND_H

#include <memory>
#include <string>
#include <vector>

namespace spt {

class Module;

/// Result of compiling SPTc source text.
struct CompileResult {
  std::unique_ptr<Module> M;
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Parses, lowers and verifies \p Source. On any parse/semantic/verifier
/// error the Errors list is non-empty and M may be null or partial.
CompileResult compileSource(const std::string &Source);

/// Like compileSource but aborts with the first error message; for tests
/// and workloads whose sources are known-good.
std::unique_ptr<Module> compileOrDie(const std::string &Source);

} // namespace spt

#endif // SPT_LANG_FRONTEND_H
