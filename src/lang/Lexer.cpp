//===- lang/Lexer.cpp - SPTc lexer ----------------------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Debug.h"

#include <cctype>
#include <cstdlib>

using namespace spt;

const char *spt::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "invalid token";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::FpLiteral:
    return "floating-point literal";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwFp:
    return "'fp'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwDo:
    return "'do'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semicolon:
    return "';'";
  case TokKind::Question:
    return "'?'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::StarAssign:
    return "'*='";
  case TokKind::SlashAssign:
    return "'/='";
  case TokKind::PercentAssign:
    return "'%='";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::MinusMinus:
    return "'--'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  }
  spt_unreachable("unknown token kind");
}

Lexer::Lexer(std::string Src) : Source(std::move(Src)) {}

char Lexer::peek(size_t Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/') && peek() != '\0')
        advance();
      if (peek() != '\0') {
        advance();
        advance();
      }
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokKind Kind) {
  Token T;
  T.Kind = Kind;
  T.Line = TokLine;
  T.Col = TokCol;
  return T;
}

Token Lexer::makeError(const std::string &Msg) {
  Token T = makeToken(TokKind::Error);
  T.Text = Msg;
  return T;
}

Token Lexer::lexNumber() {
  const size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsFp = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFp = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Ahead = 1;
    if (peek(Ahead) == '+' || peek(Ahead) == '-')
      ++Ahead;
    if (std::isdigit(static_cast<unsigned char>(peek(Ahead)))) {
      IsFp = true;
      while (Ahead-- > 0)
        advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
  }
  const std::string Spelling = Source.substr(Start, Pos - Start);
  Token T = makeToken(IsFp ? TokKind::FpLiteral : TokKind::IntLiteral);
  T.Text = Spelling;
  if (IsFp)
    T.FpValue = std::strtod(Spelling.c_str(), nullptr);
  else
    T.IntValue = std::strtoll(Spelling.c_str(), nullptr, 10);
  return T;
}

Token Lexer::lexIdentifier() {
  const size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  const std::string Name = Source.substr(Start, Pos - Start);

  struct Keyword {
    const char *Name;
    TokKind Kind;
  };
  static const Keyword Keywords[] = {
      {"int", TokKind::KwInt},       {"fp", TokKind::KwFp},
      {"void", TokKind::KwVoid},     {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},     {"while", TokKind::KwWhile},
      {"do", TokKind::KwDo},         {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn}, {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue},
  };
  for (const Keyword &K : Keywords)
    if (Name == K.Name)
      return makeToken(K.Kind);

  Token T = makeToken(TokKind::Identifier);
  T.Text = Name;
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  TokLine = Line;
  TokCol = Col;

  char C = peek();
  if (C == '\0')
    return makeToken(TokKind::Eof);

  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier();

  advance();
  switch (C) {
  case '(':
    return makeToken(TokKind::LParen);
  case ')':
    return makeToken(TokKind::RParen);
  case '{':
    return makeToken(TokKind::LBrace);
  case '}':
    return makeToken(TokKind::RBrace);
  case '[':
    return makeToken(TokKind::LBracket);
  case ']':
    return makeToken(TokKind::RBracket);
  case ',':
    return makeToken(TokKind::Comma);
  case ';':
    return makeToken(TokKind::Semicolon);
  case '?':
    return makeToken(TokKind::Question);
  case ':':
    return makeToken(TokKind::Colon);
  case '~':
    return makeToken(TokKind::Tilde);
  case '^':
    return makeToken(TokKind::Caret);
  case '+':
    if (match('='))
      return makeToken(TokKind::PlusAssign);
    if (match('+'))
      return makeToken(TokKind::PlusPlus);
    return makeToken(TokKind::Plus);
  case '-':
    if (match('='))
      return makeToken(TokKind::MinusAssign);
    if (match('-'))
      return makeToken(TokKind::MinusMinus);
    return makeToken(TokKind::Minus);
  case '*':
    return makeToken(match('=') ? TokKind::StarAssign : TokKind::Star);
  case '/':
    return makeToken(match('=') ? TokKind::SlashAssign : TokKind::Slash);
  case '%':
    return makeToken(match('=') ? TokKind::PercentAssign : TokKind::Percent);
  case '&':
    return makeToken(match('&') ? TokKind::AmpAmp : TokKind::Amp);
  case '|':
    return makeToken(match('|') ? TokKind::PipePipe : TokKind::Pipe);
  case '!':
    return makeToken(match('=') ? TokKind::NotEq : TokKind::Bang);
  case '=':
    return makeToken(match('=') ? TokKind::EqEq : TokKind::Assign);
  case '<':
    if (match('<'))
      return makeToken(TokKind::Shl);
    return makeToken(match('=') ? TokKind::Le : TokKind::Lt);
  case '>':
    if (match('>'))
      return makeToken(TokKind::Shr);
    return makeToken(match('=') ? TokKind::Ge : TokKind::Gt);
  default:
    return makeError(std::string("unexpected character '") + C + "'");
  }
}
