//===- lang/Lexer.h - SPTc lexer ------------------------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for SPTc. Supports // and /* */ comments, decimal
/// integer and floating-point literals, and the operators in Token.h.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_LANG_LEXER_H
#define SPT_LANG_LEXER_H

#include "lang/Token.h"

#include <string>

namespace spt {

/// Produces a token stream from SPTc source text.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes and returns the next token. After Eof, keeps returning Eof.
  Token next();

private:
  char peek(size_t Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();

  Token makeToken(TokKind Kind);
  Token makeError(const std::string &Msg);
  Token lexNumber();
  Token lexIdentifier();

  std::string Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
  unsigned TokLine = 1;
  unsigned TokCol = 1;
};

} // namespace spt

#endif // SPT_LANG_LEXER_H
