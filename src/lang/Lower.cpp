//===- lang/Lower.cpp - SPTc AST to IR lowering ----------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"

#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "support/Debug.h"

#include <map>
#include <utility>

using namespace spt;

namespace {

/// A typed value produced by expression lowering.
struct TypedReg {
  Reg R = NoReg;
  Type Ty = Type::Int;
};

/// Break/continue targets of the innermost enclosing loop.
struct LoopTargets {
  BasicBlock *BreakTarget = nullptr;
  BasicBlock *ContinueTarget = nullptr;
};

/// Per-program lowering state.
class Lowering {
public:
  explicit Lowering(const ProgramAst &Program) : Program(Program) {}

  LowerResult run();

private:
  // Diagnostics.
  void error(SrcLoc Loc, const std::string &Msg) {
    Errors.push_back(std::to_string(Loc.Line) + ":" +
                     std::to_string(Loc.Col) + ": " + Msg);
  }

  // Builtin externals, materialized on demand.
  uint32_t getExternal(const std::string &Name, Type RetTy,
                       std::vector<Type> ParamTys);

  // Scopes.
  struct VarInfo {
    Reg R = NoReg;
    Type Ty = Type::Int;
  };
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  const VarInfo *findVar(const std::string &Name) const;
  bool declareVar(const std::string &Name, VarInfo Info, SrcLoc Loc);

  // Function lowering.
  void lowerFunction(const FuncAst &FA, Function *F);
  void lowerStmt(const Stmt &S);
  void lowerBlockBody(const Stmt &S);

  // Expression lowering.
  TypedReg lowerExpr(const Expr &E);
  TypedReg lowerBinary(const Expr &E);
  TypedReg lowerShortCircuit(const Expr &E);
  TypedReg lowerCondExpr(const Expr &E);
  TypedReg lowerCall(const Expr &E);
  /// Converts \p V to \p To (int->fp implicit); reports an error and
  /// returns a dummy when the conversion is narrowing.
  TypedReg convertTo(TypedReg V, Type To, SrcLoc Loc);

  /// Starts a fresh block when the current one is already terminated, so
  /// statements after return/break/continue land somewhere valid.
  void ensureOpenBlock(const char *Label);

  const ProgramAst &Program;
  std::unique_ptr<Module> M;
  std::vector<std::string> Errors;

  IRBuilder *B = nullptr;
  Function *CurFunc = nullptr;
  std::vector<std::map<std::string, VarInfo>> Scopes;
  std::vector<LoopTargets> LoopStack;
};

} // namespace

uint32_t Lowering::getExternal(const std::string &Name, Type RetTy,
                               std::vector<Type> ParamTys) {
  if (Function *F = M->findFunction(Name)) {
    assert(F->isExternal() && "builtin name clashes with user function");
    return M->indexOf(F);
  }
  Function *F = M->addFunction(Name, RetTy,
                               static_cast<unsigned>(ParamTys.size()),
                               /*External=*/true);
  F->ParamTypes = std::move(ParamTys);
  return M->indexOf(F);
}

const Lowering::VarInfo *Lowering::findVar(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  return nullptr;
}

bool Lowering::declareVar(const std::string &Name, VarInfo Info, SrcLoc Loc) {
  assert(!Scopes.empty() && "no scope to declare into");
  if (Scopes.back().count(Name)) {
    error(Loc, "redeclaration of '" + Name + "'");
    return false;
  }
  Scopes.back().emplace(Name, Info);
  return true;
}

void Lowering::ensureOpenBlock(const char *Label) {
  if (B->insertBlock()->hasTerminator()) {
    BasicBlock *BB = B->makeBlock(Label);
    // Unreachable continuation; still must be well formed.
    B->setInsertBlock(BB);
  }
}

TypedReg Lowering::convertTo(TypedReg V, Type To, SrcLoc Loc) {
  if (V.Ty == To)
    return V;
  if (V.Ty == Type::Int && To == Type::Fp) {
    Reg R = B->emit(Opcode::IntToFp, Type::Fp, {V.R});
    return TypedReg{R, Type::Fp};
  }
  if (V.Ty == Type::Fp && To == Type::Int) {
    error(Loc, "implicit fp->int conversion; use ftoi()");
    Reg R = B->emit(Opcode::FpToInt, Type::Int, {V.R});
    return TypedReg{R, Type::Int};
  }
  error(Loc, "cannot convert void value");
  return TypedReg{B->constInt(0), To};
}

TypedReg Lowering::lowerExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return TypedReg{B->constInt(E.IntValue), Type::Int};
  case ExprKind::FpLit:
    return TypedReg{B->constFp(E.FpValue), Type::Fp};
  case ExprKind::Var: {
    const VarInfo *V = findVar(E.Name);
    if (!V) {
      error(E.Loc, "use of undeclared variable '" + E.Name + "'");
      return TypedReg{B->constInt(0), Type::Int};
    }
    return TypedReg{V->R, V->Ty};
  }
  case ExprKind::Index: {
    const Function *Probe = nullptr;
    (void)Probe;
    // Arrays are module-level only.
    bool Found = false;
    uint32_t ArrayId = 0;
    for (size_t I = 0; I != M->numArrays(); ++I)
      if (M->array(static_cast<uint32_t>(I)).Name == E.Name) {
        Found = true;
        ArrayId = static_cast<uint32_t>(I);
        break;
      }
    if (!Found) {
      error(E.Loc, "use of undeclared array '" + E.Name + "'");
      return TypedReg{B->constInt(0), Type::Int};
    }
    TypedReg Sub = lowerExpr(*E.Lhs);
    if (Sub.Ty != Type::Int) {
      error(E.Loc, "array subscript must be int");
      Sub = TypedReg{B->constInt(0), Type::Int};
    }
    const Type ElemTy = M->array(ArrayId).ElemTy;
    Reg R = B->load(ElemTy, ArrayId, Sub.R);
    return TypedReg{R, ElemTy};
  }
  case ExprKind::Unary: {
    TypedReg V = lowerExpr(*E.Lhs);
    switch (E.UOp) {
    case UnOp::Neg:
      if (V.Ty == Type::Fp)
        return TypedReg{B->emit(Opcode::FNeg, Type::Fp, {V.R}), Type::Fp};
      return TypedReg{B->emit(Opcode::Neg, Type::Int, {V.R}), Type::Int};
    case UnOp::LogNot: {
      Reg Zero =
          V.Ty == Type::Fp ? B->constFp(0.0) : B->constInt(0);
      Opcode Cmp = V.Ty == Type::Fp ? Opcode::FCmpEq : Opcode::CmpEq;
      return TypedReg{B->emit(Cmp, Type::Int, {V.R, Zero}), Type::Int};
    }
    case UnOp::BitNot:
      if (V.Ty != Type::Int)
        error(E.Loc, "'~' requires an int operand");
      return TypedReg{B->emit(Opcode::Not, Type::Int, {V.R}), Type::Int};
    }
    spt_unreachable("unknown unary operator");
  }
  case ExprKind::Binary:
    if (E.BOp == BinOp::LAnd || E.BOp == BinOp::LOr)
      return lowerShortCircuit(E);
    return lowerBinary(E);
  case ExprKind::Cond:
    return lowerCondExpr(E);
  case ExprKind::Call:
    return lowerCall(E);
  }
  spt_unreachable("unknown expression kind");
}

TypedReg Lowering::lowerBinary(const Expr &E) {
  TypedReg L = lowerExpr(*E.Lhs);
  TypedReg R = lowerExpr(*E.Rhs);

  const bool IntOnly = E.BOp == BinOp::And || E.BOp == BinOp::Or ||
                       E.BOp == BinOp::Xor || E.BOp == BinOp::Shl ||
                       E.BOp == BinOp::Shr || E.BOp == BinOp::Rem;
  if (IntOnly) {
    if (L.Ty != Type::Int || R.Ty != Type::Int) {
      error(E.Loc, "operator requires int operands");
      return TypedReg{B->constInt(0), Type::Int};
    }
  }

  // Unify numeric types: int op fp promotes to fp.
  Type OpTy = Type::Int;
  if (L.Ty == Type::Fp || R.Ty == Type::Fp) {
    OpTy = Type::Fp;
    L = convertTo(L, Type::Fp, E.Loc);
    R = convertTo(R, Type::Fp, E.Loc);
  }

  struct OpPair {
    Opcode IntOp;
    Opcode FpOp;
    bool IsCompare;
  };
  auto pick = [&](BinOp Op) -> OpPair {
    switch (Op) {
    case BinOp::Add:
      return {Opcode::Add, Opcode::FAdd, false};
    case BinOp::Sub:
      return {Opcode::Sub, Opcode::FSub, false};
    case BinOp::Mul:
      return {Opcode::Mul, Opcode::FMul, false};
    case BinOp::Div:
      return {Opcode::Div, Opcode::FDiv, false};
    case BinOp::Rem:
      return {Opcode::Rem, Opcode::Rem, false};
    case BinOp::And:
      return {Opcode::And, Opcode::And, false};
    case BinOp::Or:
      return {Opcode::Or, Opcode::Or, false};
    case BinOp::Xor:
      return {Opcode::Xor, Opcode::Xor, false};
    case BinOp::Shl:
      return {Opcode::Shl, Opcode::Shl, false};
    case BinOp::Shr:
      return {Opcode::Shr, Opcode::Shr, false};
    case BinOp::Eq:
      return {Opcode::CmpEq, Opcode::FCmpEq, true};
    case BinOp::Ne:
      return {Opcode::CmpNe, Opcode::FCmpNe, true};
    case BinOp::Lt:
      return {Opcode::CmpLt, Opcode::FCmpLt, true};
    case BinOp::Le:
      return {Opcode::CmpLe, Opcode::FCmpLe, true};
    case BinOp::Gt:
      return {Opcode::CmpGt, Opcode::FCmpGt, true};
    case BinOp::Ge:
      return {Opcode::CmpGe, Opcode::FCmpGe, true};
    case BinOp::LAnd:
    case BinOp::LOr:
      break;
    }
    spt_unreachable("short-circuit ops handled elsewhere");
  };

  const OpPair P = pick(E.BOp);
  const Opcode Op = OpTy == Type::Fp ? P.FpOp : P.IntOp;
  const Type ResTy = P.IsCompare ? Type::Int : OpTy;
  return TypedReg{B->emit(Op, ResTy, {L.R, R.R}), ResTy};
}

TypedReg Lowering::lowerShortCircuit(const Expr &E) {
  // a && b  ==>  a ? (b != 0) : 0     a || b  ==>  a ? 1 : (b != 0)
  const bool IsAnd = E.BOp == BinOp::LAnd;
  Reg Result = CurFunc->newReg();

  TypedReg L = lowerExpr(*E.Lhs);
  BasicBlock *EvalRhs = B->makeBlock(IsAnd ? "land.rhs" : "lor.rhs");
  BasicBlock *Short = B->makeBlock(IsAnd ? "land.false" : "lor.true");
  BasicBlock *Done = B->makeBlock(IsAnd ? "land.done" : "lor.done");

  if (IsAnd)
    B->br(L.R, EvalRhs, Short);
  else
    B->br(L.R, Short, EvalRhs);

  B->setInsertBlock(EvalRhs);
  TypedReg R = lowerExpr(*E.Rhs);
  Reg Zero = R.Ty == Type::Fp ? B->constFp(0.0) : B->constInt(0);
  Opcode Cmp = R.Ty == Type::Fp ? Opcode::FCmpNe : Opcode::CmpNe;
  Reg Bool = B->emit(Cmp, Type::Int, {R.R, Zero});
  B->copyTo(Result, Type::Int, Bool);
  B->jmp(Done);

  B->setInsertBlock(Short);
  Reg Const = B->constInt(IsAnd ? 0 : 1);
  B->copyTo(Result, Type::Int, Const);
  B->jmp(Done);

  B->setInsertBlock(Done);
  return TypedReg{Result, Type::Int};
}

TypedReg Lowering::lowerCondExpr(const Expr &E) {
  TypedReg C = lowerExpr(*E.Lhs);
  BasicBlock *ThenBB = B->makeBlock("cond.then");
  BasicBlock *ElseBB = B->makeBlock("cond.else");
  BasicBlock *Done = B->makeBlock("cond.done");
  B->br(C.R, ThenBB, ElseBB);

  // Lower the then-value first to learn the result type; the else value is
  // converted to match (or both are widened to fp).
  B->setInsertBlock(ThenBB);
  TypedReg TV = lowerExpr(*E.Rhs);
  B->setInsertBlock(ElseBB);
  TypedReg FV = lowerExpr(*E.Aux);

  Type ResTy =
      (TV.Ty == Type::Fp || FV.Ty == Type::Fp) ? Type::Fp : Type::Int;
  Reg Result = CurFunc->newReg();

  B->setInsertBlock(ThenBB);
  TypedReg TVC = convertTo(TV, ResTy, E.Loc);
  B->copyTo(Result, ResTy, TVC.R);
  B->jmp(Done);

  B->setInsertBlock(ElseBB);
  TypedReg FVC = convertTo(FV, ResTy, E.Loc);
  B->copyTo(Result, ResTy, FVC.R);
  B->jmp(Done);

  B->setInsertBlock(Done);
  return TypedReg{Result, ResTy};
}

TypedReg Lowering::lowerCall(const Expr &E) {
  // Unary opcode builtins.
  struct UnaryBuiltin {
    const char *Name;
    Opcode Op;
    Type ArgTy;
    Type RetTy;
  };
  static const UnaryBuiltin UnaryBuiltins[] = {
      {"fabs", Opcode::FAbs, Type::Fp, Type::Fp},
      {"iabs", Opcode::Abs, Type::Int, Type::Int},
      {"itof", Opcode::IntToFp, Type::Int, Type::Fp},
      {"ftoi", Opcode::FpToInt, Type::Fp, Type::Int},
  };
  for (const UnaryBuiltin &UB : UnaryBuiltins) {
    if (E.Name != UB.Name)
      continue;
    if (E.Args.size() != 1) {
      error(E.Loc, std::string(UB.Name) + " takes one argument");
      return TypedReg{B->constInt(0), UB.RetTy};
    }
    TypedReg V = convertTo(lowerExpr(*E.Args[0]), UB.ArgTy, E.Loc);
    return TypedReg{B->emit(UB.Op, UB.RetTy, {V.R}), UB.RetTy};
  }

  // Binary opcode builtins.
  struct BinaryBuiltin {
    const char *Name;
    Opcode Op;
    Type Ty;
  };
  static const BinaryBuiltin BinaryBuiltins[] = {
      {"imin", Opcode::Min, Type::Int},  {"imax", Opcode::Max, Type::Int},
      {"fminv", Opcode::FMin, Type::Fp}, {"fmaxv", Opcode::FMax, Type::Fp},
  };
  for (const BinaryBuiltin &BB : BinaryBuiltins) {
    if (E.Name != BB.Name)
      continue;
    if (E.Args.size() != 2) {
      error(E.Loc, std::string(BB.Name) + " takes two arguments");
      return TypedReg{B->constInt(0), BB.Ty};
    }
    TypedReg A = convertTo(lowerExpr(*E.Args[0]), BB.Ty, E.Loc);
    TypedReg C = convertTo(lowerExpr(*E.Args[1]), BB.Ty, E.Loc);
    return TypedReg{B->emit(BB.Op, BB.Ty, {A.R, C.R}), BB.Ty};
  }

  // External runtime builtins.
  struct External {
    const char *Name;
    Type RetTy;
    std::vector<Type> Params;
  };
  static const External Externals[] = {
      {"sqrt", Type::Fp, {Type::Fp}},
      {"log", Type::Fp, {Type::Fp}},
      {"exp", Type::Fp, {Type::Fp}},
      {"rnd", Type::Int, {Type::Int}},
      {"print_int", Type::Void, {Type::Int}},
      {"print_fp", Type::Void, {Type::Fp}},
  };

  Type RetTy = Type::Void;
  uint32_t CalleeIndex = 0;
  const std::vector<Type> *ParamTys = nullptr;
  std::vector<Type> UserParamTys;

  bool Resolved = false;
  for (const External &Ext : Externals) {
    if (E.Name != Ext.Name)
      continue;
    CalleeIndex = getExternal(Ext.Name, Ext.RetTy, Ext.Params);
    RetTy = Ext.RetTy;
    ParamTys = &M->function(CalleeIndex)->ParamTypes;
    Resolved = true;
    break;
  }

  if (!Resolved) {
    Function *Callee = M->findFunction(E.Name);
    if (!Callee || Callee->isExternal()) {
      if (!Callee) {
        error(E.Loc, "call to undeclared function '" + E.Name + "'");
        return TypedReg{B->constInt(0), Type::Int};
      }
    }
    CalleeIndex = M->indexOf(Callee);
    RetTy = Callee->returnType();
    UserParamTys = Callee->ParamTypes;
    ParamTys = &UserParamTys;
  }

  if (E.Args.size() != ParamTys->size()) {
    error(E.Loc, "call to '" + E.Name + "' expects " +
                     std::to_string(ParamTys->size()) + " arguments, got " +
                     std::to_string(E.Args.size()));
    return TypedReg{B->constInt(0), RetTy == Type::Void ? Type::Int : RetTy};
  }

  std::vector<Reg> Args;
  for (size_t I = 0; I != E.Args.size(); ++I) {
    TypedReg V = convertTo(lowerExpr(*E.Args[I]), (*ParamTys)[I], E.Loc);
    Args.push_back(V.R);
  }
  Reg R = B->call(RetTy, CalleeIndex, std::move(Args));
  return TypedReg{R, RetTy == Type::Void ? Type::Int : RetTy};
}

void Lowering::lowerBlockBody(const Stmt &S) {
  assert(S.Kind == StmtKind::Block && "expected a block");
  pushScope();
  for (const StmtPtr &Child : S.Body)
    lowerStmt(*Child);
  popScope();
}

void Lowering::lowerStmt(const Stmt &S) {
  ensureOpenBlock("unreachable");
  switch (S.Kind) {
  case StmtKind::Block:
    lowerBlockBody(S);
    return;

  case StmtKind::Decl: {
    Reg R = CurFunc->newReg();
    if (S.Value) {
      TypedReg V = convertTo(lowerExpr(*S.Value), S.DeclTy, S.Loc);
      B->copyTo(R, S.DeclTy, V.R);
    } else {
      // Deterministic zero initialization.
      Reg Z = S.DeclTy == Type::Fp ? B->constFp(0.0) : B->constInt(0);
      B->copyTo(R, S.DeclTy, Z);
    }
    declareVar(S.Name, VarInfo{R, S.DeclTy}, S.Loc);
    return;
  }

  case StmtKind::Assign: {
    const Expr &T = *S.Target;
    if (T.Kind == ExprKind::Var) {
      const VarInfo *V = findVar(T.Name);
      if (!V) {
        error(T.Loc, "assignment to undeclared variable '" + T.Name + "'");
        lowerExpr(*S.Value);
        return;
      }
      TypedReg Val = convertTo(lowerExpr(*S.Value), V->Ty, S.Loc);
      B->copyTo(V->R, V->Ty, Val.R);
      return;
    }
    assert(T.Kind == ExprKind::Index && "assign target must be var or index");
    bool Found = false;
    uint32_t ArrayId = 0;
    for (size_t I = 0; I != M->numArrays(); ++I)
      if (M->array(static_cast<uint32_t>(I)).Name == T.Name) {
        Found = true;
        ArrayId = static_cast<uint32_t>(I);
        break;
      }
    if (!Found) {
      error(T.Loc, "assignment to undeclared array '" + T.Name + "'");
      lowerExpr(*S.Value);
      return;
    }
    TypedReg Sub = lowerExpr(*T.Lhs);
    if (Sub.Ty != Type::Int) {
      error(T.Loc, "array subscript must be int");
      Sub = TypedReg{B->constInt(0), Type::Int};
    }
    TypedReg Val =
        convertTo(lowerExpr(*S.Value), M->array(ArrayId).ElemTy, S.Loc);
    B->store(ArrayId, Sub.R, Val.R);
    return;
  }

  case StmtKind::ExprEval:
    lowerExpr(*S.Value);
    return;

  case StmtKind::If: {
    TypedReg C = lowerExpr(*S.Value);
    BasicBlock *ThenBB = B->makeBlock("if.then");
    BasicBlock *ElseBB = S.Else ? B->makeBlock("if.else") : nullptr;
    BasicBlock *Done = B->makeBlock("if.done");
    B->br(C.R, ThenBB, ElseBB ? ElseBB : Done);

    B->setInsertBlock(ThenBB);
    lowerStmt(*S.Then);
    if (!B->insertBlock()->hasTerminator())
      B->jmp(Done);

    if (ElseBB) {
      B->setInsertBlock(ElseBB);
      lowerStmt(*S.Else);
      if (!B->insertBlock()->hasTerminator())
        B->jmp(Done);
    }
    B->setInsertBlock(Done);
    return;
  }

  case StmtKind::While: {
    BasicBlock *Header = B->makeBlock("while.header");
    BasicBlock *Body = B->makeBlock("while.body");
    BasicBlock *Exit = B->makeBlock("while.exit");
    B->jmp(Header);

    B->setInsertBlock(Header);
    TypedReg C = lowerExpr(*S.Value);
    B->br(C.R, Body, Exit);

    LoopStack.push_back(LoopTargets{Exit, Header});
    B->setInsertBlock(Body);
    lowerStmt(*S.Then);
    if (!B->insertBlock()->hasTerminator())
      B->jmp(Header);
    LoopStack.pop_back();

    B->setInsertBlock(Exit);
    return;
  }

  case StmtKind::DoWhile: {
    BasicBlock *Body = B->makeBlock("do.body");
    BasicBlock *CondBB = B->makeBlock("do.cond");
    BasicBlock *Exit = B->makeBlock("do.exit");
    B->jmp(Body);

    LoopStack.push_back(LoopTargets{Exit, CondBB});
    B->setInsertBlock(Body);
    lowerStmt(*S.Then);
    if (!B->insertBlock()->hasTerminator())
      B->jmp(CondBB);
    LoopStack.pop_back();

    B->setInsertBlock(CondBB);
    TypedReg C = lowerExpr(*S.Value);
    B->br(C.R, Body, Exit);

    B->setInsertBlock(Exit);
    return;
  }

  case StmtKind::For: {
    pushScope(); // For-init declarations scope over the loop.
    if (S.Init)
      lowerStmt(*S.Init);

    BasicBlock *Header = B->makeBlock("for.header");
    BasicBlock *Body = B->makeBlock("for.body");
    BasicBlock *StepBB = B->makeBlock("for.step");
    BasicBlock *Exit = B->makeBlock("for.exit");
    B->jmp(Header);

    B->setInsertBlock(Header);
    if (S.Value) {
      TypedReg C = lowerExpr(*S.Value);
      B->br(C.R, Body, Exit);
    } else {
      Reg True = B->constInt(1);
      B->br(True, Body, Exit);
    }

    LoopStack.push_back(LoopTargets{Exit, StepBB});
    B->setInsertBlock(Body);
    lowerStmt(*S.Then);
    if (!B->insertBlock()->hasTerminator())
      B->jmp(StepBB);
    LoopStack.pop_back();

    B->setInsertBlock(StepBB);
    if (S.Step)
      lowerStmt(*S.Step);
    if (!B->insertBlock()->hasTerminator())
      B->jmp(Header);

    B->setInsertBlock(Exit);
    popScope();
    return;
  }

  case StmtKind::Return: {
    if (CurFunc->returnType() == Type::Void) {
      if (S.Value)
        error(S.Loc, "void function cannot return a value");
      B->ret();
      return;
    }
    if (!S.Value) {
      error(S.Loc, "non-void function must return a value");
      Reg Z = CurFunc->returnType() == Type::Fp ? B->constFp(0.0)
                                                : B->constInt(0);
      B->ret(Z);
      return;
    }
    TypedReg V =
        convertTo(lowerExpr(*S.Value), CurFunc->returnType(), S.Loc);
    B->ret(V.R);
    return;
  }

  case StmtKind::Break: {
    if (LoopStack.empty()) {
      error(S.Loc, "'break' outside of a loop");
      return;
    }
    B->jmp(LoopStack.back().BreakTarget);
    return;
  }

  case StmtKind::Continue: {
    if (LoopStack.empty()) {
      error(S.Loc, "'continue' outside of a loop");
      return;
    }
    B->jmp(LoopStack.back().ContinueTarget);
    return;
  }
  }
  spt_unreachable("unknown statement kind");
}

void Lowering::lowerFunction(const FuncAst &FA, Function *F) {
  CurFunc = F;
  IRBuilder Builder(F);
  B = &Builder;

  BasicBlock *Entry = F->addBlock("entry");
  Builder.setInsertBlock(Entry);

  Scopes.clear();
  pushScope();
  for (unsigned I = 0; I != FA.Params.size(); ++I)
    declareVar(FA.Params[I].Name,
               VarInfo{static_cast<Reg>(I), FA.Params[I].Ty}, FA.Loc);

  lowerBlockBody(*FA.Body);

  // Implicit return at the end of the function.
  if (!Builder.insertBlock()->hasTerminator()) {
    if (F->returnType() == Type::Void)
      Builder.ret();
    else {
      Reg Z = F->returnType() == Type::Fp ? Builder.constFp(0.0)
                                          : Builder.constInt(0);
      Builder.ret(Z);
    }
  }
  popScope();
  B = nullptr;
  CurFunc = nullptr;
}

LowerResult Lowering::run() {
  M = std::make_unique<Module>();

  // Declare arrays first.
  for (const ArrayAst &A : Program.Arrays)
    M->addArray(A.Name, A.ElemTy, A.Size);

  // Declare all functions (forward references allowed), then lower bodies.
  for (const auto &FA : Program.Funcs) {
    if (M->findFunction(FA->Name)) {
      error(FA->Loc, "redefinition of function '" + FA->Name + "'");
      continue;
    }
    Function *F = M->addFunction(FA->Name, FA->RetTy,
                                 static_cast<unsigned>(FA->Params.size()));
    for (const ParamAst &P : FA->Params)
      F->ParamTypes.push_back(P.Ty);
  }
  for (const auto &FA : Program.Funcs) {
    Function *F = M->findFunction(FA->Name);
    if (F && !F->isExternal() && F->numBlocks() == 0)
      lowerFunction(*FA, F);
  }

  LowerResult Result;
  Result.M = std::move(M);
  Result.Errors = std::move(Errors);
  return Result;
}

LowerResult spt::lowerProgram(const ProgramAst &Program) {
  Lowering L(Program);
  return L.run();
}
