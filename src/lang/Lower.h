//===- lang/Lower.h - SPTc AST to IR lowering ------------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed SPTc program into the SPT IR. Performs the (minimal)
/// semantic checking of SPTc along the way: name resolution, arity checks
/// and the numeric typing rules (implicit int->fp widening; fp->int only
/// via the ftoi builtin).
///
/// Runtime builtins are materialized as external functions on first use:
/// sqrt/log/exp (fp->fp), rnd (int->int, deterministic), print_int and
/// print_fp. Pure math helpers (fabs, iabs, imin, imax, fmin, fmax, itof,
/// ftoi) lower directly to IR opcodes.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_LANG_LOWER_H
#define SPT_LANG_LOWER_H

#include "lang/Ast.h"

#include <memory>
#include <string>
#include <vector>

namespace spt {

class Module;

/// Result of lowering: the module plus any semantic errors. The module is
/// meaningful only when Errors is empty.
struct LowerResult {
  std::unique_ptr<Module> M;
  std::vector<std::string> Errors;
};

/// Lowers \p Program into a fresh module.
LowerResult lowerProgram(const ProgramAst &Program);

} // namespace spt

#endif // SPT_LANG_LOWER_H
