//===- lang/Parser.cpp - SPTc recursive-descent parser --------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "support/Debug.h"

#include <cassert>

using namespace spt;

Parser::Parser(std::string Source) : Lex(std::move(Source)) {}

const Token &Parser::peek(size_t Ahead) {
  while (Lookahead.size() <= Ahead) {
    Token T = Lex.next();
    if (T.Kind == TokKind::Error) {
      error(T.Text);
      T.Kind = TokKind::Eof; // Treat lexical errors as end of input.
    }
    Lookahead.push_back(std::move(T));
  }
  return Lookahead[Ahead];
}

Token Parser::consume() {
  peek();
  Token T = std::move(Lookahead.front());
  Lookahead.pop_front();
  return T;
}

bool Parser::accept(TokKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  error(std::string("expected ") + tokKindName(Kind) + " " + Context +
        ", found " + tokKindName(peek().Kind));
  return false;
}

SrcLoc Parser::loc() {
  const Token &T = peek();
  return SrcLoc{T.Line, T.Col};
}

void Parser::error(const std::string &Msg) {
  const Token &T = Lookahead.empty() ? peek() : Lookahead.front();
  Errors.push_back(std::to_string(T.Line) + ":" + std::to_string(T.Col) +
                   ": " + Msg);
}

void Parser::syncToStatementEnd() {
  while (!check(TokKind::Eof) && !check(TokKind::Semicolon) &&
         !check(TokKind::RBrace))
    consume();
  accept(TokKind::Semicolon);
}

bool Parser::parseType(Type &Out) {
  if (accept(TokKind::KwInt)) {
    Out = Type::Int;
    return true;
  }
  if (accept(TokKind::KwFp)) {
    Out = Type::Fp;
    return true;
  }
  return false;
}

ProgramAst Parser::parseProgram() {
  ProgramAst Program;
  while (!check(TokKind::Eof) && Errors.size() < 50)
    parseTopLevel(Program);
  return Program;
}

void Parser::parseTopLevel(ProgramAst &Program) {
  const SrcLoc Loc = loc();

  Type Ty = Type::Void;
  bool IsVoid = accept(TokKind::KwVoid);
  if (!IsVoid && !parseType(Ty)) {
    error("expected 'int', 'fp' or 'void' at top level, found " +
          std::string(tokKindName(peek().Kind)));
    consume();
    return;
  }

  if (!check(TokKind::Identifier)) {
    error("expected name after type at top level");
    syncToStatementEnd();
    return;
  }
  std::string Name = consume().Text;

  // Array declaration: type name [ size ] ;
  if (!IsVoid && check(TokKind::LBracket)) {
    consume();
    if (!check(TokKind::IntLiteral)) {
      error("expected array size literal");
      syncToStatementEnd();
      return;
    }
    const int64_t Size = consume().IntValue;
    if (Size <= 0)
      error("array size must be positive");
    expect(TokKind::RBracket, "after array size");
    expect(TokKind::Semicolon, "after array declaration");
    Program.Arrays.push_back(
        ArrayAst{Ty, std::move(Name), static_cast<uint64_t>(Size), Loc});
    return;
  }

  // Otherwise a function definition.
  if (auto F = parseFunction(IsVoid ? Type::Void : Ty, std::move(Name), Loc))
    Program.Funcs.push_back(std::move(F));
}

std::unique_ptr<FuncAst> Parser::parseFunction(Type RetTy, std::string Name,
                                               SrcLoc Loc) {
  auto F = std::make_unique<FuncAst>();
  F->RetTy = RetTy;
  F->Name = std::move(Name);
  F->Loc = Loc;

  if (!expect(TokKind::LParen, "to begin parameter list"))
    return nullptr;
  if (!check(TokKind::RParen)) {
    do {
      ParamAst P;
      if (!parseType(P.Ty)) {
        error("expected parameter type");
        return nullptr;
      }
      if (!check(TokKind::Identifier)) {
        error("expected parameter name");
        return nullptr;
      }
      P.Name = consume().Text;
      F->Params.push_back(std::move(P));
    } while (accept(TokKind::Comma));
  }
  if (!expect(TokKind::RParen, "to end parameter list"))
    return nullptr;

  if (!check(TokKind::LBrace)) {
    error("expected function body");
    return nullptr;
  }
  F->Body = parseBlock();
  return F;
}

StmtPtr Parser::parseBlock() {
  const SrcLoc Loc = loc();
  expect(TokKind::LBrace, "to begin block");
  auto Block = std::make_unique<Stmt>(StmtKind::Block, Loc);
  while (!check(TokKind::RBrace) && !check(TokKind::Eof) &&
         Errors.size() < 50) {
    if (StmtPtr S = parseStatement())
      Block->Body.push_back(std::move(S));
  }
  expect(TokKind::RBrace, "to end block");
  return Block;
}

StmtPtr Parser::parseStatement() {
  switch (peek().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwDo:
    return parseDoWhile();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwInt:
  case TokKind::KwFp:
    return parseDecl();
  case TokKind::KwReturn: {
    const SrcLoc Loc = loc();
    consume();
    auto S = std::make_unique<Stmt>(StmtKind::Return, Loc);
    if (!check(TokKind::Semicolon))
      S->Value = parseExpr();
    expect(TokKind::Semicolon, "after return");
    return S;
  }
  case TokKind::KwBreak: {
    const SrcLoc Loc = loc();
    consume();
    expect(TokKind::Semicolon, "after break");
    return std::make_unique<Stmt>(StmtKind::Break, Loc);
  }
  case TokKind::KwContinue: {
    const SrcLoc Loc = loc();
    consume();
    expect(TokKind::Semicolon, "after continue");
    return std::make_unique<Stmt>(StmtKind::Continue, Loc);
  }
  case TokKind::Semicolon:
    consume();
    return nullptr;
  default: {
    StmtPtr S = parseSimpleStmt();
    if (!S) {
      syncToStatementEnd();
      return nullptr;
    }
    expect(TokKind::Semicolon, "after statement");
    return S;
  }
  }
}

StmtPtr Parser::parseIf() {
  const SrcLoc Loc = loc();
  consume(); // if
  auto S = std::make_unique<Stmt>(StmtKind::If, Loc);
  expect(TokKind::LParen, "after 'if'");
  S->Value = parseExpr();
  expect(TokKind::RParen, "after if condition");
  S->Then = parseStatement();
  if (accept(TokKind::KwElse))
    S->Else = parseStatement();
  return S;
}

StmtPtr Parser::parseWhile() {
  const SrcLoc Loc = loc();
  consume(); // while
  auto S = std::make_unique<Stmt>(StmtKind::While, Loc);
  expect(TokKind::LParen, "after 'while'");
  S->Value = parseExpr();
  expect(TokKind::RParen, "after while condition");
  S->Then = parseStatement();
  return S;
}

StmtPtr Parser::parseDoWhile() {
  const SrcLoc Loc = loc();
  consume(); // do
  auto S = std::make_unique<Stmt>(StmtKind::DoWhile, Loc);
  S->Then = parseStatement();
  expect(TokKind::KwWhile, "after do body");
  expect(TokKind::LParen, "after 'while'");
  S->Value = parseExpr();
  expect(TokKind::RParen, "after do-while condition");
  expect(TokKind::Semicolon, "after do-while");
  return S;
}

StmtPtr Parser::parseFor() {
  const SrcLoc Loc = loc();
  consume(); // for
  auto S = std::make_unique<Stmt>(StmtKind::For, Loc);
  expect(TokKind::LParen, "after 'for'");
  if (!check(TokKind::Semicolon)) {
    if (check(TokKind::KwInt) || check(TokKind::KwFp))
      S->Init = parseDecl(); // Consumes the ';'.
    else {
      S->Init = parseSimpleStmt();
      expect(TokKind::Semicolon, "after for-init");
    }
  } else {
    consume();
  }
  if (!check(TokKind::Semicolon))
    S->Value = parseExpr();
  expect(TokKind::Semicolon, "after for-condition");
  if (!check(TokKind::RParen))
    S->Step = parseSimpleStmt();
  expect(TokKind::RParen, "after for clauses");
  S->Then = parseStatement();
  return S;
}

StmtPtr Parser::parseDecl() {
  const SrcLoc Loc = loc();
  auto S = std::make_unique<Stmt>(StmtKind::Decl, Loc);
  if (!parseType(S->DeclTy)) {
    error("expected type in declaration");
    return nullptr;
  }
  if (!check(TokKind::Identifier)) {
    error("expected name in declaration");
    return nullptr;
  }
  S->Name = consume().Text;
  if (accept(TokKind::Assign))
    S->Value = parseExpr();
  expect(TokKind::Semicolon, "after declaration");
  return S;
}

StmtPtr Parser::parseSimpleStmt() {
  const SrcLoc Loc = loc();
  if (!check(TokKind::Identifier)) {
    error("expected statement, found " +
          std::string(tokKindName(peek().Kind)));
    return nullptr;
  }

  // Call statement: ident ( ...
  if (peek(1).Kind == TokKind::LParen) {
    auto S = std::make_unique<Stmt>(StmtKind::ExprEval, Loc);
    S->Value = parsePrimary();
    return S;
  }

  std::string Name = consume().Text;

  // Optional array subscript target.
  ExprPtr Target;
  if (accept(TokKind::LBracket)) {
    ExprPtr Sub = parseExpr();
    expect(TokKind::RBracket, "after subscript");
    Target = makeIndex(Name, std::move(Sub), Loc);
  } else {
    Target = makeVar(Name, Loc);
  }

  TokKind K = peek().Kind;
  BinOp CompoundOp = BinOp::Add;
  bool IsCompound = false;
  switch (K) {
  case TokKind::Assign:
    break;
  case TokKind::PlusAssign:
    IsCompound = true;
    CompoundOp = BinOp::Add;
    break;
  case TokKind::MinusAssign:
    IsCompound = true;
    CompoundOp = BinOp::Sub;
    break;
  case TokKind::StarAssign:
    IsCompound = true;
    CompoundOp = BinOp::Mul;
    break;
  case TokKind::SlashAssign:
    IsCompound = true;
    CompoundOp = BinOp::Div;
    break;
  case TokKind::PercentAssign:
    IsCompound = true;
    CompoundOp = BinOp::Rem;
    break;
  case TokKind::PlusPlus:
  case TokKind::MinusMinus: {
    consume();
    auto S = std::make_unique<Stmt>(StmtKind::Assign, Loc);
    // Desugar x++ / x-- into x = x (+|-) 1. For array elements the
    // subscript appears twice; lowering evaluates it once per occurrence,
    // which matches C semantics for side-effect-free subscripts (SPTc
    // subscripts cannot have side effects: no assignment expressions).
    if (Target->Kind == ExprKind::Index) {
      error("'++'/'--' on array elements is not supported; "
            "write 'a[i] = a[i] + 1'");
      return nullptr;
    }
    ExprPtr ReadBack = makeVar(Target->Name, Loc);
    S->Value = makeBinary(K == TokKind::PlusPlus ? BinOp::Add : BinOp::Sub,
                          std::move(ReadBack), makeIntLit(1, Loc), Loc);
    S->Target = std::move(Target);
    return S;
  }
  default:
    error("expected assignment operator, found " +
          std::string(tokKindName(K)));
    return nullptr;
  }
  consume(); // The assignment operator.

  ExprPtr Value = parseExpr();
  auto S = std::make_unique<Stmt>(StmtKind::Assign, Loc);
  if (IsCompound) {
    if (Target->Kind == ExprKind::Index) {
      error("compound assignment to array elements is not supported; "
            "write 'a[i] = a[i] op e'");
      return nullptr;
    }
    ExprPtr ReadBack = makeVar(Target->Name, Loc);
    Value = makeBinary(CompoundOp, std::move(ReadBack), std::move(Value), Loc);
  }
  S->Target = std::move(Target);
  S->Value = std::move(Value);
  return S;
}

ExprPtr Parser::parseExpr() { return parseTernary(); }

ExprPtr Parser::parseTernary() {
  ExprPtr Cond = parseBinaryRhs(0, parseUnary());
  if (!accept(TokKind::Question))
    return Cond;
  const SrcLoc Loc = Cond ? Cond->Loc : loc();
  ExprPtr Then = parseExpr();
  expect(TokKind::Colon, "in conditional expression");
  ExprPtr Else = parseExpr();
  return makeCond(std::move(Cond), std::move(Then), std::move(Else), Loc);
}

namespace {

/// Precedence table; higher binds tighter. Returns -1 for non-operators.
int binaryPrecedence(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return 1;
  case TokKind::AmpAmp:
    return 2;
  case TokKind::Pipe:
    return 3;
  case TokKind::Caret:
    return 4;
  case TokKind::Amp:
    return 5;
  case TokKind::EqEq:
  case TokKind::NotEq:
    return 6;
  case TokKind::Lt:
  case TokKind::Le:
  case TokKind::Gt:
  case TokKind::Ge:
    return 7;
  case TokKind::Shl:
  case TokKind::Shr:
    return 8;
  case TokKind::Plus:
  case TokKind::Minus:
    return 9;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 10;
  default:
    return -1;
  }
}

BinOp binOpFor(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return BinOp::LOr;
  case TokKind::AmpAmp:
    return BinOp::LAnd;
  case TokKind::Pipe:
    return BinOp::Or;
  case TokKind::Caret:
    return BinOp::Xor;
  case TokKind::Amp:
    return BinOp::And;
  case TokKind::EqEq:
    return BinOp::Eq;
  case TokKind::NotEq:
    return BinOp::Ne;
  case TokKind::Lt:
    return BinOp::Lt;
  case TokKind::Le:
    return BinOp::Le;
  case TokKind::Gt:
    return BinOp::Gt;
  case TokKind::Ge:
    return BinOp::Ge;
  case TokKind::Shl:
    return BinOp::Shl;
  case TokKind::Shr:
    return BinOp::Shr;
  case TokKind::Plus:
    return BinOp::Add;
  case TokKind::Minus:
    return BinOp::Sub;
  case TokKind::Star:
    return BinOp::Mul;
  case TokKind::Slash:
    return BinOp::Div;
  case TokKind::Percent:
    return BinOp::Rem;
  default:
    spt_unreachable("not a binary operator token");
  }
}

} // namespace

ExprPtr Parser::parseBinaryRhs(int MinPrec, ExprPtr Lhs) {
  for (;;) {
    const int Prec = binaryPrecedence(peek().Kind);
    if (Prec < 0 || Prec < MinPrec)
      return Lhs;
    const TokKind OpTok = consume().Kind;
    ExprPtr Rhs = parseUnary();
    // Left associativity: bind tighter operators into Rhs first.
    while (binaryPrecedence(peek().Kind) > Prec)
      Rhs = parseBinaryRhs(binaryPrecedence(peek().Kind), std::move(Rhs));
    const SrcLoc Loc = Lhs ? Lhs->Loc : loc();
    Lhs = makeBinary(binOpFor(OpTok), std::move(Lhs), std::move(Rhs), Loc);
  }
}

ExprPtr Parser::parseUnary() {
  const SrcLoc Loc = loc();
  if (accept(TokKind::Minus))
    return makeUnary(UnOp::Neg, parseUnary(), Loc);
  if (accept(TokKind::Bang))
    return makeUnary(UnOp::LogNot, parseUnary(), Loc);
  if (accept(TokKind::Tilde))
    return makeUnary(UnOp::BitNot, parseUnary(), Loc);
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  const SrcLoc Loc = loc();
  switch (peek().Kind) {
  case TokKind::IntLiteral:
    return makeIntLit(consume().IntValue, Loc);
  case TokKind::FpLiteral:
    return makeFpLit(consume().FpValue, Loc);
  case TokKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    expect(TokKind::RParen, "after parenthesized expression");
    return E;
  }
  case TokKind::Identifier: {
    std::string Name = consume().Text;
    if (accept(TokKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokKind::RParen)) {
        do {
          Args.push_back(parseExpr());
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "after call arguments");
      return makeCall(std::move(Name), std::move(Args), Loc);
    }
    if (accept(TokKind::LBracket)) {
      ExprPtr Sub = parseExpr();
      expect(TokKind::RBracket, "after subscript");
      return makeIndex(std::move(Name), std::move(Sub), Loc);
    }
    return makeVar(std::move(Name), Loc);
  }
  default:
    error("expected expression, found " +
          std::string(tokKindName(peek().Kind)));
    consume();
    return makeIntLit(0, Loc);
  }
}
