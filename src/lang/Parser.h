//===- lang/Parser.h - SPTc recursive-descent parser ----------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser for SPTc with two-token lookahead. Errors are
/// collected as "line:col: message" strings; parsing continues after a
/// statement-level error by synchronizing to the next ';' or '}'.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_LANG_PARSER_H
#define SPT_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"

#include <deque>
#include <string>
#include <vector>

namespace spt {

/// Parses a full SPTc translation unit.
class Parser {
public:
  explicit Parser(std::string Source);

  /// Parses the program. Check errors() afterwards; the returned AST is
  /// meaningful only when there are no errors.
  ProgramAst parseProgram();

  const std::vector<std::string> &errors() const { return Errors; }

private:
  // Token stream with lookahead.
  const Token &peek(size_t Ahead = 0);
  Token consume();
  bool check(TokKind Kind) { return peek().Kind == Kind; }
  bool accept(TokKind Kind);
  /// Consumes a token of \p Kind or reports an error. Returns success.
  bool expect(TokKind Kind, const char *Context);
  SrcLoc loc();

  void error(const std::string &Msg);
  void syncToStatementEnd();

  // Grammar productions.
  bool parseType(Type &Out);
  void parseTopLevel(ProgramAst &Program);
  std::unique_ptr<FuncAst> parseFunction(Type RetTy, std::string Name,
                                         SrcLoc Loc);
  StmtPtr parseBlock();
  StmtPtr parseStatement();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseDoWhile();
  StmtPtr parseFor();
  StmtPtr parseDecl();
  /// Parses an assignment or call statement without the trailing ';'.
  StmtPtr parseSimpleStmt();

  ExprPtr parseExpr();
  ExprPtr parseTernary();
  ExprPtr parseBinaryRhs(int MinPrec, ExprPtr Lhs);
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  Lexer Lex;
  std::deque<Token> Lookahead;
  std::vector<std::string> Errors;
  bool AtEof = false;
};

} // namespace spt

#endif // SPT_LANG_PARSER_H
