//===- lang/ProgramGenerator.cpp - Random SPTc program generation ----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/ProgramGenerator.h"

#include "support/Random.h"

#include <vector>

using namespace spt;

namespace {

/// Shared generation state: RNG, the array universe, and the body text
/// plus the main-scope declarations it requires.
struct GenState {
  Random Rng;
  std::string Body;
  std::vector<std::string> MainIntDecls;
  std::vector<std::string> IntArrays; // Power-of-two sizes.
  std::vector<unsigned> IntSizes;
  std::vector<std::string> FpArrays;
  std::vector<unsigned> FpSizes;
  bool HasImpureHelper = false;
  unsigned NextVar = 0;

  explicit GenState(uint64_t Seed) : Rng(Seed) {}

  void line(const std::string &Text) {
    Body += Text;
    Body += '\n';
  }

  /// Allocates a unique name; when \p MainScope is true it will be
  /// declared as an int at the top of main().
  std::string fresh(const char *Prefix, bool MainScope = true) {
    std::string Name = std::string(Prefix) + std::to_string(NextVar++);
    if (MainScope)
      MainIntDecls.push_back(Name);
    return Name;
  }

  size_t pickIntArray() {
    return static_cast<size_t>(
        Rng.nextBelow(static_cast<int64_t>(IntArrays.size())));
  }
  std::string mask(size_t ArrayIdx) const {
    return std::to_string(IntSizes[ArrayIdx] - 1);
  }
};

//===----------------------------------------------------------------------===
// Loop templates. Each appends one loop fragment to the body and returns
// the int variable carrying its checksum contribution.
//===----------------------------------------------------------------------===

std::string tmplReduction(GenState &G, unsigned Trip) {
  const size_t A = G.pickIntArray();
  const std::string I = G.fresh("i"), S = G.fresh("s");
  const std::string El =
      G.IntArrays[A] + "[" + I + " & " + G.mask(A) + "]";
  G.line("  " + S + " = 0;");
  G.line("  for (" + I + " = 0; " + I + " < " + std::to_string(Trip) + "; " +
         I + " = " + I + " + 1)");
  G.line("    " + S + " = (" + S + " + " + El + " * " +
         std::to_string(G.Rng.nextInRange(1, 7)) + " + (" + El + " >> " +
         std::to_string(G.Rng.nextInRange(1, 5)) + ")) & 1073741823;");
  return S;
}

std::string tmplRecurrence(GenState &G, unsigned Trip) {
  const size_t A = G.pickIntArray();
  const std::string I = G.fresh("i"), S = G.fresh("s");
  const int64_t Dist = G.Rng.nextInRange(1, 3);
  const std::string Arr = G.IntArrays[A];
  G.line("  " + S + " = 0;");
  G.line("  for (" + I + " = " + std::to_string(Dist) + "; " + I + " < " +
         std::to_string(Trip) + "; " + I + " = " + I + " + 1) {");
  G.line("    " + Arr + "[" + I + " & " + G.mask(A) + "] = (" + Arr + "[(" +
         I + " - " + std::to_string(Dist) + ") & " + G.mask(A) + "] * 3 + " +
         I + ") & 1073741823;");
  G.line("    " + S + " = (" + S + " + " + Arr + "[" + I + " & " + G.mask(A) +
         "]) & 1073741823;");
  G.line("  }");
  return S;
}

std::string tmplScatter(GenState &G, unsigned Trip) {
  const size_t A = G.pickIntArray();
  const std::string I = G.fresh("i"), S = G.fresh("s");
  const std::string H = G.fresh("h", /*MainScope=*/false);
  const int64_t Mul = G.Rng.nextInRange(3, 41) | 1;
  G.line("  " + S + " = 0;");
  G.line("  for (" + I + " = 0; " + I + " < " + std::to_string(Trip) + "; " +
         I + " = " + I + " + 1) {");
  G.line("    int " + H + ";");
  G.line("    " + H + " = (" + I + " * " + std::to_string(Mul) + ") & " +
         G.mask(A) + ";");
  G.line("    " + G.IntArrays[A] + "[" + H + "] = (" + G.IntArrays[A] + "[" +
         H + "] + " + I + ") & 1073741823;");
  G.line("    " + S + " = (" + S + " + " + H + ") & 1073741823;");
  G.line("  }");
  return S;
}

std::string tmplConditionalCarry(GenState &G, unsigned Trip) {
  const std::string I = G.fresh("i"), S = G.fresh("s"), T = G.fresh("t");
  G.line("  " + S + " = 0;");
  G.line("  " + T + " = 1;");
  G.line("  for (" + I + " = 0; " + I + " < " + std::to_string(Trip) + "; " +
         I + " = " + I + " + 1) {");
  G.line("    if (" + I + " % " + std::to_string(G.Rng.nextInRange(2, 9)) +
         " == 0) " + T + " = " + T + " + " +
         std::to_string(G.Rng.nextInRange(1, 5)) + ";");
  G.line("    " + S + " = (" + S + " + " + T + " + " + I +
         ") & 1073741823;");
  G.line("  }");
  return S;
}

std::string tmplWhileScan(GenState &G, unsigned Trip) {
  const size_t A = G.pickIntArray();
  const std::string P = G.fresh("p"), S = G.fresh("s");
  G.line("  " + S + " = 0;");
  G.line("  " + P + " = 0;");
  G.line("  while (" + P + " < " + std::to_string(Trip) + ") {");
  G.line("    " + S + " = (" + S + " + " + G.IntArrays[A] + "[" + P + " & " +
         G.mask(A) + "]) & 1073741823;");
  G.line("    " + P + " = " + P + " + 1 + (" + S + " & 1);");
  G.line("  }");
  return S;
}

std::string tmplNest(GenState &G, unsigned Trip) {
  const size_t A = G.pickIntArray();
  const std::string I = G.fresh("i"), J = G.fresh("j"), S = G.fresh("s");
  const unsigned Inner = static_cast<unsigned>(G.Rng.nextInRange(4, 24));
  G.line("  " + S + " = 0;");
  G.line("  for (" + I + " = 0; " + I + " < " + std::to_string(Trip / 8 + 2) +
         "; " + I + " = " + I + " + 1) {");
  G.line("    for (" + J + " = 0; " + J + " < " + std::to_string(Inner) +
         "; " + J + " = " + J + " + 1)");
  G.line("      " + S + " = (" + S + " + " + G.IntArrays[A] + "[(" + I +
         " * " + std::to_string(Inner) + " + " + J + ") & " + G.mask(A) +
         "] + " + J + ") & 1073741823;");
  G.line("  }");
  return S;
}

std::string tmplCallLoop(GenState &G, unsigned Trip) {
  const std::string I = G.fresh("i"), S = G.fresh("s");
  const bool Impure = G.HasImpureHelper && G.Rng.nextBool(0.5);
  const std::string Callee = Impure ? "impureHelper" : "pureHelper";
  G.line("  " + S + " = 0;");
  G.line("  for (" + I + " = 0; " + I + " < " + std::to_string(Trip) + "; " +
         I + " = " + I + " + 1)");
  G.line("    " + S + " = (" + S + " + " + Callee + "(" + I +
         ")) & 1073741823;");
  return S;
}

std::string tmplStride(GenState &G, unsigned Trip) {
  const size_t A = G.pickIntArray();
  const std::string I = G.fresh("i"), S = G.fresh("s"), X = G.fresh("x");
  G.line("  " + S + " = 0;");
  G.line("  " + X + " = 1;");
  G.line("  for (" + I + " = 0; " + I + " < " + std::to_string(Trip) + "; " +
         I + " = " + I + " + 1) {");
  G.line("    " + X + " = " + X + " + " +
         std::to_string(G.Rng.nextInRange(1, 6)) + " + (" + G.IntArrays[A] +
         "[" + I + " & " + G.mask(A) + "] & 0);");
  G.line("    " + S + " = (" + S + " + " + X + ") & 1073741823;");
  G.line("  }");
  return S;
}

std::string tmplBreakSearch(GenState &G, unsigned Trip) {
  const size_t A = G.pickIntArray();
  const std::string I = G.fresh("i"), S = G.fresh("s");
  G.line("  " + S + " = 0 - 1;");
  G.line("  for (" + I + " = 0; " + I + " < " + std::to_string(Trip) + "; " +
         I + " = " + I + " + 1) {");
  G.line("    if ((" + G.IntArrays[A] + "[" + I + " & " + G.mask(A) +
         "] & 1023) == " + std::to_string(G.Rng.nextInRange(0, 1000)) +
         ") { " + S + " = " + I + "; break; }");
  G.line("  }");
  return S;
}

std::string tmplRmwSweep(GenState &G, unsigned Trip) {
  const size_t A = G.pickIntArray();
  const std::string I = G.fresh("i"), S = G.fresh("s");
  const std::string El =
      G.IntArrays[A] + "[" + I + " & " + G.mask(A) + "]";
  G.line("  " + S + " = 0;");
  G.line("  for (" + I + " = 0; " + I + " < " + std::to_string(Trip) + "; " +
         I + " = " + I + " + 1) {");
  G.line("    " + El + " = (" + El + " * 5 + " + I + ") & 1073741823;");
  G.line("    " + S + " = (" + S + " + " + El + ") & 1073741823;");
  G.line("  }");
  return S;
}

std::string tmplFpLoop(GenState &G, unsigned Trip) {
  if (G.FpArrays.empty())
    return tmplReduction(G, Trip);
  const std::string I = G.fresh("i"), S = G.fresh("s");
  const std::string V = G.fresh("v", /*MainScope=*/false);
  const size_t A = static_cast<size_t>(
      G.Rng.nextBelow(static_cast<int64_t>(G.FpArrays.size())));
  const std::string Mask = std::to_string(G.FpSizes[A] - 1);
  const std::string El = G.FpArrays[A] + "[" + I + " & " + Mask + "]";
  G.line("  " + S + " = 0;");
  G.line("  for (" + I + " = 0; " + I + " < " + std::to_string(Trip) + "; " +
         I + " = " + I + " + 1) {");
  G.line("    fp " + V + ";");
  G.line("    " + V + " = " + El + " * 1.5 + sqrt(itof(" + I + " + 1));");
  G.line("    " + El + " = " + V + " * 0.5;");
  G.line("    " + S + " = (" + S + " + ftoi(" + V + ")) & 1073741823;");
  G.line("  }");
  return S;
}

} // namespace

std::string spt::generateProgram(uint64_t Seed,
                                 const GeneratorOptions &Opts) {
  GenState G(Seed);
  std::string Header;

  // Arrays (power-of-two sizes so masked indices stay in bounds).
  const unsigned NumInt = static_cast<unsigned>(G.Rng.nextInRange(2, 4));
  for (unsigned A = 0; A != NumInt; ++A) {
    const unsigned Size = 64u << G.Rng.nextInRange(0, 4);
    G.IntArrays.push_back("ia" + std::to_string(A));
    G.IntSizes.push_back(Size);
    Header += "int ia" + std::to_string(A) + "[" + std::to_string(Size) +
              "];\n";
  }
  if (G.Rng.nextBool(0.7)) {
    const unsigned Size = 64u << G.Rng.nextInRange(0, 3);
    G.FpArrays.push_back("fa0");
    G.FpSizes.push_back(Size);
    Header += "fp fa0[" + std::to_string(Size) + "];\n";
  }
  Header += "int gstate[4];\n\n";

  // Helpers.
  Header += "int pureHelper(int x) {\n"
            "  int k; int a;\n"
            "  a = x;\n"
            "  for (k = 0; k < " +
            std::to_string(G.Rng.nextInRange(2, 9)) +
            "; k = k + 1) a = (a * 3 + k) & 65535;\n"
            "  return a;\n"
            "}\n";
  if (G.Rng.nextBool(0.6)) {
    G.HasImpureHelper = true;
    Header += "int impureHelper(int x) {\n"
              "  gstate[0] = (gstate[0] + x) & 1073741823;\n"
              "  return gstate[0] & 4095;\n"
              "}\n";
  }
  Header += "\n";

  // Seed the arrays, then emit a random sequence of loop fragments.
  {
    const std::string SeedI = G.fresh("i");
    G.line("  for (" + SeedI + " = 0; " + SeedI + " < 1024; " + SeedI +
           " = " + SeedI + " + 1) {");
    for (size_t A = 0; A != G.IntArrays.size(); ++A)
      G.line("    " + G.IntArrays[A] + "[" + SeedI + " & " + G.mask(A) +
             "] = (" + SeedI + " * " +
             std::to_string(17 + 2 * static_cast<int>(A)) + " + " +
             std::to_string(static_cast<int>(A)) + ") & 8191;");
    for (size_t A = 0; A != G.FpArrays.size(); ++A)
      G.line("    " + G.FpArrays[A] + "[" + SeedI + " & " +
             std::to_string(G.FpSizes[A] - 1) + "] = itof(" + SeedI +
             " % 97) / 3.0;");
    G.line("  }");
  }

  using Template = std::string (*)(GenState &, unsigned);
  static const Template Templates[] = {
      tmplReduction,       tmplRecurrence, tmplScatter, tmplConditionalCarry,
      tmplWhileScan,       tmplNest,       tmplCallLoop, tmplStride,
      tmplBreakSearch,     tmplRmwSweep,   tmplFpLoop,
  };
  const unsigned NumLoops = static_cast<unsigned>(
      G.Rng.nextInRange(Opts.MinLoops, Opts.MaxLoops));
  std::vector<std::string> Contributors;
  for (unsigned LI = 0; LI != NumLoops; ++LI) {
    const size_t T = static_cast<size_t>(G.Rng.nextBelow(
        static_cast<int64_t>(sizeof(Templates) / sizeof(Templates[0]))));
    const unsigned Trip = static_cast<unsigned>(
        G.Rng.nextInRange(8, Opts.MaxTrip));
    Contributors.push_back(Templates[T](G, Trip));
  }

  // Assemble main().
  std::string Main = "int main() {\n  int chk;\n";
  for (const std::string &Name : G.MainIntDecls)
    Main += "  int " + Name + ";\n";
  Main += "  chk = 0;\n";
  Main += G.Body;
  for (const std::string &S : Contributors)
    Main += "  chk = (chk + " + S + ") & 1073741823;\n";
  Main += "  return chk;\n}\n";

  return Header + Main;
}
