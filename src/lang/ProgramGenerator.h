//===- lang/ProgramGenerator.h - Random SPTc program generation ------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random-but-terminating SPTc programs for differential
/// testing: every generated program has a `main()` that finishes within a
/// bounded number of steps and returns a checksum. The property suite
/// compiles each program twice, SPT-transforms one copy under every
/// compilation mode, and requires identical checksums and output — the
/// strongest end-to-end check on the dependence analysis, the partition
/// legality rules, the transformation's temp insertion and the simulator's
/// replay machinery.
///
/// Loops are built from templates chosen to stress the interesting axes:
/// counted/while loops, nests, array recurrences with several distances,
/// reductions, conditional carried updates, strided values (SVP bait),
/// calls (pure and impure), breaks, and hash-style scatter writes.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_LANG_PROGRAMGENERATOR_H
#define SPT_LANG_PROGRAMGENERATOR_H

#include <cstdint>
#include <string>

namespace spt {

/// Tuning knobs for generation.
struct GeneratorOptions {
  unsigned MinLoops = 2;
  unsigned MaxLoops = 6;
  unsigned MaxStmtsPerBody = 8;
  unsigned MaxTrip = 400;
};

/// Returns the source text of a random SPTc program. The same seed always
/// produces the same program.
std::string generateProgram(uint64_t Seed,
                            const GeneratorOptions &Opts = GeneratorOptions());

} // namespace spt

#endif // SPT_LANG_PROGRAMGENERATOR_H
