//===- lang/Token.h - SPTc token kinds ------------------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of SPTc, the small C-like language the workloads and examples are
/// written in. SPTc stands in for the C sources the paper compiled with ORC.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_LANG_TOKEN_H
#define SPT_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace spt {

/// All SPTc token kinds.
enum class TokKind : uint8_t {
  Eof,
  Error, // Lexical error; token text holds the message.

  Identifier,
  IntLiteral,
  FpLiteral,

  // Keywords.
  KwInt,
  KwFp,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Question,
  Colon,

  Assign,        // =
  PlusAssign,    // +=
  MinusAssign,   // -=
  StarAssign,    // *=
  SlashAssign,   // /=
  PercentAssign, // %=
  PlusPlus,      // ++
  MinusMinus,    // --

  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Shl, // <<
  Shr, // >>

  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  AmpAmp,
  PipePipe,
};

/// Returns a printable name for \p Kind (for diagnostics).
const char *tokKindName(TokKind Kind);

/// A lexed token with source position (1-based line and column).
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;  // Identifier name, literal spelling or error message.
  int64_t IntValue = 0;
  double FpValue = 0.0;
  unsigned Line = 0;
  unsigned Col = 0;

  bool is(TokKind K) const { return Kind == K; }
};

} // namespace spt

#endif // SPT_LANG_TOKEN_H
