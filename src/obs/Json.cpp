//===- obs/Json.cpp - Minimal JSON parser + Chrome trace validator -------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace spt;
using namespace spt::json;

namespace {

class Parser {
public:
  Parser(const std::string &Text) : S(Text) {}

  bool run(Value &Out, std::string &Err) {
    skipWs();
    if (!parseValue(Out, Err))
      return false;
    skipWs();
    if (Pos != S.size()) {
      Err = fail("trailing characters after top-level value");
      return false;
    }
    return true;
  }

private:
  std::string fail(const std::string &Msg) const {
    std::ostringstream OS;
    OS << Msg << " at offset " << Pos;
    return OS.str();
  }

  void skipWs() {
    while (Pos < S.size() &&
           (S[Pos] == ' ' || S[Pos] == '\t' || S[Pos] == '\n' ||
            S[Pos] == '\r'))
      ++Pos;
  }

  bool parseValue(Value &Out, std::string &Err) {
    if (Pos >= S.size()) {
      Err = fail("unexpected end of input");
      return false;
    }
    switch (S[Pos]) {
    case '{':
      return parseObject(Out, Err);
    case '[':
      return parseArray(Out, Err);
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.Str, Err);
    case 't':
      return parseLiteral("true", Out, Err);
    case 'f':
      return parseLiteral("false", Out, Err);
    case 'n':
      return parseLiteral("null", Out, Err);
    default:
      return parseNumber(Out, Err);
    }
  }

  bool parseLiteral(const char *Lit, Value &Out, std::string &Err) {
    for (const char *P = Lit; *P; ++P, ++Pos) {
      if (Pos >= S.size() || S[Pos] != *P) {
        Err = fail(std::string("bad literal, expected '") + Lit + "'");
        return false;
      }
    }
    if (Lit[0] == 'n') {
      Out.K = Value::Kind::Null;
    } else {
      Out.K = Value::Kind::Bool;
      Out.B = Lit[0] == 't';
    }
    return true;
  }

  bool parseNumber(Value &Out, std::string &Err) {
    const size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    if (Pos == Start) {
      Err = fail("expected a value");
      return false;
    }
    const std::string Tok = S.substr(Start, Pos - Start);
    char *End = nullptr;
    Out.Num = std::strtod(Tok.c_str(), &End);
    if (End != Tok.c_str() + Tok.size()) {
      Pos = Start;
      Err = fail("malformed number '" + Tok + "'");
      return false;
    }
    Out.K = Value::Kind::Number;
    return true;
  }

  bool parseString(std::string &Out, std::string &Err) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos];
      if (C == '\\') {
        ++Pos;
        if (Pos >= S.size()) {
          Err = fail("unterminated escape");
          return false;
        }
        switch (S[Pos]) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 >= S.size()) {
            Err = fail("truncated \\u escape");
            return false;
          }
          unsigned Code = 0;
          for (int I = 1; I <= 4; ++I) {
            const char H = S[Pos + I];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else {
              Err = fail("bad hex digit in \\u escape");
              return false;
            }
          }
          Pos += 4;
          // Encode the code point as UTF-8. Surrogate pairs are not
          // reassembled — our own exports never emit non-BMP text.
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          Err = fail("unknown escape");
          return false;
        }
        ++Pos;
      } else if (static_cast<unsigned char>(C) < 0x20) {
        Err = fail("raw control character in string");
        return false;
      } else {
        Out += C;
        ++Pos;
      }
    }
    if (Pos >= S.size()) {
      Err = fail("unterminated string");
      return false;
    }
    ++Pos; // closing quote
    return true;
  }

  bool parseArray(Value &Out, std::string &Err) {
    Out.K = Value::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Value Elem;
      skipWs();
      if (!parseValue(Elem, Err))
        return false;
      Out.Arr.push_back(std::move(Elem));
      skipWs();
      if (Pos >= S.size()) {
        Err = fail("unterminated array");
        return false;
      }
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      Err = fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool parseObject(Value &Out, std::string &Err) {
    Out.K = Value::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= S.size() || S[Pos] != '"') {
        Err = fail("expected object key string");
        return false;
      }
      std::string Key;
      if (!parseString(Key, Err))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':') {
        Err = fail("expected ':' after object key");
        return false;
      }
      ++Pos;
      skipWs();
      Value Member;
      if (!parseValue(Member, Err))
        return false;
      Out.Obj[Key] = std::move(Member);
      skipWs();
      if (Pos >= S.size()) {
        Err = fail("unterminated object");
        return false;
      }
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      Err = fail("expected ',' or '}' in object");
      return false;
    }
  }

  const std::string &S;
  size_t Pos = 0;
};

} // namespace

bool spt::json::parse(const std::string &Text, Value &Out,
                      std::string &Err) {
  return Parser(Text).run(Out, Err);
}

bool spt::validateChromeTrace(const std::string &Text, std::string &Err,
                              size_t *NumEventsOut) {
  json::Value Root;
  if (!json::parse(Text, Root, Err))
    return false;
  const json::Value *EventsV = Root.get("traceEvents");
  if (!EventsV || !EventsV->isArray()) {
    Err = "missing or non-array traceEvents";
    return false;
  }

  struct Span {
    double Start = 0.0;
    double End = 0.0;
  };
  // (pid, tid) -> spans, kept in file order (exporter sorts them
  // start-ascending, containing-first per thread).
  std::map<std::pair<double, double>, std::vector<Span>> PerThread;

  size_t Idx = 0;
  for (const json::Value &E : EventsV->Arr) {
    std::ostringstream Where;
    Where << "event " << Idx;
    ++Idx;
    if (!E.isObject()) {
      Err = Where.str() + ": not an object";
      return false;
    }
    const json::Value *Name = E.get("name");
    const json::Value *Ph = E.get("ph");
    const json::Value *Pid = E.get("pid");
    const json::Value *Tid = E.get("tid");
    const json::Value *Ts = E.get("ts");
    if (!Name || !Name->isString() || Name->Str.empty()) {
      Err = Where.str() + ": missing name";
      return false;
    }
    if (!Ph || !Ph->isString()) {
      Err = Where.str() + ": missing ph";
      return false;
    }
    if (!Pid || !Pid->isNumber() || !Tid || !Tid->isNumber()) {
      Err = Where.str() + ": missing pid/tid";
      return false;
    }
    if (!Ts || !Ts->isNumber()) {
      Err = Where.str() + ": missing ts";
      return false;
    }
    if (Ph->Str != "X") {
      // The exporter only emits complete events; other phase types are
      // legal trace_event but unexpected here.
      Err = Where.str() + ": unexpected phase '" + Ph->Str + "'";
      return false;
    }
    const json::Value *Dur = E.get("dur");
    if (!Dur || !Dur->isNumber() || Dur->Num < 0.0) {
      Err = Where.str() + ": missing or negative dur";
      return false;
    }
    PerThread[{Pid->Num, Tid->Num}].push_back(
        Span{Ts->Num, Ts->Num + Dur->Num});
  }

  // Per-thread proper nesting: walking spans sorted (start asc, end desc)
  // with a stack of open intervals, every span must fit entirely inside
  // the enclosing open span or start at/after its end. Eps absorbs the
  // double rounding from the ns -> fractional-us conversion.
  const double Eps = 1e-3;
  for (auto &[Key, Spans] : PerThread) {
    std::stable_sort(Spans.begin(), Spans.end(),
                     [](const Span &A, const Span &B) {
                       if (A.Start != B.Start)
                         return A.Start < B.Start;
                       return A.End > B.End;
                     });
    std::vector<Span> Stack;
    for (const Span &Sp : Spans) {
      while (!Stack.empty() && Stack.back().End <= Sp.Start + Eps)
        Stack.pop_back();
      if (!Stack.empty() && Sp.End > Stack.back().End + Eps) {
        std::ostringstream OS;
        OS << "span [" << Sp.Start << ", " << Sp.End
           << ") on tid " << Key.second
           << " overlaps but does not nest inside [" << Stack.back().Start
           << ", " << Stack.back().End << ")";
        Err = OS.str();
        return false;
      }
      Stack.push_back(Sp);
    }
  }

  if (NumEventsOut)
    *NumEventsOut = EventsV->Arr.size();
  return true;
}
