//===- obs/Json.h - Minimal JSON parser + Chrome trace validator ---------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny recursive-descent JSON reader, just enough to validate the
/// framework's own exports (Chrome traces, stats dumps, BENCH_*.json)
/// without an external dependency. Numbers are doubles, objects are
/// key-sorted maps; no streaming, no comments, strict UTF-8 passthrough.
///
/// `validateChromeTrace` layers the trace_event schema checks on top:
/// a traceEvents array of complete ("X") events with the required keys,
/// and per-(pid, tid) proper nesting — every pair of spans on a thread
/// either disjoint or one containing the other, which the RAII tracer
/// guarantees by construction and the exporter must not destroy.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_OBS_JSON_H
#define SPT_OBS_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spt {
namespace json {

/// One parsed JSON value. A tagged union kept deliberately simple; the
/// validators only ever walk it, never mutate it.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::map<std::string, Value> Obj;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  /// Object member lookup; null when absent or not an object.
  const Value *get(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : &It->second;
  }
};

/// Parses \p Text. On success returns true and fills \p Out; on failure
/// returns false and \p Err holds a one-line message with an offset.
bool parse(const std::string &Text, Value &Out, std::string &Err);

} // namespace json

/// Checks that \p Text is valid JSON in Chrome trace_event format with
/// properly nested spans (see file comment). Returns true on success;
/// otherwise \p Err names the first violation. \p NumEventsOut (optional)
/// receives the event count.
bool validateChromeTrace(const std::string &Text, std::string &Err,
                         size_t *NumEventsOut = nullptr);

} // namespace spt

#endif // SPT_OBS_JSON_H
