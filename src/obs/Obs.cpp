//===- obs/Obs.cpp - Stats snapshot rendering ----------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include <cstdio>
#include <sstream>

using namespace spt;

namespace {

// Escapes a metric/span name for embedding in a JSON string. Names are
// ASCII identifiers with dots and spaces, but loop spans embed function
// and header names from user programs, so escape defensively.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string spt::renderStatsText(const StatsSnapshot &S) {
  std::ostringstream OS;
  OS << "== counters (" << S.Counters.size() << ")\n";
  for (const auto &[Name, V] : S.Counters)
    OS << "  " << Name << " " << V << "\n";
  OS << "== histograms (" << S.Histograms.size() << ")\n";
  for (const auto &[Name, Row] : S.Histograms) {
    OS << "  " << Name << " count=" << Row.Count << " sum=" << Row.Sum
       << "\n";
    for (const auto &[Bucket, N] : Row.Buckets) {
      // Bucket i covers [2^(i-1), 2^i); bucket 0 is exactly zero.
      const uint64_t Lo = Bucket == 0 ? 0 : (uint64_t{1} << (Bucket - 1));
      const uint64_t Hi = Bucket == 0 ? 0 : (uint64_t{1} << Bucket) - 1;
      OS << "    [" << Lo << ".." << Hi << "] " << N << "\n";
    }
  }
  OS << "== spans (" << S.SpanCounts.size() << ")\n";
  for (const auto &[Name, N] : S.SpanCounts)
    OS << "  " << Name << " x" << N << "\n";
  return OS.str();
}

std::string spt::renderStatsJson(const StatsSnapshot &S) {
  std::ostringstream OS;
  OS << "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, V] : S.Counters) {
    OS << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Name)
       << "\": " << V;
    First = false;
  }
  OS << (First ? "" : "\n  ") << "},\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, Row] : S.Histograms) {
    OS << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Name)
       << "\": {\"count\": " << Row.Count << ", \"sum\": " << Row.Sum
       << ", \"buckets\": [";
    bool FirstB = true;
    for (const auto &[Bucket, N] : Row.Buckets) {
      OS << (FirstB ? "" : ", ") << "[" << Bucket << ", " << N << "]";
      FirstB = false;
    }
    OS << "]}";
    First = false;
  }
  OS << (First ? "" : "\n  ") << "},\n  \"spans\": {";
  First = true;
  for (const auto &[Name, N] : S.SpanCounts) {
    OS << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Name)
       << "\": " << N;
    First = false;
  }
  OS << (First ? "" : "\n  ") << "}\n}\n";
  return OS.str();
}
