//===- obs/Obs.h - Counters, histograms and the observability context ----===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline observability layer. An `ObsContext` bundles a span Tracer
/// with a typed counter/histogram registry; every instrumented component
/// (driver stages, PartitionSearch, MisspecCostModel, SptSim, the fuzzer
/// oracles) receives a nullable `ObsContext *` and does nothing when it is
/// null, so the disabled pipeline pays one pointer test per site.
///
/// Determinism contract: counters are additive (or max-merged) integers
/// updated with relaxed atomics, so their totals are independent of thread
/// interleaving — the same compilation yields the same StatsSnapshot at
/// Jobs=1 and Jobs=8. Hot loops do not touch the registry directly; they
/// accumulate plain integers locally and flush once per search / per
/// simulation (see PartitionSearch::run and runSpt). The stats dump
/// deliberately excludes wall-clock durations — those live only in the
/// Chrome trace export — so the text/JSON dumps are byte-reproducible.
///
/// Naming: counter names are dotted lowercase paths, `component.detail`,
/// e.g. "partition.prune.size" or "cost.scratch.evals.cone". See
/// docs/observability.md for the full catalogue.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_OBS_OBS_H
#define SPT_OBS_OBS_H

#include "obs/Tracer.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spt {

/// A monotonically increasing integer metric. Updates are relaxed atomics:
/// totals are exact and thread-interleaving independent, ordering is not
/// promised (none is needed — counters are only read after the work joins).
class Counter {
public:
  void add(uint64_t Delta) { V.fetch_add(Delta, std::memory_order_relaxed); }
  void inc() { add(1); }
  /// Raises the counter to at least \p X (for high-water marks such as the
  /// undo-trail depth). Max-merge is also interleaving independent.
  void max(uint64_t X) {
    uint64_t Cur = V.load(std::memory_order_relaxed);
    while (Cur < X &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed))
      ;
  }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// An integer-valued distribution bucketed by powers of two: bucket i
/// counts samples in [2^(i-1), 2^i), bucket 0 counts zeros. Power-of-two
/// buckets keep the histogram deterministic (bucket membership depends
/// only on the sample, never on timing) while still showing shape.
class Histogram {
public:
  static constexpr int NumBuckets = 32;

  void add(uint64_t X) {
    Buckets[bucketFor(X)].fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(X, std::memory_order_relaxed);
  }

  static int bucketFor(uint64_t X) {
    int B = 0;
    while (X > 0 && B < NumBuckets - 1) {
      X >>= 1;
      ++B;
    }
    return B;
  }

  uint64_t bucket(int I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  uint64_t count() const {
    uint64_t N = 0;
    for (int I = 0; I < NumBuckets; ++I)
      N += bucket(I);
    return N;
  }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Sum{0};
};

/// Deterministic snapshot of a registry: sorted name -> value maps plus
/// span occurrence counts. This is what CompilationReport carries and what
/// the text/JSON dumps render; it contains no wall-clock data.
struct StatsSnapshot {
  std::map<std::string, uint64_t> Counters;
  /// name -> (total count, sum, per-bucket counts for nonempty buckets as
  /// (bucket index, count) pairs).
  struct HistogramRow {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    std::vector<std::pair<int, uint64_t>> Buckets;
  };
  std::map<std::string, HistogramRow> Histograms;
  std::map<std::string, uint64_t> SpanCounts;

  bool empty() const {
    return Counters.empty() && Histograms.empty() && SpanCounts.empty();
  }
};

/// Owns the named counters and histograms. Lookup takes a mutex but
/// instrumented hot paths hold the returned Counter* across the whole
/// phase (or accumulate locally and flush once), so the lock is cold.
class Registry {
public:
  /// Returns the counter registered under \p Name, creating it on first
  /// use. The pointer stays valid for the registry's lifetime.
  Counter *counter(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(Mu);
    std::unique_ptr<Counter> &Slot = Counters[Name];
    if (!Slot)
      Slot = std::make_unique<Counter>();
    return Slot.get();
  }

  Histogram *histogram(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(Mu);
    std::unique_ptr<Histogram> &Slot = Histograms[Name];
    if (!Slot)
      Slot = std::make_unique<Histogram>();
    return Slot.get();
  }

  void snapshotInto(StatsSnapshot &Out) const {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &[Name, C] : Counters)
      Out.Counters[Name] = C->value();
    for (const auto &[Name, H] : Histograms) {
      StatsSnapshot::HistogramRow Row;
      Row.Count = H->count();
      Row.Sum = H->sum();
      for (int I = 0; I < Histogram::NumBuckets; ++I)
        if (uint64_t N = H->bucket(I))
          Row.Buckets.emplace_back(I, N);
      Out.Histograms[Name] = std::move(Row);
    }
  }

private:
  mutable std::mutex Mu;
  // std::map keeps snapshot order sorted by name without a second pass.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// The handle threaded through the pipeline. Null pointer == observability
/// disabled; every helper below accepts null and does nothing.
class ObsContext {
public:
  Registry Metrics;
  Tracer Trace;

  StatsSnapshot snapshot() const {
    StatsSnapshot S;
    Metrics.snapshotInto(S);
    S.SpanCounts = Trace.spanCounts();
    return S;
  }
};

/// Null-safe counter add.
inline void obsAdd(ObsContext *Obs, const char *Name, uint64_t Delta) {
  if (Obs && Delta)
    Obs->Metrics.counter(Name)->add(Delta);
}
/// Null-safe counter max-merge.
inline void obsMax(ObsContext *Obs, const char *Name, uint64_t X) {
  if (Obs && X)
    Obs->Metrics.counter(Name)->max(X);
}
/// Null-safe histogram sample.
inline void obsSample(ObsContext *Obs, const char *Name, uint64_t X) {
  if (Obs)
    Obs->Metrics.histogram(Name)->add(X);
}

/// RAII span: opens on construction, records on destruction. Accepts a
/// null context, in which case construction is a pointer test and nothing
/// is recorded.
class ObsSpan {
public:
  ObsSpan(ObsContext *Obs, std::string Name)
      : Obs(Obs), Name(Obs ? std::move(Name) : std::string()),
        StartNs(Obs ? Obs->Trace.nowNs() : 0) {}
  ~ObsSpan() {
    if (Obs)
      Obs->Trace.record(std::move(Name), StartNs);
  }
  ObsSpan(const ObsSpan &) = delete;
  ObsSpan &operator=(const ObsSpan &) = delete;

private:
  ObsContext *Obs;
  std::string Name;
  uint64_t StartNs;
};

/// Renders \p S as a flat, deterministic, human-readable table: one
/// `name value` line per counter, histograms as count/sum plus nonempty
/// buckets, span names with occurrence counts. Byte-identical across runs
/// with the same seed and across Jobs settings.
std::string renderStatsText(const StatsSnapshot &S);

/// Same content as renderStatsText but as a JSON object with "counters",
/// "histograms" and "spans" members. Deterministic (sorted keys, integers
/// only).
std::string renderStatsJson(const StatsSnapshot &S);

} // namespace spt

#endif // SPT_OBS_OBS_H
