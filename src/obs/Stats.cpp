//===- obs/Stats.cpp - Streaming statistics accumulators -----------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Stats.h"

#include <cassert>
#include <cmath>

using namespace spt;

void RunningStat::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    if (X < Min)
      Min = X;
    if (X > Max)
      Max = X;
  }
  ++N;
  Sum += X;
}

void GeoMean::add(double X) {
  assert(X > 0.0 && "geometric mean requires positive samples");
  ++N;
  LogSum += std::log(X);
}

double GeoMean::value() const {
  if (N == 0)
    return 0.0;
  return std::exp(LogSum / static_cast<double>(N));
}

void Correlation::add(double X, double Y) {
  ++N;
  SumX += X;
  SumY += Y;
  SumXX += X * X;
  SumYY += Y * Y;
  SumXY += X * Y;
}

double Correlation::pearson() const {
  if (N < 2)
    return 0.0;
  const double DN = static_cast<double>(N);
  const double Cov = SumXY - SumX * SumY / DN;
  const double VarX = SumXX - SumX * SumX / DN;
  const double VarY = SumYY - SumY * SumY / DN;
  if (VarX <= 0.0 || VarY <= 0.0)
    return 0.0;
  return Cov / std::sqrt(VarX * VarY);
}
