//===- obs/Stats.h - Streaming statistics accumulators -------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small accumulators used by the benchmark harnesses: running mean/min/max,
/// geometric mean (the paper reports average speedups), and Pearson
/// correlation (used to evaluate Figure 19's estimated-cost vs measured
/// re-execution-ratio relationship).
///
/// Formerly support/Statistics.h; folded into obs/ so the framework has one
/// home for metrics (these streaming accumulators plus the Counter /
/// Histogram registries in obs/Obs.h), not two.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_OBS_STATS_H
#define SPT_OBS_STATS_H

#include <cstdint>

namespace spt {

/// Accumulates count/mean/min/max of a stream of doubles.
class RunningStat {
public:
  void add(double X);

  uint64_t count() const { return N; }
  double mean() const { return N == 0 ? 0.0 : Sum / static_cast<double>(N); }
  double sum() const { return Sum; }
  double min() const { return N == 0 ? 0.0 : Min; }
  double max() const { return N == 0 ? 0.0 : Max; }

private:
  uint64_t N = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Accumulates the geometric mean of a stream of positive values.
class GeoMean {
public:
  /// Adds \p X to the product. \p X must be positive.
  void add(double X);

  uint64_t count() const { return N; }
  double value() const;

private:
  uint64_t N = 0;
  double LogSum = 0.0;
};

/// Accumulates Pearson's correlation coefficient between paired samples.
class Correlation {
public:
  void add(double X, double Y);

  uint64_t count() const { return N; }

  /// Returns r in [-1, 1]; 0 when fewer than two samples or when either
  /// variable has zero variance.
  double pearson() const;

private:
  uint64_t N = 0;
  double SumX = 0.0, SumY = 0.0, SumXX = 0.0, SumYY = 0.0, SumXY = 0.0;
};

} // namespace spt

#endif // SPT_OBS_STATS_H
