//===- obs/Tracer.cpp - Chrome trace_event export ------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Tracer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace spt;

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string spt::exportChromeTrace(const Tracer &T) {
  std::vector<Tracer::Event> Events = T.events();
  // Parents before children within a thread: earlier start first, and at
  // equal start the longer (enclosing) span first. Perfetto accepts any
  // order but the nesting validator in obs/Json.cpp relies on this.
  std::stable_sort(Events.begin(), Events.end(),
                   [](const Tracer::Event &A, const Tracer::Event &B) {
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     return A.DurNs > B.DurNs;
                   });
  // trace_event timestamps are microseconds; emit all three fractional
  // digits so the ns-exact containment relation between parent and child
  // spans survives the unit change (the nesting validator depends on it).
  const auto Us = [](uint64_t Ns) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                  static_cast<unsigned long long>(Ns / 1000),
                  static_cast<unsigned long long>(Ns % 1000));
    return std::string(Buf);
  };
  std::ostringstream OS;
  OS << "{\"traceEvents\": [";
  bool First = true;
  for (const Tracer::Event &E : Events) {
    OS << (First ? "\n" : ",\n");
    OS << "  {\"name\": \"" << jsonEscape(E.Name)
       << "\", \"cat\": \"spt\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << E.Tid << ", \"ts\": " << Us(E.StartNs) << ", \"dur\": "
       << Us(E.DurNs) << "}";
    First = false;
  }
  OS << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return OS.str();
}
