//===- obs/Tracer.h - Span-based pipeline tracing ---------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The span collector behind the pipeline observability layer. A span is a
/// named wall-clock interval on one thread; spans opened while another span
/// is live on the same thread nest inside it (RAII guarantees proper
/// nesting per thread, which the Chrome trace_event exporter and its
/// validator rely on).
///
/// Thread safety: spans may begin and end on any thread (the pass-1
/// ThreadPool workers trace their loop candidates concurrently); recording
/// takes one short mutex hold per span end. Thread ids are mapped to small
/// dense integers in first-appearance order.
///
/// Cost model: the tracer is only ever reached through an `ObsContext *`
/// that is null when observability is off, so the disabled pipeline pays
/// one pointer test per would-be span and nothing else (see obs/Obs.h's
/// ObsSpan).
///
//===----------------------------------------------------------------------===//

#ifndef SPT_OBS_TRACER_H
#define SPT_OBS_TRACER_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace spt {

/// Collects completed spans. One tracer per ObsContext.
class Tracer {
public:
  /// One completed span. Times are nanoseconds since the tracer's own
  /// epoch (construction time), so exported timestamps start near zero.
  struct Event {
    std::string Name;
    uint32_t Tid = 0;
    uint64_t StartNs = 0;
    uint64_t DurNs = 0;
  };

  Tracer() : Epoch(std::chrono::steady_clock::now()) {}

  /// Nanoseconds since the tracer's epoch.
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// Records one completed span ending now.
  void record(std::string Name, uint64_t StartNs) {
    const uint64_t EndNs = nowNs();
    std::lock_guard<std::mutex> Lock(Mu);
    Events.push_back(Event{std::move(Name), currentTidLocked(),
                           StartNs, EndNs - StartNs});
  }

  /// Snapshot of every recorded span, in recording order.
  std::vector<Event> events() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Events;
  }

  /// Number of distinct threads that recorded spans.
  uint32_t numThreads() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return static_cast<uint32_t>(Tids.size());
  }

  /// Span occurrence counts per name, sorted by name — the deterministic
  /// slice of the trace (durations and thread ids are wall-clock noise;
  /// which spans ran, and how often, is not).
  std::map<std::string, uint64_t> spanCounts() const {
    std::map<std::string, uint64_t> Counts;
    std::lock_guard<std::mutex> Lock(Mu);
    for (const Event &E : Events)
      ++Counts[E.Name];
    return Counts;
  }

private:
  uint32_t currentTidLocked() {
    const std::thread::id Id = std::this_thread::get_id();
    auto It = Tids.find(Id);
    if (It == Tids.end())
      It = Tids.emplace(Id, static_cast<uint32_t>(Tids.size())).first;
    return It->second;
  }

  mutable std::mutex Mu;
  std::vector<Event> Events;
  std::map<std::thread::id, uint32_t> Tids;
  std::chrono::steady_clock::time_point Epoch;
};

/// Serializes \p T into Chrome trace_event JSON (complete "X" events),
/// loadable in chrome://tracing and Perfetto. Events are sorted by
/// (tid, start, -duration) so parents precede their children.
std::string exportChromeTrace(const Tracer &T);

} // namespace spt

#endif // SPT_OBS_TRACER_H
