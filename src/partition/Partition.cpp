//===- partition/Partition.cpp - Optimal SPT loop partitioning -------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "partition/Partition.h"

#include "support/Debug.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <queue>

using namespace spt;

PartitionSearch::PartitionSearch(const LoopDepGraph &G,
                                 const MisspecCostModel &Model,
                                 const PartitionOptions &Opts)
    : G(G), Model(Model), Opts(Opts) {
  SizeThreshold = Opts.PreForkSizeFraction * G.dynamicBodyWeight();
  buildVcGraph();
  if (!Opts.ReferenceEvaluation &&
      G.violationCandidates().size() <= Opts.MaxViolationCandidates)
    buildPlans();
}

void PartitionSearch::buildVcGraph() {
  const std::vector<uint32_t> &Vcs = G.violationCandidates();
  const uint32_t NumVcs = static_cast<uint32_t>(Vcs.size());
  const uint32_t NumStmts = static_cast<uint32_t>(G.size());

  // Statement-level move closure of each violation candidate: all
  // intra-iteration predecessors, transitively, plus — for any definition
  // that moves — every *earlier* definition of the same register on an
  // intra-iteration path (the transformation cannot realize an un-moved
  // definition ordered before a moved one; unrolled clones hit this).
  // Registers with moved and later un-moved definitions remain allowed:
  // that is the SVP prediction/recovery pattern.
  std::map<Reg, std::vector<uint32_t>> DefsOfReg;
  for (uint32_t SI = 0; SI != NumStmts; ++SI)
    if (G.stmt(SI).I && G.stmt(SI).I->Dst != NoReg)
      DefsOfReg[G.stmt(SI).I->Dst].push_back(SI);

  std::vector<std::vector<uint32_t>> Closures(NumVcs);
  std::vector<int32_t> VcOfStmt(NumStmts, -1);
  for (uint32_t V = 0; V != NumVcs; ++V)
    VcOfStmt[Vcs[V]] = static_cast<int32_t>(V);

  for (uint32_t V = 0; V != NumVcs; ++V) {
    std::vector<uint8_t> Seen(NumStmts, 0);
    std::vector<uint32_t> Work = {Vcs[V]};
    Seen[Vcs[V]] = 1;
    while (!Work.empty()) {
      const uint32_t Cur = Work.back();
      Work.pop_back();
      Closures[V].push_back(Cur);
      if (G.stmt(Cur).I && G.stmt(Cur).I->Dst != NoReg)
        for (uint32_t Earlier : DefsOfReg[G.stmt(Cur).I->Dst])
          if (!Seen[Earlier] && G.canPrecedeIntra(Earlier, Cur)) {
            Seen[Earlier] = 1;
            Work.push_back(Earlier);
          }
      for (uint32_t EI : G.inEdges(Cur)) {
        const DepEdge &E = G.edges()[EI];
        if (E.Cross || Seen[E.Src])
          continue;
        // Register anti/output dependences do not constrain motion: the
        // SPT transformation breaks the overlapped live ranges with
        // temporary variables (paper Figures 2, 10 and 11). Memory has no
        // rename, so memory anti/output edges do constrain.
        if (E.Kind == DepKind::AntiReg || E.Kind == DepKind::OutReg)
          continue;
        Seen[E.Src] = 1;
        Work.push_back(E.Src);
      }
    }
    std::sort(Closures[V].begin(), Closures[V].end());
  }

  // VC-level dependence: u -> v when u's statement is inside v's closure.
  std::vector<std::vector<uint32_t>> VcPreds(NumVcs);
  for (uint32_t V = 0; V != NumVcs; ++V)
    for (uint32_t StmtIdx : Closures[V]) {
      const int32_t U = VcOfStmt[StmtIdx];
      if (U >= 0 && static_cast<uint32_t>(U) != V)
        VcPreds[V].push_back(static_cast<uint32_t>(U));
    }

  // Strongly-connected components (iterative Tarjan) so cyclic candidate
  // groups move all-or-nothing.
  std::vector<int32_t> Comp(NumVcs, -1);
  {
    std::vector<uint32_t> Index(NumVcs, ~0u), Low(NumVcs, 0);
    std::vector<uint8_t> OnStack(NumVcs, 0);
    std::vector<uint32_t> Stack;
    uint32_t NextIndex = 0;
    int32_t NextComp = 0;

    // Successor lists (reverse of preds).
    std::vector<std::vector<uint32_t>> VcSuccs(NumVcs);
    for (uint32_t V = 0; V != NumVcs; ++V)
      for (uint32_t P : VcPreds[V])
        VcSuccs[P].push_back(V);

    struct TarjanFrame {
      uint32_t Node;
      size_t NextSucc;
    };
    for (uint32_t Root = 0; Root != NumVcs; ++Root) {
      if (Index[Root] != ~0u)
        continue;
      std::vector<TarjanFrame> Frames = {{Root, 0}};
      Index[Root] = Low[Root] = NextIndex++;
      Stack.push_back(Root);
      OnStack[Root] = 1;
      while (!Frames.empty()) {
        TarjanFrame &F = Frames.back();
        if (F.NextSucc < VcSuccs[F.Node].size()) {
          const uint32_t S = VcSuccs[F.Node][F.NextSucc++];
          if (Index[S] == ~0u) {
            Index[S] = Low[S] = NextIndex++;
            Stack.push_back(S);
            OnStack[S] = 1;
            Frames.push_back(TarjanFrame{S, 0});
          } else if (OnStack[S]) {
            Low[F.Node] = std::min(Low[F.Node], Index[S]);
          }
          continue;
        }
        if (Low[F.Node] == Index[F.Node]) {
          for (;;) {
            const uint32_t W = Stack.back();
            Stack.pop_back();
            OnStack[W] = 0;
            Comp[W] = NextComp;
            if (W == F.Node)
              break;
          }
          ++NextComp;
        }
        const uint32_t DoneNode = F.Node;
        Frames.pop_back();
        if (!Frames.empty())
          Low[Frames.back().Node] =
              std::min(Low[Frames.back().Node], Low[DoneNode]);
      }
    }

    // Build condensed nodes.
    const int32_t NumComps = NextComp;
    std::vector<VcNode> Condensed(static_cast<size_t>(NumComps));
    for (uint32_t V = 0; V != NumVcs; ++V) {
      VcNode &N = Condensed[static_cast<size_t>(Comp[V])];
      N.Vcs.push_back(Vcs[V]);
      for (uint32_t StmtIdx : Closures[V])
        N.Closure.push_back(StmtIdx);
    }
    for (VcNode &N : Condensed) {
      std::sort(N.Closure.begin(), N.Closure.end());
      N.Closure.erase(std::unique(N.Closure.begin(), N.Closure.end()),
                      N.Closure.end());
      for (uint32_t StmtIdx : N.Closure) {
        N.ClosureWeight +=
            G.stmt(StmtIdx).Weight * G.stmt(StmtIdx).IterFreq;
        if (!G.stmt(StmtIdx).Movable)
          N.Movable = false;
      }
    }
    // Condensed predecessor edges.
    for (uint32_t V = 0; V != NumVcs; ++V)
      for (uint32_t P : VcPreds[V])
        if (Comp[P] != Comp[V])
          Condensed[static_cast<size_t>(Comp[V])].Preds.push_back(
              static_cast<uint32_t>(Comp[P]));
    for (VcNode &N : Condensed) {
      std::sort(N.Preds.begin(), N.Preds.end());
      N.Preds.erase(std::unique(N.Preds.begin(), N.Preds.end()),
                    N.Preds.end());
    }

    // Topological sort (Kahn, smallest-first via a min-heap — the ready
    // set pops in the same order the retired min_element scan produced).
    std::vector<uint32_t> InDeg(Condensed.size(), 0);
    std::vector<std::vector<uint32_t>> Succ(Condensed.size());
    for (uint32_t CI = 0; CI != Condensed.size(); ++CI)
      for (uint32_t P : Condensed[CI].Preds) {
        ++InDeg[CI];
        Succ[P].push_back(CI);
      }
    std::priority_queue<uint32_t, std::vector<uint32_t>,
                        std::greater<uint32_t>>
        Ready;
    for (uint32_t CI = 0; CI != Condensed.size(); ++CI)
      if (InDeg[CI] == 0)
        Ready.push(CI);
    std::vector<uint32_t> TopoOrder;
    while (!Ready.empty()) {
      const uint32_t Cur = Ready.top();
      Ready.pop();
      TopoOrder.push_back(Cur);
      for (uint32_t S : Succ[Cur])
        if (--InDeg[S] == 0)
          Ready.push(S);
    }
    assert(TopoOrder.size() == Condensed.size() &&
           "condensation must be acyclic");

    // Emit nodes in topological order with remapped pred indices.
    std::vector<uint32_t> NewIndex(Condensed.size(), 0);
    for (uint32_t Pos = 0; Pos != TopoOrder.size(); ++Pos)
      NewIndex[TopoOrder[Pos]] = Pos;
    Nodes.resize(Condensed.size());
    for (uint32_t CI = 0; CI != Condensed.size(); ++CI) {
      VcNode N = std::move(Condensed[CI]);
      for (uint32_t &P : N.Preds)
        P = NewIndex[P];
      std::sort(N.Preds.begin(), N.Preds.end());
      Nodes[NewIndex[CI]] = std::move(N);
    }
  }
}

void PartitionSearch::buildPlans() {
  NodePlans.resize(Nodes.size());
  for (size_t NI = 0; NI != Nodes.size(); ++NI)
    NodePlans[NI] = Model.planToggle(Nodes[NI].Vcs);
  std::vector<uint32_t> Acc;
  for (const VcNode &N : Nodes)
    if (N.Movable)
      Acc.insert(Acc.end(), N.Vcs.begin(), N.Vcs.end());
  AllMovablePlan = Model.planToggle(std::move(Acc));
}

double PartitionSearch::evaluate(const std::vector<uint8_t> &Marks) {
  ++Stats.CostEvals;
  PartitionSet P(Marks.begin(), Marks.end());
  return Model.cost(P);
}

double PartitionSearch::lowerBound(const std::vector<uint8_t> &Picked,
                                   uint32_t MinNext) {
  ++Stats.CostEvals;
  // Hypothetically move every still-addable candidate: costs only shrink
  // as candidates move, so this bounds all descendants from below.
  PartitionSet P(G.size(), 0);
  for (uint32_t NI = 0; NI != Nodes.size(); ++NI) {
    const bool Hypothetical = NI >= MinNext && Nodes[NI].Movable;
    if (!Picked[NI] && !Hypothetical)
      continue;
    for (uint32_t Vc : Nodes[NI].Vcs)
      P[Vc] = 1;
  }
  return Model.cost(P);
}

bool PartitionSearch::outOfBudget() {
  if (Stats.BudgetExhausted)
    return true;
  if (Stats.NodesVisited >= Opts.MaxSearchNodes) {
    Stats.BudgetExhausted = true;
    return true;
  }
  // NodesVisited is 1 at the first check (incremented on node entry), so
  // compare against 1 mod stride or a short search never reads the clock.
  // The shared CancelToken rides the same stride: it is the request-level
  // deadline, and checking it here is what lets a batch deadline stop a
  // search mid-tree instead of only between loops.
  if ((DeadlineNs != 0 || Opts.Cancel) &&
      Stats.NodesVisited % DeadlineCheckStride == 1) {
    if (isCancelled(Opts.Cancel)) {
      Stats.BudgetExhausted = true;
      return true;
    }
    if (DeadlineNs != 0) {
      const uint64_t NowNs = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
      if (NowNs >= DeadlineNs) {
        Stats.BudgetExhausted = true;
        return true;
      }
    }
  }
  return false;
}

void PartitionSearch::recordIncumbent(const std::vector<uint8_t> &Picked,
                                      const std::vector<uint8_t> &CurMarks,
                                      double Cost, double CurWeight,
                                      PartitionResult &Best) const {
  if (!(CurWeight <= SizeThreshold + 1e-12 && Cost < Best.Cost - 1e-12))
    return;
  Best.Cost = Cost;
  Best.InPreFork.assign(CurMarks.begin(), CurMarks.end());
  Best.PreForkWeight = CurWeight;
  Best.ChosenVcs.clear();
  for (uint32_t NI = 0; NI != Nodes.size(); ++NI)
    if (Picked[NI])
      Best.ChosenVcs.insert(Best.ChosenVcs.end(), Nodes[NI].Vcs.begin(),
                            Nodes[NI].Vcs.end());
  std::sort(Best.ChosenVcs.begin(), Best.ChosenVcs.end());
}

//===----------------------------------------------------------------------===//
// Incremental search (default)
//===----------------------------------------------------------------------===//

void PartitionSearch::searchFast(uint32_t MinNext,
                                 std::vector<uint8_t> &Picked,
                                 PartitionResult &Best) {
  ++Stats.NodesVisited;

  // The committed scratch already holds this node's partition and cost
  // (seeded by initScratch at the root, by commitToggle on descend).
  recordIncumbent(Picked, Marks, Scratch.Cost, Weight, Best);

  if (outOfBudget())
    return;

  // LbScratch invariant: at each cursor position it holds committed ∪
  // movable-suffix(Next), so the lower-bound probe below is a cached
  // read. Moving past a movable node (for any reason — preds unmet,
  // either prune, or a completed descend) advances the scratch with one
  // cone-local un-toggle; all advances are undone before returning so
  // the caller's suffix state reappears.
  uint32_t LbAdvances = 0;
  const auto AdvanceLb = [&](uint32_t Next) {
    if (Opts.EnableLowerBoundPrune) {
      // Deferred: the cost tail re-sum settles at the next probe, once
      // for the whole run of advances since the previous one.
      Model.commitUntoggleDeferred(LbScratch, NodePlans[Next]);
      ++LbAdvances;
    }
  };

  for (uint32_t Next = MinNext; Next < Nodes.size(); ++Next) {
    const VcNode &N = Nodes[Next];
    if (!N.Movable)
      continue;
    bool PredsSatisfied = true;
    for (uint32_t P : N.Preds)
      if (!Picked[P]) {
        PredsSatisfied = false;
        break;
      }
    if (!PredsSatisfied) {
      AdvanceLb(Next);
      continue;
    }

    // Heuristic 1: pre-fork size threshold. The newly added closure
    // statements go onto the flat AddedBuf stack (popped on backtrack).
    const size_t AddedBase = AddedBuf.size();
    double NewWeight = Weight;
    for (uint32_t StmtIdx : N.Closure)
      if (!Marks[StmtIdx]) {
        AddedBuf.push_back(StmtIdx);
        NewWeight += G.stmt(StmtIdx).Weight * G.stmt(StmtIdx).IterFreq;
      }
    if (Opts.EnableSizePrune && NewWeight > SizeThreshold + 1e-12) {
      AddedBuf.resize(AddedBase);
      ++Stats.SizePrunes;
      AdvanceLb(Next);
      continue;
    }

    // Heuristic 2: monotone lower bound on the subtree's cost. The
    // still-addable candidates at Next are exactly the movable suffix,
    // whose cost the sliding scratch already holds — bit-identical to
    // evaluating committed ∪ suffix afresh.
    if (Opts.EnableLowerBoundPrune) {
      ++Stats.CostEvals;
      const double Lb = Model.refreshCost(LbScratch);
      if (Lb >= Best.Cost - 1e-12) {
        AddedBuf.resize(AddedBase);
        ++Stats.LowerBoundPrunes;
        AdvanceLb(Next);
        continue;
      }
    }

    // Descend. LbScratch needs no update: the child's committed ∪
    // suffix(Next + 1) is the partition it already holds.
    Picked[Next] = 1;
    for (size_t K = AddedBase; K != AddedBuf.size(); ++K)
      Marks[AddedBuf[K]] = 1;
    const double OldWeight = Weight;
    Weight = NewWeight;
    ++Stats.CostEvals;
    Model.commitToggle(Scratch, NodePlans[Next]);
    searchFast(Next + 1, Picked, Best);
    Model.undoToggle(Scratch);
    Weight = OldWeight;
    for (size_t K = AddedBase; K != AddedBuf.size(); ++K)
      Marks[AddedBuf[K]] = 0;
    AddedBuf.resize(AddedBase);
    Picked[Next] = 0;
    AdvanceLb(Next);

    if (outOfBudget())
      break;
  }

  for (; LbAdvances != 0; --LbAdvances)
    Model.undoToggle(LbScratch);
}

//===----------------------------------------------------------------------===//
// Reference search (retained pre-optimization code)
//===----------------------------------------------------------------------===//

void PartitionSearch::searchReference(uint32_t MinNext,
                                      std::vector<uint8_t> &Picked,
                                      std::vector<uint32_t> &UnionClosure,
                                      PartitionResult &Best) {
  ++Stats.NodesVisited;

  // Evaluate the current partition.
  std::vector<uint8_t> CurMarks(G.size(), 0);
  double CurWeight = 0.0;
  for (uint32_t StmtIdx : UnionClosure) {
    CurMarks[StmtIdx] = 1;
    CurWeight += G.stmt(StmtIdx).Weight * G.stmt(StmtIdx).IterFreq;
  }
  const double Cost = evaluate(CurMarks);
  recordIncumbent(Picked, CurMarks, Cost, CurWeight, Best);

  if (outOfBudget())
    return;

  for (uint32_t Next = MinNext; Next < Nodes.size(); ++Next) {
    const VcNode &N = Nodes[Next];
    if (!N.Movable)
      continue;
    bool PredsSatisfied = true;
    for (uint32_t P : N.Preds)
      if (!Picked[P]) {
        PredsSatisfied = false;
        break;
      }
    if (!PredsSatisfied)
      continue;

    // Heuristic 1: pre-fork size threshold.
    double NewWeight = CurWeight;
    std::vector<uint32_t> Added;
    for (uint32_t StmtIdx : N.Closure)
      if (!CurMarks[StmtIdx]) {
        Added.push_back(StmtIdx);
        NewWeight += G.stmt(StmtIdx).Weight * G.stmt(StmtIdx).IterFreq;
      }
    if (Opts.EnableSizePrune && NewWeight > SizeThreshold + 1e-12) {
      ++Stats.SizePrunes;
      continue;
    }

    // Heuristic 2: monotone lower bound on the subtree's cost.
    if (Opts.EnableLowerBoundPrune) {
      Picked[Next] = 1;
      const double Lb = lowerBound(Picked, Next + 1);
      Picked[Next] = 0;
      if (Lb >= Best.Cost - 1e-12) {
        ++Stats.LowerBoundPrunes;
        continue;
      }
    }

    // Descend.
    Picked[Next] = 1;
    for (uint32_t StmtIdx : Added) {
      CurMarks[StmtIdx] = 1;
      UnionClosure.push_back(StmtIdx);
    }
    searchReference(Next + 1, Picked, UnionClosure, Best);
    for (size_t K = 0; K != Added.size(); ++K)
      UnionClosure.pop_back();
    for (uint32_t StmtIdx : Added)
      CurMarks[StmtIdx] = 0;
    Picked[Next] = 0;

    if (outOfBudget())
      return;
  }
}

//===----------------------------------------------------------------------===//
// K-way chain search (machines with more than one speculative core)
//===----------------------------------------------------------------------===//

void PartitionSearch::recordKwayIncumbent(
    const std::vector<uint8_t> &Picked, const std::vector<uint8_t> &CurMarks,
    double Cost, double CurWeight, double Mult, double Threshold,
    KwayCutRecord &Best) const {
  const double J = CurWeight + Mult * Cost;
  if (!(CurWeight <= Threshold + 1e-12 && J < Best.Objective - 1e-12))
    return;
  Best.Objective = J;
  Best.Cost = Cost;
  Best.PreForkWeight = CurWeight;
  Best.InPreFork.assign(CurMarks.begin(), CurMarks.end());
  Best.ChosenVcs.clear();
  for (uint32_t NI = 0; NI != Nodes.size(); ++NI)
    if (Picked[NI])
      Best.ChosenVcs.insert(Best.ChosenVcs.end(), Nodes[NI].Vcs.begin(),
                            Nodes[NI].Vcs.end());
  std::sort(Best.ChosenVcs.begin(), Best.ChosenVcs.end());
}

// Mirrors searchFast: the committed Scratch holds the current node's
// partition, LbScratch slides over the movable *unpicked* suffix, and the
// lower-bound prune compares NewWeight + Mult * cost-lower-bound against
// the incumbent objective (weights only grow and costs only shrink along
// a branch, so the bound is sound for the chain objective too). Nodes the
// base cut already picked are committed, not part of the suffix, and are
// skipped without an LbScratch advance.
void PartitionSearch::kwaySearchFast(uint32_t MinNext,
                                     std::vector<uint8_t> &Picked,
                                     double Mult, double Threshold,
                                     KwayCutRecord &Best) {
  ++Stats.NodesVisited;

  recordKwayIncumbent(Picked, Marks, Scratch.Cost, Weight, Mult, Threshold,
                      Best);

  if (outOfBudget())
    return;

  uint32_t LbAdvances = 0;
  const auto AdvanceLb = [&](uint32_t Next) {
    if (Opts.EnableLowerBoundPrune) {
      Model.commitUntoggleDeferred(LbScratch, NodePlans[Next]);
      ++LbAdvances;
    }
  };

  for (uint32_t Next = MinNext; Next < Nodes.size(); ++Next) {
    const VcNode &N = Nodes[Next];
    if (!N.Movable || Picked[Next])
      continue;
    bool PredsSatisfied = true;
    for (uint32_t P : N.Preds)
      if (!Picked[P]) {
        PredsSatisfied = false;
        break;
      }
    if (!PredsSatisfied) {
      AdvanceLb(Next);
      continue;
    }

    const size_t AddedBase = AddedBuf.size();
    double NewWeight = Weight;
    for (uint32_t StmtIdx : N.Closure)
      if (!Marks[StmtIdx]) {
        AddedBuf.push_back(StmtIdx);
        NewWeight += G.stmt(StmtIdx).Weight * G.stmt(StmtIdx).IterFreq;
      }
    if (Opts.EnableSizePrune && NewWeight > Threshold + 1e-12) {
      AddedBuf.resize(AddedBase);
      ++Stats.SizePrunes;
      AdvanceLb(Next);
      continue;
    }

    if (Opts.EnableLowerBoundPrune) {
      ++Stats.CostEvals;
      const double LbJ = NewWeight + Mult * Model.refreshCost(LbScratch);
      if (LbJ >= Best.Objective - 1e-12) {
        AddedBuf.resize(AddedBase);
        ++Stats.LowerBoundPrunes;
        AdvanceLb(Next);
        continue;
      }
    }

    Picked[Next] = 1;
    for (size_t K = AddedBase; K != AddedBuf.size(); ++K)
      Marks[AddedBuf[K]] = 1;
    const double OldWeight = Weight;
    Weight = NewWeight;
    ++Stats.CostEvals;
    Model.commitToggle(Scratch, NodePlans[Next]);
    kwaySearchFast(Next + 1, Picked, Mult, Threshold, Best);
    Model.undoToggle(Scratch);
    Weight = OldWeight;
    for (size_t K = AddedBase; K != AddedBuf.size(); ++K)
      Marks[AddedBuf[K]] = 0;
    AddedBuf.resize(AddedBase);
    Picked[Next] = 0;
    AdvanceLb(Next);

    if (outOfBudget())
      break;
  }

  for (; LbAdvances != 0; --LbAdvances)
    Model.undoToggle(LbScratch);
}

// Mirrors searchReference: per-node closure rebuild and allocating cost
// calls, walking exactly the tree kwaySearchFast walks (same prunes on
// the same bit-identical values).
void PartitionSearch::kwaySearchReference(uint32_t MinNext,
                                          std::vector<uint8_t> &Picked,
                                          std::vector<uint32_t> &UnionClosure,
                                          double Mult, double Threshold,
                                          KwayCutRecord &Best) {
  ++Stats.NodesVisited;

  std::vector<uint8_t> CurMarks(G.size(), 0);
  double CurWeight = 0.0;
  for (uint32_t StmtIdx : UnionClosure) {
    CurMarks[StmtIdx] = 1;
    CurWeight += G.stmt(StmtIdx).Weight * G.stmt(StmtIdx).IterFreq;
  }
  const double Cost = evaluate(CurMarks);
  recordKwayIncumbent(Picked, CurMarks, Cost, CurWeight, Mult, Threshold,
                      Best);

  if (outOfBudget())
    return;

  for (uint32_t Next = MinNext; Next < Nodes.size(); ++Next) {
    const VcNode &N = Nodes[Next];
    if (!N.Movable || Picked[Next])
      continue;
    bool PredsSatisfied = true;
    for (uint32_t P : N.Preds)
      if (!Picked[P]) {
        PredsSatisfied = false;
        break;
      }
    if (!PredsSatisfied)
      continue;

    double NewWeight = CurWeight;
    std::vector<uint32_t> Added;
    for (uint32_t StmtIdx : N.Closure)
      if (!CurMarks[StmtIdx]) {
        Added.push_back(StmtIdx);
        NewWeight += G.stmt(StmtIdx).Weight * G.stmt(StmtIdx).IterFreq;
      }
    if (Opts.EnableSizePrune && NewWeight > Threshold + 1e-12) {
      ++Stats.SizePrunes;
      continue;
    }

    if (Opts.EnableLowerBoundPrune) {
      Picked[Next] = 1;
      const double Lb = lowerBound(Picked, Next + 1);
      Picked[Next] = 0;
      const double LbJ = NewWeight + Mult * Lb;
      if (LbJ >= Best.Objective - 1e-12) {
        ++Stats.LowerBoundPrunes;
        continue;
      }
    }

    Picked[Next] = 1;
    for (uint32_t StmtIdx : Added) {
      CurMarks[StmtIdx] = 1;
      UnionClosure.push_back(StmtIdx);
    }
    kwaySearchReference(Next + 1, Picked, UnionClosure, Mult, Threshold,
                        Best);
    for (size_t K = 0; K != Added.size(); ++K)
      UnionClosure.pop_back();
    for (uint32_t StmtIdx : Added)
      CurMarks[StmtIdx] = 0;
    Picked[Next] = 0;

    if (outOfBudget())
      return;
  }
}

KwayPartitionResult PartitionSearch::runKway(const PartitionResult &Base,
                                             uint32_t Levels) {
  KwayPartitionResult Out;
  Out.Levels = std::max(Levels, 1u);
  if (!Base.Searched)
    return Out;
  Out.Searched = true;

  // Level 1 is the machine-independent base cut, verbatim; its objective
  // under the chain metric is PreForkWeight + 1 * Cost.
  KwayCutRecord First;
  First.ChosenVcs = Base.ChosenVcs;
  First.InPreFork = Base.InPreFork;
  First.Cost = Base.Cost;
  First.PreForkWeight = Base.PreForkWeight;
  First.Objective = Base.PreForkWeight + Base.Cost;
  Out.Cuts.push_back(std::move(First));
  Out.ChainCost = Base.Cost;

  Stats = PartitionResult();
  if (Opts.MaxSearchSeconds > 0.0) {
    const uint64_t NowNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    DeadlineNs = NowNs + static_cast<uint64_t>(Opts.MaxSearchSeconds * 1e9);
  } else {
    DeadlineNs = 0;
  }

  // Node-level picks of a cut: a node is picked iff every one of its VCs
  // is among the cut's chosen candidates (the search always picks whole
  // condensed nodes, so this round-trips exactly).
  std::vector<uint8_t> Picked(Nodes.size(), 0);
  const auto PickFromVcs = [&](const std::vector<uint32_t> &Vcs) {
    std::vector<uint8_t> InCut(G.size(), 0);
    for (uint32_t Vc : Vcs)
      InCut[Vc] = 1;
    for (uint32_t NI = 0; NI != Nodes.size(); ++NI) {
      bool All = !Nodes[NI].Vcs.empty();
      for (uint32_t Vc : Nodes[NI].Vcs)
        if (!InCut[Vc])
          All = false;
      Picked[NI] = All ? 1 : 0;
    }
  };
  PickFromVcs(Base.ChosenVcs);

  for (uint32_t D = 2; D <= Out.Levels; ++D) {
    const double Mult = static_cast<double>(D);
    const double Threshold = std::min(Base.BodyWeight, Mult * SizeThreshold);
    const KwayCutRecord &Prev = Out.Cuts.back();
    KwayCutRecord BestCut;
    if (Opts.ReferenceEvaluation) {
      std::vector<uint32_t> UnionClosure;
      for (uint32_t SI = 0; SI != Prev.InPreFork.size(); ++SI)
        if (Prev.InPreFork[SI])
          UnionClosure.push_back(SI);
      kwaySearchReference(0, Picked, UnionClosure, Mult, Threshold, BestCut);
    } else {
      // Seed the branch state from the previous cut, summing weights in
      // ascending statement order — the same order the reference path's
      // root rebuild uses, so both start from bit-identical weights.
      Marks.assign(G.size(), 0);
      Weight = 0.0;
      AddedBuf.clear();
      for (uint32_t SI = 0; SI != G.size(); ++SI)
        if (SI < Prev.InPreFork.size() && Prev.InPreFork[SI]) {
          Marks[SI] = 1;
          Weight += G.stmt(SI).Weight * G.stmt(SI).IterFreq;
        }
      PartitionSet PrevP(G.size(), 0);
      for (uint32_t Vc : Prev.ChosenVcs)
        PrevP[Vc] = 1;
      ++Stats.CostEvals;
      Model.initScratch(Scratch, PrevP);
      if (Opts.EnableLowerBoundPrune && !Nodes.empty()) {
        Model.initScratch(LbScratch, PrevP);
        std::vector<uint32_t> Acc;
        for (uint32_t NI = 0; NI != Nodes.size(); ++NI)
          if (Nodes[NI].Movable && !Picked[NI])
            Acc.insert(Acc.end(), Nodes[NI].Vcs.begin(),
                       Nodes[NI].Vcs.end());
        Model.commitToggle(LbScratch, Model.planToggle(std::move(Acc)));
      }
      kwaySearchFast(0, Picked, Mult, Threshold, BestCut);
    }
    PickFromVcs(BestCut.ChosenVcs);
    Out.ChainCost += BestCut.Cost;
    Out.Cuts.push_back(std::move(BestCut));
  }

  Out.NodesVisited = Stats.NodesVisited;
  Out.CostEvals = Stats.CostEvals;

  if (ObsContext *Obs = Opts.Obs) {
    obsAdd(Obs, "partition.kway.searches", 1);
    obsAdd(Obs, "partition.kway.levels", Out.Cuts.size());
    obsAdd(Obs, "partition.kway.nodes.visited", Out.NodesVisited);
    obsAdd(Obs, "partition.kway.cost.evals", Out.CostEvals);
  }
  return Out;
}

PartitionResult PartitionSearch::run() {
  PartitionResult Best;
  Best.BodyWeight = G.dynamicBodyWeight();
  Best.NumViolationCandidates =
      static_cast<uint32_t>(G.violationCandidates().size());

  if (G.violationCandidates().size() > Opts.MaxViolationCandidates) {
    Best.Searched = false;
    obsAdd(Opts.Obs, "partition.searches", 1);
    obsAdd(Opts.Obs, "partition.skipped.too_many_vcs", 1);
    return Best;
  }
  Best.Searched = true;

  Stats = PartitionResult();
  if (Opts.MaxSearchSeconds > 0.0) {
    const uint64_t NowNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    DeadlineNs = NowNs + static_cast<uint64_t>(Opts.MaxSearchSeconds * 1e9);
  } else {
    DeadlineNs = 0;
  }
  std::vector<uint8_t> Picked(Nodes.size(), 0);
  if (Opts.ReferenceEvaluation) {
    std::vector<uint32_t> UnionClosure;
    searchReference(0, Picked, UnionClosure, Best);
  } else {
    Marks.assign(G.size(), 0);
    Weight = 0.0;
    AddedBuf.clear();
    PartitionSet Empty(G.size(), 0);
    ++Stats.CostEvals;
    Model.initScratch(Scratch, Empty);
    if (Opts.EnableLowerBoundPrune && !Nodes.empty()) {
      Model.initScratch(LbScratch, Empty);
      Model.commitToggle(LbScratch, AllMovablePlan);
    }
    searchFast(0, Picked, Best);
  }

  Best.NodesVisited = Stats.NodesVisited;
  Best.SizePrunes = Stats.SizePrunes;
  Best.LowerBoundPrunes = Stats.LowerBoundPrunes;
  Best.CostEvals = Stats.CostEvals;
  Best.BudgetExhausted = Stats.BudgetExhausted;
  if (Best.InPreFork.empty())
    Best.InPreFork.assign(G.size(), 0);

  // Single batched observability flush per search: the hot path above
  // only bumps plain integers (Stats and the scratches' EvalStats).
  if (ObsContext *Obs = Opts.Obs) {
    obsAdd(Obs, "partition.searches", 1);
    obsAdd(Obs, "partition.nodes.visited", Best.NodesVisited);
    obsAdd(Obs, "partition.prune.size", Best.SizePrunes);
    obsAdd(Obs, "partition.prune.lower_bound", Best.LowerBoundPrunes);
    obsAdd(Obs, "partition.cost.evals", Best.CostEvals);
    obsAdd(Obs, "partition.budget.exhausted", Best.BudgetExhausted ? 1 : 0);
    obsSample(Obs, "partition.nodes_per_search", Best.NodesVisited);
    const auto FlushScratch = [&](const MisspecCostModel::Scratch &S) {
      obsAdd(Obs, "cost.scratch.inits", S.Stat.Inits);
      obsAdd(Obs, "cost.scratch.reuses", S.Stat.Reuses);
      obsAdd(Obs, "cost.scratch.evals.cone", S.Stat.ConeEvals);
      obsAdd(Obs, "cost.scratch.evals.full_fixpoint", S.Stat.FullEvals);
      obsAdd(Obs, "cost.scratch.commits.cone", S.Stat.ConeCommits);
      obsAdd(Obs, "cost.scratch.commits.full_fixpoint", S.Stat.FullCommits);
      obsAdd(Obs, "cost.scratch.undos", S.Stat.Undos);
      obsMax(Obs, "cost.scratch.undo_depth.max", S.Stat.MaxDepth);
    };
    FlushScratch(Scratch);
    FlushScratch(LbScratch);
    if (Opts.ReferenceEvaluation)
      obsAdd(Obs, "partition.reference.evals", Best.CostEvals);
  }
  return Best;
}
