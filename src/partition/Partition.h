//===- partition/Partition.h - Optimal SPT loop partitioning ---------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimal-loop-partition search of the paper's Section 5: find the
/// legal SPT loop partition minimizing misspeculation cost subject to a
/// pre-fork-region size threshold.
///
/// A partition is identified by a set of violation candidates placed in the
/// pre-fork region; the statements actually moved are the candidates'
/// dependence closures (every intra-iteration predecessor — flow, anti,
/// output and control — must move too, which is exactly the paper's
/// "maintain all forward intra-iteration dependence edges" legality rule).
///
/// The search is branch-and-bound over the violation-candidate dependence
/// graph (VC-dep graph), visiting candidate sets in topological order so
/// each pre-fork region is enumerated once, with the paper's two pruning
/// heuristics:
///   1. stop descending when the pre-fork region exceeds the size
///      threshold (sizes grow monotonically along a branch), and
///   2. stop when a lower bound — the cost with every still-addable
///      candidate hypothetically moved — cannot beat the incumbent
///      (costs shrink monotonically as candidates move).
/// Loops with more than MaxViolationCandidates are skipped outright, as in
/// the paper.
///
/// Two evaluation strategies drive the identical search tree:
///
///  - The *incremental* strategy (default) keeps a MisspecCostModel::Scratch
///    committed to the current tree node's partition, updated via
///    commitToggle()/undoToggle() on descend/backtrack; the lower bound is
///    one costWithToggled() against a precomputed suffix TogglePlan (the
///    still-addable candidates of positions >= Next are exactly the movable
///    suffix, so no per-call set union is needed). Marks and the pre-fork
///    weight are maintained incrementally along the branch. Nothing on the
///    hot path allocates.
///  - The *reference* strategy (PartitionOptions::ReferenceEvaluation)
///    retains the pre-optimization code: per-node Marks rebuild from the
///    union closure, a PartitionSet copy per evaluation, and allocating
///    MisspecCostModel::cost() calls. It exists as the measured baseline of
///    bench/perf_compile and as the oracle for the equivalence tests —
///    both strategies visit the same nodes, take the same prunes, and
///    return bit-identical costs and partitions.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_PARTITION_PARTITION_H
#define SPT_PARTITION_PARTITION_H

#include "analysis/DepGraph.h"
#include "cost/CostModel.h"
#include "obs/Obs.h"
#include "support/CancelToken.h"

#include <cstdint>
#include <limits>
#include <vector>

namespace spt {

/// Search configuration.
struct PartitionOptions {
  /// Pre-fork region size threshold, as a fraction of the loop body's
  /// dynamic weight (Section 6.1 criterion 2 uses the same threshold).
  double PreForkSizeFraction = 0.34;
  /// Skip loops with more violation candidates than this (Section 5.2.1).
  uint32_t MaxViolationCandidates = 30;
  /// Hard cap on search-tree nodes (safety net; the paper's pruning keeps
  /// real searches far below this).
  uint64_t MaxSearchNodes = 1u << 20;
  /// Wall-clock deadline for one search, in seconds; 0 disables it. Like
  /// MaxSearchNodes this truncates rather than fails: the best incumbent
  /// found so far is returned with BudgetExhausted set.
  double MaxSearchSeconds = 0.0;
  /// Shared cooperative cancellation (null disables it). Polled on the
  /// same stride as the wall-clock deadline, so a request-level token —
  /// which carries one ABSOLUTE deadline across every search of a
  /// compilation, unlike MaxSearchSeconds which restarts per loop — is
  /// honored mid-search instead of overshooting by a full loop search.
  /// Firing truncates exactly like the other budgets: the best incumbent
  /// is kept and BudgetExhausted is set.
  const CancelToken *Cancel = nullptr;
  /// Ablation toggles for the two pruning heuristics.
  bool EnableSizePrune = true;
  bool EnableLowerBoundPrune = true;
  /// Use the retained pre-optimization evaluation path (allocating cost
  /// calls, per-node closure rebuilds, O(nodes*vcs) lower-bound unions).
  /// The perf_compile baseline and the equivalence tests set this; results
  /// are bit-identical to the default incremental path.
  bool ReferenceEvaluation = false;
  /// Observability sink; null (the default) disables recording. The hot
  /// search path never touches it — run() flushes its statistics and the
  /// scratches' evaluation counters once, after the search finishes.
  ObsContext *Obs = nullptr;
};

/// Result of the optimal-partition search for one loop.
struct PartitionResult {
  /// False when the loop was skipped (too many violation candidates).
  bool Searched = false;
  /// True when the search was truncated — the node budget ran out or the
  /// wall-clock deadline passed — so the partition is the best incumbent,
  /// not a proven optimum. Callers should keep it (graceful degradation)
  /// but must not report the search as exhaustive.
  bool BudgetExhausted = false;
  /// Stmt-level pre-fork membership (dependence closure of the chosen
  /// candidates); size equals the dep graph's statement count.
  PartitionSet InPreFork;
  /// Chosen violation candidates (statement indices).
  std::vector<uint32_t> ChosenVcs;
  /// Misspeculation cost of the best partition found.
  double Cost = std::numeric_limits<double>::infinity();
  /// Dynamic weight of the pre-fork region.
  double PreForkWeight = 0.0;
  /// Dynamic weight of the whole loop body.
  double BodyWeight = 0.0;
  /// Search statistics (for the ablation benches).
  uint64_t NodesVisited = 0;
  uint64_t SizePrunes = 0;
  uint64_t LowerBoundPrunes = 0;
  /// Cost-model evaluations performed (node evaluations plus lower-bound
  /// probes); identical across both evaluation strategies.
  uint64_t CostEvals = 0;
  uint32_t NumViolationCandidates = 0;
};

/// One cut of a k-way partition chain (see PartitionSearch::runKway).
/// Cut d's pre-fork region is a superset of cut d-1's: on a machine with
/// more than one speculative core, the d-th chained speculative thread
/// forks after the statements of cut d, so deeper cuts trade a larger
/// serial prefix for a cheaper misspeculation exposure.
struct KwayCutRecord {
  /// Chosen violation candidates (statement indices, sorted).
  std::vector<uint32_t> ChosenVcs;
  /// Stmt-level pre-fork membership (dependence closure of ChosenVcs).
  PartitionSet InPreFork;
  /// Misspeculation cost of this cut's partition.
  double Cost = std::numeric_limits<double>::infinity();
  /// Dynamic weight of this cut's pre-fork region.
  double PreForkWeight = 0.0;
  /// The level objective the search minimized:
  /// PreForkWeight + level * Cost.
  double Objective = std::numeric_limits<double>::infinity();
};

/// Result of the k-way chain search: one cut per level, Cuts[0] being
/// the machine-independent base partition from run().
struct KwayPartitionResult {
  bool Searched = false;
  uint32_t Levels = 0;
  std::vector<KwayCutRecord> Cuts;
  /// Sum of the cuts' misspeculation costs — the chain's total exposure.
  double ChainCost = 0.0;
  /// Search statistics over all levels (for the equivalence tests and
  /// the partition.kway.* observability counters).
  uint64_t NodesVisited = 0;
  uint64_t CostEvals = 0;
};

/// The violation-candidate dependence graph plus the search driver.
class PartitionSearch {
public:
  PartitionSearch(const LoopDepGraph &G, const MisspecCostModel &Model,
                  const PartitionOptions &Opts = PartitionOptions());

  /// Runs the branch-and-bound search.
  PartitionResult run();

  /// Generalizes \p Base (a result of run() on this same search) to a
  /// k-way partition chain for a machine with \p Levels speculative
  /// cores: level 1 is the base cut verbatim; each deeper level d runs
  /// the same branch-and-bound over *supersets* of level d-1's chosen
  /// candidates, minimizing the chain objective
  ///   J_d(P) = PreForkWeight(P) + d * cost(P)
  /// subject to the relaxed size threshold min(BodyWeight,
  /// d * SizeThreshold) — the d-th chained thread forks later, so its
  /// serial prefix may be proportionally larger, but its misspeculation
  /// cost is paid by every downstream segment. Both evaluation
  /// strategies (PartitionOptions::ReferenceEvaluation) walk the same
  /// tree and return bit-identical cuts, like run().
  KwayPartitionResult runKway(const PartitionResult &Base, uint32_t Levels);

  /// Number of VC-dep-graph nodes (condensed strongly-connected
  /// components of violation candidates).
  size_t numVcNodes() const { return Nodes.size(); }

  /// The statement-level move closure of one VC node (for tests).
  const std::vector<uint32_t> &nodeClosure(size_t NodeIdx) const {
    return Nodes[NodeIdx].Closure;
  }

  /// Whether the node can legally move (its closure is fully movable).
  bool nodeMovable(size_t NodeIdx) const { return Nodes[NodeIdx].Movable; }

  /// The violation candidates grouped into one VC node.
  const std::vector<uint32_t> &nodeVcs(size_t NodeIdx) const {
    return Nodes[NodeIdx].Vcs;
  }

  /// Dynamic weight of the node's move closure.
  double nodeClosureWeight(size_t NodeIdx) const {
    return Nodes[NodeIdx].ClosureWeight;
  }

private:
  /// One VC-dep-graph node: a strongly-connected component of violation
  /// candidates (usually a singleton), in topological order.
  struct VcNode {
    std::vector<uint32_t> Vcs;     ///< Violation-candidate stmt indices.
    std::vector<uint32_t> Closure; ///< Move closure (stmt indices, sorted).
    std::vector<uint32_t> Preds;   ///< VC-node indices this depends on.
    double ClosureWeight = 0.0;    ///< Dynamic weight of the closure.
    bool Movable = true;
  };

  void buildVcGraph();
  /// Precomputes the per-node and movable-suffix toggle plans the
  /// incremental search reuses at every tree node.
  void buildPlans();
  /// True when the node budget or the wall-clock deadline is spent; sets
  /// Stats.BudgetExhausted on first detection.
  bool outOfBudget();

  // Incremental strategy (default).
  void searchFast(uint32_t MinNext, std::vector<uint8_t> &Picked,
                  PartitionResult &Best);

  // Reference strategy (retained pre-optimization code).
  void searchReference(uint32_t MinNext, std::vector<uint8_t> &Picked,
                       std::vector<uint32_t> &UnionClosure,
                       PartitionResult &Best);
  double evaluate(const std::vector<uint8_t> &Marks);
  double lowerBound(const std::vector<uint8_t> &Picked, uint32_t MinNext);

  void recordIncumbent(const std::vector<uint8_t> &Picked,
                       const std::vector<uint8_t> &CurMarks, double Cost,
                       double CurWeight, PartitionResult &Best) const;

  // K-way chain search (one level; supersets of the already-Picked base
  // nodes, minimizing CurWeight + Mult * cost under Threshold).
  void kwaySearchFast(uint32_t MinNext, std::vector<uint8_t> &Picked,
                      double Mult, double Threshold, KwayCutRecord &Best);
  void kwaySearchReference(uint32_t MinNext, std::vector<uint8_t> &Picked,
                           std::vector<uint32_t> &UnionClosure, double Mult,
                           double Threshold, KwayCutRecord &Best);
  void recordKwayIncumbent(const std::vector<uint8_t> &Picked,
                           const std::vector<uint8_t> &CurMarks, double Cost,
                           double CurWeight, double Mult, double Threshold,
                           KwayCutRecord &Best) const;

  const LoopDepGraph &G;
  const MisspecCostModel &Model;
  PartitionOptions Opts;
  std::vector<VcNode> Nodes; ///< Topologically sorted.
  double SizeThreshold = 0.0;
  uint64_t VisitBudget = 0;
  /// Wall-clock deadline in steady_clock nanoseconds-since-epoch units;
  /// 0 when no deadline is armed. Checked every DeadlineCheckStride visits
  /// so the clock read does not dominate small searches.
  uint64_t DeadlineNs = 0;
  static constexpr uint64_t DeadlineCheckStride = 1024;
  PartitionResult Stats;

  // Incremental-search state (prepared once per PartitionSearch; the hot
  // path never allocates).
  MisspecCostModel::Scratch Scratch;
  /// Sliding lower-bound scratch. Throughout a tree node's child loop it
  /// holds the committed partition united with the movable suffix at the
  /// loop cursor — exactly the optimistic partition the monotone lower
  /// bound evaluates — so each probe is a read of LbScratch.Cost. The
  /// state needs no update on descend (committed ∪ {Next} ∪
  /// suffix(Next+1) is the same set as committed ∪ suffix(Next)) and one
  /// cone-local commitUntoggle() whenever the loop moves past a movable
  /// node; every level undoes its own advances on exit.
  MisspecCostModel::Scratch LbScratch;
  std::vector<MisspecCostModel::TogglePlan> NodePlans;
  /// Plan toggling the VCs of every movable node: seeds LbScratch at the
  /// root (committed = ∅, suffix = everything). Because picks happen in
  /// ascending node order the still-addable set is always a suffix, and
  /// LbScratch reaches any suffix by un-toggling node plans one at a
  /// time — no per-position suffix plans are needed.
  MisspecCostModel::TogglePlan AllMovablePlan;
  std::vector<uint8_t> Marks; ///< Branch-maintained closure membership.
  double Weight = 0.0;        ///< Branch-maintained pre-fork weight.
  std::vector<uint32_t> AddedBuf; ///< Flat stack of per-level added stmts.
};

} // namespace spt

#endif // SPT_PARTITION_PARTITION_H
