//===- profile/DepProfiler.cpp - Dependence-profile artifacts -------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "profile/DepProfiler.h"

#include "analysis/Cfg.h"
#include "analysis/LoopInfo.h"
#include "ir/IR.h"
#include "ir/IRPrinter.h"
#include "profile/Profiler.h"
#include "support/Hash.h"
#include "support/OStream.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>

using namespace spt;

uint64_t spt::moduleReprintHash(const Module &M) {
  StringOStream OS;
  printModule(OS, M);
  return fnv1a(OS.str());
}

//===----------------------------------------------------------------------===//
// Profiling run → artifact
//===----------------------------------------------------------------------===//

StatusOr<DepProfileArtifact>
spt::profileDependenceArtifact(const Module &M, const DepProfilerOptions &O) {
  ProfilerOptions PO;
  PO.CollectEdges = false;
  PO.CollectDeps = true;
  PO.CollectValues = false;
  PO.AttributeCalleeAccesses = O.AttributeCalleeAccesses;
  PO.MaxSteps = O.MaxSteps;
  PO.RngSeed = O.RngSeed;
  PO.Cancel = O.Cancel;

  ProfileBundle B = profileRun(M, O.Entry, O.Args, PO);
  if (!B.Completed)
    return Status::error("dependence profiling failed: " + B.Error);

  DepProfileArtifact A;
  A.ModuleHash = moduleReprintHash(M);
  A.Workload = O.Workload;
  A.Steps = B.Instrs;

  // The raw profile is keyed by (Function*, LoopId); re-derive the loop
  // nest per function to translate into the structural (name, header)
  // identity — and emit in sorted order so the artifact is deterministic
  // regardless of pointer values.
  for (const auto &KV : B.Deps.PerLoop) {
    const Function *F = KV.first.first;
    const uint32_t LoopId = KV.first.second;
    CfgInfo Cfg = CfgInfo::compute(*F);
    LoopNest Nest = LoopNest::compute(*F, Cfg);
    if (LoopId >= Nest.numLoops())
      continue; // Profile from a stale analysis; drop defensively.
    DepArtifactLoop L;
    L.Func = F->name();
    L.Header = Nest.loop(LoopId)->Header;
    L.Activations = KV.second.Activations;
    L.Iterations = KV.second.Iterations;
    L.StmtExec = KV.second.StmtExec;
    L.Pairs = KV.second.Pairs;
    A.Loops.push_back(std::move(L));
  }
  std::sort(A.Loops.begin(), A.Loops.end(),
            [](const DepArtifactLoop &X, const DepArtifactLoop &Y) {
              if (X.Func != Y.Func)
                return X.Func < Y.Func;
              return X.Header < Y.Header;
            });

  // Self-serialize once to pin the checksum.
  const std::string Text = serializeDepProfile(A);
  StatusOr<DepProfileArtifact> Round = parseDepProfile(Text);
  if (!Round)
    return Status::error("dependence profile failed self-verification: " +
                         Round.message());
  return Round;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

std::string hex16(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016" PRIx64, V);
  return Buf;
}

/// Everything above the checksum line. Labels with whitespace or
/// newlines would corrupt the line format; sanitize them on the way out
/// (parse never needs to reverse this — the label is provenance only).
std::string payloadOf(const DepProfileArtifact &A) {
  std::string S;
  S += "sptprof 1\n";
  S += "module " + hex16(A.ModuleHash) + "\n";
  std::string Label = A.Workload.empty() ? "-" : A.Workload;
  for (char &C : Label)
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r')
      C = '_';
  S += "workload " + Label + "\n";
  S += "steps " + std::to_string(A.Steps) + "\n";
  for (const DepArtifactLoop &L : A.Loops) {
    S += "loop " + L.Func + " " + std::to_string(L.Header) + " " +
         std::to_string(L.Activations) + " " + std::to_string(L.Iterations) +
         "\n";
    for (const auto &KV : L.StmtExec)
      S += "exec " + std::to_string(KV.first) + " " +
           std::to_string(KV.second) + "\n";
    for (const auto &KV : L.Pairs)
      S += "pair " + std::to_string(KV.first.first) + " " +
           std::to_string(KV.first.second) + " " +
           std::to_string(KV.second.Intra) + " " +
           std::to_string(KV.second.Cross) + " " +
           std::to_string(KV.second.Far) + "\n";
  }
  return S;
}

} // namespace

std::string spt::serializeDepProfile(const DepProfileArtifact &A) {
  std::string S = payloadOf(A);
  const uint64_t Sum = fnv1a(S) ^ A.ModuleHash;
  S += "checksum " + hex16(Sum) + "\n";
  return S;
}

StatusOr<DepProfileArtifact> spt::parseDepProfile(const std::string &Text) {
  DepProfileArtifact A;
  DepArtifactLoop *Cur = nullptr;
  size_t ChecksumAt = std::string::npos;
  uint64_t Declared = 0;
  bool SawHeader = false, SawModule = false, SawSteps = false;

  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      return Status::error("dep profile: unterminated final line");
    const std::string Line = Text.substr(Pos, Eol - Pos);
    const size_t LineStart = Pos;
    Pos = Eol + 1;
    if (Line.empty())
      return Status::error("dep profile: empty line");

    char Key[16] = {0};
    if (std::sscanf(Line.c_str(), "%15s", Key) != 1)
      return Status::error("dep profile: malformed line '" + Line + "'");

    if (std::strcmp(Key, "sptprof") == 0) {
      unsigned Version = 0;
      if (std::sscanf(Line.c_str(), "sptprof %u", &Version) != 1 ||
          Version != 1)
        return Status::error("dep profile: unsupported version line '" + Line +
                             "'");
      SawHeader = true;
    } else if (std::strcmp(Key, "module") == 0) {
      if (std::sscanf(Line.c_str(), "module %" SCNx64, &A.ModuleHash) != 1)
        return Status::error("dep profile: bad module line");
      SawModule = true;
    } else if (std::strcmp(Key, "workload") == 0) {
      const size_t Sp = Line.find(' ');
      if (Sp == std::string::npos)
        return Status::error("dep profile: bad workload line");
      A.Workload = Line.substr(Sp + 1);
      if (A.Workload == "-")
        A.Workload.clear();
    } else if (std::strcmp(Key, "steps") == 0) {
      if (std::sscanf(Line.c_str(), "steps %" SCNu64, &A.Steps) != 1)
        return Status::error("dep profile: bad steps line");
      SawSteps = true;
    } else if (std::strcmp(Key, "loop") == 0) {
      char Func[256] = {0};
      uint32_t Header = 0;
      uint64_t Act = 0, Iter = 0;
      if (std::sscanf(Line.c_str(),
                      "loop %255s %" SCNu32 " %" SCNu64 " %" SCNu64, Func,
                      &Header, &Act, &Iter) != 4)
        return Status::error("dep profile: bad loop line '" + Line + "'");
      DepArtifactLoop L;
      L.Func = Func;
      L.Header = Header;
      L.Activations = Act;
      L.Iterations = Iter;
      A.Loops.push_back(std::move(L));
      Cur = &A.Loops.back();
    } else if (std::strcmp(Key, "exec") == 0) {
      uint32_t Stmt = 0;
      uint64_t Count = 0;
      if (!Cur ||
          std::sscanf(Line.c_str(), "exec %" SCNu32 " %" SCNu64, &Stmt,
                      &Count) != 2)
        return Status::error("dep profile: bad exec line '" + Line + "'");
      Cur->StmtExec[Stmt] = Count;
    } else if (std::strcmp(Key, "pair") == 0) {
      uint32_t W = 0, R = 0;
      MemDepCounts C;
      if (!Cur || std::sscanf(Line.c_str(),
                              "pair %" SCNu32 " %" SCNu32 " %" SCNu64
                              " %" SCNu64 " %" SCNu64,
                              &W, &R, &C.Intra, &C.Cross, &C.Far) != 5)
        return Status::error("dep profile: bad pair line '" + Line + "'");
      Cur->Pairs[{W, R}] = C;
    } else if (std::strcmp(Key, "checksum") == 0) {
      if (std::sscanf(Line.c_str(), "checksum %" SCNx64, &Declared) != 1)
        return Status::error("dep profile: bad checksum line");
      if (Pos != Text.size())
        return Status::error("dep profile: trailing data after checksum");
      ChecksumAt = LineStart;
    } else {
      return Status::error("dep profile: unknown record '" + std::string(Key) +
                           "'");
    }
  }

  if (!SawHeader || !SawModule || !SawSteps)
    return Status::error("dep profile: missing header records");
  if (ChecksumAt == std::string::npos)
    return Status::error("dep profile: missing checksum");

  const uint64_t Actual =
      fnv1a(std::string_view(Text.data(), ChecksumAt)) ^ A.ModuleHash;
  if (Actual != Declared)
    return Status::error("dep profile: checksum mismatch (stored " +
                         hex16(Declared) + ", computed " + hex16(Actual) +
                         ") — corrupted artifact or wrong module");
  A.Checksum = Declared;
  return A;
}

//===----------------------------------------------------------------------===//
// Drift
//===----------------------------------------------------------------------===//

double spt::depProfileDrift(const DepProfileArtifact &A,
                            const DepProfileArtifact &B) {
  // Index both sides by structural loop identity.
  using LoopKey = std::pair<std::string, BlockId>;
  std::map<LoopKey, const DepArtifactLoop *> IA, IB;
  for (const DepArtifactLoop &L : A.Loops)
    IA[{L.Func, L.Header}] = &L;
  for (const DepArtifactLoop &L : B.Loops)
    IB[{L.Func, L.Header}] = &L;

  std::set<LoopKey> Keys;
  for (const auto &KV : IA)
    Keys.insert(KV.first);
  for (const auto &KV : IB)
    Keys.insert(KV.first);
  if (Keys.empty())
    return 0.0;

  auto crossRate = [](const DepArtifactLoop *L,
                      std::pair<StmtId, StmtId> Pair) -> double {
    if (!L)
      return 0.0;
    auto It = L->Pairs.find(Pair);
    if (It == L->Pairs.end())
      return 0.0;
    auto ExecIt = L->StmtExec.find(Pair.first);
    const uint64_t WExec =
        ExecIt == L->StmtExec.end() ? 0 : ExecIt->second;
    if (WExec == 0)
      return 0.0;
    const double R =
        static_cast<double>(It->second.Cross) / static_cast<double>(WExec);
    return R > 1.0 ? 1.0 : R;
  };

  // A loop's weight is its cross-iteration conflict mass (the larger of
  // the two sides), not its iteration count: staleness is about conflict
  // *structure* changing, and iteration-weighting would let large
  // conflict-free loops (init sweeps, inner compute loops) dilute a
  // complete reversal in the one loop the speculation decision hinges
  // on. A loop with no cross conflicts on either side carries no weight;
  // when no loop has any, the profiles agree that nothing conflicts and
  // the drift is zero.
  auto crossMass = [](const DepArtifactLoop *L) -> uint64_t {
    uint64_t Mass = 0;
    if (L)
      for (const auto &KV : L->Pairs)
        Mass += KV.second.Cross;
    return Mass;
  };

  double WeightSum = 0.0, Acc = 0.0;
  for (const LoopKey &K : Keys) {
    const DepArtifactLoop *LA = IA.count(K) ? IA[K] : nullptr;
    const DepArtifactLoop *LB = IB.count(K) ? IB[K] : nullptr;
    const uint64_t Mass = std::max(crossMass(LA), crossMass(LB));
    if (Mass == 0)
      continue; // No cross conflicts on either side: no drift signal.
    const double W = static_cast<double>(Mass);
    WeightSum += W;

    // A loop only one side observed is maximal drift for its weight.
    if (!LA || !LB) {
      Acc += W;
      continue;
    }

    std::set<std::pair<StmtId, StmtId>> PairKeys;
    for (const auto &KV : LA->Pairs)
      PairKeys.insert(KV.first);
    for (const auto &KV : LB->Pairs)
      PairKeys.insert(KV.first);

    double D = 0.0;
    for (const auto &P : PairKeys) {
      const double RA = crossRate(LA, P);
      const double RB = crossRate(LB, P);
      D += RA > RB ? RA - RB : RB - RA;
    }
    Acc += W * (D / static_cast<double>(PairKeys.size()));
  }
  return WeightSum <= 0.0 ? 0.0 : Acc / WeightSum;
}

//===----------------------------------------------------------------------===//
// Measured oracle member
//===----------------------------------------------------------------------===//

namespace {

double clamp01(double X) { return X < 0.0 ? 0.0 : (X > 1.0 ? 1.0 : X); }

class MeasuredDepOracle final : public DepOracle {
public:
  explicit MeasuredDepOracle(std::shared_ptr<const DepProfileArtifact> A)
      : Artifact(std::move(A)) {
    for (const DepArtifactLoop &L : Artifact->Loops)
      Index[{L.Func, L.Header}] = &L;
  }

  const char *name() const override { return "measured"; }

  std::optional<DepEstimate> dependence(const DepQuery &Q) const override {
    if (Q.Channel != DepChannel::Memory || !Q.F || !Q.L)
      return std::nullopt;
    auto It = Index.find({Q.F->name(), Q.L->Header});
    if (It == Index.end())
      return std::nullopt; // Loop never observed: abstain.
    const DepArtifactLoop &L = *It->second;
    DepEstimate E;
    E.Confidence = std::min(
        1.0, static_cast<double>(L.Iterations) / ProfiledSaturationIters);
    E.Source = name();
    // A measured zero is only evidence if the profiling run actually
    // watched both statements execute. Queries naming statements with no
    // execution record — typically clones minted by unrolling *after*
    // the artifact was measured — must abstain so the ensemble falls
    // through to static analysis, not report "no conflict" with
    // saturated confidence and green-light speculation the measurements
    // never covered.
    auto ExecIt = L.StmtExec.find(Q.Src);
    const uint64_t WExec = ExecIt == L.StmtExec.end() ? 0 : ExecIt->second;
    auto RExecIt = L.StmtExec.find(Q.Dst);
    const uint64_t RExec = RExecIt == L.StmtExec.end() ? 0 : RExecIt->second;
    if (WExec == 0 || RExec == 0)
      return std::nullopt;
    auto PairIt = L.Pairs.find({Q.Src, Q.Dst});
    if (PairIt == L.Pairs.end()) {
      E.Prob = 0.0;
      return E;
    }
    const uint64_t Hits =
        Q.Cross ? PairIt->second.Cross : PairIt->second.Intra;
    E.Prob = clamp01(static_cast<double>(Hits) / static_cast<double>(WExec));
    return E;
  }

  std::optional<BranchProbEstimate>
  branchProbabilities(const BranchProbQuery &) const override {
    return std::nullopt; // Artifacts carry no edge counts.
  }

private:
  std::shared_ptr<const DepProfileArtifact> Artifact;
  std::map<std::pair<std::string, BlockId>, const DepArtifactLoop *> Index;
};

} // namespace

std::shared_ptr<const DepOracle>
spt::makeMeasuredDepOracle(std::shared_ptr<const DepProfileArtifact> A) {
  if (!A)
    return nullptr;
  return std::make_shared<MeasuredDepOracle>(std::move(A));
}
