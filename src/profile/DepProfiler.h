//===- profile/DepProfiler.h - Dependence-profile artifacts ---------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LAMP/SLAMP-style measured dependence profiles as *artifacts*: a
/// profiling run over the instrumented interpreter (profile/Profiler.h)
/// is distilled into a serializable, checksum-verified record of
/// per-loop, per-(store,load) conflict frequencies that later
/// compilations — including ones in a different process, via the batch
/// compile service — can consume through the measured member of the
/// `DepOracle` ensemble (analysis/oracle/DepOracle.h).
///
/// The artifact is keyed to the program it was measured on: its checksum
/// is fnv1a over the serialized payload XORed with a hash of the
/// module's canonical reprint, so a corrupted file *and* an artifact
/// replayed against a different program are both rejected. Loops are
/// identified structurally (function name + header block id), which is
/// stable across re-parses of the same canonical source.
///
/// Staleness is a first-class concept: `depProfileDrift` compares two
/// artifacts for the same program and returns a [0,1] distance between
/// their conflict-rate distributions. When fresh measurements drift past
/// `AnalysisOptions::DriftThreshold`, recompiling against the fresh
/// profile beats keeping the stale plan — the scenario
/// `sptserve --selfcheck` exercises end to end (docs/profiling.md).
///
//===----------------------------------------------------------------------===//

#ifndef SPT_PROFILE_DEPPROFILER_H
#define SPT_PROFILE_DEPPROFILER_H

#include "analysis/ProfileData.h"
#include "analysis/oracle/DepOracle.h"
#include "interp/Interp.h"
#include "support/CancelToken.h"
#include "support/Status.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spt {

class Module;

/// Measured dependence data for one loop, identified structurally so it
/// survives serialization (no pointers).
struct DepArtifactLoop {
  std::string Func;
  BlockId Header = 0;
  uint64_t Activations = 0;
  uint64_t Iterations = 0;
  /// Executions of each memory statement while the loop was active.
  std::map<StmtId, uint64_t> StmtExec;
  /// (writer, reader) → how often the reader observed the writer's value
  /// same-iteration / next-iteration / further back.
  std::map<std::pair<StmtId, StmtId>, MemDepCounts> Pairs;
};

/// A complete serializable dependence profile for one module.
struct DepProfileArtifact {
  /// fnv1a of the module's canonical reprint (moduleReprintHash).
  uint64_t ModuleHash = 0;
  /// Free-form provenance label (workload name, input description).
  std::string Workload;
  /// Interpreter steps the profiling run executed.
  uint64_t Steps = 0;
  /// Sorted by (Func, Header); unique keys.
  std::vector<DepArtifactLoop> Loops;
  /// fnv1a(serialized payload) ^ ModuleHash. Maintained by
  /// profileDependenceArtifact / serializeDepProfile / parseDepProfile;
  /// this is the fingerprint the serve compile-cache key folds in.
  uint64_t Checksum = 0;
};

/// Canonical-reprint hash of a module (fnv1a over printModule output).
/// The artifact side of the "same program?" handshake.
uint64_t moduleReprintHash(const Module &M);

/// Knobs for one profiling run.
struct DepProfilerOptions {
  std::string Entry = "main";
  std::vector<Value> Args;
  std::string Workload;
  uint64_t MaxSteps = 500000000ull;
  uint64_t RngSeed = 0x5eed5eed5eedull;
  bool AttributeCalleeAccesses = true;
  const CancelToken *Cancel = nullptr;
};

/// Runs Entry(Args) under dependence instrumentation and distills the
/// result into an artifact (checksum already computed). Errors when the
/// run cannot complete (missing entry, step budget, cancellation).
StatusOr<DepProfileArtifact>
profileDependenceArtifact(const Module &M,
                          const DepProfilerOptions &Opts = DepProfilerOptions());

/// Renders the artifact in its canonical text form, checksum line
/// included. The checksum is recomputed from the contents (the stored
/// Checksum field is ignored), so serialize→parse always round-trips.
std::string serializeDepProfile(const DepProfileArtifact &A);

/// Parses and verifies. Rejects unknown versions, malformed lines, and —
/// crucially — checksum mismatches (a flipped byte anywhere in the
/// payload, or a checksum recorded for a different module's payload).
StatusOr<DepProfileArtifact> parseDepProfile(const std::string &Text);

/// [0,1] distance between two artifacts' cross-iteration conflict-rate
/// distributions. 0 = identical rates (or no cross conflicts anywhere on
/// either side); 1 = every conflicting loop's rates completely reversed.
/// Loops are matched by (Func, Header) and weighted by their
/// cross-conflict mass — the loops whose speculation decision the
/// measurements could actually change — so conflict-free init sweeps and
/// inner compute loops never dilute the verdict. Symmetric.
double depProfileDrift(const DepProfileArtifact &A,
                       const DepProfileArtifact &B);

/// Wraps an artifact as the measured member for a DepOracle ensemble
/// (DepOracleConfig::Measured). Answers only memory-channel queries for
/// loops the artifact observed — and only for statements the profiling
/// run actually saw execute; queries naming unobserved statements (e.g.
/// clones minted by unrolling after measurement) are declined so the
/// ensemble falls through to static analysis instead of trusting a
/// vacuous zero. Observed pairs use the same frequency formula as the
/// in-run profiled member and iteration-saturated confidence. Callers
/// are responsible for the module handshake (ModuleHash) — the query
/// carries no module identity.
std::shared_ptr<const DepOracle>
makeMeasuredDepOracle(std::shared_ptr<const DepProfileArtifact> A);

} // namespace spt

#endif // SPT_PROFILE_DEPPROFILER_H
