//===- profile/Profiler.cpp - Edge, dependence and value profiling ---------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "profile/Profiler.h"

#include "analysis/Cfg.h"
#include "analysis/LoopInfo.h"
#include "support/WrapMath.h"

#include <map>
#include <memory>

using namespace spt;

namespace {

/// Synthetic addresses for the hidden state of stateful builtins; both lie
/// below the first array base (0x1000), so they never collide with data.
constexpr uint64_t RngAddr = 8;
constexpr uint64_t IoAddr = 16;

/// Cached per-function structural analyses.
struct FuncAnalyses {
  CfgInfo Cfg;
  LoopNest Nest;
  std::map<BlockId, const Loop *> HeaderToLoop;

  explicit FuncAnalyses(const Function &F)
      : Cfg(CfgInfo::compute(F)), Nest(LoopNest::compute(F, Cfg)) {
    for (uint32_t LI = 0; LI != Nest.numLoops(); ++LI)
      HeaderToLoop[Nest.loop(LI)->Header] = Nest.loop(LI);
  }
};

/// One live loop activation within one frame.
struct LoopActivation {
  const Loop *L = nullptr;
  uint64_t ActivationId = 0;
  uint64_t Iter = 0;
};

/// Shadow of one interpreter frame.
struct ShadowFrame {
  const Function *F = nullptr;
  const FuncAnalyses *FA = nullptr;
  std::vector<LoopActivation> Active; ///< Innermost last.
  /// The Call statement in the *parent* frame that created this frame
  /// (NoStmt for the outermost frame).
  StmtId CallSiteInParent = NoStmt;
};

/// A recorded last-writer tag, one per loop active at write time.
struct WriteTag {
  const Function *LoopFunc = nullptr;
  const Loop *L = nullptr;
  uint64_t ActivationId = 0;
  uint64_t Iter = 0;
  StmtId Stmt = NoStmt;
};

/// Running state for one value-watched statement.
struct ValueWatchState {
  bool HasLast = false;
  int64_t Last = 0;
  uint64_t Samples = 0;
  std::map<int64_t, uint64_t> Diffs; ///< Capped in size.
};

/// The profiler is a StepSink: the interpreter's batched runner streams
/// every StepResult into onStep, which does exactly what the old
/// step()-loop body did (edge/dep/value collection, shadow-stack upkeep,
/// cancellation polling).
class ProfilerRun final : public StepSink {
public:
  ProfilerRun(const Module &M, const ProfilerOptions &Opts)
      : M(M), Opts(Opts) {}

  ProfileBundle run(const std::string &FnName, const std::vector<Value> &Args);

  bool onStep(const StepResult &R) override;

private:
  const FuncAnalyses &analysesFor(const Function *F) {
    auto It = Cache.find(F);
    if (It == Cache.end())
      It = Cache.emplace(F, std::make_unique<FuncAnalyses>(*F)).first;
    return *It->second;
  }

  FunctionEdgeCounts &edgeCountsFor(const Function *F) {
    auto It = Bundle.Edges.PerFunc.find(F);
    if (It == Bundle.Edges.PerFunc.end()) {
      It = Bundle.Edges.PerFunc.emplace(F, FunctionEdgeCounts()).first;
      It->second.resizeFor(*F);
    }
    return It->second;
  }

  LoopDepProfileData &depDataFor(const Function *F, const Loop *L) {
    return Bundle.Deps.PerLoop[{F, L->Id}];
  }

  void enterBlock(ShadowFrame &Sh, BlockId To);
  /// Attributed statement id for the loop stack of frame \p Depth, given
  /// the interpreter's current stack.
  StmtId attributedStmt(const Interpreter &In, size_t Depth, StmtId TopStmt);
  void onMemWrite(const Interpreter &In, uint64_t Addr, StmtId TopStmt);
  void onMemRead(const Interpreter &In, uint64_t Addr, StmtId TopStmt);
  void bumpStmtExec(StmtId TopStmt);
  void onValueSample(const Function *F, StmtId Stmt, int64_t V);

  const Module &M;
  const ProfilerOptions &Opts;
  ProfileBundle Bundle;
  std::map<const Function *, std::unique_ptr<FuncAnalyses>> Cache;
  std::vector<ShadowFrame> Shadow;
  std::map<uint64_t, std::vector<WriteTag>> LastWriter;
  std::map<std::pair<const Function *, StmtId>, ValueWatchState> ValueState;
  uint64_t NextActivationId = 1;
  Interpreter *In = nullptr; ///< The machine runBatch is driving.
  uint64_t Steps = 0;
};

void ProfilerRun::enterBlock(ShadowFrame &Sh, BlockId To) {
  // Leave loops that do not contain the new block.
  while (!Sh.Active.empty() && !Sh.Active.back().L->contains(To))
    Sh.Active.pop_back();

  auto HeaderIt = Sh.FA->HeaderToLoop.find(To);
  if (HeaderIt == Sh.FA->HeaderToLoop.end())
    return;
  const Loop *L = HeaderIt->second;
  if (!Sh.Active.empty() && Sh.Active.back().L == L) {
    // Back edge: a new iteration of the innermost active loop.
    ++Sh.Active.back().Iter;
    if (Opts.CollectDeps)
      ++depDataFor(Sh.F, L).Iterations;
    return;
  }
  // Fresh activation.
  Sh.Active.push_back(LoopActivation{L, NextActivationId++, 0});
  if (Opts.CollectDeps) {
    LoopDepProfileData &D = depDataFor(Sh.F, L);
    ++D.Activations;
    ++D.Iterations;
  }
}

StmtId ProfilerRun::attributedStmt(const Interpreter &In, size_t Depth,
                                   StmtId TopStmt) {
  if (Depth + 1 == Shadow.size())
    return TopStmt;
  if (!Opts.AttributeCalleeAccesses)
    return NoStmt;
  (void)In;
  return Shadow[Depth + 1].CallSiteInParent;
}

void ProfilerRun::bumpStmtExec(StmtId TopStmt) {
  // Executions of a memory-touching statement, counted in every loop of
  // the top frame that contains it.
  ShadowFrame &Sh = Shadow.back();
  for (const LoopActivation &A : Sh.Active)
    ++depDataFor(Sh.F, A.L).StmtExec[TopStmt];
}

void ProfilerRun::onMemWrite(const Interpreter &In, uint64_t Addr,
                             StmtId TopStmt) {
  std::vector<WriteTag> Tags;
  for (size_t D = 0; D != Shadow.size(); ++D) {
    const StmtId Attr = attributedStmt(In, D, TopStmt);
    if (Attr == NoStmt)
      continue;
    for (const LoopActivation &A : Shadow[D].Active)
      Tags.push_back(
          WriteTag{Shadow[D].F, A.L, A.ActivationId, A.Iter, Attr});
  }
  LastWriter[Addr] = std::move(Tags);
}

void ProfilerRun::onMemRead(const Interpreter &In, uint64_t Addr,
                            StmtId TopStmt) {
  auto It = LastWriter.find(Addr);
  if (It == LastWriter.end())
    return;
  for (size_t D = 0; D != Shadow.size(); ++D) {
    const StmtId Attr = attributedStmt(In, D, TopStmt);
    if (Attr == NoStmt)
      continue;
    for (const LoopActivation &A : Shadow[D].Active) {
      // Find the matching activation tag from the write.
      for (const WriteTag &T : It->second) {
        if (T.L != A.L || T.ActivationId != A.ActivationId)
          continue;
        MemDepCounts &C =
            depDataFor(Shadow[D].F, A.L).Pairs[{T.Stmt, Attr}];
        const uint64_t Dist = A.Iter - T.Iter;
        if (Dist == 0)
          ++C.Intra;
        else if (Dist == 1)
          ++C.Cross;
        else
          ++C.Far;
        break;
      }
    }
  }
}

void ProfilerRun::onValueSample(const Function *F, StmtId Stmt, int64_t V) {
  ValueWatchState &S = ValueState[{F, Stmt}];
  if (S.HasLast) {
    ++S.Samples;
    const int64_t Diff = wrapSub(V, S.Last);
    if (S.Diffs.size() < 64 || S.Diffs.count(Diff))
      ++S.Diffs[Diff];
  }
  S.HasLast = true;
  S.Last = V;
}

ProfileBundle ProfilerRun::run(const std::string &FnName,
                               const std::vector<Value> &Args) {
  const Function *F = M.findFunction(FnName);
  if (!F) {
    Bundle.Completed = false;
    Bundle.Error = "profileRun: no such function: " + FnName;
    return Bundle;
  }

  InterpOptions IOpts;
  IOpts.RngSeed = Opts.RngSeed;
  Interpreter Machine(M, IOpts);
  In = &Machine;
  Machine.startCall(F, Args);
  Shadow.push_back(ShadowFrame{F, &analysesFor(F), {}, NoStmt});
  enterBlock(Shadow.back(), F->entry());

  // A token cancelled before the run starts stops it at zero steps, the
  // same answer the old pre-step poll gave.
  if (Opts.Cancel && Opts.Cancel->cancelled()) {
    Bundle.Completed = false;
    Bundle.Error = "profileRun: cancelled after 0 steps";
  } else {
    Machine.runBatch(*this, Opts.MaxSteps);
  }
  if (!Machine.done() && Bundle.Completed) {
    // Budget exhaustion is survivable: the caller gets whatever was
    // measured so far, flagged as incomplete, and decides whether partial
    // profiles are usable (the driver degrades to static analysis).
    // (Cancellation above already set Completed/Error; keep its message.)
    Bundle.Completed = false;
    Bundle.Error = "profileRun: step budget exhausted after " +
                   std::to_string(Steps) + " steps";
  }

  // Finalize value statistics.
  for (auto &[Key, S] : ValueState) {
    StrideStats Stats;
    Stats.Samples = S.Samples;
    auto ZeroIt = S.Diffs.find(0);
    Stats.SameValue = ZeroIt == S.Diffs.end() ? 0 : ZeroIt->second;
    for (const auto &[Diff, Count] : S.Diffs)
      if (Count > Stats.BestStrideHits) {
        Stats.BestStrideHits = Count;
        Stats.BestStride = Diff;
      }
    Bundle.Values.PerStmt[Key] = Stats;
  }

  Bundle.Result = Machine.returnValue();
  Bundle.Output = Machine.output();
  Bundle.Instrs = Steps;
  In = nullptr;
  return Bundle;
}

bool ProfilerRun::onStep(const StepResult &R) {
  ++Steps;
  const StmtId TopStmt = R.I->Id;

  // Edge profile.
  if (Opts.CollectEdges) {
    FunctionEdgeCounts &EC = edgeCountsFor(R.F);
    if (R.Index == 0)
      ++EC.Block[R.Block];
    if (R.IsBranch) {
      const uint32_t SuccIdx =
          R.I->Op == Opcode::Br ? (R.BranchTaken ? 0u : 1u) : 0u;
      ++EC.Edge[R.Block][SuccIdx];
    }
  }

  // Dependence profile.
  if (Opts.CollectDeps) {
    if (R.IsLoad) {
      bumpStmtExec(TopStmt);
      onMemRead(*In, R.Addr, TopStmt);
    } else if (R.IsStore) {
      bumpStmtExec(TopStmt);
      onMemWrite(*In, R.Addr, TopStmt);
    } else if (R.I->Op == Opcode::Call) {
      bumpStmtExec(TopStmt);
      const Function *Callee = M.function(R.I->calleeIndex());
      if (Callee->isExternal()) {
        if (Callee->name() == "rnd") {
          onMemRead(*In, RngAddr, TopStmt);
          onMemWrite(*In, RngAddr, TopStmt);
        } else if (Callee->name() == "print_int" ||
                   Callee->name() == "print_fp") {
          onMemRead(*In, IoAddr, TopStmt);
          onMemWrite(*In, IoAddr, TopStmt);
        }
      }
    }
  }

  // Value profile (integer results only). Calls into defined functions
  // produce their value at the matching return, not at call entry.
  if (Opts.CollectValues && !Opts.ValueWatch.empty()) {
    if (!R.IsCallEnter && R.I->Dst != NoReg && R.I->Ty == Type::Int &&
        Opts.ValueWatch.count({R.F, TopStmt}))
      onValueSample(R.F, TopStmt, R.Result.I);
    if (R.IsReturn && Shadow.size() >= 2 && !R.I->Srcs.empty()) {
      const StmtId CallSite = Shadow.back().CallSiteInParent;
      const Function *Caller = Shadow[Shadow.size() - 2].F;
      if (CallSite != NoStmt && Opts.ValueWatch.count({Caller, CallSite}))
        onValueSample(Caller, CallSite, R.Result.I);
    }
  }

  // Stack and control-flow shadowing.
  if (R.IsCallEnter) {
    const Function *Callee = In->topFrame().F;
    Shadow.push_back(ShadowFrame{Callee, &analysesFor(Callee), {}, TopStmt});
    enterBlock(Shadow.back(), Callee->entry());
  } else if (R.IsReturn) {
    Shadow.pop_back();
  } else if (R.IsBranch) {
    enterBlock(Shadow.back(), R.NextBlock);
  }

  // Token poll stride: cheap relative to an interpreted step, frequent
  // enough that a request deadline stops a runaway profile within
  // microseconds rather than after the full step budget. Polled after the
  // record so "cancelled after N steps" matches the old pre-step check.
  constexpr uint64_t CancelCheckStride = 16384;
  if (Opts.Cancel && Steps % CancelCheckStride == 0 &&
      Opts.Cancel->cancelled()) {
    Bundle.Completed = false;
    Bundle.Error =
        "profileRun: cancelled after " + std::to_string(Steps) + " steps";
    return false;
  }
  return true;
}

} // namespace

ProfileBundle spt::profileRun(const Module &M, const std::string &FnName,
                              const std::vector<Value> &Args,
                              const ProfilerOptions &Opts) {
  ProfilerRun Run(M, Opts);
  return Run.run(FnName, Args);
}
