//===- profile/Profiler.h - Edge, dependence and value profiling -----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline profiling (paper Sections 7.2, 7.3): one instrumented run of the
/// program collects, simultaneously,
///
///  - edge profiles (block and branch-direction counts) feeding the
///    annotated CFG of every compilation mode,
///  - data-dependence profiles: for each loop, for each (writer, reader)
///    statement pair, how often the reader consumed a value the writer
///    produced in the same iteration (intra), in the immediately preceding
///    iteration (cross, the violation window of adjacent-iteration
///    speculation), or farther back, and
///  - value profiles for a watch list of statements (stride / last-value
///    patterns for software value prediction).
///
/// Accesses executed inside callees are attributed to the Call statement
/// of the loop's own frame (configurable; turning attribution off
/// reproduces the paper's cost blind spot for loops with calls). rnd() is
/// modeled as a read+write of a synthetic RNG address and print_* as a
/// write of a synthetic IO address, so their ordering dependences show up
/// in dependence profiles like any memory dependence.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_PROFILE_PROFILER_H
#define SPT_PROFILE_PROFILER_H

#include "analysis/ProfileData.h"
#include "interp/Interp.h"
#include "ir/IR.h"
#include "support/CancelToken.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace spt {

/// Everything one profiling run produces.
struct ProfileBundle {
  EdgeProfileData Edges;
  DepProfileData Deps;
  ValueProfileData Values;

  /// Functional results of the run (for cross-checking against plain
  /// interpretation).
  Value Result;
  std::string Output;
  uint64_t Instrs = 0;

  /// False when the run could not complete — the entry function is missing
  /// or the step budget ran out — in which case the profiles are partial
  /// (possibly empty) and Error says why. Callers that need trustworthy
  /// data must check this; the driver degrades to static analysis instead
  /// of aborting.
  bool Completed = true;
  std::string Error;
};

/// Profiling configuration.
struct ProfilerOptions {
  bool CollectEdges = true;
  bool CollectDeps = true;
  bool CollectValues = true;
  /// Attribute callee memory accesses to the Call statement visible to the
  /// profiled loop. Off reproduces the paper's Figure 19 outliers.
  bool AttributeCalleeAccesses = true;
  /// Statements whose destination value sequence should be profiled
  /// (sampled at each execution).
  std::set<std::pair<const Function *, StmtId>> ValueWatch;
  uint64_t MaxSteps = 500000000ull;
  uint64_t RngSeed = 0x5eed5eed5eedull;
  /// Cooperative cancellation (null disables it), polled every few
  /// thousand interpreted steps. Firing aborts the run like step-budget
  /// exhaustion: the bundle comes back Completed = false with an
  /// explanatory Error, and the driver degrades or abandons it.
  const CancelToken *Cancel = nullptr;
};

/// Runs \p FnName(\p Args) under instrumentation and returns the profiles.
ProfileBundle profileRun(const Module &M, const std::string &FnName,
                         const std::vector<Value> &Args = {},
                         const ProfilerOptions &Opts = ProfilerOptions());

} // namespace spt

#endif // SPT_PROFILE_PROFILER_H
