//===- serve/BatchCompileServer.cpp - Hardened batch compilation service ---===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/BatchCompileServer.h"

#include "lang/AstPrinter.h"
#include "lang/Frontend.h"
#include "lang/Parser.h"
#include "profile/DepProfiler.h"
#include "sim/FaultInjector.h"
#include "support/CancelToken.h"
#include "support/Hash.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

using namespace spt;

const char *spt::serveStateName(ServeState S) {
  switch (S) {
  case ServeState::Completed:
    return "completed";
  case ServeState::Degraded:
    return "degraded";
  case ServeState::Skipped:
    return "skipped";
  case ServeState::Quarantined:
    return "quarantined";
  }
  return "unknown";
}

namespace {

void appendField(std::string &Out, const char *Name, double V) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%s=%.17g;", Name, V);
  Out += Buf;
}

void appendField(std::string &Out, const char *Name, uint64_t V) {
  Out += Name;
  Out += '=';
  Out += std::to_string(V);
  Out += ';';
}

} // namespace

uint64_t spt::compilerOptionsFingerprint(const SptCompilerOptions &O) {
  // Serialize every report-affecting knob into a canonical string and
  // hash it. Jobs, Cancel and Observability are excluded on purpose —
  // the determinism contract (renderReportDeterministic) guarantees they
  // cannot change the report, and including them would needlessly split
  // the cache. ProfileArgs are not serialized: the server always
  // compiles with the default empty argument list.
  std::string S;
  appendField(S, "mode", static_cast<uint64_t>(O.Mode));
  S += "entry=" + O.ProfileEntry + ";";
  appendField(S, "seed", O.RngSeed);
  appendField(S, "psteps", O.ProfileMaxSteps);
  appendField(S, "extprof", static_cast<uint64_t>(O.ExternalProfile != nullptr));
  appendField(S, "deadline", O.MaxPartitionSeconds);
  appendField(S, "refeval",
              static_cast<uint64_t>(O.ReferencePartitionEvaluation));
  appendField(S, "costfrac", O.Selection.CostFraction);
  appendField(S, "prefork", O.Selection.PreForkSizeFraction);
  appendField(S, "minbody", O.Selection.MinBodyWeight);
  appendField(S, "maxbody", O.Selection.MaxBodyWeight);
  appendField(S, "mintrip", O.Selection.MinTripCount);
  appendField(S, "maxvcs", static_cast<uint64_t>(O.Selection.MaxViolationCandidates));
  appendField(S, "maxunroll", static_cast<uint64_t>(O.Selection.MaxUnrollFactor));
  appendField(S, "mingain", O.Selection.MinGainEstimate);
  appendField(S, "fork", O.Machine.ForkOverheadWeight);
  appendField(S, "commit", O.Machine.CommitOverheadWeight);
  appendField(S, "join", O.Machine.JoinSerializationWeight);
  appendField(S, "cores", static_cast<uint64_t>(O.Machine.Cores));
  appendField(S, "svp", static_cast<uint64_t>(O.Enabling.EnableSvp));
  appendField(S, "deps", static_cast<uint64_t>(O.Enabling.EnableDepProfiles));
  appendField(S, "calleff",
              static_cast<uint64_t>(O.Enabling.ModelCallEffectsInCost));
  appendField(S, "callattr",
              static_cast<uint64_t>(O.Enabling.AttributeCalleeAccesses));
  appendField(S, "svphit", O.Enabling.Svp.MinHitRatio);
  appendField(S, "svpsamples", O.Enabling.Svp.MinSamples);
  appendField(S, "svpprefork", O.Enabling.Svp.PreForkSizeFraction);
  // Analysis group: the oracle selection and — crucially — the measured
  // profile artifact's checksum. A report compiled against one artifact
  // must never be served for a request carrying another (or none): the
  // probabilities, and therefore the chosen partitions, can differ.
  // ProfilePath is provenance only and deliberately excluded.
  S += "oracle=" + O.Analysis.DependenceOracle + ";";
  appendField(S, "conffloor", O.Analysis.ConfidenceFloor);
  appendField(S, "drift", O.Analysis.DriftThreshold);
  appendField(S, "artifact",
              O.Analysis.Profile ? O.Analysis.Profile->Checksum : uint64_t(0));
  return fnv1a(S);
}

std::string ServeBatchReport::renderSummary() const {
  // Counter order is fixed so summaries diff cleanly. The cache block is
  // informational: under concurrent workers, duplicate programs can race
  // past each other's insert, so hit/miss counts are load-dependent —
  // byte-identity comparisons must use the per-outcome Report strings.
  std::string Out;
  Out += "accepted=" + std::to_string(Accepted);
  Out += " rejected_overload=" + std::to_string(RejectedOverload);
  Out += "\ncompleted=" + std::to_string(Completed);
  Out += " degraded=" + std::to_string(Degraded);
  Out += " skipped=" + std::to_string(Skipped);
  Out += " quarantined=" + std::to_string(Quarantined);
  Out += " retried=" + std::to_string(Retried);
  Out += " chaos_faults=" + std::to_string(ChaosFaults);
  Out += "\ncache hits=" + std::to_string(Cache.Hits);
  Out += " misses=" + std::to_string(Cache.Misses);
  Out += " corrupt=" + std::to_string(Cache.Corrupt);
  Out += " insertions=" + std::to_string(Cache.Insertions);
  Out += " evictions=" + std::to_string(Cache.Evictions);
  Out += '\n';
  return Out;
}

BatchCompileServer::BatchCompileServer(const ServeOptions &Opts)
    : Opts(Opts), Cache(Opts.CacheCapacity),
      Queues(std::max(1u, Opts.Workers)) {
  this->Opts.Workers = std::max(1u, Opts.Workers);
}

BatchCompileServer::~BatchCompileServer() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
}

void BatchCompileServer::start() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Threads.empty())
    return;
  Stopping = false;
  Threads.reserve(Opts.Workers);
  for (unsigned I = 0; I != Opts.Workers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

Status BatchCompileServer::submit(ServeRequest R) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Opts.MaxQueue != 0 && Pending >= Opts.MaxQueue) {
      ++RejectedOverload;
      obsAdd(Opts.Obs, "serve.rejected", 1);
      return Status::error("ServerOverloaded: " + std::to_string(Pending) +
                           " requests pending (limit " +
                           std::to_string(Opts.MaxQueue) + ")");
    }
    ++Pending;
    ++Accepted;
    Queues[NextQueue % Queues.size()].push_back(std::move(R));
    NextQueue = (NextQueue + 1) % static_cast<unsigned>(Queues.size());
  }
  obsAdd(Opts.Obs, "serve.accepted", 1);
  WorkReady.notify_one();
  return Status::ok();
}

void BatchCompileServer::submitOrWait(ServeRequest R) {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Progress.wait(Lock, [this] {
      return Opts.MaxQueue == 0 || Pending < Opts.MaxQueue;
    });
    ++Pending;
    ++Accepted;
    Queues[NextQueue % Queues.size()].push_back(std::move(R));
    NextQueue = (NextQueue + 1) % static_cast<unsigned>(Queues.size());
  }
  obsAdd(Opts.Obs, "serve.accepted", 1);
  WorkReady.notify_one();
}

bool BatchCompileServer::takeWork(unsigned Me, ServeRequest &Out) {
  // Caller holds Mu. Own queue from the front (FIFO for fairness), then
  // steal from the back of the longest other queue — stealing the
  // newest work keeps the victim's cache-warm older entries local.
  if (!Queues[Me].empty()) {
    Out = std::move(Queues[Me].front());
    Queues[Me].pop_front();
    return true;
  }
  size_t Victim = Queues.size(), Longest = 0;
  for (size_t Q = 0; Q != Queues.size(); ++Q)
    if (Q != Me && Queues[Q].size() > Longest) {
      Longest = Queues[Q].size();
      Victim = Q;
    }
  if (Victim == Queues.size())
    return false;
  Out = std::move(Queues[Victim].back());
  Queues[Victim].pop_back();
  obsAdd(Opts.Obs, "serve.steals", 1);
  return true;
}

void BatchCompileServer::workerLoop(unsigned Me) {
  for (;;) {
    ServeRequest R;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WorkReady.wait(Lock, [&] {
        if (Stopping)
          return true;
        for (const auto &Q : Queues)
          if (!Q.empty())
            return true;
        return false;
      });
      if (!takeWork(Me, R)) {
        if (Stopping)
          return;
        continue;
      }
    }
    process(R);
  }
}

void BatchCompileServer::process(const ServeRequest &R) {
  ServeOutcome Out;
  try {
    Out = compileRequest(R);
  } catch (const std::exception &E) {
    // Last-resort containment: nothing a request does may take down the
    // worker, and every admitted request must produce an outcome or
    // drain() would wait forever.
    Out.Id = R.Id;
    Out.Name = R.Name;
    Out.State = ServeState::Skipped;
    Out.Error = Status::error(std::string("uncontained exception: ") +
                              E.what());
  } catch (...) {
    Out.Id = R.Id;
    Out.Name = R.Name;
    Out.State = ServeState::Skipped;
    Out.Error = Status::error("uncontained non-standard exception");
  }

  switch (Out.State) {
  case ServeState::Completed:
    obsAdd(Opts.Obs, "serve.completed", 1);
    break;
  case ServeState::Degraded:
    obsAdd(Opts.Obs, "serve.degraded", 1);
    break;
  case ServeState::Skipped:
    obsAdd(Opts.Obs, "serve.skipped", 1);
    break;
  case ServeState::Quarantined:
    obsAdd(Opts.Obs, "serve.quarantined", 1);
    break;
  }
  if (Out.Attempts > 1)
    obsAdd(Opts.Obs, "serve.retried", Out.Attempts - 1);

  {
    std::lock_guard<std::mutex> Lock(Mu);
    Outcomes.push_back(std::move(Out));
    --Pending;
  }
  Progress.notify_all();
}

bool BatchCompileServer::chaosFaults(uint64_t ContentHash,
                                     uint32_t Attempt) const {
  if (Opts.ChaosFaultRate <= 0.0)
    return false;
  // The decision must be a pure function of (seed, program, attempt):
  // thread interleaving must not move faults between requests, or the
  // chaos soak's "non-faulted outputs are byte-identical" check would be
  // meaningless. Mix the identity into a one-shot FaultInjector seed and
  // let the sim layer's seeded PRNG make the call.
  std::string Mix = "chaos;" + std::to_string(Opts.ChaosSeed) + ";" +
                    std::to_string(ContentHash) + ";" +
                    std::to_string(Attempt);
  FaultInjectorOptions FO;
  FO.Seed = fnv1a(Mix);
  FO.ForcedSquashRate = Opts.ChaosFaultRate;
  FaultInjector Injector(FO);
  return Injector.shouldForceSquash();
}

ServeOutcome BatchCompileServer::compileRequest(const ServeRequest &R) {
  ServeOutcome Out;
  Out.Id = R.Id;
  Out.Name = R.Name;
  Out.EffectiveMode = Opts.Compiler.Mode;

  // 1. Canonicalize. Hostile text ends here with a structured skip.
  Parser P(R.Source);
  ProgramAst Ast = P.parseProgram();
  if (!P.errors().empty()) {
    Out.State = ServeState::Skipped;
    Out.Error = Status::error("frontend: " + P.errors().front());
    return Out;
  }
  const std::string Canonical = programToSource(Ast);
  Out.ContentHash = fnv1a(Canonical);

  // 2. Quarantine ledger.
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Strikes.find(Out.ContentHash);
    if (It != Strikes.end() && It->second >= Opts.StrikeLimit) {
      Out.State = ServeState::Quarantined;
      Out.Error = Status::error(
          "quarantined: " + std::to_string(It->second) +
          " failed attempts on this program (strike limit " +
          std::to_string(Opts.StrikeLimit) + ")");
      return Out;
    }
  }

  // 3. Cache probe, under the requested options only.
  const uint64_t CacheKey =
      CompileCache::key(Out.ContentHash, compilerOptionsFingerprint(Opts.Compiler));
  if (Opts.CacheCapacity != 0 && Cache.lookup(CacheKey, Out.Report)) {
    Out.State = ServeState::Completed;
    Out.CacheHit = true;
    obsAdd(Opts.Obs, "serve.cache.hit", 1);
    return Out;
  }
  if (Opts.CacheCapacity != 0)
    obsAdd(Opts.Obs, "serve.cache.miss", 1);

  // 4. The attempt ladder: requested mode, then Basic, then skip.
  std::string LastFailure = "no attempts made";
  const uint32_t MaxAttempts = 2;
  for (uint32_t Attempt = 0; Attempt != MaxAttempts; ++Attempt) {
    ++Out.Attempts;
    const bool BasicRung = Attempt != 0;
    if (chaosFaults(Out.ContentHash, Attempt)) {
      Out.Faulted = true;
      LastFailure = "chaos: injected worker fault (attempt " +
                    std::to_string(Attempt + 1) + ")";
      obsAdd(Opts.Obs, "serve.chaos.injected", 1);
      if (Opts.ChaosCorruptCache && (Out.ContentHash & 63) == 0)
        corruptOneCacheEntry();
      std::lock_guard<std::mutex> Lock(Mu);
      ++Strikes[Out.ContentHash];
      continue;
    }
    try {
      CancelToken Deadline;
      if (Opts.AttemptDeadlineSeconds > 0.0)
        Deadline.armDeadlineAfter(Opts.AttemptDeadlineSeconds);
      SptCompilerOptions O =
          BasicRung ? Opts.Compiler.withMode(CompilationMode::Basic)
                    : Opts.Compiler;
      O.Cancel = &Deadline;
      O.Jobs = 1; // Parallelism is across requests, never within one.

      CompileResult CR = compileSource(Canonical);
      if (!CR.ok()) {
        // Deterministic semantic/verifier failure: retrying cannot help,
        // so skip directly without burning the remaining rungs.
        Out.State = ServeState::Skipped;
        Out.Error = Status::error("frontend: " + CR.Errors.front());
        return Out;
      }
      CompilationReport Report = compileSpt(*CR.M, O);
      if (Report.Cancelled) {
        LastFailure = "deadline of " +
                      std::to_string(Opts.AttemptDeadlineSeconds) +
                      "s expired (attempt " + std::to_string(Attempt + 1) +
                      ", mode " + compilationModeName(O.Mode) + ")";
        obsAdd(Opts.Obs, "serve.deadline.expired", 1);
        std::lock_guard<std::mutex> Lock(Mu);
        ++Strikes[Out.ContentHash];
        continue;
      }

      Out.Report = renderReportDeterministic(Report);
      Out.EffectiveMode = Report.EffectiveMode;
      Out.State = BasicRung ? ServeState::Degraded : ServeState::Completed;
      // Cache only first-rung results: the entry must correspond to the
      // requested options its key encodes. A degraded (Basic-rung)
      // report under the Best-mode key would violate the cache-diff
      // oracle's byte-identity contract.
      if (!BasicRung && Opts.CacheCapacity != 0)
        Cache.insert(CacheKey, Out.Report);
      return Out;
    } catch (const std::exception &E) {
      LastFailure = std::string("attempt ") + std::to_string(Attempt + 1) +
                    " threw: " + E.what();
      std::lock_guard<std::mutex> Lock(Mu);
      ++Strikes[Out.ContentHash];
    }
  }

  Out.State = ServeState::Skipped;
  Out.Error = Status::error("all " + std::to_string(MaxAttempts) +
                            " attempts failed; last: " + LastFailure);
  return Out;
}

ServeBatchReport BatchCompileServer::drain() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Progress.wait(Lock, [this] { return Pending == 0; });
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
  Threads.clear();

  ServeBatchReport Batch;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = false;
    Batch.Outcomes = std::move(Outcomes);
    Outcomes.clear();
    Batch.Accepted = Accepted;
    Batch.RejectedOverload = RejectedOverload;
    Accepted = 0;
    RejectedOverload = 0;
  }
  std::sort(Batch.Outcomes.begin(), Batch.Outcomes.end(),
            [](const ServeOutcome &A, const ServeOutcome &B) {
              return A.Id < B.Id;
            });
  for (const ServeOutcome &O : Batch.Outcomes) {
    switch (O.State) {
    case ServeState::Completed:
      ++Batch.Completed;
      break;
    case ServeState::Degraded:
      ++Batch.Degraded;
      break;
    case ServeState::Skipped:
      ++Batch.Skipped;
      break;
    case ServeState::Quarantined:
      ++Batch.Quarantined;
      break;
    }
    if (O.Attempts > 1)
      Batch.Retried += O.Attempts - 1;
    if (O.Faulted)
      ++Batch.ChaosFaults;
  }
  Batch.Cache = Cache.stats();
  // Flush cache counter deltas to obs here, race-free: no workers run.
  obsAdd(Opts.Obs, "serve.cache.corrupt",
         Batch.Cache.Corrupt - LastFlushedCorrupt);
  LastFlushedCorrupt = Batch.Cache.Corrupt;
  return Batch;
}
