//===- serve/BatchCompileServer.h - Hardened batch compilation service -----===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A batch compilation server: thousands of independent, untrusted SPTc
/// programs in, one structured outcome per program out — with the
/// robustness envelope an offline compiler never needs (docs/serving.md).
///
/// Parallelism is ACROSS compilations, not within one. BENCH_compile
/// showed per-program pass-1 fan-out loses on real loop counts (programs
/// are too small to amortize it), so each worker runs a whole
/// compilation at Jobs=1 and the fleet scales by request count:
/// per-worker deques with round-robin placement and work stealing keep
/// every core busy even when program sizes are skewed.
///
/// The envelope, per request:
///
///  1. Canonicalization. The program is parsed and reprinted through
///     lang/AstPrinter; parse failures are structured skips, and the
///     canonical text's fnv1a hash is the request's content identity for
///     the cache and the quarantine ledger.
///  2. Quarantine check. A program whose hash has accumulated
///     StrikeLimit failed attempts is refused outright (a poison input
///     must not keep burning worker time).
///  3. Cache probe (CompileCache): checksum-verified, LRU, keyed on
///     canonical hash + options fingerprint.
///  4. Attempt ladder. Best(requested mode, per-attempt CancelToken
///     deadline) -> Basic(same deadline) -> structured Status skip.
///     Every attempt is exception-contained; a deadline, fault or throw
///     costs the program one strike and one rung.
///  5. Admission control: the pending queue is bounded; submit() refuses
///     with "ServerOverloaded" instead of queueing unboundedly.
///
/// Chaos testing: ChaosFaultRate arms a seeded fault source inside the
/// workers themselves. Whether attempt A of program H faults is a pure
/// function of (ChaosSeed, H, A) — never of thread interleaving — so a
/// chaos run faults a deterministic subset of requests, every faulted
/// request still resolves through the ladder, and non-faulted requests
/// render byte-identically to a fault-free run (the chaos soak's
/// acceptance check). Chaos can also corrupt cache entries through the
/// same checksum-detection path tests use.
///
/// Everything lands in obs/ counters (serve.accepted, serve.rejected,
/// serve.retried, serve.degraded, serve.quarantined, serve.cache.*) when
/// an ObsContext is supplied.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SERVE_BATCHCOMPILESERVER_H
#define SPT_SERVE_BATCHCOMPILESERVER_H

#include "driver/SptCompiler.h"
#include "obs/Obs.h"
#include "serve/CompileCache.h"
#include "support/Status.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace spt {

/// Server configuration.
struct ServeOptions {
  /// Worker threads compiling requests (minimum 1).
  unsigned Workers = 1;
  /// Bound on requests admitted but not yet finished; submit() refuses
  /// beyond it. 0 means unbounded.
  size_t MaxQueue = 1024;
  /// Per-ATTEMPT wall-clock deadline, armed on a fresh CancelToken for
  /// each rung of the ladder (so a Basic retry gets a full budget, not
  /// the Best attempt's leftovers). 0 disables deadlines.
  double AttemptDeadlineSeconds = 0.0;
  /// Failed attempts (deadline, chaos fault, exception) a content hash
  /// may accumulate before new requests for it are quarantined.
  uint32_t StrikeLimit = 3;
  /// Compile cache capacity in entries; 0 disables caching.
  size_t CacheCapacity = 4096;
  /// Base options for the first ladder rung; the Basic rung derives from
  /// them via withMode(Basic). Jobs is forced to 1 per request (the
  /// server parallelizes across requests). Cancel is overwritten with
  /// the per-attempt token.
  SptCompilerOptions Compiler;
  /// P(an attempt faults) under chaos; 0 disables chaos entirely.
  double ChaosFaultRate = 0.0;
  /// Seed for the per-(program, attempt) chaos decision.
  uint64_t ChaosSeed = 0x5eed5eed5eedull;
  /// Also corrupt a random cache entry on ~1/64 of chaos faults,
  /// exercising checksum detection under load.
  bool ChaosCorruptCache = false;
  /// Observability sink; null disables recording.
  ObsContext *Obs = nullptr;
};

/// One unit of work. Ids must be unique within a batch; outcomes sort by
/// them.
struct ServeRequest {
  uint64_t Id = 0;
  std::string Name;
  std::string Source;
};

/// Terminal disposition of one request.
enum class ServeState {
  Completed,   ///< Requested mode succeeded (possibly from cache).
  Degraded,    ///< Requested mode failed; the Basic rung succeeded.
  Skipped,     ///< Every rung failed (or the program did not parse).
  Quarantined, ///< Refused: content hash at/over the strike limit.
};

const char *serveStateName(ServeState S);

/// One request's structured outcome.
struct ServeOutcome {
  uint64_t Id = 0;
  std::string Name;
  ServeState State = ServeState::Completed;
  /// Why there is no report; set exactly when State is Skipped or
  /// Quarantined.
  Status Error;
  /// renderReportDeterministic of the successful attempt (or the cached
  /// copy, which the cache-diff oracle keeps byte-identical); empty when
  /// Error is set.
  std::string Report;
  /// Mode that produced Report (Basic for Degraded outcomes).
  CompilationMode EffectiveMode = CompilationMode::Best;
  bool CacheHit = false;
  /// Ladder rungs actually run (0 for quarantined/cache hits).
  uint32_t Attempts = 0;
  /// Chaos injected at least one fault into this request's attempts.
  bool Faulted = false;
  /// fnv1a of the canonical reprint (0 when the program did not parse).
  uint64_t ContentHash = 0;
};

/// Batch-level rollup returned by drain().
struct ServeBatchReport {
  std::vector<ServeOutcome> Outcomes; ///< Sorted by request Id.
  uint64_t Accepted = 0;
  uint64_t RejectedOverload = 0;
  uint64_t Completed = 0;
  uint64_t Degraded = 0;
  uint64_t Skipped = 0;
  uint64_t Quarantined = 0;
  /// Ladder rungs run beyond the first, summed over requests.
  uint64_t Retried = 0;
  uint64_t ChaosFaults = 0;
  CompileCacheStats Cache;

  /// Deterministic multi-line summary (counter order fixed; no wall
  /// clock), for golden comparisons in tests and the selfcheck.
  std::string renderSummary() const;
};

/// Fingerprint of every report-affecting compiler option, for cache
/// keying. Jobs, Cancel and Observability are deliberately excluded: the
/// determinism contract says they cannot change the rendered report.
uint64_t compilerOptionsFingerprint(const SptCompilerOptions &Opts);

class BatchCompileServer {
public:
  explicit BatchCompileServer(const ServeOptions &Opts);
  ~BatchCompileServer();

  BatchCompileServer(const BatchCompileServer &) = delete;
  BatchCompileServer &operator=(const BatchCompileServer &) = delete;

  /// Spawns the workers. Idempotent. Tests exercising admission control
  /// submit before start() so the queue fills deterministically.
  void start();

  /// Non-blocking admission. Refuses with "ServerOverloaded" when
  /// MaxQueue requests are already pending; the caller decides whether
  /// to back off, drop, or block via submitOrWait.
  Status submit(ServeRequest R);

  /// Blocking admission: waits for queue room instead of refusing. For
  /// batch drivers that want backpressure, not drops.
  void submitOrWait(ServeRequest R);

  /// Waits until every admitted request has an outcome, stops the
  /// workers, and returns the batch report. The server can be start()ed
  /// and fed again afterwards.
  ServeBatchReport drain();

  /// Test/chaos hook: bit-flip one cached payload (see CompileCache).
  bool corruptOneCacheEntry() { return Cache.corruptOneEntry(); }

  CompileCacheStats cacheStats() const { return Cache.stats(); }

private:
  void workerLoop(unsigned Me);
  bool takeWork(unsigned Me, ServeRequest &Out);
  void process(const ServeRequest &R);
  ServeOutcome compileRequest(const ServeRequest &R);
  /// Pure function of (ChaosSeed, ContentHash, Attempt): does this
  /// attempt fault under chaos?
  bool chaosFaults(uint64_t ContentHash, uint32_t Attempt) const;

  ServeOptions Opts;
  CompileCache Cache;

  std::mutex Mu;
  std::condition_variable WorkReady; ///< Work queued or stopping.
  std::condition_variable Progress;  ///< Outcome recorded (drain/submitOrWait).
  std::vector<std::deque<ServeRequest>> Queues; ///< One per worker.
  std::vector<std::thread> Threads;
  unsigned NextQueue = 0;   ///< Round-robin placement cursor.
  size_t Pending = 0;       ///< Admitted, no outcome yet.
  bool Stopping = false;
  std::vector<ServeOutcome> Outcomes;
  /// Failed-attempt strikes per content hash (the quarantine ledger).
  std::map<uint64_t, uint32_t> Strikes;
  uint64_t Accepted = 0;
  uint64_t RejectedOverload = 0;
  /// Cache corruption count already flushed to obs (drain() adds deltas
  /// so repeated drains never double-count).
  uint64_t LastFlushedCorrupt = 0;
};

} // namespace spt

#endif // SPT_SERVE_BATCHCOMPILESERVER_H
