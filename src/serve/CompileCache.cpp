//===- serve/CompileCache.cpp - Checksum-verified LRU compile cache --------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/CompileCache.h"

#include "support/Hash.h"

using namespace spt;

uint64_t CompileCache::key(uint64_t ContentHash,
                           uint64_t OptionsFingerprint) {
  // FNV-style mix: absorb the fingerprint into the content hash byte by
  // byte so key(a, b) != key(b, a) and single-bit fingerprint changes
  // diffuse. Stable across platforms like fnv1a itself.
  uint64_t H = ContentHash;
  for (int I = 0; I != 8; ++I) {
    H ^= (OptionsFingerprint >> (I * 8)) & 0xff;
    H *= 0x100000001b3ull;
  }
  return H;
}

bool CompileCache::lookup(uint64_t Key, std::string &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Stats.Misses;
    return false;
  }
  Entry &E = *It->second;
  if (fnv1a(E.Payload) != E.Checksum) {
    // Detected corruption: never serve the payload. Drop the entry so
    // the slot heals on the next insert, and report a plain miss.
    ++Stats.Corrupt;
    ++Stats.Misses;
    Lru.erase(It->second);
    Index.erase(It);
    return false;
  }
  Out = E.Payload;
  ++Stats.Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // Touch: move to MRU.
  return true;
}

void CompileCache::insert(uint64_t Key, const std::string &Payload) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // Refresh in place (same key can race between workers compiling
    // duplicate programs; last writer wins, payloads are identical by
    // the determinism contract).
    It->second->Payload = Payload;
    It->second->Checksum = fnv1a(Payload);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  if (Lru.size() >= Capacity) {
    Index.erase(Lru.back().Key);
    Lru.pop_back();
    ++Stats.Evictions;
  }
  Lru.push_front(Entry{Key, Payload, fnv1a(Payload)});
  Index[Key] = Lru.begin();
  ++Stats.Insertions;
}

bool CompileCache::corruptOneEntry() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Lru.empty())
    return false;
  Entry &Victim = Lru.back();
  if (Victim.Payload.empty())
    Victim.Payload.push_back('\x01'); // Still a checksum mismatch.
  else
    Victim.Payload[Victim.Payload.size() / 2] ^= 0x20;
  return true;
}

CompileCacheStats CompileCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t CompileCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Lru.size();
}
