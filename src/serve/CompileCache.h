//===- serve/CompileCache.h - Checksum-verified LRU compile cache ----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed cache of compilation reports for the batch server.
///
/// Keying: the cache never sees raw request text. The server parses each
/// program and reprints it through lang/AstPrinter, so two textually
/// different but structurally identical programs (whitespace, comments,
/// redundant parens) share one canonical form; the key is
/// fnv1a(canonical source) combined with a fingerprint of every
/// report-affecting compiler option (mode, seeds, selection/machine/
/// enabling knobs — NOT Jobs or observability, which the determinism
/// contract guarantees cannot change the report). The cache-diff oracle
/// in src/testing enforces the keying assumption end-to-end: a warm-cache
/// compile must render byte-identically to a cold one.
///
/// Integrity: each entry stores its payload (the deterministic report
/// rendering) plus an fnv1a checksum taken at insertion. lookup()
/// re-hashes the payload; on mismatch the entry is dropped, the
/// corruption is counted, and the call reports a miss — a corrupt entry
/// is never served. corruptOneEntry() deliberately bit-flips a stored
/// payload so tests and the chaos selfcheck can drive that path.
///
/// Eviction: plain LRU (touch on hit) with a fixed capacity.
///
/// Thread-safety: all public methods lock one mutex; the payloads are
/// small strings and the server's workers spend their time compiling,
/// not hashing, so a single lock does not serialize the fleet.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SERVE_COMPILECACHE_H
#define SPT_SERVE_COMPILECACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace spt {

/// Running totals; snapshot with stats().
struct CompileCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Checksum mismatches detected by lookup() (each also counts a miss).
  uint64_t Corrupt = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
};

class CompileCache {
public:
  /// \p Capacity entries; 0 disables the cache (every lookup misses and
  /// insert is a no-op).
  explicit CompileCache(size_t Capacity) : Capacity(Capacity) {}

  /// Combines the canonical-source hash with the options fingerprint into
  /// the final key (order-sensitive mix, stable across platforms).
  static uint64_t key(uint64_t ContentHash, uint64_t OptionsFingerprint);

  /// On hit, copies the payload into \p Out, refreshes recency, and
  /// returns true. A checksum mismatch erases the entry, counts Corrupt,
  /// and returns false like any miss.
  bool lookup(uint64_t Key, std::string &Out);

  /// Inserts or refreshes \p Key -> \p Payload, evicting the LRU entry
  /// when full.
  void insert(uint64_t Key, const std::string &Payload);

  /// Test/chaos hook: flips one bit in the payload of the least recently
  /// used entry (the next eviction victim), leaving its checksum stale.
  /// Returns false when the cache is empty.
  bool corruptOneEntry();

  CompileCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return Capacity; }

private:
  struct Entry {
    uint64_t Key = 0;
    std::string Payload;
    uint64_t Checksum = 0;
  };

  /// Front = most recent, back = LRU victim.
  std::list<Entry> Lru;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
  size_t Capacity;
  CompileCacheStats Stats;
  mutable std::mutex Mu;
};

} // namespace spt

#endif // SPT_SERVE_COMPILECACHE_H
