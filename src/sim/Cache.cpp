//===- sim/Cache.cpp - Shared cache hierarchy --------------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"

#include <cassert>
#include <cstddef>

using namespace spt;

namespace {

bool isPowerOfTwo(uint64_t X) { return X != 0 && (X & (X - 1)) == 0; }

} // namespace

CacheLevel::CacheLevel(const CacheLevelConfig &Config) : Config(Config) {
  assert(isPowerOfTwo(Config.LineBytes) && "line size must be a power of 2");
  const uint64_t NumLines = Config.SizeBytes / Config.LineBytes;
  NumSets = static_cast<uint32_t>(NumLines / Config.Ways);
  assert(NumSets > 0 && isPowerOfTwo(NumSets) && "bad cache geometry");
  Lines.assign(static_cast<size_t>(NumSets) * Config.Ways, Line());
}

bool CacheLevel::accessAndFill(uint64_t Addr) {
  const uint64_t LineAddr = Addr / Config.LineBytes;
  const uint32_t Set = static_cast<uint32_t>(LineAddr & (NumSets - 1));
  const uint64_t Tag = LineAddr / NumSets;
  Line *Base = &Lines[static_cast<size_t>(Set) * Config.Ways];
  ++UseClock;

  for (uint32_t W = 0; W != Config.Ways; ++W) {
    Line &L = Base[W];
    if (L.Valid && L.Tag == Tag) {
      L.LastUse = UseClock;
      ++Hits;
      return true;
    }
  }
  ++Misses;
  // Fill: first invalid way, else the least recently used.
  Line *Victim = nullptr;
  for (uint32_t W = 0; W != Config.Ways && !Victim; ++W)
    if (!Base[W].Valid)
      Victim = &Base[W];
  if (!Victim) {
    Victim = Base;
    for (uint32_t W = 1; W != Config.Ways; ++W)
      if (Base[W].LastUse < Victim->LastUse)
        Victim = &Base[W];
  }
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = UseClock;
  return false;
}

CacheHierarchy::CacheHierarchy(const MachineConfig &Machine)
    : L1(Machine.L1), L2(Machine.L2), L3(Machine.L3),
      L1Lat(Machine.L1.HitLatencyCycles), L2Lat(Machine.L2.HitLatencyCycles),
      L3Lat(Machine.L3.HitLatencyCycles), MemLat(Machine.MemLatencyCycles) {}

uint32_t CacheHierarchy::access(uint64_t Addr) {
  if (L1.accessAndFill(Addr))
    return L1Lat;
  if (L2.accessAndFill(Addr))
    return L2Lat;
  if (L3.accessAndFill(Addr))
    return L3Lat;
  return MemLat;
}
