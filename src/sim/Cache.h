//===- sim/Cache.h - Shared cache hierarchy ---------------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU, write-allocate cache hierarchy shared by the
/// main and speculative cores (the paper's machine shares the memory/cache
/// hierarchy between the cores). Access returns the load-to-use latency in
/// cycles and updates all levels.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SIM_CACHE_H
#define SPT_SIM_CACHE_H

#include "sim/Machine.h"

#include <cstdint>
#include <vector>

namespace spt {

/// One set-associative level.
class CacheLevel {
public:
  explicit CacheLevel(const CacheLevelConfig &Config);

  /// True when \p Addr hits; the line is touched (LRU) or filled.
  bool accessAndFill(uint64_t Addr);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  struct Line {
    uint64_t Tag = ~0ull;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  CacheLevelConfig Config;
  uint32_t NumSets;
  std::vector<Line> Lines; // NumSets * Ways.
  uint64_t UseClock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Three levels plus memory.
class CacheHierarchy {
public:
  explicit CacheHierarchy(const MachineConfig &Machine);

  /// Performs a load or store access; returns the latency in cycles.
  uint32_t access(uint64_t Addr);

  const CacheLevel &l1() const { return L1; }
  const CacheLevel &l2() const { return L2; }
  const CacheLevel &l3() const { return L3; }

private:
  CacheLevel L1, L2, L3;
  uint32_t L1Lat, L2Lat, L3Lat, MemLat;
};

} // namespace spt

#endif // SPT_SIM_CACHE_H
