//===- sim/CoreTiming.cpp - In-order core timing model ------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/CoreTiming.h"

#include "support/Debug.h"

#include <algorithm>
#include <cassert>

using namespace spt;

bool BranchPredictor::predictAndTrain(const Function *F, StmtId Site,
                                      bool Taken) {
  ++Lookups;
  uint8_t &Counter = Counters[{F, Site}]; // Starts weakly not-taken (0).
  const bool Predicted = Counter >= 2;
  if (Taken && Counter < 3)
    ++Counter;
  else if (!Taken && Counter > 0)
    --Counter;
  const bool Correct = Predicted == Taken;
  if (!Correct)
    ++Mispredicts;
  return Correct;
}

CoreTiming::CoreTiming(const MachineConfig &Machine, CacheHierarchy &Cache,
                       BranchPredictor &Predictor)
    : Machine(Machine), Cache(Cache), Predictor(Predictor) {
  InFlight.assign(Machine.SchedulingWindow == 0 ? 1
                                                : Machine.SchedulingWindow,
                  0);
}

uint64_t CoreTiming::regReady(size_t Frame, Reg R) const {
  if (Frame >= Frames.size() || R >= Frames[Frame].size())
    return 0;
  return Frames[Frame][R];
}

void CoreTiming::setRegReady(size_t Frame, Reg R, uint64_t T) {
  if (Frame >= Frames.size())
    Frames.resize(Frame + 1);
  if (R >= Frames[Frame].size())
    Frames[Frame].resize(R + 1, 0);
  Frames[Frame][R] = T;
}

void CoreTiming::setNow(uint64_t Subticks) {
  Now = Subticks;
  SlotTime = Subticks;
  for (auto &Frame : Frames)
    std::fill(Frame.begin(), Frame.end(), Subticks);
  std::fill(InFlight.begin(), InFlight.end(), Subticks);
  InFlightIdx = 0;
}

void CoreTiming::advanceTo(uint64_t Subticks) {
  Now = std::max(Now, Subticks);
  SlotTime = std::max(SlotTime, Subticks);
}

uint64_t CoreTiming::onStep(const StepResult &R, size_t Depth) {
  ++Retired;
  const uint64_t IssueSlot = SubticksPerCycle / Machine.IssueWidth;

  // The frame the instruction executed in: for returns, the popped frame
  // was Depth (after-pop depth + 1); otherwise the current top.
  const size_t ExecFrame = R.IsReturn ? Depth : (Depth == 0 ? 0 : Depth - 1);
  // For call-enters the instruction itself ran in the caller frame.
  const size_t SrcFrame = R.IsCallEnter && ExecFrame > 0 ? ExecFrame - 1
                                                         : ExecFrame;

  // Issue when a slot is free, the operands are ready, and the in-flight
  // window has room (the oldest in-flight instruction completed).
  uint64_t IssueAt = std::max(SlotTime, InFlight[InFlightIdx]);
  for (Reg S : R.I->Srcs)
    IssueAt = std::max(IssueAt, regReady(SrcFrame, S));
  // A dependence-stalled instruction occupies no extra front-end
  // bandwidth: the static schedule places independent work in between.
  // Stalls are bounded by operand readiness and the in-flight window.
  SlotTime += IssueSlot;

  // Operation latency in cycles.
  uint64_t LatCycles = Machine.LatIntAlu;
  switch (opcodeClass(R.I->Op)) {
  case OpClass::IntAlu:
    LatCycles = Machine.LatIntAlu;
    break;
  case OpClass::IntMul:
    LatCycles = Machine.LatIntMul;
    break;
  case OpClass::IntDiv:
    LatCycles = Machine.LatIntDiv;
    break;
  case OpClass::FpAlu:
    LatCycles = Machine.LatFpAlu;
    break;
  case OpClass::FpMul:
    LatCycles = Machine.LatFpMul;
    break;
  case OpClass::FpDiv:
    LatCycles = Machine.LatFpDiv;
    break;
  case OpClass::MemLoad:
    LatCycles = Cache.access(R.Addr);
    break;
  case OpClass::MemStore:
    Cache.access(R.Addr);
    LatCycles = Machine.LatStore;
    break;
  case OpClass::Branch:
    LatCycles = Machine.LatBranch;
    break;
  case OpClass::Call:
    LatCycles = Machine.CallOverhead;
    break;
  case OpClass::Marker:
    LatCycles = 0;
    break;
  }

  // External math builtins are heavyweight.
  if (R.I->Op == Opcode::Call && !R.IsCallEnter)
    LatCycles = Machine.MathBuiltinLatency;

  const uint64_t Done = IssueAt + IssueSlot + LatCycles * SubticksPerCycle;
  Now = std::max(Now, Done);
  InFlight[InFlightIdx] = Done;
  InFlightIdx = (InFlightIdx + 1) % InFlight.size();

  // Results.
  if (R.I->Dst != NoReg && !R.IsCallEnter)
    setRegReady(SrcFrame, R.I->Dst, Done);

  // Conditional branches pay the misprediction penalty on the front end.
  if (R.I->Op == Opcode::Br) {
    if (!Predictor.predictAndTrain(R.F, R.I->Id, R.BranchTaken)) {
      SlotTime =
          std::max(SlotTime,
                   Done + Machine.BranchMispredictPenalty * SubticksPerCycle);
      Now = std::max(Now, SlotTime);
    }
  }

  // Frame bookkeeping.
  if (R.IsCallEnter) {
    if (Frames.size() < Depth)
      Frames.resize(Depth);
    Frames[Depth - 1].clear();
    // Arguments become ready after the call overhead; the front end
    // redirects into the callee at the same time.
    const uint64_t ArgsReady =
        IssueAt + IssueSlot + Machine.CallOverhead * SubticksPerCycle;
    for (size_t A = 0; A != R.I->Srcs.size(); ++A)
      setRegReady(Depth - 1, static_cast<Reg>(A), ArgsReady);
    SlotTime = std::max(SlotTime, ArgsReady);
    Now = std::max(Now, SlotTime);
  } else if (R.IsReturn) {
    if (Frames.size() > Depth)
      Frames.resize(Depth);
    // Return redirect; the caller's destination register readiness is
    // approximated by the clock itself.
    SlotTime += Machine.CallOverhead * SubticksPerCycle / 2;
    Now = std::max(Now, SlotTime);
  }

  return Done;
}
