//===- sim/CoreTiming.cpp - In-order core timing model ------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/CoreTiming.h"

#include "support/Debug.h"

#include <algorithm>
#include <cassert>

using namespace spt;

CoreTiming::CoreTiming(const MachineConfig &Machine, CacheHierarchy &Cache,
                       BranchPredictor &Predictor, SimFidelity Fidelity)
    : Machine(Machine), Cache(Cache), Predictor(Predictor),
      Fidelity(Fidelity),
      IssueSlotSubticks(SubticksPerCycle / Machine.IssueWidth) {
  InFlight.assign(Machine.SchedulingWindow == 0 ? 1
                                                : Machine.SchedulingWindow,
                  0);
}

void CoreTiming::setNow(uint64_t Subticks) {
  Now = Subticks;
  SlotTime = Subticks;
  for (auto &Frame : Frames)
    std::fill(Frame.begin(), Frame.end(), Subticks);
  std::fill(InFlight.begin(), InFlight.end(), Subticks);
  InFlightIdx = 0;
}

void CoreTiming::resetFor(uint64_t Subticks) {
  Now = Subticks;
  SlotTime = Subticks;
  Retired = 0;
  Frames.clear();
  std::fill(InFlight.begin(), InFlight.end(), Subticks);
  InFlightIdx = 0;
}

void CoreTiming::advanceTo(uint64_t Subticks) {
  Now = std::max(Now, Subticks);
  SlotTime = std::max(SlotTime, Subticks);
}

void CoreTiming::fastStep(const StepResult &R) {
  ++Retired;
  // Coarse model: every instruction consumes its issue slot; a quarter of
  // the configured operation latency approximates how much of it an EPIC
  // schedule fails to hide; loads charge the L1 hit latency (no cache
  // model); conditional branches a fixed misprediction-penalty fraction;
  // call/return redirects their configured overheads. Deterministic and
  // documented in docs/simulation.md — the fidelity-diff oracle holds the
  // result to a band around the exact model, not to equality.
  uint64_t Cost = IssueSlotSubticks;
  switch (opcodeClass(R.I->Op)) {
  case OpClass::IntAlu:
    break;
  case OpClass::IntMul:
    Cost += Machine.LatIntMul * SubticksPerCycle / 4;
    break;
  case OpClass::IntDiv:
    Cost += Machine.LatIntDiv * SubticksPerCycle / 4;
    break;
  case OpClass::FpAlu:
    Cost += Machine.LatFpAlu * SubticksPerCycle / 4;
    break;
  case OpClass::FpMul:
    Cost += Machine.LatFpMul * SubticksPerCycle / 4;
    break;
  case OpClass::FpDiv:
    Cost += Machine.LatFpDiv * SubticksPerCycle / 4;
    break;
  case OpClass::MemLoad:
    Cost += Machine.L1.HitLatencyCycles * SubticksPerCycle;
    break;
  case OpClass::MemStore:
    break;
  case OpClass::Branch:
    if (R.I->Op == Opcode::Br)
      Cost += Machine.BranchMispredictPenalty * SubticksPerCycle / 8;
    break;
  case OpClass::Call:
    Cost += Machine.CallOverhead * SubticksPerCycle;
    break;
  case OpClass::Marker:
    break;
  }
  if (R.I->Op == Opcode::Call && !R.IsCallEnter)
    Cost += Machine.MathBuiltinLatency * SubticksPerCycle / 4;
  if (R.IsReturn)
    Cost += Machine.CallOverhead * SubticksPerCycle / 2;
  Now += Cost;
  SlotTime = Now;
}
