//===- sim/CoreTiming.h - In-order core timing model -------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A scoreboarded in-order core: instructions issue in program order at up
/// to IssueWidth per cycle, stalling until their source registers are
/// ready; results become ready after the operation latency (loads: the
/// shared cache hierarchy's access latency). Conditional branches consult
/// a per-site 2-bit predictor; mispredictions stall the front end by the
/// configured penalty. Calls and returns push/pop per-frame scoreboards
/// and charge a fixed overhead.
///
/// One CoreTiming instance models one core; the SPT simulator runs two
/// (main + speculative) against one shared CacheHierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SIM_CORETIMING_H
#define SPT_SIM_CORETIMING_H

#include "interp/Interp.h"
#include "ir/IR.h"
#include "sim/Cache.h"
#include "sim/Machine.h"

#include <map>
#include <vector>

namespace spt {

/// Per-branch-site 2-bit saturating counters.
class BranchPredictor {
public:
  /// Returns true when the prediction matched \p Taken, and trains.
  bool predictAndTrain(const Function *F, StmtId Site, bool Taken);

  uint64_t lookups() const { return Lookups; }
  uint64_t mispredicts() const { return Mispredicts; }

private:
  std::map<std::pair<const Function *, StmtId>, uint8_t> Counters;
  uint64_t Lookups = 0;
  uint64_t Mispredicts = 0;
};

/// The scoreboarded core. Time advances in subticks (see Machine.h).
///
/// Timing model: an "ideally scheduled" EPIC core. Instructions consume
/// issue bandwidth (IssueWidth per cycle, the slot clock) and stall only
/// on true data dependences (per-register ready times); the visible clock
/// is the maximum completion time seen, so dependence chains accumulate
/// their full latencies while independent work overlaps — matching how a
/// static (Itanium-style) schedule hides non-critical latency. Branch
/// mispredictions stall the front end (slot clock) past the branch's
/// resolution by the configured penalty.
class CoreTiming {
public:
  CoreTiming(const MachineConfig &Machine, CacheHierarchy &Cache,
             BranchPredictor &Predictor);

  /// Accounts one executed instruction; \p Depth is the interpreter's
  /// stack depth after the step (frames are tracked from call/return
  /// flags). Returns the subtick at which the instruction completed.
  uint64_t onStep(const StepResult &R, size_t Depth);

  /// Current core clock in subticks.
  uint64_t now() const { return Now; }
  /// Sets the clock (thread starts); register scoreboards are flushed to
  /// be ready at the new time.
  void setNow(uint64_t Subticks);
  /// Moves the clock forward to at least \p Subticks without disturbing
  /// register readiness or the in-flight window (used at joins: the core
  /// keeps its pipeline state while waiting).
  void advanceTo(uint64_t Subticks);

  /// Charges a fixed number of cycles (fork/commit/re-execution).
  void charge(uint64_t Cycles) {
    SlotTime = Now + Cycles * SubticksPerCycle;
    Now = SlotTime;
  }

  uint64_t retired() const { return Retired; }
  double cyclesNow() const {
    return static_cast<double>(Now) / SubticksPerCycle;
  }

private:
  uint64_t regReady(size_t Frame, Reg R) const;
  void setRegReady(size_t Frame, Reg R, uint64_t T);

  const MachineConfig &Machine;
  CacheHierarchy &Cache;
  BranchPredictor &Predictor;

  uint64_t Now = 0;      ///< Visible clock: max completion time.
  uint64_t SlotTime = 0; ///< Issue-bandwidth clock.
  uint64_t Retired = 0;
  /// Completion times of the in-flight window (ring buffer).
  std::vector<uint64_t> InFlight;
  size_t InFlightIdx = 0;
  /// Per-frame register-ready times, in subticks.
  std::vector<std::vector<uint64_t>> Frames;
};

} // namespace spt

#endif // SPT_SIM_CORETIMING_H
