//===- sim/CoreTiming.h - In-order core timing model -------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A scoreboarded in-order core: instructions issue in program order at up
/// to IssueWidth per cycle, stalling until their source registers are
/// ready; results become ready after the operation latency (loads: the
/// shared cache hierarchy's access latency). Conditional branches consult
/// a per-site 2-bit predictor; mispredictions stall the front end by the
/// configured penalty. Calls and returns push/pop per-frame scoreboards
/// and charge a fixed overhead.
///
/// One CoreTiming instance models one core; the SPT simulator runs two
/// (main + speculative) against one shared CacheHierarchy.
///
/// The step accounting is split in two so the block-level timing memo
/// (sim/TimingMemo.h) can replay it: resolve() performs the *stateful
/// microarchitectural lookups* (cache access, predictor training) and
/// applyTiming() the *pure scoreboard arithmetic* — a composition of max
/// and + over the core's clocks, ring and register-ready times, which is
/// therefore invariant under uniform time translation. onStep() is
/// exactly resolve() followed by applyTiming(), so the memoized and the
/// reference paths share one definition of the model.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SIM_CORETIMING_H
#define SPT_SIM_CORETIMING_H

#include "interp/Interp.h"
#include "ir/IR.h"
#include "sim/Cache.h"
#include "sim/Machine.h"
#include "sim/SimOptions.h"

#include <algorithm>
#include <map>
#include <vector>

namespace spt {

/// Per-branch-site 2-bit saturating counters, stored as one dense table
/// per function indexed by statement id (ids are dense per function, so
/// this replaces the former std::map<(Function*, StmtId)> — the map walk
/// was ~1.3% of a whole-suite profile on its own).
class BranchPredictor {
public:
  /// Returns true when the prediction matched \p Taken, and trains.
  bool predictAndTrain(const Function *F, StmtId Site, bool Taken) {
    ++Lookups;
    std::vector<uint8_t> &Tab = tableFor(F);
    if (Site >= Tab.size())
      Tab.resize(Site + 1, 0);
    uint8_t &Counter = Tab[Site]; // Starts weakly not-taken (0).
    const bool Predicted = Counter >= 2;
    if (Taken && Counter < 3)
      ++Counter;
    else if (!Taken && Counter > 0)
      --Counter;
    const bool Correct = Predicted == Taken;
    if (!Correct)
      ++Mispredicts;
    return Correct;
  }

  uint64_t lookups() const { return Lookups; }
  uint64_t mispredicts() const { return Mispredicts; }

private:
  std::vector<uint8_t> &tableFor(const Function *F) {
    if (F == LastF && LastTab)
      return *LastTab;
    std::vector<uint8_t> &Tab = Tables[F];
    if (Tab.empty() && F)
      Tab.resize(F->maxStmtId(), 0);
    LastF = F;
    LastTab = &Tab;
    return Tab;
  }

  std::map<const Function *, std::vector<uint8_t>> Tables;
  const Function *LastF = nullptr;
  std::vector<uint8_t> *LastTab = nullptr;
  uint64_t Lookups = 0;
  uint64_t Mispredicts = 0;
};

/// The scoreboarded core. Time advances in subticks (see Machine.h).
///
/// Timing model: an "ideally scheduled" EPIC core. Instructions consume
/// issue bandwidth (IssueWidth per cycle, the slot clock) and stall only
/// on true data dependences (per-register ready times); the visible clock
/// is the maximum completion time seen, so dependence chains accumulate
/// their full latencies while independent work overlaps — matching how a
/// static (Itanium-style) schedule hides non-critical latency. Branch
/// mispredictions stall the front end (slot clock) past the branch's
/// resolution by the configured penalty.
///
/// Under SimFidelity::FastForward the scoreboard, cache and predictor are
/// bypassed entirely: each step charges its issue slot plus a fixed
/// per-class latency fraction (docs/simulation.md defines the table).
class CoreTiming {
public:
  CoreTiming(const MachineConfig &Machine, CacheHierarchy &Cache,
             BranchPredictor &Predictor,
             SimFidelity Fidelity = SimFidelity::Exact);

  /// The microarchitectural inputs of one step after the stateful
  /// lookups are resolved. Everything applyTiming() needs.
  struct ResolvedStep {
    const Instr *I = nullptr;
    size_t Depth = 0;         ///< Interpreter stack depth after the step.
    uint32_t LatCycles = 0;   ///< Final operation latency in cycles.
    uint32_t NumSrcs = 0;     ///< == I->Srcs.size(); cached.
    bool IsBr = false;        ///< Conditional branch (pays mispredicts).
    bool BrCorrect = true;    ///< Predictor outcome for IsBr steps.
    bool IsCallEnter = false;
    bool IsReturn = false;
  };

  /// Performs the stateful lookups for \p R — the cache access for
  /// memory operations and the branch predictor training — advancing
  /// cache/predictor state exactly. Pure scoreboard state is untouched.
  ResolvedStep resolve(const StepResult &R, size_t Depth) {
    ResolvedStep S;
    S.I = R.I;
    S.Depth = Depth;
    S.NumSrcs = static_cast<uint32_t>(R.I->Srcs.size());
    S.IsCallEnter = R.IsCallEnter;
    S.IsReturn = R.IsReturn;

    uint64_t LatCycles = Machine.LatIntAlu;
    switch (opcodeClass(R.I->Op)) {
    case OpClass::IntAlu:
      LatCycles = Machine.LatIntAlu;
      break;
    case OpClass::IntMul:
      LatCycles = Machine.LatIntMul;
      break;
    case OpClass::IntDiv:
      LatCycles = Machine.LatIntDiv;
      break;
    case OpClass::FpAlu:
      LatCycles = Machine.LatFpAlu;
      break;
    case OpClass::FpMul:
      LatCycles = Machine.LatFpMul;
      break;
    case OpClass::FpDiv:
      LatCycles = Machine.LatFpDiv;
      break;
    case OpClass::MemLoad:
      LatCycles = Cache.access(R.Addr);
      break;
    case OpClass::MemStore:
      Cache.access(R.Addr);
      LatCycles = Machine.LatStore;
      break;
    case OpClass::Branch:
      LatCycles = Machine.LatBranch;
      break;
    case OpClass::Call:
      LatCycles = Machine.CallOverhead;
      break;
    case OpClass::Marker:
      LatCycles = 0;
      break;
    }
    // External math builtins are heavyweight.
    if (R.I->Op == Opcode::Call && !R.IsCallEnter)
      LatCycles = Machine.MathBuiltinLatency;
    S.LatCycles = static_cast<uint32_t>(LatCycles);

    if (R.I->Op == Opcode::Br) {
      S.IsBr = true;
      S.BrCorrect = Predictor.predictAndTrain(R.F, R.I->Id, R.BranchTaken);
    }
    return S;
  }

  /// Pure scoreboard arithmetic for a resolved step: max/+ over clocks,
  /// the in-flight ring and register-ready times. Translation-invariant
  /// (see file comment); shared by the reference path and memo replay.
  void applyTiming(const ResolvedStep &S) {
    ++Retired;
    const uint64_t IssueSlot = IssueSlotSubticks;

    // The frame the instruction executed in: for returns, the popped
    // frame was Depth (after-pop depth + 1); otherwise the current top.
    const size_t ExecFrame =
        S.IsReturn ? S.Depth : (S.Depth == 0 ? 0 : S.Depth - 1);
    // For call-enters the instruction itself ran in the caller frame.
    const size_t SrcFrame =
        S.IsCallEnter && ExecFrame > 0 ? ExecFrame - 1 : ExecFrame;

    // Issue when a slot is free, the operands are ready, and the
    // in-flight window has room (the oldest in-flight completed).
    uint64_t IssueAt = std::max(SlotTime, InFlight[InFlightIdx]);
    for (uint32_t N = 0; N != S.NumSrcs; ++N)
      IssueAt = std::max(IssueAt, regReady(SrcFrame, S.I->Srcs[N]));
    // A dependence-stalled instruction occupies no extra front-end
    // bandwidth: the static schedule places independent work in between.
    // Stalls are bounded by operand readiness and the in-flight window.
    SlotTime += IssueSlot;

    const uint64_t Done =
        IssueAt + IssueSlot + uint64_t(S.LatCycles) * SubticksPerCycle;
    Now = std::max(Now, Done);
    InFlight[InFlightIdx] = Done;
    if (++InFlightIdx == InFlight.size())
      InFlightIdx = 0;

    // Results.
    if (S.I->Dst != NoReg && !S.IsCallEnter)
      setRegReady(SrcFrame, S.I->Dst, Done);

    // Conditional branches pay the misprediction penalty on the front
    // end.
    if (S.IsBr && !S.BrCorrect) {
      SlotTime = std::max(
          SlotTime, Done + Machine.BranchMispredictPenalty * SubticksPerCycle);
      Now = std::max(Now, SlotTime);
    }

    // Frame bookkeeping.
    if (S.IsCallEnter) {
      if (Frames.size() < S.Depth)
        Frames.resize(S.Depth);
      Frames[S.Depth - 1].clear();
      // Arguments become ready after the call overhead; the front end
      // redirects into the callee at the same time.
      const uint64_t ArgsReady =
          IssueAt + IssueSlot + Machine.CallOverhead * SubticksPerCycle;
      for (size_t A = 0; A != S.I->Srcs.size(); ++A)
        setRegReady(S.Depth - 1, static_cast<Reg>(A), ArgsReady);
      SlotTime = std::max(SlotTime, ArgsReady);
      Now = std::max(Now, SlotTime);
    } else if (S.IsReturn) {
      if (Frames.size() > S.Depth)
        Frames.resize(S.Depth);
      // Return redirect; the caller's destination register readiness is
      // approximated by the clock itself.
      SlotTime += Machine.CallOverhead * SubticksPerCycle / 2;
      Now = std::max(Now, SlotTime);
    }
  }

  /// Accounts one executed instruction; \p Depth is the interpreter's
  /// stack depth after the step (frames are tracked from call/return
  /// flags).
  void onStep(const StepResult &R, size_t Depth) {
    if (Fidelity == SimFidelity::FastForward) {
      fastStep(R);
      return;
    }
    applyTiming(resolve(R, Depth));
  }

  bool isFastForward() const { return Fidelity == SimFidelity::FastForward; }

  /// Current core clock in subticks.
  uint64_t now() const { return Now; }
  /// Sets the clock (thread starts); register scoreboards are flushed to
  /// be ready at the new time.
  void setNow(uint64_t Subticks);
  /// Resets the core to a fresh thread start at \p Subticks: drops all
  /// frame scoreboards (unknown registers read as ready-at-0, exactly as
  /// a newly constructed core) and fills the in-flight window. Lets the
  /// SPT simulator reuse one ghost core arena per speculative thread
  /// with the same timing a per-thread construction had.
  void resetFor(uint64_t Subticks);
  /// Moves the clock forward to at least \p Subticks without disturbing
  /// register readiness or the in-flight window (used at joins: the core
  /// keeps its pipeline state while waiting).
  void advanceTo(uint64_t Subticks);

  /// Charges a fixed number of cycles (fork/commit/re-execution).
  void charge(uint64_t Cycles) {
    SlotTime = Now + Cycles * SubticksPerCycle;
    Now = SlotTime;
  }

  uint64_t retired() const { return Retired; }
  double cyclesNow() const {
    return static_cast<double>(Now) / SubticksPerCycle;
  }

private:
  friend class BlockTimer; // The block-timing memo manipulates the
                           // scoreboard state directly on a hit.

  uint64_t regReady(size_t Frame, Reg R) const {
    if (Frame >= Frames.size() || R >= Frames[Frame].size())
      return 0;
    return Frames[Frame][R];
  }

  void setRegReady(size_t Frame, Reg R, uint64_t T) {
    if (Frame >= Frames.size())
      Frames.resize(Frame + 1);
    if (R >= Frames[Frame].size())
      Frames[Frame].resize(R + 1, 0);
    Frames[Frame][R] = T;
  }

  /// Fast-forward accounting: issue slot + a fixed per-class latency
  /// fraction, no microarchitectural state at all.
  void fastStep(const StepResult &R);

  const MachineConfig &Machine;
  CacheHierarchy &Cache;
  BranchPredictor &Predictor;
  SimFidelity Fidelity;
  uint64_t IssueSlotSubticks;

  uint64_t Now = 0;      ///< Visible clock: max completion time.
  uint64_t SlotTime = 0; ///< Issue-bandwidth clock.
  uint64_t Retired = 0;
  /// Completion times of the in-flight window (ring buffer).
  std::vector<uint64_t> InFlight;
  size_t InFlightIdx = 0;
  /// Per-frame register-ready times, in subticks.
  std::vector<std::vector<uint64_t>> Frames;
};

} // namespace spt

#endif // SPT_SIM_CORETIMING_H
