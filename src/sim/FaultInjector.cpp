//===- sim/FaultInjector.cpp - Seeded misspeculation fault injection -------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/FaultInjector.h"

#include "sim/Machine.h"

using namespace spt;

uint64_t FaultInjector::jitterSubticks() {
  if (Opts.MaxJitterCycles == 0 || !Rng.nextBool(Opts.TimingJitterRate))
    return 0;
  const int64_t Cycles = Rng.nextInRange(1, Opts.MaxJitterCycles);
  return static_cast<uint64_t>(Cycles) * SubticksPerCycle;
}
