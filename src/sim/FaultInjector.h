//===- sim/FaultInjector.h - Seeded misspeculation fault injection ---------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adversarial fault injection for the SPT simulator. The paper's machine
/// survives misspeculation by squashing the speculative thread and
/// re-executing violated instructions; the compiler merely makes that
/// recovery *rare*. Nothing in the normal test suite makes it *frequent* —
/// every workload exercises the happy path the cost model predicted. The
/// injector closes that gap: wired into runSpt(), it deterministically
///
///  - forces extra squashes (a completed speculative thread is discarded
///    and the iteration re-executed at full cost, as if the hardware had
///    lost its buffer),
///  - flips values the ghost thread reads — speculation-buffer hits, undo
///    log hits, shared memory, and snapshot registers (the SVP prediction
///    inputs live there) — modelling wrong predictions and stale operands;
///    each flip is treated as a hardware-detected violation so the flipped
///    instruction and its dependence slice join the re-execution set,
///  - perturbs fork and commit timing by bounded random delays.
///
/// None of this may change architectural results: the simulator's main
/// interpreter executes every iteration functionally, so injected faults
/// must only shift timing, statistics and recovery behaviour. The chaos
/// oracle (tests/chaos_test.cpp, bench/chaos_recovery.cpp) asserts exactly
/// that, differentially against SeqSim, across seed sweeps.
///
/// Everything is driven by one seeded PRNG so a failing (seed, rates)
/// pair reproduces bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SIM_FAULTINJECTOR_H
#define SPT_SIM_FAULTINJECTOR_H

#include "interp/Interp.h"
#include "support/Random.h"

#include <cstdint>

namespace spt {

/// Injection knobs. All rates are probabilities in [0, 1]; everything at 0
/// (the default) makes the injector inert.
struct FaultInjectorOptions {
  uint64_t Seed = 0x5eed5eed5eedull;
  /// P(discard a completed speculative thread), per join.
  double ForcedSquashRate = 0.0;
  /// P(flip the value a ghost load observes), per ghost load.
  double LoadFlipRate = 0.0;
  /// P(corrupt one register of the fork snapshot), per fork. This is
  /// where SVP's predicted values live when the speculative thread starts.
  double RegFlipRate = 0.0;
  /// P(add a random delay to the fork / commit overhead), per event.
  double TimingJitterRate = 0.0;
  /// Upper bound on one injected delay, in cycles.
  uint32_t MaxJitterCycles = 8;
};

/// Counts of injected faults (for reports and sanity checks that the
/// injector actually fired during a sweep).
struct FaultInjectionStats {
  uint64_t ForcedSquashes = 0;
  uint64_t FlippedLoads = 0;
  uint64_t FlippedRegs = 0;
  uint64_t ForkJitters = 0;
  uint64_t CommitJitters = 0;

  uint64_t total() const {
    return ForcedSquashes + FlippedLoads + FlippedRegs + ForkJitters +
           CommitJitters;
  }
};

/// The seeded injector. One instance drives one runSpt() call.
class FaultInjector {
public:
  explicit FaultInjector(const FaultInjectorOptions &Opts =
                             FaultInjectorOptions())
      : Opts(Opts), Rng(Opts.Seed) {}

  /// True when any rate can fire (lets the simulator skip the plumbing).
  bool enabled() const {
    return Opts.ForcedSquashRate > 0.0 || Opts.LoadFlipRate > 0.0 ||
           Opts.RegFlipRate > 0.0 || Opts.TimingJitterRate > 0.0;
  }

  /// Per join: discard the completed speculative thread?
  bool shouldForceSquash() {
    if (!Rng.nextBool(Opts.ForcedSquashRate))
      return false;
    ++Stats.ForcedSquashes;
    return true;
  }

  /// Per ghost load: corrupt the observed value?
  bool shouldFlipLoad() {
    if (!Rng.nextBool(Opts.LoadFlipRate))
      return false;
    ++Stats.FlippedLoads;
    return true;
  }

  /// Per fork: corrupt one snapshot register?
  bool shouldFlipReg() {
    if (!Rng.nextBool(Opts.RegFlipRate))
      return false;
    ++Stats.FlippedRegs;
    return true;
  }

  /// Deterministic single-bit corruption of a value.
  Value corrupt(Value V) {
    V.I ^= int64_t(1) << Rng.nextBelow(63);
    return V;
  }

  /// Uniform index below \p Bound (register picking). Bound must be > 0.
  uint64_t pickIndex(uint64_t Bound) {
    return static_cast<uint64_t>(Rng.nextBelow(static_cast<int64_t>(Bound)));
  }

  /// Extra subticks to add to the fork overhead (0 when no jitter fires).
  uint64_t forkJitterSubticks() {
    const uint64_t J = jitterSubticks();
    if (J)
      ++Stats.ForkJitters;
    return J;
  }

  /// Extra subticks to add to the commit overhead.
  uint64_t commitJitterSubticks() {
    const uint64_t J = jitterSubticks();
    if (J)
      ++Stats.CommitJitters;
    return J;
  }

  const FaultInjectionStats &stats() const { return Stats; }
  const FaultInjectorOptions &options() const { return Opts; }

private:
  uint64_t jitterSubticks();

  FaultInjectorOptions Opts;
  Random Rng;
  FaultInjectionStats Stats;
};

} // namespace spt

#endif // SPT_SIM_FAULTINJECTOR_H
