//===- sim/Machine.h - Simulated machine configuration ---------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the simulated SPT machine (paper Section 8): a
/// tightly-coupled two-core multiprocessor — one main core, one
/// speculative core — of in-order Itanium2-like cores with private
/// register files and a shared cache hierarchy. The paper's published
/// parameters are the defaults: 5-cycle branch misprediction penalty,
/// 6-cycle fork and 5-cycle commit overheads, Itanium2-like cache
/// latencies.
///
/// Timing is tracked in subticks (8 per cycle) so issue bandwidth
/// (IssueWidth per cycle) divides evenly.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SIM_MACHINE_H
#define SPT_SIM_MACHINE_H

#include <cstdint>

namespace spt {

/// Subticks per simulated cycle.
inline constexpr uint64_t SubticksPerCycle = 8;

/// One cache level's geometry and hit latency.
struct CacheLevelConfig {
  uint64_t SizeBytes = 0;
  uint32_t LineBytes = 64;
  uint32_t Ways = 4;
  uint32_t HitLatencyCycles = 1;
};

/// The whole machine.
struct MachineConfig {
  /// Total cores: one main core plus Cores-1 speculative cores. The
  /// paper's machine is Cores=2 (the default); the generalized SPT
  /// engine chains up to Cores-1 speculative threads per fork, each
  /// committing in program order. Cores=1 disables speculation entirely
  /// (the main core still executes every iteration).
  uint32_t Cores = 2;

  /// In-order issue bandwidth per core (instructions per cycle).
  uint32_t IssueWidth = 2;

  /// Static scheduling window: at most this many instructions in flight;
  /// issue stalls until the oldest completes. Bounds how much latency a
  /// static (EPIC) schedule can hide across iterations.
  uint32_t SchedulingWindow = 24;

  // Operation latencies (cycles).
  uint32_t LatIntAlu = 1;
  uint32_t LatIntMul = 4;
  uint32_t LatIntDiv = 24;
  uint32_t LatFpAlu = 4;
  uint32_t LatFpMul = 4;
  uint32_t LatFpDiv = 30;
  uint32_t LatStore = 1;
  uint32_t LatBranch = 1;
  /// Fixed overhead of entering/leaving a call frame.
  uint32_t CallOverhead = 2;
  /// Latency of heavy math builtins (sqrt/log/exp).
  uint32_t MathBuiltinLatency = 20;

  /// Branch misprediction penalty (paper: 5 cycles).
  uint32_t BranchMispredictPenalty = 5;

  /// Minimum overheads to fork and commit a speculative thread
  /// (paper: 6 and 5 cycles).
  uint32_t ForkOverhead = 6;
  uint32_t CommitOverhead = 5;

  // Shared memory hierarchy, Itanium2-like.
  CacheLevelConfig L1{16 * 1024, 64, 4, 1};
  CacheLevelConfig L2{256 * 1024, 128, 8, 5};
  CacheLevelConfig L3{3 * 1024 * 1024, 128, 12, 14};
  uint32_t MemLatencyCycles = 180;
};

} // namespace spt

#endif // SPT_SIM_MACHINE_H
