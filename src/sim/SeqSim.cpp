//===- sim/SeqSim.cpp - Sequential (single-core) simulation ------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/SeqSim.h"

#include "analysis/Cfg.h"
#include "analysis/LoopInfo.h"
#include "sim/CoreTiming.h"
#include "support/Debug.h"

#include <memory>

using namespace spt;

namespace {

/// Cached structural analyses per function (loop tracking).
struct FuncLoops {
  CfgInfo Cfg;
  LoopNest Nest;
  std::map<BlockId, const Loop *> HeaderToLoop;

  explicit FuncLoops(const Function &F)
      : Cfg(CfgInfo::compute(F)), Nest(LoopNest::compute(F, Cfg)) {
    for (uint32_t LI = 0; LI != Nest.numLoops(); ++LI)
      HeaderToLoop[Nest.loop(LI)->Header] = Nest.loop(LI);
  }
};

struct ActiveLoop {
  const Function *F = nullptr;
  const Loop *L = nullptr;
};

struct ShadowFrame {
  const Function *F = nullptr;
  const FuncLoops *FL = nullptr;
  std::vector<ActiveLoop> Active;
};

} // namespace

SeqSimResult spt::runSequential(const Module &M, const std::string &FnName,
                                const std::vector<Value> &Args,
                                const MachineConfig &Machine,
                                uint64_t MaxSteps, uint64_t RngSeed) {
  const Function *F = M.findFunction(FnName);
  if (!F)
    spt_fatal("runSequential: no such function");

  InterpOptions IOpts;
  IOpts.RngSeed = RngSeed;
  Interpreter In(M, IOpts);
  In.startCall(F, Args);

  CacheHierarchy Cache(Machine);
  BranchPredictor Predictor;
  CoreTiming Core(Machine, Cache, Predictor);

  SeqSimResult Result;
  std::map<const Function *, std::unique_ptr<FuncLoops>> Cache_;
  auto loopsFor = [&](const Function *Fn) -> const FuncLoops & {
    auto It = Cache_.find(Fn);
    if (It == Cache_.end())
      It = Cache_.emplace(Fn, std::make_unique<FuncLoops>(*Fn)).first;
    return *It->second;
  };

  std::vector<ShadowFrame> Shadow;
  Shadow.push_back(ShadowFrame{F, &loopsFor(F), {}});

  auto enterBlock = [&](ShadowFrame &Sh, BlockId To) {
    while (!Sh.Active.empty() && !Sh.Active.back().L->contains(To))
      Sh.Active.pop_back();
    auto It = Sh.FL->HeaderToLoop.find(To);
    if (It == Sh.FL->HeaderToLoop.end())
      return;
    const Loop *L = It->second;
    LoopSeqStats &Stats = Result.PerLoop[{Sh.F, L->Id}];
    if (!Sh.Active.empty() && Sh.Active.back().L == L) {
      ++Stats.Iterations;
      return;
    }
    Sh.Active.push_back(ActiveLoop{Sh.F, L});
    ++Stats.Activations;
    ++Stats.Iterations;
  };
  enterBlock(Shadow.back(), F->entry());

  uint64_t Steps = 0;
  while (!In.done() && Steps < MaxSteps) {
    const uint64_t Before = Core.now();
    const StepResult R = In.step();
    ++Steps;
    Core.onStep(R, In.stackDepth());
    const uint64_t Delta = Core.now() - Before;

    // Attribute to every active loop in every frame.
    for (ShadowFrame &Sh : Shadow)
      for (ActiveLoop &A : Sh.Active) {
        LoopSeqStats &Stats = Result.PerLoop[{A.F, A.L->Id}];
        Stats.Subticks += Delta;
        ++Stats.Instrs;
      }

    if (R.IsCallEnter) {
      const Function *Callee = In.topFrame().F;
      Shadow.push_back(ShadowFrame{Callee, &loopsFor(Callee), {}});
      enterBlock(Shadow.back(), Callee->entry());
    } else if (R.IsReturn) {
      Shadow.pop_back();
    } else if (R.IsBranch) {
      enterBlock(Shadow.back(), R.NextBlock);
    }
  }
  if (!In.done())
    spt_fatal("runSequential: step budget exhausted (infinite loop?)");

  Result.Subticks = Core.now();
  Result.Instrs = Core.retired();
  Result.Result = In.returnValue();
  Result.Output = In.output();
  Result.MemoryHash = In.memoryHash();
  Result.BranchLookups = Predictor.lookups();
  Result.BranchMispredicts = Predictor.mispredicts();
  return Result;
}
