//===- sim/SeqSim.cpp - Sequential (single-core) simulation ------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/SeqSim.h"

#include "analysis/Cfg.h"
#include "analysis/LoopInfo.h"
#include "sim/CoreTiming.h"
#include "sim/TimingMemo.h"
#include "support/Debug.h"

#include <memory>

using namespace spt;

namespace {

/// Cached structural analyses per function (loop tracking).
struct FuncLoops {
  CfgInfo Cfg;
  LoopNest Nest;
  /// Loop headed by each block (indexed by BlockId), or null.
  std::vector<const Loop *> HeaderOf;

  explicit FuncLoops(const Function &F)
      : Cfg(CfgInfo::compute(F)), Nest(LoopNest::compute(F, Cfg)) {
    HeaderOf.assign(F.numBlocks(), nullptr);
    for (uint32_t LI = 0; LI != Nest.numLoops(); ++LI)
      HeaderOf[Nest.loop(LI)->Header] = Nest.loop(LI);
  }
};

struct ActiveLoop {
  const Loop *L = nullptr;
  LoopSeqStats *Stats = nullptr; ///< Cached; PerLoop never rehashes nodes.
};

struct ShadowFrame {
  const Function *F = nullptr;
  const FuncLoops *FL = nullptr;
  std::vector<ActiveLoop> Active;
};

} // namespace

SeqSimResult spt::runSequential(const Module &M, const std::string &FnName,
                                const std::vector<Value> &Args,
                                const MachineConfig &Machine,
                                uint64_t MaxSteps, uint64_t RngSeed,
                                const SimOptions &Sim) {
  const Function *F = M.findFunction(FnName);
  if (!F)
    spt_fatal("runSequential: no such function");

  InterpOptions IOpts;
  IOpts.RngSeed = RngSeed;
  Interpreter In(M, IOpts);
  In.startCall(F, Args);

  CacheHierarchy Cache(Machine);
  BranchPredictor Predictor;
  CoreTiming Core(Machine, Cache, Predictor, Sim.Fidelity);
  TimingMemo Memo;
  BlockTimer BT(Core, Sim.Memo ? &Memo : nullptr);

  SeqSimResult Result;
  std::map<const Function *, std::unique_ptr<FuncLoops>> Cache_;
  auto loopsFor = [&](const Function *Fn) -> const FuncLoops & {
    auto It = Cache_.find(Fn);
    if (It == Cache_.end())
      It = Cache_.emplace(Fn, std::make_unique<FuncLoops>(*Fn)).first;
    return *It->second;
  };

  std::vector<ShadowFrame> Shadow;
  Shadow.push_back(ShadowFrame{F, &loopsFor(F), {}});

  auto enterBlock = [&](ShadowFrame &Sh, BlockId To) {
    while (!Sh.Active.empty() && !Sh.Active.back().L->contains(To))
      Sh.Active.pop_back();
    const Loop *L = To < Sh.FL->HeaderOf.size() ? Sh.FL->HeaderOf[To]
                                                : nullptr;
    if (!L)
      return;
    LoopSeqStats &Stats = Result.PerLoop[{Sh.F, L->Id}];
    if (!Sh.Active.empty() && Sh.Active.back().L == L) {
      ++Stats.Iterations;
      return;
    }
    Sh.Active.push_back(ActiveLoop{L, &Stats});
    ++Stats.Activations;
    ++Stats.Iterations;
  };
  enterBlock(Shadow.back(), F->entry());

  // Timing is attributed per segment: a run of steps over which the
  // active-loop sets are constant (bounded by block boundaries and
  // call/return barriers — exactly where the block timer syncs the core
  // clock). Per-step deltas telescope, so the per-loop sums are
  // byte-identical to per-step attribution.
  uint64_t SegStart = Core.now();
  uint64_t SegSteps = 0;
  auto closeSegment = [&]() {
    const uint64_t Delta = Core.now() - SegStart;
    if (Delta != 0 || SegSteps != 0)
      for (ShadowFrame &Sh : Shadow)
        for (ActiveLoop &A : Sh.Active) {
          A.Stats->Subticks += Delta;
          A.Stats->Instrs += SegSteps;
        }
    SegStart = Core.now();
    SegSteps = 0;
  };

  auto Sink = makeStepSink([&](const StepResult &R) {
    ++SegSteps;
    BT.onStep(R, In.stackDepth());

    if (R.IsCallEnter) {
      closeSegment();
      const Function *Callee = In.topFrame().F;
      Shadow.push_back(ShadowFrame{Callee, &loopsFor(Callee), {}});
      enterBlock(Shadow.back(), Callee->entry());
    } else if (R.IsReturn) {
      closeSegment();
      Shadow.pop_back();
    } else if (R.IsBranch) {
      closeSegment();
      enterBlock(Shadow.back(), R.NextBlock);
    }
    return true;
  });
  In.runBatch(Sink, MaxSteps);
  if (!In.done())
    spt_fatal("runSequential: step budget exhausted (infinite loop?)");
  BT.sync();
  closeSegment();

  Result.Subticks = Core.now();
  Result.Instrs = Core.retired();
  Result.Result = In.returnValue();
  Result.Output = In.output();
  Result.MemoryHash = In.memoryHash();
  Result.BranchLookups = Predictor.lookups();
  Result.BranchMispredicts = Predictor.mispredicts();
  Result.Perf = Memo.Stats;
  return Result;
}
