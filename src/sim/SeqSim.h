//===- sim/SeqSim.h - Sequential (single-core) simulation -------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a program on one simulated core and reports cycles, instructions
/// and IPC (the paper's Table 1 baseline), plus per-loop cycle/iteration
/// attribution used for runtime coverage (Figure 16) and per-loop speedups
/// (Figure 18). A block's cycles are attributed to every loop activation
/// enclosing it, across call frames (an SPT loop "covers" the cycles of
/// its callees, as the paper's coverage metric does).
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SIM_SEQSIM_H
#define SPT_SIM_SEQSIM_H

#include "interp/Interp.h"
#include "sim/Machine.h"
#include "sim/SimOptions.h"

#include <map>
#include <string>
#include <vector>

namespace spt {

/// Per-loop sequential statistics.
struct LoopSeqStats {
  uint64_t Subticks = 0;
  uint64_t Instrs = 0;
  uint64_t Iterations = 0;  ///< Header visits (incl. the exiting one).
  uint64_t Activations = 0;

  double cycles() const {
    return static_cast<double>(Subticks) / SubticksPerCycle;
  }
};

/// Result of one sequential simulation.
struct SeqSimResult {
  uint64_t Subticks = 0;
  uint64_t Instrs = 0;
  Value Result;
  std::string Output;
  /// Hash of the final array memory image (Interpreter::memoryHash); the
  /// differential oracle's reference architectural state.
  uint64_t MemoryHash = 0;

  /// Keyed by (function, loop id within its LoopNest).
  std::map<std::pair<const Function *, uint32_t>, LoopSeqStats> PerLoop;

  uint64_t BranchLookups = 0;
  uint64_t BranchMispredicts = 0;

  /// Fast-path effectiveness (memo hit/miss/invalidation). Not part of
  /// the architectural report; differential comparisons exclude it.
  SimPerfCounters Perf;

  double cycles() const {
    return static_cast<double>(Subticks) / SubticksPerCycle;
  }
  double ipc() const {
    return Subticks == 0 ? 0.0
                         : static_cast<double>(Instrs) / cycles();
  }
};

/// Simulates \p FnName(\p Args) on a single core. \p Sim selects the
/// timing fidelity and fast paths (sim/SimOptions.h); the default —
/// exact fidelity with block-level timing memoization — is byte-identical
/// to the unmemoized reference (SimOptions::exactNoMemo()).
SeqSimResult runSequential(const Module &M, const std::string &FnName,
                           const std::vector<Value> &Args = {},
                           const MachineConfig &Machine = MachineConfig(),
                           uint64_t MaxSteps = 500000000ull,
                           uint64_t RngSeed = 0x5eed5eed5eedull,
                           const SimOptions &Sim = SimOptions());

} // namespace spt

#endif // SPT_SIM_SEQSIM_H
