//===- sim/SimOptions.h - Simulation fidelity and fast-path options ---------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Options shared by the sequential and SPT simulators: the timing
/// fidelity and the block-level timing-memoization switch. Architectural
/// state (results, program output, the final memory image) is identical
/// under every setting — only how the timing layer is computed changes.
/// See docs/simulation.md for the fidelity contract and the memoization
/// key/invalidaton rules.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SIM_SIMOPTIONS_H
#define SPT_SIM_SIMOPTIONS_H

#include <cstdint>

namespace spt {

/// How faithfully the timing layer is modelled.
enum class SimFidelity : uint8_t {
  /// The scoreboarded EPIC core, the set-associative cache hierarchy and
  /// the per-site branch predictors — the paper's machine. Reports are
  /// byte-identical whether or not memoization is enabled.
  Exact,
  /// Coarse per-class fixed-latency accounting: no cache, no predictor,
  /// no scoreboard. Architectural state and every speculation counter
  /// (forks, joins, squashes, violations, re-executed instructions,
  /// iterations) stay bit-exact; only Subticks/IPC (and the predictor
  /// and cache statistics, which read as zero) are approximate.
  FastForward,
};

/// Which SPT engine implementation runs the speculation machinery.
enum class SptSimEngine : uint8_t {
  /// The N-core chained-ghost engine (MachineConfig::Cores speculative
  /// chain). At Cores=2 it is byte-identical — reports, MemoryHash,
  /// every speculation counter — to the retained two-core reference;
  /// the kway-diff oracle and tests/kway_sim_test.cpp enforce this.
  Generalized,
  /// The original one-main-one-spec engine, kept verbatim as the
  /// differential baseline. Ignores MachineConfig::Cores (always 2).
  TwoCoreReference,
};

/// Simulator options. The defaults reproduce the historical behaviour
/// (exact fidelity) bit-for-bit.
struct SimOptions {
  SimFidelity Fidelity = SimFidelity::Exact;
  /// Block-level timing memoization (exact fidelity only). On by
  /// default: the memo hit path replays recorded scoreboard outcomes
  /// whose microarchitectural inputs are verified equal, so results are
  /// byte-identical to the unmemoized reference by construction.
  bool Memo = true;
  /// SPT engine selection (SeqSim ignores this field).
  SptSimEngine Engine = SptSimEngine::Generalized;

  static SimOptions exact() { return SimOptions{}; }
  static SimOptions exactNoMemo() {
    SimOptions O;
    O.Memo = false;
    return O;
  }
  static SimOptions fastForward() {
    SimOptions O;
    O.Fidelity = SimFidelity::FastForward;
    return O;
  }
  static SimOptions twoCoreReference() {
    SimOptions O;
    O.Engine = SptSimEngine::TwoCoreReference;
    return O;
  }
};

/// Fast-path effectiveness counters, reported per simulation. Not part
/// of the architectural report: differential comparisons exclude them
/// (memoized and unmemoized runs legitimately differ here).
struct SimPerfCounters {
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
  /// A block's recorded timing was discarded because the
  /// microarchitectural state it was keyed on diverged.
  uint64_t MemoInvalidations = 0;
  /// Per-buffer-epoch batched violation closures run by the SPT
  /// simulator (one per completed ghost thread).
  uint64_t ViolationBatches = 0;

  double hitRate() const {
    const uint64_t Total = MemoHits + MemoMisses;
    return Total == 0 ? 0.0
                      : static_cast<double>(MemoHits) /
                            static_cast<double>(Total);
  }
};

} // namespace spt

#endif // SPT_SIM_SIMOPTIONS_H
