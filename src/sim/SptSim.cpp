//===- sim/SptSim.cpp - Two-core speculative (SPT) simulation ----------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Hot-path layout: the speculation scoreboard (speculation buffer, undo
// log, last-writer tables, main/ghost register-write sets) lives in flat
// open-addressing hashes, epoch-tagged arenas and bitsets reused across
// speculative threads — the former std::map/std::set machinery was ~10%
// of a whole-suite profile. Violation detection is batched: the ghost
// records a structure-of-arrays trace (direct-violation flags plus
// resolved producer indices) and one post-pass per buffer epoch closes it
// over the dynamic dependences, replacing the per-access map scans. The
// pass is order-equivalent to the former inline closure because producers
// always precede consumers in the trace.
//
//===----------------------------------------------------------------------===//

#include "sim/SptSim.h"

#include "sim/CoreTiming.h"
#include "sim/FaultInjector.h"
#include "sim/TimingMemo.h"
#include "support/Debug.h"

#include <algorithm>
#include <map>
#include <memory>

using namespace spt;

namespace {

/// Open-addressing (linear probe) address map with O(1) epoch-based
/// clearing: the speculation buffer and the undo log. Never shrinks; one
/// arena serves every speculative thread of a run.
class SpecAddrMap {
public:
  struct Slot {
    uint64_t Addr = 0;
    uint64_t Epoch = 0;
    Value V{};
    int32_t Writer = -1;
  };

  void reset() {
    ++Epoch;
    Live = 0;
  }

  const Slot *find(uint64_t Addr) const {
    if (Live == 0)
      return nullptr;
    size_t I = indexOf(Addr);
    while (true) {
      const Slot &S = Slots[I];
      if (S.Epoch != Epoch)
        return nullptr;
      if (S.Addr == Addr)
        return &S;
      if (++I == Slots.size())
        I = 0;
    }
  }

  void insertOrAssign(uint64_t Addr, Value V, int32_t Writer) {
    ensureCapacity();
    Slot &S = findSlot(Addr);
    S.V = V;
    S.Writer = Writer;
  }

  /// First write wins (undo log: the pre-fork value).
  void insertIfAbsent(uint64_t Addr, Value V) {
    ensureCapacity();
    const bool Existed = Live > 0 && find(Addr) != nullptr;
    if (Existed)
      return;
    Slot &S = findSlot(Addr);
    S.V = V;
    S.Writer = -1;
  }

private:
  static size_t mix(uint64_t X) {
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdull;
    X ^= X >> 33;
    return static_cast<size_t>(X);
  }
  size_t indexOf(uint64_t Addr) const {
    return mix(Addr) & (Slots.size() - 1);
  }

  Slot &findSlot(uint64_t Addr) {
    size_t I = indexOf(Addr);
    while (Slots[I].Epoch == Epoch && Slots[I].Addr != Addr)
      if (++I == Slots.size())
        I = 0;
    if (Slots[I].Epoch != Epoch) {
      ++Live;
      Slots[I].Epoch = Epoch;
      Slots[I].Addr = Addr;
    }
    return Slots[I];
  }

  void ensureCapacity() {
    if (Slots.empty()) {
      Slots.resize(64);
      return;
    }
    if (Live * 4 < Slots.size() * 3)
      return;
    std::vector<Slot> Old;
    Old.swap(Slots);
    Slots.resize(Old.size() * 2);
    const size_t Relive = Live;
    Live = 0;
    for (const Slot &S : Old)
      if (S.Epoch == Epoch) {
        Slot &N = findSlot(S.Addr);
        N.V = S.V;
        N.Writer = S.Writer;
      }
    (void)Relive;
  }

  std::vector<Slot> Slots;
  uint64_t Epoch = 1;
  size_t Live = 0;
};

/// Per-step ghost memory semantics: reads hit the speculation buffer,
/// then the undo log (a stale value: violation), then shared memory;
/// writes are buffered.
class GhostMemHooks final : public Interpreter::MemHooks {
public:
  GhostMemHooks(const Interpreter &Ghost, SpecAddrMap &SpecBuffer,
                const SpecAddrMap &UndoLog, FaultInjector *Injector)
      : Ghost(Ghost), SpecBuffer(SpecBuffer), UndoLog(UndoLog),
        Injector(Injector) {}

  Value onLoad(uint64_t Addr, Value Fallback) override {
    LastLoadViolated = false;
    LastLoadInjected = false;
    LastLoadSpecWriter = -1;
    Value V = Fallback;
    if (const SpecAddrMap::Slot *Spec = SpecBuffer.find(Addr)) {
      LastLoadSpecWriter = Spec->Writer;
      V = Spec->V;
    } else if (const SpecAddrMap::Slot *Undo = UndoLog.find(Addr)) {
      LastLoadViolated = true;
      V = Undo->V;
    }
    // Injected corruption models a wrong speculative value the hardware
    // detects at commit: the consuming instruction joins the re-execution
    // slice (the driver loop checks LastLoadInjected).
    if (Injector && Injector->shouldFlipLoad()) {
      LastLoadInjected = true;
      V = Injector->corrupt(V);
    }
    return V;
  }

  bool onStore(uint64_t Addr, Value V) override {
    // The producing trace entry: the ghost runs from instrCount()==0 and
    // the count is bumped before each instruction executes, so the
    // instruction doing this store is entry instrCount()-1. (The batched
    // runner retires fused pairs in one dispatch, so a driver-maintained
    // "current entry" would go stale inside a pair.)
    SpecBuffer.insertOrAssign(Addr, V,
                              static_cast<int32_t>(Ghost.instrCount() - 1));
    return true; // Never reaches shared memory.
  }

  /// Outputs of the last load.
  bool LastLoadViolated = false;
  bool LastLoadInjected = false;
  int32_t LastLoadSpecWriter = -1;

private:
  const Interpreter &Ghost;
  SpecAddrMap &SpecBuffer;
  const SpecAddrMap &UndoLog;
  FaultInjector *Injector;
};

/// Result of simulating one speculative thread.
struct GhostOutcome {
  bool Completed = false;
  bool Violated = false;
  uint64_t EndSubtick = 0;
  uint64_t Instrs = 0;
  uint64_t ReexecInstrs = 0;
  uint64_t ReexecSubticks = 0;
};

/// State captured when the main thread forks. Arena-reused across forks.
struct PendingSpec {
  int64_t LoopId = -1;
  const SptLoopDesc *Desc = nullptr;
  size_t FrameDepth = 0; ///< Main's stack depth at the fork.
  std::vector<Value> Regs;
  Random Rng;
  uint64_t ForkSubtick = 0;
  /// Registers the main thread wrote post-fork (loop-frame), as a bitset
  /// over the loop function's registers.
  std::vector<uint64_t> MainRegWriteBits;
  SpecAddrMap UndoLog;
  uint64_t MainRndCalls = 0;
  uint64_t MainIoCalls = 0;

  void resetFor(int64_t Id, const SptLoopDesc *D, size_t Depth) {
    LoopId = Id;
    Desc = D;
    FrameDepth = Depth;
    MainRegWriteBits.assign((D->F->numRegs() + 63) / 64, 0);
    UndoLog.reset();
    MainRndCalls = 0;
    MainIoCalls = 0;
  }
  bool mainWrote(Reg R) const {
    return (R >> 6) < MainRegWriteBits.size() &&
           (MainRegWriteBits[R >> 6] >> (R & 63)) & 1;
  }
  void setMainWrote(Reg R) {
    if ((R >> 6) >= MainRegWriteBits.size())
      MainRegWriteBits.resize((R >> 6) + 1, 0);
    MainRegWriteBits[R >> 6] |= 1ull << (R & 63);
  }
};

/// Undo-logging hook for the main core's post-fork leg.
class MainPostForkHooks final : public Interpreter::MemHooks {
public:
  MainPostForkHooks(Interpreter &In, PendingSpec &Spec)
      : In(In), Spec(Spec) {}

  Value onLoad(uint64_t, Value Fallback) override { return Fallback; }

  bool onStore(uint64_t Addr, Value) override {
    Spec.UndoLog.insertIfAbsent(Addr, In.peekAddr(Addr)); // First write wins.
    return false;                                         // Write through.
  }

private:
  Interpreter &In;
  PendingSpec &Spec;
};

/// Structure-of-arrays ghost trace and last-writer tables, arena-reused
/// across speculative threads (epoch/run-id tagged, O(1) begin).
struct GhostArena {
  // Per-trace-entry columns.
  std::vector<uint8_t> Direct;     ///< Directly violated.
  std::vector<uint8_t> IsLoad;
  std::vector<int32_t> SpecWriter; ///< Spec-buffer producer entry or -1.
  std::vector<uint32_t> SrcBegin;  ///< Offsets into SrcWriters (+sentinel).
  std::vector<int32_t> SrcWriters; ///< Resolved register producers.
  std::vector<uint8_t> Reexec;     ///< Closure output.
  // Last-writer tables: per frame, per register, (run id, trace index).
  std::vector<std::vector<std::pair<uint32_t, int32_t>>> Writers;
  uint32_t RunId = 0;
  /// Registers the ghost wrote in the loop frame (frame 0), as a bitset.
  std::vector<uint64_t> GhostWrote;

  void beginRun(unsigned LoopRegs) {
    ++RunId;
    Direct.clear();
    IsLoad.clear();
    SpecWriter.clear();
    SrcBegin.clear();
    SrcWriters.clear();
    GhostWrote.assign((LoopRegs + 63) / 64, 0);
  }
  int32_t writerOf(size_t Frame, Reg R) const {
    if (Frame >= Writers.size())
      return -1;
    const auto &W = Writers[Frame];
    if (R >= W.size() || W[R].first != RunId)
      return -1;
    return W[R].second;
  }
  void setWriter(size_t Frame, Reg R, int32_t Idx) {
    if (Frame >= Writers.size())
      Writers.resize(Frame + 1);
    auto &W = Writers[Frame];
    if (R >= W.size())
      W.resize(R + 1, {0, -1});
    W[R] = {RunId, Idx};
  }
  bool ghostWrote(Reg R) const {
    return (R >> 6) < GhostWrote.size() &&
           (GhostWrote[R >> 6] >> (R & 63)) & 1;
  }
  void setGhostWrote(Reg R) {
    if ((R >> 6) >= GhostWrote.size())
      GhostWrote.resize((R >> 6) + 1, 0);
    GhostWrote[R >> 6] |= 1ull << (R & 63);
  }
};

/// Simulates the speculative thread (one full iteration) as a ghost.
GhostOutcome runGhost(const Module &M, Interpreter &MainIn,
                      const PendingSpec &Spec, const MachineConfig &Machine,
                      CoreTiming &Core, TimingMemo *Memo, GhostArena &A,
                      SpecAddrMap &SpecBuffer, uint64_t MaxGhostSteps,
                      FaultInjector *Injector, SimPerfCounters &Perf) {
  GhostOutcome Out;

  Interpreter Ghost(M, MainIn);
  Ghost.rng() = Spec.Rng;
  Ghost.startAt(Spec.Desc->F, Spec.Desc->PreForkEntry, 0, Spec.Regs);

  SpecBuffer.reset();
  GhostMemHooks Hooks(Ghost, SpecBuffer, Spec.UndoLog, Injector);
  Ghost.setMemHooks(&Hooks);

  Core.resetFor(Spec.ForkSubtick);
  BlockTimer BT(Core, Memo);
  A.beginRun(Spec.Desc->F->numRegs());

  uint32_t N = 0;
  auto Sink = makeStepSink([&](const StepResult &R) {
    const size_t Depth = Ghost.stackDepth();
    // Depth before the step: calls push their frame before the record,
    // returns pop theirs.
    const size_t DepthBefore =
        R.IsCallEnter ? Depth - 1 : (R.IsReturn ? Depth + 1 : Depth);
    BT.onStep(R, Depth);

    // Frame the instruction read its operands in: always the top frame
    // before the step (returns pop after reading; calls push after).
    const size_t SrcFrame = DepthBefore - 1;

    uint8_t Direct = 0;
    A.SrcBegin.push_back(static_cast<uint32_t>(A.SrcWriters.size()));
    for (Reg S : R.I->Srcs) {
      A.SrcWriters.push_back(A.writerOf(SrcFrame, S));
      // Violations: stale register reads at the loop frame.
      if (SrcFrame == 0 && !A.ghostWrote(S) && Spec.mainWrote(S))
        Direct = 1;
    }

    // Violations: stale memory reads, and injected value corruption
    // (modelled as hardware-detected misspeculation).
    if (R.IsLoad && (Hooks.LastLoadViolated || Hooks.LastLoadInjected))
      Direct = 1;

    // Violations: racing stateful builtins.
    if (R.I->Op == Opcode::Call) {
      const Function *Callee = M.function(R.I->calleeIndex());
      if (Callee->isExternal()) {
        if (Callee->name() == "rnd" && Spec.MainRndCalls > 0)
          Direct = 1;
        if (Callee->name() == "print_int" || Callee->name() == "print_fp")
          Direct = 1; // I/O cannot speculate.
      }
    }

    A.Direct.push_back(Direct);
    A.IsLoad.push_back(R.IsLoad);
    A.SpecWriter.push_back(R.IsLoad ? Hooks.LastLoadSpecWriter : -1);

    // Record writes.
    if (R.I->Dst != NoReg && !R.IsCallEnter) {
      A.setWriter(SrcFrame, R.I->Dst, static_cast<int32_t>(N));
      if (SrcFrame == 0)
        A.setGhostWrote(R.I->Dst);
    }
    ++N;

    // Stop conditions: completed one iteration, predicted loop exit, or
    // the loop frame returned.
    if (R.IsBranch && Depth == 1 &&
        R.NextBlock == Spec.Desc->PreForkEntry) {
      Out.Completed = true;
      return false;
    }
    if (R.IsKill && R.I->IntImm == Spec.LoopId) {
      Out.Completed = true; // Speculated that the loop ends.
      return false;
    }
    if (R.IsReturn && Depth == 0)
      return false; // Fell out of the loop frame: treat as squashed.
    return true;
  });
  Ghost.runBatch(Sink, MaxGhostSteps);

  Ghost.setMemHooks(nullptr);
  BT.sync();
  Out.EndSubtick = Core.now();
  Out.Instrs = N;
  A.SrcBegin.push_back(static_cast<uint32_t>(A.SrcWriters.size()));

  // Batched violation closure over this buffer epoch: one forward pass
  // over the SoA trace inherits re-execution from register producers and
  // speculation-buffer flow. Producers precede consumers, so the pass is
  // equivalent to the former per-access inline closure.
  ++Perf.ViolationBatches;
  A.Reexec.assign(N, 0);
  const uint64_t IssueSlot = SubticksPerCycle / Machine.IssueWidth;
  for (uint32_t I = 0; I != N; ++I) {
    uint8_t Rx = A.Direct[I];
    if (!Rx) {
      for (uint32_t S = A.SrcBegin[I]; S != A.SrcBegin[I + 1]; ++S) {
        const int32_t W = A.SrcWriters[S];
        if (W >= 0 && A.Reexec[static_cast<uint32_t>(W)]) {
          Rx = 1;
          break;
        }
      }
      if (!Rx && A.SpecWriter[I] >= 0 &&
          A.Reexec[static_cast<uint32_t>(A.SpecWriter[I])])
        Rx = 1;
    }
    A.Reexec[I] = Rx;
    if (Rx) {
      ++Out.ReexecInstrs;
      Out.ReexecSubticks +=
          IssueSlot + (A.IsLoad[I] ? Machine.L1.HitLatencyCycles *
                                         SubticksPerCycle
                                   : 0);
    }
  }
  Out.Violated = Out.ReexecInstrs != 0;
  return Out;
}

} // namespace

SptSimResult spt::runSpt(const Module &M, const std::string &FnName,
                         const std::vector<Value> &Args,
                         const std::map<int64_t, SptLoopDesc> &Loops,
                         const MachineConfig &Machine, uint64_t MaxSteps,
                         uint64_t RngSeed, FaultInjector *Injector,
                         ObsContext *Obs, const SimOptions &Sim) {
  ObsSpan RunSpan(Obs, "sim.runSpt");
  const Function *F = M.findFunction(FnName);
  if (!F)
    spt_fatal("runSpt: no such function");
  // An inert injector is the same as no injector.
  FaultInjector *FI = Injector && Injector->enabled() ? Injector : nullptr;

  InterpOptions IOpts;
  IOpts.RngSeed = RngSeed;
  Interpreter In(M, IOpts);
  In.startCall(F, Args);

  CacheHierarchy Cache(Machine);
  BranchPredictor MainPredictor, SpecPredictor;
  CoreTiming Core(Machine, Cache, MainPredictor, Sim.Fidelity);
  CoreTiming GhostCore(Machine, Cache, SpecPredictor, Sim.Fidelity);
  TimingMemo Memo;
  TimingMemo *MemoPtr = Sim.Memo ? &Memo : nullptr;
  BlockTimer BT(Core, MemoPtr);

  SptSimResult Result;

  // Iteration-boundary lookup: (function, block) -> loop id. A handful
  // of entries; a linear scan beats the former std::map per branch.
  struct BoundaryEntry {
    const Function *F;
    BlockId B;
    int64_t Id;
  };
  std::vector<BoundaryEntry> Boundaries;
  for (const auto &[Id, Desc] : Loops) {
    bool Replaced = false;
    for (BoundaryEntry &BE : Boundaries)
      if (BE.F == Desc.F && BE.B == Desc.PreForkEntry) {
        BE.Id = Id; // Same overwrite semantics as the former map.
        Replaced = true;
        break;
      }
    if (!Replaced)
      Boundaries.push_back({Desc.F, Desc.PreForkEntry, Id});
  }

  enum class Mode { Normal, PostFork, Replay };
  Mode State = Mode::Normal;
  PendingSpec Spec;
  GhostArena Arena;
  SpecAddrMap SpecBuffer;
  std::unique_ptr<MainPostForkHooks> PostForkHooks;
  uint64_t ReplayInstrs = 0;
  uint64_t ReexecInstrsTotal = 0;

  // Wall-time attribution per loop.
  std::map<int64_t, uint64_t> LoopEnterSubtick;

  auto Sink = makeStepSink([&](const StepResult &R) {
    const size_t Depth = In.stackDepth();

    if (State != Mode::Replay)
      BT.onStep(R, Depth);
    else
      ++ReplayInstrs;

    // Loop wall-time tracking. Fork/kill markers are block-timer
    // barriers, so the clock is exact here.
    if (R.IsFork && Loops.count(R.I->IntImm) &&
        !LoopEnterSubtick.count(R.I->IntImm))
      LoopEnterSubtick[R.I->IntImm] = Core.now();
    if (R.IsKill && Loops.count(R.I->IntImm)) {
      auto It = LoopEnterSubtick.find(R.I->IntImm);
      if (It != LoopEnterSubtick.end()) {
        Result.PerLoop[R.I->IntImm].Subticks += Core.now() - It->second;
        LoopEnterSubtick.erase(It);
      }
    }

    switch (State) {
    case Mode::Normal:
      if (R.IsFork && Loops.count(R.I->IntImm)) {
        const SptLoopDesc &Desc = Loops.at(R.I->IntImm);
        if (In.topFrame().F == Desc.F) {
          // Spawn: snapshot the loop frame context.
          Core.charge(Machine.ForkOverhead);
          if (FI)
            Core.charge(FI->forkJitterSubticks());
          Spec.resetFor(R.I->IntImm, &Desc, Depth);
          In.copyTopRegs(Spec.Regs);
          if (FI && !Spec.Regs.empty() && FI->shouldFlipReg()) {
            // Corrupt one snapshot register — the speculative thread's
            // input state, where SVP's predicted values live. Marking it
            // as a main-thread write makes ghost reads of it violations,
            // i.e. the hardware detects the stale/wrong value and the
            // dependent slice is re-executed.
            const size_t Idx = FI->pickIndex(Spec.Regs.size());
            Spec.Regs[Idx] = FI->corrupt(Spec.Regs[Idx]);
            Spec.setMainWrote(static_cast<Reg>(Idx));
          }
          Spec.Rng = In.rng();
          Spec.ForkSubtick = Core.now();
          PostForkHooks = std::make_unique<MainPostForkHooks>(In, Spec);
          In.setMemHooks(PostForkHooks.get());
          State = Mode::PostFork;
          ++Result.PerLoop[Spec.LoopId].Forks;
        }
      }
      break;

    case Mode::PostFork: {
      // Track the main thread's post-fork effects.
      if (R.I->Dst != NoReg && !R.IsCallEnter && Depth == Spec.FrameDepth)
        Spec.setMainWrote(R.I->Dst);
      if (R.I->Op == Opcode::Call) {
        const Function *Callee = M.function(R.I->calleeIndex());
        if (Callee->isExternal()) {
          if (Callee->name() == "rnd")
            ++Spec.MainRndCalls;
          else if (Callee->name() == "print_int" ||
                   Callee->name() == "print_fp")
            ++Spec.MainIoCalls;
        }
      }

      // Loop exit while the speculative thread runs: kill it.
      if (R.IsKill && R.I->IntImm == Spec.LoopId) {
        ++Result.PerLoop[Spec.LoopId].KilledBeforeJoin;
        In.setMemHooks(nullptr);
        PostForkHooks.reset();
        State = Mode::Normal;
        break;
      }

      // Join: the main thread reached the next iteration's entry.
      if (R.IsBranch && Depth == Spec.FrameDepth &&
          R.NextBlock == Spec.Desc->PreForkEntry) {
        SptLoopRunStats &Stats = Result.PerLoop[Spec.LoopId];
        In.setMemHooks(nullptr);
        PostForkHooks.reset();

        GhostOutcome Ghost =
            runGhost(M, In, Spec, Machine, GhostCore, MemoPtr, Arena,
                     SpecBuffer, /*MaxGhostSteps=*/1u << 20, FI,
                     Memo.Stats);
        if (Ghost.Completed && FI && FI->shouldForceSquash())
          Ghost.Completed = false; // Injected: hardware lost the buffer.
        if (!Ghost.Completed) {
          // Squashed: the main thread simply executes the iteration
          // itself at full cost.
          ++Stats.Squashed;
          State = Mode::Normal;
          break;
        }
        ++Stats.Joins;
        Stats.SpecInstrs += Ghost.Instrs;
        Stats.ReexecInstrs += Ghost.ReexecInstrs;
        ReexecInstrsTotal += Ghost.ReexecInstrs;
        if (Ghost.Violated)
          ++Stats.ViolatedThreads;

        const uint64_t Joined = std::max(Core.now(), Ghost.EndSubtick);
        Core.advanceTo(Joined);
        Core.charge(Machine.CommitOverhead);
        if (FI)
          Core.charge(FI->commitJitterSubticks());
        Core.advanceTo(Core.now() + Ghost.ReexecSubticks);
        State = Mode::Replay;
      }
      break;
    }

    case Mode::Replay:
      // The speculative thread already executed this iteration; the main
      // interpreter replays it functionally with the clock frozen.
      if (R.IsBranch && Depth == Spec.FrameDepth &&
          R.NextBlock == Spec.Desc->PreForkEntry) {
        State = Mode::Normal;
      } else if (R.IsKill && R.I->IntImm == Spec.LoopId) {
        // Loop ended inside the replayed iteration (wall time was already
        // attributed by the generic kill handling above).
        State = Mode::Normal;
      }
      break;
    }

    // Iteration counting at boundaries (any mode).
    if (R.IsBranch && !Boundaries.empty()) {
      const Function *TopF = In.done() ? nullptr : In.topFrame().F;
      for (const BoundaryEntry &BE : Boundaries)
        if (BE.F == TopF && BE.B == R.NextBlock) {
          ++Result.PerLoop[BE.Id].Iterations;
          break;
        }
    }
    return true;
  });
  In.runBatch(Sink, MaxSteps);
  if (!In.done())
    spt_fatal("runSpt: step budget exhausted (infinite loop?)");
  BT.sync();

  Result.Subticks = Core.now();
  Result.Instrs = Core.retired() + ReplayInstrs + ReexecInstrsTotal;
  Result.Result = In.returnValue();
  Result.Output = In.output();
  Result.MemoryHash = In.memoryHash();
  Result.Perf = Memo.Stats;

  // One batched flush of the run's speculation counters; the simulation
  // loop above never touches the registry.
  if (Obs) {
    obsAdd(Obs, "sim.runs", 1);
    obsAdd(Obs, "sim.chaos_runs", FI ? 1 : 0);
    SptLoopRunStats Tot;
    for (const auto &[Id, S] : Result.PerLoop) {
      (void)Id;
      Tot.Forks += S.Forks;
      Tot.Joins += S.Joins;
      Tot.KilledBeforeJoin += S.KilledBeforeJoin;
      Tot.Squashed += S.Squashed;
      Tot.ViolatedThreads += S.ViolatedThreads;
      Tot.SpecInstrs += S.SpecInstrs;
      Tot.ReexecInstrs += S.ReexecInstrs;
      Tot.Iterations += S.Iterations;
    }
    obsAdd(Obs, "sim.forks", Tot.Forks);
    obsAdd(Obs, "sim.joins", Tot.Joins);
    obsAdd(Obs, "sim.killed_before_join", Tot.KilledBeforeJoin);
    obsAdd(Obs, "sim.squashes", Tot.Squashed);
    // Every violated join is recovered by main-core re-execution
    // (sequential semantics hold by construction), so violations and
    // recoveries coincide; clean joins banked their speculative work.
    obsAdd(Obs, "sim.recoveries", Tot.ViolatedThreads);
    obsAdd(Obs, "sim.clean_joins", Tot.Joins - Tot.ViolatedThreads);
    obsAdd(Obs, "sim.spec_instrs", Tot.SpecInstrs);
    obsAdd(Obs, "sim.reexec_instrs", Tot.ReexecInstrs);
    obsAdd(Obs, "sim.iterations", Tot.Iterations);
    obsSample(Obs, "sim.reexec_per_run", Tot.ReexecInstrs);
    // Fast-path effectiveness, batched like the rest.
    obsAdd(Obs, "sim.memo.hits", Result.Perf.MemoHits);
    obsAdd(Obs, "sim.memo.misses", Result.Perf.MemoMisses);
    obsAdd(Obs, "sim.memo.invalidations", Result.Perf.MemoInvalidations);
    obsAdd(Obs, "sim.violation.batch", Result.Perf.ViolationBatches);
  }
  return Result;
}
