//===- sim/SptSim.cpp - Two-core speculative (SPT) simulation ----------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/SptSim.h"

#include "sim/CoreTiming.h"
#include "sim/FaultInjector.h"
#include "support/Debug.h"

#include <algorithm>
#include <map>
#include <set>

using namespace spt;

namespace {

/// Per-step ghost memory semantics: reads hit the speculation buffer,
/// then the undo log (a stale value: violation), then shared memory;
/// writes are buffered.
class GhostMemHooks final : public Interpreter::MemHooks {
public:
  GhostMemHooks(const std::map<uint64_t, Value> &UndoLog,
                FaultInjector *Injector)
      : UndoLog(UndoLog), Injector(Injector) {}

  Value onLoad(uint64_t Addr, Value Fallback) override {
    LastLoadViolated = false;
    LastLoadInjected = false;
    LastLoadSpecWriter = -1;
    Value V = Fallback;
    auto Spec = SpecBuffer.find(Addr);
    if (Spec != SpecBuffer.end()) {
      LastLoadSpecWriter = Spec->second.WriterEntry;
      V = Spec->second.V;
    } else {
      auto Undo = UndoLog.find(Addr);
      if (Undo != UndoLog.end()) {
        LastLoadViolated = true;
        V = Undo->second;
      }
    }
    // Injected corruption models a wrong speculative value the hardware
    // detects at commit: the consuming instruction joins the re-execution
    // slice (the driver loop checks LastLoadInjected).
    if (Injector && Injector->shouldFlipLoad()) {
      LastLoadInjected = true;
      V = Injector->corrupt(V);
    }
    return V;
  }

  bool onStore(uint64_t Addr, Value V) override {
    SpecBuffer[Addr] = BufferedValue{V, CurrentEntry};
    return true; // Never reaches shared memory.
  }

  /// Set by the driver loop before each ghost step.
  int64_t CurrentEntry = -1;
  /// Outputs of the last load.
  bool LastLoadViolated = false;
  bool LastLoadInjected = false;
  int64_t LastLoadSpecWriter = -1;

private:
  struct BufferedValue {
    Value V;
    int64_t WriterEntry = -1;
  };
  const std::map<uint64_t, Value> &UndoLog;
  FaultInjector *Injector;
  std::map<uint64_t, BufferedValue> SpecBuffer;
};

/// Result of simulating one speculative thread.
struct GhostOutcome {
  bool Completed = false;
  bool Violated = false;
  uint64_t EndSubtick = 0;
  uint64_t Instrs = 0;
  uint64_t ReexecInstrs = 0;
  uint64_t ReexecSubticks = 0;
};

/// State captured when the main thread forks.
struct PendingSpec {
  int64_t LoopId = -1;
  const SptLoopDesc *Desc = nullptr;
  size_t FrameDepth = 0; ///< Main's stack depth at the fork.
  std::vector<Value> Regs;
  Random Rng;
  uint64_t ForkSubtick = 0;
  std::set<Reg> MainRegWrites;
  std::map<uint64_t, Value> UndoLog;
  uint64_t MainRndCalls = 0;
  uint64_t MainIoCalls = 0;
};

/// Undo-logging hook for the main core's post-fork leg.
class MainPostForkHooks final : public Interpreter::MemHooks {
public:
  MainPostForkHooks(Interpreter &In, PendingSpec &Spec)
      : In(In), Spec(Spec) {}

  Value onLoad(uint64_t, Value Fallback) override { return Fallback; }

  bool onStore(uint64_t Addr, Value) override {
    Spec.UndoLog.emplace(Addr, In.peekAddr(Addr)); // First write wins.
    return false;                                  // Write through.
  }

private:
  Interpreter &In;
  PendingSpec &Spec;
};

/// Simulates the speculative thread (one full iteration) as a ghost.
GhostOutcome runGhost(const Module &M, Interpreter &MainIn,
                      const PendingSpec &Spec, const MachineConfig &Machine,
                      CacheHierarchy &Cache, BranchPredictor &SpecPredictor,
                      uint64_t MaxGhostSteps, FaultInjector *Injector) {
  GhostOutcome Out;

  Interpreter Ghost(M, MainIn);
  Ghost.rng() = Spec.Rng;
  Ghost.startAt(Spec.Desc->F, Spec.Desc->PreForkEntry, 0, Spec.Regs);

  GhostMemHooks Hooks(Spec.UndoLog, Injector);
  Ghost.setMemHooks(&Hooks);

  CoreTiming Core(Machine, Cache, SpecPredictor);
  Core.setNow(Spec.ForkSubtick);

  // Dynamic dependence state for the violation slice.
  struct TraceEntry {
    bool Reexec = false;
    uint64_t CostSubticks = 0;
    bool IsLoad = false;
  };
  std::vector<TraceEntry> Trace;
  std::map<std::pair<size_t, Reg>, int64_t> LastRegWriter;
  std::set<Reg> GhostWroteLoopReg;

  const uint64_t IssueSlot = SubticksPerCycle / Machine.IssueWidth;

  while (!Ghost.done() && Trace.size() < MaxGhostSteps) {
    const size_t DepthBefore = Ghost.stackDepth();
    Hooks.CurrentEntry = static_cast<int64_t>(Trace.size());
    const uint64_t Before = Core.now();
    const StepResult R = Ghost.step();
    const size_t Depth = Ghost.stackDepth();
    Core.onStep(R, Depth);

    TraceEntry Entry;
    Entry.CostSubticks = Core.now() - Before;
    Entry.IsLoad = R.IsLoad;

    // Frame the instruction read its operands in: always the top frame
    // before the step (returns pop after reading; calls push after).
    const size_t SrcFrame = DepthBefore - 1;

    // Violations: stale register reads at the loop frame.
    if (SrcFrame == 0)
      for (Reg S : R.I->Srcs)
        if (!GhostWroteLoopReg.count(S) && Spec.MainRegWrites.count(S))
          Entry.Reexec = true;

    // Violations: stale memory reads, and injected value corruption
    // (modelled as hardware-detected misspeculation).
    if (R.IsLoad && (Hooks.LastLoadViolated || Hooks.LastLoadInjected))
      Entry.Reexec = true;

    // Violations: racing stateful builtins.
    if (R.I->Op == Opcode::Call) {
      const Function *Callee = M.function(R.I->calleeIndex());
      if (Callee->isExternal()) {
        if (Callee->name() == "rnd" && Spec.MainRndCalls > 0)
          Entry.Reexec = true;
        if (Callee->name() == "print_int" || Callee->name() == "print_fp")
          Entry.Reexec = true; // I/O cannot speculate.
      }
    }

    // Dependence closure: inherit re-execution from producers.
    if (!Entry.Reexec) {
      for (Reg S : R.I->Srcs) {
        auto It = LastRegWriter.find({SrcFrame, S});
        if (It != LastRegWriter.end() && It->second >= 0 &&
            Trace[static_cast<size_t>(It->second)].Reexec)
          Entry.Reexec = true;
      }
      if (R.IsLoad && Hooks.LastLoadSpecWriter >= 0 &&
          Trace[static_cast<size_t>(Hooks.LastLoadSpecWriter)].Reexec)
        Entry.Reexec = true;
    }

    // Record writes.
    if (R.I->Dst != NoReg && !R.IsCallEnter) {
      LastRegWriter[{SrcFrame, R.I->Dst}] =
          static_cast<int64_t>(Trace.size());
      if (SrcFrame == 0)
        GhostWroteLoopReg.insert(R.I->Dst);
    }

    if (Entry.Reexec) {
      Out.Violated = true;
      ++Out.ReexecInstrs;
      Out.ReexecSubticks +=
          IssueSlot + (R.IsLoad ? Machine.L1.HitLatencyCycles *
                                      SubticksPerCycle
                                : 0);
    }
    Trace.push_back(Entry);

    // Stop conditions: completed one iteration, predicted loop exit, or
    // the loop frame returned.
    if (R.IsBranch && Depth == 1 &&
        R.NextBlock == Spec.Desc->PreForkEntry) {
      Out.Completed = true;
      break;
    }
    if (R.IsKill && R.I->IntImm == Spec.LoopId) {
      Out.Completed = true; // Speculated that the loop ends.
      break;
    }
    if (R.IsReturn && Depth == 0)
      break; // Fell out of the loop frame: treat as squashed.
  }

  Ghost.setMemHooks(nullptr);
  Out.EndSubtick = Core.now();
  Out.Instrs = Trace.size();
  return Out;
}

} // namespace

SptSimResult spt::runSpt(const Module &M, const std::string &FnName,
                         const std::vector<Value> &Args,
                         const std::map<int64_t, SptLoopDesc> &Loops,
                         const MachineConfig &Machine, uint64_t MaxSteps,
                         uint64_t RngSeed, FaultInjector *Injector,
                         ObsContext *Obs) {
  ObsSpan RunSpan(Obs, "sim.runSpt");
  const Function *F = M.findFunction(FnName);
  if (!F)
    spt_fatal("runSpt: no such function");
  // An inert injector is the same as no injector.
  FaultInjector *FI = Injector && Injector->enabled() ? Injector : nullptr;

  InterpOptions IOpts;
  IOpts.RngSeed = RngSeed;
  Interpreter In(M, IOpts);
  In.startCall(F, Args);

  CacheHierarchy Cache(Machine);
  BranchPredictor MainPredictor, SpecPredictor;
  CoreTiming Core(Machine, Cache, MainPredictor);

  SptSimResult Result;

  // Iteration-boundary lookup: (function, block) -> loop id.
  std::map<std::pair<const Function *, BlockId>, int64_t> BoundaryOf;
  for (const auto &[Id, Desc] : Loops)
    BoundaryOf[{Desc.F, Desc.PreForkEntry}] = Id;

  enum class Mode { Normal, PostFork, Replay };
  Mode State = Mode::Normal;
  PendingSpec Spec;
  std::unique_ptr<MainPostForkHooks> PostForkHooks;
  uint64_t ReplayInstrs = 0;
  uint64_t ReexecInstrsTotal = 0;

  // Wall-time attribution per loop.
  std::map<int64_t, uint64_t> LoopEnterSubtick;

  uint64_t Steps = 0;
  while (!In.done() && Steps < MaxSteps) {
    const StepResult R = In.step();
    ++Steps;
    const size_t Depth = In.stackDepth();

    if (State != Mode::Replay)
      Core.onStep(R, Depth);
    else
      ++ReplayInstrs;

    // Loop wall-time tracking.
    if (R.IsFork && Loops.count(R.I->IntImm) &&
        !LoopEnterSubtick.count(R.I->IntImm))
      LoopEnterSubtick[R.I->IntImm] = Core.now();
    if (R.IsKill && Loops.count(R.I->IntImm)) {
      auto It = LoopEnterSubtick.find(R.I->IntImm);
      if (It != LoopEnterSubtick.end()) {
        Result.PerLoop[R.I->IntImm].Subticks += Core.now() - It->second;
        LoopEnterSubtick.erase(It);
      }
    }

    switch (State) {
    case Mode::Normal:
      if (R.IsFork && Loops.count(R.I->IntImm)) {
        const SptLoopDesc &Desc = Loops.at(R.I->IntImm);
        if (In.topFrame().F == Desc.F) {
          // Spawn: snapshot the loop frame context.
          Core.charge(Machine.ForkOverhead);
          if (FI)
            Core.charge(FI->forkJitterSubticks());
          Spec = PendingSpec();
          Spec.LoopId = R.I->IntImm;
          Spec.Desc = &Desc;
          Spec.FrameDepth = Depth;
          Spec.Regs = In.topFrame().Regs;
          if (FI && !Spec.Regs.empty() && FI->shouldFlipReg()) {
            // Corrupt one snapshot register — the speculative thread's
            // input state, where SVP's predicted values live. Marking it
            // as a main-thread write makes ghost reads of it violations,
            // i.e. the hardware detects the stale/wrong value and the
            // dependent slice is re-executed.
            const size_t Idx = FI->pickIndex(Spec.Regs.size());
            Spec.Regs[Idx] = FI->corrupt(Spec.Regs[Idx]);
            Spec.MainRegWrites.insert(static_cast<Reg>(Idx));
          }
          Spec.Rng = In.rng();
          Spec.ForkSubtick = Core.now();
          PostForkHooks = std::make_unique<MainPostForkHooks>(In, Spec);
          In.setMemHooks(PostForkHooks.get());
          State = Mode::PostFork;
          ++Result.PerLoop[Spec.LoopId].Forks;
        }
      }
      break;

    case Mode::PostFork: {
      // Track the main thread's post-fork effects.
      if (R.I->Dst != NoReg && !R.IsCallEnter && Depth == Spec.FrameDepth)
        Spec.MainRegWrites.insert(R.I->Dst);
      if (R.I->Op == Opcode::Call) {
        const Function *Callee = M.function(R.I->calleeIndex());
        if (Callee->isExternal()) {
          if (Callee->name() == "rnd")
            ++Spec.MainRndCalls;
          else if (Callee->name() == "print_int" ||
                   Callee->name() == "print_fp")
            ++Spec.MainIoCalls;
        }
      }

      // Loop exit while the speculative thread runs: kill it.
      if (R.IsKill && R.I->IntImm == Spec.LoopId) {
        ++Result.PerLoop[Spec.LoopId].KilledBeforeJoin;
        In.setMemHooks(nullptr);
        PostForkHooks.reset();
        State = Mode::Normal;
        break;
      }

      // Join: the main thread reached the next iteration's entry.
      if (R.IsBranch && Depth == Spec.FrameDepth &&
          R.NextBlock == Spec.Desc->PreForkEntry) {
        SptLoopRunStats &Stats = Result.PerLoop[Spec.LoopId];
        In.setMemHooks(nullptr);
        PostForkHooks.reset();

        GhostOutcome Ghost = runGhost(M, In, Spec, Machine, Cache,
                                      SpecPredictor, /*MaxGhostSteps=*/
                                      1u << 20, FI);
        if (Ghost.Completed && FI && FI->shouldForceSquash())
          Ghost.Completed = false; // Injected: hardware lost the buffer.
        if (!Ghost.Completed) {
          // Squashed: the main thread simply executes the iteration
          // itself at full cost.
          ++Stats.Squashed;
          State = Mode::Normal;
          break;
        }
        ++Stats.Joins;
        Stats.SpecInstrs += Ghost.Instrs;
        Stats.ReexecInstrs += Ghost.ReexecInstrs;
        ReexecInstrsTotal += Ghost.ReexecInstrs;
        if (Ghost.Violated)
          ++Stats.ViolatedThreads;

        const uint64_t Joined = std::max(Core.now(), Ghost.EndSubtick);
        Core.advanceTo(Joined);
        Core.charge(Machine.CommitOverhead);
        if (FI)
          Core.charge(FI->commitJitterSubticks());
        Core.advanceTo(Core.now() + Ghost.ReexecSubticks);
        State = Mode::Replay;
      }
      break;
    }

    case Mode::Replay:
      // The speculative thread already executed this iteration; the main
      // interpreter replays it functionally with the clock frozen.
      if (R.IsBranch && Depth == Spec.FrameDepth &&
          R.NextBlock == Spec.Desc->PreForkEntry) {
        State = Mode::Normal;
      } else if (R.IsKill && R.I->IntImm == Spec.LoopId) {
        // Loop ended inside the replayed iteration (wall time was already
        // attributed by the generic kill handling above).
        State = Mode::Normal;
      }
      break;
    }

    // Iteration counting at boundaries (any mode).
    if (R.IsBranch) {
      auto It = BoundaryOf.find({In.done() ? nullptr : In.topFrame().F,
                                 R.NextBlock});
      if (It != BoundaryOf.end())
        ++Result.PerLoop[It->second].Iterations;
    }
  }
  if (!In.done())
    spt_fatal("runSpt: step budget exhausted (infinite loop?)");

  Result.Subticks = Core.now();
  Result.Instrs = Core.retired() + ReplayInstrs + ReexecInstrsTotal;
  Result.Result = In.returnValue();
  Result.Output = In.output();
  Result.MemoryHash = In.memoryHash();

  // One batched flush of the run's speculation counters; the simulation
  // loop above never touches the registry.
  if (Obs) {
    obsAdd(Obs, "sim.runs", 1);
    obsAdd(Obs, "sim.chaos_runs", FI ? 1 : 0);
    SptLoopRunStats Tot;
    for (const auto &[Id, S] : Result.PerLoop) {
      (void)Id;
      Tot.Forks += S.Forks;
      Tot.Joins += S.Joins;
      Tot.KilledBeforeJoin += S.KilledBeforeJoin;
      Tot.Squashed += S.Squashed;
      Tot.ViolatedThreads += S.ViolatedThreads;
      Tot.SpecInstrs += S.SpecInstrs;
      Tot.ReexecInstrs += S.ReexecInstrs;
      Tot.Iterations += S.Iterations;
    }
    obsAdd(Obs, "sim.forks", Tot.Forks);
    obsAdd(Obs, "sim.joins", Tot.Joins);
    obsAdd(Obs, "sim.killed_before_join", Tot.KilledBeforeJoin);
    obsAdd(Obs, "sim.squashes", Tot.Squashed);
    // Every violated join is recovered by main-core re-execution
    // (sequential semantics hold by construction), so violations and
    // recoveries coincide; clean joins banked their speculative work.
    obsAdd(Obs, "sim.recoveries", Tot.ViolatedThreads);
    obsAdd(Obs, "sim.clean_joins", Tot.Joins - Tot.ViolatedThreads);
    obsAdd(Obs, "sim.spec_instrs", Tot.SpecInstrs);
    obsAdd(Obs, "sim.reexec_instrs", Tot.ReexecInstrs);
    obsAdd(Obs, "sim.iterations", Tot.Iterations);
    obsSample(Obs, "sim.reexec_per_run", Tot.ReexecInstrs);
  }
  return Result;
}
