//===- sim/SptSim.cpp - Two-core speculative (SPT) simulation ----------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Hot-path layout: the speculation scoreboard (speculation buffer, undo
// log, last-writer tables, main/ghost register-write sets) lives in flat
// open-addressing hashes, epoch-tagged arenas and bitsets reused across
// speculative threads — the former std::map/std::set machinery was ~10%
// of a whole-suite profile. Violation detection is batched: the ghost
// records a structure-of-arrays trace (direct-violation flags plus
// resolved producer indices) and one post-pass per buffer epoch closes it
// over the dynamic dependences, replacing the per-access map scans. The
// pass is order-equivalent to the former inline closure because producers
// always precede consumers in the trace.
//
// Two engines share this machinery (SimOptions::Engine):
//
//   * TwoCoreReference — the original one-main-one-spec driver, kept
//     verbatim below as the differential baseline.
//   * Generalized — MachineConfig::Cores-1 speculative chain slots. A
//     ghost's own fork marker arms the next slot (snapshot registers +
//     RNG at the ghost's clock, fork overhead charged on the arming
//     core); slots are simulated in order at the join, reading through
//     their own buffer, then every earlier slot's buffer (newest first —
//     a hit whose producing store re-executes is a cross-core
//     violation), then the main core's undo log, then memory. Committed
//     slots fold into the main clock in program order (commit overhead +
//     re-execution slice each); the first squashed slot cuts the chain
//     and discards everything later. At Cores=2 the chain degenerates to
//     exactly the reference engine — byte-identical reports, MemoryHash
//     and counters, enforced by the kway-diff oracle and
//     tests/kway_sim_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "sim/SptSim.h"

#include "sim/CoreTiming.h"
#include "sim/FaultInjector.h"
#include "sim/TimingMemo.h"
#include "support/Debug.h"

#include <algorithm>
#include <map>
#include <memory>

using namespace spt;

namespace {

/// Open-addressing (linear probe) address map with O(1) epoch-based
/// clearing: the speculation buffer and the undo log. Never shrinks; one
/// arena serves every speculative thread of a run.
class SpecAddrMap {
public:
  struct Slot {
    uint64_t Addr = 0;
    uint64_t Epoch = 0;
    Value V{};
    int32_t Writer = -1;
  };

  void reset() {
    ++Epoch;
    Live = 0;
  }

  const Slot *find(uint64_t Addr) const {
    if (Live == 0)
      return nullptr;
    size_t I = indexOf(Addr);
    while (true) {
      const Slot &S = Slots[I];
      if (S.Epoch != Epoch)
        return nullptr;
      if (S.Addr == Addr)
        return &S;
      if (++I == Slots.size())
        I = 0;
    }
  }

  void insertOrAssign(uint64_t Addr, Value V, int32_t Writer) {
    ensureCapacity();
    Slot &S = findSlot(Addr);
    S.V = V;
    S.Writer = Writer;
  }

  /// First write wins (undo log: the pre-fork value).
  void insertIfAbsent(uint64_t Addr, Value V) {
    ensureCapacity();
    const bool Existed = Live > 0 && find(Addr) != nullptr;
    if (Existed)
      return;
    Slot &S = findSlot(Addr);
    S.V = V;
    S.Writer = -1;
  }

private:
  static size_t mix(uint64_t X) {
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdull;
    X ^= X >> 33;
    return static_cast<size_t>(X);
  }
  size_t indexOf(uint64_t Addr) const {
    return mix(Addr) & (Slots.size() - 1);
  }

  Slot &findSlot(uint64_t Addr) {
    size_t I = indexOf(Addr);
    while (Slots[I].Epoch == Epoch && Slots[I].Addr != Addr)
      if (++I == Slots.size())
        I = 0;
    if (Slots[I].Epoch != Epoch) {
      ++Live;
      Slots[I].Epoch = Epoch;
      Slots[I].Addr = Addr;
    }
    return Slots[I];
  }

  void ensureCapacity() {
    if (Slots.empty()) {
      Slots.resize(64);
      return;
    }
    if (Live * 4 < Slots.size() * 3)
      return;
    std::vector<Slot> Old;
    Old.swap(Slots);
    Slots.resize(Old.size() * 2);
    const size_t Relive = Live;
    Live = 0;
    for (const Slot &S : Old)
      if (S.Epoch == Epoch) {
        Slot &N = findSlot(S.Addr);
        N.V = S.V;
        N.Writer = S.Writer;
      }
    (void)Relive;
  }

  std::vector<Slot> Slots;
  uint64_t Epoch = 1;
  size_t Live = 0;
};

/// Per-step ghost memory semantics: reads hit the speculation buffer,
/// then the undo log (a stale value: violation), then shared memory;
/// writes are buffered.
class GhostMemHooks final : public Interpreter::MemHooks {
public:
  GhostMemHooks(const Interpreter &Ghost, SpecAddrMap &SpecBuffer,
                const SpecAddrMap &UndoLog, FaultInjector *Injector)
      : Ghost(Ghost), SpecBuffer(SpecBuffer), UndoLog(UndoLog),
        Injector(Injector) {}

  Value onLoad(uint64_t Addr, Value Fallback) override {
    LastLoadViolated = false;
    LastLoadInjected = false;
    LastLoadSpecWriter = -1;
    Value V = Fallback;
    if (const SpecAddrMap::Slot *Spec = SpecBuffer.find(Addr)) {
      LastLoadSpecWriter = Spec->Writer;
      V = Spec->V;
    } else if (const SpecAddrMap::Slot *Undo = UndoLog.find(Addr)) {
      LastLoadViolated = true;
      V = Undo->V;
    }
    // Injected corruption models a wrong speculative value the hardware
    // detects at commit: the consuming instruction joins the re-execution
    // slice (the driver loop checks LastLoadInjected).
    if (Injector && Injector->shouldFlipLoad()) {
      LastLoadInjected = true;
      V = Injector->corrupt(V);
    }
    return V;
  }

  bool onStore(uint64_t Addr, Value V) override {
    // The producing trace entry: the ghost runs from instrCount()==0 and
    // the count is bumped before each instruction executes, so the
    // instruction doing this store is entry instrCount()-1. (The batched
    // runner retires fused pairs in one dispatch, so a driver-maintained
    // "current entry" would go stale inside a pair.)
    SpecBuffer.insertOrAssign(Addr, V,
                              static_cast<int32_t>(Ghost.instrCount() - 1));
    return true; // Never reaches shared memory.
  }

  /// Outputs of the last load.
  bool LastLoadViolated = false;
  bool LastLoadInjected = false;
  int32_t LastLoadSpecWriter = -1;

private:
  const Interpreter &Ghost;
  SpecAddrMap &SpecBuffer;
  const SpecAddrMap &UndoLog;
  FaultInjector *Injector;
};

/// Result of simulating one speculative thread.
struct GhostOutcome {
  bool Completed = false;
  /// Completed by speculating the loop's end (SPT_KILL). Generalized
  /// engine only: cuts the chain — no later iteration exists.
  bool CompletedByKill = false;
  bool Violated = false;
  uint64_t EndSubtick = 0;
  uint64_t Instrs = 0;
  uint64_t ReexecInstrs = 0;
  uint64_t ReexecSubticks = 0;
};

/// State captured when the main thread forks. Arena-reused across forks.
struct PendingSpec {
  int64_t LoopId = -1;
  const SptLoopDesc *Desc = nullptr;
  size_t FrameDepth = 0; ///< Main's stack depth at the fork.
  std::vector<Value> Regs;
  Random Rng;
  uint64_t ForkSubtick = 0;
  /// Registers the main thread wrote post-fork (loop-frame), as a bitset
  /// over the loop function's registers.
  std::vector<uint64_t> MainRegWriteBits;
  SpecAddrMap UndoLog;
  uint64_t MainRndCalls = 0;
  uint64_t MainIoCalls = 0;

  void resetFor(int64_t Id, const SptLoopDesc *D, size_t Depth) {
    LoopId = Id;
    Desc = D;
    FrameDepth = Depth;
    MainRegWriteBits.assign((D->F->numRegs() + 63) / 64, 0);
    UndoLog.reset();
    MainRndCalls = 0;
    MainIoCalls = 0;
  }
  bool mainWrote(Reg R) const {
    return (R >> 6) < MainRegWriteBits.size() &&
           (MainRegWriteBits[R >> 6] >> (R & 63)) & 1;
  }
  void setMainWrote(Reg R) {
    if ((R >> 6) >= MainRegWriteBits.size())
      MainRegWriteBits.resize((R >> 6) + 1, 0);
    MainRegWriteBits[R >> 6] |= 1ull << (R & 63);
  }
};

/// Undo-logging hook for the main core's post-fork leg.
class MainPostForkHooks final : public Interpreter::MemHooks {
public:
  MainPostForkHooks(Interpreter &In, PendingSpec &Spec)
      : In(In), Spec(Spec) {}

  Value onLoad(uint64_t, Value Fallback) override { return Fallback; }

  bool onStore(uint64_t Addr, Value) override {
    Spec.UndoLog.insertIfAbsent(Addr, In.peekAddr(Addr)); // First write wins.
    return false;                                         // Write through.
  }

private:
  Interpreter &In;
  PendingSpec &Spec;
};

/// Structure-of-arrays ghost trace and last-writer tables, arena-reused
/// across speculative threads (epoch/run-id tagged, O(1) begin).
struct GhostArena {
  // Per-trace-entry columns.
  std::vector<uint8_t> Direct;     ///< Directly violated.
  std::vector<uint8_t> IsLoad;
  std::vector<int32_t> SpecWriter; ///< Spec-buffer producer entry or -1.
  std::vector<uint32_t> SrcBegin;  ///< Offsets into SrcWriters (+sentinel).
  std::vector<int32_t> SrcWriters; ///< Resolved register producers.
  std::vector<uint8_t> Reexec;     ///< Closure output.
  // Last-writer tables: per frame, per register, (run id, trace index).
  std::vector<std::vector<std::pair<uint32_t, int32_t>>> Writers;
  uint32_t RunId = 0;
  /// Registers the ghost wrote in the loop frame (frame 0), as a bitset.
  std::vector<uint64_t> GhostWrote;

  void beginRun(unsigned LoopRegs) {
    ++RunId;
    Direct.clear();
    IsLoad.clear();
    SpecWriter.clear();
    SrcBegin.clear();
    SrcWriters.clear();
    GhostWrote.assign((LoopRegs + 63) / 64, 0);
  }
  int32_t writerOf(size_t Frame, Reg R) const {
    if (Frame >= Writers.size())
      return -1;
    const auto &W = Writers[Frame];
    if (R >= W.size() || W[R].first != RunId)
      return -1;
    return W[R].second;
  }
  void setWriter(size_t Frame, Reg R, int32_t Idx) {
    if (Frame >= Writers.size())
      Writers.resize(Frame + 1);
    auto &W = Writers[Frame];
    if (R >= W.size())
      W.resize(R + 1, {0, -1});
    W[R] = {RunId, Idx};
  }
  bool ghostWrote(Reg R) const {
    return (R >> 6) < GhostWrote.size() &&
           (GhostWrote[R >> 6] >> (R & 63)) & 1;
  }
  void setGhostWrote(Reg R) {
    if ((R >> 6) >= GhostWrote.size())
      GhostWrote.resize((R >> 6) + 1, 0);
    GhostWrote[R >> 6] |= 1ull << (R & 63);
  }
};

/// Simulates the speculative thread (one full iteration) as a ghost.
GhostOutcome runGhost(const Module &M, Interpreter &MainIn,
                      const PendingSpec &Spec, const MachineConfig &Machine,
                      CoreTiming &Core, TimingMemo *Memo, GhostArena &A,
                      SpecAddrMap &SpecBuffer, uint64_t MaxGhostSteps,
                      FaultInjector *Injector, SimPerfCounters &Perf) {
  GhostOutcome Out;

  Interpreter Ghost(M, MainIn);
  Ghost.rng() = Spec.Rng;
  Ghost.startAt(Spec.Desc->F, Spec.Desc->PreForkEntry, 0, Spec.Regs);

  SpecBuffer.reset();
  GhostMemHooks Hooks(Ghost, SpecBuffer, Spec.UndoLog, Injector);
  Ghost.setMemHooks(&Hooks);

  Core.resetFor(Spec.ForkSubtick);
  BlockTimer BT(Core, Memo);
  A.beginRun(Spec.Desc->F->numRegs());

  uint32_t N = 0;
  auto Sink = makeStepSink([&](const StepResult &R) {
    const size_t Depth = Ghost.stackDepth();
    // Depth before the step: calls push their frame before the record,
    // returns pop theirs.
    const size_t DepthBefore =
        R.IsCallEnter ? Depth - 1 : (R.IsReturn ? Depth + 1 : Depth);
    BT.onStep(R, Depth);

    // Frame the instruction read its operands in: always the top frame
    // before the step (returns pop after reading; calls push after).
    const size_t SrcFrame = DepthBefore - 1;

    uint8_t Direct = 0;
    A.SrcBegin.push_back(static_cast<uint32_t>(A.SrcWriters.size()));
    for (Reg S : R.I->Srcs) {
      A.SrcWriters.push_back(A.writerOf(SrcFrame, S));
      // Violations: stale register reads at the loop frame.
      if (SrcFrame == 0 && !A.ghostWrote(S) && Spec.mainWrote(S))
        Direct = 1;
    }

    // Violations: stale memory reads, and injected value corruption
    // (modelled as hardware-detected misspeculation).
    if (R.IsLoad && (Hooks.LastLoadViolated || Hooks.LastLoadInjected))
      Direct = 1;

    // Violations: racing stateful builtins.
    if (R.I->Op == Opcode::Call) {
      const Function *Callee = M.function(R.I->calleeIndex());
      if (Callee->isExternal()) {
        if (Callee->name() == "rnd" && Spec.MainRndCalls > 0)
          Direct = 1;
        if (Callee->name() == "print_int" || Callee->name() == "print_fp")
          Direct = 1; // I/O cannot speculate.
      }
    }

    A.Direct.push_back(Direct);
    A.IsLoad.push_back(R.IsLoad);
    A.SpecWriter.push_back(R.IsLoad ? Hooks.LastLoadSpecWriter : -1);

    // Record writes.
    if (R.I->Dst != NoReg && !R.IsCallEnter) {
      A.setWriter(SrcFrame, R.I->Dst, static_cast<int32_t>(N));
      if (SrcFrame == 0)
        A.setGhostWrote(R.I->Dst);
    }
    ++N;

    // Stop conditions: completed one iteration, predicted loop exit, or
    // the loop frame returned.
    if (R.IsBranch && Depth == 1 &&
        R.NextBlock == Spec.Desc->PreForkEntry) {
      Out.Completed = true;
      return false;
    }
    if (R.IsKill && R.I->IntImm == Spec.LoopId) {
      Out.Completed = true; // Speculated that the loop ends.
      return false;
    }
    if (R.IsReturn && Depth == 0)
      return false; // Fell out of the loop frame: treat as squashed.
    return true;
  });
  Ghost.runBatch(Sink, MaxGhostSteps);

  Ghost.setMemHooks(nullptr);
  BT.sync();
  Out.EndSubtick = Core.now();
  Out.Instrs = N;
  A.SrcBegin.push_back(static_cast<uint32_t>(A.SrcWriters.size()));

  // Batched violation closure over this buffer epoch: one forward pass
  // over the SoA trace inherits re-execution from register producers and
  // speculation-buffer flow. Producers precede consumers, so the pass is
  // equivalent to the former per-access inline closure.
  ++Perf.ViolationBatches;
  A.Reexec.assign(N, 0);
  const uint64_t IssueSlot = SubticksPerCycle / Machine.IssueWidth;
  for (uint32_t I = 0; I != N; ++I) {
    uint8_t Rx = A.Direct[I];
    if (!Rx) {
      for (uint32_t S = A.SrcBegin[I]; S != A.SrcBegin[I + 1]; ++S) {
        const int32_t W = A.SrcWriters[S];
        if (W >= 0 && A.Reexec[static_cast<uint32_t>(W)]) {
          Rx = 1;
          break;
        }
      }
      if (!Rx && A.SpecWriter[I] >= 0 &&
          A.Reexec[static_cast<uint32_t>(A.SpecWriter[I])])
        Rx = 1;
    }
    A.Reexec[I] = Rx;
    if (Rx) {
      ++Out.ReexecInstrs;
      Out.ReexecSubticks +=
          IssueSlot + (A.IsLoad[I] ? Machine.L1.HitLatencyCycles *
                                         SubticksPerCycle
                                   : 0);
    }
  }
  Out.Violated = Out.ReexecInstrs != 0;
  return Out;
}

/// The original one-main-one-spec driver, retained verbatim as the
/// SptSimEngine::TwoCoreReference baseline the generalized engine must
/// match byte-for-byte at Cores=2. Ignores MachineConfig::Cores.
SptSimResult runSptTwoCore(const Module &M, const std::string &FnName,
                           const std::vector<Value> &Args,
                           const std::map<int64_t, SptLoopDesc> &Loops,
                           const MachineConfig &Machine, uint64_t MaxSteps,
                           uint64_t RngSeed, FaultInjector *Injector,
                           ObsContext *Obs, const SimOptions &Sim) {
  ObsSpan RunSpan(Obs, "sim.runSpt");
  const Function *F = M.findFunction(FnName);
  if (!F)
    spt_fatal("runSpt: no such function");
  // An inert injector is the same as no injector.
  FaultInjector *FI = Injector && Injector->enabled() ? Injector : nullptr;

  InterpOptions IOpts;
  IOpts.RngSeed = RngSeed;
  Interpreter In(M, IOpts);
  In.startCall(F, Args);

  CacheHierarchy Cache(Machine);
  BranchPredictor MainPredictor, SpecPredictor;
  CoreTiming Core(Machine, Cache, MainPredictor, Sim.Fidelity);
  CoreTiming GhostCore(Machine, Cache, SpecPredictor, Sim.Fidelity);
  TimingMemo Memo;
  TimingMemo *MemoPtr = Sim.Memo ? &Memo : nullptr;
  BlockTimer BT(Core, MemoPtr);

  SptSimResult Result;

  // Iteration-boundary lookup: (function, block) -> loop id. A handful
  // of entries; a linear scan beats the former std::map per branch.
  struct BoundaryEntry {
    const Function *F;
    BlockId B;
    int64_t Id;
  };
  std::vector<BoundaryEntry> Boundaries;
  for (const auto &[Id, Desc] : Loops) {
    bool Replaced = false;
    for (BoundaryEntry &BE : Boundaries)
      if (BE.F == Desc.F && BE.B == Desc.PreForkEntry) {
        BE.Id = Id; // Same overwrite semantics as the former map.
        Replaced = true;
        break;
      }
    if (!Replaced)
      Boundaries.push_back({Desc.F, Desc.PreForkEntry, Id});
  }

  enum class Mode { Normal, PostFork, Replay };
  Mode State = Mode::Normal;
  PendingSpec Spec;
  GhostArena Arena;
  SpecAddrMap SpecBuffer;
  std::unique_ptr<MainPostForkHooks> PostForkHooks;
  uint64_t ReplayInstrs = 0;
  uint64_t ReexecInstrsTotal = 0;

  // Wall-time attribution per loop.
  std::map<int64_t, uint64_t> LoopEnterSubtick;

  auto Sink = makeStepSink([&](const StepResult &R) {
    const size_t Depth = In.stackDepth();

    if (State != Mode::Replay)
      BT.onStep(R, Depth);
    else
      ++ReplayInstrs;

    // Loop wall-time tracking. Fork/kill markers are block-timer
    // barriers, so the clock is exact here.
    if (R.IsFork && Loops.count(R.I->IntImm) &&
        !LoopEnterSubtick.count(R.I->IntImm))
      LoopEnterSubtick[R.I->IntImm] = Core.now();
    if (R.IsKill && Loops.count(R.I->IntImm)) {
      auto It = LoopEnterSubtick.find(R.I->IntImm);
      if (It != LoopEnterSubtick.end()) {
        Result.PerLoop[R.I->IntImm].Subticks += Core.now() - It->second;
        LoopEnterSubtick.erase(It);
      }
    }

    switch (State) {
    case Mode::Normal:
      if (R.IsFork && Loops.count(R.I->IntImm)) {
        const SptLoopDesc &Desc = Loops.at(R.I->IntImm);
        if (In.topFrame().F == Desc.F) {
          // Spawn: snapshot the loop frame context.
          Core.charge(Machine.ForkOverhead);
          if (FI)
            Core.charge(FI->forkJitterSubticks());
          Spec.resetFor(R.I->IntImm, &Desc, Depth);
          In.copyTopRegs(Spec.Regs);
          if (FI && !Spec.Regs.empty() && FI->shouldFlipReg()) {
            // Corrupt one snapshot register — the speculative thread's
            // input state, where SVP's predicted values live. Marking it
            // as a main-thread write makes ghost reads of it violations,
            // i.e. the hardware detects the stale/wrong value and the
            // dependent slice is re-executed.
            const size_t Idx = FI->pickIndex(Spec.Regs.size());
            Spec.Regs[Idx] = FI->corrupt(Spec.Regs[Idx]);
            Spec.setMainWrote(static_cast<Reg>(Idx));
          }
          Spec.Rng = In.rng();
          Spec.ForkSubtick = Core.now();
          PostForkHooks = std::make_unique<MainPostForkHooks>(In, Spec);
          In.setMemHooks(PostForkHooks.get());
          State = Mode::PostFork;
          ++Result.PerLoop[Spec.LoopId].Forks;
        }
      }
      break;

    case Mode::PostFork: {
      // Track the main thread's post-fork effects.
      if (R.I->Dst != NoReg && !R.IsCallEnter && Depth == Spec.FrameDepth)
        Spec.setMainWrote(R.I->Dst);
      if (R.I->Op == Opcode::Call) {
        const Function *Callee = M.function(R.I->calleeIndex());
        if (Callee->isExternal()) {
          if (Callee->name() == "rnd")
            ++Spec.MainRndCalls;
          else if (Callee->name() == "print_int" ||
                   Callee->name() == "print_fp")
            ++Spec.MainIoCalls;
        }
      }

      // Loop exit while the speculative thread runs: kill it.
      if (R.IsKill && R.I->IntImm == Spec.LoopId) {
        ++Result.PerLoop[Spec.LoopId].KilledBeforeJoin;
        In.setMemHooks(nullptr);
        PostForkHooks.reset();
        State = Mode::Normal;
        break;
      }

      // Join: the main thread reached the next iteration's entry.
      if (R.IsBranch && Depth == Spec.FrameDepth &&
          R.NextBlock == Spec.Desc->PreForkEntry) {
        SptLoopRunStats &Stats = Result.PerLoop[Spec.LoopId];
        In.setMemHooks(nullptr);
        PostForkHooks.reset();

        GhostOutcome Ghost =
            runGhost(M, In, Spec, Machine, GhostCore, MemoPtr, Arena,
                     SpecBuffer, /*MaxGhostSteps=*/1u << 20, FI,
                     Memo.Stats);
        if (Ghost.Completed && FI && FI->shouldForceSquash())
          Ghost.Completed = false; // Injected: hardware lost the buffer.
        if (!Ghost.Completed) {
          // Squashed: the main thread simply executes the iteration
          // itself at full cost.
          ++Stats.Squashed;
          State = Mode::Normal;
          break;
        }
        ++Stats.Joins;
        Stats.SpecInstrs += Ghost.Instrs;
        Stats.ReexecInstrs += Ghost.ReexecInstrs;
        ReexecInstrsTotal += Ghost.ReexecInstrs;
        if (Ghost.Violated)
          ++Stats.ViolatedThreads;

        const uint64_t Joined = std::max(Core.now(), Ghost.EndSubtick);
        Core.advanceTo(Joined);
        Core.charge(Machine.CommitOverhead);
        if (FI)
          Core.charge(FI->commitJitterSubticks());
        Core.advanceTo(Core.now() + Ghost.ReexecSubticks);
        State = Mode::Replay;
      }
      break;
    }

    case Mode::Replay:
      // The speculative thread already executed this iteration; the main
      // interpreter replays it functionally with the clock frozen.
      if (R.IsBranch && Depth == Spec.FrameDepth &&
          R.NextBlock == Spec.Desc->PreForkEntry) {
        State = Mode::Normal;
      } else if (R.IsKill && R.I->IntImm == Spec.LoopId) {
        // Loop ended inside the replayed iteration (wall time was already
        // attributed by the generic kill handling above).
        State = Mode::Normal;
      }
      break;
    }

    // Iteration counting at boundaries (any mode).
    if (R.IsBranch && !Boundaries.empty()) {
      const Function *TopF = In.done() ? nullptr : In.topFrame().F;
      for (const BoundaryEntry &BE : Boundaries)
        if (BE.F == TopF && BE.B == R.NextBlock) {
          ++Result.PerLoop[BE.Id].Iterations;
          break;
        }
    }
    return true;
  });
  In.runBatch(Sink, MaxSteps);
  if (!In.done())
    spt_fatal("runSpt: step budget exhausted (infinite loop?)");
  BT.sync();

  Result.Subticks = Core.now();
  Result.Instrs = Core.retired() + ReplayInstrs + ReexecInstrsTotal;
  Result.Result = In.returnValue();
  Result.Output = In.output();
  Result.MemoryHash = In.memoryHash();
  Result.Perf = Memo.Stats;

  // One batched flush of the run's speculation counters; the simulation
  // loop above never touches the registry.
  if (Obs) {
    obsAdd(Obs, "sim.runs", 1);
    obsAdd(Obs, "sim.chaos_runs", FI ? 1 : 0);
    SptLoopRunStats Tot;
    for (const auto &[Id, S] : Result.PerLoop) {
      (void)Id;
      Tot.Forks += S.Forks;
      Tot.Joins += S.Joins;
      Tot.KilledBeforeJoin += S.KilledBeforeJoin;
      Tot.Squashed += S.Squashed;
      Tot.ViolatedThreads += S.ViolatedThreads;
      Tot.SpecInstrs += S.SpecInstrs;
      Tot.ReexecInstrs += S.ReexecInstrs;
      Tot.Iterations += S.Iterations;
    }
    obsAdd(Obs, "sim.forks", Tot.Forks);
    obsAdd(Obs, "sim.joins", Tot.Joins);
    obsAdd(Obs, "sim.killed_before_join", Tot.KilledBeforeJoin);
    obsAdd(Obs, "sim.squashes", Tot.Squashed);
    // Every violated join is recovered by main-core re-execution
    // (sequential semantics hold by construction), so violations and
    // recoveries coincide; clean joins banked their speculative work.
    obsAdd(Obs, "sim.recoveries", Tot.ViolatedThreads);
    obsAdd(Obs, "sim.clean_joins", Tot.Joins - Tot.ViolatedThreads);
    obsAdd(Obs, "sim.spec_instrs", Tot.SpecInstrs);
    obsAdd(Obs, "sim.reexec_instrs", Tot.ReexecInstrs);
    obsAdd(Obs, "sim.iterations", Tot.Iterations);
    obsSample(Obs, "sim.reexec_per_run", Tot.ReexecInstrs);
    // Fast-path effectiveness, batched like the rest.
    obsAdd(Obs, "sim.memo.hits", Result.Perf.MemoHits);
    obsAdd(Obs, "sim.memo.misses", Result.Perf.MemoMisses);
    obsAdd(Obs, "sim.memo.invalidations", Result.Perf.MemoInvalidations);
    obsAdd(Obs, "sim.violation.batch", Result.Perf.ViolationBatches);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Generalized N-core engine
//===----------------------------------------------------------------------===//

/// One speculative chain slot of the generalized engine: the snapshot a
/// fork captured, the staleness of that snapshot relative to committed
/// sequential state, and the slot's speculative writes. Slot s
/// speculates iteration i+s+1 of a fork taken in iteration i; slot 0 is
/// armed by the main core's fork, slot s+1 by slot s's own fork marker.
/// Arena-reused across joins.
struct ChainSlot {
  bool Armed = false;
  std::vector<Value> Regs;
  Random Rng;
  uint64_t ForkSubtick = 0;
  /// Loop registers whose snapshot value may differ from committed
  /// sequential state (the generalization of the reference engine's
  /// main-wrote-post-fork set). Reads of these are violations.
  std::vector<uint64_t> StaleBits;
  /// The snapshot RNG state races an earlier thread's rnd() use.
  bool StaleRnd = false;
  /// This slot's buffered speculative stores.
  SpecAddrMap Buffer;
  /// Closure output, persisted while later slots run: a load forwarded
  /// from a re-executed store is a cross-core violation.
  std::vector<uint8_t> Reexec;
  GhostOutcome Out;
  /// Trace index of this ghost's fork marker (arms the next slot), or
  /// -1. Writes after it post-date the next slot's snapshot.
  int32_t ArmIndex = -1;
  uint64_t RndCallsAfterArm = 0;

  bool staleReg(Reg R) const {
    return (R >> 6) < StaleBits.size() &&
           (StaleBits[R >> 6] >> (R & 63)) & 1;
  }
  void setStaleReg(Reg R) {
    if ((R >> 6) >= StaleBits.size())
      StaleBits.resize((R >> 6) + 1, 0);
    StaleBits[R >> 6] |= 1ull << (R & 63);
  }
};

/// Ghost memory semantics for a chain slot: reads hit the slot's own
/// buffer, then every earlier slot's buffer newest-first (program order:
/// main < slot 0 < slot 1 < ...; a hit forwarded from a re-executed
/// store is a cross-core violation), then the main core's undo log (a
/// stale value: violation), then shared memory. Writes are buffered. At
/// slot 0 the predecessor walk is empty and this is exactly the
/// reference engine's GhostMemHooks.
class ChainMemHooks final : public Interpreter::MemHooks {
public:
  ChainMemHooks(const Interpreter &Ghost, std::vector<ChainSlot> &Chain,
                uint32_t SlotIdx, const SpecAddrMap &UndoLog,
                FaultInjector *Injector)
      : Ghost(Ghost), Chain(Chain), SlotIdx(SlotIdx), UndoLog(UndoLog),
        Injector(Injector) {}

  Value onLoad(uint64_t Addr, Value Fallback) override {
    LastLoadViolated = false;
    LastLoadInjected = false;
    LastLoadSpecWriter = -1;
    Value V = Fallback;
    if (const SpecAddrMap::Slot *Spec = Chain[SlotIdx].Buffer.find(Addr)) {
      LastLoadSpecWriter = Spec->Writer;
      V = Spec->V;
    } else {
      bool Hit = false;
      for (uint32_t P = SlotIdx; P-- > 0;) {
        if (const SpecAddrMap::Slot *Pred = Chain[P].Buffer.find(Addr)) {
          V = Pred->V;
          // Cross-core violation closure: the forwarded value comes from
          // a store the main core will re-execute.
          if (Pred->Writer >= 0 &&
              Chain[P].Reexec[static_cast<uint32_t>(Pred->Writer)])
            LastLoadViolated = true;
          Hit = true;
          break;
        }
      }
      if (!Hit) {
        if (const SpecAddrMap::Slot *Undo = UndoLog.find(Addr)) {
          LastLoadViolated = true;
          V = Undo->V;
        }
      }
    }
    if (Injector && Injector->shouldFlipLoad()) {
      LastLoadInjected = true;
      V = Injector->corrupt(V);
    }
    return V;
  }

  bool onStore(uint64_t Addr, Value V) override {
    Chain[SlotIdx].Buffer.insertOrAssign(
        Addr, V, static_cast<int32_t>(Ghost.instrCount() - 1));
    return true; // Never reaches shared memory.
  }

  bool LastLoadViolated = false;
  bool LastLoadInjected = false;
  int32_t LastLoadSpecWriter = -1;

private:
  const Interpreter &Ghost;
  std::vector<ChainSlot> &Chain;
  const uint32_t SlotIdx;
  const SpecAddrMap &UndoLog;
  FaultInjector *Injector;
};

/// Simulates chain slot \p SlotIdx as a ghost. Structured exactly like
/// the reference engine's runGhost, with three additions: staleness
/// comes from the slot (not the main-thread write set), loads walk the
/// predecessor buffers, and the slot's own fork marker arms \p Next.
GhostOutcome runChainGhost(const Module &M, Interpreter &MainIn,
                           const PendingSpec &Spec,
                           std::vector<ChainSlot> &Chain, uint32_t SlotIdx,
                           ChainSlot *Next, const MachineConfig &Machine,
                           CoreTiming &Core, TimingMemo *Memo,
                           GhostArena &A, uint64_t MaxGhostSteps,
                           FaultInjector *Injector, SimPerfCounters &Perf) {
  GhostOutcome Out;
  ChainSlot &Slot = Chain[SlotIdx];

  Interpreter Ghost(M, MainIn);
  Ghost.rng() = Slot.Rng;
  Ghost.startAt(Spec.Desc->F, Spec.Desc->PreForkEntry, 0, Slot.Regs);

  Slot.Buffer.reset();
  ChainMemHooks Hooks(Ghost, Chain, SlotIdx, Spec.UndoLog, Injector);
  Ghost.setMemHooks(&Hooks);

  Core.resetFor(Slot.ForkSubtick);
  BlockTimer BT(Core, Memo);
  A.beginRun(Spec.Desc->F->numRegs());
  Slot.ArmIndex = -1;
  Slot.RndCallsAfterArm = 0;

  uint32_t N = 0;
  auto Sink = makeStepSink([&](const StepResult &R) {
    const size_t Depth = Ghost.stackDepth();
    const size_t DepthBefore =
        R.IsCallEnter ? Depth - 1 : (R.IsReturn ? Depth + 1 : Depth);
    BT.onStep(R, Depth);
    const size_t SrcFrame = DepthBefore - 1;

    uint8_t Direct = 0;
    A.SrcBegin.push_back(static_cast<uint32_t>(A.SrcWriters.size()));
    for (Reg S : R.I->Srcs) {
      A.SrcWriters.push_back(A.writerOf(SrcFrame, S));
      // Violations: stale register reads at the loop frame.
      if (SrcFrame == 0 && !A.ghostWrote(S) && Slot.staleReg(S))
        Direct = 1;
    }

    if (R.IsLoad && (Hooks.LastLoadViolated || Hooks.LastLoadInjected))
      Direct = 1;

    if (R.I->Op == Opcode::Call) {
      const Function *Callee = M.function(R.I->calleeIndex());
      if (Callee->isExternal()) {
        if (Callee->name() == "rnd") {
          if (Slot.StaleRnd)
            Direct = 1;
          if (Slot.ArmIndex >= 0)
            ++Slot.RndCallsAfterArm;
        }
        if (Callee->name() == "print_int" || Callee->name() == "print_fp")
          Direct = 1; // I/O cannot speculate.
      }
    }

    A.Direct.push_back(Direct);
    A.IsLoad.push_back(R.IsLoad);
    A.SpecWriter.push_back(R.IsLoad ? Hooks.LastLoadSpecWriter : -1);

    if (R.I->Dst != NoReg && !R.IsCallEnter) {
      A.setWriter(SrcFrame, R.I->Dst, static_cast<int32_t>(N));
      if (SrcFrame == 0)
        A.setGhostWrote(R.I->Dst);
    }

    // Chain arming: this ghost's own fork marker spawns the next slot,
    // exactly as the main core's fork spawned this one. Fork markers are
    // block-timer barriers, so the clock is exact here.
    if (R.IsFork && R.I->IntImm == Spec.LoopId && SrcFrame == 0 && Next &&
        !Next->Armed) {
      Core.charge(Machine.ForkOverhead);
      if (Injector)
        Core.charge(Injector->forkJitterSubticks());
      Next->Armed = true;
      Ghost.copyTopRegs(Next->Regs);
      if (Injector && !Next->Regs.empty() && Injector->shouldFlipReg()) {
        const size_t Idx = Injector->pickIndex(Next->Regs.size());
        Next->Regs[Idx] = Injector->corrupt(Next->Regs[Idx]);
        Next->setStaleReg(static_cast<Reg>(Idx));
      }
      Next->Rng = Ghost.rng();
      Next->ForkSubtick = Core.now();
      Slot.ArmIndex = static_cast<int32_t>(N);
    }
    ++N;

    if (R.IsBranch && Depth == 1 &&
        R.NextBlock == Spec.Desc->PreForkEntry) {
      Out.Completed = true;
      return false;
    }
    if (R.IsKill && R.I->IntImm == Spec.LoopId) {
      Out.Completed = true; // Speculated that the loop ends.
      Out.CompletedByKill = true;
      return false;
    }
    if (R.IsReturn && Depth == 0)
      return false; // Fell out of the loop frame: treat as squashed.
    return true;
  });
  Ghost.runBatch(Sink, MaxGhostSteps);

  Ghost.setMemHooks(nullptr);
  BT.sync();
  Out.EndSubtick = Core.now();
  Out.Instrs = N;
  A.SrcBegin.push_back(static_cast<uint32_t>(A.SrcWriters.size()));

  // Batched violation closure, computed into the slot's persistent
  // Reexec column (later slots' loads consult it).
  ++Perf.ViolationBatches;
  Slot.Reexec.assign(N, 0);
  const uint64_t IssueSlot = SubticksPerCycle / Machine.IssueWidth;
  for (uint32_t I = 0; I != N; ++I) {
    uint8_t Rx = A.Direct[I];
    if (!Rx) {
      for (uint32_t S = A.SrcBegin[I]; S != A.SrcBegin[I + 1]; ++S) {
        const int32_t W = A.SrcWriters[S];
        if (W >= 0 && Slot.Reexec[static_cast<uint32_t>(W)]) {
          Rx = 1;
          break;
        }
      }
      if (!Rx && A.SpecWriter[I] >= 0 &&
          Slot.Reexec[static_cast<uint32_t>(A.SpecWriter[I])])
        Rx = 1;
    }
    Slot.Reexec[I] = Rx;
    if (Rx) {
      ++Out.ReexecInstrs;
      Out.ReexecSubticks +=
          IssueSlot + (A.IsLoad[I] ? Machine.L1.HitLatencyCycles *
                                         SubticksPerCycle
                                   : 0);
    }
  }
  Out.Violated = Out.ReexecInstrs != 0;
  return Out;
}

/// Propagates snapshot staleness from a committed ghost to the slot it
/// armed: a loop register the ghost wrote after the arm point is stale
/// (the snapshot predates the write); one written before is stale iff
/// the producing instruction re-executes; an untouched one inherits the
/// ghost's own staleness. Must run while \p A still holds the ghost's
/// writer tables (before the next ghost's beginRun).
void propagateStaleness(const ChainSlot &Slot, ChainSlot &Next,
                        const GhostArena &A, unsigned LoopRegs) {
  for (unsigned R = 0; R != LoopRegs; ++R) {
    const int32_t W = A.writerOf(0, static_cast<Reg>(R));
    bool Stale;
    if (W < 0)
      Stale = Slot.staleReg(static_cast<Reg>(R));
    else if (Slot.ArmIndex >= 0 && W > Slot.ArmIndex)
      Stale = true;
    else
      Stale = Slot.Reexec[static_cast<uint32_t>(W)] != 0;
    if (Stale)
      Next.setStaleReg(static_cast<Reg>(R));
  }
  if (Slot.StaleRnd || Slot.RndCallsAfterArm > 0)
    Next.StaleRnd = true;
}

/// The generalized SptSimEngine::Generalized driver: Cores-1 chained
/// speculative slots per fork, in-order commit with cross-core violation
/// closure, per-slot CoreTiming/BranchPredictor over the shared cache
/// hierarchy and TimingMemo. Cores=1 disables speculation; Cores=2 is
/// byte-identical to runSptTwoCore.
SptSimResult runSptGeneralized(const Module &M, const std::string &FnName,
                               const std::vector<Value> &Args,
                               const std::map<int64_t, SptLoopDesc> &Loops,
                               const MachineConfig &Machine,
                               uint64_t MaxSteps, uint64_t RngSeed,
                               FaultInjector *Injector, ObsContext *Obs,
                               const SimOptions &Sim) {
  ObsSpan RunSpan(Obs, "sim.runSpt");
  const Function *F = M.findFunction(FnName);
  if (!F)
    spt_fatal("runSpt: no such function");
  FaultInjector *FI = Injector && Injector->enabled() ? Injector : nullptr;

  InterpOptions IOpts;
  IOpts.RngSeed = RngSeed;
  Interpreter In(M, IOpts);
  In.startCall(F, Args);

  // One main core plus K speculative chain slots. The predictors and
  // core clocks persist across joins (slot s always runs on core s), the
  // cache hierarchy and timing memo are shared by every core.
  const uint32_t K = Machine.Cores > 0 ? Machine.Cores - 1 : 0;
  CacheHierarchy Cache(Machine);
  BranchPredictor MainPredictor;
  CoreTiming Core(Machine, Cache, MainPredictor, Sim.Fidelity);
  std::vector<BranchPredictor> GhostPredictors(K);
  std::vector<CoreTiming> GhostCores;
  GhostCores.reserve(K);
  for (uint32_t S = 0; S != K; ++S)
    GhostCores.emplace_back(Machine, Cache, GhostPredictors[S],
                            Sim.Fidelity);
  TimingMemo Memo;
  TimingMemo *MemoPtr = Sim.Memo ? &Memo : nullptr;
  BlockTimer BT(Core, MemoPtr);

  SptSimResult Result;
  Result.CoreStats.resize(K);

  struct BoundaryEntry {
    const Function *F;
    BlockId B;
    int64_t Id;
  };
  std::vector<BoundaryEntry> Boundaries;
  for (const auto &[Id, Desc] : Loops) {
    bool Replaced = false;
    for (BoundaryEntry &BE : Boundaries)
      if (BE.F == Desc.F && BE.B == Desc.PreForkEntry) {
        BE.Id = Id;
        Replaced = true;
        break;
      }
    if (!Replaced)
      Boundaries.push_back({Desc.F, Desc.PreForkEntry, Id});
  }

  enum class Mode { Normal, PostFork, Replay };
  Mode State = Mode::Normal;
  PendingSpec Spec;
  GhostArena Arena;
  std::vector<ChainSlot> Chain(K);
  std::unique_ptr<MainPostForkHooks> PostForkHooks;
  uint64_t ReplayInstrs = 0;
  uint64_t ReexecInstrsTotal = 0;
  uint32_t ReplayRemaining = 0;

  std::map<int64_t, uint64_t> LoopEnterSubtick;

  auto Sink = makeStepSink([&](const StepResult &R) {
    const size_t Depth = In.stackDepth();

    if (State != Mode::Replay)
      BT.onStep(R, Depth);
    else
      ++ReplayInstrs;

    if (R.IsFork && Loops.count(R.I->IntImm) &&
        !LoopEnterSubtick.count(R.I->IntImm))
      LoopEnterSubtick[R.I->IntImm] = Core.now();
    if (R.IsKill && Loops.count(R.I->IntImm)) {
      auto It = LoopEnterSubtick.find(R.I->IntImm);
      if (It != LoopEnterSubtick.end()) {
        Result.PerLoop[R.I->IntImm].Subticks += Core.now() - It->second;
        LoopEnterSubtick.erase(It);
      }
    }

    switch (State) {
    case Mode::Normal:
      if (K != 0 && R.IsFork && Loops.count(R.I->IntImm)) {
        const SptLoopDesc &Desc = Loops.at(R.I->IntImm);
        if (In.topFrame().F == Desc.F) {
          Core.charge(Machine.ForkOverhead);
          if (FI)
            Core.charge(FI->forkJitterSubticks());
          Spec.resetFor(R.I->IntImm, &Desc, Depth);
          In.copyTopRegs(Spec.Regs);
          if (FI && !Spec.Regs.empty() && FI->shouldFlipReg()) {
            const size_t Idx = FI->pickIndex(Spec.Regs.size());
            Spec.Regs[Idx] = FI->corrupt(Spec.Regs[Idx]);
            Spec.setMainWrote(static_cast<Reg>(Idx));
          }
          Spec.Rng = In.rng();
          Spec.ForkSubtick = Core.now();
          PostForkHooks = std::make_unique<MainPostForkHooks>(In, Spec);
          In.setMemHooks(PostForkHooks.get());
          State = Mode::PostFork;
          ++Result.PerLoop[Spec.LoopId].Forks;
          ++Result.CoreStats[0].Forks;
        }
      }
      break;

    case Mode::PostFork: {
      if (R.I->Dst != NoReg && !R.IsCallEnter && Depth == Spec.FrameDepth)
        Spec.setMainWrote(R.I->Dst);
      if (R.I->Op == Opcode::Call) {
        const Function *Callee = M.function(R.I->calleeIndex());
        if (Callee->isExternal()) {
          if (Callee->name() == "rnd")
            ++Spec.MainRndCalls;
          else if (Callee->name() == "print_int" ||
                   Callee->name() == "print_fp")
            ++Spec.MainIoCalls;
        }
      }

      if (R.IsKill && R.I->IntImm == Spec.LoopId) {
        ++Result.PerLoop[Spec.LoopId].KilledBeforeJoin;
        In.setMemHooks(nullptr);
        PostForkHooks.reset();
        State = Mode::Normal;
        break;
      }

      // Join: the main thread reached the next iteration's entry.
      // Simulate the speculative chain in order, each committed slot
      // arming (possibly) the next.
      if (R.IsBranch && Depth == Spec.FrameDepth &&
          R.NextBlock == Spec.Desc->PreForkEntry) {
        SptLoopRunStats &Stats = Result.PerLoop[Spec.LoopId];
        In.setMemHooks(nullptr);
        PostForkHooks.reset();

        // Slot 0 inherits the main fork's snapshot; later slots reset
        // until their predecessor arms them.
        const unsigned LoopRegs = Spec.Desc->F->numRegs();
        Chain[0].Armed = true;
        Chain[0].Regs = Spec.Regs;
        Chain[0].Rng = Spec.Rng;
        Chain[0].ForkSubtick = Spec.ForkSubtick;
        Chain[0].StaleBits = Spec.MainRegWriteBits;
        Chain[0].StaleRnd = Spec.MainRndCalls > 0;
        for (uint32_t S = 1; S < K; ++S) {
          Chain[S].Armed = false;
          Chain[S].StaleBits.assign((LoopRegs + 63) / 64, 0);
          Chain[S].StaleRnd = false;
        }

        uint32_t Committed = 0;
        bool Cut = false;
        for (uint32_t S = 0; S != K && Chain[S].Armed && !Cut; ++S) {
          ChainSlot *Next = S + 1 < K ? &Chain[S + 1] : nullptr;
          Chain[S].Out = runChainGhost(M, In, Spec, Chain, S, Next,
                                       Machine, GhostCores[S], MemoPtr,
                                       Arena, /*MaxGhostSteps=*/1u << 20,
                                       FI, Memo.Stats);
          if (Next && Next->Armed) {
            ++Stats.Forks;
            ++Result.CoreStats[S + 1].Forks;
          }
          if (Chain[S].Out.Completed && FI && FI->shouldForceSquash())
            Chain[S].Out.Completed = false;
          if (!Chain[S].Out.Completed) {
            Cut = true; // First failure cuts the chain.
            break;
          }
          ++Committed;
          if (Chain[S].Out.CompletedByKill)
            Cut = true; // Loop predicted to end: no later iteration.
          else if (Next && Next->Armed)
            propagateStaleness(Chain[S], *Next, Arena, LoopRegs);
        }

        // In-order commit fold over the committed prefix.
        for (uint32_t S = 0; S != Committed; ++S) {
          const GhostOutcome &O = Chain[S].Out;
          ++Stats.Joins;
          Stats.SpecInstrs += O.Instrs;
          Stats.ReexecInstrs += O.ReexecInstrs;
          ReexecInstrsTotal += O.ReexecInstrs;
          if (O.Violated)
            ++Stats.ViolatedThreads;
          ++Result.CoreStats[S].Commits;
          Core.advanceTo(std::max(Core.now(), O.EndSubtick));
          Core.charge(Machine.CommitOverhead);
          if (FI)
            Core.charge(FI->commitJitterSubticks());
          Core.advanceTo(Core.now() + O.ReexecSubticks);
        }
        // Everything armed beyond the committed prefix is squashed.
        for (uint32_t S = Committed; S != K; ++S)
          if (Chain[S].Armed) {
            ++Stats.Squashed;
            ++Result.CoreStats[S].Squashes;
          }

        if (Committed == 0) {
          State = Mode::Normal;
        } else {
          ReplayRemaining = Committed;
          State = Mode::Replay;
        }
      }
      break;
    }

    case Mode::Replay:
      // Speculatively executed iterations are replayed functionally with
      // the clock frozen, one boundary visit per committed slot.
      if (R.IsBranch && Depth == Spec.FrameDepth &&
          R.NextBlock == Spec.Desc->PreForkEntry) {
        if (--ReplayRemaining == 0)
          State = Mode::Normal;
      } else if (R.IsKill && R.I->IntImm == Spec.LoopId) {
        ReplayRemaining = 0;
        State = Mode::Normal;
      }
      break;
    }

    if (R.IsBranch && !Boundaries.empty()) {
      const Function *TopF = In.done() ? nullptr : In.topFrame().F;
      for (const BoundaryEntry &BE : Boundaries)
        if (BE.F == TopF && BE.B == R.NextBlock) {
          ++Result.PerLoop[BE.Id].Iterations;
          break;
        }
    }
    return true;
  });
  In.runBatch(Sink, MaxSteps);
  if (!In.done())
    spt_fatal("runSpt: step budget exhausted (infinite loop?)");
  BT.sync();

  Result.Subticks = Core.now();
  Result.Instrs = Core.retired() + ReplayInstrs + ReexecInstrsTotal;
  Result.Result = In.returnValue();
  Result.Output = In.output();
  Result.MemoryHash = In.memoryHash();
  Result.Perf = Memo.Stats;

  if (Obs) {
    obsAdd(Obs, "sim.runs", 1);
    obsAdd(Obs, "sim.chaos_runs", FI ? 1 : 0);
    SptLoopRunStats Tot;
    for (const auto &[Id, S] : Result.PerLoop) {
      (void)Id;
      Tot.Forks += S.Forks;
      Tot.Joins += S.Joins;
      Tot.KilledBeforeJoin += S.KilledBeforeJoin;
      Tot.Squashed += S.Squashed;
      Tot.ViolatedThreads += S.ViolatedThreads;
      Tot.SpecInstrs += S.SpecInstrs;
      Tot.ReexecInstrs += S.ReexecInstrs;
      Tot.Iterations += S.Iterations;
    }
    obsAdd(Obs, "sim.forks", Tot.Forks);
    obsAdd(Obs, "sim.joins", Tot.Joins);
    obsAdd(Obs, "sim.killed_before_join", Tot.KilledBeforeJoin);
    obsAdd(Obs, "sim.squashes", Tot.Squashed);
    obsAdd(Obs, "sim.recoveries", Tot.ViolatedThreads);
    obsAdd(Obs, "sim.clean_joins", Tot.Joins - Tot.ViolatedThreads);
    obsAdd(Obs, "sim.spec_instrs", Tot.SpecInstrs);
    obsAdd(Obs, "sim.reexec_instrs", Tot.ReexecInstrs);
    obsAdd(Obs, "sim.iterations", Tot.Iterations);
    obsSample(Obs, "sim.reexec_per_run", Tot.ReexecInstrs);
    obsAdd(Obs, "sim.memo.hits", Result.Perf.MemoHits);
    obsAdd(Obs, "sim.memo.misses", Result.Perf.MemoMisses);
    obsAdd(Obs, "sim.memo.invalidations", Result.Perf.MemoInvalidations);
    obsAdd(Obs, "sim.violation.batch", Result.Perf.ViolationBatches);
    // Generalized-engine chain telemetry (sim.core.*): per-slot arm /
    // commit / squash totals, flushed batched like everything else.
    uint64_t CommitsTot = 0, SquashTot = 0, ChainForks = 0;
    for (uint32_t S = 0; S != K; ++S) {
      CommitsTot += Result.CoreStats[S].Commits;
      SquashTot += Result.CoreStats[S].Squashes;
      if (S > 0)
        ChainForks += Result.CoreStats[S].Forks;
    }
    obsAdd(Obs, "sim.core.commits", CommitsTot);
    obsAdd(Obs, "sim.core.squashes", SquashTot);
    obsAdd(Obs, "sim.core.chain_forks", ChainForks);
  }
  return Result;
}

} // namespace

SptSimResult spt::runSpt(const Module &M, const std::string &FnName,
                         const std::vector<Value> &Args,
                         const std::map<int64_t, SptLoopDesc> &Loops,
                         const MachineConfig &Machine, uint64_t MaxSteps,
                         uint64_t RngSeed, FaultInjector *Injector,
                         ObsContext *Obs, const SimOptions &Sim) {
  if (Sim.Engine == SptSimEngine::TwoCoreReference)
    return runSptTwoCore(M, FnName, Args, Loops, Machine, MaxSteps, RngSeed,
                         Injector, Obs, Sim);
  return runSptGeneralized(M, FnName, Args, Loops, Machine, MaxSteps,
                           RngSeed, Injector, Obs, Sim);
}
