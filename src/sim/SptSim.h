//===- sim/SptSim.h - Two-core speculative (SPT) simulation -----------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates SPT-transformed programs on the paper's machine: one main
/// core and one speculative core with private registers and a shared
/// cache hierarchy (Section 8; execution model of Figure 1).
///
/// When the main thread executes SPT_FORK in iteration i, the simulator
/// snapshots the loop frame's context (registers + RNG state) and lets the
/// main core finish iteration i's post-fork region, logging its register
/// writes and an undo log of its stores. At the iteration boundary the
/// speculative thread is simulated as a *ghost*: a second interpreter
/// sharing program memory, whose loads read through a speculation buffer
/// — values the ghost itself stored — then the undo log (the stale value
/// the hardware would have speculated on; such reads are violations), then
/// memory. Ghost register reads of a register the main thread wrote after
/// the fork are likewise violations, as are rnd() calls racing the main
/// thread's RNG use and any I/O. The violated entries are closed over the
/// ghost's dynamic dependences (register def-use and speculation-buffer
/// flow); that slice is what the main core re-executes after the 5-cycle
/// commit, exactly as the paper describes ("commits those correct
/// speculative results and ... re-executes the corresponding misspeculated
/// instructions").
///
/// Functionally the main interpreter executes *every* iteration (so
/// results never depend on the speculation machinery); speculatively
/// executed iterations are replayed with the clock frozen at the joined
/// time. Sequential semantics therefore hold by construction, while the
/// timeline reproduces main/spec overlap:
///
///   next_iter_start = max(main_end, ghost_end) + commit + re-execution.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SIM_SPTSIM_H
#define SPT_SIM_SPTSIM_H

#include "interp/Interp.h"
#include "obs/Obs.h"
#include "sim/Machine.h"
#include "sim/SimOptions.h"

#include <map>
#include <string>
#include <vector>

namespace spt {

/// Where a transformed loop lives (produced by the driver from
/// SptTransformResult).
struct SptLoopDesc {
  const Function *F = nullptr;
  BlockId PreForkEntry = NoBlock; ///< Iteration boundary / spec start.
};

/// Per-SPT-loop runtime statistics.
struct SptLoopRunStats {
  uint64_t Forks = 0;
  uint64_t Joins = 0;            ///< Spec threads committed.
  uint64_t KilledBeforeJoin = 0; ///< Loop exited while a thread ran.
  uint64_t Squashed = 0;         ///< Ghost never completed (budget).
  uint64_t ViolatedThreads = 0;  ///< Joins with at least one violation.
  uint64_t SpecInstrs = 0;       ///< Instructions speculatively executed.
  uint64_t ReexecInstrs = 0;     ///< Instructions re-executed by main.
  uint64_t Iterations = 0;       ///< Iteration-boundary visits.
  uint64_t Subticks = 0;         ///< Wall time inside the loop.

  /// The actual re-execution ratio (Figure 19's y-axis counterpart):
  /// fraction of speculative computation re-executed.
  double reexecRatio() const {
    return SpecInstrs == 0 ? 0.0
                           : static_cast<double>(ReexecInstrs) /
                                 static_cast<double>(SpecInstrs);
  }
  /// Fraction of speculative threads that violated (misspeculation ratio,
  /// Figure 18).
  double misspecRatio() const {
    return Joins == 0 ? 0.0
                      : static_cast<double>(ViolatedThreads) /
                            static_cast<double>(Joins);
  }
  double cycles() const {
    return static_cast<double>(Subticks) / SubticksPerCycle;
  }
};

/// Per-speculative-core statistics from the generalized (N-core) engine.
/// Core 0 is the first speculative chain slot (iteration i+1 after a
/// fork in iteration i), core k speculates iteration i+k+1. Like Perf,
/// this is telemetry, not architectural state: differential comparisons
/// against the two-core reference engine exclude it (the reference
/// engine leaves it empty).
struct SptCoreStats {
  uint64_t Forks = 0;    ///< Chain slots armed for this core.
  uint64_t Commits = 0;  ///< Slots committed in order at a join.
  uint64_t Squashes = 0; ///< Slots squashed (own failure or chain cut).
};

/// Result of one SPT simulation.
struct SptSimResult {
  uint64_t Subticks = 0;
  uint64_t Instrs = 0; ///< Committed + re-executed instructions.
  Value Result;
  std::string Output;
  /// Hash of the final array memory image (Interpreter::memoryHash), the
  /// architectural state differential oracles compare against SeqSim.
  uint64_t MemoryHash = 0;
  std::map<int64_t, SptLoopRunStats> PerLoop;

  /// Fast-path effectiveness (memo hit/miss/invalidation, batched
  /// violation closures). Not part of the architectural report;
  /// differential comparisons exclude it.
  SimPerfCounters Perf;

  /// Generalized-engine per-speculative-core telemetry (size Cores-1;
  /// empty from the two-core reference engine). Excluded from
  /// differential comparisons, like Perf.
  std::vector<SptCoreStats> CoreStats;

  double cycles() const {
    return static_cast<double>(Subticks) / SubticksPerCycle;
  }
  double ipc() const {
    return Subticks == 0 ? 0.0
                         : static_cast<double>(Instrs) / cycles();
  }
};

class FaultInjector;

/// Simulates \p FnName(\p Args) of the transformed module. \p Loops maps
/// each SPT loop id (the SPT_FORK/SPT_KILL immediate) to its location.
/// \p Injector, when non-null, adversarially perturbs the speculation
/// machinery (forced squashes, flipped speculative values, timing jitter —
/// see sim/FaultInjector.h); architectural results must not change.
/// \p Obs, when non-null, receives a "sim.runSpt" span and the run's
/// speculation counters (squashes, violations, re-executed instructions),
/// flushed once at the end of the run.
/// \p Sim selects the timing fidelity and fast paths (sim/SimOptions.h).
/// Speculation outcomes (forks, joins, squashes, violations, re-executed
/// slices) are functions of architectural state only, so every counter
/// and all architectural fields are bit-identical across fidelities; the
/// default exact+memo configuration is byte-identical to the unmemoized
/// reference in every field.
SptSimResult runSpt(const Module &M, const std::string &FnName,
                    const std::vector<Value> &Args,
                    const std::map<int64_t, SptLoopDesc> &Loops,
                    const MachineConfig &Machine = MachineConfig(),
                    uint64_t MaxSteps = 500000000ull,
                    uint64_t RngSeed = 0x5eed5eed5eedull,
                    FaultInjector *Injector = nullptr,
                    ObsContext *Obs = nullptr,
                    const SimOptions &Sim = SimOptions());

} // namespace spt

#endif // SPT_SIM_SPTSIM_H
