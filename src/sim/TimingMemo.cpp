//===- sim/TimingMemo.cpp - Block-level timing memoization --------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/TimingMemo.h"

#include <algorithm>
#include <cstring>

using namespace spt;

namespace {

constexpr size_t kMaxVariants = 4;
/// A block whose recorded state diverges this often without a single hit
/// is not stabilizing; stop paying the compare/record overhead for it.
constexpr uint32_t kDeadInvalidations = 16;

} // namespace

void BlockTimer::flushSlow() {
  for (const CoreTiming::ResolvedStep &S : Buf)
    Core.applyTiming(S);
  Buf.clear();
  Keys.clear();
  CandidateValid = false;
}

bool BlockTimer::profileMatches(const MemoEntry &E) const {
  if (NowIn - BaseSlot != E.DNow)
    return false;
  const size_t N = Buf.size();
  if (std::memcmp(Keys.data(), E.StepKeys.data(), N * sizeof(uint32_t)) != 0)
    return false;
  const size_t W = Core.InFlight.size();
  const size_t K = std::min(N, W);
  size_t Pos = IdxIn;
  for (size_t I = 0; I != K; ++I) {
    if (int64_t(Core.InFlight[Pos] - BaseSlot) != E.InFlightD[I])
      return false;
    if (++Pos == W)
      Pos = 0;
  }
  const size_t SrcFrame = BufDepth == 0 ? 0 : BufDepth - 1;
  for (const auto &[R, D] : E.RegReadD)
    if (int64_t(Core.regReady(SrcFrame, R) - BaseSlot) != D)
      return false;
  return true;
}

void BlockTimer::applyHit(const MemoEntry &E) {
  const uint64_t Base = BaseSlot;
  Core.Now = Base + E.DNowOut;
  Core.SlotTime = Base + E.DSlotOut;
  Core.Retired += E.NSteps;
  const size_t W = Core.InFlight.size();
  const size_t K = E.DoneD.size();
  size_t Pos = (IdxIn + (E.NSteps - K)) % W;
  for (size_t I = 0; I != K; ++I) {
    Core.InFlight[Pos] = Base + E.DoneD[I];
    if (++Pos == W)
      Pos = 0;
  }
  Core.InFlightIdx = (IdxIn + E.NSteps) % W;
  const size_t SrcFrame = BufDepth == 0 ? 0 : BufDepth - 1;
  for (const auto &[R, D] : E.RegWriteD)
    Core.setRegReady(SrcFrame, R, Base + D);
}

void BlockTimer::record(MemoEntry &E) {
  const uint64_t Base = BaseSlot;
  const size_t N = Buf.size();
  const size_t W = Core.InFlight.size();
  const size_t K = std::min(N, W);
  const size_t SrcFrame = BufDepth == 0 ? 0 : BufDepth - 1;

  E.NSteps = static_cast<uint32_t>(N);
  E.DNow = NowIn - Base;
  E.StepKeys = Keys;
  E.StepHash = RunHash;

  E.InFlightD.resize(K);
  size_t Pos = IdxIn;
  for (size_t I = 0; I != K; ++I) {
    E.InFlightD[I] = int64_t(Core.InFlight[Pos] - Base);
    if (++Pos == W)
      Pos = 0;
  }

  // External reads and the written set, against pre-replay state.
  ++Gen;
  WrittenList.clear();
  E.RegReadD.clear();
  E.RegWriteD.clear();
  auto ensure = [&](Reg R) {
    if (R >= ReadGen.size()) {
      ReadGen.resize(R + 1, 0);
      WriteGen.resize(R + 1, 0);
    }
  };
  for (const CoreTiming::ResolvedStep &S : Buf) {
    for (uint32_t SI = 0; SI != S.NumSrcs; ++SI) {
      const Reg R = S.I->Srcs[SI];
      ensure(R);
      if (WriteGen[R] != Gen && ReadGen[R] != Gen) {
        ReadGen[R] = Gen;
        E.RegReadD.emplace_back(R,
                                int64_t(Core.regReady(SrcFrame, R) - Base));
      }
    }
    if (S.I->Dst != NoReg) {
      ensure(S.I->Dst);
      if (WriteGen[S.I->Dst] != Gen) {
        WriteGen[S.I->Dst] = Gen;
        WrittenList.push_back(S.I->Dst);
      }
    }
  }

  // Replay through the reference arithmetic, then snapshot the outputs.
  for (const CoreTiming::ResolvedStep &S : Buf)
    Core.applyTiming(S);

  E.DNowOut = Core.Now - Base;
  E.DSlotOut = Core.SlotTime - Base;
  E.DoneD.resize(K);
  Pos = (IdxIn + (N - K)) % W;
  for (size_t I = 0; I != K; ++I) {
    E.DoneD[I] = Core.InFlight[Pos] - Base;
    if (++Pos == W)
      Pos = 0;
  }
  for (Reg R : WrittenList)
    E.RegWriteD.emplace_back(R, Core.regReady(SrcFrame, R) - Base);
}

void BlockTimer::finalize() {
  const size_t N = Buf.size();
  std::vector<BlockMemo> &Blocks = Memo->blocksFor(BlockF);
  BlockMemo &BM = Blocks[Block];
  if (!CandidateValid || BM.Dead) {
    flushSlow();
    return;
  }

  for (MemoEntry &E : BM.Variants) {
    if (E.NSteps != N || E.StepHash != RunHash)
      continue;
    if (profileMatches(E)) {
      applyHit(E);
      E.LastUse = ++Memo->UseClock;
      ++BM.Hits;
      ++Memo->Stats.MemoHits;
      Buf.clear();
      Keys.clear();
      CandidateValid = false;
      return;
    }
    // Same resolved step pattern, diverged microarchitectural profile:
    // the recorded timing is stale for this state — invalidate in place.
    ++BM.Invalidations;
    ++Memo->Stats.MemoInvalidations;
    ++Memo->Stats.MemoMisses;
    record(E);
    E.LastUse = ++Memo->UseClock;
    Buf.clear();
    Keys.clear();
    CandidateValid = false;
    if (BM.Hits == 0 && BM.Invalidations >= kDeadInvalidations) {
      BM.Dead = true;
      BM.Variants.clear();
      BM.Variants.shrink_to_fit();
    }
    return;
  }

  // New variant for this block.
  ++Memo->Stats.MemoMisses;
  MemoEntry *Slot;
  if (BM.Variants.size() < kMaxVariants) {
    BM.Variants.emplace_back();
    Slot = &BM.Variants.back();
  } else {
    Slot = &*std::min_element(BM.Variants.begin(), BM.Variants.end(),
                              [](const MemoEntry &A, const MemoEntry &B) {
                                return A.LastUse < B.LastUse;
                              });
    ++BM.Invalidations;
    ++Memo->Stats.MemoInvalidations;
  }
  record(*Slot);
  Slot->LastUse = ++Memo->UseClock;
  Buf.clear();
  Keys.clear();
  CandidateValid = false;
  if (BM.Hits == 0 && BM.Invalidations >= kDeadInvalidations) {
    BM.Dead = true;
    BM.Variants.clear();
    BM.Variants.shrink_to_fit();
  }
}
