//===- sim/TimingMemo.h - Block-level timing memoization ---------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-level memoization of the scoreboard arithmetic in CoreTiming.
///
/// The interpreter always executes functionally and the stateful
/// microarchitectural components always advance exactly: every memory
/// access probes the cache hierarchy and every conditional branch trains
/// its predictor, in program order (CoreTiming::resolve). What a memo hit
/// elides is only CoreTiming::applyTiming — the per-instruction max/+
/// scoreboard arithmetic — for one complete straight-line execution of a
/// basic block.
///
/// Soundness rests on applyTiming being invariant under uniform time
/// translation: it is a composition of max and + over the core's clocks,
/// in-flight ring and register-ready times, with only relative constants
/// added. A recorded entry therefore stores the block's timing *profile
/// relative to a base* (the slot clock at block entry): the resolved
/// per-step inputs (cache latencies — i.e. the projection of cache-set
/// state the block observed — and predictor outcomes), the entry gap
/// between the visible and the slot clock, the consumed in-flight-window
/// entries and every register read before written, all as deltas against
/// the base. A lookup *verifies full equality of that profile* (the hash
/// is only a prefilter) and then applies the recorded output deltas
/// translated by the current base — bit-for-bit what replaying the
/// arithmetic would compute, by translation invariance. Any divergence of
/// the keyed state (a cache set evolved, a predictor counter moved, a
/// dependence distance changed) fails the comparison and the block is
/// re-simulated instruction by instruction and re-recorded: that is the
/// invalidation path, counted in SimPerfCounters::MemoInvalidations.
///
/// Blocks whose profile never stabilizes (e.g. pure latency-bound chains
/// whose visible/slot-clock gap grows every iteration) are detected by an
/// invalidation backoff and permanently drop to the reference path.
///
/// Call enters/returns and the SPT fork/kill markers are barriers: the
/// pending block is flushed through the reference arithmetic and the
/// barrier step accounted directly, so drivers may read CoreTiming::now()
/// after any barrier or block boundary.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SIM_TIMINGMEMO_H
#define SPT_SIM_TIMINGMEMO_H

#include "sim/CoreTiming.h"
#include "sim/SimOptions.h"

#include <map>
#include <vector>

namespace spt {

/// One recorded execution variant of a basic block. All times are deltas
/// against the base (slot clock at block entry).
struct MemoEntry {
  // --- key ---
  uint32_t NSteps = 0;
  uint64_t StepHash = 0; ///< Prefilter over StepKeys; equality is checked.
  /// Per-step resolved inputs: latency | IsBr<<30 | BrCorrect<<31.
  std::vector<uint32_t> StepKeys;
  uint64_t DNow = 0; ///< Visible-clock lead over the base at entry.
  /// Consumed in-flight ring entries (oldest first), delta vs base.
  std::vector<int64_t> InFlightD;
  /// Registers read before written in the block, first-read order.
  std::vector<std::pair<Reg, int64_t>> RegReadD;
  // --- recorded outputs ---
  uint64_t DNowOut = 0;
  uint64_t DSlotOut = 0;
  /// Ring entries as left by the block's last min(NSteps, W) steps.
  std::vector<uint64_t> DoneD;
  /// Final ready times of every register the block writes.
  std::vector<std::pair<Reg, uint64_t>> RegWriteD;
  uint64_t LastUse = 0; ///< LRU stamp.
};

/// Per-block variant store.
struct BlockMemo {
  std::vector<MemoEntry> Variants;
  uint32_t Hits = 0;
  uint32_t Invalidations = 0;
  bool Dead = false; ///< Backoff: state never stabilized; stop memoizing.
};

/// The per-run memo table: one BlockMemo per (function, block). Shared
/// between the main and the speculative core of one simulation — the
/// profiles are relative, so both cores hit the same entries.
class TimingMemo {
public:
  std::vector<BlockMemo> &blocksFor(const Function *F) {
    if (F == LastF)
      return *LastVec;
    std::vector<BlockMemo> &V = ByFunc[F];
    if (V.size() < F->numBlocks())
      V.resize(F->numBlocks());
    LastF = F;
    LastVec = &V;
    return V;
  }

  SimPerfCounters Stats;
  uint64_t UseClock = 0;

private:
  std::map<const Function *, std::vector<BlockMemo>> ByFunc;
  const Function *LastF = nullptr;
  std::vector<BlockMemo> *LastVec = nullptr;
};

/// Drives one CoreTiming through the memo: buffers the resolved steps of
/// the current basic block and, at the terminator, either applies a
/// verified recorded profile or replays + records. With a null memo
/// (exact-no-memo reference, or fast-forward fidelity) every step goes
/// straight to CoreTiming::onStep.
class BlockTimer {
public:
  BlockTimer(CoreTiming &Core, TimingMemo *Memo)
      : Core(Core), Memo(Core.isFastForward() ? nullptr : Memo) {}

  ~BlockTimer() { sync(); }

  /// Accounts one executed step. After a step with IsBranch, IsCallEnter,
  /// IsReturn, IsFork or IsKill the core clock is exact and may be read.
  void onStep(const StepResult &R, size_t Depth) {
    if (!Memo) {
      Core.onStep(R, Depth);
      return;
    }
    if (R.IsCallEnter || R.IsReturn || R.IsFork || R.IsKill) {
      // Barrier: frame switches and the SPT markers (whose sites read the
      // clock) are never memoized.
      sync();
      Core.onStep(R, Depth);
      return;
    }
    if (Buf.empty()) {
      BlockF = R.F;
      Block = R.Block;
      BufDepth = Depth;
      // Only complete top-entered runs are memo candidates; resumption
      // mid-block (after a call returned) is flushed unrecorded.
      CandidateValid = R.Index == 0;
      BaseSlot = Core.SlotTime;
      NowIn = Core.Now;
      IdxIn = Core.InFlightIdx;
      RunHash = 1469598103934665603ull;
    }
    Buf.push_back(Core.resolve(R, Depth));
    const CoreTiming::ResolvedStep &S = Buf.back();
    const uint32_t Key =
        S.LatCycles | (uint32_t(S.IsBr) << 30) | (uint32_t(S.BrCorrect) << 31);
    Keys.push_back(Key);
    RunHash = (RunHash ^ Key) * 1099511628211ull;
    if (R.IsBranch)
      finalize();
  }

  /// Flushes any buffered steps through the reference arithmetic (without
  /// recording). Call before reading the core clock mid-block.
  void sync() {
    if (!Buf.empty())
      flushSlow();
  }

private:
  void flushSlow();
  void finalize();
  bool profileMatches(const MemoEntry &E) const;
  void applyHit(const MemoEntry &E);
  void record(MemoEntry &E);

  CoreTiming &Core;
  TimingMemo *Memo;

  std::vector<CoreTiming::ResolvedStep> Buf;
  /// Per-step memo keys of Buf, maintained incrementally with a running
  /// FNV hash so finalize() never re-walks Buf to key or hash it.
  std::vector<uint32_t> Keys;
  uint64_t RunHash = 1469598103934665603ull;
  const Function *BlockF = nullptr;
  BlockId Block = NoBlock;
  size_t BufDepth = 0;
  bool CandidateValid = false;
  uint64_t BaseSlot = 0; ///< Slot clock at block entry (the base).
  uint64_t NowIn = 0;    ///< Visible clock at block entry.
  size_t IdxIn = 0;      ///< Ring position at block entry.

  // Scratch for record(): register first-read/write marks by generation.
  std::vector<uint32_t> ReadGen, WriteGen;
  std::vector<Reg> WrittenList;
  uint32_t Gen = 0;
};

} // namespace spt

#endif // SPT_SIM_TIMINGMEMO_H
