//===- spt.h - Umbrella header for the SPT framework ---------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one header embedders include. Benches, tools and out-of-tree users
/// get the whole supported surface from `#include "spt.h"`; individual
/// component headers stay includable but are an implementation detail
/// whose layout may shift between PRs.
///
/// The surface comes in two rings:
///
///   Supported API — the spt::Compiler facade, its options/report types,
///   deterministic report rendering, and the observability layer (spans,
///   counters, stats dumps, Chrome trace export + validator).
///
///   Bench/tooling surface — everything the in-tree harnesses also need:
///   the language frontend, interpreter, workload suite, simulators,
///   analysis/cost/partition internals, table/stream helpers and the
///   differential-fuzzing engine. Stable enough for the benches, not an
///   external-compatibility promise.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SPT_H
#define SPT_SPT_H

// --- Supported API -----------------------------------------------------===//
#include "driver/Compiler.h"    // spt::Compiler facade
#include "driver/SptCompiler.h" // SptCompilerOptions, CompilationReport,
                                // compileSpt, renderReportDeterministic
#include "obs/Json.h"           // json::parse, validateChromeTrace
#include "obs/Obs.h"            // ObsContext, counters, stats dumps
#include "obs/Stats.h"          // RunningStat, GeoMean, Correlation
#include "obs/Tracer.h"         // Tracer, exportChromeTrace
#include "serve/BatchCompileServer.h" // BatchCompileServer, ServeOptions
#include "serve/CompileCache.h"       // checksum-verified LRU compile cache
#include "support/CancelToken.h"      // cooperative cancellation/deadlines

// --- Bench/tooling surface ---------------------------------------------===//
#include "analysis/CallEffects.h"
#include "analysis/Cfg.h"
#include "analysis/DepGraph.h"
#include "analysis/Freq.h"
#include "analysis/LoopInfo.h"
#include "analysis/ProfileData.h"
#include "analysis/oracle/DepOracle.h"
#include "cost/CostModel.h"
#include "interp/Decode.h"
#include "interp/Interp.h"
#include "ir/IR.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "lang/Frontend.h"
#include "lang/ProgramGenerator.h"
#include "partition/Partition.h"
#include "profile/DepProfiler.h"
#include "profile/Profiler.h"
#include "sim/FaultInjector.h"
#include "sim/Machine.h"
#include "sim/SeqSim.h"
#include "sim/SptSim.h"
#include "support/Debug.h"
#include "support/OStream.h"
#include "support/Status.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "testing/Corpus.h"
#include "testing/Fuzzer.h"
#include "testing/Mutator.h"
#include "testing/Oracles.h"
#include "testing/Reducer.h"
#include "transform/Cleanup.h"
#include "transform/Unroll.h"
#include "workloads/Workloads.h"

#endif // SPT_SPT_H
