//===- support/CancelToken.h - Cooperative cancellation --------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shared cancellation point for long-running pipeline work. One token
/// serves a whole request: the batch server arms it with the request's
/// deadline (or cancels it explicitly on shutdown), and every cooperating
/// phase — the profiler's interpretation loop, each pass-1 loop candidate,
/// and the partition search's budget check — polls it at bounded
/// intervals and abandons work when it fires.
///
/// Two trigger sources, checked together by cancelled():
///  - an explicit cancel() from any thread (sticky), and
///  - an absolute wall-clock deadline armed via armDeadlineAfter().
///
/// Polling is cheap (one relaxed atomic load when no deadline is armed;
/// one steady_clock read otherwise), but hot loops should still poll on a
/// stride — PartitionSearch reuses its existing DeadlineCheckStride.
///
/// Contrast with the per-search wall-clock budget
/// (PartitionOptions::MaxSearchSeconds): that budget restarts for every
/// loop, so a request-level deadline could historically be overshot by up
/// to one full loop search. The token carries one *absolute* deadline
/// across every search and stage of a compilation, so cancellation is
/// honored mid-search.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SUPPORT_CANCELTOKEN_H
#define SPT_SUPPORT_CANCELTOKEN_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace spt {

/// Sticky cancellation flag plus an optional absolute deadline. Thread-safe:
/// any thread may cancel/arm, any number may poll.
class CancelToken {
public:
  CancelToken() = default;

  /// steady_clock now, in nanoseconds since the clock's epoch.
  static uint64_t nowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Trips the token permanently.
  void cancel() { Flag.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) the deadline \p Seconds from now. Non-positive
  /// values trip the token immediately.
  void armDeadlineAfter(double Seconds) {
    if (Seconds <= 0.0) {
      cancel();
      return;
    }
    DeadlineNs.store(nowNs() + static_cast<uint64_t>(Seconds * 1e9),
                     std::memory_order_relaxed);
  }

  /// Clears the deadline (the explicit flag, if set, stays set).
  void clearDeadline() { DeadlineNs.store(0, std::memory_order_relaxed); }

  /// True once cancel() was called or the armed deadline passed. The
  /// deadline branch latches into the flag so later polls skip the clock.
  bool cancelled() const {
    if (Flag.load(std::memory_order_relaxed))
      return true;
    const uint64_t D = DeadlineNs.load(std::memory_order_relaxed);
    if (D != 0 && nowNs() >= D) {
      Flag.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Seconds until the armed deadline (0 when tripped; a large value when
  /// no deadline is armed). For sizing sub-budgets off the shared token.
  double remainingSeconds() const {
    if (Flag.load(std::memory_order_relaxed))
      return 0.0;
    const uint64_t D = DeadlineNs.load(std::memory_order_relaxed);
    if (D == 0)
      return 1e18;
    const uint64_t Now = nowNs();
    return Now >= D ? 0.0 : static_cast<double>(D - Now) * 1e-9;
  }

private:
  mutable std::atomic<bool> Flag{false};
  std::atomic<uint64_t> DeadlineNs{0};
};

/// Null-safe poll: a null token never cancels.
inline bool isCancelled(const CancelToken *Token) {
  return Token && Token->cancelled();
}

} // namespace spt

#endif // SPT_SUPPORT_CANCELTOKEN_H
