//===- support/Debug.cpp - Fatal errors and unreachable markers ----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Debug.h"

#include <cstdio>
#include <cstdlib>

void spt::fatalErrorImpl(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "fatal error: %s (at %s:%d)\n", Msg, File, Line);
  std::abort();
}
