//===- support/Debug.h - Fatal errors and unreachable markers ------------===//
//
// Part of the SPT framework, a reproduction of "A Cost-Driven Compilation
// Framework for Speculative Parallelization of Sequential Programs"
// (PLDI 2004). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting helpers in the spirit of llvm_unreachable and
/// report_fatal_error. The library does not use exceptions; invariant
/// violations abort with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SUPPORT_DEBUG_H
#define SPT_SUPPORT_DEBUG_H

namespace spt {

/// Prints \p Msg with source location info to stderr and aborts.
[[noreturn]] void fatalErrorImpl(const char *Msg, const char *File, int Line);

} // namespace spt

/// Marks a point in code that must never be executed. Use for switch
/// defaults over covered enums and for "can't happen" control flow.
#define spt_unreachable(MSG) ::spt::fatalErrorImpl(MSG, __FILE__, __LINE__)

/// Reports an unrecoverable usage or environment error and aborts.
#define spt_fatal(MSG) ::spt::fatalErrorImpl(MSG, __FILE__, __LINE__)

#endif // SPT_SUPPORT_DEBUG_H
