//===- support/Hash.h - Stable content hashing ----------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a hashing over byte strings. The point is *stability*: these
/// values are compared against golden constants committed to the test
/// suite (generator fingerprints, corpus dedup keys), so the function must
/// produce the same value on every platform and compiler forever. Do not
/// change the constants.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SUPPORT_HASH_H
#define SPT_SUPPORT_HASH_H

#include <cstdint>
#include <string_view>

namespace spt {

/// 64-bit FNV-1a over \p Bytes.
inline uint64_t fnv1a(std::string_view Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (const char C : Bytes) {
    H ^= static_cast<uint8_t>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace spt

#endif // SPT_SUPPORT_HASH_H
