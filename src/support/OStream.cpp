//===- support/OStream.cpp - Lightweight output stream -------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/OStream.h"

#include <cinttypes>
#include <cstring>

using namespace spt;

OStream::~OStream() = default;

void OStream::anchor() {}

OStream &OStream::operator<<(char C) {
  writeImpl(&C, 1);
  return *this;
}

OStream &OStream::operator<<(const char *Str) {
  writeImpl(Str, std::strlen(Str));
  return *this;
}

OStream &OStream::operator<<(const std::string &Str) {
  writeImpl(Str.data(), Str.size());
  return *this;
}

OStream &OStream::operator<<(int64_t V) {
  char Buf[32];
  int N = std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  writeImpl(Buf, static_cast<size_t>(N));
  return *this;
}

OStream &OStream::operator<<(uint64_t V) {
  char Buf[32];
  int N = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  writeImpl(Buf, static_cast<size_t>(N));
  return *this;
}

OStream &OStream::operator<<(double V) { return writeDouble(V, 6); }

OStream &OStream::writeDouble(double V, int Precision) {
  char Buf[64];
  int N = std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, V);
  writeImpl(Buf, static_cast<size_t>(N));
  return *this;
}

OStream &spt::outs() {
  static FileOStream S(stdout);
  return S;
}

OStream &spt::errs() {
  static FileOStream S(stderr);
  return S;
}
