//===- support/OStream.h - Lightweight output stream ---------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small raw_ostream-style output stream. Library code uses this instead
/// of <iostream> (which injects static constructors). Two concrete sinks are
/// provided: a growable string buffer and a stdio FILE wrapper, plus outs()
/// and errs() accessors for the process-wide standard streams.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SUPPORT_OSTREAM_H
#define SPT_SUPPORT_OSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>

namespace spt {

/// Minimal formatted output stream with operator<< overloads for the types
/// the framework prints. Subclasses implement writeImpl().
class OStream {
public:
  virtual ~OStream();

  OStream &operator<<(char C);
  OStream &operator<<(const char *Str);
  OStream &operator<<(const std::string &Str);
  OStream &operator<<(int64_t V);
  OStream &operator<<(uint64_t V);
  OStream &operator<<(int V) { return *this << static_cast<int64_t>(V); }
  OStream &operator<<(unsigned V) { return *this << static_cast<uint64_t>(V); }
  OStream &operator<<(double V);

  /// Writes \p V with printf-style precision, e.g. format(0.25, 3).
  OStream &writeDouble(double V, int Precision);

  /// Writes raw bytes to the sink.
  void write(const char *Data, size_t Len) { writeImpl(Data, Len); }

private:
  virtual void writeImpl(const char *Data, size_t Len) = 0;

  // Out-of-line virtual anchor.
  virtual void anchor();
};

/// OStream that appends to an owned std::string.
class StringOStream final : public OStream {
public:
  const std::string &str() const { return Buffer; }
  void clear() { Buffer.clear(); }

private:
  void writeImpl(const char *Data, size_t Len) override {
    Buffer.append(Data, Len);
  }

  std::string Buffer;
};

/// OStream writing to a stdio FILE (not owned).
class FileOStream final : public OStream {
public:
  explicit FileOStream(std::FILE *F) : File(F) {}

private:
  void writeImpl(const char *Data, size_t Len) override {
    std::fwrite(Data, 1, Len, File);
  }

  std::FILE *File;
};

/// Stream for standard output.
OStream &outs();

/// Stream for standard error.
OStream &errs();

} // namespace spt

#endif // SPT_SUPPORT_OSTREAM_H
