//===- support/Random.cpp - Deterministic pseudo-random numbers ----------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

// Header-only implementation; this file exists so the support library always
// has at least one definition per header and to anchor future extensions.
