//===- support/Random.h - Deterministic pseudo-random numbers ------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xorshift128+). Used by workload input
/// generators and by the SPTc builtin rnd() so every simulation run is
/// reproducible bit-for-bit across platforms.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SUPPORT_RANDOM_H
#define SPT_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace spt {

/// Deterministic xorshift128+ generator.
class Random {
public:
  explicit Random(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Resets the generator state from \p Seed via splitmix64.
  void reseed(uint64_t Seed) {
    State0 = splitmix64(Seed);
    State1 = splitmix64(State0 ^ 0xda3e39cb94b95bdbull);
    if (State0 == 0 && State1 == 0)
      State1 = 1;
  }

  /// Returns the next 64 raw bits.
  uint64_t next() {
    uint64_t X = State0;
    const uint64_t Y = State1;
    State0 = Y;
    X ^= X << 23;
    State1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return State1 + Y;
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  int64_t nextBelow(int64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    return static_cast<int64_t>(next() % static_cast<uint64_t>(Bound));
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t splitmix64(uint64_t X) {
    X += 0x9e3779b97f4a7c15ull;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return X ^ (X >> 31);
  }

  uint64_t State0 = 1;
  uint64_t State1 = 2;
};

} // namespace spt

#endif // SPT_SUPPORT_RANDOM_H
