//===- support/Status.cpp - Recoverable errors and diagnostics ------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include "support/Debug.h"

using namespace spt;

const char *spt::diagStageName(DiagStage Stage) {
  switch (Stage) {
  case DiagStage::Driver:
    return "driver";
  case DiagStage::Unroll:
    return "unroll";
  case DiagStage::Profile:
    return "profile";
  case DiagStage::Svp:
    return "svp";
  case DiagStage::DepGraph:
    return "depgraph";
  case DiagStage::Partition:
    return "partition";
  case DiagStage::Transform:
    return "transform";
  case DiagStage::Simulate:
    return "simulate";
  }
  spt_unreachable("unknown diagnostic stage");
}

const char *spt::diagSeverityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  spt_unreachable("unknown diagnostic severity");
}

std::string Diagnostic::render() const {
  std::string Out = diagSeverityName(Severity);
  Out += " [";
  Out += diagStageName(Stage);
  Out += "]";
  if (!FuncName.empty()) {
    Out += " ";
    Out += FuncName;
    if (LoopHeader != NoDiagBlock) {
      Out += ":";
      Out += std::to_string(LoopHeader);
    }
  }
  Out += ": ";
  Out += Detail;
  return Out;
}

void DiagnosticLog::add(DiagStage Stage, DiagSeverity Severity,
                        std::string Detail, std::string FuncName,
                        DiagBlockId LoopHeader) {
  Diagnostic D;
  D.Stage = Stage;
  D.Severity = Severity;
  D.FuncName = std::move(FuncName);
  D.LoopHeader = LoopHeader;
  D.Detail = std::move(Detail);
  Diags.push_back(std::move(D));
}

size_t DiagnosticLog::countAtLeast(DiagSeverity Severity) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (static_cast<int>(D.Severity) >= static_cast<int>(Severity))
      ++N;
  return N;
}

std::string DiagnosticLog::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.render();
    Out += "\n";
  }
  return Out;
}
