//===- support/Status.h - Recoverable errors and diagnostics --------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recoverable-error plumbing for the compilation pipeline. The library
/// historically had exactly two failure modes: succeed, or abort via
/// spt_fatal. That is the right shape for invariant violations ("can't
/// happen"), but a production compiler must *degrade* on hostile inputs —
/// a single bad loop candidate, a truncated profile, a timed-out search —
/// and keep going while telling the user what it skipped.
///
/// Three pieces:
///  - Status / StatusOr<T>: a lightweight ok-or-error carrier (no
///    exceptions; the library does not use them).
///  - Diagnostic: one structured record — which pipeline stage, which loop
///    (function + header block), how severe, and free-text detail.
///  - DiagnosticLog: an append-only collector threaded through compileSpt
///    and surfaced on the CompilationReport, so callers and tests can
///    assert on exactly what degraded and why.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SUPPORT_STATUS_H
#define SPT_SUPPORT_STATUS_H

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spt {

/// Loop identity inside a diagnostic. support/ sits below ir/, so this
/// mirrors ir's BlockId (uint32_t, ~0u = none) without including it.
using DiagBlockId = uint32_t;
inline constexpr DiagBlockId NoDiagBlock = ~0u;

/// Success, or an error message. Default-constructed Status is success.
class Status {
public:
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(std::string Msg) {
    Status S;
    S.Failed = true;
    S.Msg = std::move(Msg);
    if (S.Msg.empty())
      S.Msg = "unknown error";
    return S;
  }

  bool isOk() const { return !Failed; }
  explicit operator bool() const { return isOk(); }

  /// The error message; empty for success.
  const std::string &message() const { return Msg; }

private:
  bool Failed = false;
  std::string Msg;
};

/// A T, or an error explaining why there is none.
template <typename T> class StatusOr {
public:
  StatusOr(T Value) : Val(std::move(Value)) {}
  StatusOr(Status S) : St(std::move(S)) {
    assert(!St.isOk() && "StatusOr from a success Status carries no value");
  }

  bool isOk() const { return St.isOk(); }
  explicit operator bool() const { return isOk(); }

  const Status &status() const { return St; }
  const std::string &message() const { return St.message(); }

  T &value() {
    assert(isOk() && "value() on an errored StatusOr");
    return Val;
  }
  const T &value() const {
    assert(isOk() && "value() on an errored StatusOr");
    return Val;
  }

  /// Returns the value, or \p Fallback when errored.
  T valueOr(T Fallback) const { return isOk() ? Val : std::move(Fallback); }

private:
  Status St;
  T Val{};
};

/// Pipeline stages a diagnostic can point at (compileSpt's phases).
enum class DiagStage {
  Driver,    ///< Cross-stage driver logic (mode degradation, budgets).
  Unroll,    ///< Stage A: loop preprocessing.
  Profile,   ///< Stage B: offline profiling.
  Svp,       ///< Stage C: software value prediction.
  DepGraph,  ///< Pass 1: dependence-graph construction.
  Partition, ///< Pass 1/2: optimal-partition search.
  Transform, ///< Pass 2: the SPT transformation.
  Simulate,  ///< Downstream simulation (fault injection harnesses).
};

const char *diagStageName(DiagStage Stage);

/// Diagnostic severity. Errors mean work was skipped; warnings mean the
/// pipeline degraded but continued; notes are breadcrumbs.
enum class DiagSeverity { Note, Warning, Error };

const char *diagSeverityName(DiagSeverity Severity);

/// One structured diagnostic record.
struct Diagnostic {
  DiagStage Stage = DiagStage::Driver;
  DiagSeverity Severity = DiagSeverity::Note;
  /// The loop the diagnostic is about, when it is about one: the enclosing
  /// function's name and the loop's header block. Empty/NoBlock otherwise.
  std::string FuncName;
  DiagBlockId LoopHeader = NoDiagBlock;
  std::string Detail;

  /// "error [transform] f:3: un-moved definition precedes a moved one".
  std::string render() const;
};

/// Append-only diagnostic collector.
class DiagnosticLog {
public:
  void add(DiagStage Stage, DiagSeverity Severity, std::string Detail,
           std::string FuncName = "", DiagBlockId LoopHeader = NoDiagBlock);

  /// Appends an already-built record — how per-candidate logs from the
  /// parallel pass merge into the report's log in deterministic order.
  void add(Diagnostic D) { Diags.push_back(std::move(D)); }

  void note(DiagStage Stage, std::string Detail, std::string FuncName = "",
            DiagBlockId LoopHeader = NoDiagBlock) {
    add(Stage, DiagSeverity::Note, std::move(Detail), std::move(FuncName),
        LoopHeader);
  }
  void warn(DiagStage Stage, std::string Detail, std::string FuncName = "",
            DiagBlockId LoopHeader = NoDiagBlock) {
    add(Stage, DiagSeverity::Warning, std::move(Detail), std::move(FuncName),
        LoopHeader);
  }
  void error(DiagStage Stage, std::string Detail, std::string FuncName = "",
             DiagBlockId LoopHeader = NoDiagBlock) {
    add(Stage, DiagSeverity::Error, std::move(Detail), std::move(FuncName),
        LoopHeader);
  }

  const std::vector<Diagnostic> &all() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  size_t size() const { return Diags.size(); }

  size_t countAtLeast(DiagSeverity Severity) const;
  bool hasErrors() const { return countAtLeast(DiagSeverity::Error) != 0; }

  /// All diagnostics, one render() per line.
  std::string renderAll() const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace spt

#endif // SPT_SUPPORT_STATUS_H
