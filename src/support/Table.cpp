//===- support/Table.cpp - Aligned text table writer ---------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "support/Debug.h"
#include "support/OStream.h"

#include <cassert>
#include <cstdio>

using namespace spt;

Table::Table(std::vector<std::string> Hdr) : Header(std::move(Hdr)) {
  assert(!Header.empty() && "table needs at least one column");
}

void Table::beginRow() { Rows.emplace_back(); }

void Table::cell(std::string Value) {
  assert(!Rows.empty() && "beginRow() must precede cell()");
  assert(Rows.back().size() < Header.size() && "row has too many cells");
  Rows.back().push_back(std::move(Value));
}

void Table::cell(int64_t Value) { cell(std::to_string(Value)); }

void Table::cell(uint64_t Value) { cell(std::to_string(Value)); }

void Table::cell(double Value, int Precision) {
  cell(formatDouble(Value, Precision));
}

void Table::percentCell(double Fraction, int Precision) {
  cell(formatPercent(Fraction, Precision));
}

void Table::print(OStream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I != Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto printRow = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I != Header.size(); ++I) {
      const std::string &Text = I < Cells.size() ? Cells[I] : std::string();
      OS << "| " << Text;
      for (size_t Pad = Text.size(); Pad < Widths[I] + 1; ++Pad)
        OS << ' ';
    }
    OS << "|\n";
  };

  printRow(Header);
  for (size_t I = 0; I != Header.size(); ++I) {
    OS << "|";
    for (size_t Pad = 0; Pad < Widths[I] + 2; ++Pad)
      OS << '-';
  }
  OS << "|\n";
  for (const auto &Row : Rows)
    printRow(Row);
}

void Table::printCsv(OStream &OS) const {
  auto printRow = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I != Cells.size(); ++I) {
      if (I != 0)
        OS << ',';
      OS << Cells[I];
    }
    OS << '\n';
  };
  printRow(Header);
  for (const auto &Row : Rows)
    printRow(Row);
}

std::string spt::formatDouble(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string spt::formatPercent(double Fraction, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Precision, Fraction * 100.0);
  return Buf;
}
