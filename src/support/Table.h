//===- support/Table.h - Aligned text table writer -----------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the paper-style tables printed by the benchmark harnesses:
/// column-aligned plain text, with an optional CSV dump so results can be
/// post-processed. Cells are strings; helpers format numbers consistently.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SUPPORT_TABLE_H
#define SPT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace spt {

class OStream;

/// A simple rectangular table with a header row.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  void beginRow();

  /// Appends a cell to the current row.
  void cell(std::string Value);
  void cell(int64_t Value);
  void cell(uint64_t Value);
  void cell(double Value, int Precision = 3);

  /// Appends a percentage cell rendered as e.g. "12.3%".
  void percentCell(double Fraction, int Precision = 1);

  size_t numRows() const { return Rows.size(); }

  /// Writes the table as aligned text to \p OS.
  void print(OStream &OS) const;

  /// Writes the table as CSV to \p OS.
  void printCsv(OStream &OS) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats a double with \p Precision significant decimal digits.
std::string formatDouble(double Value, int Precision);

/// Formats a fraction in [0,1] as a percentage string such as "8.0%".
std::string formatPercent(double Fraction, int Precision);

} // namespace spt

#endif // SPT_SUPPORT_TABLE_H
