//===- support/ThreadPool.cpp - Minimal worker pool ------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <exception>

using namespace spt;

ThreadPool::ThreadPool(unsigned NumThreads) {
  NumThreads = std::max(1u, NumThreads);
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  TaskReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Tasks.push(std::move(Task));
  }
  TaskReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  AllIdle.wait(Lock, [this] { return Tasks.empty() && ActiveTasks == 0; });
}

unsigned ThreadPool::defaultConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      TaskReady.wait(Lock,
                     [this] { return ShuttingDown || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Shutting down with a drained queue.
      Task = std::move(Tasks.front());
      Tasks.pop();
      ++ActiveTasks;
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mu);
      --ActiveTasks;
      if (Tasks.empty() && ActiveTasks == 0)
        AllIdle.notify_all();
    }
  }
}

void spt::parallelForIndexed(unsigned Jobs, size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Jobs <= 1 || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }

  std::vector<std::exception_ptr> Errors(N);
  std::atomic<size_t> NextIndex{0};
  auto Drain = [&] {
    for (;;) {
      const size_t I = NextIndex.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        Fn(I);
      } catch (...) {
        Errors[I] = std::current_exception();
      }
    }
  };

  const unsigned Spawn =
      static_cast<unsigned>(std::min<size_t>(Jobs, N));
  ThreadPool Pool(Spawn);
  for (unsigned I = 0; I != Spawn; ++I)
    Pool.submit(Drain);
  Pool.wait();

  for (size_t I = 0; I != N; ++I)
    if (Errors[I])
      std::rethrow_exception(Errors[I]);
}
