//===- support/ThreadPool.h - Minimal worker pool --------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool plus the indexed parallel-for the driver
/// uses for pass 1. The design goal is determinism-friendliness, not
/// throughput cleverness: workers pull task indices from an atomic counter,
/// results land in caller-owned per-index slots, and the caller merges them
/// in index order afterwards — so the observable output of a parallel run
/// is byte-identical to the sequential one (see docs/performance.md).
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SUPPORT_THREADPOOL_H
#define SPT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spt {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers (minimum 1).
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues one task. Tasks must not throw; wrap bodies that can.
  void submit(std::function<void()> Task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait();

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned defaultConcurrency();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mu;
  std::condition_variable TaskReady; ///< Signals workers: task or shutdown.
  std::condition_variable AllIdle;   ///< Signals wait(): drained and idle.
  size_t ActiveTasks = 0;
  bool ShuttingDown = false;
};

/// Runs Fn(0) .. Fn(N-1), each exactly once, across up to \p Jobs worker
/// threads; returns after all indices finish. Jobs <= 1 or N <= 1 runs
/// inline on the caller's thread with no pool at all, so sequential-mode
/// behavior (including exception timing) is exactly the pre-pool code path.
/// An exception escaping Fn is captured per index; after all indices
/// complete, the lowest-index exception is rethrown — matching what a
/// sequential loop that failed at that index would have thrown, regardless
/// of thread interleaving.
void parallelForIndexed(unsigned Jobs, size_t N,
                        const std::function<void(size_t)> &Fn);

} // namespace spt

#endif // SPT_SUPPORT_THREADPOOL_H
