//===- support/WrapMath.h - Wrap-defined 64-bit integer arithmetic ---------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two's-complement wrapping arithmetic for SPTc program values. SPTc
/// integers are defined to wrap modulo 2^64; doing the operations on
/// int64_t directly would make overflowing programs — which the fuzzer
/// generates freely — undefined behaviour, and the UBSan preset flags
/// exactly that. Every place that executes or re-derives program
/// arithmetic (the interpreter, the value profiler's stride deltas) goes
/// through these helpers so program-visible results stay defined and
/// bit-identical across presets.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SUPPORT_WRAPMATH_H
#define SPT_SUPPORT_WRAPMATH_H

#include <cstdint>
#include <limits>

namespace spt {

inline int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

inline int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}

inline int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

inline int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0ull - static_cast<uint64_t>(A));
}

inline int64_t wrapAbs(int64_t A) { return A < 0 ? wrapNeg(A) : A; }

/// Shift count is masked to the word size; the shift itself is done
/// unsigned so sign-bit shifts stay defined.
inline int64_t wrapShl(int64_t A, int64_t Count) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) << (Count & 63));
}

/// Division by zero yields 0 (the interpreter's long-standing rule);
/// INT64_MIN / -1 wraps to INT64_MIN instead of overflowing.
inline int64_t wrapDiv(int64_t N, int64_t D) {
  if (D == 0)
    return 0;
  if (D == -1)
    return wrapNeg(N);
  return N / D;
}

/// Remainder by zero yields 0; any remainder by -1 is exactly 0, which
/// sidesteps the INT64_MIN % -1 overflow.
inline int64_t wrapRem(int64_t N, int64_t D) {
  if (D == 0 || D == -1)
    return 0;
  return N % D;
}

} // namespace spt

#endif // SPT_SUPPORT_WRAPMATH_H
