//===- svp/Svp.cpp - Software value prediction --------------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "svp/Svp.h"

#include "support/Debug.h"

#include <algorithm>
#include <set>

using namespace spt;

std::vector<SvpCandidate>
spt::findSvpCandidates(const LoopDepGraph &G, PartitionSearch &Search,
                       const ValueProfileData &Values,
                       const SvpOptions &Opts) {
  std::vector<SvpCandidate> Result;
  std::set<Reg> SeenRegs;
  const double SizeThreshold =
      Opts.PreForkSizeFraction * G.dynamicBodyWeight();
  const Function *F = &G.function();

  for (size_t Node = 0; Node != Search.numVcNodes(); ++Node) {
    // Plain code reordering already handles movable, small closures.
    if (Search.nodeMovable(Node) &&
        Search.nodeClosureWeight(Node) <= SizeThreshold)
      continue;
    for (uint32_t Vc : Search.nodeVcs(Node)) {
      const LoopStmt &S = G.stmt(Vc);
      if (S.I->Dst == NoReg || S.I->Ty != Type::Int)
        continue;
      if (SeenRegs.count(S.I->Dst))
        continue;
      // The candidate must carry its *register* value across iterations;
      // predicting the destination of a statement whose violation stems
      // from memory (e.g. a call's side effects) buys nothing.
      bool RegCarried = false;
      for (uint32_t EI : G.outEdges(Vc)) {
        const DepEdge &E = G.edges()[EI];
        if (E.Cross && E.Kind == DepKind::FlowReg && E.Prob > 1e-9)
          RegCarried = true;
      }
      if (!RegCarried)
        continue;
      const StrideStats *Stats = Values.statsFor(F, S.Id);
      if (!Stats || Stats->Samples < Opts.MinSamples)
        continue;
      const double Ratio = static_cast<double>(Stats->BestStrideHits) /
                           static_cast<double>(Stats->Samples);
      if (Ratio < Opts.MinHitRatio)
        continue;
      SvpCandidate C;
      C.X = S.I->Dst;
      C.Ty = Type::Int;
      C.Stride = Stats->BestStride;
      C.DefStmt = S.Id;
      C.HitRatio = Ratio;
      Result.push_back(C);
      SeenRegs.insert(C.X);
    }
  }
  return Result;
}

SvpResult spt::applySvp(Function &F, const Loop &L, const SvpCandidate &C) {
  SvpResult R;
  if (C.X == NoReg || C.Ty != Type::Int) {
    R.Error = "SVP supports integer registers only";
    return R;
  }
  assert(L.Header != F.entry() && "loop header must not be the entry block");

  const Reg P = F.newReg();
  R.PredReg = P;

  auto makeInstr = [&](Opcode Op, Reg Dst, std::vector<Reg> Srcs,
                       int64_t Imm = 0) {
    Instr I;
    I.Op = Op;
    I.Ty = Type::Int;
    I.Dst = Dst;
    I.Srcs = std::move(Srcs);
    I.IntImm = Imm;
    I.Id = F.newStmtId();
    return I;
  };

  // 1. Init block: pred_x = x, entered from every outside edge into the
  // header.
  BasicBlock *Init = F.addBlock("svp.init");
  Init->Instrs.push_back(makeInstr(Opcode::Copy, P, {C.X}));
  Init->Instrs.push_back(makeInstr(Opcode::Jmp, NoReg, {}));
  Init->Succs = {L.Header};
  for (auto &BB : F) {
    if (BB.get() == Init || L.contains(BB->id()))
      continue;
    for (BlockId &S : BB->Succs)
      if (S == L.Header)
        S = Init->id();
  }

  // 2. Header prologue: x = pred_x; pred_x = x + stride (stride 0 means
  // last-value prediction: pred_x already holds it).
  {
    BasicBlock *Header = F.block(L.Header);
    std::vector<Instr> Prologue;
    Prologue.push_back(makeInstr(Opcode::Copy, C.X, {P}));
    if (C.Stride != 0) {
      const Reg StrideReg = F.newReg();
      const Reg Sum = F.newReg();
      Prologue.push_back(
          makeInstr(Opcode::ConstInt, StrideReg, {}, C.Stride));
      Prologue.push_back(makeInstr(Opcode::Add, Sum, {C.X, StrideReg}));
      Prologue.push_back(makeInstr(Opcode::Copy, P, {Sum}));
    }
    Header->Instrs.insert(Header->Instrs.begin(), Prologue.begin(),
                          Prologue.end());
  }

  // 3. Check-and-recovery at every latch: if (x != pred_x) pred_x = x.
  for (BlockId Latch : L.Latches) {
    BasicBlock *LatchBB = F.block(Latch);
    assert(LatchBB->hasTerminator() && "latch must be terminated");

    BasicBlock *Fix = F.addBlock("svp.fix");
    BasicBlock *Cont = F.addBlock("svp.cont");

    // Move the terminator (and its successors) into the continuation.
    Cont->Instrs.push_back(LatchBB->Instrs.back());
    Cont->Succs = LatchBB->Succs;
    LatchBB->Instrs.pop_back();

    const Reg Cond = F.newReg();
    LatchBB->Instrs.push_back(makeInstr(Opcode::CmpNe, Cond, {C.X, P}));
    LatchBB->Instrs.push_back(makeInstr(Opcode::Br, NoReg, {Cond}));
    LatchBB->Succs = {Fix->id(), Cont->id()};

    Fix->Instrs.push_back(makeInstr(Opcode::Copy, P, {C.X}));
    Fix->Instrs.push_back(makeInstr(Opcode::Jmp, NoReg, {}));
    Fix->Succs = {Cont->id()};
  }

  R.Ok = true;
  return R;
}
