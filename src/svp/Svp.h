//===- svp/Svp.h - Software value prediction --------------------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software value prediction (paper Section 7.2, Figure 13). For a
/// critical violation candidate x whose value profile shows a predictable
/// pattern (stride or last-value), the loop is rewritten to
///
///   pred_x = x;                       // preheader
///   loop {
///     x = pred_x;                     // restore (movable!)
///     pred_x = x + stride;            // prediction (movable!)
///     ... original body; x = bar(x) ...
///     if (x != pred_x) pred_x = x;    // check and recovery
///   }
///
/// The rewrite preserves sequential semantics unconditionally (after the
/// check, pred_x == x, so the next restore is a no-op). Its value is
/// structural: the cross-iteration dependence into the next iteration's x
/// now comes from the *prediction* (movable into the pre-fork region) and
/// from the *recovery*, whose execution frequency — and therefore its
/// dependence probability under edge profiling — is exactly the
/// misprediction rate. A well-predicted x thus stops being an expensive
/// violation candidate, which both lowers misspeculation cost and enables
/// more code reordering, as the paper reports.
///
/// Candidate selection follows the paper: violation candidates that the
/// partitioner cannot move (illegal or over the pre-fork size threshold)
/// whose profiled values are predictable above a hit-ratio threshold.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_SVP_SVP_H
#define SPT_SVP_SVP_H

#include "analysis/DepGraph.h"
#include "analysis/ProfileData.h"
#include "partition/Partition.h"

#include <string>
#include <vector>

namespace spt {

/// Selection thresholds.
struct SvpOptions {
  double MinHitRatio = 0.9;
  uint64_t MinSamples = 16;
  /// Candidates whose move closure fits under this fraction of the body
  /// weight are left to plain code reordering.
  double PreForkSizeFraction = 0.34;
};

/// One value-prediction opportunity.
struct SvpCandidate {
  Reg X = NoReg;       ///< The predicted register.
  Type Ty = Type::Int; ///< Always Int in this implementation.
  int64_t Stride = 0;  ///< 0 encodes last-value prediction.
  StmtId DefStmt = NoStmt; ///< The profiled violation-candidate def.
  double HitRatio = 0.0;
};

/// Finds SVP candidates for the loop of \p G: register-defining violation
/// candidates that plain reordering cannot handle and whose profiled value
/// stream is predictable.
std::vector<SvpCandidate>
findSvpCandidates(const LoopDepGraph &G, PartitionSearch &Search,
                  const ValueProfileData &Values,
                  const SvpOptions &Opts = SvpOptions());

/// Outcome of one SVP rewrite.
struct SvpResult {
  bool Ok = false;
  std::string Error;
  Reg PredReg = NoReg;
};

/// Applies one candidate's rewrite to \p L in \p F. The function must be
/// re-analyzed before further transformations.
SvpResult applySvp(Function &F, const Loop &L, const SvpCandidate &C);

} // namespace spt

#endif // SPT_SVP_SVP_H
