//===- testing/Corpus.cpp - Coverage-guided fuzzing corpus -----------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "testing/Corpus.h"

#include "support/Hash.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace spt;

bool Corpus::addIfNovel(const std::string &Source,
                        const std::vector<uint32_t> &Features, bool Force) {
  const uint64_t H = fnv1a(Source);
  if (!Hashes.insert(H).second)
    return false;

  bool Novel = Force;
  for (uint32_t F : Features)
    if (!Covered.count(F))
      Novel = true;
  if (!Novel) {
    Hashes.erase(H);
    return false;
  }

  CorpusEntry E;
  E.Source = Source;
  E.ContentHash = H;
  E.Features = Features;
  std::sort(E.Features.begin(), E.Features.end());
  E.Features.erase(std::unique(E.Features.begin(), E.Features.end()),
                   E.Features.end());
  Covered.insert(E.Features.begin(), E.Features.end());
  Entries.push_back(std::move(E));
  return true;
}

size_t Corpus::loadDirectory(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  if (!fs::is_directory(Dir, Ec))
    return 0;

  std::vector<fs::path> Paths;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir, Ec))
    if (DE.path().extension() == ".sptc")
      Paths.push_back(DE.path());
  std::sort(Paths.begin(), Paths.end());

  size_t Loaded = 0;
  for (const fs::path &P : Paths) {
    std::ifstream In(P);
    if (!In)
      continue;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (addIfNovel(Buf.str(), {}, /*Force=*/true))
      ++Loaded;
  }
  return Loaded;
}
