//===- testing/Corpus.h - Coverage-guided fuzzing corpus -------------------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's working set of interesting programs. A program earns a
/// place by covering a pipeline feature (see Oracles.h's feature ids) no
/// existing entry covers — the classic coverage-guided retention rule,
/// with CompilationReport-derived features standing in for code coverage.
/// Entries deduplicate by content hash, so reprinting noise cannot bloat
/// the corpus.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_TESTING_CORPUS_H
#define SPT_TESTING_CORPUS_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace spt {

struct CorpusEntry {
  std::string Source;
  uint64_t ContentHash = 0;
  /// Features this entry covered when it was admitted (sorted).
  std::vector<uint32_t> Features;
};

class Corpus {
public:
  /// Admits \p Source when it covers at least one feature no current
  /// entry covers (or when Force is set and it is not a duplicate).
  /// Returns true when the entry was added.
  bool addIfNovel(const std::string &Source,
                  const std::vector<uint32_t> &Features, bool Force = false);

  /// Loads every *.sptc file of \p Dir (sorted by filename, for
  /// determinism) with Force semantics: seed entries are kept regardless
  /// of coverage so mutation always has raw material. Returns how many
  /// files were loaded; missing/unreadable directories load zero.
  size_t loadDirectory(const std::string &Dir);

  const std::vector<CorpusEntry> &entries() const { return Entries; }
  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  /// Number of distinct features covered across all entries.
  size_t coveredFeatures() const { return Covered.size(); }
  const std::set<uint32_t> &covered() const { return Covered; }

private:
  std::vector<CorpusEntry> Entries;
  std::set<uint32_t> Covered;
  std::set<uint64_t> Hashes;
};

} // namespace spt

#endif // SPT_TESTING_CORPUS_H
