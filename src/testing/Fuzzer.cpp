//===- testing/Fuzzer.cpp - Coverage-guided differential fuzzing loop ------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//

#include "testing/Fuzzer.h"

#include "support/Hash.h"
#include "support/Random.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace spt;

namespace {

/// Writes a reproducer with its triage header; returns the path ("" when
/// OutDir is unset or the write failed).
std::string dumpRepro(const FuzzOptions &Opts, const std::string &Suffix,
                      const std::string &Oracle, const std::string &Detail,
                      const std::string &Source) {
  if (Opts.OutDir.empty())
    return "";
  std::error_code Ec;
  std::filesystem::create_directories(Opts.OutDir, Ec);
  char Name[64];
  std::snprintf(Name, sizeof(Name), "repro_%016llx%s.sptc",
                static_cast<unsigned long long>(fnv1a(Source)),
                Suffix.c_str());
  const std::string Path = Opts.OutDir + "/" + Name;
  std::ofstream Out(Path);
  if (!Out)
    return "";
  Out << "// sptfuzz reproducer\n"
      << "// oracle: " << Oracle << "\n"
      << "// detail: " << Detail << "\n"
      << "// fuzz seed: " << Opts.Seed << "\n"
      << "// oracle seed: " << Opts.Oracle.Seed << "\n"
      << (Opts.Oracle.InjectKnownBad ? "// known-bad injection: on\n" : "")
      << Source;
  return Path;
}

/// The reduction predicate: the candidate still compiles, terminates, and
/// fails the *same* oracle. Restricting the suite to that oracle keeps
/// each probe cheap (e.g. no sequential simulation while reducing an
/// interp divergence).
FailurePredicate predicateFor(const FuzzOptions &Opts,
                              const std::string &Oracle) {
  OracleOptions OO = Opts.Oracle;
  OO.Only = {Oracle};
  return [OO, Oracle](const std::string &Source) {
    OracleRunReport R = runOracleSuite(Source, OO);
    if (!R.Compiled || !R.Terminated)
      return false;
    const OracleResult *F = R.firstFailure();
    return F && F->Oracle == Oracle;
  };
}

} // namespace

FuzzOutcome spt::runFuzz(const FuzzOptions &Opts) {
  FuzzOutcome Out;

  Corpus C;
  if (!Opts.CorpusDir.empty())
    C.loadDirectory(Opts.CorpusDir);

  Random Rng(Opts.Seed ^ 0x66757a7aull); // "fuzz"
  unsigned Executed = 0;
  uint64_t Iter = 0;
  // Bound total attempts so a corpus of hard-to-compile mutants cannot
  // spin forever: rejected programs consume attempts too.
  const uint64_t MaxAttempts = 10ull * Opts.Programs + 100;

  while (Executed < Opts.Programs && Iter < MaxAttempts) {
    ++Iter;
    const uint64_t ProgSeed = Rng.next();

    // Alternate fresh generation with corpus mutation once the corpus has
    // material; mutation explores shapes the generator's templates cannot
    // reach, generation keeps injecting diversity.
    std::string Source;
    bool FromCorpus = false;
    if (!C.empty() && (Iter & 1)) {
      const CorpusEntry &E =
          C.entries()[ProgSeed % C.entries().size()];
      MutationOutcome M = mutateSource(E.Source, ProgSeed, Opts.Mutator);
      Source = std::move(M.Source);
      FromCorpus = true;
      ++Out.Stats.Mutated;
    } else {
      Source = generateProgram(ProgSeed, Opts.Generator);
      ++Out.Stats.Generated;
    }

    OracleRunReport R = runOracleSuite(Source, Opts.Oracle);
    if (!R.Compiled) {
      ++Out.Stats.NonCompiling;
      continue;
    }
    if (!R.Terminated) {
      ++Out.Stats.NonTerminating;
      continue;
    }
    ++Executed;
    Out.Stats.Executed = Executed;

    if (C.addIfNovel(Source, R.Features))
      ++Out.Stats.CorpusAdds;
    Out.Stats.CoveredFeatures = C.coveredFeatures();

    if (Opts.Verbose && Executed % 20 == 0)
      std::fprintf(stderr,
                   "sptfuzz: %u/%u programs, %zu corpus entries, %zu "
                   "features covered\n",
                   Executed, Opts.Programs, C.size(), C.coveredFeatures());

    const OracleResult *Fail = R.firstFailure();
    if (!Fail)
      continue;

    Out.FoundDivergence = true;
    Out.FailingOracle = Fail->Oracle;
    Out.FailureDetail = Fail->Detail;
    Out.FailingSource = Source;
    Out.ReducedSource = Source;
    Out.ReproPath =
        dumpRepro(Opts, "", Fail->Oracle, Fail->Detail, Source);
    if (Opts.Verbose)
      std::fprintf(stderr,
                   "sptfuzz: divergence on oracle '%s' (%s program): %s\n",
                   Fail->Oracle.c_str(),
                   FromCorpus ? "mutated" : "generated",
                   Fail->Detail.c_str());

    if (Opts.ReduceOnFailure) {
      ReduceOutcome Red = reduceProgram(
          Source, predicateFor(Opts, Fail->Oracle), Opts.Reduce);
      Out.ReducedSource = Red.Source;
      Out.ReducedStatements = Red.StatementCount;
      Out.ReducedReproPath = dumpRepro(Opts, "_min", Fail->Oracle,
                                       Fail->Detail, Red.Source);
      if (Opts.Verbose)
        std::fprintf(stderr,
                     "sptfuzz: reduced to %u statements in %u rounds "
                     "(%u candidates)\n",
                     Red.StatementCount, Red.Rounds, Red.CandidatesTried);
    }
    return Out;
  }

  Out.Stats.CoveredFeatures = C.coveredFeatures();
  return Out;
}

FuzzOutcome spt::runKnownBadSelfCheck(FuzzOptions Opts) {
  // The planted bug is a deterministic miscompile (first in-loop add
  // flipped to sub on the pipeline's copy); any generated program with an
  // additive loop exposes it, so a handful of programs suffices.
  Opts.Oracle.InjectKnownBad = true;
  if (Opts.Programs > 25)
    Opts.Programs = 25;
  return runFuzz(Opts);
}
