//===- testing/Fuzzer.h - Coverage-guided differential fuzzing loop --------===//
//
// Part of the SPT framework (PLDI 2004 reproduction). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver that ties the subsystem together: generate or mutate a
/// program, reject it cheaply if it does not compile or does not
/// terminate, run the full oracle suite (testing/Oracles.h), keep it in
/// the corpus when it covers a new pipeline feature, and — on the first
/// divergence — dump the reproducer, delta-debug it down to a minimal
/// program that still fails the same oracle, and dump that too.
///
/// Everything is deterministic for a fixed FuzzOptions::Seed: generation,
/// mutation choices, oracle randomness, and the reduction, so a failing
/// run replays bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef SPT_TESTING_FUZZER_H
#define SPT_TESTING_FUZZER_H

#include "lang/ProgramGenerator.h"
#include "testing/Corpus.h"
#include "testing/Mutator.h"
#include "testing/Oracles.h"
#include "testing/Reducer.h"

#include <cstdint>
#include <string>

namespace spt {

struct FuzzOptions {
  uint64_t Seed = 1;
  /// Programs to run through the oracle suite (rejected mutants do not
  /// count).
  unsigned Programs = 200;
  /// Seed corpus directory (*.sptc); empty = start from generation only.
  std::string CorpusDir;
  /// Where reproducers are written; empty = don't write files.
  std::string OutDir;
  /// Progress lines on stderr.
  bool Verbose = false;
  /// Reduce the failing program before returning (on by default; the
  /// smoke mode's caller keeps it on so any smoke failure arrives
  /// pre-shrunk).
  bool ReduceOnFailure = true;

  OracleOptions Oracle;
  MutatorOptions Mutator;
  GeneratorOptions Generator;
  ReducerOptions Reduce;
};

struct FuzzStats {
  unsigned Executed = 0;       ///< Programs that reached the oracles.
  unsigned NonCompiling = 0;   ///< Mutants rejected by the frontend.
  unsigned NonTerminating = 0; ///< Mutants rejected by the step budget.
  unsigned Generated = 0;      ///< Fresh generator programs tried.
  unsigned Mutated = 0;        ///< Corpus mutants tried.
  unsigned CorpusAdds = 0;     ///< Programs retained for new coverage.
  size_t CoveredFeatures = 0;  ///< Distinct features covered at the end.
};

struct FuzzOutcome {
  FuzzStats Stats;
  bool FoundDivergence = false;
  std::string FailingOracle;
  std::string FailureDetail;
  /// The failing program as fuzzed.
  std::string FailingSource;
  /// After reduction (equals FailingSource when reduction is disabled or
  /// made no progress).
  std::string ReducedSource;
  unsigned ReducedStatements = 0;
  /// Paths of the dumped reproducers (empty when OutDir is empty).
  std::string ReproPath;
  std::string ReducedReproPath;
};

/// Runs the fuzzing loop. Returns after FuzzOptions::Programs programs,
/// or at the first divergence.
FuzzOutcome runFuzz(const FuzzOptions &Opts);

/// The acceptance self-check behind `sptfuzz --selfcheck`: forces the
/// known-bad mutation (OracleOptions::InjectKnownBad) into an otherwise
/// default fuzzing run, and expects the suite to find the planted
/// miscompile and reduce it to a small reproducer. Returns the outcome so
/// callers can assert FoundDivergence and ReducedStatements.
FuzzOutcome runKnownBadSelfCheck(FuzzOptions Opts);

} // namespace spt

#endif // SPT_TESTING_FUZZER_H
